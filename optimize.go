package thermflow

import (
	"fmt"

	"thermflow/internal/opt"
	"thermflow/internal/sched"
	"thermflow/internal/tdfa"
)

// SpillCritical spills the top n variables of the thermal criticality
// ranking to memory and recompiles.
func (c *Compiled) SpillCritical(n int) (*Compiled, error) {
	if c.Thermal == nil {
		return nil, fmt.Errorf("thermflow: no thermal analysis available")
	}
	fn, err := opt.SpillCritical(c.Alloc.Fn, c.Thermal.Critical, n)
	if err != nil {
		return nil, err
	}
	return (&Program{Fn: fn, Setup: c.Program.Setup, Expect: c.Program.Expect}).Compile(c.Opts)
}

// SplitCritical live-range-splits the top n critical variables via copy
// insertion and recompiles.
func (c *Compiled) SplitCritical(n int) (*Compiled, error) {
	if c.Thermal == nil {
		return nil, fmt.Errorf("thermflow: no thermal analysis available")
	}
	var names []string
	for _, vh := range c.Thermal.TopCritical(n) {
		names = append(names, vh.Value.Name)
	}
	fn, _, err := opt.SplitLiveRanges(c.Alloc.Fn, names)
	if err != nil {
		return nil, err
	}
	return (&Program{Fn: fn, Setup: c.Program.Setup, Expect: c.Program.Expect}).Compile(c.Opts)
}

// PromoteLoads hoists loop-invariant loads into registers and
// recompiles.
func (c *Compiled) PromoteLoads() (*Compiled, int, error) {
	fn, promoted := opt.PromoteLoads(c.Alloc.Fn)
	nc, err := (&Program{Fn: fn, Setup: c.Program.Setup, Expect: c.Program.Expect}).Compile(c.Opts)
	return nc, promoted, err
}

// InsertCooldownNops pads instructions whose registers are predicted to
// exceed the threshold (K) with cool-down NOPs, then re-analyzes. The
// register assignment is preserved (NOPs touch no registers).
func (c *Compiled) InsertCooldownNops(threshold float64, count int) (*Compiled, int, error) {
	if c.Thermal == nil {
		return nil, 0, fmt.Errorf("thermflow: no thermal analysis available")
	}
	fn, inserted := opt.InsertCooldownNops(c.Alloc.Fn, c.Alloc, c.Thermal, opt.NopConfig{
		Threshold: threshold,
		Count:     count,
	})
	nc, err := (&Program{Fn: fn, Setup: c.Program.Setup, Expect: c.Program.Expect}).Compile(c.Opts)
	return nc, inserted, err
}

// ThermalReassign re-allocates with the Coldest policy seeded by the
// predicted per-register heat and re-analyzes.
func (c *Compiled) ThermalReassign() (*Compiled, error) {
	if c.Thermal == nil {
		return nil, fmt.Errorf("thermflow: no thermal analysis available")
	}
	heat := make([]float64, len(c.Thermal.RegPeak))
	min := c.Thermal.RegPeak[0]
	for _, t := range c.Thermal.RegPeak {
		if t < min {
			min = t
		}
	}
	for i, t := range c.Thermal.RegPeak {
		heat[i] = (t - min) * 10
	}
	opts := c.Opts
	opts.Policy = Coldest
	opts.HeatSeed = heat
	return (&Program{Fn: c.Alloc.Fn, Setup: c.Program.Setup, Expect: c.Program.Expect}).Compile(opts)
}

// ThermalSchedule reorders instructions within blocks to spread
// register accesses in time (keeping the existing assignment legal) and
// re-analyzes.
func (c *Compiled) ThermalSchedule() (*Compiled, error) {
	if c.Thermal == nil {
		return nil, fmt.Errorf("thermflow: no thermal analysis available")
	}
	fn := c.Alloc.Fn.Clone()
	sched.Schedule(fn, c.Alloc, sched.Thermal(sched.ThermalConfig{
		Alloc:   c.Alloc,
		RegHeat: c.Thermal.RegPeak,
	}))
	// The assignment is preserved by register-aware dependences, so
	// recompilation with the same options re-derives an equivalent
	// allocation for the reordered function.
	return (&Program{Fn: fn, Setup: c.Program.Setup, Expect: c.Program.Expect}).Compile(c.Opts)
}

// Critical returns the top-n thermally critical variable names.
func (c *Compiled) Critical(n int) []string {
	if c.Thermal == nil {
		return nil
	}
	var names []string
	for _, vh := range c.Thermal.TopCritical(n) {
		names = append(names, vh.Value.Name)
	}
	return names
}

// EarlyPrior maps a policy to the placement prior its early analysis
// would use.
func EarlyPrior(p Policy) tdfa.Prior {
	switch p {
	case Random, RoundRobin, SpreadMax:
		return tdfa.PriorUniform
	case Chessboard:
		return tdfa.PriorChessboard
	default:
		return tdfa.PriorFirstFree
	}
}
