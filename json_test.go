package thermflow

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"thermflow/internal/floorplan"
	"thermflow/internal/power"
	"thermflow/internal/tdfa"
)

func TestOptionsJSONRoundTrip(t *testing.T) {
	cases := []Options{
		{},
		{Policy: Chessboard, Solver: SolverSparse},
		{
			NumRegs: 16, Policy: Coldest, Seed: 42,
			HeatSeed: []float64{1, 2, 3},
			GridW:    4, GridH: 4, Layout: floorplan.Checker,
			Tech:   power.Default65nm(),
			Solver: SolverSparse, Delta: 0.01, MaxIter: 128,
			Kappa: 1e4, JoinOp: tdfa.JoinMax,
			WithLeakage: true, NoWarmStart: true,
			DefaultTrip: 5, SkipAnalysis: true,
		},
	}
	for i, opts := range cases {
		buf, err := json.Marshal(opts)
		if err != nil {
			t.Fatalf("case %d: marshal: %v", i, err)
		}
		var back Options
		if err := json.Unmarshal(buf, &back); err != nil {
			t.Fatalf("case %d: unmarshal %s: %v", i, buf, err)
		}
		if !reflect.DeepEqual(opts, back) {
			t.Errorf("case %d: round trip diverged:\n in  %#v\n out %#v\n via %s", i, opts, back, buf)
		}
	}
}

func TestOptionsJSONZeroIsEmpty(t *testing.T) {
	buf, err := json.Marshal(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != "{}" {
		t.Errorf("zero Options marshals to %s, want {}", buf)
	}
}

func TestOptionsJSONNamesEnums(t *testing.T) {
	buf, err := json.Marshal(Options{Policy: SpreadMax, Solver: SolverSparse, JoinOp: tdfa.JoinMax, Layout: floorplan.Banked})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"policy":"spread-max"`, `"solver":"sparse"`, `"join":"max"`, `"layout":"banked"`} {
		if !strings.Contains(string(buf), want) {
			t.Errorf("marshal = %s, missing %s", buf, want)
		}
	}
}

func TestOptionsJSONUnknownNames(t *testing.T) {
	cases := []struct{ body, kind string }{
		{`{"policy":"hottest"}`, "policy"},
		{`{"solver":"magic"}`, "solver"},
		{`{"layout":"spiral"}`, "layout"},
		{`{"join":"min"}`, "join"},
	}
	for _, tc := range cases {
		var o Options
		err := json.Unmarshal([]byte(tc.body), &o)
		var unknown *UnknownNameError
		if !errors.As(err, &unknown) {
			t.Errorf("%s: err = %v, want UnknownNameError", tc.body, err)
			continue
		}
		if unknown.Kind != tc.kind {
			t.Errorf("%s: kind = %q, want %q", tc.body, unknown.Kind, tc.kind)
		}
	}
}

func TestSpillBudgetBoundsTinyRegisterFiles(t *testing.T) {
	// ROADMAP "allocator blowup": NumRegs 1 cannot satisfy a binary
	// operation (two simultaneously live registers), so every spill
	// round grows the program without reducing pressure. The work
	// budget must turn that into a typed error in bounded time.
	prog, err := Kernel("matmul")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = prog.Compile(Options{NumRegs: 1})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("NumRegs 1 compiled successfully (!?)")
	}
	if !errors.Is(err, ErrSpillBudget) {
		t.Fatalf("err = %v, want ErrSpillBudget", err)
	}
	var be *AllocBudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *AllocBudgetError", err)
	}
	if be.Instrs <= be.Budget {
		t.Errorf("budget error with Instrs %d <= Budget %d", be.Instrs, be.Budget)
	}
	if elapsed > 30*time.Second {
		t.Errorf("budget abort took %v, want bounded time", elapsed)
	}

	// A feasible tiny file still allocates (the budget must not bite
	// legitimate heavy spilling).
	if _, err := prog.Compile(Options{NumRegs: 6}); err != nil {
		t.Errorf("NumRegs 6: %v", err)
	}
}
