package thermflow

import (
	"context"
	"testing"
)

// CompileBatch must produce results identical to serial Compile calls,
// in job order, with failures isolated per job.
func TestCompileBatchMatchesSerial(t *testing.T) {
	p, err := Kernel("fir")
	if err != nil {
		t.Fatal(err)
	}
	optsList := []Options{
		{Policy: FirstFree},
		{Policy: Random, Seed: 3},
		{Policy: Chessboard},
		{Policy: FirstFree, Solver: SolverSparse},
	}
	jobs := make([]CompileJob, len(optsList))
	for i, o := range optsList {
		jobs[i] = CompileJob{Program: p, Opts: o}
	}
	res := CompileBatch(context.Background(), jobs, 4)
	if len(res) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(res), len(jobs))
	}
	for i, o := range optsList {
		if res[i].Err != nil {
			t.Fatalf("job %d: %v", i, res[i].Err)
		}
		want, err := p.Compile(o)
		if err != nil {
			t.Fatal(err)
		}
		got := res[i].Compiled
		if got.Thermal.PeakTemp != want.Thermal.PeakTemp {
			t.Errorf("job %d: peak %g, serial %g", i, got.Thermal.PeakTemp, want.Thermal.PeakTemp)
		}
		if d := got.Thermal.Peak.MaxDelta(want.Thermal.Peak); d != 0 {
			t.Errorf("job %d: peak states differ by %g", i, d)
		}
	}
}

// Identical (program, options) jobs must be compiled once and shared;
// differing options must not collide.
func TestCompileBatchCache(t *testing.T) {
	p, err := Kernel("dot")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch(4)
	same := CompileJob{Program: p, Opts: Options{Policy: FirstFree}}
	diff := CompileJob{Program: p, Opts: Options{Policy: Chessboard}}
	res := b.Compile(context.Background(), []CompileJob{same, same, diff, same})
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
	}
	if res[0].Compiled != res[1].Compiled || res[0].Compiled != res[3].Compiled {
		t.Error("identical jobs did not share one compilation")
	}
	if res[0].Compiled == res[2].Compiled {
		t.Error("different options shared a compilation")
	}
	s := b.Stats()
	if s.Misses != 2 {
		t.Errorf("misses = %d, want 2 (two distinct configs)", s.Misses)
	}
	if s.Hits != 2 {
		t.Errorf("hits = %d, want 2", s.Hits)
	}
	// A second Compile on the same engine is served from cache.
	res2 := b.Compile(context.Background(), []CompileJob{same})
	if !res2[0].Cached || res2[0].Compiled != res[0].Compiled {
		t.Error("cache did not persist across Compile calls")
	}
}

// A failing job must not poison its batch.
func TestCompileBatchErrorIsolation(t *testing.T) {
	good, err := Kernel("dot")
	if err != nil {
		t.Fatal(err)
	}
	jobs := []CompileJob{
		{Program: good, Opts: Options{}},
		{Program: good, Opts: Options{GridW: 2, GridH: 2}}, // 64 regs don't fit a 2x2 grid
		{Program: nil},
		{Program: good, Opts: Options{Policy: Chessboard}},
	}
	res := CompileBatch(context.Background(), jobs, 2)
	if res[0].Err != nil || res[3].Err != nil {
		t.Errorf("good jobs failed: %v / %v", res[0].Err, res[3].Err)
	}
	if res[1].Err == nil {
		t.Error("oversubscribed floorplan should have failed")
	}
	if res[2].Err == nil {
		t.Error("nil program should have failed")
	}
}

// Cancelling the context stops jobs that have not started.
func TestCompileBatchCancellation(t *testing.T) {
	p, err := Kernel("fir")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := CompileBatch(ctx, []CompileJob{{Program: p, Opts: Options{}}}, 1)
	if res[0].Err == nil {
		t.Error("job ran under a cancelled context")
	}
}
