package thermflow

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"

	"thermflow/internal/batch"
	"thermflow/internal/cachestore"
)

// CompileJob pairs a program with the options to compile it under, for
// batch execution.
type CompileJob struct {
	// Program is the program to compile.
	Program *Program
	// Opts are the compile options.
	Opts Options
}

// CompileResult is one CompileJob's outcome.
type CompileResult struct {
	// Compiled is the compilation result (nil when Err is set). Jobs
	// with identical content may share one *Compiled — treat it as
	// read-only.
	Compiled *Compiled
	// Err is the job's isolated error: a compile failure, a recovered
	// panic, or the context error for jobs cancelled before running.
	Err error
	// Cached reports whether the result came from the batch cache.
	Cached bool
}

// CacheTierStats are one cache tier's counters (see BatchStats).
type CacheTierStats struct {
	// Hits and Misses count lookups against this tier.
	Hits, Misses uint64
	// Puts counts entries admitted; Evictions entries removed to
	// respect the tier's byte cap.
	Puts, Evictions uint64
	// Corrupt counts disk entries dropped for failing validation.
	Corrupt uint64
	// Entries and Bytes are the tier's current size; CapBytes its cap.
	Entries  int
	Bytes    int64
	CapBytes int64
}

// BatchStats summarizes a Batch's cache behaviour.
type BatchStats struct {
	// Hits counts jobs served from the cache (either tier, or an
	// identical job already in flight), Misses jobs compiled.
	Hits, Misses uint64
	// Panics counts jobs that panicked (isolated into their result).
	Panics uint64

	// Memory and Disk detail the two store tiers. Disk is zero when no
	// cache directory is configured.
	Memory, Disk CacheTierStats
	// DiskEnabled reports whether a disk tier is configured.
	DiskEnabled bool
}

// BatchConfig parameterizes NewBatchConfig.
type BatchConfig struct {
	// Workers is the compile worker-pool size (<= 0 selects
	// GOMAXPROCS).
	Workers int

	// CacheMemBytes caps the in-memory result tier (<= 0 selects the
	// cachestore default, 256 MiB). The cap bounds estimated resident
	// bytes; least-recently-used results are evicted first.
	CacheMemBytes int64

	// CacheDir, when non-empty, adds a persistent on-disk result tier
	// in that directory (created if missing): results survive the
	// process, so a restarted engine pointed at the same directory
	// comes back warm. Entries are content-addressed by the same hash
	// as the memory tier and are corruption-tolerant — a damaged file
	// is dropped and recompiled, never trusted.
	CacheDir string

	// CacheDiskBytes caps the disk tier (<= 0 selects the cachestore
	// default, 1 GiB); stalest entries are evicted first.
	CacheDiskBytes int64

	// ErrTTL bounds how long a compile failure is served from the
	// cache before the job is retried (<= 0 selects the batch default,
	// 30s). Failures are cached memory-only and expire on their own,
	// so a transient failure never pins a bad result until a manual
	// cache reset.
	ErrTTL time.Duration
}

// Batch is a reusable concurrent compilation engine: a fixed worker
// pool plus a content-keyed result cache keyed on the program text and
// the compile options, so repeated configurations — the common shape
// of policy/floorplan/technology sweeps — are compiled once. A Batch
// is safe for concurrent use and retains its cache across Compile
// calls.
type Batch struct {
	r *batch.Runner

	// solverObs, when set, is injected into every compile's context so
	// the engine's solver runs report wall-clock timings (the /metrics
	// solver histograms). Per-Batch rather than global: several engines
	// in one process observe independently.
	solverObs atomic.Pointer[SolverObserver]
}

// NewBatch returns a memory-only Batch over a worker pool of the given
// size; workers <= 0 selects GOMAXPROCS. Use NewBatchConfig for a
// persistent disk tier or a custom memory cap.
func NewBatch(workers int) *Batch {
	b, err := NewBatchConfig(BatchConfig{Workers: workers})
	if err != nil {
		// Unreachable: only the disk tier can fail to open.
		panic(fmt.Sprintf("thermflow: memory-only batch: %v", err))
	}
	return b
}

// NewBatchConfig builds a Batch over a two-tier result store: a
// byte-capped in-memory LRU tier and, when cfg.CacheDir is set, a
// persistent content-addressed disk tier holding fully serialized
// compilation results (options, allocated IR, register assignment and
// every thermal state). It fails only when the disk tier cannot be
// opened.
func NewBatchConfig(cfg BatchConfig) (*Batch, error) {
	store, err := cachestore.Open(cachestore.Config{
		MaxMemBytes:  cfg.CacheMemBytes,
		SizeOf:       compiledSize,
		Dir:          cfg.CacheDir,
		MaxDiskBytes: cfg.CacheDiskBytes,
		Codec:        compiledCodec{},
	})
	if err != nil {
		return nil, fmt.Errorf("thermflow: opening result store: %w", err)
	}
	r := batch.NewRunnerStore(cfg.Workers, store)
	r.SetErrTTL(cfg.ErrTTL)
	return &Batch{r: r}, nil
}

// Workers returns the worker-pool size.
func (b *Batch) Workers() int { return b.r.Workers() }

// Inflight returns how many keyed compilations currently hold a
// single-flight slot — a point-in-time observability reading for the
// /metrics inflight gauge.
func (b *Batch) Inflight() int { return b.r.Inflight() }

// SetSolverObserver installs obs as the engine's solver-timing
// observer: every subsequent compile reports its fixpoint runs
// (solver name, wall-clock seconds, convergence) to obs. nil removes
// the observer. Safe to call concurrently with compiles; observation
// never influences results or cache identity.
func (b *Batch) SetSolverObserver(obs SolverObserver) {
	if obs == nil {
		b.solverObs.Store(nil)
		return
	}
	b.solverObs.Store(&obs)
}

// Stats returns the cache counters accumulated so far, including the
// per-tier detail of the result store.
func (b *Batch) Stats() BatchStats {
	s := b.r.Stats()
	st := b.r.Store().Stats()
	return BatchStats{
		Hits: s.Hits, Misses: s.Misses, Panics: s.Panics,
		Memory:      tierStats(st.Mem),
		Disk:        tierStats(st.Disk),
		DiskEnabled: st.DiskEnabled,
	}
}

func tierStats(t cachestore.TierStats) CacheTierStats {
	return CacheTierStats{
		Hits: t.Hits, Misses: t.Misses, Puts: t.Puts,
		Evictions: t.Evictions, Corrupt: t.Corrupt,
		Entries: t.Entries, Bytes: t.Bytes, CapBytes: t.CapBytes,
	}
}

// ResetCache drops every cached compilation from both tiers and zeroes
// the counters. The first error removing disk entries is returned; the
// cache is cleared regardless.
func (b *Batch) ResetCache() error { return b.r.ResetCache() }

// Lookup peeks the result store for the compilation filed under key —
// a v2 job ID — without compiling anything. Both tiers are consulted,
// so a restarted engine resolves IDs straight from the disk tier; this
// is how a replayed job log re-materializes terminal results. The
// lookup counts against the cache hit/miss statistics like any read.
func (b *Batch) Lookup(key string) (*Compiled, bool) {
	if key == "" {
		return nil, false
	}
	v, ok := b.r.Store().Get(key)
	if !ok {
		return nil, false
	}
	c, ok := v.(*Compiled)
	return c, ok
}

// Compile compiles every job concurrently and returns one result per
// job, in order. Failures are isolated per job; ctx cancels jobs not
// yet started.
func (b *Batch) Compile(ctx context.Context, jobs []CompileJob) []CompileResult {
	return b.CompileStream(ctx, jobs, nil)
}

// CompileStream is Compile with a completion hook: emit (when non-nil)
// is called once per job, with the job's index and result, as soon as
// that job finishes — the streaming backbone of thermflowd's batch
// endpoint. Emission order is completion order, not job order; emit
// runs on the worker goroutines and must be safe for concurrent use.
func (b *Batch) CompileStream(ctx context.Context, jobs []CompileJob, emit func(int, CompileResult)) []CompileResult {
	bjobs := make([]batch.Job, len(jobs))
	for i, j := range jobs {
		j := j
		bjobs[i] = batch.Job{Key: j.cacheKey(), Fn: func(ctx context.Context) (any, error) {
			if j.Program == nil {
				return nil, fmt.Errorf("thermflow: batch job without a program")
			}
			// The worker context makes long analyses cancellable
			// mid-fixpoint; the runner never caches a
			// cancellation-tainted failure. The engine-wide observer
			// composes with (never replaces) one the caller put on the
			// context — metrics and per-job tracing both see each run.
			if obs := b.solverObs.Load(); obs != nil {
				engine := *obs
				if prev := solverObserverFrom(ctx); prev != nil {
					ctx = WithSolverObserver(ctx, func(solver string, seconds float64, converged bool) {
						engine(solver, seconds, converged)
						prev(solver, seconds, converged)
					})
				} else {
					ctx = WithSolverObserver(ctx, engine)
				}
			}
			return j.Program.CompileContext(ctx, j.Opts)
		}}
	}
	var bemit func(int, batch.Result)
	if emit != nil {
		bemit = func(i int, r batch.Result) { emit(i, toCompileResult(r)) }
	}
	raw := b.r.RunStream(ctx, bjobs, bemit)
	out := make([]CompileResult, len(raw))
	for i, r := range raw {
		out[i] = toCompileResult(r)
	}
	return out
}

// toCompileResult converts the untyped batch result.
func toCompileResult(r batch.Result) CompileResult {
	res := CompileResult{Err: r.Err, Cached: r.Cached}
	if c, ok := r.Value.(*Compiled); ok {
		res.Compiled = c
	}
	return res
}

// CompileBatch compiles many (program, options) jobs across a worker
// pool of the given size (workers <= 0 selects GOMAXPROCS). It is the
// one-shot form of Batch.Compile; construct a Batch to reuse the
// result cache across calls.
func CompileBatch(ctx context.Context, jobs []CompileJob, workers int) []CompileResult {
	return NewBatch(workers).Compile(ctx, jobs)
}

// cacheKey derives the job's content key: the SHA-256 of the JobSpec
// canonical encoding over the program's textual IR and every compile
// option. Two jobs with equal keys compile to interchangeable results.
// For hook-less programs the key equals JobSpec.ID for the same
// content, so a v2 job ID, a batch cache slot and a disk-tier entry
// all name the same thing. Returns "" (uncached) for malformed jobs
// and for options with no canonical encoding (non-finite floats).
func (j CompileJob) cacheKey() string {
	if j.Program == nil || j.Program.Fn == nil {
		return ""
	}
	// Setup/Expect influence nothing at compile time, but downstream
	// consumers reach them through Compiled.Program, so programs with
	// different hooks must not share results. Func values cannot be
	// compared or hashed reliably (closures from one literal share a
	// code pointer), so a hooked program needs an identity in the key.
	// A stable Key (kernels carry one) names the hooks by content and
	// is the same in every process — the property that lets the disk
	// tier serve a restarted engine. Without a Key the Program's
	// pointer stands in: only jobs naming the *same* Program share,
	// and the result never leaves the process (see EncodeCompiled).
	hooks := ""
	switch {
	case j.Program.Key != "":
		hooks = "key:" + j.Program.Key
	case j.Program.Setup != nil || j.Program.Expect != nil:
		hooks = fmt.Sprintf("ptr:%p", j.Program)
	}
	b, err := canonicalJobBytes(j.Program.Fn.String(), hooks, j.Opts)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
