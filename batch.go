package thermflow

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"thermflow/internal/batch"
)

// CompileJob pairs a program with the options to compile it under, for
// batch execution.
type CompileJob struct {
	// Program is the program to compile.
	Program *Program
	// Opts are the compile options.
	Opts Options
}

// CompileResult is one CompileJob's outcome.
type CompileResult struct {
	// Compiled is the compilation result (nil when Err is set). Jobs
	// with identical content may share one *Compiled — treat it as
	// read-only.
	Compiled *Compiled
	// Err is the job's isolated error: a compile failure, a recovered
	// panic, or the context error for jobs cancelled before running.
	Err error
	// Cached reports whether the result came from the batch cache.
	Cached bool
}

// BatchStats summarizes a Batch's cache behaviour.
type BatchStats struct {
	// Hits counts jobs served from the cache, Misses jobs compiled.
	Hits, Misses uint64
	// Panics counts jobs that panicked (isolated into their result).
	Panics uint64
}

// Batch is a reusable concurrent compilation engine: a fixed worker
// pool plus a content-keyed result cache keyed on the program text and
// the compile options, so repeated configurations — the common shape
// of policy/floorplan/technology sweeps — are compiled once. A Batch
// is safe for concurrent use and retains its cache across Compile
// calls.
type Batch struct {
	r *batch.Runner
}

// NewBatch returns a Batch over a worker pool of the given size;
// workers <= 0 selects GOMAXPROCS.
func NewBatch(workers int) *Batch {
	return &Batch{r: batch.NewRunner(workers)}
}

// Workers returns the worker-pool size.
func (b *Batch) Workers() int { return b.r.Workers() }

// Stats returns the cache counters accumulated so far.
func (b *Batch) Stats() BatchStats {
	s := b.r.Stats()
	return BatchStats{Hits: s.Hits, Misses: s.Misses, Panics: s.Panics}
}

// ResetCache drops every cached compilation.
func (b *Batch) ResetCache() { b.r.ResetCache() }

// Compile compiles every job concurrently and returns one result per
// job, in order. Failures are isolated per job; ctx cancels jobs not
// yet started.
func (b *Batch) Compile(ctx context.Context, jobs []CompileJob) []CompileResult {
	return b.CompileStream(ctx, jobs, nil)
}

// CompileStream is Compile with a completion hook: emit (when non-nil)
// is called once per job, with the job's index and result, as soon as
// that job finishes — the streaming backbone of thermflowd's batch
// endpoint. Emission order is completion order, not job order; emit
// runs on the worker goroutines and must be safe for concurrent use.
func (b *Batch) CompileStream(ctx context.Context, jobs []CompileJob, emit func(int, CompileResult)) []CompileResult {
	bjobs := make([]batch.Job, len(jobs))
	for i, j := range jobs {
		j := j
		bjobs[i] = batch.Job{Key: j.cacheKey(), Fn: func(context.Context) (any, error) {
			if j.Program == nil {
				return nil, fmt.Errorf("thermflow: batch job without a program")
			}
			return j.Program.Compile(j.Opts)
		}}
	}
	var bemit func(int, batch.Result)
	if emit != nil {
		bemit = func(i int, r batch.Result) { emit(i, toCompileResult(r)) }
	}
	raw := b.r.RunStream(ctx, bjobs, bemit)
	out := make([]CompileResult, len(raw))
	for i, r := range raw {
		out[i] = toCompileResult(r)
	}
	return out
}

// toCompileResult converts the untyped batch result.
func toCompileResult(r batch.Result) CompileResult {
	res := CompileResult{Err: r.Err, Cached: r.Cached}
	if c, ok := r.Value.(*Compiled); ok {
		res.Compiled = c
	}
	return res
}

// CompileBatch compiles many (program, options) jobs across a worker
// pool of the given size (workers <= 0 selects GOMAXPROCS). It is the
// one-shot form of Batch.Compile; construct a Batch to reuse the
// result cache across calls.
func CompileBatch(ctx context.Context, jobs []CompileJob, workers int) []CompileResult {
	return NewBatch(workers).Compile(ctx, jobs)
}

// cacheKey derives the job's content key: a digest of the program's
// textual IR and every compile option. Two jobs with equal keys
// compile to interchangeable results. Returns "" (uncached) for
// malformed jobs.
func (j CompileJob) cacheKey() string {
	if j.Program == nil || j.Program.Fn == nil {
		return ""
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00", j.Program.Fn.String())
	// Setup/Expect influence nothing at compile time, but downstream
	// consumers reach them through Compiled.Program, so programs with
	// different hooks must not share results. Func values cannot be
	// compared or hashed reliably (closures from one literal share a
	// code pointer), so when hooks are present the Program's identity
	// is part of the key: only jobs naming the *same* Program share.
	if j.Program.Setup != nil || j.Program.Expect != nil {
		fmt.Fprintf(h, "%p\x00", j.Program)
	}
	// Options is a flat struct of scalars, enums, the Tech parameter
	// set and the HeatSeed slice; %#v renders all of it
	// deterministically.
	fmt.Fprintf(h, "%#v", j.Opts)
	return hex.EncodeToString(h.Sum(nil))
}
