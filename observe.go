package thermflow

import (
	"context"
	"time"
)

// SolverObserver receives one callback per thermal-analysis fixpoint
// run: the solver's name ("dense", "sparse"), the wall-clock seconds
// the fixpoint took, and whether it converged within its sweep budget.
// Observers run on the compiling goroutine and must be fast and safe
// for concurrent use; they observe solver runs, never results.
type SolverObserver func(solver string, seconds float64, converged bool)

// solverObserverKey carries a SolverObserver through a compile's
// context. Context transport (rather than package-global state) keeps
// observers per-engine: several Batch instances in one process — the
// in-process e2e cluster harness runs a whole pool of them — each see
// only their own solver runs.
type solverObserverKey struct{}

// WithSolverObserver returns a context whose compiles report solver
// timings to obs. Observation is metadata only: it never influences a
// compile's result or its cache identity.
func WithSolverObserver(ctx context.Context, obs SolverObserver) context.Context {
	if obs == nil {
		return ctx
	}
	return context.WithValue(ctx, solverObserverKey{}, obs)
}

// solverObserverFrom extracts the context's observer, or nil.
func solverObserverFrom(ctx context.Context) SolverObserver {
	obs, _ := ctx.Value(solverObserverKey{}).(SolverObserver)
	return obs
}

// observeSolver times one fixpoint run and reports it to the context's
// observer, if any. It returns immediately-callable start/stop halves
// so the caller's code reads linearly around the Analyze call.
func observeSolver(ctx context.Context, solver Solver) func(converged bool) {
	obs := solverObserverFrom(ctx)
	if obs == nil {
		return func(bool) {}
	}
	start := time.Now()
	return func(converged bool) {
		obs(solver.String(), time.Since(start).Seconds(), converged)
	}
}
