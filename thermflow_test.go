package thermflow

import (
	"strings"
	"testing"

	"thermflow/internal/tdfa"
)

func TestKernelsListed(t *testing.T) {
	names := Kernels()
	if len(names) < 5 {
		t.Fatalf("only %d kernels", len(names))
	}
	for _, n := range names {
		if _, err := Kernel(n); err != nil {
			t.Errorf("Kernel(%s): %v", n, err)
		}
	}
	if _, err := Kernel("bogus"); err == nil {
		t.Error("bogus kernel accepted")
	}
}

func TestParseAndCompile(t *testing.T) {
	p, err := Parse(`
func f(n) {
entry:
  i = const 0
  one = const 1
  br head
head: !trip 20
  c = cmplt i, n
  cbr c, body, exit
body:
  i2 = add i, one
  i = mov i2
  br head
exit:
  ret i
}`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Compile(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Thermal == nil || !c.Thermal.Converged {
		t.Fatal("analysis missing or unconverged")
	}
	if c.Alloc == nil || len(c.Alloc.UsedRegs()) == 0 {
		t.Fatal("allocation missing")
	}
	run, err := c.RunWith([]int64{7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if run.Ret != 7 {
		t.Errorf("ret = %d, want 7", run.Ret)
	}
	if !strings.Contains(c.Heatmap(), "scale:") {
		t.Error("heatmap missing")
	}
}

func TestParseModuleInlinesAndCompiles(t *testing.T) {
	p, err := ParseModule(`
func helper(x) {
entry:
  r = mul x, x
  ret r
}
func main(a) {
entry:
  v = call helper, a
  one = const 1
  w = add v, one
  ret w
}`, "main")
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Compile(Options{})
	if err != nil {
		t.Fatal(err)
	}
	run, err := c.RunWith([]int64{6}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if run.Ret != 37 {
		t.Errorf("main(6) = %d, want 37", run.Ret)
	}
	if !c.Thermal.Converged {
		t.Error("analysis of inlined module did not converge")
	}
	if _, err := ParseModule("func f() {\nentry:\n  ret\n}", "ghost"); err == nil {
		t.Error("unknown root accepted")
	}
}

func TestCompileKernelAndValidate(t *testing.T) {
	p, err := Kernel("dot")
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Compile(Options{Policy: FirstFree})
	if err != nil {
		t.Fatal(err)
	}
	run, err := c.Run(16)
	if err != nil {
		t.Fatal(err)
	}
	if p.Expect != nil && run.Ret != p.Expect(16) {
		t.Errorf("dot(16) = %d, want %d", run.Ret, p.Expect(16))
	}
	acc, gt, err := c.Validate(64)
	if err != nil {
		t.Fatal(err)
	}
	if gt.Steady == nil || gt.DynEnergy <= 0 {
		t.Error("ground truth incomplete")
	}
	// The prediction must correlate with the measurement and identify
	// hot cells (the paper's "reasonable accuracy" claim).
	if acc.Pearson < 0.5 {
		t.Errorf("Pearson = %g, want >= 0.5", acc.Pearson)
	}
	if acc.Top4Overlap < 0.5 {
		t.Errorf("Top4Overlap = %g, want >= 0.5", acc.Top4Overlap)
	}
}

func TestPolicyOrderingViaFacade(t *testing.T) {
	peaks := map[Policy]float64{}
	for _, pol := range []Policy{FirstFree, Chessboard} {
		p, err := Kernel("fir")
		if err != nil {
			t.Fatal(err)
		}
		c, err := p.Compile(Options{Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		peaks[pol] = c.Thermal.PeakTemp
	}
	if peaks[Chessboard] >= peaks[FirstFree] {
		t.Errorf("chessboard peak %g not below first-free %g",
			peaks[Chessboard], peaks[FirstFree])
	}
}

func TestOptimizationsPreserveSemantics(t *testing.T) {
	p, err := Kernel("checksum")
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Compile(Options{Policy: FirstFree})
	if err != nil {
		t.Fatal(err)
	}
	want := p.Expect(12)

	t.Run("spill", func(t *testing.T) {
		oc, err := c.SpillCritical(2)
		if err != nil {
			t.Fatal(err)
		}
		run, err := oc.Run(12)
		if err != nil {
			t.Fatal(err)
		}
		if run.Ret != want {
			t.Errorf("got %d, want %d", run.Ret, want)
		}
	})
	t.Run("split", func(t *testing.T) {
		oc, err := c.SplitCritical(2)
		if err != nil {
			t.Fatal(err)
		}
		run, err := oc.Run(12)
		if err != nil {
			t.Fatal(err)
		}
		if run.Ret != want {
			t.Errorf("got %d, want %d", run.Ret, want)
		}
	})
	t.Run("nops", func(t *testing.T) {
		oc, n, err := c.InsertCooldownNops(c.Thermal.PeakTemp-0.01, 2)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Error("no NOPs inserted")
		}
		run, err := oc.Run(12)
		if err != nil {
			t.Fatal(err)
		}
		if run.Ret != want {
			t.Errorf("got %d, want %d", run.Ret, want)
		}
	})
	t.Run("reassign", func(t *testing.T) {
		oc, err := c.ThermalReassign()
		if err != nil {
			t.Fatal(err)
		}
		run, err := oc.Run(12)
		if err != nil {
			t.Fatal(err)
		}
		if run.Ret != want {
			t.Errorf("got %d, want %d", run.Ret, want)
		}
	})
	t.Run("schedule", func(t *testing.T) {
		oc, err := c.ThermalSchedule()
		if err != nil {
			t.Fatal(err)
		}
		run, err := oc.Run(12)
		if err != nil {
			t.Fatal(err)
		}
		if run.Ret != want {
			t.Errorf("got %d, want %d", run.Ret, want)
		}
	})
	t.Run("promote", func(t *testing.T) {
		oc, _, err := c.PromoteLoads()
		if err != nil {
			t.Fatal(err)
		}
		run, err := oc.Run(12)
		if err != nil {
			t.Fatal(err)
		}
		if run.Ret != want {
			t.Errorf("got %d, want %d", run.Ret, want)
		}
	})
}

func TestEarlyAnalysis(t *testing.T) {
	p, err := Kernel("fir")
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.AnalyzeEarly(EarlyPrior(FirstFree), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Critical) == 0 {
		t.Fatal("early analysis ranked nothing")
	}
	// The early ranking should agree with the post-assignment ranking
	// on at least one of the top-3 variables.
	c, err := p.Compile(Options{Policy: FirstFree})
	if err != nil {
		t.Fatal(err)
	}
	early := map[string]bool{}
	for _, vh := range res.TopCritical(3) {
		early[vh.Value.Name] = true
	}
	agree := false
	for _, vh := range c.Thermal.TopCritical(3) {
		if early[vh.Value.Name] {
			agree = true
		}
	}
	if !agree {
		t.Error("early and post-assignment critical rankings fully disagree")
	}
}

func TestGenerateFacade(t *testing.T) {
	p := Generate(GenerateOptions{Seed: 3, Pressure: 10})
	c, err := p.Compile(Options{Policy: Random, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunWith(nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsAndScaledHeatmap(t *testing.T) {
	p, _ := Kernel("dot")
	c, err := p.Compile(Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.Peak <= 0 || m.Peak < m.Mean {
		t.Errorf("metrics implausible: %+v", m)
	}
	hm := c.HeatmapScaled(300, 400)
	if !strings.Contains(hm, "scale:") {
		t.Error("scaled heatmap missing legend")
	}
}

func TestPolicyByNameFacade(t *testing.T) {
	p, ok := PolicyByName("chessboard")
	if !ok || p != Chessboard {
		t.Error("PolicyByName failed")
	}
}

func TestEarlyPriorMapping(t *testing.T) {
	if EarlyPrior(FirstFree) != tdfa.PriorFirstFree {
		t.Error("FirstFree prior wrong")
	}
	if EarlyPrior(Random) != tdfa.PriorUniform {
		t.Error("Random prior wrong")
	}
	if EarlyPrior(Chessboard) != tdfa.PriorChessboard {
		t.Error("Chessboard prior wrong")
	}
}

func TestSkipAnalysis(t *testing.T) {
	p, _ := Kernel("fib")
	c, err := p.Compile(Options{SkipAnalysis: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.Thermal != nil {
		t.Error("analysis ran despite SkipAnalysis")
	}
	if c.Heatmap() != "" {
		t.Error("heatmap without analysis")
	}
	if _, err := c.SpillCritical(1); err == nil {
		t.Error("SpillCritical without analysis accepted")
	}
	if _, _, err := c.Validate(4); err == nil {
		t.Error("Validate without analysis accepted")
	}
}
