package thermflow

import (
	"encoding/binary"
	"fmt"
	"strings"

	"thermflow/internal/binenc"
	"thermflow/internal/cachestore"
	"thermflow/internal/ir"
	"thermflow/internal/regalloc"
	"thermflow/internal/tdfa"
)

// This file is the durable form of a compilation result: the payload
// the batch engine's disk tier stores under the content hash, and the
// piece that makes a restarted thermflowd come back warm. A Compiled
// is rebuilt from first principles — options through their JSON codec,
// functions through the textual IR (print → parse round-trips blocks
// and instruction IDs, which the thermal states are indexed by), the
// register assignment by value name (value IDs do not survive a
// reparse; names do), and the full tdfa.Result through its binary
// codec.
//
// Not everything can be durable: Setup/Expect hooks are function
// values. A Program carrying hooks is only encodable when it also
// carries a stable Key (kernels do — see Kernel); on decode a kernel
// Key resolves back through the workload registry, restoring the
// hooks, while any other Key yields the IR and the Key with nil
// hooks. A hooked Program without a Key is identified by its pointer,
// which means nothing to another process, so EncodeCompiled declines
// it and the result stays memory-only.

// compiledCodecVersion versions the EncodeCompiled layout. Bump it on
// any change: stale disk entries then fail to decode, count as
// corrupt, and are deleted — a clean format migration.
const compiledCodecVersion = 1

// EncodeCompiled renders c durable. It returns cachestore.ErrUnencodable
// (wrapped) for results that carry process-local identity and must stay
// memory-only.
func EncodeCompiled(c *Compiled) ([]byte, error) {
	if c == nil || c.Alloc == nil || c.Alloc.Fn == nil || c.Program == nil || c.Program.Fn == nil {
		return nil, fmt.Errorf("thermflow: encode: incomplete compilation: %w", cachestore.ErrUnencodable)
	}
	if (c.Program.Setup != nil || c.Program.Expect != nil) && c.Program.Key == "" {
		return nil, fmt.Errorf("thermflow: encode: program with hooks but no stable key: %w", cachestore.ErrUnencodable)
	}
	// The textual IR lists blocks in order and the parser makes the
	// first label the entry; a function whose entry is not its first
	// block would come back subtly different.
	for _, fn := range []*ir.Function{c.Alloc.Fn, c.Program.Fn} {
		if len(fn.Blocks) == 0 || fn.Entry != fn.Blocks[0] {
			return nil, fmt.Errorf("thermflow: encode: entry block is not first: %w", cachestore.ErrUnencodable)
		}
	}

	optsJSON, err := c.Opts.MarshalJSON()
	if err != nil {
		return nil, fmt.Errorf("thermflow: encode: options: %w", err)
	}

	b := binary.LittleEndian.AppendUint16(nil, compiledCodecVersion)
	b = binenc.AppendBytes(b, optsJSON)

	sameFn := c.Program.Fn == c.Alloc.Fn
	var flags byte
	if sameFn {
		flags |= 1
	}
	if c.Thermal != nil {
		flags |= 2
	}
	b = append(b, flags)
	b = binenc.AppendString(b, c.Program.Key)
	b = binenc.AppendString(b, c.Alloc.Fn.String())
	if !sameFn {
		b = binenc.AppendString(b, c.Program.Fn.String())
	}

	// Register assignment, by value name (only assigned values; the
	// rest decode to -1).
	assigned := 0
	for _, reg := range c.Alloc.RegOf {
		if reg >= 0 {
			assigned++
		}
	}
	b = binary.AppendUvarint(b, uint64(assigned))
	for _, v := range c.Alloc.Fn.Values() {
		if reg := c.Alloc.RegOf[v.ID]; reg >= 0 {
			b = binenc.AppendString(b, v.Name)
			b = binary.AppendVarint(b, int64(reg))
		}
	}
	b = binary.AppendUvarint(b, uint64(len(c.Alloc.Spilled)))
	for _, name := range c.Alloc.Spilled {
		b = binenc.AppendString(b, name)
	}
	b = binary.AppendUvarint(b, uint64(c.Alloc.SpillLoads))
	b = binary.AppendUvarint(b, uint64(c.Alloc.SpillStores))
	b = binary.AppendUvarint(b, uint64(c.Alloc.Rounds))

	if c.Thermal != nil {
		if b, err = tdfa.EncodeResult(b, c.Thermal); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// DecodeCompiled reverses EncodeCompiled. Every structural mismatch is
// an error (the cache layer treats it as a corrupt entry), never a
// panic.
//
// The decoded Program is reconstructed from the persisted IR text and
// Key. When the Key names a built-in kernel whose current definition
// matches the persisted text, the canonical kernel Program is used —
// hooks (Setup/Expect) and all — so a disk-served kernel result
// validates and simulates exactly like a freshly compiled one. For
// any other keyed program the hooks cannot be reconstructed and are
// nil.
func DecodeCompiled(data []byte) (*Compiled, error) {
	r := binenc.NewReader(data)
	if v := r.U16(); v != compiledCodecVersion {
		return nil, fmt.Errorf("thermflow: decode: codec version %d, want %d", v, compiledCodecVersion)
	}
	optsJSON := r.Bytes()
	flags := r.Byte()
	progKey := r.Str()
	allocText := r.Str()
	sameFn := flags&1 != 0
	progText := ""
	if !sameFn {
		progText = r.Str()
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("thermflow: decode: %w", err)
	}

	var opts Options
	if err := opts.UnmarshalJSON(optsJSON); err != nil {
		return nil, fmt.Errorf("thermflow: decode: options: %w", err)
	}
	fp, err := opts.floorplan()
	if err != nil {
		return nil, fmt.Errorf("thermflow: decode: floorplan: %w", err)
	}

	allocFn, err := ir.Parse(allocText)
	if err != nil {
		return nil, fmt.Errorf("thermflow: decode: allocated function: %w", err)
	}
	progFn := allocFn
	if !sameFn {
		if progFn, err = ir.Parse(progText); err != nil {
			return nil, fmt.Errorf("thermflow: decode: source function: %w", err)
		}
	}

	alloc := &regalloc.Allocation{
		Fn:     allocFn,
		RegOf:  make([]int, allocFn.NumValues()),
		Policy: opts.Policy,
		FP:     fp,
	}
	for i := range alloc.RegOf {
		alloc.RegOf[i] = -1
	}
	nassigned := r.Count()
	for i := 0; i < nassigned && r.Err() == nil; i++ {
		name := r.Str()
		reg := int(r.Varint())
		if r.Err() != nil {
			break
		}
		v := allocFn.ValueNamed(name)
		if v == nil {
			return nil, fmt.Errorf("thermflow: decode: assignment names unknown value %q", name)
		}
		if reg < 0 || reg >= fp.NumRegs {
			return nil, fmt.Errorf("thermflow: decode: value %q assigned out-of-range register %d", name, reg)
		}
		alloc.RegOf[v.ID] = reg
	}
	nspilled := r.Count()
	for i := 0; i < nspilled && r.Err() == nil; i++ {
		alloc.Spilled = append(alloc.Spilled, r.Str())
	}
	alloc.SpillLoads = int(r.Uvarint())
	alloc.SpillStores = int(r.Uvarint())
	alloc.Rounds = int(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("thermflow: decode: %w", err)
	}

	c := &Compiled{
		Program: decodedProgram(progKey, progFn),
		Alloc:   alloc,
		Opts:    opts,
		fp:      fp,
		tech:    opts.tech(),
	}
	if flags&2 != 0 {
		res, err := tdfa.DecodeResult(r.Rest(), allocFn)
		if err != nil {
			return nil, err
		}
		c.Thermal = res
	} else if r.Len() != 0 {
		return nil, fmt.Errorf("thermflow: decode: %d trailing bytes", r.Len())
	}
	return c, nil
}

// kernelKeyPrefix marks Program.Key values minted by Kernel.
const kernelKeyPrefix = "kernel:"

// decodedProgram rebuilds the result's Program. A kernel key resolves
// back through the workload registry so the decoded Program regains
// its Setup/Expect hooks — but only when the registry's current IR
// matches the persisted text (a changed kernel definition means the
// hooks may no longer describe this program; then the parsed text
// stands alone, hook-less).
func decodedProgram(key string, fn *ir.Function) *Program {
	if name, ok := strings.CutPrefix(key, kernelKeyPrefix); ok {
		if k, err := Kernel(name); err == nil && k.Fn.String() == fn.String() {
			return k
		}
	}
	return &Program{Fn: fn, Key: key}
}

// compiledCodec adapts the Compiled codec to the cache store. Anything
// that is not a *Compiled — in particular the batch layer's cached
// failures — is unencodable and stays memory-only.
type compiledCodec struct{}

func (compiledCodec) Encode(v any) ([]byte, error) {
	c, ok := v.(*Compiled)
	if !ok {
		return nil, cachestore.ErrUnencodable
	}
	return EncodeCompiled(c)
}

func (compiledCodec) Decode(data []byte) (any, error) {
	return DecodeCompiled(data)
}

// compiledSize estimates a cache entry's resident footprint for the
// memory tier's byte cap. Thermal states dominate: one float64 per
// grid cell per program point, across instruction and block states.
func compiledSize(v any) int64 {
	c, ok := v.(*Compiled)
	if !ok {
		return 512 // cached failures and other small residue
	}
	const perInstr = 160 // rough IR + assignment cost per instruction
	size := int64(2048)
	if c.Alloc != nil && c.Alloc.Fn != nil {
		size += int64(c.Alloc.Fn.NumInstrs()) * perInstr
	}
	if t := c.Thermal; t != nil {
		cells := int64(len(t.Peak))
		states := int64(len(t.InstrState)+len(t.BlockIn)) + 2
		size += states * (cells*8 + 32)
		size += int64(len(t.RegPeak)+len(t.DeltaHistory)) * 8
		size += int64(len(t.Critical)) * 64
	}
	return size
}
