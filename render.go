package thermflow

import (
	"thermflow/internal/metrics"
	"thermflow/internal/report"
	"thermflow/internal/thermal"
)

// Heatmap renders the predicted peak thermal state as ASCII art.
func (c *Compiled) Heatmap() string {
	if c.Thermal == nil {
		return ""
	}
	return report.Heatmap(c.Thermal.Peak, c.fp, 0, 0)
}

// HeatmapScaled renders the predicted peak state on a fixed temperature
// scale, for comparing maps across policies (Fig. 1 style).
func (c *Compiled) HeatmapScaled(lo, hi float64) string {
	if c.Thermal == nil {
		return ""
	}
	return report.Heatmap(c.Thermal.Peak, c.fp, lo, hi)
}

// Metrics summarizes the predicted peak state (hot-spot magnitude,
// gradients, uniformity).
func (c *Compiled) Metrics() metrics.Thermal {
	if c.Thermal == nil {
		return metrics.Thermal{}
	}
	return metrics.Summarize(c.Thermal.Peak, c.fp)
}

// StateMetrics summarizes an arbitrary thermal state (e.g. a ground
// truth) on this compile's floorplan.
func (c *Compiled) StateMetrics(s thermal.State) metrics.Thermal {
	return metrics.Summarize(s, c.fp)
}

// StateHeatmap renders an arbitrary thermal state on this compile's
// floorplan with a fixed scale (0,0 = auto).
func (c *Compiled) StateHeatmap(s thermal.State, lo, hi float64) string {
	return report.Heatmap(s, c.fp, lo, hi)
}
