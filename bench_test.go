package thermflow_test

// One benchmark per reproduced figure/experiment (regenerating the
// corresponding table or map each iteration), plus micro-benchmarks of
// the core pipeline stages. Run with:
//
//	go test -bench=. -benchmem
//
// The per-experiment benchmarks use the drivers in
// internal/experiments with Quick sweeps; `go run ./cmd/experiments`
// prints the full tables recorded in EXPERIMENTS.md.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"thermflow"
	"thermflow/internal/batch"
	"thermflow/internal/experiments"
	"thermflow/internal/power"
	"thermflow/internal/sim"
	"thermflow/internal/thermal"
)

// quick is the shared benchmark configuration (no output).
var quick = experiments.Config{Quick: true}

// BenchmarkFig1PolicyMaps regenerates Figure 1: thermal maps and
// metrics for the first-free, random, chessboard (and coldest)
// register-assignment policies.
func BenchmarkFig1PolicyMaps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig1(quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2Convergence regenerates Figure 2's behaviour: the δ
// sweep and the irregular-data-usage sweep of the fixpoint iteration.
func BenchmarkFig2Convergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig2(quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3Accuracy regenerates the prediction-accuracy table
// (compile-time analysis vs trace-driven ground truth).
func BenchmarkE3Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E3(quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4Granularity regenerates the thermal-grid granularity
// sweep (fidelity vs analysis cost).
func BenchmarkE4Granularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E4(quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5Pressure regenerates the register-pressure sweep (the
// chessboard breakdown).
func BenchmarkE5Pressure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E5(quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6Optimizations regenerates the optimization-efficacy table
// (every §4 transform in its target scenario).
func BenchmarkE6Optimizations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E6(quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7Reliability regenerates the leakage/MTTF table.
func BenchmarkE7Reliability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E7(quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8BankGating regenerates the bank-gating vs spreading
// trade-off table.
func BenchmarkE8BankGating(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E8(quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9WholeChip regenerates the whole-processor unit
// temperature table (§5 extension).
func BenchmarkE9WholeChip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E9(quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10VLIWBinding regenerates the VLIW slot-binding comparison
// ([4], the §1 sibling technique).
func BenchmarkE10VLIWBinding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E10(quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA1Kappa regenerates the κ ablation.
func BenchmarkA1Kappa(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.A1(quick); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA2Join regenerates the join-operator ablation.
func BenchmarkA2Join(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.A2(quick); err != nil {
			b.Fatal(err)
		}
	}
}

// --- batch engine and solver benchmarks (see scripts/bench_batch.sh,
// which records these in BENCH_batch.json) ---

// fig1SweepJobs builds the Figure 1 policy sweep as batch jobs: the
// same workload compiled under first-free, random (five assignment
// seeds), chessboard and coldest — the per-figure fan-out the batch
// engine parallelizes.
func fig1SweepJobs() []thermflow.CompileJob {
	p := thermflow.Generate(thermflow.GenerateOptions{
		Seed: 42, Pressure: 16, Segments: 2, LoopDepth: 3, OpsPerBlock: 5, TripCount: 24,
	})
	var jobs []thermflow.CompileJob
	add := func(pol thermflow.Policy, seed int64) {
		jobs = append(jobs, thermflow.CompileJob{Program: p, Opts: thermflow.Options{Policy: pol, Seed: seed}})
	}
	add(thermflow.FirstFree, 1)
	for seed := int64(1); seed <= 5; seed++ {
		add(thermflow.Random, seed)
	}
	add(thermflow.Chessboard, 1)
	add(thermflow.Coldest, 1)
	return jobs
}

// BenchmarkCompileBatch measures the batch engine on the fig1 policy
// sweep at several worker-pool sizes. Each iteration uses a fresh
// engine so the content cache cannot serve results across iterations —
// the numbers measure compilation throughput, not cache hits.
func BenchmarkCompileBatch(b *testing.B) {
	jobs := fig1SweepJobs()
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := thermflow.NewBatch(workers).Compile(context.Background(), jobs)
				for _, r := range res {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}

// BenchmarkCompileBatchCached measures the same sweep served from a
// warm content cache — the repeated-configuration case.
func BenchmarkCompileBatchCached(b *testing.B) {
	jobs := fig1SweepJobs()
	eng := thermflow.NewBatch(8)
	eng.Compile(context.Background(), jobs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := eng.Compile(context.Background(), jobs)
		for _, r := range res {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// BenchmarkBatchOverlap measures the worker pool's fan-out on jobs
// with a fixed 5 ms wait each (standing in for jobs with an off-CPU
// component). At w workers the wall clock must approach
// (jobs/w)·wait; the workers=8 over workers=1 ratio is the pool's
// demonstrated concurrency even on a single-CPU host, where the
// CPU-bound compile sweep above cannot parallelize.
func BenchmarkBatchOverlap(b *testing.B) {
	const jobs = 8
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bjobs := make([]batch.Job, jobs)
				for j := range bjobs {
					bjobs[j] = batch.Job{Fn: func(context.Context) (any, error) {
						time.Sleep(5 * time.Millisecond)
						return nil, nil
					}}
				}
				for _, r := range batch.NewRunner(workers).Run(context.Background(), bjobs) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}

// benchSolver measures one solver on a cold-start analysis of a
// mid-sized generated program (the regime where sweep counts are
// large).
func benchSolver(b *testing.B, solver thermflow.Solver) {
	p := thermflow.Generate(thermflow.GenerateOptions{
		Seed: 2, Pressure: 10, Irregularity: 0.2, Segments: 6, LoopDepth: 2,
	})
	opts := thermflow.Options{Solver: solver, NoWarmStart: true, MaxIter: 4096}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := p.Compile(opts)
		if err != nil {
			b.Fatal(err)
		}
		if !c.Thermal.Converged {
			b.Fatal("analysis did not converge")
		}
	}
}

// BenchmarkSolverDense measures the dense reference solver.
func BenchmarkSolverDense(b *testing.B) { benchSolver(b, thermflow.SolverDense) }

// BenchmarkSolverSparse measures the sparse worklist solver on the
// same input.
func BenchmarkSolverSparse(b *testing.B) { benchSolver(b, thermflow.SolverSparse) }

// --- region solve plane ---

// benchMega is the partitioning target: a wide mega-module (8 arms of
// depth-2 loop nests off a dispatch chain) whose cold-start fixpoint
// runs long enough that cutting it into regions pays.
func benchMega() *thermflow.Program {
	return thermflow.GenerateMega(thermflow.MegaOptions{
		Seed: 7, Arms: 8, Depth: 2, OpsPerBlock: 8, Pressure: 16, TripCount: 16,
	})
}

// benchMegaSolver measures one solver configuration on the cold-start
// mega-module analysis and reports its rounds to fixpoint.
func benchMegaSolver(b *testing.B, opts thermflow.Options) {
	p := benchMega()
	opts.NoWarmStart = true
	opts.MaxIter = 4096
	b.ReportAllocs()
	b.ResetTimer()
	rounds := 0
	for i := 0; i < b.N; i++ {
		c, err := p.Compile(opts)
		if err != nil {
			b.Fatal(err)
		}
		if !c.Thermal.Converged {
			b.Fatal("analysis did not converge")
		}
		rounds = c.Thermal.Iterations
	}
	b.ReportMetric(float64(rounds), "rounds")
}

// BenchmarkMegaSolverDense is the monolithic Fig. 2 reference on the
// mega-module.
func BenchmarkMegaSolverDense(b *testing.B) {
	benchMegaSolver(b, thermflow.Options{Solver: thermflow.SolverDense})
}

// BenchmarkMegaSolverSparse is the monolithic worklist solver on the
// mega-module — the baseline the region plane is scored against.
func BenchmarkMegaSolverSparse(b *testing.B) {
	benchMegaSolver(b, thermflow.Options{Solver: thermflow.SolverSparse})
}

// BenchmarkMegaSolverRegion is the partitioned exact-mode solve
// (bit-identical to dense, regions swept in parallel DAG waves).
func BenchmarkMegaSolverRegion(b *testing.B) {
	benchMegaSolver(b, thermflow.Options{Solver: thermflow.SolverRegion, Regions: 8})
}

// BenchmarkMegaSolverRegionSlack is the partitioned Jacobi solve with
// a σ = 0.02 K boundary budget (fewer synchronization rounds).
func BenchmarkMegaSolverRegionSlack(b *testing.B) {
	benchMegaSolver(b, thermflow.Options{
		Solver: thermflow.SolverRegion, Regions: 8, RegionDelta: 0.02,
	})
}

// --- core pipeline micro-benchmarks ---

// BenchmarkCompile measures allocation alone (no analysis) on the FIR
// kernel.
func BenchmarkCompile(b *testing.B) {
	prog, err := thermflow.Kernel("fir")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.Compile(thermflow.Options{SkipAnalysis: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyze measures the thermal data-flow analysis
// (warm-started) on the compiled FIR kernel.
func BenchmarkAnalyze(b *testing.B) {
	prog, err := thermflow.Kernel("fir")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := prog.Compile(thermflow.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !c.Thermal.Converged {
			b.Fatal("analysis did not converge")
		}
	}
}

// BenchmarkAnalyzeColdStart measures the raw Fig. 2 iteration without
// the steady-state warm start (the ablated configuration).
func BenchmarkAnalyzeColdStart(b *testing.B) {
	prog, err := thermflow.Kernel("fir")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.Compile(thermflow.Options{NoWarmStart: true, MaxIter: 512}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpreter measures IR execution with trace recording.
func BenchmarkInterpreter(b *testing.B) {
	prog, err := thermflow.Kernel("fir")
	if err != nil {
		b.Fatal(err)
	}
	c, err := prog.Compile(thermflow.Options{SkipAnalysis: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Run(48); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplay measures the trace-driven thermal ground truth — the
// feedback cost the compile-time analysis avoids.
func BenchmarkReplay(b *testing.B) {
	prog, err := thermflow.Kernel("fir")
	if err != nil {
		b.Fatal(err)
	}
	c, err := prog.Compile(thermflow.Options{SkipAnalysis: true})
	if err != nil {
		b.Fatal(err)
	}
	run, err := c.Run(48)
	if err != nil {
		b.Fatal(err)
	}
	tech := power.Default65nm()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Replay(run.Trace, sim.ReplayConfig{
			Tech: tech, FP: c.Floorplan(), Sustained: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThermalStep measures one transient step of the RC grid (the
// inner kernel of both the analysis and the replay) across grid sizes —
// the compute-cost side of the paper's §3 granularity trade-off.
func BenchmarkThermalStep(b *testing.B) {
	for _, dim := range []int{4, 8, 16, 32} {
		dim := dim
		b.Run(fmt.Sprintf("%dx%d", dim, dim), func(b *testing.B) {
			grid, err := thermal.NewGrid(dim, dim, power.Default65nm())
			if err != nil {
				b.Fatal(err)
			}
			s := grid.NewState()
			pow := make([]float64, grid.NumCells())
			pow[grid.NumCells()/2] = 3e-3
			dt := grid.MaxStableStep()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				grid.Step(s, pow, dt)
			}
		})
	}
}

// BenchmarkSteadyState measures the Gauss-Seidel steady-state solve
// used by the warm start.
func BenchmarkSteadyState(b *testing.B) {
	grid, err := thermal.NewGrid(8, 8, power.Default65nm())
	if err != nil {
		b.Fatal(err)
	}
	pow := make([]float64, grid.NumCells())
	pow[27] = 3e-3
	pow[4] = 1e-3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grid.SteadyState(pow)
	}
}
