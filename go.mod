module thermflow

go 1.24
