package thermflow

import "testing"

func TestAutoTuneReachesTarget(t *testing.T) {
	p, err := Kernel("fir")
	if err != nil {
		t.Fatal(err)
	}
	base, err := p.Compile(Options{Policy: FirstFree})
	if err != nil {
		t.Fatal(err)
	}
	amb := base.Tech().TAmbient
	target := amb + 8
	if base.Thermal.PeakTemp <= target {
		t.Skip("baseline already under target")
	}
	tuned, steps, err := base.AutoTune(target)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("no steps attempted")
	}
	if tuned.Thermal.PeakTemp > base.Thermal.PeakTemp {
		t.Errorf("tuning raised the peak: %g -> %g",
			base.Thermal.PeakTemp, tuned.Thermal.PeakTemp)
	}
	// Each applied step must have improved the peak.
	for _, s := range steps {
		if s.Applied && s.PeakAfter >= s.PeakBefore {
			t.Errorf("step %s applied without improvement: %g -> %g",
				s.Name, s.PeakBefore, s.PeakAfter)
		}
	}
	// Semantics preserved.
	want, err := base.Run(12)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tuned.Run(12)
	if err != nil {
		t.Fatal(err)
	}
	if want.Ret != got.Ret {
		t.Errorf("tuning changed the result: %d -> %d", want.Ret, got.Ret)
	}
}

func TestAutoTuneTrivialTarget(t *testing.T) {
	p, err := Kernel("fib")
	if err != nil {
		t.Fatal(err)
	}
	base, err := p.Compile(Options{Policy: Chessboard})
	if err != nil {
		t.Fatal(err)
	}
	// Target above the current peak: nothing should be attempted.
	tuned, steps, err := base.AutoTune(base.Thermal.PeakTemp + 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 0 {
		t.Errorf("steps attempted despite met target: %v", steps)
	}
	if tuned != base {
		t.Error("compile replaced despite met target")
	}
}

func TestAutoTuneUnreachableTargetStopsGracefully(t *testing.T) {
	p, err := Kernel("fir")
	if err != nil {
		t.Fatal(err)
	}
	base, err := p.Compile(Options{Policy: FirstFree})
	if err != nil {
		t.Fatal(err)
	}
	// Ambient is unreachable; AutoTune must exhaust its candidates and
	// return the best effort without error.
	tuned, steps, err := base.AutoTune(base.Tech().TAmbient)
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Thermal.PeakTemp >= base.Thermal.PeakTemp {
		t.Error("no improvement at all")
	}
	if len(steps) < 2 {
		t.Errorf("expected multiple attempts, got %d", len(steps))
	}
}

func TestAutoTuneRequiresAnalysis(t *testing.T) {
	p, _ := Kernel("fib")
	c, err := p.Compile(Options{SkipAnalysis: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.AutoTune(300); err == nil {
		t.Error("AutoTune without analysis accepted")
	}
}
