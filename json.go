package thermflow

import (
	"encoding/json"
	"fmt"

	"thermflow/internal/floorplan"
	"thermflow/internal/power"
	"thermflow/internal/tdfa"
)

// This file is the wire codec for Options: the JSON form names enums
// (policy, solver, layout, join) instead of exposing their integer
// values, and omits everything left at its default, so a request body
// of {} compiles exactly like the zero Options. The codec is what
// thermflowd (internal/server), the api package and the client speak.

// UnknownNameError reports a JSON enum field whose value names no
// known policy, solver, layout or join operator. thermflowd maps it to
// 422 Unprocessable Entity: the request is well-formed JSON but cannot
// be satisfied.
type UnknownNameError struct {
	// Kind is the field ("policy", "solver", "layout", "join");
	// Name the unresolvable value.
	Kind, Name string
}

func (e *UnknownNameError) Error() string {
	return fmt.Sprintf("thermflow: unknown %s %q", e.Kind, e.Name)
}

// techJSON mirrors power.Tech with snake_case wire names.
type techJSON struct {
	Name         string  `json:"name,omitempty"`
	EnergyRead   float64 `json:"energy_read,omitempty"`
	EnergyWrite  float64 `json:"energy_write,omitempty"`
	CycleTime    float64 `json:"cycle_time,omitempty"`
	LeakBase     float64 `json:"leak_base,omitempty"`
	LeakBeta     float64 `json:"leak_beta,omitempty"`
	T0           float64 `json:"t0,omitempty"`
	TAmbient     float64 `json:"t_ambient,omitempty"`
	CellEdge     float64 `json:"cell_edge,omitempty"`
	Thickness    float64 `json:"thickness,omitempty"`
	VolHeatCap   float64 `json:"vol_heat_cap,omitempty"`
	Conductivity float64 `json:"conductivity,omitempty"`
	PackageR     float64 `json:"package_r,omitempty"`
	DieArea      float64 `json:"die_area,omitempty"`
}

func techToJSON(t power.Tech) *techJSON {
	if t == (power.Tech{}) {
		return nil
	}
	return &techJSON{
		Name: t.Name, EnergyRead: t.EnergyRead, EnergyWrite: t.EnergyWrite,
		CycleTime: t.CycleTime, LeakBase: t.LeakBase, LeakBeta: t.LeakBeta,
		T0: t.T0, TAmbient: t.TAmbient, CellEdge: t.CellEdge,
		Thickness: t.Thickness, VolHeatCap: t.VolHeatCap,
		Conductivity: t.Conductivity, PackageR: t.PackageR, DieArea: t.DieArea,
	}
}

func (t *techJSON) tech() power.Tech {
	if t == nil {
		return power.Tech{}
	}
	return power.Tech{
		Name: t.Name, EnergyRead: t.EnergyRead, EnergyWrite: t.EnergyWrite,
		CycleTime: t.CycleTime, LeakBase: t.LeakBase, LeakBeta: t.LeakBeta,
		T0: t.T0, TAmbient: t.TAmbient, CellEdge: t.CellEdge,
		Thickness: t.Thickness, VolHeatCap: t.VolHeatCap,
		Conductivity: t.Conductivity, PackageR: t.PackageR, DieArea: t.DieArea,
	}
}

// optionsJSON is the wire form of Options.
type optionsJSON struct {
	NumRegs      int       `json:"num_regs,omitempty"`
	Policy       string    `json:"policy,omitempty"`
	Seed         int64     `json:"seed,omitempty"`
	HeatSeed     []float64 `json:"heat_seed,omitempty"`
	GridW        int       `json:"grid_w,omitempty"`
	GridH        int       `json:"grid_h,omitempty"`
	Layout       string    `json:"layout,omitempty"`
	Tech         *techJSON `json:"tech,omitempty"`
	Solver       string    `json:"solver,omitempty"`
	Regions      int       `json:"regions,omitempty"`
	RegionDelta  float64   `json:"region_delta,omitempty"`
	Delta        float64   `json:"delta,omitempty"`
	MaxIter      int       `json:"max_iter,omitempty"`
	Kappa        float64   `json:"kappa,omitempty"`
	Join         string    `json:"join,omitempty"`
	WithLeakage  bool      `json:"with_leakage,omitempty"`
	NoWarmStart  bool      `json:"no_warm_start,omitempty"`
	DefaultTrip  int       `json:"default_trip,omitempty"`
	SkipAnalysis bool      `json:"skip_analysis,omitempty"`
}

// MarshalJSON encodes the options with enums by name, omitting every
// field left at its default.
func (o Options) MarshalJSON() ([]byte, error) {
	w := optionsJSON{
		NumRegs: o.NumRegs, Seed: o.Seed, HeatSeed: o.HeatSeed,
		GridW: o.GridW, GridH: o.GridH, Tech: techToJSON(o.Tech),
		Regions: o.Regions, RegionDelta: o.RegionDelta,
		Delta: o.Delta, MaxIter: o.MaxIter, Kappa: o.Kappa,
		WithLeakage: o.WithLeakage, NoWarmStart: o.NoWarmStart,
		DefaultTrip: o.DefaultTrip, SkipAnalysis: o.SkipAnalysis,
	}
	if o.Policy != FirstFree {
		w.Policy = o.Policy.String()
	}
	if o.Layout != floorplan.RowMajor {
		w.Layout = o.Layout.String()
	}
	if o.Solver != SolverDense {
		w.Solver = o.Solver.String()
	}
	if o.JoinOp != tdfa.JoinWeighted {
		w.Join = o.JoinOp.String()
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the wire form produced by MarshalJSON. Absent
// or empty enum fields select the defaults; a name that resolves to no
// known policy/solver/layout/join yields an *UnknownNameError.
func (o *Options) UnmarshalJSON(data []byte) error {
	var w optionsJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	out := Options{
		NumRegs: w.NumRegs, Seed: w.Seed, HeatSeed: w.HeatSeed,
		GridW: w.GridW, GridH: w.GridH, Tech: w.Tech.tech(),
		Regions: w.Regions, RegionDelta: w.RegionDelta,
		Delta: w.Delta, MaxIter: w.MaxIter, Kappa: w.Kappa,
		WithLeakage: w.WithLeakage, NoWarmStart: w.NoWarmStart,
		DefaultTrip: w.DefaultTrip, SkipAnalysis: w.SkipAnalysis,
	}
	if w.Policy != "" {
		p, ok := PolicyByName(w.Policy)
		if !ok {
			return &UnknownNameError{Kind: "policy", Name: w.Policy}
		}
		out.Policy = p
	}
	if w.Layout != "" {
		l, ok := floorplan.LayoutByName(w.Layout)
		if !ok {
			return &UnknownNameError{Kind: "layout", Name: w.Layout}
		}
		out.Layout = l
	}
	if w.Solver != "" {
		s, ok := SolverByName(w.Solver)
		if !ok {
			return &UnknownNameError{Kind: "solver", Name: w.Solver}
		}
		out.Solver = s
	}
	if w.Join != "" {
		j, ok := tdfa.JoinByName(w.Join)
		if !ok {
			return &UnknownNameError{Kind: "join", Name: w.Join}
		}
		out.JoinOp = j
	}
	*o = out
	return nil
}
