package thermflow

import (
	"fmt"

	"thermflow/internal/floorplan"
	"thermflow/internal/power"
	"thermflow/internal/regalloc"
	"thermflow/internal/tdfa"
)

// This file lifts the tdfa region-session protocol to the JobSpec
// level: RegionSession is what a distributed coordinator (the gateway)
// and the per-region backends both construct — deterministically, from
// the spec alone — to solve one huge program across a pool. The
// coordinator keeps the authoritative boundary states and drives
// rounds; backends advance their regions and ship result fragments
// back; Finalize assembles a *Compiled indistinguishable from a
// single-process compile of the same spec.

// RegionSession is one participant's state in a distributed region
// solve. Not safe for concurrent use; callers serialize access.
type RegionSession struct {
	prog  *Program
	opts  Options
	alloc *regalloc.Allocation
	fp    *floorplan.Floorplan
	tech  power.Tech
	sess  *tdfa.RegionSession
	waves [][]int
}

// NewRegionSession builds a session from a job spec. Construction is
// deterministic: every participant handed the same spec derives the
// identical partition, initial states and block numbering. The spec's
// solver is forced to SolverRegion; SkipAnalysis specs are rejected —
// a region job exists to run the analysis.
func NewRegionSession(spec JobSpec) (*RegionSession, error) {
	opts := spec.Opts
	if opts.SkipAnalysis {
		return nil, fmt.Errorf("thermflow: region solve with skip_analysis set")
	}
	opts.Solver = SolverRegion
	p, err := Parse(spec.Source)
	if err != nil {
		return nil, fmt.Errorf("thermflow: region session source: %w", err)
	}
	fp, err := opts.floorplan()
	if err != nil {
		return nil, err
	}
	tech := opts.tech()
	alloc, err := regalloc.Allocate(p.Fn, regalloc.Config{
		NumRegs:     opts.numRegs(),
		Policy:      opts.Policy,
		Seed:        opts.Seed,
		HeatSeed:    opts.HeatSeed,
		FP:          fp,
		DefaultTrip: opts.DefaultTrip,
	})
	if err != nil {
		return nil, fmt.Errorf("thermflow: allocation failed: %w", err)
	}
	sess, err := tdfa.NewRegionSession(alloc.Fn, tdfa.Config{
		Tech:        tech,
		FP:          fp,
		Alloc:       alloc,
		Solver:      tdfa.SolverRegion,
		Regions:     opts.Regions,
		RegionSlack: opts.RegionDelta,
		Delta:       opts.Delta,
		MaxIter:     opts.MaxIter,
		Kappa:       opts.Kappa,
		JoinOp:      opts.JoinOp,
		WithLeakage: opts.WithLeakage,
		NoWarmStart: opts.NoWarmStart,
		DefaultTrip: opts.DefaultTrip,
	})
	if err != nil {
		return nil, fmt.Errorf("thermflow: region session: %w", err)
	}
	s := &RegionSession{prog: p, opts: opts, alloc: alloc, fp: fp, tech: tech, sess: sess}
	s.waves = regionWaves(sess)
	return s, nil
}

// regionWaves layers the region DAG by longest-path depth: regions in
// one wave share no path, so a coordinator may step them concurrently.
// Region index order is a topological order (cut edges always point
// from lower to higher index), so one forward pass suffices.
func regionWaves(sess *tdfa.RegionSession) [][]int {
	plan := sess.Plan()
	nr := plan.NumRegions()
	depth := make([]int, nr)
	maxDepth := 0
	for _, c := range plan.Cuts {
		if d := depth[c.FromRegion] + 1; d > depth[c.ToRegion] {
			depth[c.ToRegion] = d
			if d > maxDepth {
				maxDepth = d
			}
		}
	}
	waves := make([][]int, maxDepth+1)
	for r := 0; r < nr; r++ {
		waves[depth[r]] = append(waves[depth[r]], r)
	}
	return waves
}

// NumRegions returns the partition's region count.
func (s *RegionSession) NumRegions() int { return s.sess.Plan().NumRegions() }

// RegionSize returns region r's block count — the per-step sweep cost,
// for BlockSweeps accounting.
func (s *RegionSession) RegionSize(r int) int {
	return len(s.sess.Plan().Regions[r].Blocks)
}

// Waves returns the region DAG's longest-path layering: wave i's
// regions depend only on earlier waves, so an exact-mode coordinator
// sweeps wave by wave with every region in a wave in flight at once.
// Slack-mode coordinators ignore the layering and run all regions per
// round (Jacobi iteration against frozen boundary states).
func (s *RegionSession) Waves() [][]int { return s.waves }

// Slack returns the configured boundary slack σ (0 = exact mode).
func (s *RegionSession) Slack() float64 { return s.sess.Slack() }

// Delta returns the convergence threshold δ.
func (s *RegionSession) Delta() float64 { return s.sess.Delta() }

// MaxIter returns the sweep/round cap.
func (s *RegionSession) MaxIter() int { return s.sess.MaxIter() }

// InputBlocks returns the foreign block indices whose out-states
// region r reads before a step.
func (s *RegionSession) InputBlocks(r int) []int { return s.sess.InputBlocks(r) }

// OutputBlocks returns region r's block indices whose out-states other
// regions read after a step.
func (s *RegionSession) OutputBlocks(r int) []int { return s.sess.OutputBlocks(r) }

// State returns a copy of block b's current out-state.
func (s *RegionSession) State(b int) []float64 { return s.sess.State(b) }

// SetState installs block b's out-state (length-checked).
func (s *RegionSession) SetState(b int, vals []float64) error { return s.sess.SetState(b, vals) }

// SweepRegion performs one exact-mode sweep of region r, returning the
// largest per-instruction state change.
func (s *RegionSession) SweepRegion(r int) (float64, error) { return s.sess.SweepRegion(r) }

// SolveRegionLocal runs region r to its local fixpoint against the
// currently installed foreign states (slack mode), returning the last
// sweep's delta and the sweep count.
func (s *RegionSession) SolveRegionLocal(r int) (float64, int, error) {
	return s.sess.SolveRegionLocal(r)
}

// Fragment exports region r's share of the final result.
func (s *RegionSession) Fragment(r int) (blockIn, instr [][]float64, err error) {
	return s.sess.Fragment(r)
}

// AbsorbFragment merges another participant's Fragment(r) into this
// session's result.
func (s *RegionSession) AbsorbFragment(r int, blockIn, instr [][]float64) error {
	return s.sess.AbsorbFragment(r, blockIn, instr)
}

// Finalize stamps the convergence report, derives the aggregate
// summaries and wraps everything as a *Compiled — the same shape a
// local Compile of the spec would produce.
func (s *RegionSession) Finalize(iterations int, deltaHistory []float64, finalDelta float64, converged bool, blockSweeps int) *Compiled {
	res := s.sess.Finalize(iterations, deltaHistory, finalDelta, converged, blockSweeps)
	return &Compiled{
		Program: s.prog,
		Alloc:   s.alloc,
		Thermal: res,
		Opts:    s.opts,
		fp:      s.fp,
		tech:    s.tech,
	}
}
