package thermflow

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// FuzzJobSpecDecode drives DecodeJobSpec with arbitrary bytes. The
// invariants: decoding never panics; a successful decode re-encodes
// without error; and encode → decode → encode is byte-identical with
// a stable job ID (the determinism the whole identity chain — cache
// key, WAL payload, shard key — rests on).
func FuzzJobSpecDecode(f *testing.F) {
	if spec, err := JobSpecFromKernel("dot", Options{NumRegs: 48}); err == nil {
		if b, err := json.Marshal(spec); err == nil {
			f.Add(b)
		}
	}
	f.Add([]byte(`{"v":2,"source":"","options":{}}`))
	f.Add([]byte(`{"v":3,"source":"x","options":{}}`))         // future version: must reject
	f.Add([]byte(`{"v":2,"source":"a","options":{}}{"v":2}`))  // trailing frame
	f.Add([]byte(`{"v":2,"options":{"policy":"chessboard"}}`)) // enum by name
	f.Add([]byte(`{"deadline_ms":9223372036854775807}`))       // duration overflow bait
	f.Add([]byte(`{`))
	f.Add([]byte{0x00, 0xff, 0xfe})

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeJobSpec(data)
		if err != nil {
			return // rejected input: the only requirement was not panicking
		}
		enc1, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("decoded spec does not re-encode: %v", err)
		}
		spec2, err := DecodeJobSpec(enc1)
		if err != nil {
			t.Fatalf("re-encoded spec does not decode: %v\nencoding: %s", err, enc1)
		}
		enc2, err := json.Marshal(spec2)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encode/decode/encode not a fixpoint:\n first %s\nsecond %s", enc1, enc2)
		}
		id1, err1 := spec.ID()
		id2, err2 := spec2.ID()
		if (err1 == nil) != (err2 == nil) || id1 != id2 {
			t.Fatalf("job ID unstable across round-trip: %q (%v) vs %q (%v)", id1, err1, id2, err2)
		}
	})
}

// FuzzJobSpecDeadline pins the one lossy corner: DeadlineMS values
// that overflow time.Duration must still round-trip to a fixpoint
// after the first encode.
func FuzzJobSpecDeadline(f *testing.F) {
	f.Add(int64(0))
	f.Add(int64(1500))
	f.Add(int64(9223372036854775807))
	f.Add(int64(-1))
	f.Fuzz(func(t *testing.T, ms int64) {
		spec := JobSpec{Source: "s", Deadline: time.Duration(ms) * time.Millisecond}
		enc1, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		spec2, err := DecodeJobSpec(enc1)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		enc2, err := json.Marshal(spec2)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("deadline %d not a fixpoint:\n first %s\nsecond %s", ms, enc1, enc2)
		}
	})
}
