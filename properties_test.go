package thermflow

// System-level invariants checked across randomized inputs: the
// linearity of the RC model, allocator soundness over random programs ×
// policies × register counts, and end-to-end determinism.

import (
	"fmt"
	"math/rand"
	"testing"

	"thermflow/internal/analysis"
	"thermflow/internal/cfg"
	"thermflow/internal/interference"
	"thermflow/internal/power"
	"thermflow/internal/regalloc"
	"thermflow/internal/sim"
	"thermflow/internal/tdfa"
	"thermflow/internal/thermal"
	"thermflow/internal/workload"
)

// The RC model is linear: the steady-state rise of a summed power map
// equals the sum of the individual rises.
func TestThermalSuperposition(t *testing.T) {
	grid, err := thermal.NewGrid(8, 8, power.Default65nm())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		p1 := make([]float64, 64)
		p2 := make([]float64, 64)
		for i := range p1 {
			if rng.Intn(4) == 0 {
				p1[i] = rng.Float64() * 2e-3
			}
			if rng.Intn(4) == 0 {
				p2[i] = rng.Float64() * 2e-3
			}
		}
		sum := make([]float64, 64)
		for i := range sum {
			sum[i] = p1[i] + p2[i]
		}
		s1 := grid.SteadyState(p1)
		s2 := grid.SteadyState(p2)
		s12 := grid.SteadyState(sum)
		for c := range s12 {
			rise := (s1[c] - grid.TAmb) + (s2[c] - grid.TAmb)
			if d := s12[c] - grid.TAmb - rise; d > 1e-6 || d < -1e-6 {
				t.Fatalf("trial %d cell %d: superposition violated by %g K", trial, c, d)
			}
		}
	}
}

// Allocation soundness: across random programs, policies and register
// counts, interfering values never share a register, and the allocated
// program computes the same result as the original.
func TestAllocatorSoundnessRandomized(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		prog := workload.Generate(workload.GenConfig{
			Seed: seed, Pressure: 10 + int(seed)*3, Irregularity: float64(seed) / 5,
		})
		want, err := sim.Run(prog, sim.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, pol := range regalloc.Policies {
			for _, k := range []int{8, 16, 64} {
				a, err := regalloc.Allocate(prog, regalloc.Config{
					NumRegs: k, Policy: pol, Seed: seed,
				})
				if err != nil {
					t.Fatalf("seed %d %v K=%d: %v", seed, pol, k, err)
				}
				// No interfering pair shares a register.
				g := cfg.Build(a.Fn)
				lv := analysis.ComputeLiveness(g)
				ig := interference.Build(g, lv)
				for _, v := range ig.Nodes() {
					for _, u := range ig.Neighbors(v) {
						if ig.NeedsRegister(u) && a.RegOf[v] >= 0 && a.RegOf[v] == a.RegOf[u] {
							t.Fatalf("seed %d %v K=%d: values %s and %s share register %d",
								seed, pol, k,
								a.Fn.Values()[v].Name, a.Fn.Values()[u].Name, a.RegOf[v])
						}
					}
				}
				got, err := sim.Run(a.Fn, sim.Options{})
				if err != nil {
					t.Fatalf("seed %d %v K=%d run: %v", seed, pol, k, err)
				}
				if got.Ret != want.Ret {
					t.Fatalf("seed %d %v K=%d: result changed %d -> %d",
						seed, pol, k, want.Ret, got.Ret)
				}
			}
		}
	}
}

// End-to-end determinism: compiling and analyzing the same program
// twice yields identical predictions; running it twice yields identical
// traces.
func TestEndToEndDeterminism(t *testing.T) {
	build := func() (*Compiled, *RunResult) {
		p, err := Kernel("fir")
		if err != nil {
			t.Fatal(err)
		}
		c, err := p.Compile(Options{Policy: Random, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		r, err := c.Run(24)
		if err != nil {
			t.Fatal(err)
		}
		return c, r
	}
	c1, r1 := build()
	c2, r2 := build()
	if c1.Thermal.PeakTemp != c2.Thermal.PeakTemp {
		t.Errorf("peaks differ: %g vs %g", c1.Thermal.PeakTemp, c2.Thermal.PeakTemp)
	}
	if c1.Thermal.Iterations != c2.Thermal.Iterations {
		t.Errorf("iterations differ: %d vs %d", c1.Thermal.Iterations, c2.Thermal.Iterations)
	}
	if d := c1.Thermal.Peak.MaxDelta(c2.Thermal.Peak); d != 0 {
		t.Errorf("peak states differ by %g", d)
	}
	if r1.Cycles != r2.Cycles || r1.Ret != r2.Ret {
		t.Error("runs differ")
	}
	if len(r1.Trace.Accesses) != len(r2.Trace.Accesses) {
		t.Fatal("trace lengths differ")
	}
	for i := range r1.Trace.Accesses {
		if r1.Trace.Accesses[i] != r2.Trace.Accesses[i] {
			t.Fatalf("traces diverge at access %d", i)
		}
	}
}

// The predicted rise scales monotonically with the access energy: a
// hotter technology can only raise every cell.
func TestPredictionMonotoneInAccessEnergy(t *testing.T) {
	p, err := Kernel("dot")
	if err != nil {
		t.Fatal(err)
	}
	base := power.Default65nm()
	hot := base
	hot.EnergyRead *= 2
	hot.EnergyWrite *= 2
	cBase, err := p.Compile(Options{Tech: base})
	if err != nil {
		t.Fatal(err)
	}
	cHot, err := p.Compile(Options{Tech: hot})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cBase.Thermal.Mean {
		if cHot.Thermal.Mean[i] < cBase.Thermal.Mean[i]-1e-9 {
			t.Fatalf("cell %d cooled under doubled access energy", i)
		}
	}
	if cHot.Thermal.PeakTemp <= cBase.Thermal.PeakTemp {
		t.Error("peak did not rise with access energy")
	}
}

// Profile-guided analysis must agree with the static analysis on
// programs whose static frequency estimates are already exact, and
// must not be worse on any kernel.
func TestProfileGuidedConsistency(t *testing.T) {
	for _, name := range []string{"dot", "fir", "checksum"} {
		p, err := Kernel(name)
		if err != nil {
			t.Fatal(err)
		}
		c, err := p.Compile(Options{Policy: FirstFree})
		if err != nil {
			t.Fatal(err)
		}
		pg, err := c.ProfileGuided(64)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !pg.Thermal.Converged {
			t.Errorf("%s: profiled analysis did not converge", name)
		}
		// The trip hints match the canonical scale for these kernels
		// only approximately; the profiled peak must stay in the same
		// regime (within a few K).
		d := pg.Thermal.PeakTemp - c.Thermal.PeakTemp
		if d < -6 || d > 6 {
			t.Errorf("%s: profiled peak %g K vs static %g K", name,
				pg.Thermal.PeakTemp, c.Thermal.PeakTemp)
		}
	}
}

// Differential property: the sparse worklist solver must match the
// dense reference solver within δ per instruction on a broad corpus of
// seeded random programs and on every built-in kernel, with equal
// convergence verdicts and consistent hot-spot rankings.
func TestSparseDenseDifferential(t *testing.T) {
	check := func(t *testing.T, name string, p *Program, opts Options) {
		t.Helper()
		dense := opts
		dense.Solver = SolverDense
		sparse := opts
		sparse.Solver = SolverSparse
		cd, err := p.Compile(dense)
		if err != nil {
			t.Fatalf("%s dense: %v", name, err)
		}
		cs, err := p.Compile(sparse)
		if err != nil {
			t.Fatalf("%s sparse: %v", name, err)
		}
		delta := opts.Delta
		if delta <= 0 {
			delta = 0.05
		}
		if cd.Thermal.Converged != cs.Thermal.Converged {
			t.Errorf("%s: convergence mismatch dense=%v sparse=%v",
				name, cd.Thermal.Converged, cs.Thermal.Converged)
		}
		for i := range cd.Thermal.InstrState {
			if d := cd.Thermal.InstrState[i].MaxDelta(cs.Thermal.InstrState[i]); d > delta {
				t.Fatalf("%s: instruction %d differs by %g K (δ=%g)", name, i, d, delta)
			}
		}
		if d := cd.Thermal.PeakTemp - cs.Thermal.PeakTemp; d > delta || d < -delta {
			t.Errorf("%s: peaks differ: dense=%g sparse=%g", name, cd.Thermal.PeakTemp, cs.Thermal.PeakTemp)
		}
		// Hot-spot rankings must agree up to δ-ties: every register the
		// two solvers rank at the same position must have peaks within δ
		// of each other.
		hd, hs := cd.Thermal.HottestRegs(4), cs.Thermal.HottestRegs(4)
		for i := range hd {
			td, ts := cd.Thermal.RegPeak[hd[i]], cs.Thermal.RegPeak[hs[i]]
			if d := td - ts; d > delta || d < -delta {
				t.Errorf("%s: hot-spot rank %d differs beyond δ: reg %d (%.3f K) vs reg %d (%.3f K)",
					name, i, hd[i], td, hs[i], ts)
			}
		}
		// Critical-variable ranking: the top entry must agree, or tie
		// within 1% of its score.
		critD, critS := cd.Thermal.TopCritical(1), cs.Thermal.TopCritical(1)
		if len(critD) != len(critS) {
			t.Fatalf("%s: critical ranking lengths differ", name)
		}
		if len(critD) == 1 && critD[0].Value.Name != critS[0].Value.Name {
			rel := critD[0].Score - critS[0].Score
			if rel < 0 {
				rel = -rel
			}
			if critD[0].Score > 0 && rel/critD[0].Score > 0.01 {
				t.Errorf("%s: top critical variable differs: %s (%.3g) vs %s (%.3g)",
					name, critD[0].Value.Name, critD[0].Score, critS[0].Value.Name, critS[0].Score)
			}
		}
	}

	// 50+ seeded random programs spanning regular to highly irregular
	// shapes, different joins, leakage, and cold starts.
	for seed := int64(0); seed < 50; seed++ {
		opts := Options{Policy: Policies[int(seed)%len(Policies)], Seed: seed}
		switch seed % 5 {
		case 1:
			opts.JoinOp = tdfa.JoinUnweighted
		case 2:
			opts.JoinOp = tdfa.JoinMax
		case 3:
			opts.WithLeakage = true
		case 4:
			opts.NoWarmStart = true
			opts.MaxIter = 4096
		}
		p := Generate(GenerateOptions{
			Seed:         seed,
			Pressure:     6 + int(seed)%12,
			Segments:     2 + int(seed)%4,
			LoopDepth:    1 + int(seed)%3,
			Irregularity: float64(seed%10) / 10,
		})
		check(t, fmt.Sprintf("gen-seed-%d", seed), p, opts)
	}
	for _, name := range Kernels() {
		p, err := Kernel(name)
		if err != nil {
			t.Fatal(err)
		}
		check(t, "kernel-"+name, p, Options{})
	}
}

// Differential property: at σ=0 the region-partitioned solver is not
// an approximation — its wave schedule replays the dense solver's read
// pattern exactly, so every analysis output must be bit-identical to
// the dense reference across random programs (all region counts), every
// kernel, and generated mega-modules.
func TestRegionDenseDifferential(t *testing.T) {
	check := func(t *testing.T, name string, p *Program, opts Options) {
		t.Helper()
		dense := opts
		dense.Solver = SolverDense
		dense.Regions = 0
		region := opts
		region.Solver = SolverRegion
		cd, err := p.Compile(dense)
		if err != nil {
			t.Fatalf("%s dense: %v", name, err)
		}
		cr, err := p.Compile(region)
		if err != nil {
			t.Fatalf("%s region: %v", name, err)
		}
		td, tr := cd.Thermal, cr.Thermal
		if td.Converged != tr.Converged || td.Iterations != tr.Iterations ||
			td.FinalDelta != tr.FinalDelta || td.BlockSweeps != tr.BlockSweeps ||
			td.PeakTemp != tr.PeakTemp {
			t.Fatalf("%s: scalar outputs diverge: conv %v/%v iter %d/%d Δ %v/%v sweeps %d/%d peak %v/%v",
				name, td.Converged, tr.Converged, td.Iterations, tr.Iterations,
				td.FinalDelta, tr.FinalDelta, td.BlockSweeps, tr.BlockSweeps,
				td.PeakTemp, tr.PeakTemp)
		}
		for i := range td.InstrState {
			if d := td.InstrState[i].MaxDelta(tr.InstrState[i]); d != 0 {
				t.Fatalf("%s: instruction %d state differs by %g K", name, i, d)
			}
		}
		for i := range td.BlockIn {
			if d := td.BlockIn[i].MaxDelta(tr.BlockIn[i]); d != 0 {
				t.Fatalf("%s: block %d in-state differs by %g K", name, i, d)
			}
		}
		if d := td.Peak.MaxDelta(tr.Peak); d != 0 {
			t.Fatalf("%s: peak states differ by %g K", name, d)
		}
		for i := range td.RegPeak {
			if td.RegPeak[i] != tr.RegPeak[i] {
				t.Fatalf("%s: reg %d peak %v vs %v", name, i, td.RegPeak[i], tr.RegPeak[i])
			}
		}
	}

	for seed := int64(0); seed < 50; seed++ {
		opts := Options{
			Policy:  Policies[int(seed)%len(Policies)],
			Seed:    seed,
			Regions: []int{0, 2, 3, 4, 8, 1 << 16}[seed%6],
		}
		switch seed % 5 {
		case 1:
			opts.JoinOp = tdfa.JoinUnweighted
		case 2:
			opts.JoinOp = tdfa.JoinMax
		case 3:
			opts.WithLeakage = true
		case 4:
			opts.NoWarmStart = true
			opts.MaxIter = 4096
		}
		p := Generate(GenerateOptions{
			Seed:         seed,
			Pressure:     6 + int(seed)%12,
			Segments:     2 + int(seed)%4,
			LoopDepth:    1 + int(seed)%3,
			Irregularity: float64(seed%10) / 10,
		})
		check(t, fmt.Sprintf("gen-seed-%d", seed), p, opts)
	}
	for _, name := range Kernels() {
		p, err := Kernel(name)
		if err != nil {
			t.Fatal(err)
		}
		check(t, "kernel-"+name, p, Options{Regions: 3})
	}
	// Mega-modules are the region plane's target workload: wide call
	// fabrics whose partitions actually fan out.
	for _, seed := range []int64{1, 2} {
		p := GenerateMega(MegaOptions{
			Seed: seed, Arms: 4, Depth: 1, OpsPerBlock: 4, Pressure: 8, TripCount: 8,
		})
		check(t, fmt.Sprintf("mega-seed-%d", seed), p, Options{Regions: 6})
	}
}

// Round-trip: every generated program prints and re-parses to an
// equivalent program (same execution result).
func TestPrintParseExecutionEquivalence(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		fn := workload.Generate(workload.GenConfig{Seed: seed, Irregularity: 0.7})
		want, err := sim.Run(fn, sim.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		p2, err := Parse(fn.String())
		if err != nil {
			t.Fatalf("seed %d reparse: %v", seed, err)
		}
		got, err := sim.Run(p2.Fn, sim.Options{})
		if err != nil {
			t.Fatalf("seed %d rerun: %v", seed, err)
		}
		if got.Ret != want.Ret || got.Cycles != want.Cycles {
			t.Fatalf("seed %d: round trip changed execution (%d,%d) -> (%d,%d)",
				seed, want.Ret, want.Cycles, got.Ret, got.Cycles)
		}
	}
}
