package thermflow_test

import (
	"errors"
	"reflect"
	"testing"

	"thermflow"
	"thermflow/internal/cachestore"
	"thermflow/internal/tdfa"
)

// requireEqualThermal compares two analysis results field by field.
// Critical entries reference ir.Values, whose IDs depend on creation
// order and legitimately shift across a print→parse round trip, so
// values compare by name; every other field must be deeply equal.
func requireEqualThermal(t *testing.T, want, got *tdfa.Result) {
	t.Helper()
	if (want == nil) != (got == nil) {
		t.Fatalf("thermal presence diverged: want %v, got %v", want != nil, got != nil)
	}
	if want == nil {
		return
	}
	if want.Converged != got.Converged || want.Iterations != got.Iterations ||
		want.FinalDelta != got.FinalDelta || want.BlockSweeps != got.BlockSweeps ||
		want.PeakTemp != got.PeakTemp {
		t.Fatalf("scalars diverged:\nwant %v %d %g %d %g\ngot  %v %d %g %d %g",
			want.Converged, want.Iterations, want.FinalDelta, want.BlockSweeps, want.PeakTemp,
			got.Converged, got.Iterations, got.FinalDelta, got.BlockSweeps, got.PeakTemp)
	}
	if !reflect.DeepEqual(want.DeltaHistory, got.DeltaHistory) {
		t.Fatal("delta history diverged")
	}
	if !reflect.DeepEqual(want.InstrState, got.InstrState) {
		t.Fatal("per-instruction states diverged")
	}
	if !reflect.DeepEqual(want.BlockIn, got.BlockIn) {
		t.Fatal("block-entry states diverged")
	}
	if !reflect.DeepEqual(want.Peak, got.Peak) || !reflect.DeepEqual(want.Mean, got.Mean) {
		t.Fatal("peak/mean states diverged")
	}
	if !reflect.DeepEqual(want.RegPeak, got.RegPeak) {
		t.Fatal("per-register peaks diverged")
	}
	if len(want.Critical) != len(got.Critical) {
		t.Fatalf("critical ranking length: want %d, got %d", len(want.Critical), len(got.Critical))
	}
	for i := range want.Critical {
		w, g := want.Critical[i], got.Critical[i]
		if w.Value.Name != g.Value.Name || w.Score != g.Score ||
			w.Accesses != g.Accesses || w.Reg != g.Reg {
			t.Fatalf("critical entry %d diverged: want {%s %g %g %d}, got {%s %g %g %d}",
				i, w.Value.Name, w.Score, w.Accesses, w.Reg,
				g.Value.Name, g.Score, g.Accesses, g.Reg)
		}
	}
}

// requireEqualCompiled checks that a decoded compilation is
// indistinguishable where it matters: options, floorplan, allocation
// summary, register assignment (by value name) and the full thermal
// result.
func requireEqualCompiled(t *testing.T, want, got *thermflow.Compiled) {
	t.Helper()
	if !reflect.DeepEqual(want.Opts, got.Opts) {
		t.Fatalf("options diverged:\nwant %+v\ngot  %+v", want.Opts, got.Opts)
	}
	if want.Program.Key != got.Program.Key {
		t.Fatalf("program key: want %q, got %q", want.Program.Key, got.Program.Key)
	}
	if want.Program.Fn.String() != got.Program.Fn.String() {
		t.Fatal("source program text diverged")
	}
	if want.Alloc.Fn.String() != got.Alloc.Fn.String() {
		t.Fatal("allocated function text diverged")
	}
	wa, ga := want.Alloc, got.Alloc
	if wa.Rounds != ga.Rounds || wa.SpillLoads != ga.SpillLoads ||
		wa.SpillStores != ga.SpillStores || !reflect.DeepEqual(wa.Spilled, ga.Spilled) {
		t.Fatalf("allocation summary diverged:\nwant %d/%d/%d %v\ngot  %d/%d/%d %v",
			wa.Rounds, wa.SpillLoads, wa.SpillStores, wa.Spilled,
			ga.Rounds, ga.SpillLoads, ga.SpillStores, ga.Spilled)
	}
	// Register assignment by name (IDs may shift across the reparse).
	for _, v := range wa.Fn.Values() {
		gv := ga.Fn.ValueNamed(v.Name)
		if wa.RegOf[v.ID] < 0 {
			if gv != nil && ga.RegOf[gv.ID] >= 0 {
				t.Fatalf("value %q gained register %d", v.Name, ga.RegOf[gv.ID])
			}
			continue
		}
		if gv == nil {
			t.Fatalf("assigned value %q missing after round trip", v.Name)
		}
		if wa.RegOf[v.ID] != ga.RegOf[gv.ID] {
			t.Fatalf("value %q register: want %d, got %d", v.Name, wa.RegOf[v.ID], ga.RegOf[gv.ID])
		}
	}
	if want.Floorplan().NumRegs != got.Floorplan().NumRegs ||
		want.Floorplan().Width != got.Floorplan().Width ||
		want.Floorplan().Height != got.Floorplan().Height {
		t.Fatal("floorplan diverged")
	}
	if want.Tech() != got.Tech() {
		t.Fatal("technology parameters diverged")
	}
	requireEqualThermal(t, want.Thermal, got.Thermal)
}

// The disk codec must round-trip full compilations — random programs,
// spill-heavy register files, every policy family, thermal states and
// all — through encode → decode → deep equality.
func TestCompiledCodecRoundTripRandomPrograms(t *testing.T) {
	optFor := func(seed int64) thermflow.Options {
		opts := thermflow.Options{}
		switch seed % 4 {
		case 1:
			opts.Policy = thermflow.Chessboard
		case 2:
			opts.Policy = thermflow.RoundRobin
			opts.NumRegs = 12 // forces spilling on most generated programs
			opts.GridW, opts.GridH = 4, 4
		case 3:
			opts.Policy = thermflow.Coldest
			opts.Solver = thermflow.SolverSparse
			opts.WithLeakage = true
		}
		return opts
	}
	for seed := int64(1); seed <= 20; seed++ {
		prog := thermflow.Generate(thermflow.GenerateOptions{
			Seed:         seed,
			Segments:     2 + int(seed%3),
			Irregularity: float64(seed%3) / 3,
		})
		c, err := prog.Compile(optFor(seed))
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		blob, err := thermflow.EncodeCompiled(c)
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		got, err := thermflow.DecodeCompiled(blob)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		requireEqualCompiled(t, c, got)
	}
}

// Kernel results (hooked programs with a stable Key) must round-trip;
// the decoded Program resolves back through the workload registry, so
// it regains its Setup/Expect hooks and validates like a fresh
// compile.
func TestCompiledCodecRoundTripKernels(t *testing.T) {
	for _, name := range thermflow.Kernels() {
		prog, err := thermflow.Kernel(name)
		if err != nil {
			t.Fatal(err)
		}
		c, err := prog.Compile(thermflow.Options{Policy: thermflow.Chessboard})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		blob, err := thermflow.EncodeCompiled(c)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		got, err := thermflow.DecodeCompiled(blob)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		requireEqualCompiled(t, c, got)
		if got.Program.Setup == nil || got.Program.Expect == nil {
			t.Fatalf("%s: decoded kernel program lost its hooks", name)
		}
	}
}

// A kernel key whose persisted IR no longer matches the registry (the
// kernel definition changed between processes) must NOT regain hooks:
// they may describe a different program.
func TestCompiledCodecStaleKernelTextKeepsHooksNil(t *testing.T) {
	prog, err := thermflow.Kernel("dot")
	if err != nil {
		t.Fatal(err)
	}
	// Same Key, different IR than the registry's current "dot".
	other := thermflow.Generate(thermflow.GenerateOptions{Seed: 9})
	other.Key = prog.Key
	c, err := other.Compile(thermflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := thermflow.EncodeCompiled(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := thermflow.DecodeCompiled(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Program.Setup != nil || got.Program.Expect != nil {
		t.Fatal("stale kernel text regained hooks that describe a different program")
	}
	if got.Program.Key != prog.Key {
		t.Errorf("key lost: %q", got.Program.Key)
	}
}

// A SkipAnalysis compile (no thermal result) must round-trip too.
func TestCompiledCodecRoundTripSkipAnalysis(t *testing.T) {
	prog := thermflow.Generate(thermflow.GenerateOptions{Seed: 5})
	c, err := prog.Compile(thermflow.Options{SkipAnalysis: true})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := thermflow.EncodeCompiled(c)
	if err != nil {
		t.Fatal(err)
	}
	got, err := thermflow.DecodeCompiled(blob)
	if err != nil {
		t.Fatal(err)
	}
	requireEqualCompiled(t, c, got)
}

// Hooked programs without a stable Key carry process-local identity:
// the codec must decline them (they stay memory-only) rather than
// persist a result another process would wrongly share.
func TestCompiledCodecDeclinesKeylessHookedPrograms(t *testing.T) {
	prog, err := thermflow.Kernel("dot")
	if err != nil {
		t.Fatal(err)
	}
	prog.Key = "" // strip the stable identity, keep the hooks
	c, err := prog.Compile(thermflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := thermflow.EncodeCompiled(c); !errors.Is(err, cachestore.ErrUnencodable) {
		t.Fatalf("encode of keyless hooked program: %v, want ErrUnencodable", err)
	}
}

// Truncations of a full Compiled encoding must all fail cleanly.
func TestCompiledCodecRejectsTruncation(t *testing.T) {
	prog, err := thermflow.Kernel("matmul")
	if err != nil {
		t.Fatal(err)
	}
	c, err := prog.Compile(thermflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := thermflow.EncodeCompiled(c)
	if err != nil {
		t.Fatal(err)
	}
	step := 1
	if len(blob) > 1024 {
		step = len(blob) / 1024
	}
	for n := 0; n < len(blob); n += step {
		if _, err := thermflow.DecodeCompiled(blob[:n]); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded without error", n, len(blob))
		}
	}
}
