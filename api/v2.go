// v2 wire types: the job-oriented API. Where v1 is synchronous — the
// response is the result — v2 is addressable: submitting returns a job
// handle whose ID is the SHA-256 of the request's canonical content
// (thermflow.JobSpec), the same key the result store and disk tier use.
// Clients poll or long-poll the handle, and duplicate submissions of
// the same content converge on one job.
//
// Endpoints:
//
//	POST /v2/jobs           JobRequest  -> JobStatus (202 created, 200 existing)
//	GET  /v2/jobs/{id}                  -> JobStatus (404 unknown, 504 expired)
//	GET  /v2/jobs/{id}/wait             -> JobStatus after the job turns
//	                                       terminal or ?timeout_ms elapses
//	POST /v2/batch          JobsBatchRequest -> NDJSON stream of JobItem
//
// Job states travel as strings: "queued", "running", "done", "failed",
// "expired". A deadline-expired job answers with HTTP 504 and its
// JobStatus body — the 504-equivalent of a job-level timeout.
package api

import "thermflow"

// JobRequest submits one job. Exactly one of Kernel or Program must be
// set; the server canonicalizes either into the job's content identity,
// so a kernel reference and its printed IR are the same job.
type JobRequest struct {
	// Kind selects the execution plane: "" (or "compile") runs the job
	// on one backend; "region" asks a gateway to cut the program into
	// CFG regions and fan the fixpoint out across the backend pool,
	// exchanging only boundary thermal states between rounds (see
	// regions.go). Backends ignore the field — a region job reaching a
	// backend directly just compiles whole. Not part of job identity.
	Kind string `json:"kind,omitempty"`
	// Kernel selects a built-in benchmark kernel by name.
	Kernel string `json:"kernel,omitempty"`
	// Program is a program in the textual IR syntax.
	Program string `json:"program,omitempty"`
	// Root, for a multi-function Program, names the function to inline.
	Root string `json:"root,omitempty"`
	// Options are the compile options; absent fields select defaults.
	Options thermflow.Options `json:"options"`

	// DeadlineMS bounds the job's total lifetime from submission in
	// milliseconds, queue wait included; 0 means none. A job that
	// misses its deadline reports state "expired" (HTTP 504).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Priority orders queued jobs: higher runs earlier. Neither field
	// is part of the job's identity.
	Priority int `json:"priority,omitempty"`
}

// JobStatus is the wire form of one job's lifecycle position.
type JobStatus struct {
	// ID is the job's content identity: the hex SHA-256 of the
	// canonical JobSpec encoding.
	ID string `json:"id"`
	// State is "queued", "running", "done", "failed" or "expired".
	State string `json:"state"`
	// Cached reports whether the result came from the result store.
	Cached bool `json:"cached,omitempty"`
	// Error is the failure message (failed and expired states).
	Error string `json:"error,omitempty"`
	// Result is the compilation result (done state only).
	Result *CompileResponse `json:"result,omitempty"`

	// Priority echoes the submitted priority; DeadlineMS the absolute
	// deadline as Unix milliseconds (0 when none).
	Priority   int   `json:"priority,omitempty"`
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// SubmittedMS, StartedMS and FinishedMS are lifecycle timestamps
	// as Unix milliseconds (0 when not yet reached).
	SubmittedMS int64 `json:"submitted_ms,omitempty"`
	StartedMS   int64 `json:"started_ms,omitempty"`
	FinishedMS  int64 `json:"finished_ms,omitempty"`

	// Replica reports that the status was answered from a ring
	// successor's replica shelf, not the owner's registry. It is
	// derived from the ReplicaHeader response header by the client —
	// the body itself is the owner's verbatim status, so the flag is
	// never on the wire.
	Replica bool `json:"-"`
}

// ReplicaHeader is the response header marking a job status served
// from a backend's replica shelf rather than its own job registry.
const ReplicaHeader = "X-Thermflow-Replica"

// JobsBatchRequest submits many jobs in one request; the response is a
// stream of newline-delimited JobItem values in completion order.
// Per-item deadlines and priorities are ignored in batch mode — a
// batch is one request bounded by its own connection and context.
type JobsBatchRequest struct {
	Jobs []JobRequest `json:"jobs"`
}

// JobItem is one job's outcome within a v2 batch stream, keyed both by
// position and by job ID (duplicates of one job share an ID).
type JobItem struct {
	// Index is the job's position in JobsBatchRequest.Jobs.
	Index int `json:"index"`
	// ID is the job's content identity.
	ID string `json:"id"`
	// Error is the job's isolated failure, empty on success.
	Error string `json:"error,omitempty"`
	// Result is the compilation result, nil on failure.
	Result *CompileResponse `json:"result,omitempty"`
}
