// Distributed-tracing wire types: the JSON timeline served by
// GET /v2/jobs/{id}/trace (backend and gateway alike) and the span a
// backend returns inside a region-solve response so the coordinating
// gateway can stitch per-region steps from many backends into one job
// timeline. Trace identity travels in the X-Thermflow-Trace request
// header as "traceID-spanID" (32 and 16 lowercase hex chars); see
// internal/trace for the span model and retention bounds.
package api

// TraceSpan is one timed phase of a job's life on the wire. Times are
// Unix microseconds so exact queue-wait vs solve attribution survives
// JSON without float trouble.
type TraceSpan struct {
	// TraceID groups every span of one job's trace; SpanID names this
	// span and ParentID links it under another (empty = root-level).
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	// Name is the span's phase in the fixed taxonomy: http.server,
	// job.queued, job.run, job.solve, region.coordinate, region.round,
	// region.solve.
	Name string `json:"name"`
	// Service names the recording process ("thermflowd",
	// "thermflowgate").
	Service string `json:"service,omitempty"`
	// StartUS is the span's start, Unix microseconds; DurationUS its
	// length.
	StartUS    int64 `json:"start_us"`
	DurationUS int64 `json:"duration_us"`
	// Attrs carry small phase facts: region/round indexes, sweep
	// counts, cache outcome, the backend that served a stitched span.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// TraceResponse is one job's recorded timeline
// (GET /v2/jobs/{id}/trace).
type TraceResponse struct {
	JobID   string `json:"job_id"`
	TraceID string `json:"trace_id,omitempty"`
	// Service names the process whose recorder answered (for a region
	// job through the gateway, the gateway's stitched view).
	Service string      `json:"service,omitempty"`
	Spans   []TraceSpan `json:"spans"`
	// Dropped counts spans beyond the per-job retention bound.
	Dropped int `json:"dropped,omitempty"`
}
