// Region-solve wire types: the backend-facing protocol behind a v2
// region job (JobRequest.Kind == "region"). The gateway is the
// coordinator — it partitions the program, owns the authoritative
// boundary states and drives rounds — and each backend holds one
// solver session per (job, region), rebuilt deterministically from the
// spec alone, so the only state ever on the wire is the boundary
// thermal states and, at the end, the per-region result fragments.
//
// Endpoints (served by thermflowd):
//
//	POST /v2/regions/solve    RegionSolveRequest   -> RegionSolveResponse
//	POST /v2/regions/collect  RegionCollectRequest -> RegionCollectResponse
//
// A backend that lost its session (restart, shelf eviction) rebuilds
// it from the spec and answers with Restarted=true when the request's
// Round implies earlier rounds happened elsewhere; the coordinator
// then restarts the job from round 1 — sessions are cheap, boundary
// exchange is the expensive part.
package api

import "encoding/json"

// RegionBlockState carries one block's out-state across a region
// boundary: the block index (stable across participants — every
// session derives the same numbering from the spec) and its thermal
// state vector, one kelvin value per grid cell. JSON float64 encoding
// round-trips bit-exactly, so exact-mode solves stay byte-identical
// through the wire.
type RegionBlockState struct {
	Block int       `json:"block"`
	State []float64 `json:"state"`
}

// RegionSolveRequest asks a backend to advance one region by one step:
// an exact-mode job sweeps the region once; a slack-mode job
// (options.region_delta > 0) runs it to its local fixpoint against the
// boundary states provided.
type RegionSolveRequest struct {
	// JobID keys the backend's session store together with Region.
	JobID string `json:"job_id"`
	// Region is the region index within the job's partition.
	Region int `json:"region"`
	// Round is the coordinator's 1-based round counter. Round 1
	// (re)builds the session from Spec; a later round finding no
	// session rebuilds too but reports Restarted.
	Round int `json:"round"`
	// Spec is the job's thermflow.JobSpec wire form — everything a
	// backend needs to rebuild the identical session.
	Spec json.RawMessage `json:"spec"`
	// Boundary carries the foreign block out-states this region reads
	// (the coordinator's authoritative copies), installed before the
	// step.
	Boundary []RegionBlockState `json:"boundary,omitempty"`
}

// RegionSolveResponse reports one region step.
type RegionSolveResponse struct {
	// Delta is the step's largest per-instruction state change (the
	// last sweep's, in slack mode).
	Delta float64 `json:"delta"`
	// Sweeps is how many block-level sweeps the step performed over
	// the region (1 in exact mode; the local fixpoint's count in slack
	// mode).
	Sweeps int `json:"sweeps"`
	// Boundary returns the region's exported block out-states (its cut
	// sources and, when relevant, its returning blocks) after the step.
	Boundary []RegionBlockState `json:"boundary,omitempty"`
	// Restarted reports that the session was rebuilt from Spec even
	// though Round > 1 — the backend lost the earlier rounds' interior
	// state and the coordinator must restart the job.
	Restarted bool `json:"restarted,omitempty"`
	// Span is the backend's timed record of this step (present when the
	// request carried a trace header). The coordinating gateway
	// re-parents it under its round span and stamps the serving backend,
	// stitching every hop of the job into one timeline.
	Span *TraceSpan `json:"span,omitempty"`
}

// RegionCollectRequest fetches a region's result fragment after the
// coordinator observes global convergence.
type RegionCollectRequest struct {
	JobID  string `json:"job_id"`
	Region int    `json:"region"`
	// Spec lets a backend rebuild enough context to answer shape
	// errors precisely; a collect that has to rebuild reports
	// Restarted instead of fabricating initial-state fragments.
	Spec json.RawMessage `json:"spec"`
}

// RegionCollectResponse is one region's share of the final result in
// canonical order (see tdfa.RegionSession.Fragment).
type RegionCollectResponse struct {
	// BlockIn is the in-state of every region block, region RPO order.
	BlockIn [][]float64 `json:"block_in"`
	// Instr is the post-state of every instruction of those blocks,
	// block-major in instruction order.
	Instr [][]float64 `json:"instr"`
	// Restarted reports the session was gone: the fragment would be
	// initial state, not the converged result, so none is returned.
	Restarted bool `json:"restarted,omitempty"`
}
