// Package api defines the JSON wire types of the thermflowd HTTP API —
// the serialization boundary shared by the server (internal/server)
// and the Go client (thermflow/client).
//
// Endpoints:
//
//	POST   /v1/compile       CompileRequest   -> CompileResponse
//	POST   /v1/batch         BatchRequest     -> NDJSON stream of BatchItem
//	GET    /v1/kernels                        -> KernelsResponse
//	GET    /v1/cache                          -> CacheStats
//	DELETE /v1/cache                          -> CacheStats (zeroed)
//	POST   /v2/jobs          JobRequest       -> JobStatus (async handle)
//	GET    /v2/jobs/{id}                      -> JobStatus
//	GET    /v2/jobs/{id}/wait                 -> JobStatus (long poll)
//	POST   /v2/batch         JobsBatchRequest -> NDJSON stream of JobItem
//	GET    /v2/stats                          -> StatsResponse
//
// The same surface is served by thermflowgate, the consistent-hashing
// shard gateway over a pool of thermflowd backends (see gateway.go for
// its administrative endpoints); clients cannot tell the difference.
//
// The v1 endpoints are synchronous (the response is the result) and
// are served as adapters over the same job layer that backs /v2; the
// v2 types live in v2.go. Compile options travel as thermflow.Options,
// whose JSON form names the enums ("policy": "chessboard", "solver":
// "sparse", ...) and omits defaults; see Options.MarshalJSON in the
// root package. Errors travel as ErrorResponse with the HTTP status
// conveying the class: 400 malformed request, 401 missing/invalid
// bearer token, 422 well-formed but unsatisfiable (unknown
// policy/solver/layout/join/kernel, IR parse failure, or an allocation
// that exceeded its spill work budget), 429 rate-limited (with
// Retry-After), 500 internal fault, 503 job registry at capacity,
// 504 job deadline expired (body carries the JobStatus).
package api

import (
	"sort"

	"thermflow"
)

// CompileRequest names a program and the options to compile it under.
// Exactly one of Kernel or Program must be set.
type CompileRequest struct {
	// Kernel selects a built-in benchmark kernel by name (see
	// GET /v1/kernels).
	Kernel string `json:"kernel,omitempty"`
	// Program is a program in the textual IR syntax.
	Program string `json:"program,omitempty"`
	// Root, for a multi-function Program, names the function to inline
	// into the analyzable single procedure. Empty means Program is a
	// single function.
	Root string `json:"root,omitempty"`
	// Options are the compile options; absent fields select defaults.
	Options thermflow.Options `json:"options"`
}

// CompileResponse is the wire form of one compilation result.
type CompileResponse struct {
	// Cached reports whether the server served the result from its
	// content-keyed cache (shared across clients and requests).
	Cached bool `json:"cached"`

	// Policy and Solver echo the resolved enum names; NumRegs the
	// resolved register-file size.
	Policy  string `json:"policy"`
	Solver  string `json:"solver"`
	NumRegs int    `json:"num_regs"`

	// Converged, Iterations, FinalDelta and BlockSweeps summarize the
	// thermal data-flow analysis (tdfa.Result). A false Converged is
	// the paper's "too difficult to predict at compile time"
	// diagnostic. All four are zero when the request skipped analysis.
	Converged   bool    `json:"converged"`
	Iterations  int     `json:"iterations"`
	FinalDelta  float64 `json:"final_delta_k"`
	BlockSweeps int     `json:"block_sweeps"`

	// PeakTemp is the hottest predicted temperature anywhere, in
	// kelvin; RegPeak the per-register peak (indexed by register).
	PeakTemp float64   `json:"peak_temp_k"`
	RegPeak  []float64 `json:"reg_peak_k,omitempty"`

	// HotSpots ranks the variables most involved in hot spots,
	// hottest first (truncated to the top ten).
	HotSpots []HotSpot `json:"hot_spots,omitempty"`

	// Alloc summarizes the register allocation.
	Alloc AllocSummary `json:"alloc"`
}

// HotSpot is one entry of the critical-variable ranking.
type HotSpot struct {
	// Name is the variable; Reg its physical register (-1 pre-alloc).
	Name string `json:"name"`
	Reg  int    `json:"reg"`
	// Score is the hotness-weighted access energy (comparable within
	// one analysis only); Accesses the estimated dynamic access count.
	Score    float64 `json:"score"`
	Accesses float64 `json:"accesses"`
}

// AllocSummary is the wire form of a register allocation.
type AllocSummary struct {
	// Rounds is the number of allocation attempts (1 = no spilling).
	Rounds int `json:"rounds"`
	// Spilled names the values spilled to memory; SpillLoads and
	// SpillStores count the memory instructions that inserted.
	Spilled     []string `json:"spilled,omitempty"`
	SpillLoads  int      `json:"spill_loads,omitempty"`
	SpillStores int      `json:"spill_stores,omitempty"`
	// UsedRegs is the number of distinct registers assigned;
	// Occupancy the fraction of the register file in use.
	UsedRegs  int     `json:"used_regs"`
	Occupancy float64 `json:"occupancy"`
}

// BatchRequest submits many compile jobs at once. The response is a
// stream of newline-delimited JSON BatchItem values, one per job, in
// completion order — duplicates of an already-running job complete
// (cached) as soon as their representative does.
type BatchRequest struct {
	Jobs []CompileRequest `json:"jobs"`
}

// BatchItem is one job's outcome within a batch stream.
type BatchItem struct {
	// Index is the job's position in BatchRequest.Jobs.
	Index int `json:"index"`
	// Error is the job's isolated failure, empty on success.
	Error string `json:"error,omitempty"`
	// Result is the compilation result, nil on failure.
	Result *CompileResponse `json:"result,omitempty"`
}

// KernelsResponse lists the built-in benchmark kernels.
type KernelsResponse struct {
	Kernels []KernelInfo `json:"kernels"`
}

// KernelInfo describes one built-in kernel.
type KernelInfo struct {
	Name   string `json:"name"`
	Instrs int    `json:"instrs"`
	Values int    `json:"values"`
	Blocks int    `json:"blocks"`
}

// TierStats is the wire form of one result-store tier's counters.
type TierStats struct {
	// Hits and Misses count lookups against this tier; Puts entries
	// admitted; Evictions entries removed to respect the byte cap;
	// Corrupt disk entries dropped for failing validation.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Puts      uint64 `json:"puts"`
	Evictions uint64 `json:"evictions"`
	Corrupt   uint64 `json:"corrupt,omitempty"`
	// Entries and Bytes are the tier's current contents; CapBytes the
	// configured cap.
	Entries  int   `json:"entries"`
	Bytes    int64 `json:"bytes"`
	CapBytes int64 `json:"cap_bytes"`
}

// CacheStats is the wire form of the server's result-store counters
// (GET /v1/cache; DELETE /v1/cache returns the zeroed form).
type CacheStats struct {
	// Hits counts jobs served from the store (either tier, or an
	// identical job already in flight), Misses jobs compiled, Panics
	// jobs that panicked (isolated per job).
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Panics uint64 `json:"panics"`
	// Workers is the size of the server's compile worker pool.
	Workers int `json:"workers"`
	// Memory and Disk detail the store's two tiers. DiskEnabled
	// reports whether the server was started with a cache directory
	// (thermflowd -cache-dir); without one Disk stays zero.
	Memory      TierStats `json:"memory"`
	Disk        TierStats `json:"disk"`
	DiskEnabled bool      `json:"disk_enabled"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// MaxHotSpots bounds the critical-variable ranking on the wire.
const MaxHotSpots = 10

// ResponseFor converts a compilation into its wire form.
func ResponseFor(c *thermflow.Compiled, cached bool) *CompileResponse {
	resp := &CompileResponse{
		Cached:  cached,
		Policy:  c.Opts.Policy.String(),
		Solver:  c.Opts.Solver.String(),
		NumRegs: c.Floorplan().NumRegs,
		Alloc: AllocSummary{
			Rounds:      c.Alloc.Rounds,
			Spilled:     c.Alloc.Spilled,
			SpillLoads:  c.Alloc.SpillLoads,
			SpillStores: c.Alloc.SpillStores,
			UsedRegs:    len(c.Alloc.UsedRegs()),
			Occupancy:   c.Alloc.Occupancy(),
		},
	}
	if t := c.Thermal; t != nil {
		resp.Converged = t.Converged
		resp.Iterations = t.Iterations
		resp.FinalDelta = t.FinalDelta
		resp.BlockSweeps = t.BlockSweeps
		resp.PeakTemp = t.PeakTemp
		resp.RegPeak = t.RegPeak
		n := len(t.Critical)
		if n > MaxHotSpots {
			n = MaxHotSpots
		}
		for _, vh := range t.Critical[:n] {
			resp.HotSpots = append(resp.HotSpots, HotSpot{
				Name: vh.Value.Name, Reg: vh.Reg,
				Score: vh.Score, Accesses: vh.Accesses,
			})
		}
	}
	return resp
}

// KernelList builds the kernel listing from the built-in workload set,
// sorted by name.
func KernelList() (KernelsResponse, error) {
	names := thermflow.Kernels()
	sort.Strings(names)
	out := KernelsResponse{Kernels: make([]KernelInfo, 0, len(names))}
	for _, name := range names {
		p, err := thermflow.Kernel(name)
		if err != nil {
			return KernelsResponse{}, err
		}
		out.Kernels = append(out.Kernels, KernelInfo{
			Name:   name,
			Instrs: p.Fn.NumInstrs(),
			Values: p.Fn.NumValues(),
			Blocks: len(p.Fn.Blocks),
		})
	}
	return out, nil
}
