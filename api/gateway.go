// Wire types of the scale-out surface: the per-backend status snapshot
// (GET /v2/stats, served by thermflowd) and the administrative shard
// view of thermflowgate, the consistent-hashing gateway that fronts a
// pool of thermflowd backends.
//
// Gateway endpoints (cmd/thermflowgate), on top of the proxied v1/v2
// surface:
//
//	GET  /gateway/backends                    -> GatewayBackendsResponse
//	POST /gateway/drain?backend=URL           -> GatewayBackendsResponse
//	POST /gateway/undrain?backend=URL         -> GatewayBackendsResponse
//
// Draining a backend removes it from the hash ring — new jobs route to
// the remaining backends — while requests already in flight on it run
// to completion (status reads of the jobs it holds keep resolving to
// it). Drained: true means no gateway requests in flight AND the
// backend's own registry reports nothing queued or running — only
// then is the process safe to retire. Unknown backend URLs answer 404.
package api

// JobsStats is the wire form of the v2 job registry's occupancy.
type JobsStats struct {
	// Queued, Running and Terminal count retained jobs by lifecycle
	// group.
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Terminal int `json:"terminal"`
	// Capacity is the registry's retention bound (thermflowd -job-max);
	// Concurrency how many registered jobs run at once.
	Capacity    int `json:"capacity"`
	Concurrency int `json:"concurrency"`
	// MaxQueue and Watermark are the admission-control queue bounds
	// (0 = admission control off); Shed counts jobs refused or
	// displaced by admission control since start.
	MaxQueue  int   `json:"max_queue,omitempty"`
	Watermark int   `json:"watermark,omitempty"`
	Shed      int64 `json:"shed,omitempty"`
}

// StatsResponse is one backend's status snapshot (GET /v2/stats).
type StatsResponse struct {
	Jobs  JobsStats  `json:"jobs"`
	Cache CacheStats `json:"cache"`
}

// GatewayBackend is one pool member as the gateway sees it.
type GatewayBackend struct {
	// URL is the backend's base URL — its identity in the pool and on
	// the hash ring.
	URL string `json:"url"`
	// Healthy reports the active health checker's current verdict; an
	// unhealthy backend is ejected from the ring until it answers
	// probes again.
	Healthy bool `json:"healthy"`
	// Draining reports administrative draining: no new assignments,
	// in-flight work runs to completion.
	Draining bool `json:"draining"`
	// Drained is Draining with no gateway requests in flight AND no
	// jobs queued or running inside the backend itself (the gateway
	// asks the backend's /v2/stats) — only then is the process safe to
	// retire. If the backend cannot be asked, Drained stays false.
	Drained bool `json:"drained,omitempty"`
	// Inflight counts the gateway requests and shard streams currently
	// running against this backend; ActiveJobs the jobs its own
	// registry reports queued or running (populated while draining).
	Inflight   int `json:"inflight"`
	ActiveJobs int `json:"active_jobs,omitempty"`
	// ConsecutiveFails counts probe failures since the last success;
	// LastError is the most recent probe or proxy failure.
	ConsecutiveFails int    `json:"consecutive_fails,omitempty"`
	LastError        string `json:"last_error,omitempty"`
	// LastProbeMS is the last health probe's time as Unix milliseconds
	// (0 before the first probe).
	LastProbeMS int64 `json:"last_probe_ms,omitempty"`
	// PendingCacheReset reports that a pool-wide DELETE /v1/cache could
	// not reach this backend; the gateway re-issues the reset when the
	// backend answers again.
	PendingCacheReset bool `json:"pending_cache_reset,omitempty"`
}

// CacheResetResponse is the gateway's answer to DELETE /v1/cache: the
// zeroed pool-wide stats plus the members the reset did not reach.
type CacheResetResponse struct {
	CacheStats
	// Unreached lists configured backends whose reset failed (down,
	// ejected, or answering errors). The gateway remembers them and
	// re-issues the reset when each one answers again; until then its
	// cache — the disk tier included — still holds pre-reset results.
	Unreached []string `json:"unreached,omitempty"`
	// Error is the first failure, when Unreached is non-empty.
	Error string `json:"error,omitempty"`
}

// GatewayBackendsResponse is the gateway's shard view
// (GET /gateway/backends and the drain endpoints).
type GatewayBackendsResponse struct {
	// Backends lists every configured pool member, routable or not.
	Backends []GatewayBackend `json:"backends"`
	// RingBackends counts the members currently on the hash ring
	// (healthy and not draining); VirtualNodes is the ring's virtual
	// nodes per backend.
	RingBackends int `json:"ring_backends"`
	VirtualNodes int `json:"virtual_nodes"`
}
