// Package thermflow is a compile-time thermal analysis toolkit for
// register files, reproducing "Thermal-Aware Data Flow Analysis"
// (Ayala, Atienza, Brisk — DAC 2009).
//
// The package compiles a small three-address IR with a pluggable
// register-assignment policy, predicts the register file's thermal
// state at every program point with a forward data-flow analysis
// (without executing the program), validates the prediction against a
// cycle-accurate trace-driven thermal simulation, and applies the
// thermal-aware optimizations the paper proposes (spilling critical
// variables, live-range splitting, thermal scheduling, register
// promotion, cool-down NOPs, thermal re-assignment).
//
// Quick start:
//
//	prog, _ := thermflow.Kernel("matmul")
//	c, _ := prog.Compile(thermflow.Options{Policy: thermflow.FirstFree})
//	fmt.Println(c.Thermal.Converged, c.Thermal.PeakTemp)
//	fmt.Println(c.Heatmap())
package thermflow

import (
	"context"
	"fmt"

	"thermflow/internal/floorplan"
	"thermflow/internal/ir"
	"thermflow/internal/opt"
	"thermflow/internal/power"
	"thermflow/internal/regalloc"
	"thermflow/internal/sim"
	"thermflow/internal/tdfa"
	"thermflow/internal/workload"
)

// Policy selects the register-assignment strategy; see the regalloc
// package for semantics. The three Fig. 1 policies are FirstFree,
// Random and Chessboard.
type Policy = regalloc.Policy

// Register-assignment policies.
const (
	FirstFree  = regalloc.FirstFree
	Random     = regalloc.Random
	Chessboard = regalloc.Chessboard
	RoundRobin = regalloc.RoundRobin
	Coldest    = regalloc.Coldest
	SpreadMax  = regalloc.SpreadMax
)

// Policies lists every policy.
var Policies = regalloc.Policies

// ErrSpillBudget is the sentinel matched by errors.Is when Compile
// fails because the register file is too small for the program: the
// allocator's spill rewriting outgrew its work budget instead of
// reducing pressure (e.g. NumRegs 1 on a multi-value program, where a
// binary operation needs two simultaneously live registers). The
// wrapped *AllocBudgetError carries the observed sizes.
var ErrSpillBudget = regalloc.ErrSpillBudget

// AllocBudgetError is the typed error behind ErrSpillBudget.
type AllocBudgetError = regalloc.BudgetError

// Solver selects the thermal analysis's fixpoint solver; see the tdfa
// package for semantics.
type Solver = tdfa.Solver

// Fixpoint solvers.
const (
	SolverDense  = tdfa.SolverDense
	SolverSparse = tdfa.SolverSparse
	SolverRegion = tdfa.SolverRegion
)

// SolverByName resolves a solver name ("dense", "sparse", "region").
func SolverByName(name string) (Solver, bool) { return tdfa.SolverByName(name) }

// PolicyByName resolves a policy name ("first-free", "random",
// "chessboard", "round-robin", "coldest", "spread-max").
func PolicyByName(name string) (Policy, bool) { return regalloc.PolicyByName(name) }

// Program is a parsed or generated IR function ready for compilation.
type Program struct {
	// Fn is the underlying IR function.
	Fn *ir.Function
	// Key, when non-empty, is a stable content identity for the
	// program *including its hooks*: two Programs with equal Key must
	// behave identically under Setup/Expect. It replaces the Program's
	// pointer in the batch cache key, so results for keyed programs
	// (built-in kernels carry "kernel:<name>") are shareable across
	// processes and survive in the disk cache tier. Leave it empty for
	// ad-hoc programs; hook-less programs are identified by their IR
	// text alone.
	Key string
	// Setup produces (args, memory) for execution at a given scale;
	// nil for programs without a canonical input.
	Setup func(scale int) ([]int64, sim.Memory)
	// Expect returns the expected result at a scale, or nil.
	Expect func(scale int) int64
}

// Parse reads a program in the textual IR syntax (see ir.Parse).
func Parse(src string) (*Program, error) {
	fn, err := ir.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Program{Fn: fn}, nil
}

// ParseModule reads a multi-function program in the textual IR syntax
// (functions may call each other; recursion is rejected) and inlines
// the named root function into a single analyzable Program — the
// paper's single-procedure analysis context.
func ParseModule(src, root string) (*Program, error) {
	m, err := ir.ParseModule(src)
	if err != nil {
		return nil, err
	}
	flat, err := opt.Inline(m, root)
	if err != nil {
		return nil, err
	}
	return &Program{Fn: flat}, nil
}

// Kernel returns a built-in benchmark kernel by name; see Kernels.
func Kernel(name string) (*Program, error) {
	k, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	// The stable Key makes kernel results shareable across processes:
	// every process resolving the same kernel derives the same batch
	// cache key, which is what lets a disk-tier entry written by one
	// thermflowd warm the next (kernels' Setup/Expect hooks are part
	// of the workload definition, so the name identifies them too).
	return &Program{Fn: k.Fn, Key: kernelKeyPrefix + name, Setup: k.Setup, Expect: k.Expect}, nil
}

// Kernels lists the built-in kernel names.
func Kernels() []string {
	var names []string
	for _, k := range workload.All() {
		names = append(names, k.Name)
	}
	return names
}

// GenerateOptions mirrors workload.GenConfig for random programs.
type GenerateOptions = workload.GenConfig

// Generate builds a seeded random program (structured, terminating).
func Generate(opts GenerateOptions) *Program {
	return &Program{Fn: workload.Generate(opts)}
}

// MegaOptions mirrors workload.MegaConfig for huge single-function
// programs shaped so the region partitioner produces a wide DAG.
type MegaOptions = workload.MegaConfig

// GenerateMega builds a seeded mega-module: a dispatch chain fanning
// out into independent loop-nest arms, sized so a region-partitioned
// solve pays off. See MegaOptions for the knobs.
func GenerateMega(opts MegaOptions) *Program {
	return &Program{Fn: workload.GenerateMega(opts)}
}

// Options parameterizes Compile. The zero value compiles for the
// default 64-register 8×8 file with the first-free policy and default
// analysis settings.
type Options struct {
	// NumRegs is the register-file size (0 = 64).
	NumRegs int
	// Policy is the assignment policy (default FirstFree).
	Policy Policy
	// Seed drives the Random policy.
	Seed int64
	// HeatSeed pre-heats registers for the Coldest policy.
	HeatSeed []float64

	// GridW, GridH choose the floorplan grid (0 = 8×8); Layout its
	// register placement.
	GridW, GridH int
	// Layout is the register-to-cell placement (default row-major).
	Layout floorplan.Layout

	// Tech overrides the technology parameters (zero = 65 nm default).
	Tech power.Tech

	// Solver selects the analysis fixpoint solver (default
	// SolverDense, the paper-faithful Fig. 2 iteration; SolverSparse
	// is the worklist variant differentially tested against it;
	// SolverRegion partitions the CFG into regions and solves them in
	// parallel — byte-identical to dense when RegionDelta is 0).
	Solver Solver
	// Regions bounds the region count for SolverRegion (0 = the
	// solver's default). Part of the result identity: the partition
	// shapes slack-mode convergence.
	Regions int
	// RegionDelta is SolverRegion's extra boundary slack σ in kelvin.
	// 0 keeps exact mode (byte-identical to dense); σ > 0 lets each
	// region run to a local fixpoint per round and stops when no
	// boundary state moves more than Delta+σ, trading a bounded error
	// of (Delta+σ)/(1−ρ) for fewer exchange rounds.
	RegionDelta float64

	// Delta is the analysis convergence threshold δ in kelvin (0 =
	// 0.05).
	Delta float64
	// MaxIter caps analysis sweeps (0 = 64).
	MaxIter int
	// Kappa is the time-acceleration factor (0 = 1e5).
	Kappa float64
	// JoinOp selects the merge operator at control-flow joins.
	JoinOp tdfa.Join
	// WithLeakage adds temperature-dependent leakage to the analysis.
	WithLeakage bool
	// NoWarmStart disables the steady-state warm start (raw Fig. 2
	// iteration).
	NoWarmStart bool
	// DefaultTrip is the assumed loop trip count when the IR has no
	// hint (0 = 10).
	DefaultTrip int

	// SkipAnalysis compiles (allocates) without running the thermal
	// analysis.
	SkipAnalysis bool
}

func (o Options) numRegs() int {
	if o.NumRegs <= 0 {
		return 64
	}
	return o.NumRegs
}

func (o Options) tech() power.Tech {
	if o.Tech == (power.Tech{}) {
		return power.Default65nm()
	}
	return o.Tech
}

func (o Options) floorplan() (*floorplan.Floorplan, error) {
	w, h := o.GridW, o.GridH
	if w <= 0 || h <= 0 {
		w, h = 8, 8
	}
	return floorplan.New(o.numRegs(), w, h, o.tech().CellEdge, o.Layout)
}

// Compiled bundles the outcome of compilation: the allocated function,
// the register assignment and the thermal analysis result.
type Compiled struct {
	// Program is the source program (unmodified).
	Program *Program
	// Alloc holds the allocated function (Alloc.Fn) and the
	// value-to-register assignment.
	Alloc *regalloc.Allocation
	// Thermal is the analysis result (nil when SkipAnalysis was set).
	Thermal *tdfa.Result
	// Opts echoes the compile options.
	Opts Options

	fp   *floorplan.Floorplan
	tech power.Tech
}

// Compile allocates registers under the chosen policy and runs the
// thermal data-flow analysis on the result.
func (p *Program) Compile(opts Options) (*Compiled, error) {
	return p.CompileContext(context.Background(), opts)
}

// CompileContext is Compile bounded by ctx: the thermal analysis polls
// the context between block evaluations, so cancellation — a job
// deadline, a disconnected client — aborts a long compile mid-fixpoint
// instead of at the next engine boundary. The context never influences
// the result or its cache identity, only whether the compile finishes.
func (p *Program) CompileContext(ctx context.Context, opts Options) (*Compiled, error) {
	fp, err := opts.floorplan()
	if err != nil {
		return nil, err
	}
	tech := opts.tech()
	alloc, err := regalloc.Allocate(p.Fn, regalloc.Config{
		NumRegs:     opts.numRegs(),
		Policy:      opts.Policy,
		Seed:        opts.Seed,
		HeatSeed:    opts.HeatSeed,
		FP:          fp,
		DefaultTrip: opts.DefaultTrip,
	})
	if err != nil {
		return nil, fmt.Errorf("thermflow: allocation failed: %w", err)
	}
	c := &Compiled{Program: p, Alloc: alloc, Opts: opts, fp: fp, tech: tech}
	if !opts.SkipAnalysis {
		done := observeSolver(ctx, opts.Solver)
		res, err := tdfa.Analyze(alloc.Fn, tdfa.Config{
			Tech:        tech,
			FP:          fp,
			Alloc:       alloc,
			Ctx:         ctx,
			Solver:      opts.Solver,
			Regions:     opts.Regions,
			RegionSlack: opts.RegionDelta,
			Delta:       opts.Delta,
			MaxIter:     opts.MaxIter,
			Kappa:       opts.Kappa,
			JoinOp:      opts.JoinOp,
			WithLeakage: opts.WithLeakage,
			NoWarmStart: opts.NoWarmStart,
			DefaultTrip: opts.DefaultTrip,
		})
		if err != nil {
			done(false)
			return nil, fmt.Errorf("thermflow: analysis failed: %w", err)
		}
		done(res.Converged)
		c.Thermal = res
	}
	return c, nil
}

// AnalyzeEarly runs the pre-allocation predictive analysis (paper §4's
// "more ambitious possibility"): no register assignment exists yet, so
// placement follows the policy prior. The returned result ranks the
// variables most likely to create hot spots.
func (p *Program) AnalyzeEarly(prior tdfa.Prior, opts Options) (*tdfa.Result, error) {
	fp, err := opts.floorplan()
	if err != nil {
		return nil, err
	}
	return tdfa.Analyze(p.Fn, tdfa.Config{
		Tech:           opts.tech(),
		FP:             fp,
		PlacementPrior: prior,
		Solver:         opts.Solver,
		Regions:        opts.Regions,
		RegionSlack:    opts.RegionDelta,
		Delta:          opts.Delta,
		MaxIter:        opts.MaxIter,
		Kappa:          opts.Kappa,
		JoinOp:         opts.JoinOp,
		WithLeakage:    opts.WithLeakage,
		NoWarmStart:    opts.NoWarmStart,
		DefaultTrip:    opts.DefaultTrip,
	})
}

// Floorplan returns the register-file floorplan used by the compile.
func (c *Compiled) Floorplan() *floorplan.Floorplan { return c.fp }

// Tech returns the technology parameters used by the compile.
func (c *Compiled) Tech() power.Tech { return c.tech }
