GO ?= go

.PHONY: build test bench bench-serve bench-persist bench-load bench-region serve smoke smoke-persist smoke-jobs smoke-gateway smoke-durable smoke-load smoke-quota smoke-region smoke-trace fuzz fmt vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Records the batch-engine and solver benchmarks in BENCH_batch.json.
bench:
	sh scripts/bench_batch.sh

# Records the thermflowd cross-process cache-sharing win in
# BENCH_serve.json (two cmd/experiments runs against one server).
bench-serve:
	sh scripts/bench_serve.sh

# Records the persistent-cache warm-restart win in BENCH_persist.json
# (full sweep, hard thermflowd restart over the same -cache-dir).
bench-persist:
	sh scripts/bench_persist.sh

# Runs the analysis server on :8080 (override with ADDR=host:port).
serve:
	$(GO) run ./cmd/thermflowd -addr $(or $(ADDR),:8080)

# Starts thermflowd, sweeps against it twice via the client, asserts
# the repeat is served from cache (the CI server smoke step).
smoke:
	sh scripts/serve_smoke.sh

# Starts thermflowd with a disk cache tier, hard-restarts it, asserts
# the repeat sweep is served from disk (the CI persistence smoke step).
smoke-persist:
	sh scripts/persist_smoke.sh

# Starts thermflowd with auth + rate limiting and exercises the v2 job
# lifecycle end to end: 401, submit/wait/done, duplicate-submit
# convergence, ID-keyed batch stream, 429 (the CI jobs smoke step).
smoke-jobs:
	sh scripts/jobs_smoke.sh

# Starts 2 thermflowd backends + 1 thermflowgate, runs the 99-job
# sweep through the gateway, kills one backend mid-sweep, and asserts
# every job ID is answered exactly once via failover re-dispatch (the
# CI gateway smoke step).
smoke-gateway:
	sh scripts/gateway_smoke.sh

# Starts thermflowd with -job-log-dir, runs the 99-job sweep via
# POST /v2/jobs, SIGKILLs the daemon, restarts it, and asserts every
# job ID resolves to the identical result; then asserts a gateway with
# -replicas 1 answers a dead owner's job from the ring successor (the
# CI durability smoke step).
smoke-durable:
	sh scripts/durability_smoke.sh

# Starts 2 thermflowd backends + 1 thermflowgate and drives an
# open-loop arrival-rate sweep with cmd/thermload, writing
# BENCH_LOAD.json; -check fails the run on any 5xx/transport error, an
# empty stage, or a >2x p99 regression against the committed
# scripts/baseline_load.json (the CI load smoke step). bench-load is
# the same run by its benchmarking name.
smoke-load bench-load:
	sh scripts/bench_load.sh

# Two tenants (critical "high", batch "low") hammer a 2-backend pool
# through thermflowgate with a quota file: asserts "low" is shed
# (429/503, correctly attributed) while "high" completes everything
# with zero 5xx and a bounded p99, then checks the admission counters
# on /metrics (the CI quota smoke step).
smoke-quota:
	sh scripts/quota_smoke.sh

# Starts 2 thermflowd backends + 1 thermflowgate, submits a mega-module
# as a kind:"region" job, and asserts the gateway fanned per-region
# fixpoint steps out to both backends and that the merged result is
# field-for-field identical to the same spec solved whole on one
# backend (the CI region smoke step).
smoke-region:
	sh scripts/region_smoke.sh

# Starts two backends behind a gateway and asserts the tracing plane
# end to end over real processes: a client-minted X-Thermflow-Trace
# propagates through the gateway to both backends, a region job answers
# one stitched timeline with region.solve spans from two distinct
# backends, and a thermload sweep's reported slowest trace resolves to
# its job timeline (the CI trace smoke step).
smoke-trace:
	sh scripts/trace_smoke.sh

# Records the mega-module solver benchmarks (monolithic dense/sparse vs
# partitioned exact and σ-slack region solves) in BENCH_region.json,
# including rounds-to-fixpoint; parallel speedup fields are emitted
# only on a >=4-cpu host.
bench-region:
	sh scripts/bench_region.sh

# Short fuzz pass over the IR parsers, the JobSpec wire codec and the
# WAL recovery path (the seed corpora alone run under plain
# `make test`).
fuzz:
	$(GO) test ./internal/ir -fuzz 'FuzzParse$$' -fuzztime 30s
	$(GO) test ./internal/ir -fuzz 'FuzzParseModule$$' -fuzztime 30s
	$(GO) test . -fuzz 'FuzzJobSpecDecode$$' -fuzztime 30s
	$(GO) test ./internal/joblog -fuzz 'FuzzJoblogRecover$$' -fuzztime 30s

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: fmt vet build test
