GO ?= go

.PHONY: build test bench fuzz fmt vet ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Records the batch-engine and solver benchmarks in BENCH_batch.json.
bench:
	sh scripts/bench_batch.sh

# Short fuzz pass over the IR parsers (the seed corpus alone runs under
# plain `make test`).
fuzz:
	$(GO) test ./internal/ir -fuzz 'FuzzParse$$' -fuzztime 30s
	$(GO) test ./internal/ir -fuzz 'FuzzParseModule$$' -fuzztime 30s

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

ci: fmt vet build test
