package thermflow

import (
	"context"
	"errors"
	"testing"
	"time"
)

// slowOpts makes the matmul analysis run for many seconds when left
// alone: tiny κ heats the grid slowly, so the fixpoint needs ~7e5
// sweeps at this δ (measured ~16 s). The cancellation tests only ever
// run a fraction of that — promptness is the property under test.
func slowOpts(solver Solver) Options {
	return Options{
		Solver:      solver,
		Delta:       1e-9,
		Kappa:       0.01,
		NoWarmStart: true,
		MaxIter:     1 << 20,
	}
}

// A compile whose context is cancelled mid-analysis must return
// promptly with the context's error — not run the remaining sweeps to
// the fixpoint — for both solvers.
func TestCompileContextCancelsMidAnalysis(t *testing.T) {
	for _, solver := range []Solver{SolverDense, SolverSparse} {
		t.Run(solver.String(), func(t *testing.T) {
			p, err := Kernel("matmul")
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			start := time.Now()
			_, err = p.CompileContext(ctx, slowOpts(solver))
			elapsed := time.Since(start)
			if err == nil {
				t.Fatal("cancelled compile returned no error")
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want context.DeadlineExceeded", err)
			}
			if elapsed > 3*time.Second {
				t.Fatalf("cancelled compile took %v, want prompt return", elapsed)
			}
		})
	}
}

// A context cancelled before the compile starts must stop the solver
// on its first poll.
func TestCompileContextPreCancelled(t *testing.T) {
	p, err := Kernel("matmul")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := p.CompileContext(ctx, slowOpts(SolverDense)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("pre-cancelled compile took %v, want prompt return", elapsed)
	}
}

// Cancelling a batch context must cut the in-flight compile itself and
// the cancellation-tainted failure must not be cached: a later batch
// with a live context recomputes and succeeds.
func TestBatchCancelCutsInFlightCompile(t *testing.T) {
	p, err := Kernel("fir")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch(1)
	job := CompileJob{Program: p, Opts: slowOpts(SolverDense)}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan []CompileResult, 1)
	go func() { done <- b.Compile(ctx, []CompileJob{job}) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case res := <-done:
		if res[0].Err == nil {
			t.Fatal("cancelled batch job returned no error")
		}
		if !errors.Is(res[0].Err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", res[0].Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled batch did not return promptly")
	}

	// The identical job (same cache key) must be recomputed, not
	// served the cached cancellation: a second run under its own
	// short-lived context reports its own fresh cancellation, not a
	// cached one.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	res := b.Compile(ctx2, []CompileJob{job})
	if res[0].Err == nil {
		t.Fatal("second cancelled run of the slow job returned no error")
	}
	if res[0].Cached {
		t.Fatal("cancellation-tainted failure was served from cache")
	}

	// And the engine stays usable: a different (fast) job compiles.
	quick := job
	quick.Opts = Options{Solver: SolverDense}
	res = b.Compile(context.Background(), []CompileJob{quick})
	if res[0].Err != nil {
		t.Fatalf("post-cancel compile failed: %v", res[0].Err)
	}
}
