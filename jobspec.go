package thermflow

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// This file defines JobSpec, the canonical unit of work of the v2 API:
// a typed, versioned compile request whose deterministic encoding is
// hashed into the job ID. The same encoding (extended with an optional
// hook-identity field) derives the batch engine's cache key, so one
// identity runs all the way through: the job ID a client submits under
// is the key the result store files the compilation under, the name of
// the disk-tier entry that survives a restart, and the shard key a
// front server can hash across a backend pool.

// JobSpecVersion is the canonical-encoding version. Bump it on any
// change to the identity layout: old IDs then simply never collide
// with new ones.
const JobSpecVersion = 2

// JobSpec is the canonical description of one compile job. Identity is
// content: Source (canonical textual IR) and Opts are hashed into the
// job ID; Deadline and Priority are scheduling hints and deliberately
// NOT part of identity, so re-submitting the same work with a
// different urgency converges on the same job.
//
// Construct specs with NewJobSpec, JobSpecFromSource or
// JobSpecFromKernel — they canonicalize Source (parse → print), which
// is what makes two textual spellings of the same program, or a kernel
// reference and its printed IR, produce the same ID.
type JobSpec struct {
	// Source is the program in canonical textual IR form (a single
	// function, already inlined).
	Source string
	// Opts are the compile options.
	Opts Options

	// Deadline bounds the job's total lifetime from submission —
	// queue wait included. Zero means no deadline. Not part of the
	// job's identity.
	Deadline time.Duration
	// Priority orders queued jobs: higher runs earlier. Not part of
	// the job's identity.
	Priority int
}

// NewJobSpec builds a spec from an in-memory Program. Programs
// carrying Setup/Expect hooks lose them here: a JobSpec describes only
// what the compiler sees.
func NewJobSpec(p *Program, opts Options) (JobSpec, error) {
	if p == nil || p.Fn == nil {
		return JobSpec{}, fmt.Errorf("thermflow: job spec needs a program")
	}
	return JobSpec{Source: p.Fn.String(), Opts: opts}, nil
}

// JobSpecFromSource builds a spec from textual IR, canonicalizing it
// (parse, inline root if the source is a multi-function module, print).
// Two sources that parse to the same function yield the same spec.
func JobSpecFromSource(src, root string, opts Options) (JobSpec, error) {
	var p *Program
	var err error
	if root != "" {
		p, err = ParseModule(src, root)
	} else {
		p, err = Parse(src)
	}
	if err != nil {
		return JobSpec{}, err
	}
	return NewJobSpec(p, opts)
}

// kernelSpecSource memoizes each kernel's canonical source text: the
// workload registry is fixed at init, and printing the IR is the whole
// per-request cost of resolving a kernel reference.
var kernelSpecSource sync.Map // kernel name -> canonical source string

// JobSpecFromKernel builds a spec from a built-in kernel reference.
// The kernel resolves to its canonical IR text, so the resulting ID
// equals that of a spec built from the kernel's printed source — a
// kernel ref is a name for a program, not a separate identity.
func JobSpecFromKernel(name string, opts Options) (JobSpec, error) {
	if src, ok := kernelSpecSource.Load(name); ok {
		return JobSpec{Source: src.(string), Opts: opts}, nil
	}
	p, err := Kernel(name)
	if err != nil {
		return JobSpec{}, err
	}
	spec, err := NewJobSpec(p, opts)
	if err == nil {
		kernelSpecSource.Store(name, spec.Source)
	}
	return spec, err
}

// canonicalJobJSON is the identity encoding layout. Field order is
// fixed by the struct; Options marshals deterministically with
// defaults omitted (see MarshalJSON in json.go), so equal content
// always renders equal bytes. Hooks carries the hook identity of
// library Programs with Setup/Expect (empty for pure-content jobs) —
// it is what keeps hooked programs from sharing results while letting
// everything else share by content alone.
type canonicalJobJSON struct {
	V       int             `json:"v"`
	Source  string          `json:"source"`
	Hooks   string          `json:"hooks,omitempty"`
	Options json.RawMessage `json:"options"`
}

// canonicalJobBytes renders the identity encoding.
func canonicalJobBytes(source, hooks string, opts Options) ([]byte, error) {
	oj, err := opts.MarshalJSON()
	if err != nil {
		return nil, err
	}
	return json.Marshal(canonicalJobJSON{
		V: JobSpecVersion, Source: source, Hooks: hooks, Options: oj,
	})
}

// CanonicalBytes returns the spec's deterministic identity encoding:
// version, canonical source and options. Deadline and Priority are
// excluded — they schedule the job, they don't name it. The encoding
// round-trips: unmarshalling a JobSpec from any JSON spelling of the
// same content and re-encoding yields these exact bytes.
func (s JobSpec) CanonicalBytes() ([]byte, error) {
	return canonicalJobBytes(s.Source, "", s.Opts)
}

// ID returns the job's content identity: the hex SHA-256 of
// CanonicalBytes. For specs built by the constructors it equals the
// batch cache key of the job's compilation, which is also the
// disk-tier entry name — one identity from client to disk.
func (s JobSpec) ID() (string, error) {
	b, err := s.CanonicalBytes()
	if err != nil {
		return "", fmt.Errorf("thermflow: job spec has no canonical encoding: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// CompileJob converts the spec into a batch job. The job's cache key
// equals the spec's ID (the spec's Source is already canonical), so
// results land in the store under the job ID.
func (s JobSpec) CompileJob() (CompileJob, error) {
	p, err := Parse(s.Source)
	if err != nil {
		return CompileJob{}, fmt.Errorf("thermflow: job spec source: %w", err)
	}
	return CompileJob{Program: p, Opts: s.Opts}, nil
}

// jobspecJSON is the full wire form: the identity fields plus the
// scheduling hints. Enums travel by name through the Options codec.
type jobspecJSON struct {
	V          int     `json:"v"`
	Source     string  `json:"source"`
	Options    Options `json:"options"`
	DeadlineMS int64   `json:"deadline_ms,omitempty"`
	Priority   int     `json:"priority,omitempty"`
}

// MarshalJSON encodes the spec deterministically: fixed field order,
// defaults omitted. encode → decode → encode is byte-identical.
func (s JobSpec) MarshalJSON() ([]byte, error) {
	return json.Marshal(jobspecJSON{
		V: JobSpecVersion, Source: s.Source, Options: s.Opts,
		DeadlineMS: s.Deadline.Milliseconds(), Priority: s.Priority,
	})
}

// DecodeJobSpec parses one JobSpec wire encoding (the JSON form
// MarshalJSON emits) and rejects trailing data after it — a framed
// decode for WAL payloads and queue messages, where "two specs
// concatenated" must be an error, not a silently-dropped tail.
// Decoding never panics on arbitrary input, and a successful decode
// re-encodes deterministically: Marshal(DecodeJobSpec(b)) is a
// fixpoint (encode → decode → encode is byte-identical).
func DecodeJobSpec(data []byte) (JobSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	var s JobSpec
	if err := dec.Decode(&s); err != nil {
		return JobSpec{}, fmt.Errorf("thermflow: decoding job spec: %w", err)
	}
	if dec.More() {
		return JobSpec{}, fmt.Errorf("thermflow: trailing data after job spec")
	}
	return s, nil
}

// UnmarshalJSON decodes the wire form. The version must be
// JobSpecVersion (or absent, which selects it); anything else is an
// error — a v3 spec must not silently compile as a v2 one. Source is
// preserved verbatim; it is the constructors, not the codec, that
// canonicalize.
func (s *JobSpec) UnmarshalJSON(data []byte) error {
	var w jobspecJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.V != 0 && w.V != JobSpecVersion {
		return fmt.Errorf("thermflow: job spec version %d, want %d", w.V, JobSpecVersion)
	}
	*s = JobSpec{
		Source: w.Source, Opts: w.Options,
		Deadline: time.Duration(w.DeadlineMS) * time.Millisecond,
		Priority: w.Priority,
	}
	return nil
}
