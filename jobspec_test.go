package thermflow

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"thermflow/internal/power"
)

// specVariants spans the option space: every enum off its default,
// nested tech parameters, slices, and scheduling hints.
func specVariants() []Options {
	return []Options{
		{},
		{Policy: Chessboard, NumRegs: 16},
		{Policy: Random, Seed: 42, Solver: SolverSparse},
		{Policy: Coldest, HeatSeed: []float64{300, 310.5, 295.25}},
		{GridW: 4, GridH: 4, NumRegs: 16, MaxIter: 128, Delta: 0.01},
		{Tech: power.Default65nm(), Kappa: 12.5, WithLeakage: true},
		{NoWarmStart: true, DefaultTrip: 3, SkipAnalysis: true},
	}
}

// The acceptance property: encode → decode → encode is byte-identical,
// and the decoded spec carries the same ID.
func TestJobSpecEncodeDecodeEncodeIsByteIdentical(t *testing.T) {
	for _, name := range Kernels() {
		for i, opts := range specVariants() {
			spec, err := JobSpecFromKernel(name, opts)
			if err != nil {
				t.Fatalf("%s/%d: %v", name, i, err)
			}
			spec.Deadline = time.Duration(i) * time.Second
			spec.Priority = i - 3

			enc1, err := json.Marshal(spec)
			if err != nil {
				t.Fatalf("%s/%d: marshal: %v", name, i, err)
			}
			var decoded JobSpec
			if err := json.Unmarshal(enc1, &decoded); err != nil {
				t.Fatalf("%s/%d: unmarshal: %v", name, i, err)
			}
			enc2, err := json.Marshal(decoded)
			if err != nil {
				t.Fatalf("%s/%d: re-marshal: %v", name, i, err)
			}
			if !bytes.Equal(enc1, enc2) {
				t.Errorf("%s/%d: encode/decode/encode differs:\n%s\n%s", name, i, enc1, enc2)
			}
			id1, err := spec.ID()
			if err != nil {
				t.Fatal(err)
			}
			id2, err := decoded.ID()
			if err != nil {
				t.Fatal(err)
			}
			if id1 != id2 {
				t.Errorf("%s/%d: ID changed across the codec: %s vs %s", name, i, id1, id2)
			}
			if decoded.Source != spec.Source || decoded.Deadline != spec.Deadline ||
				decoded.Priority != spec.Priority {
				t.Errorf("%s/%d: decoded spec diverged", name, i)
			}
		}
	}
}

// A kernel reference and the kernel's canonicalized source are the
// same job.
func TestJobSpecKernelRefEqualsCanonicalSource(t *testing.T) {
	opts := Options{Policy: Chessboard, NumRegs: 32}
	for _, name := range Kernels() {
		byRef, err := JobSpecFromKernel(name, opts)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Kernel(name)
		if err != nil {
			t.Fatal(err)
		}
		bySrc, err := JobSpecFromSource(p.Fn.String(), "", opts)
		if err != nil {
			t.Fatalf("%s: source round trip: %v", name, err)
		}
		refID, _ := byRef.ID()
		srcID, _ := bySrc.ID()
		if refID == "" || refID != srcID {
			t.Errorf("%s: kernel ref ID %s != source ID %s", name, refID, srcID)
		}
	}
}

// Deadline and priority schedule a job; they must not rename it.
func TestJobSpecIDIgnoresScheduling(t *testing.T) {
	base, err := JobSpecFromKernel("matmul", Options{})
	if err != nil {
		t.Fatal(err)
	}
	urgent := base
	urgent.Deadline = 5 * time.Second
	urgent.Priority = 100
	baseID, _ := base.ID()
	urgentID, _ := urgent.ID()
	if baseID != urgentID {
		t.Errorf("scheduling hints changed the job ID: %s vs %s", baseID, urgentID)
	}
	// The full wire form does carry them.
	b1, _ := json.Marshal(base)
	b2, _ := json.Marshal(urgent)
	if bytes.Equal(b1, b2) {
		t.Error("wire form dropped the scheduling hints")
	}
}

// Reordered JSON option fields are the same request: decoding is
// field-order-insensitive and re-encoding is canonical.
func TestJobSpecIDStableUnderFieldReorder(t *testing.T) {
	p, err := Kernel("dot")
	if err != nil {
		t.Fatal(err)
	}
	src, _ := json.Marshal(p.Fn.String())
	a := []byte(`{"v":2,"source":` + string(src) + `,"options":{"num_regs":16,"policy":"chessboard","solver":"sparse"}}`)
	b := []byte(`{"options":{"solver":"sparse","num_regs":16,"policy":"chessboard"},"source":` + string(src) + `,"v":2}`)
	var sa, sb JobSpec
	if err := json.Unmarshal(a, &sa); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &sb); err != nil {
		t.Fatal(err)
	}
	ida, err := sa.ID()
	if err != nil {
		t.Fatal(err)
	}
	idb, err := sb.ID()
	if err != nil {
		t.Fatal(err)
	}
	if ida != idb {
		t.Errorf("field order changed the job ID: %s vs %s", ida, idb)
	}
	ea, _ := json.Marshal(sa)
	eb, _ := json.Marshal(sb)
	if !bytes.Equal(ea, eb) {
		t.Errorf("re-encodings differ:\n%s\n%s", ea, eb)
	}
}

// The job ID is the batch cache key: one identity from client to disk.
func TestJobSpecIDEqualsBatchCacheKey(t *testing.T) {
	for i, opts := range specVariants() {
		spec, err := JobSpecFromKernel("fir", opts)
		if err != nil {
			t.Fatal(err)
		}
		id, err := spec.ID()
		if err != nil {
			t.Fatal(err)
		}
		job, err := spec.CompileJob()
		if err != nil {
			t.Fatal(err)
		}
		if key := job.cacheKey(); key != id {
			t.Errorf("variant %d: cache key %s != job ID %s", i, key, id)
		}
	}
}

// Hooked programs must not collapse onto the pure-content identity:
// kernels (which carry hooks plus a stable Key) get their own cache
// key, distinct from the hook-free spec of the same IR.
func TestHookedProgramKeyDistinctFromSpecID(t *testing.T) {
	p, err := Kernel("dot")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := NewJobSpec(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := spec.ID()
	hookedKey := CompileJob{Program: p, Opts: Options{}}.cacheKey()
	if hookedKey == "" || hookedKey == id {
		t.Errorf("hooked kernel shares the hook-free identity %s", id)
	}
	// Two processes resolving the same kernel agree (stable Key)...
	p2, _ := Kernel("dot")
	if k2 := (CompileJob{Program: p2, Opts: Options{}}).cacheKey(); k2 != hookedKey {
		t.Errorf("same kernel, different keys: %s vs %s", k2, hookedKey)
	}
	// ...while an anonymous hooked program stays process-local.
	anon := &Program{Fn: p.Fn, Setup: p.Setup}
	if k := (CompileJob{Program: anon, Opts: Options{}}).cacheKey(); k == hookedKey || k == id {
		t.Error("anonymous hooked program shares a stable identity")
	}
}

// Future spec versions must be rejected, not misread.
func TestJobSpecRejectsUnknownVersion(t *testing.T) {
	var s JobSpec
	if err := json.Unmarshal([]byte(`{"v":3,"source":"","options":{}}`), &s); err == nil {
		t.Error("version 3 spec decoded without error")
	}
}
