package cachestore

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// On-disk layout: one file per entry, named by the SHA-256 of the
// cache key (keys are arbitrary strings; hashing them makes a safe,
// fixed-length file name), with the suffix entrySuffix. Each file is:
//
//	offset 0  magic "TFCS"
//	       4  u32 LE format version
//	       8  u32 LE CRC-32 (IEEE) of the payload
//	      12  u64 LE payload length
//	      20  payload (Codec.Encode output)
//
// Writes go to an O_EXCL temporary name in the same directory and are
// renamed into place, so a reader never observes a half-written entry
// and a crash leaves at most a tmp file (swept at Open). Bumping
// diskFormatVersion invalidates every existing entry cleanly: old
// files fail the header check, count as corrupt, and are deleted.
const (
	diskMagic         = "TFCS"
	diskFormatVersion = 1
	diskHeaderSize    = 20
	entrySuffix       = ".tfc"
	tmpPrefix         = "tfc-tmp-"
)

// maxEntryBytes rejects absurd payload lengths before allocating
// (a corrupt length field must not become an allocation bomb).
const maxEntryBytes = 1 << 31

type diskTier struct {
	dir   string
	cap   int64
	codec Codec

	mu     sync.Mutex
	byName map[string]*list.Element
	lru    *list.List // front = most recently used
	bytes  int64
	stat   TierStats
}

// diskEntry is one indexed file.
type diskEntry struct {
	name string // file name within dir
	size int64  // whole-file size, header included
}

func entryName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + entrySuffix
}

// openDisk creates (if needed) and indexes the directory. Entries
// surviving from a previous process are seeded into the LRU in
// modification-time order, so the cap evicts the stalest first; tmp
// files from interrupted writes are swept.
func openDisk(dir string, capBytes int64, codec Codec) (*diskTier, error) {
	if capBytes <= 0 {
		capBytes = DefaultMaxDiskBytes
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("cachestore: creating disk tier: %w", err)
	}
	d := &diskTier{
		dir:    dir,
		cap:    capBytes,
		codec:  codec,
		byName: make(map[string]*list.Element),
		lru:    list.New(),
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cachestore: indexing disk tier: %w", err)
	}
	type seed struct {
		name  string
		size  int64
		mtime int64
	}
	var seeds []seed
	for _, ent := range ents {
		name := ent.Name()
		if strings.HasPrefix(name, tmpPrefix) {
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasSuffix(name, entrySuffix) || ent.IsDir() {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		seeds = append(seeds, seed{name, info.Size(), info.ModTime().UnixNano()})
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i].mtime < seeds[j].mtime })
	for _, sd := range seeds {
		d.byName[sd.name] = d.lru.PushFront(&diskEntry{name: sd.name, size: sd.size})
		d.bytes += sd.size
	}
	d.mu.Lock()
	d.evictLocked()
	d.mu.Unlock()
	return d, nil
}

// get reads, validates and decodes the entry for key. Any validation
// or decode failure deletes the file and reports a miss; only a
// healthy entry counts as a hit.
func (d *diskTier) get(key string) (any, bool) {
	name := entryName(key)
	d.mu.Lock()
	el, ok := d.byName[name]
	if ok {
		d.lru.MoveToFront(el)
	}
	d.mu.Unlock()
	if !ok {
		d.count(func(t *TierStats) { t.Misses++ })
		return nil, false
	}
	payload, err := readEntry(filepath.Join(d.dir, name))
	if err != nil {
		// A vanished file means a concurrent eviction or reset — a
		// plain miss. Anything else is corruption.
		if !errors.Is(err, os.ErrNotExist) {
			d.dropCorrupt(name)
		}
		d.count(func(t *TierStats) { t.Misses++ })
		return nil, false
	}
	v, err := d.codec.Decode(payload)
	if err != nil {
		d.dropCorrupt(name)
		d.count(func(t *TierStats) { t.Misses++ })
		return nil, false
	}
	d.count(func(t *TierStats) { t.Hits++ })
	return v, true
}

// put encodes and durably writes the entry, then enforces the cap.
// Failures (unencodable value, I/O error) are silent: the disk tier is
// an accelerator, not a system of record.
func (d *diskTier) put(key string, v any) {
	payload, err := d.codec.Encode(v)
	if err != nil {
		return // ErrUnencodable or a codec fault: stay memory-only
	}
	name := entryName(key)
	size, err := writeEntry(d.dir, name, payload)
	if err != nil {
		return
	}
	d.mu.Lock()
	if el, ok := d.byName[name]; ok {
		e := el.Value.(*diskEntry)
		d.bytes += size - e.size
		e.size = size
		d.lru.MoveToFront(el)
	} else {
		d.byName[name] = d.lru.PushFront(&diskEntry{name: name, size: size})
		d.bytes += size
		d.stat.Puts++
	}
	d.evictLocked()
	d.mu.Unlock()
}

// evictLocked removes least-recently-used entries until the tier fits
// its cap. Callers hold d.mu; file removal happens inline (entry files
// are small and eviction is rare).
func (d *diskTier) evictLocked() {
	for d.bytes > d.cap {
		el := d.lru.Back()
		if el == nil {
			break
		}
		e := el.Value.(*diskEntry)
		d.lru.Remove(el)
		delete(d.byName, e.name)
		d.bytes -= e.size
		d.stat.Evictions++
		_ = os.Remove(filepath.Join(d.dir, e.name))
	}
}

// delete removes one entry from the index and the directory.
func (d *diskTier) delete(key string) {
	name := entryName(key)
	d.mu.Lock()
	if el, ok := d.byName[name]; ok {
		e := el.Value.(*diskEntry)
		d.lru.Remove(el)
		delete(d.byName, name)
		d.bytes -= e.size
	}
	d.mu.Unlock()
	_ = os.Remove(filepath.Join(d.dir, name))
}

// dropCorrupt removes a failed entry from the index and the directory.
func (d *diskTier) dropCorrupt(name string) {
	d.mu.Lock()
	if el, ok := d.byName[name]; ok {
		e := el.Value.(*diskEntry)
		d.lru.Remove(el)
		delete(d.byName, name)
		d.bytes -= e.size
	}
	d.stat.Corrupt++
	d.mu.Unlock()
	_ = os.Remove(filepath.Join(d.dir, name))
}

// reset deletes every indexed entry and zeroes the counters.
func (d *diskTier) reset() error {
	d.mu.Lock()
	names := make([]string, 0, len(d.byName))
	for name := range d.byName {
		names = append(names, name)
	}
	d.byName = make(map[string]*list.Element)
	d.lru = list.New()
	d.bytes = 0
	d.stat = TierStats{}
	d.mu.Unlock()
	var first error
	for _, name := range names {
		if err := os.Remove(filepath.Join(d.dir, name)); err != nil && !errors.Is(err, os.ErrNotExist) && first == nil {
			first = fmt.Errorf("cachestore: resetting disk tier: %w", err)
		}
	}
	return first
}

func (d *diskTier) stats() TierStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := d.stat
	out.Entries = d.lru.Len()
	out.Bytes = d.bytes
	out.CapBytes = d.cap
	return out
}

func (d *diskTier) count(f func(*TierStats)) {
	d.mu.Lock()
	f(&d.stat)
	d.mu.Unlock()
}

// writeEntry frames payload and writes it via a temporary file plus
// atomic rename, returning the whole-file size.
func writeEntry(dir, name string, payload []byte) (int64, error) {
	if int64(len(payload)) > maxEntryBytes {
		return 0, fmt.Errorf("cachestore: entry payload of %d bytes exceeds limit", len(payload))
	}
	hdr := make([]byte, 0, diskHeaderSize)
	hdr = append(hdr, diskMagic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, diskFormatVersion)
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(payload))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(payload)))

	tmp, err := os.CreateTemp(dir, tmpPrefix+"*")
	if err != nil {
		return 0, err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(hdr); err != nil {
		tmp.Close()
		return 0, err
	}
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		return 0, err
	}
	if err := tmp.Close(); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		return 0, err
	}
	return int64(diskHeaderSize + len(payload)), nil
}

// readEntry validates the frame and returns the payload. os.ErrNotExist
// passes through (a racing eviction, not corruption); every other
// failure means the entry is damaged.
func readEntry(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < diskHeaderSize {
		return nil, fmt.Errorf("cachestore: entry truncated at %d bytes", len(data))
	}
	if string(data[:4]) != diskMagic {
		return nil, fmt.Errorf("cachestore: bad entry magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != diskFormatVersion {
		return nil, fmt.Errorf("cachestore: entry format version %d, want %d", v, diskFormatVersion)
	}
	wantCRC := binary.LittleEndian.Uint32(data[8:12])
	plen := binary.LittleEndian.Uint64(data[12:20])
	if plen > maxEntryBytes || int64(plen) != int64(len(data)-diskHeaderSize) {
		return nil, fmt.Errorf("cachestore: entry payload length %d disagrees with file size %d", plen, len(data))
	}
	payload := data[diskHeaderSize:]
	if got := crc32.ChecksumIEEE(payload); got != wantCRC {
		return nil, fmt.Errorf("cachestore: entry checksum mismatch: %08x != %08x", got, wantCRC)
	}
	return payload, nil
}
