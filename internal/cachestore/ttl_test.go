package cachestore

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func TestPutTTLExpires(t *testing.T) {
	clk := newFakeClock()
	s, err := Open(Config{Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	s.PutTTL("neg", "compile exploded", time.Minute)

	if v, ok := s.Get("neg"); !ok || v != "compile exploded" {
		t.Fatalf("fresh TTL entry missing: %v %v", v, ok)
	}
	clk.Advance(59 * time.Second)
	if _, ok := s.Get("neg"); !ok {
		t.Fatal("entry expired before its TTL")
	}
	clk.Advance(2 * time.Second)
	if _, ok := s.Get("neg"); ok {
		t.Fatal("entry survived its TTL")
	}
	// The expired slot is really gone, not just hidden.
	st := s.Stats()
	if st.Mem.Entries != 0 || st.Mem.Bytes != 0 {
		t.Errorf("expired entry still resident: %+v", st.Mem)
	}
	// Re-admission starts a fresh TTL.
	s.PutTTL("neg", "again", time.Minute)
	if _, ok := s.Get("neg"); !ok {
		t.Fatal("re-admitted entry missing")
	}
}

func TestPutTTLZeroMeansNoExpiry(t *testing.T) {
	clk := newFakeClock()
	s, err := Open(Config{Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	s.PutTTL("forever", 42, 0)
	clk.Advance(1000 * time.Hour)
	if v, ok := s.Get("forever"); !ok || v != 42 {
		t.Fatalf("TTL-less entry expired: %v %v", v, ok)
	}
}

// Overwriting a TTL'd entry with a plain Put clears the expiry — a
// later real result must not inherit the negative entry's fuse.
func TestPutClearsEarlierTTL(t *testing.T) {
	clk := newFakeClock()
	s, err := Open(Config{Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	s.PutTTL("k", "transient error", time.Second)
	s.Put("k", "real result")
	clk.Advance(time.Hour)
	if v, ok := s.Get("k"); !ok || v != "real result" {
		t.Fatalf("plain Put inherited the TTL: %v %v", v, ok)
	}
}

// TTL'd entries must never reach the disk tier.
func TestPutTTLStaysOffDisk(t *testing.T) {
	clk := newFakeClock()
	s, err := Open(Config{Dir: t.TempDir(), Codec: stringCodec{}, Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	s.PutTTL("neg", "err", time.Minute)
	s.Put("pos", "ok")
	st := s.Stats()
	if st.Disk.Puts != 1 {
		t.Errorf("disk puts = %d, want 1 (the TTL-less entry only)", st.Disk.Puts)
	}
	// After memory expiry there is no disk copy to resurrect it.
	clk.Advance(2 * time.Minute)
	if _, ok := s.Get("neg"); ok {
		t.Error("expired negative entry came back from disk")
	}
}
