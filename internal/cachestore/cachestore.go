// Package cachestore is the two-tier content-addressed result store
// behind the batch engine: a byte-capped in-memory LRU tier in front
// of an optional byte-capped on-disk tier, both keyed by the batch
// content hash (program text + compile options). It is what turns the
// engine's biggest measured win — the content-keyed cache — from a
// per-process accident into a durable resource: a restarted thermflowd
// pointed at the same directory comes back warm (ROADMAP
// "cross-kernel cache persistence"), and neither tier can grow without
// bound (ROADMAP "cache eviction").
//
// Invariants:
//
//   - The memory tier's live bytes never exceed its cap: Put evicts
//     least-recently-used entries first, and a value larger than the
//     whole cap is simply not admitted.
//   - The disk tier is corruption-tolerant: entries are one file each,
//     written to a temporary name and atomically renamed, framed by a
//     versioned header with a payload checksum. A file that is
//     truncated, bit-flipped, from a older format, or unreadable is
//     deleted and reported as a miss — never an error, never a panic.
//   - Store never interprets values: a Codec turns them into bytes and
//     back. Values the codec declines (ErrUnencodable) simply stay
//     memory-only.
//
// A Store is safe for concurrent use. Disk reads and writes happen
// outside the store lock, so slow media stalls only the caller
// touching it.
package cachestore

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Default tier caps and sizing, used when Config leaves them zero.
const (
	// DefaultMaxMemBytes caps the memory tier (256 MiB).
	DefaultMaxMemBytes = 256 << 20
	// DefaultMaxDiskBytes caps the disk tier (1 GiB).
	DefaultMaxDiskBytes = 1 << 30
	// DefaultEntrySize is the per-entry memory charge when Config.SizeOf
	// is nil or returns a non-positive size.
	DefaultEntrySize = 4096
)

// ErrUnencodable is returned by a Codec's Encode for values that have
// no durable form (e.g. cached errors, or results carrying
// process-local identity). The store keeps such values memory-only.
var ErrUnencodable = errors.New("cachestore: value has no durable encoding")

// Codec serializes cache values for the disk tier. Implementations
// must be safe for concurrent use.
type Codec interface {
	// Encode renders v durable, or returns ErrUnencodable to keep it
	// memory-only.
	Encode(v any) ([]byte, error)
	// Decode reverses Encode. A failure is treated as corruption: the
	// entry is deleted and reported as a miss.
	Decode(data []byte) (any, error)
}

// Config parameterizes Open.
type Config struct {
	// MaxMemBytes caps the memory tier's total charged bytes
	// (<= 0 selects DefaultMaxMemBytes).
	MaxMemBytes int64
	// SizeOf charges an entry's memory footprint. Nil (or a
	// non-positive return) charges DefaultEntrySize.
	SizeOf func(v any) int64

	// Dir, when non-empty, enables the disk tier in that directory
	// (created if missing). Entries already present — from a previous
	// process — are indexed at Open, oldest-first.
	Dir string
	// MaxDiskBytes caps the disk tier's total payload bytes
	// (<= 0 selects DefaultMaxDiskBytes).
	MaxDiskBytes int64
	// Codec serializes values for the disk tier; required when Dir is
	// set.
	Codec Codec

	// Clock overrides the time source for entry expiry (nil selects
	// time.Now). Tests inject a fake clock here.
	Clock func() time.Time
}

// TierStats are one tier's counters. Counters are cumulative since
// Open or the last Reset; Entries/Bytes are the current contents.
type TierStats struct {
	// Hits and Misses count Get outcomes against this tier.
	Hits, Misses uint64
	// Puts counts entries admitted; Evictions entries removed to
	// respect the byte cap.
	Puts, Evictions uint64
	// Corrupt counts disk entries dropped for failing validation
	// (bad header, checksum mismatch, undecodable payload).
	Corrupt uint64
	// Entries and Bytes are the tier's current size; CapBytes its cap.
	Entries  int
	Bytes    int64
	CapBytes int64
}

// Stats snapshots both tiers.
type Stats struct {
	Mem, Disk TierStats
	// DiskEnabled reports whether a disk tier is configured.
	DiskEnabled bool
}

// Store is the two-tier result store.
type Store struct {
	sizeOf func(v any) int64
	clock  func() time.Time

	mu       sync.Mutex
	byKey    map[string]*list.Element
	lru      *list.List // front = most recently used
	memBytes int64
	memCap   int64
	mem      TierStats

	disk *diskTier // nil when disabled
}

// memEntry is one memory-tier slot. A non-zero expires makes the entry
// vanish at that instant: an expired slot reads as a miss and is
// removed on contact.
type memEntry struct {
	key     string
	v       any
	size    int64
	expires time.Time
}

// Open builds a Store. With Config.Dir set it scans the directory for
// entries left by previous processes (ignoring anything it cannot
// validate) and enforces the disk cap immediately.
func Open(cfg Config) (*Store, error) {
	s := &Store{
		sizeOf: cfg.SizeOf,
		clock:  cfg.Clock,
		byKey:  make(map[string]*list.Element),
		lru:    list.New(),
		memCap: cfg.MaxMemBytes,
	}
	if s.clock == nil {
		s.clock = time.Now
	}
	if s.memCap <= 0 {
		s.memCap = DefaultMaxMemBytes
	}
	if cfg.Dir != "" {
		if cfg.Codec == nil {
			return nil, fmt.Errorf("cachestore: disk tier %q configured without a codec", cfg.Dir)
		}
		d, err := openDisk(cfg.Dir, cfg.MaxDiskBytes, cfg.Codec)
		if err != nil {
			return nil, err
		}
		s.disk = d
	}
	return s, nil
}

// DiskEnabled reports whether the store has a disk tier.
func (s *Store) DiskEnabled() bool { return s.disk != nil }

// Get returns the value stored under key. It consults the memory tier
// first, then the disk tier; a disk hit is decoded and promoted into
// the memory tier so repeats are cheap.
func (s *Store) Get(key string) (any, bool) {
	s.mu.Lock()
	if el, ok := s.byKey[key]; ok {
		e := el.Value.(*memEntry)
		if e.expires.IsZero() || s.clock().Before(e.expires) {
			s.lru.MoveToFront(el)
			s.mem.Hits++
			v := e.v
			s.mu.Unlock()
			return v, true
		}
		// Expired: the entry no longer exists; remove it on contact.
		s.lru.Remove(el)
		delete(s.byKey, key)
		s.memBytes -= e.size
		s.mem.Evictions++
	}
	s.mem.Misses++
	s.mu.Unlock()

	if s.disk == nil {
		return nil, false
	}
	v, ok := s.disk.get(key)
	if !ok {
		return nil, false
	}
	s.putMem(key, v, time.Time{})
	return v, true
}

// Put stores v under key in the memory tier and, when a disk tier is
// configured and the codec can encode v, durably on disk. Storing is
// best-effort: an entry too large for the memory cap is not admitted,
// and a failed disk write leaves the memory tier authoritative.
func (s *Store) Put(key string, v any) {
	s.putMem(key, v, time.Time{})
	if s.disk != nil {
		s.disk.put(key, v)
	}
}

// PutTTL is Put with an expiry: after ttl the entry reads as absent
// (a negative-cache entry — e.g. a compile error worth suppressing
// briefly, not pinning forever). ttl <= 0 behaves like Put. Expiring
// entries stay memory-only: the disk tier has no expiry semantics, and
// a transient failure must never outlive the process that saw it.
func (s *Store) PutTTL(key string, v any, ttl time.Duration) {
	if ttl <= 0 {
		s.Put(key, v)
		return
	}
	s.putMem(key, v, s.clock().Add(ttl))
}

// putMem admits v into the memory tier, evicting LRU entries to stay
// under the byte cap.
func (s *Store) putMem(key string, v any, expires time.Time) {
	size := int64(0)
	if s.sizeOf != nil {
		size = s.sizeOf(v)
	}
	if size <= 0 {
		size = DefaultEntrySize
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byKey[key]; ok {
		e := el.Value.(*memEntry)
		s.memBytes += size - e.size
		e.v, e.size, e.expires = v, size, expires
		s.lru.MoveToFront(el)
	} else {
		if size > s.memCap {
			return // larger than the whole tier: never admissible
		}
		s.byKey[key] = s.lru.PushFront(&memEntry{key: key, v: v, size: size, expires: expires})
		s.memBytes += size
		s.mem.Puts++
	}
	for s.memBytes > s.memCap {
		el := s.lru.Back()
		if el == nil {
			break
		}
		e := el.Value.(*memEntry)
		s.lru.Remove(el)
		delete(s.byKey, e.key)
		s.memBytes -= e.size
		s.mem.Evictions++
	}
}

// Delete removes the entry for key from both tiers (a no-op when
// absent). Counters other than the current Entries/Bytes are
// unaffected.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	if el, ok := s.byKey[key]; ok {
		e := el.Value.(*memEntry)
		s.lru.Remove(el)
		delete(s.byKey, key)
		s.memBytes -= e.size
	}
	s.mu.Unlock()
	if s.disk != nil {
		s.disk.delete(key)
	}
}

// Reset drops every entry from both tiers and zeroes all counters.
// The first error removing disk entries is returned; the tiers are
// cleared regardless.
func (s *Store) Reset() error {
	s.mu.Lock()
	s.byKey = make(map[string]*list.Element)
	s.lru = list.New()
	s.memBytes = 0
	s.mem = TierStats{}
	s.mu.Unlock()
	if s.disk != nil {
		return s.disk.reset()
	}
	return nil
}

// Stats snapshots both tiers' counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	mem := s.mem
	mem.Entries = s.lru.Len()
	mem.Bytes = s.memBytes
	mem.CapBytes = s.memCap
	s.mu.Unlock()
	out := Stats{Mem: mem}
	if s.disk != nil {
		out.Disk = s.disk.stats()
		out.DiskEnabled = true
	}
	return out
}
