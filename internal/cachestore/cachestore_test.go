package cachestore

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// stringCodec stores string values as their bytes; anything else is
// unencodable (mirrors how the thermflow codec treats cached errors).
type stringCodec struct{}

func (stringCodec) Encode(v any) ([]byte, error) {
	s, ok := v.(string)
	if !ok {
		return nil, ErrUnencodable
	}
	return []byte(s), nil
}

func (stringCodec) Decode(data []byte) (any, error) { return string(data), nil }

// sizeOfTest charges strings by length and anything else a token
// amount — SizeOf must handle every value the runner may store.
func sizeOfTest(v any) int64 {
	if s, ok := v.(string); ok {
		return int64(len(s))
	}
	return 16
}

func memStore(t *testing.T, capBytes int64) *Store {
	t.Helper()
	s, err := Open(Config{
		MaxMemBytes: capBytes,
		SizeOf:      sizeOfTest,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func diskStore(t *testing.T, dir string, memCap, diskCap int64) *Store {
	t.Helper()
	s, err := Open(Config{
		MaxMemBytes:  memCap,
		SizeOf:       sizeOfTest,
		Dir:          dir,
		MaxDiskBytes: diskCap,
		Codec:        stringCodec{},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// The memory tier must never exceed its byte cap, no matter the
// insertion pattern, and must evict least-recently-used first.
func TestMemoryTierNeverExceedsCap(t *testing.T) {
	const cap = 100
	s := memStore(t, cap)
	check := func() {
		t.Helper()
		if b := s.Stats().Mem.Bytes; b > cap {
			t.Fatalf("memory tier at %d bytes, cap %d", b, cap)
		}
	}
	for i := 0; i < 50; i++ {
		s.Put(fmt.Sprintf("k%d", i), strings.Repeat("x", 30))
		check()
	}
	st := s.Stats().Mem
	if st.Entries != 3 { // 3×30 fits in 100, 4×30 does not
		t.Errorf("entries = %d, want 3", st.Entries)
	}
	if st.Evictions != 47 {
		t.Errorf("evictions = %d, want 47", st.Evictions)
	}
	// LRU: the survivors are the three most recent.
	for i := 47; i < 50; i++ {
		if _, ok := s.Get(fmt.Sprintf("k%d", i)); !ok {
			t.Errorf("recent key k%d evicted", i)
		}
	}
	if _, ok := s.Get("k0"); ok {
		t.Error("oldest key survived 47 evictions")
	}
	// A Get refreshes recency: touch the LRU survivor, insert one
	// more, and the untouched one goes instead.
	s.Get("k47")
	s.Put("fresh", strings.Repeat("y", 30))
	check()
	if _, ok := s.Get("k47"); !ok {
		t.Error("recently-touched key was evicted")
	}
	if _, ok := s.Get("k48"); ok {
		t.Error("LRU key survived eviction")
	}
	// An entry larger than the whole cap is never admitted.
	s.Put("huge", strings.Repeat("z", cap+1))
	check()
	if _, ok := s.Get("huge"); ok {
		t.Error("over-cap entry was admitted")
	}
}

func TestUpdateExistingKeyAdjustsBytes(t *testing.T) {
	s := memStore(t, 100)
	s.Put("k", "1234567890")
	s.Put("k", "12345")
	if st := s.Stats().Mem; st.Bytes != 5 || st.Entries != 1 {
		t.Errorf("after shrink: %d bytes / %d entries, want 5 / 1", st.Bytes, st.Entries)
	}
	if v, ok := s.Get("k"); !ok || v != "12345" {
		t.Errorf("updated value = %v, %v", v, ok)
	}
}

// Disk entries must survive into a fresh Store over the same
// directory — the warm-restart property.
func TestDiskTierSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1 := diskStore(t, dir, 1<<20, 1<<20)
	s1.Put("alpha", "the first value")
	s1.Put("beta", "the second value")

	s2 := diskStore(t, dir, 1<<20, 1<<20)
	if st := s2.Stats().Disk; st.Entries != 2 {
		t.Fatalf("reopened disk tier has %d entries, want 2", st.Entries)
	}
	v, ok := s2.Get("alpha")
	if !ok || v != "the first value" {
		t.Fatalf("alpha after reopen = %v, %v", v, ok)
	}
	st := s2.Stats()
	if st.Disk.Hits != 1 || st.Mem.Misses != 1 {
		t.Errorf("stats after disk hit: disk hits %d (want 1), mem misses %d (want 1)",
			st.Disk.Hits, st.Mem.Misses)
	}
	// The disk hit was promoted: a repeat is a memory hit.
	if _, ok := s2.Get("alpha"); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := s2.Stats(); st.Mem.Hits != 1 || st.Disk.Hits != 1 {
		t.Errorf("repeat should hit memory: %+v", st)
	}
}

// A corrupted or truncated entry must degrade into a miss and be
// deleted — never an error, never a panic, never a wrong value.
func TestCorruptDiskEntriesAreDroppedAsMisses(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(path string) error
	}{
		{"bit flip in payload", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			data[len(data)-1] ^= 0xff
			return os.WriteFile(p, data, 0o666)
		}},
		{"truncated mid-payload", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			return os.WriteFile(p, data[:len(data)-3], 0o666)
		}},
		{"truncated inside header", func(p string) error {
			return os.WriteFile(p, []byte("TFCS"), 0o666)
		}},
		{"wrong magic", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			copy(data, "NOPE")
			return os.WriteFile(p, data, 0o666)
		}},
		{"future format version", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			data[4] = 0xfe
			return os.WriteFile(p, data, 0o666)
		}},
		{"lying payload length", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			data[12]++
			return os.WriteFile(p, data, 0o666)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			// Tiny memory tier so the Get must go to disk.
			s := diskStore(t, dir, 1, 1<<20)
			s.Put("victim", "precious bytes")
			path := filepath.Join(dir, entryName("victim"))
			if _, err := os.Stat(path); err != nil {
				t.Fatalf("entry file missing before corruption: %v", err)
			}
			if err := tc.corrupt(path); err != nil {
				t.Fatal(err)
			}
			if v, ok := s.Get("victim"); ok {
				t.Fatalf("corrupted entry served: %v", v)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupted entry file not deleted")
			}
			if st := s.Stats().Disk; st.Corrupt != 1 {
				t.Errorf("corrupt counter = %d, want 1", st.Corrupt)
			}
			// The slot is reusable.
			s.Put("victim", "recomputed")
			if v, ok := s.Get("victim"); !ok || v != "recomputed" {
				t.Errorf("after recompute: %v, %v", v, ok)
			}
		})
	}
}

// Reopening over corrupt files must also shrug them off.
func TestReopenOverCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	s1 := diskStore(t, dir, 1, 1<<20)
	s1.Put("good", "value")
	if err := os.WriteFile(filepath.Join(dir, entryName("bad")), []byte("garbage"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, tmpPrefix+"leftover"), []byte("half"), 0o666); err != nil {
		t.Fatal(err)
	}
	s2 := diskStore(t, dir, 1, 1<<20)
	if v, ok := s2.Get("good"); !ok || v != "value" {
		t.Fatalf("good entry lost: %v, %v", v, ok)
	}
	if v, ok := s2.Get("bad"); ok {
		t.Fatalf("garbage entry served: %v", v)
	}
	if _, err := os.Stat(filepath.Join(dir, tmpPrefix+"leftover")); !os.IsNotExist(err) {
		t.Error("stale tmp file not swept at open")
	}
}

func TestDiskCapEvictsStalest(t *testing.T) {
	dir := t.TempDir()
	// Each entry is diskHeaderSize+40 bytes; cap fits two.
	s := diskStore(t, dir, 1, 2*(diskHeaderSize+40))
	for _, k := range []string{"a", "b", "c"} {
		s.Put(k, strings.Repeat(k, 40))
	}
	st := s.Stats().Disk
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("disk tier: %d entries / %d evictions, want 2 / 1", st.Entries, st.Evictions)
	}
	if st.Bytes > st.CapBytes {
		t.Fatalf("disk tier at %d bytes, cap %d", st.Bytes, st.CapBytes)
	}
	if _, ok := s.Get("a"); ok {
		t.Error("stalest entry survived the cap")
	}
	for _, k := range []string{"b", "c"} {
		if _, ok := s.Get(k); !ok {
			t.Errorf("recent entry %q evicted", k)
		}
	}
}

func TestResetClearsBothTiersAndCounters(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir, 1<<20, 1<<20)
	s.Put("k1", "v1")
	s.Put("k2", "v2")
	s.Get("k1")
	s.Get("nope")
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Mem != (TierStats{CapBytes: st.Mem.CapBytes}) {
		t.Errorf("memory tier not zeroed: %+v", st.Mem)
	}
	if st.Disk != (TierStats{CapBytes: st.Disk.CapBytes}) {
		t.Errorf("disk tier not zeroed: %+v", st.Disk)
	}
	if _, ok := s.Get("k1"); ok {
		t.Error("entry survived reset")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), entrySuffix) {
			t.Errorf("entry file %s survived reset", e.Name())
		}
	}
	// The store keeps working after a reset.
	s.Put("k1", "again")
	if v, ok := s.Get("k1"); !ok || v != "again" {
		t.Errorf("post-reset put/get: %v, %v", v, ok)
	}
}

// Delete removes a single key from both tiers and tolerates absent
// keys (the batch layer uses it to take back a Put that raced a
// reset).
func TestDeleteRemovesFromBothTiers(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir, 1<<20, 1<<20)
	s.Put("k", "value")
	s.Put("other", "kept")
	s.Delete("k")
	s.Delete("never-existed")
	if _, ok := s.Get("k"); ok {
		t.Fatal("deleted key still served")
	}
	if _, err := os.Stat(filepath.Join(dir, entryName("k"))); !os.IsNotExist(err) {
		t.Error("deleted entry file still on disk")
	}
	if v, ok := s.Get("other"); !ok || v != "kept" {
		t.Errorf("unrelated key damaged: %v, %v", v, ok)
	}
	st := s.Stats()
	if st.Mem.Entries != 1 || st.Disk.Entries != 1 {
		t.Errorf("entries after delete = mem %d / disk %d, want 1 / 1", st.Mem.Entries, st.Disk.Entries)
	}
	if st.Mem.Bytes != int64(len("kept")) {
		t.Errorf("memory bytes after delete = %d, want %d", st.Mem.Bytes, len("kept"))
	}
}

// Unencodable values stay memory-only; the disk tier is untouched.
func TestUnencodableValuesStayMemoryOnly(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir, 1<<20, 1<<20)
	s.Put("n", 42) // int: the test codec declines it
	if st := s.Stats(); st.Disk.Entries != 0 || st.Mem.Entries != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if v, ok := s.Get("n"); !ok || v != 42 {
		t.Fatalf("memory-only value: %v, %v", v, ok)
	}
}

// The store must be race-clean under concurrent mixed use (run with
// -race in CI).
func TestConcurrentAccess(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir, 400, 1<<14)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k%d", (g+i)%20)
				if i%10 == 9 && g == 0 {
					_ = s.Reset()
					continue
				}
				if v, ok := s.Get(key); ok {
					if v != "payload-"+key {
						t.Errorf("wrong value for %s: %v", key, v)
					}
					continue
				}
				s.Put(key, "payload-"+key)
			}
		}(g)
	}
	wg.Wait()
	if b := s.Stats().Mem.Bytes; b > 400 {
		t.Errorf("memory tier over cap after concurrent use: %d", b)
	}
}
