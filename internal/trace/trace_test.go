package trace

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestIDShapes(t *testing.T) {
	sc := New()
	if !sc.Valid() {
		t.Fatalf("New() produced invalid context %+v", sc)
	}
	if len(sc.TraceID) != traceIDHexLen || len(sc.SpanID) != spanIDHexLen {
		t.Fatalf("unexpected ID lengths: trace %d, span %d", len(sc.TraceID), len(sc.SpanID))
	}
	child := sc.Child()
	if child.TraceID != sc.TraceID {
		t.Fatalf("Child changed the trace ID")
	}
	if child.SpanID == sc.SpanID {
		t.Fatalf("Child reused the span ID")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	sc := New()
	got, ok := ParseHeader(sc.Header())
	if !ok || got != sc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, sc)
	}
}

func TestParseHeaderRejectsHostileInput(t *testing.T) {
	valid := New().Header()
	bad := []string{
		"",
		"not-a-trace",
		strings.Repeat("z", traceIDHexLen) + "-" + strings.Repeat("0", spanIDHexLen), // non-hex
		strings.ToUpper(valid), // uppercase hex
		valid + "x",            // trailing junk
		valid[:len(valid)-1],   // truncated
		strings.Replace(valid, "-", "_", 1),
		"<script>alert(1)</script>-0000000000000000",
		strings.Repeat("0", traceIDHexLen) + "\x00" + strings.Repeat("0", spanIDHexLen),
	}
	for _, h := range bad {
		if sc, ok := ParseHeader(h); ok {
			t.Errorf("ParseHeader(%q) accepted hostile input as %+v", h, sc)
		}
	}
}

func TestRecorderRecordsAndCopies(t *testing.T) {
	r := NewRecorder("testsvc", 0, 0)
	sc := New()
	start := time.Unix(100, 0)
	r.Record("job1", Span{
		TraceID: sc.TraceID, SpanID: sc.SpanID, Name: "job.queued",
		Start: start, Duration: time.Second,
	})
	tl, ok := r.Timeline("job1")
	if !ok {
		t.Fatalf("timeline missing after Record")
	}
	if tl.TraceID != sc.TraceID {
		t.Fatalf("timeline trace ID = %q, want %q", tl.TraceID, sc.TraceID)
	}
	if len(tl.Spans) != 1 || tl.Spans[0].Service != "testsvc" {
		t.Fatalf("spans = %+v, want one span with Service stamped", tl.Spans)
	}
	// The returned slice is a copy: mutating it must not leak back.
	tl.Spans[0].Name = "mutated"
	again, _ := r.Timeline("job1")
	if again.Spans[0].Name != "job.queued" {
		t.Fatalf("Timeline returned a shared slice")
	}
}

func TestRecorderBoundsSpansPerTimeline(t *testing.T) {
	r := NewRecorder("svc", 4, 3)
	sc := New()
	for i := 0; i < 5; i++ {
		r.Record("job", Span{TraceID: sc.TraceID, SpanID: NewSpanID(), Name: "s"})
	}
	tl, _ := r.Timeline("job")
	if len(tl.Spans) != 3 || tl.Dropped != 2 {
		t.Fatalf("got %d spans, %d dropped; want 3 and 2", len(tl.Spans), tl.Dropped)
	}
}

func TestRecorderEvictsOldestTimeline(t *testing.T) {
	r := NewRecorder("svc", 2, 8)
	sc := New()
	for i := 0; i < 3; i++ {
		r.Record(fmt.Sprintf("job%d", i), Span{TraceID: sc.TraceID, SpanID: NewSpanID(), Name: "s"})
	}
	if _, ok := r.Timeline("job0"); ok {
		t.Fatalf("oldest timeline survived past the bound")
	}
	for _, key := range []string{"job1", "job2"} {
		if _, ok := r.Timeline(key); !ok {
			t.Fatalf("timeline %s evicted too eagerly", key)
		}
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record("k", Span{Name: "s"}) // must not panic
	if _, ok := r.Timeline("k"); ok {
		t.Fatalf("nil recorder returned a timeline")
	}
	if r.Len() != 0 || r.Service() != "" {
		t.Fatalf("nil recorder not inert")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder("svc", 16, 32)
	sc := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("job%d", i%20)
				r.Record(key, Span{TraceID: sc.TraceID, SpanID: NewSpanID(), Name: "s"})
				r.Timeline(key)
			}
		}()
	}
	wg.Wait()
}
