// Package trace is thermflow's dependency-free distributed tracing
// plane: trace/span identities, phase-tagged spans with parent links,
// and a bounded in-memory recorder of per-job timelines. It answers
// the question the metrics plane cannot — "why was THIS job slow" —
// by tying together the hops one job takes across the gateway, its
// owning backend and (for region jobs) every backend that stepped a
// region, under one trace ID.
//
// Identity travels on the wire in the X-Thermflow-Trace header
// (server.TraceHeader) as "traceID-spanID" — a traceparent-style pair
// of lowercase hex strings. Parsing is strict: anything that is not
// exactly 32+16 lowercase hex characters is discarded and replaced
// with a fresh identity, the same hostile-input stance the request-ID
// middleware takes (sanitize, never echo).
//
// Retention is bounded twice over: the recorder keeps at most
// DefaultMaxTimelines job timelines (LRU-evicted) of at most
// DefaultMaxSpans spans each (excess spans are counted, not stored).
// Timelines are in-memory only — they do not ride the job WAL — so a
// restart forgets them; the structured access logs, which carry the
// same trace IDs, are the durable record.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Wire sizes: 16-byte trace IDs, 8-byte span IDs, hex-encoded.
const (
	traceIDHexLen = 32
	spanIDHexLen  = 16
)

// Recorder retention defaults.
const (
	DefaultMaxTimelines = 512
	DefaultMaxSpans     = 256
)

// NewTraceID returns a fresh 32-hex-char trace ID ("" only if the
// system's entropy source fails, which renders the context invalid and
// disables tracing for that request rather than tracing under a
// guessable identity).
func NewTraceID() string { return randHex(traceIDHexLen / 2) }

// NewSpanID returns a fresh 16-hex-char span ID.
func NewSpanID() string { return randHex(spanIDHexLen / 2) }

func randHex(n int) string {
	buf := make([]byte, n)
	if _, err := rand.Read(buf); err != nil {
		return ""
	}
	return hex.EncodeToString(buf)
}

// SpanContext is the propagated identity: which trace a request
// belongs to and which span is the current parent.
type SpanContext struct {
	TraceID string
	SpanID  string
}

// New mints a fresh root context: new trace, new span.
func New() SpanContext {
	return SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
}

// Valid reports whether both IDs have the exact wire shape.
func (c SpanContext) Valid() bool {
	return isHex(c.TraceID, traceIDHexLen) && isHex(c.SpanID, spanIDHexLen)
}

// Header renders the wire form, "traceID-spanID".
func (c SpanContext) Header() string { return c.TraceID + "-" + c.SpanID }

// Child keeps the trace and mints a fresh span under it.
func (c SpanContext) Child() SpanContext {
	return SpanContext{TraceID: c.TraceID, SpanID: NewSpanID()}
}

// ParseHeader decodes a wire header. It is a sanitizer, not just a
// parser: the only accepted shape is exactly 32 lowercase hex chars,
// a dash, and 16 lowercase hex chars. Anything else — wrong lengths,
// uppercase, control bytes, injection attempts — reports false, and
// callers mint a fresh identity instead of echoing hostile input.
func ParseHeader(h string) (SpanContext, bool) {
	if len(h) != traceIDHexLen+1+spanIDHexLen || h[traceIDHexLen] != '-' {
		return SpanContext{}, false
	}
	c := SpanContext{TraceID: h[:traceIDHexLen], SpanID: h[traceIDHexLen+1:]}
	if !c.Valid() {
		return SpanContext{}, false
	}
	return c, true
}

// isHex reports whether s is exactly n lowercase hex characters.
func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < n; i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ctxKey scopes this package's context value.
type ctxKey struct{}

// NewContext attaches a span context to ctx; handlers and proxies
// downstream read it with FromContext to parent their own spans and
// to stamp the outbound wire header.
func NewContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext returns the context's span context (invalid zero value
// outside a traced request).
func FromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}

// Span is one timed, named phase of a job's life: a server request, a
// queue wait, a solver run, a region round. Parent links spans into a
// tree; Attrs carry small phase-specific facts (region index, sweep
// count, cache outcome). Spans are immutable once recorded.
type Span struct {
	TraceID  string            `json:"trace_id"`
	SpanID   string            `json:"span_id"`
	Parent   string            `json:"parent_id,omitempty"`
	Name     string            `json:"name"`
	Service  string            `json:"service,omitempty"`
	Start    time.Time         `json:"-"`
	Duration time.Duration     `json:"-"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// Timeline is one job's recorded spans in arrival order, plus how many
// were dropped at the per-timeline bound.
type Timeline struct {
	Key     string
	TraceID string
	Spans   []Span
	Dropped int
}

// Recorder stores bounded per-key (per-job) timelines. All methods are
// nil-safe — an untraced deployment passes nil and pays one check —
// and safe for concurrent use.
type Recorder struct {
	service      string
	maxTimelines int
	maxSpans     int

	mu        sync.Mutex
	timelines map[string]*Timeline
	order     []string // LRU, oldest first
}

// NewRecorder builds a recorder whose spans default their Service to
// service. maxTimelines/maxSpans <= 0 select the defaults.
func NewRecorder(service string, maxTimelines, maxSpans int) *Recorder {
	if maxTimelines <= 0 {
		maxTimelines = DefaultMaxTimelines
	}
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	return &Recorder{
		service: service, maxTimelines: maxTimelines, maxSpans: maxSpans,
		timelines: make(map[string]*Timeline),
	}
}

// Service names the recording process ("" on a nil recorder).
func (r *Recorder) Service() string {
	if r == nil {
		return ""
	}
	return r.service
}

// Record appends spans to key's timeline, creating it (and LRU-
// evicting the oldest timeline at the bound) on first touch. Spans
// beyond the per-timeline cap are dropped and counted — a long exact-
// mode region job keeps its earliest rounds and an honest drop count
// rather than growing without bound. Spans with an empty Service are
// stamped with the recorder's.
func (r *Recorder) Record(key string, spans ...Span) {
	if r == nil || key == "" || len(spans) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	tl, ok := r.timelines[key]
	if !ok {
		for len(r.timelines) >= r.maxTimelines && len(r.order) > 0 {
			victim := r.order[0]
			r.order = r.order[1:]
			delete(r.timelines, victim)
		}
		tl = &Timeline{Key: key}
		r.timelines[key] = tl
		r.order = append(r.order, key)
	} else {
		r.touchLocked(key)
	}
	for _, sp := range spans {
		if sp.Service == "" {
			sp.Service = r.service
		}
		if tl.TraceID == "" {
			tl.TraceID = sp.TraceID
		}
		if len(tl.Spans) >= r.maxSpans {
			tl.Dropped++
			continue
		}
		tl.Spans = append(tl.Spans, sp)
	}
}

// touchLocked moves key to the back of the eviction order.
func (r *Recorder) touchLocked(key string) {
	for i, k := range r.order {
		if k == key {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	r.order = append(r.order, key)
}

// Timeline returns a copy of key's timeline, reporting whether one is
// recorded. The copy's span slice is fresh; callers may sort it.
func (r *Recorder) Timeline(key string) (Timeline, bool) {
	if r == nil {
		return Timeline{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	tl, ok := r.timelines[key]
	if !ok {
		return Timeline{}, false
	}
	out := Timeline{Key: tl.Key, TraceID: tl.TraceID, Dropped: tl.Dropped}
	out.Spans = append([]Span(nil), tl.Spans...)
	return out, true
}

// Len reports how many timelines are currently retained.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.timelines)
}
