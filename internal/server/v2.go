package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"

	"thermflow/api"
	"thermflow/internal/jobs"
	"thermflow/internal/tenant"
)

// This file is the v2 job-oriented surface: the asynchronous lifecycle
// over the internal/jobs registry. Submitting returns a handle
// immediately; the handle's ID is the canonical content hash, so
// polling, result-store entries and a future sharding front server all
// speak the same identity.

// Long-poll bounds for GET /v2/jobs/{id}/wait.
const (
	// DefaultWaitTimeout applies when ?timeout_ms is absent.
	DefaultWaitTimeout = 30 * time.Second
	// MaxWaitTimeout caps client-requested long-poll windows.
	MaxWaitTimeout = 5 * time.Minute
)

// jobStatus converts a registry snapshot to its wire form.
func jobStatus(snap jobs.Snapshot) api.JobStatus {
	st := api.JobStatus{
		ID:          snap.ID,
		State:       string(snap.State),
		Cached:      snap.Cached,
		Priority:    snap.Priority,
		SubmittedMS: unixMS(snap.Submitted),
		StartedMS:   unixMS(snap.Started),
		FinishedMS:  unixMS(snap.Finished),
		DeadlineMS:  unixMS(snap.Deadline),
	}
	if snap.Err != nil {
		_, st.Error = classify(snap.Err)
	}
	if snap.State == jobs.StateDone && snap.Compiled != nil {
		st.Result = api.ResponseFor(snap.Compiled, snap.Cached)
	}
	return st
}

func unixMS(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixMilli()
}

// statusCode picks the HTTP status for a job snapshot: an expired job
// answers 504 — the job-level analogue of a gateway timeout — with its
// JobStatus as the body; every other known state is 200.
func statusCode(snap jobs.Snapshot) int {
	if snap.State == jobs.StateExpired {
		return http.StatusGatewayTimeout
	}
	return http.StatusOK
}

// handleJobSubmit is POST /v2/jobs: canonicalize, register, return the
// handle without waiting. A spec already registered answers 200 with
// the existing job — duplicate submits converge by content identity.
//
// Under WithQuotas the request carries a tenant profile: the tenant's
// class folds into the scheduler priority (class dominates, the
// client's priority field breaks ties within it) and the profile's
// queue/run caps ride into registry admission. Rejections attribute
// blame — 429 when the tenant is over its own queue quota, 503 with
// Retry-After when the shared pool shed the work or is at capacity.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req api.JobRequest
	if !decode(w, r, &req) {
		return
	}
	spec, err := ResolveSpec(req)
	if err != nil {
		WriteErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	var lim jobs.Limits
	if p := TenantProfile(r); p != nil {
		spec.Priority = tenant.EffectivePriority(p.Class, req.Priority)
		lim = jobs.Limits{
			Owner: p.Name, Class: string(p.Class),
			MaxQueued: p.MaxQueue, MaxRunning: p.MaxConcurrent,
		}
	}
	snap, created, err := s.jobs.SubmitTraced(spec, lim, TraceContext(r))
	if err != nil {
		switch {
		case errors.Is(err, jobs.ErrQuota):
			s.metrics.IncAdmission(lim.Class, "tenant_queue")
			w.Header().Set("Retry-After", "1")
			WriteErr(w, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, jobs.ErrShed):
			s.metrics.IncAdmission(lim.Class, "shed")
			w.Header().Set("Retry-After", "2")
			WriteErr(w, http.StatusServiceUnavailable, "%v", err)
		case errors.Is(err, jobs.ErrBusy):
			s.metrics.IncAdmission(lim.Class, "busy")
			w.Header().Set("Retry-After", "1")
			WriteErr(w, http.StatusServiceUnavailable, "%v", err)
		default:
			WriteErr(w, http.StatusUnprocessableEntity, "%v", err)
		}
		return
	}
	decision := "converged"
	status := http.StatusOK
	if created {
		decision = "admitted"
		status = http.StatusAccepted
	}
	s.metrics.IncAdmission(lim.Class, decision)
	AnnotateJob(r, snap.ID)
	WriteJSON(w, status, jobStatus(snap))
}

// handleJobGet is GET /v2/jobs/{id}: one snapshot, no waiting. An ID
// this registry never saw may still be answerable from the replica
// shelf — a terminal status pushed here because this backend succeeds
// the job's owner on the ring.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, err := s.jobs.Get(id)
	if err != nil {
		if s.serveReplica(w, id) {
			return
		}
		WriteErr(w, http.StatusNotFound, "%v", err)
		return
	}
	WriteJSON(w, statusCode(snap), jobStatus(snap))
}

// serveReplica answers id from the replica shelf if it is there,
// reporting whether it did. Shelved statuses are terminal by
// construction, so the stored bytes are served verbatim with the same
// status mapping as a local snapshot (expired → 504) plus the
// ReplicaHeader marker.
func (s *Server) serveReplica(w http.ResponseWriter, id string) bool {
	body, state, ok := s.replicas.Get(id)
	if !ok {
		return false
	}
	code := http.StatusOK
	if state == string(jobs.StateExpired) {
		code = http.StatusGatewayTimeout
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(ReplicaHeader, "1")
	w.WriteHeader(code)
	_, _ = w.Write(body)
	return true
}

// handleReplicaPut is PUT /v2/jobs/{id}/replica: a ring peer (via the
// gateway) shelving a terminal status on this backend. The body must
// be the job's JobStatus document; it is stored verbatim.
func (s *Server) handleReplicaPut(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxBodyBytes))
	if err != nil {
		WriteErr(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var st api.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		WriteErr(w, http.StatusBadRequest, "invalid JobStatus body: %v", err)
		return
	}
	if st.ID != id {
		WriteErr(w, http.StatusUnprocessableEntity,
			"body job ID %q does not match path ID %q", st.ID, id)
		return
	}
	if !jobs.State(st.State).Terminal() {
		WriteErr(w, http.StatusUnprocessableEntity,
			"replicated state %q is not terminal", st.State)
		return
	}
	s.replicas.Put(id, st.State, body)
	w.WriteHeader(http.StatusNoContent)
}

// handleJobWait is GET /v2/jobs/{id}/wait: long-poll until the job
// turns terminal or the window (?timeout_ms, capped) elapses; either
// way the response is the then-current status — clients loop on the
// state field.
func (s *Server) handleJobWait(w http.ResponseWriter, r *http.Request) {
	timeout := DefaultWaitTimeout
	if raw := r.URL.Query().Get("timeout_ms"); raw != "" {
		ms, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || ms < 0 {
			WriteErr(w, http.StatusUnprocessableEntity, "invalid timeout_ms %q", raw)
			return
		}
		timeout = time.Duration(ms) * time.Millisecond
		if timeout > MaxWaitTimeout {
			timeout = MaxWaitTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	snap, err := s.jobs.Wait(ctx, r.PathValue("id"))
	if errors.Is(err, jobs.ErrNotFound) {
		// A shelved replica is already terminal: nothing to wait for.
		if s.serveReplica(w, r.PathValue("id")) {
			return
		}
		WriteErr(w, http.StatusNotFound, "%v", err)
		return
	}
	if r.Context().Err() != nil {
		return // client gone; nothing to write to
	}
	WriteJSON(w, statusCode(snap), jobStatus(snap))
}

// handleJobsBatch is POST /v2/batch: the streaming NDJSON shape of v1,
// item-keyed by job ID — the form a sharding front server can fan out
// and re-merge, since IDs are stable across backends.
func (s *Server) handleJobsBatch(w http.ResponseWriter, r *http.Request) {
	var req api.JobsBatchRequest
	if !decode(w, r, &req) {
		return
	}
	specs, ok := resolveBatch(w, req.Jobs)
	if !ok {
		return
	}
	emit := ndjsonEmitter(w, func(i int, snap jobs.Snapshot) any {
		item := api.JobItem{Index: i, ID: snap.ID}
		if snap.Err != nil {
			_, item.Error = classify(snap.Err)
		} else {
			item.Result = api.ResponseFor(snap.Compiled, snap.Cached)
		}
		return item
	})
	_, _ = s.jobs.Stream(r.Context(), specs, emit) // specs pre-validated
}
