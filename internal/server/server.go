// Package server implements thermflowd's HTTP/JSON API over a shared
// compile engine. Since the v2 redesign the unit of work is the job:
// every request — v1 or v2 — is canonicalized into a thermflow.JobSpec
// whose content hash is the job ID, the engine cache key and the
// disk-tier entry name at once, and execution flows through the
// internal/jobs registry. The v1 endpoints are thin synchronous
// adapters over that layer (submit, wait inline, translate); the v2
// endpoints expose it directly: submit returns a handle immediately,
// status is polled or long-polled, and duplicate submissions of the
// same content converge on one job.
//
// Cross-cutting concerns — bearer-token auth, per-client rate
// limiting, request IDs, access logs, body and deadline caps — live in
// the composable middleware stack (middleware.go), wired around the
// handler by cmd/thermflowd.
//
// Wire types live in the thermflow/api package. Status mapping:
//
//	400 malformed JSON or unreadable body
//	401 missing/invalid bearer token (with -auth-token-file)
//	404 unknown route or job ID
//	422 well-formed but unsatisfiable: unknown enum or kernel name,
//	    IR parse/verify failure, allocation spill-budget exhaustion
//	429 per-client rate limit exceeded (with -rate-limit)
//	500 internal fault (a compile panic, isolated to the one job)
//	503 job registry at capacity with live jobs
//	504 job deadline expired (the body carries its JobStatus)
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"thermflow"
	"thermflow/api"
	"thermflow/internal/batch"
	"thermflow/internal/jobs"
	"thermflow/internal/trace"
)

// MaxBodyBytes caps request bodies; programs are small (the largest
// built-in kernel is well under a kilobyte of IR text).
const MaxBodyBytes = 8 << 20

// MaxBatchJobs caps the jobs of one batch request.
const MaxBatchJobs = 10000

// Config parameterizes NewConfig.
type Config struct {
	// Jobs configures the v2 job registry (retention, concurrency,
	// deadline clock).
	Jobs jobs.Config

	// Replicas is the shelf for job statuses replicated from ring
	// peers (nil selects a volatile in-memory shelf). A gateway pushes
	// terminal statuses here so this backend can answer for a dead
	// owner; see replica.go.
	Replicas *ReplicaStore

	// Metrics, when non-nil, mounts GET /metrics and instruments the
	// engine and job registry into it (see metrics.go). The HTTP
	// request series additionally require WithMetrics in the
	// middleware chain, which the daemons wire.
	Metrics *Metrics

	// Trace is the recorder behind GET /v2/jobs/{id}/trace; the job
	// registry records lifecycle spans into it and region solves record
	// their steps (nil builds a private recorder — pass the daemon's so
	// WithTracing shares it). Overrides Jobs.Trace.
	Trace *trace.Recorder
}

// Server is the thermflowd HTTP handler.
type Server struct {
	batch    *thermflow.Batch
	jobs     *jobs.Registry
	replicas *ReplicaStore
	regions  *regionStore
	metrics  *Metrics        // nil when unmetered
	trace    *trace.Recorder // never nil; bounded in-memory timelines
	mux      *http.ServeMux
}

// New builds the handler over the given compile engine with default
// job-registry settings.
func New(b *thermflow.Batch) *Server { return NewConfig(b, Config{}) }

// NewConfig builds the handler over the given compile engine.
func NewConfig(b *thermflow.Batch, cfg Config) *Server {
	replicas := cfg.Replicas
	if replicas == nil {
		replicas = NewReplicaStore(0, nil, nil)
	}
	if cfg.Trace == nil {
		cfg.Trace = trace.NewRecorder("thermflowd", 0, 0)
	}
	cfg.Jobs.Trace = cfg.Trace
	s := &Server{batch: b, jobs: jobs.New(b, cfg.Jobs), replicas: replicas,
		regions: newRegionStore(0), metrics: cfg.Metrics, trace: cfg.Trace,
		mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/compile", s.handleCompile)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/kernels", s.handleKernels)
	s.mux.HandleFunc("GET /v1/cache", s.handleCacheGet)
	s.mux.HandleFunc("DELETE /v1/cache", s.handleCacheReset)
	s.mux.HandleFunc("POST /v2/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v2/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v2/jobs/{id}/wait", s.handleJobWait)
	s.mux.HandleFunc("GET /v2/jobs/{id}/trace", s.handleJobTrace)
	s.mux.HandleFunc("PUT /v2/jobs/{id}/replica", s.handleReplicaPut)
	s.mux.HandleFunc("POST /v2/batch", s.handleJobsBatch)
	s.mux.HandleFunc("POST /v2/regions/solve", s.handleRegionSolve)
	s.mux.HandleFunc("POST /v2/regions/collect", s.handleRegionCollect)
	s.mux.HandleFunc("GET /v2/stats", s.handleStats)
	if cfg.Metrics != nil {
		cfg.Metrics.InstrumentEngine(b, s.jobs)
		s.mux.Handle("GET /metrics", cfg.Metrics.Handler())
	}
	return s
}

// Batch returns the underlying compile engine.
func (s *Server) Batch() *thermflow.Batch { return s.batch }

// Jobs returns the job registry.
func (s *Server) Jobs() *jobs.Registry { return s.jobs }

// Replicas returns the replica shelf.
func (s *Server) Replicas() *ReplicaStore { return s.replicas }

// Trace returns the server's timeline recorder (never nil), so the
// daemon can share it with the WithTracing middleware.
func (s *Server) Trace() *trace.Recorder { return s.trace }

// Close releases the job registry (running jobs are cancelled).
func (s *Server) Close() { s.jobs.Close() }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// WriteJSON writes v with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client is gone if this fails
}

// WriteErr writes an api.ErrorResponse with the given status.
func WriteErr(w http.ResponseWriter, status int, format string, args ...any) {
	WriteJSON(w, status, api.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// decode reads one JSON value from the request body, distinguishing
// malformed JSON (400) from well-formed JSON that names unknown enums
// (422). The boolean reports success; on failure the response has been
// written.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	dec := json.NewDecoder(body)
	if err := dec.Decode(v); err != nil {
		var unknown *thermflow.UnknownNameError
		if errors.As(err, &unknown) {
			WriteErr(w, http.StatusUnprocessableEntity, "%v", unknown)
		} else {
			WriteErr(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		}
		return false
	}
	return true
}

// ResolveSpec canonicalizes a wire job request into a JobSpec — the
// single point where kernel references and textual IR collapse onto
// content identity. Failures are semantic (422): the JSON was
// well-formed but names an unknown kernel or carries unparseable IR.
func ResolveSpec(req api.JobRequest) (thermflow.JobSpec, error) {
	var spec thermflow.JobSpec
	var err error
	switch {
	case req.Kernel != "" && req.Program != "":
		return spec, fmt.Errorf("exactly one of kernel or program must be set, got both")
	case req.Kernel != "":
		spec, err = thermflow.JobSpecFromKernel(req.Kernel, req.Options)
	case req.Program != "":
		spec, err = thermflow.JobSpecFromSource(req.Program, req.Root, req.Options)
	default:
		return spec, fmt.Errorf("exactly one of kernel or program must be set, got neither")
	}
	if err != nil {
		return spec, err
	}
	if req.DeadlineMS < 0 {
		return spec, fmt.Errorf("deadline_ms must be non-negative, got %d", req.DeadlineMS)
	}
	spec.Deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	spec.Priority = req.Priority
	return spec, nil
}

// classify maps a compile failure to its HTTP status and client-safe
// message: panics are internal faults — logged server-side with their
// stack, but never shipped to the client — while everything else
// (spill-budget exhaustion, impossible option combinations) is a
// property of the request and travels verbatim.
func classify(err error) (int, string) {
	var pe *batch.PanicError
	if errors.As(err, &pe) {
		log.Printf("server: compile panic: %v", pe)
		return http.StatusInternalServerError, "internal error: compile panicked (isolated to this job)"
	}
	return http.StatusUnprocessableEntity, err.Error()
}

// handleCompile is the v1 synchronous endpoint, an adapter over the
// job layer: canonicalize, run request-scoped, translate the terminal
// snapshot back into the v1 wire shape.
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req api.CompileRequest
	if !decode(w, r, &req) {
		return
	}
	spec, err := ResolveSpec(api.JobRequest{
		Kernel: req.Kernel, Program: req.Program, Root: req.Root, Options: req.Options,
	})
	if err != nil {
		WriteErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	snap, err := s.jobs.Do(r.Context(), spec)
	if err != nil {
		// Do's error is either the request context's (server-side
		// timeout, or the client hanging up while sharing a registered
		// job) or a spec-level failure. A context error is not a 422 —
		// the request was fine; time ran out.
		if r.Context().Err() != nil {
			if errors.Is(r.Context().Err(), context.DeadlineExceeded) {
				WriteErr(w, http.StatusGatewayTimeout, "request deadline exceeded")
			}
			return // cancelled: the client is gone
		}
		WriteErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if snap.Err != nil {
		if r.Context().Err() != nil {
			return // client gone; nothing to write to
		}
		status, msg := classify(snap.Err)
		WriteErr(w, status, "%s", msg)
		return
	}
	WriteJSON(w, http.StatusOK, api.ResponseFor(snap.Compiled, snap.Cached))
}

// resolveBatch canonicalizes a batch's worth of requests before the
// first byte of any stream: semantic errors must surface as a 422,
// which is impossible once the 200 header and NDJSON body have
// started. The boolean reports success; on failure the response has
// been written.
func resolveBatch(w http.ResponseWriter, reqs []api.JobRequest) ([]thermflow.JobSpec, bool) {
	if len(reqs) == 0 {
		WriteErr(w, http.StatusUnprocessableEntity, "batch has no jobs")
		return nil, false
	}
	if len(reqs) > MaxBatchJobs {
		WriteErr(w, http.StatusUnprocessableEntity,
			"batch has %d jobs, limit %d", len(reqs), MaxBatchJobs)
		return nil, false
	}
	specs := make([]thermflow.JobSpec, len(reqs))
	for i, jr := range reqs {
		spec, err := ResolveSpec(jr)
		if err != nil {
			WriteErr(w, http.StatusUnprocessableEntity, "job %d: %v", i, err)
			return nil, false
		}
		specs[i] = spec
	}
	return specs, true
}

// ndjsonEmitter serializes batch snapshots onto an NDJSON stream. The
// mutex orders concurrent engine workers; a write failure means the
// client disconnected — the request context is cancelled and the
// stream just drains.
func ndjsonEmitter(w http.ResponseWriter, item func(int, jobs.Snapshot) any) func(int, jobs.Snapshot) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	var mu sync.Mutex
	enc := json.NewEncoder(w)
	return func(i int, snap jobs.Snapshot) {
		v := item(i, snap)
		mu.Lock()
		defer mu.Unlock()
		_ = enc.Encode(v)
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleBatch is the v1 streaming endpoint, an adapter over the job
// layer's Stream: items are keyed by index only, as v1 clients expect.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req api.BatchRequest
	if !decode(w, r, &req) {
		return
	}
	jreqs := make([]api.JobRequest, len(req.Jobs))
	for i, jr := range req.Jobs {
		jreqs[i] = api.JobRequest{Kernel: jr.Kernel, Program: jr.Program, Root: jr.Root, Options: jr.Options}
	}
	specs, ok := resolveBatch(w, jreqs)
	if !ok {
		return
	}
	emit := ndjsonEmitter(w, func(i int, snap jobs.Snapshot) any {
		item := api.BatchItem{Index: i}
		if snap.Err != nil {
			_, item.Error = classify(snap.Err)
		} else {
			item.Result = api.ResponseFor(snap.Compiled, snap.Cached)
		}
		return item
	})
	_, _ = s.jobs.Stream(r.Context(), specs, emit) // specs pre-validated
}

func (s *Server) handleKernels(w http.ResponseWriter, r *http.Request) {
	list, err := api.KernelList()
	if err != nil {
		WriteErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	WriteJSON(w, http.StatusOK, list)
}

func (s *Server) cacheStats() api.CacheStats {
	st := s.batch.Stats()
	return api.CacheStats{
		Hits: st.Hits, Misses: st.Misses, Panics: st.Panics,
		Workers:     s.batch.Workers(),
		Memory:      tierStats(st.Memory),
		Disk:        tierStats(st.Disk),
		DiskEnabled: st.DiskEnabled,
	}
}

func tierStats(t thermflow.CacheTierStats) api.TierStats {
	return api.TierStats{
		Hits: t.Hits, Misses: t.Misses, Puts: t.Puts,
		Evictions: t.Evictions, Corrupt: t.Corrupt,
		Entries: t.Entries, Bytes: t.Bytes, CapBytes: t.CapBytes,
	}
}

func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	WriteJSON(w, http.StatusOK, s.cacheStats())
}

// handleStats is GET /v2/stats: one cheap snapshot of the job registry
// and the result store — the status hook a fronting gateway polls for
// health and capacity, and what operators curl first.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	js := s.jobs.Stats()
	WriteJSON(w, http.StatusOK, api.StatsResponse{
		Jobs: api.JobsStats{
			Queued: js.Queued, Running: js.Running, Terminal: js.Terminal,
			Capacity: js.Capacity, Concurrency: js.Concurrency,
			MaxQueue: js.MaxQueue, Watermark: js.Watermark, Shed: js.Shed,
		},
		Cache: s.cacheStats(),
	})
}

func (s *Server) handleCacheReset(w http.ResponseWriter, r *http.Request) {
	// Resetting the result store invalidates results, not job
	// identity: queued and running v2 jobs keep their registry entries
	// and recompute (regression-tested at the jobs layer).
	if err := s.batch.ResetCache(); err != nil {
		// The cache is cleared even on error; failing to delete a disk
		// entry is an internal fault worth surfacing, since the caller
		// asked for durable state to go away.
		WriteErr(w, http.StatusInternalServerError, "resetting cache: %v", err)
		return
	}
	WriteJSON(w, http.StatusOK, s.cacheStats())
}
