// Package server implements thermflowd's HTTP/JSON API over a shared
// thermflow.Batch: a long-lived compile service whose content-keyed
// result cache is shared by every client and request, so repeated
// configurations — the common shape of policy/floorplan/technology
// sweeps — are compiled once per server lifetime instead of once per
// process (ROADMAP "result serving").
//
// The handler is stateless beyond the Batch; concurrent requests are
// safe because Batch serializes cache access and deduplicates
// identical in-flight jobs (single-flight). Each request's context is
// propagated into Batch.Compile, so a disconnecting client cancels
// its queued jobs without affecting other requests.
//
// Wire types live in the thermflow/api package. Status mapping:
//
//	400 malformed JSON or unreadable body
//	404 unknown route
//	422 well-formed but unsatisfiable: unknown enum or kernel name,
//	    IR parse/verify failure, allocation spill-budget exhaustion
//	500 internal fault (a compile panic, isolated to the one job)
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync"

	"thermflow"
	"thermflow/api"
	"thermflow/internal/batch"
)

// MaxBodyBytes caps request bodies; programs are small (the largest
// built-in kernel is well under a kilobyte of IR text).
const MaxBodyBytes = 8 << 20

// MaxBatchJobs caps the jobs of one batch request.
const MaxBatchJobs = 10000

// Server is the thermflowd HTTP handler.
type Server struct {
	batch *thermflow.Batch
	mux   *http.ServeMux

	// kernels canonicalizes built-in kernels to one *Program per name.
	// Kernel programs carry Setup/Expect hooks, which make the batch
	// cache key include the Program's identity (func values cannot be
	// content-hashed); without canonicalization every request would
	// resolve a fresh *Program and no two requests would ever share a
	// cache entry. Compiles never mutate the shared function (the
	// allocator clones before rewriting), so sharing is safe.
	kmu     sync.Mutex
	kernels map[string]*thermflow.Program
}

// New builds the handler over the given compile engine.
func New(b *thermflow.Batch) *Server {
	s := &Server{batch: b, mux: http.NewServeMux(), kernels: make(map[string]*thermflow.Program)}
	s.mux.HandleFunc("POST /v1/compile", s.handleCompile)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("GET /v1/kernels", s.handleKernels)
	s.mux.HandleFunc("GET /v1/cache", s.handleCacheGet)
	s.mux.HandleFunc("DELETE /v1/cache", s.handleCacheReset)
	return s
}

// Batch returns the underlying compile engine.
func (s *Server) Batch() *thermflow.Batch { return s.batch }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client is gone if this fails
}

// writeErr writes an api.ErrorResponse with the given status.
func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, api.ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// decode reads one JSON value from the request body, distinguishing
// malformed JSON (400) from well-formed JSON that names unknown enums
// (422). The boolean reports success; on failure the response has been
// written.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	dec := json.NewDecoder(body)
	if err := dec.Decode(v); err != nil {
		var unknown *thermflow.UnknownNameError
		if errors.As(err, &unknown) {
			writeErr(w, http.StatusUnprocessableEntity, "%v", unknown)
		} else {
			writeErr(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		}
		return false
	}
	return true
}

// kernelProg resolves a built-in kernel to its canonical *Program.
func (s *Server) kernelProg(name string) (*thermflow.Program, error) {
	s.kmu.Lock()
	defer s.kmu.Unlock()
	if p, ok := s.kernels[name]; ok {
		return p, nil
	}
	p, err := thermflow.Kernel(name)
	if err != nil {
		return nil, err
	}
	s.kernels[name] = p
	return p, nil
}

// resolve turns a wire request into a compile job. Failures are
// semantic (422): the JSON was well-formed but names an unknown kernel
// or carries unparseable IR.
func (s *Server) resolve(req api.CompileRequest) (thermflow.CompileJob, error) {
	var job thermflow.CompileJob
	switch {
	case req.Kernel != "" && req.Program != "":
		return job, fmt.Errorf("exactly one of kernel or program must be set, got both")
	case req.Kernel != "":
		p, err := s.kernelProg(req.Kernel)
		if err != nil {
			return job, err
		}
		job.Program = p
	case req.Program != "":
		var p *thermflow.Program
		var err error
		if req.Root != "" {
			p, err = thermflow.ParseModule(req.Program, req.Root)
		} else {
			p, err = thermflow.Parse(req.Program)
		}
		if err != nil {
			return job, err
		}
		job.Program = p
	default:
		return job, fmt.Errorf("exactly one of kernel or program must be set, got neither")
	}
	job.Opts = req.Options
	return job, nil
}

// classify maps a compile failure to its HTTP status and client-safe
// message: panics are internal faults — logged server-side with their
// stack, but never shipped to the client — while everything else
// (spill-budget exhaustion, impossible option combinations) is a
// property of the request and travels verbatim.
func classify(err error) (int, string) {
	var pe *batch.PanicError
	if errors.As(err, &pe) {
		log.Printf("server: compile panic: %v", pe)
		return http.StatusInternalServerError, "internal error: compile panicked (isolated to this job)"
	}
	return http.StatusUnprocessableEntity, err.Error()
}

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req api.CompileRequest
	if !decode(w, r, &req) {
		return
	}
	job, err := s.resolve(req)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	res := s.batch.Compile(r.Context(), []thermflow.CompileJob{job})[0]
	if res.Err != nil {
		if r.Context().Err() != nil {
			return // client gone; nothing to write to
		}
		status, msg := classify(res.Err)
		writeErr(w, status, "%s", msg)
		return
	}
	writeJSON(w, http.StatusOK, api.ResponseFor(res.Compiled, res.Cached))
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req api.BatchRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Jobs) == 0 {
		writeErr(w, http.StatusUnprocessableEntity, "batch has no jobs")
		return
	}
	if len(req.Jobs) > MaxBatchJobs {
		writeErr(w, http.StatusUnprocessableEntity,
			"batch has %d jobs, limit %d", len(req.Jobs), MaxBatchJobs)
		return
	}
	// Resolve every job before the first byte of the stream: semantic
	// errors must surface as a 422, which is impossible once the 200
	// header and NDJSON body have started.
	jobs := make([]thermflow.CompileJob, len(req.Jobs))
	for i, jr := range req.Jobs {
		job, err := s.resolve(jr)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, "job %d: %v", i, err)
			return
		}
		jobs[i] = job
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	// Results are emitted from the batch workers as jobs finish; the
	// mutex serializes them onto the stream. A write failure means the
	// client disconnected — r.Context() is cancelled, Batch.Compile
	// skips the jobs not yet started, and the stream just drains.
	var mu sync.Mutex
	enc := json.NewEncoder(w)
	s.batch.CompileStream(r.Context(), jobs, func(i int, res thermflow.CompileResult) {
		item := api.BatchItem{Index: i}
		if res.Err != nil {
			_, item.Error = classify(res.Err)
		} else {
			item.Result = api.ResponseFor(res.Compiled, res.Cached)
		}
		mu.Lock()
		defer mu.Unlock()
		_ = enc.Encode(item)
		if flusher != nil {
			flusher.Flush()
		}
	})
}

func (s *Server) handleKernels(w http.ResponseWriter, r *http.Request) {
	list, err := api.KernelList()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, list)
}

func (s *Server) cacheStats() api.CacheStats {
	st := s.batch.Stats()
	return api.CacheStats{
		Hits: st.Hits, Misses: st.Misses, Panics: st.Panics,
		Workers:     s.batch.Workers(),
		Memory:      tierStats(st.Memory),
		Disk:        tierStats(st.Disk),
		DiskEnabled: st.DiskEnabled,
	}
}

func tierStats(t thermflow.CacheTierStats) api.TierStats {
	return api.TierStats{
		Hits: t.Hits, Misses: t.Misses, Puts: t.Puts,
		Evictions: t.Evictions, Corrupt: t.Corrupt,
		Entries: t.Entries, Bytes: t.Bytes, CapBytes: t.CapBytes,
	}
}

func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.cacheStats())
}

func (s *Server) handleCacheReset(w http.ResponseWriter, r *http.Request) {
	if err := s.batch.ResetCache(); err != nil {
		// The cache is cleared even on error; failing to delete a disk
		// entry is an internal fault worth surfacing, since the caller
		// asked for durable state to go away.
		writeErr(w, http.StatusInternalServerError, "resetting cache: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.cacheStats())
}
