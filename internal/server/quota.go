package server

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"time"

	"thermflow/internal/tenant"
)

// This file is the tenancy-aware half of the middleware stack:
// WithQuotas resolves every request's bearer token to a tenant.Profile
// and enforces the profile's own envelope — rate bucket and in-flight
// concurrency — answering 429 when the tenant exceeds it. Pool-level
// saturation is deliberately NOT decided here: that is the jobs
// registry's admission control, which answers 503. The two statuses
// attribute blame: 429 means "you, specifically, slow down"; 503 means
// "the shared pool is full, whoever you are".

// TenantHeader carries a resolved tenant name from a gateway to its
// backends. The gateway stamps it on every proxied request from the
// profile it resolved at the edge; a backend honors it only when
// started with -trust-tenant-header, because anyone who can reach a
// backend directly could otherwise claim any tenant's quota.
const TenantHeader = "X-Thermflow-Tenant"

const tenantKey ctxKey = 1

// TenantProfile returns the profile WithQuotas resolved for this
// request (nil outside WithQuotas). Handlers use it to attribute work
// — the v2 submit path folds the profile's class into job priority and
// its queue/run caps into registry admission.
func TenantProfile(r *http.Request) *tenant.Profile {
	p, _ := r.Context().Value(tenantKey).(*tenant.Profile)
	return p
}

// QuotaSource resolves bearer tokens to quota profiles. *tenant.Quotas
// is the fixed implementation; *tenant.Source the file-backed
// reloadable one.
type QuotaSource interface {
	Lookup(token string) (*tenant.Profile, bool)
	ByName(name string) *tenant.Profile
	Default() *tenant.Profile
}

// QuotaConfig parameterizes WithQuotas.
type QuotaConfig struct {
	// Quotas resolves tokens to profiles. Nil selects a uniform table
	// built from Rate and Burst — the tenant-blind WithRateLimit shape.
	Quotas QuotaSource
	// Rate and Burst shape the uniform table when Quotas is nil.
	Rate  float64
	Burst int
	// ByToken keys default-profile buckets by bearer token instead of
	// peer host. Set it only behind WithAuth (see WithRateLimit).
	ByToken bool
	// TrustHeader accepts the TenantHeader name stamped by a fronting
	// gateway when the token itself resolves only to the default
	// profile. Enable it on backends reachable exclusively through a
	// trusted gateway.
	TrustHeader bool
	// Clock overrides the bucket clock (nil selects time.Now).
	Clock func() time.Time
	// Metrics, when non-nil, counts every quota rejection into
	// thermflow_admission_total by tenant class and decision.
	Metrics *Metrics
	// Tokens, when non-nil, registers a reload hook that evicts rate
	// buckets keyed by tokens the rotation removed — without it a
	// rotated-out token's bucket lingers until the map hits its bound.
	Tokens *TokenSource
}

// WithQuotas enforces per-tenant admission at the HTTP edge: each
// request resolves to a tenant.Profile (by bearer token, or by the
// gateway-stamped TenantHeader when trusted), pays one token from the
// profile's rate bucket, and — on the compute endpoints — holds one of
// the profile's MaxConcurrent slots for its duration. Rejections are
// 429 with Retry-After: the tenant exceeded its own envelope. The
// resolved profile rides the request context (TenantProfile) so the
// job layer can apply the profile's class and queue caps without
// re-resolving. Quota hot-reloads (tenant.Source.Reload, SIGHUP) take
// effect on the next request; in-flight requests finish under the
// profile they entered with.
func WithQuotas(cfg QuotaConfig) Middleware {
	qs := cfg.Quotas
	if qs == nil {
		qs = tenant.Uniform(cfg.Rate, cfg.Burst)
	}
	rl := newRateLimiter(cfg.Rate, cfg.Burst, cfg.Clock)
	if cfg.Tokens != nil {
		cfg.Tokens.OnReload(func(ts *TokenSet) {
			rl.evict(func(key string) bool {
				tok, ok := strings.CutPrefix(key, "t:")
				return ok && !ts.Allow(tok)
			})
		})
	}
	if src, ok := cfg.Quotas.(*tenant.Source); ok {
		src.OnReload(func(q *tenant.Quotas) {
			rl.evict(func(key string) bool {
				name, ok := strings.CutPrefix(key, "n:")
				return ok && q.ByName(name) == nil
			})
		})
	}

	var mu sync.Mutex
	inflight := make(map[string]int)

	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			token := bearerToken(r)
			p, named := qs.Lookup(token)
			if !named && cfg.TrustHeader {
				if name := r.Header.Get(TenantHeader); name != "" {
					if tp := qs.ByName(name); tp != nil {
						p, named = tp, true
					}
				}
			}
			key := quotaKey(p, named, token, cfg.ByToken, r)

			if p.Rate > 0 {
				if ok, wait := rl.allowRate(key, p.Rate, burstOf(p)); !ok {
					secs := int64(math.Ceil(wait.Seconds()))
					if secs < 1 {
						secs = 1
					}
					cfg.Metrics.IncAdmission(string(p.Class), "rate_limited")
					w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
					WriteErr(w, http.StatusTooManyRequests,
						"rate limit exceeded; retry in %ds", secs)
					return
				}
			}

			if p.MaxConcurrent > 0 && isComputeRequest(r) {
				mu.Lock()
				n := inflight[key]
				if n >= p.MaxConcurrent {
					mu.Unlock()
					cfg.Metrics.IncAdmission(string(p.Class), "concurrency")
					w.Header().Set("Retry-After", "1")
					WriteErr(w, http.StatusTooManyRequests,
						"tenant concurrency limit (%d in flight) exceeded; retry in 1s", p.MaxConcurrent)
					return
				}
				inflight[key] = n + 1
				mu.Unlock()
				defer func() {
					mu.Lock()
					if inflight[key] <= 1 {
						delete(inflight, key)
					} else {
						inflight[key]--
					}
					mu.Unlock()
				}()
			}

			ctx := context.WithValue(r.Context(), tenantKey, p)
			r = r.WithContext(ctx)
			name := "default"
			if named && p.Name != "" {
				name = p.Name
			}
			annotateTenant(r, name)
			// Per-tenant latency/served series ride the same resolution:
			// the label space is the quota file's profile names plus
			// "default", so cardinality stays bounded no matter what
			// clients send.
			sw := &statusWriter{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(sw, r)
			if sw.status == 0 {
				sw.status = http.StatusOK
			}
			served := isJobRequest(r) && sw.status >= 200 && sw.status < 300
			cfg.Metrics.ObserveTenant(name, time.Since(start).Seconds(), served)
		})
	}
}

// quotaKey is a request's accounting identity. Named tenants share one
// bucket across all their tokens ("n:" + name); default-profile
// clients key by validated token ("t:") or peer host ("h:"). The
// prefixes keep the spaces disjoint — a host named like a token cannot
// collide — and let the reload hooks evict by kind.
func quotaKey(p *tenant.Profile, named bool, token string, byToken bool, r *http.Request) string {
	if named {
		return "n:" + p.Name
	}
	if byToken && token != "" {
		return "t:" + token
	}
	return "h:" + clientHost(r)
}

// burstOf resolves a profile's bucket capacity (0 selects 2×rate,
// minimum 1 — the WithRateLimit default).
func burstOf(p *tenant.Profile) float64 {
	if p.Burst > 0 {
		return float64(p.Burst)
	}
	return math.Max(1, 2*p.Rate)
}

// isComputeRequest marks the synchronous endpoints whose whole
// duration is compute: the ones MaxConcurrent slots meter. The async
// submit path is metered at the registry instead (queued and running
// caps), where a slot actually means engine work.
func isComputeRequest(r *http.Request) bool {
	if r.Method != http.MethodPost {
		return false
	}
	switch r.URL.Path {
	case "/v1/compile", "/v1/batch", "/v2/batch":
		return true
	}
	return false
}

// isJobRequest marks the endpoints that hand the engine work — the
// compute set plus the async v2 submit — for the per-tenant served-jobs
// counter.
func isJobRequest(r *http.Request) bool {
	return isComputeRequest(r) || (r.Method == http.MethodPost && r.URL.Path == "/v2/jobs")
}
