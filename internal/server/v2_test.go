package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"thermflow"
	"thermflow/api"
	"thermflow/internal/jobs"
	"thermflow/internal/tenant"
)

// occupyingJob builds a request that compiles for several hundred
// milliseconds (cold-start analysis with a slowed thermal step), long
// enough to reliably hold a registry slot across a handful of HTTP
// round trips. Distinct i values get distinct job IDs.
func occupyingJob(i int) api.JobRequest {
	return api.JobRequest{
		Kernel: "matmul",
		Options: thermflow.Options{
			NoWarmStart: true,
			Delta:       1e-9,
			MaxIter:     1 << 18,
			Kappa:       0.25 + float64(i)*1e-9,
		},
	}
}

func newJobsServer(t *testing.T, workers int, cfg Config) (*httptest.Server, *Server) {
	t.Helper()
	srv := NewConfig(thermflow.NewBatch(workers), cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts, srv
}

// postJSON posts v and decodes the response body into out (when
// non-nil), returning the status code.
func postJSON(t *testing.T, url string, v, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decoding %q: %v", data, err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && len(data) > 0 {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decoding %q: %v", data, err)
		}
	}
	return resp.StatusCode
}

// The v2 lifecycle end to end: submit returns a handle immediately,
// wait long-polls to done, the result matches the synchronous v1 path,
// and a duplicate submit converges on the same job.
func TestV2SubmitWaitDone(t *testing.T) {
	ts, _ := newJobsServer(t, 2, Config{})
	req := api.JobRequest{Kernel: "fir", Options: thermflow.Options{Policy: thermflow.Chessboard}}

	var submitted api.JobStatus
	if status := postJSON(t, ts.URL+"/v2/jobs", req, &submitted); status != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", status)
	}
	if submitted.ID == "" || submitted.State == "" || submitted.Result != nil {
		t.Fatalf("submit handle: %+v", submitted)
	}

	var final api.JobStatus
	if status := getJSON(t, ts.URL+"/v2/jobs/"+submitted.ID+"/wait", &final); status != http.StatusOK {
		t.Fatalf("wait status = %d, want 200", status)
	}
	if final.State != "done" || final.Result == nil || final.Error != "" {
		t.Fatalf("final status: %+v", final)
	}
	if final.SubmittedMS == 0 || final.FinishedMS == 0 {
		t.Errorf("lifecycle timestamps missing: %+v", final)
	}

	// The result agrees with the v1 synchronous path (served from the
	// same cache entry — one identity).
	var v1 api.CompileResponse
	if status := postJSON(t, ts.URL+"/v1/compile",
		api.CompileRequest{Kernel: "fir", Options: req.Options}, &v1); status != http.StatusOK {
		t.Fatalf("v1 compile status = %d", status)
	}
	if !v1.Cached {
		t.Error("v1 compile of the finished job was not served from cache")
	}
	if v1.PeakTemp != final.Result.PeakTemp {
		t.Errorf("v1 and v2 results diverge: %v vs %v", v1.PeakTemp, final.Result.PeakTemp)
	}

	// Duplicate submit: same ID, not a new job.
	var dup api.JobStatus
	if status := postJSON(t, ts.URL+"/v2/jobs", req, &dup); status != http.StatusOK {
		t.Errorf("duplicate submit status = %d, want 200", status)
	}
	if dup.ID != submitted.ID || dup.State != "done" {
		t.Errorf("duplicate submit: %+v, want done job %s", dup, submitted.ID)
	}

	// Plain GET agrees.
	var got api.JobStatus
	if status := getJSON(t, ts.URL+"/v2/jobs/"+submitted.ID, &got); status != http.StatusOK {
		t.Errorf("get status = %d", status)
	}
	if got.State != "done" || got.Result == nil {
		t.Errorf("get: %+v", got)
	}
}

// A job whose deadline passes while queued answers 504 with state
// "expired" — the 504-equivalent of the satellite checklist.
func TestV2DeadlineExpiredIs504(t *testing.T) {
	ts, _ := newJobsServer(t, 1, Config{Jobs: jobs.Config{Concurrency: 1}})

	// Saturate the single slot with a slow compile.
	var occupying api.JobStatus
	if status := postJSON(t, ts.URL+"/v2/jobs", occupyingJob(0), &occupying); status != http.StatusAccepted {
		t.Fatalf("occupying submit status = %d", status)
	}

	var handle api.JobStatus
	req := api.JobRequest{Kernel: "dot", DeadlineMS: 1}
	if status := postJSON(t, ts.URL+"/v2/jobs", req, &handle); status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}
	if handle.DeadlineMS == 0 {
		t.Error("handle carries no deadline")
	}

	var final api.JobStatus
	status := getJSON(t, ts.URL+"/v2/jobs/"+handle.ID+"/wait", &final)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("wait on expired job: status = %d, want 504 (body %+v)", status, final)
	}
	if final.State != "expired" || final.Error == "" || final.Result != nil {
		t.Fatalf("expired status: %+v", final)
	}
	// GET repeats the 504.
	if status := getJSON(t, ts.URL+"/v2/jobs/"+final.ID, &final); status != http.StatusGatewayTimeout {
		t.Errorf("get on expired job: status = %d, want 504", status)
	}
}

// /wait with a tiny window returns the live (non-terminal) state
// instead of hanging; unknown IDs are 404; malformed timeouts 422.
func TestV2WaitWindowAndErrors(t *testing.T) {
	ts, _ := newJobsServer(t, 1, Config{Jobs: jobs.Config{Concurrency: 1}})
	var occupying, queued api.JobStatus
	postJSON(t, ts.URL+"/v2/jobs", occupyingJob(0), &occupying)
	postJSON(t, ts.URL+"/v2/jobs", occupyingJob(1), &queued)

	var live api.JobStatus
	if status := getJSON(t, ts.URL+"/v2/jobs/"+queued.ID+"/wait?timeout_ms=1", &live); status != http.StatusOK {
		t.Fatalf("short wait status = %d", status)
	}
	if live.State != "queued" && live.State != "running" {
		t.Errorf("short wait state = %s, want live", live.State)
	}
	if status := getJSON(t, ts.URL+"/v2/jobs/no-such-job", nil); status != http.StatusNotFound {
		t.Errorf("unknown job GET status = %d, want 404", status)
	}
	if status := getJSON(t, ts.URL+"/v2/jobs/no-such-job/wait", nil); status != http.StatusNotFound {
		t.Errorf("unknown job wait status = %d, want 404", status)
	}
	if status := getJSON(t, ts.URL+"/v2/jobs/"+queued.ID+"/wait?timeout_ms=bogus", nil); status != http.StatusUnprocessableEntity {
		t.Errorf("bogus timeout status = %d, want 422", status)
	}
}

// The v2 batch stream is item-keyed by job ID: duplicates share an ID,
// failures are isolated, and IDs match what /v2/jobs would mint.
func TestV2BatchStreamKeyedByJobID(t *testing.T) {
	ts, _ := newJobsServer(t, 2, Config{})
	reqBody, _ := json.Marshal(api.JobsBatchRequest{Jobs: []api.JobRequest{
		{Kernel: "dot"},
		{Kernel: "fir"},
		{Kernel: "dot"}, // duplicate of 0
		{Kernel: "dot", Options: thermflow.Options{GridW: 2, GridH: 2}}, // fails
	}})
	resp, err := http.Post(ts.URL+"/v2/batch", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "ndjson") {
		t.Errorf("content type %q", ct)
	}
	items := make(map[int]api.JobItem)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var item api.JobItem
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		items[item.Index] = item
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(items) != 4 {
		t.Fatalf("got %d items, want 4", len(items))
	}
	for i := 0; i < 4; i++ {
		if items[i].ID == "" {
			t.Errorf("item %d has no job ID", i)
		}
	}
	if items[0].ID != items[2].ID {
		t.Error("duplicate jobs carry different IDs")
	}
	if items[0].ID == items[1].ID {
		t.Error("distinct jobs share an ID")
	}
	if items[3].Error == "" || items[3].Result != nil {
		t.Errorf("failing job: %+v", items[3])
	}
	if items[0].Result == nil || items[1].Result == nil || items[2].Result == nil {
		t.Error("successful jobs missing results")
	}

	// The stream's IDs are the same identities /v2/jobs mints.
	var handle api.JobStatus
	if status := postJSON(t, ts.URL+"/v2/jobs", api.JobRequest{Kernel: "dot"}, &handle); status != http.StatusAccepted {
		t.Fatalf("submit status = %d", status)
	}
	if handle.ID != items[0].ID {
		t.Errorf("batch ID %s != submit ID %s", items[0].ID, handle.ID)
	}
	var final api.JobStatus
	if getJSON(t, ts.URL+"/v2/jobs/"+handle.ID+"/wait", &final); final.State != "done" || !final.Cached {
		t.Errorf("submit after batch not served from the shared cache: %+v", final)
	}
}

// Submitting when the registry is full of live jobs is 503 with
// Retry-After, not silent loss.
func TestV2RegistryBusyIs503(t *testing.T) {
	ts, _ := newJobsServer(t, 1, Config{Jobs: jobs.Config{Concurrency: 1, MaxJobs: 2}})
	for i := 0; i < 2; i++ {
		if status := postJSON(t, ts.URL+"/v2/jobs", occupyingJob(i), nil); status != http.StatusAccepted {
			t.Fatalf("submit %d status = %d", i, status)
		}
	}
	req, _ := json.Marshal(occupyingJob(2))
	resp, err := http.Post(ts.URL+"/v2/jobs", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity submit status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

// Semantic errors on the v2 surface are 422 before any job exists.
func TestV2SubmitValidation(t *testing.T) {
	ts, _ := newJobsServer(t, 1, Config{})
	cases := []api.JobRequest{
		{},
		{Kernel: "no-such-kernel"},
		{Kernel: "dot", Program: "func f() {\nentry:\n  ret\n}"},
		{Program: "not IR"},
		{Kernel: "dot", DeadlineMS: -5},
	}
	for i, req := range cases {
		var e api.ErrorResponse
		if status := postJSON(t, ts.URL+"/v2/jobs", req, &e); status != http.StatusUnprocessableEntity {
			t.Errorf("case %d: status = %d, want 422", i, status)
		} else if e.Error == "" {
			t.Errorf("case %d: empty error body", i)
		}
	}
}

// The expired-while-queued path must not wedge the worker accounting:
// after an expiry the freed slot still runs later jobs.
func TestV2ExpiredJobFreesSlot(t *testing.T) {
	ts, _ := newJobsServer(t, 1, Config{Jobs: jobs.Config{Concurrency: 1}})
	// A lighter occupier than occupyingJob: it only needs to outlive
	// the expiry sequence, and the poll below waits out its compile
	// even under -race slowdowns.
	occ := occupyingJob(0)
	occ.Options.Kappa = 1
	postJSON(t, ts.URL+"/v2/jobs", occ, nil)

	var expired api.JobStatus
	postJSON(t, ts.URL+"/v2/jobs", api.JobRequest{Kernel: "dot", DeadlineMS: 1}, &expired)
	time.Sleep(5 * time.Millisecond)

	var after api.JobStatus
	if status := postJSON(t, ts.URL+"/v2/jobs", api.JobRequest{Kernel: "fir"}, &after); status != http.StatusAccepted {
		t.Fatalf("post-expiry submit status = %d", status)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		var st api.JobStatus
		getJSON(t, ts.URL+"/v2/jobs/"+after.ID+"/wait?timeout_ms=2000", &st)
		if st.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s after an expiry freed the queue", st.State)
		}
	}
	var exp api.JobStatus
	if status := getJSON(t, ts.URL+"/v2/jobs/"+expired.ID, &exp); status != http.StatusGatewayTimeout {
		t.Errorf("expired job status = %d (%+v)", status, exp)
	}
}

// The v2 submit path under WithQuotas: the tenant's class dominates
// scheduling priority, its own queue cap answers 429, and pool
// admission control sheds batch-class work with 503 — displacing it
// from the queue when critical work arrives at the cap.
func TestV2SubmitTenantAdmission(t *testing.T) {
	quotas, err := tenant.Parse([]byte(`{
		"tenants": [
			{"name": "lowco", "class": "batch", "max_queue": 1, "tokens": ["low-token"]},
			{"name": "highco", "class": "critical", "tokens": ["high-token"]}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	srv := NewConfig(thermflow.NewBatch(1),
		Config{Jobs: jobs.Config{Concurrency: 1, MaxQueue: 2, QueueWatermark: 2}})
	ts := httptest.NewServer(Chain(srv, WithQuotas(QuotaConfig{Quotas: quotas})))
	t.Cleanup(func() { ts.Close(); srv.Close() })

	submit := func(i int, token string) (int, api.JobStatus, http.Header) {
		t.Helper()
		body, err := json.Marshal(occupyingJob(i))
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v2/jobs", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		var st api.JobStatus
		if resp.StatusCode < 400 {
			if err := json.Unmarshal(data, &st); err != nil {
				t.Fatalf("decoding %q: %v", data, err)
			}
		}
		return resp.StatusCode, st, resp.Header
	}

	// Slot holder: highco's class folds into the scheduler priority.
	code, st, _ := submit(0, "high-token")
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	if want := tenant.EffectivePriority(tenant.ClassCritical, 0); st.Priority != want {
		t.Errorf("critical submit priority %d, want %d", st.Priority, want)
	}

	code, lowSt, _ := submit(1, "low-token")
	if code != http.StatusAccepted {
		t.Fatalf("lowco's first queued submit: %d", code)
	}

	// lowco is now at its own queue cap: 429, its fault alone.
	code, _, hdr := submit(2, "low-token")
	if code != http.StatusTooManyRequests || hdr.Get("Retry-After") == "" {
		t.Errorf("over-quota submit: %d (Retry-After %q), want 429",
			code, hdr.Get("Retry-After"))
	}

	// highco fills the queue to the cap, then displaces lowco's job.
	if code, _, _ := submit(3, "high-token"); code != http.StatusAccepted {
		t.Fatalf("highco queued submit: %d", code)
	}
	if code, _, _ := submit(4, "high-token"); code != http.StatusAccepted {
		t.Fatalf("highco displacing submit: %d", code)
	}
	var got api.JobStatus
	if code := getJSON(t, ts.URL+"/v2/jobs/"+lowSt.ID, &got); code != http.StatusOK {
		t.Fatalf("displaced job status read: %d", code)
	}
	if got.State != string(jobs.StateFailed) || !strings.Contains(got.Error, "shed") {
		t.Errorf("displaced job: state %s error %q, want failed/shed", got.State, got.Error)
	}

	// At the cap, batch-class work cannot outrank anything queued: 503.
	code, _, hdr = submit(5, "low-token")
	if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Errorf("shed submit: %d (Retry-After %q), want 503", code, hdr.Get("Retry-After"))
	}
}
