package server

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"thermflow/internal/tenant"
)

func writeQuotaFile(t *testing.T, doc string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "quotas.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func rewriteFile(t *testing.T, path, doc string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
}

// Distinct tenants get distinct envelopes: a starved tenant's 429s do
// not charge a generous tenant's bucket, and all of one tenant's
// tokens share one bucket.
func TestQuotasPerTenantRates(t *testing.T) {
	src, err := tenant.Parse([]byte(`{
	  "default": {"rate": 0.001, "burst": 1},
	  "tenants": [
	    {"name": "fast", "class": "high", "tokens": ["tok-fast"], "rate": 1000, "burst": 1000},
	    {"name": "slow", "class": "batch", "tokens": ["tok-slow", "tok-slow2"], "rate": 0.001, "burst": 1}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	ts := authedServer(t, WithQuotas(QuotaConfig{Quotas: src, ByToken: true}))
	get := func(token string) int {
		return doReq(t, http.MethodGet, ts.URL+"/v1/cache", token).StatusCode
	}

	if got := get("tok-slow"); got != http.StatusOK {
		t.Fatalf("slow tenant first request: %d", got)
	}
	// The second token of the SAME tenant shares the drained bucket.
	if got := get("tok-slow2"); got != http.StatusTooManyRequests {
		t.Fatalf("slow tenant second token: %d, want 429 (one bucket per tenant)", got)
	}
	for i := 0; i < 5; i++ {
		if got := get("tok-fast"); got != http.StatusOK {
			t.Fatalf("fast tenant request %d: %d (charged for the slow tenant?)", i, got)
		}
	}
	// Unknown tokens fall to the (tiny) default profile.
	if got := get("tok-unknown"); got != http.StatusOK {
		t.Fatalf("default-profile first request: %d", got)
	}
	if got := get("tok-unknown"); got != http.StatusTooManyRequests {
		t.Fatalf("default-profile second request: %d, want 429", got)
	}
}

// Quota hot-reload, mirroring TestTokenSourceRotation: a SIGHUP-style
// Reload with a changed file takes effect on the very next request
// without dropping the request in flight when it happens.
func TestQuotaSourceHotReloadMidFlight(t *testing.T) {
	path := writeQuotaFile(t,
		`{"tenants": [{"name": "acme", "tokens": ["tok"], "rate": 0.001, "burst": 1}]}`)
	src, err := tenant.Open(path)
	if err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/slow" {
			once.Do(func() { close(entered) })
			<-release
		}
		w.WriteHeader(http.StatusOK)
	})
	ts := httptest.NewServer(Chain(slow, WithQuotas(QuotaConfig{Quotas: src, ByToken: true})))
	defer ts.Close()

	// Park a request mid-handler; it entered under the old quotas and
	// has already spent the tenant's only token.
	inflight := make(chan int, 1)
	go func() {
		inflight <- doReq(t, http.MethodGet, ts.URL+"/slow", "tok").StatusCode
	}()
	<-entered

	if got := doReq(t, http.MethodGet, ts.URL+"/", "tok").StatusCode; got != http.StatusTooManyRequests {
		t.Fatalf("pre-reload second request: %d, want 429", got)
	}

	// Reload with a generous envelope while the first request is parked.
	rewriteFile(t, path,
		`{"tenants": [{"name": "acme", "tokens": ["tok"], "rate": 1000, "burst": 1000}]}`)
	if err := src.Reload(); err != nil {
		t.Fatal(err)
	}

	// The new envelope applies to the next request...
	if got := doReq(t, http.MethodGet, ts.URL+"/", "tok").StatusCode; got != http.StatusOK {
		t.Fatalf("post-reload request: %d, want 200 under the new envelope", got)
	}
	// ...and the in-flight request was not dropped by the swap.
	close(release)
	select {
	case got := <-inflight:
		if got != http.StatusOK {
			t.Fatalf("in-flight request finished %d, want 200", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never finished")
	}
}

// A malformed quota rewrite keeps the old quotas in force, mirroring
// TestTokenSourceReloadFailureKeepsOldSet.
func TestQuotaSourceReloadFailureKeepsOldQuotas(t *testing.T) {
	path := writeQuotaFile(t,
		`{"tenants": [{"name": "acme", "tokens": ["tok"], "rate": 0.001, "burst": 1}]}`)
	src, err := tenant.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ts := authedServer(t, WithQuotas(QuotaConfig{Quotas: src, ByToken: true}))

	if got := doReq(t, http.MethodGet, ts.URL+"/v1/cache", "tok").StatusCode; got != http.StatusOK {
		t.Fatalf("first request: %d", got)
	}
	rewriteFile(t, path, `{"tenants": [{"name": "acme", "class": "no-such-class"`)
	if err := src.Reload(); err == nil {
		t.Fatal("reload of a malformed quota file did not fail")
	}
	if got := doReq(t, http.MethodGet, ts.URL+"/v1/cache", "tok").StatusCode; got != http.StatusTooManyRequests {
		t.Fatalf("post-failed-reload request: %d, want 429 under the OLD quotas", got)
	}
}

// The satellite fix: rotating a token out of the TokenSet evicts its
// rate bucket, so the bucket map cannot accumulate dead tokens and a
// re-added token starts from a fresh burst.
func TestRateBucketEvictionOnTokenRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tokens")
	if err := os.WriteFile(path, []byte("tok-a\ntok-b\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	tokens, err := OpenTokenSource(path)
	if err != nil {
		t.Fatal(err)
	}
	rl := newRateLimiter(0.001, 1, nil)
	tokens.OnReload(func(ts *TokenSet) {
		rl.evict(func(key string) bool { return !ts.Allow(key[len("t:"):]) })
	})

	// Drain both tokens' buckets.
	for _, tok := range []string{"tok-a", "tok-b"} {
		if ok, _ := rl.allow("t:" + tok); !ok {
			t.Fatalf("%s first request should pass", tok)
		}
		if ok, _ := rl.allow("t:" + tok); ok {
			t.Fatalf("%s second request should be limited", tok)
		}
	}

	// Rotate tok-b out: its bucket must go, tok-a's must stay.
	if err := os.WriteFile(path, []byte("tok-a\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := tokens.Reload(); err != nil {
		t.Fatal(err)
	}
	rl.mu.Lock()
	_, aLives := rl.buckets["t:tok-a"]
	_, bLives := rl.buckets["t:tok-b"]
	rl.mu.Unlock()
	if !aLives || bLives {
		t.Fatalf("buckets after rotation: tok-a=%v tok-b=%v, want tok-a kept, tok-b evicted", aLives, bLives)
	}
	// tok-a keeps its drained state; a hypothetically re-added tok-b
	// would start fresh (the bucket is gone).
	if ok, _ := rl.allow("t:tok-a"); ok {
		t.Fatal("surviving token's bucket was reset by the rotation")
	}
}

// A quota reload that removes a tenant evicts the tenant's bucket
// through the same hook plumbing, end to end through the middleware.
func TestTenantBucketEvictionOnQuotaReload(t *testing.T) {
	path := writeQuotaFile(t,
		`{"default": {"rate": 1000, "burst": 1000},
		  "tenants": [{"name": "gone", "tokens": ["tok-g"], "rate": 0.001, "burst": 1}]}`)
	src, err := tenant.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ts := authedServer(t, WithQuotas(QuotaConfig{Quotas: src, ByToken: true}))
	get := func() int { return doReq(t, http.MethodGet, ts.URL+"/v1/cache", "tok-g").StatusCode }

	if got := get(); got != http.StatusOK {
		t.Fatalf("first request: %d", got)
	}
	if got := get(); got != http.StatusTooManyRequests {
		t.Fatalf("second request: %d, want 429", got)
	}
	// Remove the tenant; its token now resolves to the generous default
	// and its old bucket must not shadow that.
	rewriteFile(t, path, `{"default": {"rate": 1000, "burst": 1000}}`)
	if err := src.Reload(); err != nil {
		t.Fatal(err)
	}
	if got := get(); got != http.StatusOK {
		t.Fatalf("post-removal request: %d, want 200 under the default profile", got)
	}
}

// MaxConcurrent: the compute endpoints hold a tenant slot for their
// duration; the request over the cap is 429 with Retry-After, and
// finishing a request frees the slot.
func TestQuotaConcurrencyLimit(t *testing.T) {
	src, err := tenant.Parse([]byte(
		`{"tenants": [{"name": "acme", "tokens": ["tok"], "max_concurrent": 1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			entered <- struct{}{}
			<-release
		}
		w.WriteHeader(http.StatusOK)
	})
	ts := httptest.NewServer(Chain(slow, WithQuotas(QuotaConfig{Quotas: src, ByToken: true})))
	defer ts.Close()

	post := func() *http.Response {
		return doReq(t, http.MethodPost, ts.URL+"/v1/compile", "tok")
	}
	first := make(chan int, 1)
	go func() { first <- post().StatusCode }()
	<-entered

	resp := post()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second concurrent compute: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("concurrency 429 missing Retry-After")
	}
	// Non-compute requests are not metered by MaxConcurrent.
	if got := doReq(t, http.MethodGet, ts.URL+"/v1/cache", "tok").StatusCode; got != http.StatusOK {
		t.Fatalf("GET under a full compute slot: %d, want 200", got)
	}

	close(release)
	if got := <-first; got != http.StatusOK {
		t.Fatalf("first request finished %d", got)
	}
	// The slot was released: the next compute passes.
	if got := post().StatusCode; got != http.StatusOK {
		t.Fatalf("compute after release: %d, want 200", got)
	}
}

// The gateway-stamped tenant header is honored only when trusted, and
// only for tokens that do not already resolve to a named tenant.
func TestTrustTenantHeader(t *testing.T) {
	src, err := tenant.Parse([]byte(
		`{"default": {"rate": 1000, "burst": 1000},
		  "tenants": [{"name": "edge", "class": "high", "rate": 0.001, "burst": 1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var seen *tenant.Profile
	var mu sync.Mutex
	probe := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen = TenantProfile(r)
		mu.Unlock()
		w.WriteHeader(http.StatusOK)
	})

	do := func(url string, trust bool) (int, *tenant.Profile) {
		ts := httptest.NewServer(Chain(probe,
			WithQuotas(QuotaConfig{Quotas: src, TrustHeader: trust})))
		defer ts.Close()
		req, _ := http.NewRequest(http.MethodGet, ts.URL+url, nil)
		req.Header.Set(TenantHeader, "edge")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		mu.Lock()
		defer mu.Unlock()
		return resp.StatusCode, seen
	}

	if _, p := do("/", true); p == nil || p.Name != "edge" {
		t.Fatalf("trusted header resolved to %+v, want tenant edge", p)
	}
	if _, p := do("/", false); p == nil || p.Name != "default" {
		t.Fatalf("untrusted header resolved to %+v, want the default profile", p)
	}
}
