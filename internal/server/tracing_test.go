package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"thermflow/internal/trace"
)

// TestWithTracingSanitizesMalformedHeader feeds hostile and merely
// broken X-Thermflow-Trace values through the middleware and asserts
// none of them is ever echoed: the response always carries a freshly
// minted, well-formed identity, and the handler still sees a valid
// span context.
func TestWithTracingSanitizesMalformedHeader(t *testing.T) {
	var seen trace.SpanContext
	h := WithTracing(nil)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = TraceContext(r)
	}))

	malformed := []string{
		"<script>alert(1)</script>",
		"not hex at all",
		"deadbeef", // no span half
		strings.ToUpper(strings.Repeat("a", 32)) + "-" + strings.Repeat("b", 16), // uppercase
		strings.Repeat("a", 32) + "-" + strings.Repeat("g", 16),                  // non-hex span
		strings.Repeat("a", 33) + "-" + strings.Repeat("b", 16),                  // wrong length
		strings.Repeat("a", 32) + "-" + strings.Repeat("b", 16) + "\r\nX-Evil: 1",
	}
	for _, hdr := range malformed {
		seen = trace.SpanContext{}
		req := httptest.NewRequest("GET", "/v2/stats", nil)
		req.Header.Set(TraceHeader, hdr)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)

		echo := w.Header().Get(TraceHeader)
		sc, ok := trace.ParseHeader(echo)
		if !ok {
			t.Fatalf("input %q: response header %q is not a well-formed trace header", hdr, echo)
		}
		if inTrace := strings.SplitN(hdr, "-", 2)[0]; sc.TraceID == inTrace {
			t.Fatalf("input %q: malformed trace ID was adopted instead of replaced", hdr)
		}
		if strings.ContainsAny(echo, "<>\r\n ") {
			t.Fatalf("input %q: hostile bytes echoed in %q", hdr, echo)
		}
		if !seen.Valid() || seen.TraceID != sc.TraceID {
			t.Fatalf("input %q: handler saw %+v, response carried %s", hdr, seen, sc.TraceID)
		}
	}
}

// TestWithTracingJoinsValidHeaderAndRecords asserts the cooperative
// path: a well-formed inbound header contributes the trace ID and
// parent, the response continues the same trace under a fresh span, and
// a job-annotated request lands an http.server span in the job's
// timeline parented under the client's span.
func TestWithTracingJoinsValidHeaderAndRecords(t *testing.T) {
	rec := trace.NewRecorder("test", 0, 0)
	h := WithTracing(rec)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		AnnotateJob(r, "job-1")
	}))

	parent := trace.New()
	req := httptest.NewRequest("GET", "/v2/jobs/job-1", nil)
	req.Header.Set(TraceHeader, parent.Header())
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)

	sc, ok := trace.ParseHeader(w.Header().Get(TraceHeader))
	if !ok || sc.TraceID != parent.TraceID {
		t.Fatalf("response header %q does not continue trace %s",
			w.Header().Get(TraceHeader), parent.TraceID)
	}
	if sc.SpanID == parent.SpanID {
		t.Fatal("server reused the client's span ID instead of minting its own")
	}

	tl, ok := rec.Timeline("job-1")
	if !ok || len(tl.Spans) != 1 {
		t.Fatalf("want one recorded span for job-1, got %+v", tl)
	}
	sp := tl.Spans[0]
	if sp.Name != "http.server" || sp.TraceID != parent.TraceID ||
		sp.SpanID != sc.SpanID || sp.Parent != parent.SpanID {
		t.Fatalf("server span %+v does not link under client span %s", sp, parent.SpanID)
	}
	if sp.Attrs["route"] != "/v2/jobs/{id}" {
		t.Fatalf("server span route %q, want /v2/jobs/{id}", sp.Attrs["route"])
	}
}
