package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"thermflow"
	"thermflow/api"
)

// These tests pin down how the middleware compose — the interactions
// the per-middleware tests cannot see: the request deadline against a
// flushing NDJSON stream, and the rate limiter's bucket map against an
// open-ended client population.

// slowBatchBody builds a /v1/batch request whose first job is a plain
// fast compile (so one item flushes almost immediately) and whose
// remaining jobs converge slowly — no warm start, κ=1, a δ below
// floating-point progress, a six-figure sweep cap: several hundred
// milliseconds each — so the NDJSON stream is still open when a
// WithTimeout deadline lands.
func slowBatchBody(n int) string {
	var sb strings.Builder
	sb.WriteString(`{"jobs":[{"kernel":"dot"}`)
	for i := 1; i < n; i++ {
		// max_iter varies per job to keep the content identities
		// distinct without leaving the valid num_regs range.
		fmt.Fprintf(&sb, `,{"kernel":"matmul","options":{"num_regs":%d,"no_warm_start":true,"kappa":1,"max_iter":%d,"delta":1e-12}}`,
			40+i%24, 200000+i)
	}
	sb.WriteString(`]}`)
	return sb.String()
}

// A batch that finishes inside the deadline streams to completion
// under WithTimeout: the deadline must not 503 or truncate a live,
// flushing stream that is making progress.
func TestTimeoutDoesNotCutCompletingStream(t *testing.T) {
	s := New(thermflow.NewBatch(2))
	t.Cleanup(s.Close)
	ts := httptest.NewServer(Chain(s, WithTimeout(time.Minute)))
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(slowBatchBody(4)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch under timeout: %s", resp.Status)
	}
	items := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var item api.BatchItem
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			t.Fatalf("line %d not an item: %v: %s", items, err, sc.Text())
		}
		if item.Error != "" {
			t.Fatalf("item %d failed under a generous timeout: %s", item.Index, item.Error)
		}
		items++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	if items != 4 {
		t.Fatalf("got %d items, want 4", items)
	}
}

// A deadline expiring mid-stream must not manufacture a late 503: the
// headers and early items are already on the wire, so the client sees
// a 200 whose stream simply ends (items flushed before the deadline
// intact), and the connection closes promptly instead of hanging.
func TestTimeoutMidStreamEndsWithoutLate503(t *testing.T) {
	s := New(thermflow.NewBatch(1))
	t.Cleanup(s.Close)
	// One worker serializes the slow jobs; the deadline lands while
	// later jobs are still queued.
	ts := httptest.NewServer(Chain(s, WithTimeout(250*time.Millisecond)))
	t.Cleanup(ts.Close)

	start := time.Now()
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(slowBatchBody(8)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s — the deadline must not preempt the stream's 200", resp.Status)
	}

	// Every line that arrives must be a well-formed item — no error
	// page, no 503 body spliced into the NDJSON.
	succeeded := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var item api.BatchItem
		if err := json.Unmarshal([]byte(line), &item); err != nil {
			t.Fatalf("mid-stream line is not a batch item: %q", line)
		}
		if item.Error == "" {
			succeeded++
		}
	}
	elapsed := time.Since(start)
	if succeeded == 0 {
		t.Fatal("no item flushed before the deadline — the fast lead job never made it out")
	}
	if succeeded >= 8 {
		t.Fatalf("all %d items completed — stream never crossed the deadline, test proves nothing", succeeded)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("stream hung %s past a 250ms deadline", elapsed)
	}
}

// Filling the limiter with one bucket per client up to its bound, then
// letting them refill: the next new client sweeps the idle buckets
// instead of growing the map.
func TestRateLimiterSweepsIdleBucketsAtBound(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	rl := newRateLimiter(10, 5, clock)

	for i := 0; i < maxRateClients; i++ {
		if ok, _ := rl.allow(fmt.Sprintf("client-%d", i)); !ok {
			t.Fatalf("fresh client %d rejected", i)
		}
	}
	if n := len(rl.buckets); n != maxRateClients {
		t.Fatalf("bucket map holds %d clients, want %d", n, maxRateClients)
	}

	// Everyone idles long enough to refill to full burst; the next new
	// client must sweep them all.
	now = now.Add(time.Minute)
	if ok, _ := rl.allow("the-straw"); !ok {
		t.Fatal("new client rejected at the bound")
	}
	if n := len(rl.buckets); n != 1 {
		t.Fatalf("after sweep the map holds %d buckets, want 1 (the new client)", n)
	}

	// The surviving bucket is live: burst-1 more requests pass, then 429.
	for i := 0; i < 4; i++ {
		if ok, _ := rl.allow("the-straw"); !ok {
			t.Fatalf("request %d within burst rejected after sweep", i+2)
		}
	}
	if ok, wait := rl.allow("the-straw"); ok || wait <= 0 {
		t.Fatalf("burst exhausted yet allowed (ok=%v wait=%s)", ok, wait)
	}
}

// When every client at the bound is still active (nothing refilled),
// the sweep's fallback resets the whole map rather than letting it
// grow without bound.
func TestRateLimiterFullResetWhenAllActive(t *testing.T) {
	now := time.Unix(2000, 0)
	clock := func() time.Time { return now }
	rl := newRateLimiter(10, 5, clock)

	for i := 0; i < maxRateClients; i++ {
		rl.allow(fmt.Sprintf("client-%d", i))
	}
	// No time passes: every bucket sits below full burst.
	if ok, _ := rl.allow("overload-straw"); !ok {
		t.Fatal("new client rejected during full reset")
	}
	if n := len(rl.buckets); n != 1 {
		t.Fatalf("after full reset the map holds %d buckets, want 1", n)
	}
}

// The middleware end of the same property: a client population three
// times the bucket bound, one request each, all served — the sweeps
// that keep the map bounded must be invisible to well-behaved clients
// — while a single client hammering past its burst still gets its 429
// with Retry-After amid the churn.
func TestRateLimitManyDistinctClients(t *testing.T) {
	now := time.Unix(3000, 0)
	h := WithRateLimit(1, 2, false, func() time.Time { return now })(
		http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
		}))

	hit := func(host string) int {
		r := httptest.NewRequest("GET", "/v1/kernels", nil)
		r.RemoteAddr = host + ":1234"
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		return w.Code
	}

	for i := 0; i < 3*maxRateClients; i++ {
		host := fmt.Sprintf("10.%d.%d.%d", i>>16&0xff, i>>8&0xff, i&0xff)
		if code := hit(host); code != http.StatusOK {
			t.Fatalf("distinct client %d got %d, want 200", i, code)
		}
	}

	// One client past its burst is still limited despite the churn of
	// 196k other buckets coming and going around it.
	if code := hit("192.168.1.1"); code != http.StatusOK {
		t.Fatalf("hammering client's first request: %d", code)
	}
	if code := hit("192.168.1.1"); code != http.StatusOK {
		t.Fatalf("hammering client's second request (burst 2): %d", code)
	}
	if code := hit("192.168.1.1"); code != http.StatusTooManyRequests {
		t.Fatalf("hammering client's third request: %d, want 429", code)
	}
}
