package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"thermflow"
	"thermflow/api"
	"thermflow/internal/joblog"
)

func fakeStatus(id, state string) []byte {
	b, _ := json.Marshal(api.JobStatus{ID: id, State: state, Cached: true, FinishedMS: 1})
	return b
}

func fakeID(seed byte) string {
	return strings.Repeat(fmt.Sprintf("%02x", seed), 32)
}

func putReplica(t *testing.T, ts *httptest.Server, id string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v2/jobs/"+id+"/replica", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// A shelved replica answers status reads for an ID this backend never
// ran: verbatim body, replica marker, expired served as 504.
func TestReplicaPutAndServeFallback(t *testing.T) {
	srv := New(thermflow.NewBatch(1))
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	doneID, expID := fakeID(0xaa), fakeID(0xbb)
	doneBody := fakeStatus(doneID, "done")
	if resp := putReplica(t, ts, doneID, doneBody); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("replica put: %s", resp.Status)
	}
	if resp := putReplica(t, ts, expID, fakeStatus(expID, "expired")); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("expired replica put: %s", resp.Status)
	}

	for _, path := range []string{"/v2/jobs/" + doneID, "/v2/jobs/" + doneID + "/wait"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %s", path, resp.Status)
		}
		if resp.Header.Get(ReplicaHeader) == "" {
			t.Fatalf("%s: replica answer not marked with %s", path, ReplicaHeader)
		}
		var got bytes.Buffer
		if _, err := got.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if !bytes.Equal(got.Bytes(), doneBody) {
			t.Fatalf("%s: replica body rewritten:\n got %s\nwant %s", path, got.Bytes(), doneBody)
		}
	}

	resp, err := http.Get(ts.URL + "/v2/jobs/" + expID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired replica answered %s, want 504", resp.Status)
	}

	// Unknown IDs still 404: the shelf never invents jobs.
	resp, err = http.Get(ts.URL + "/v2/jobs/" + fakeID(0xcc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown ID answered %s, want 404", resp.Status)
	}
}

// The shelf rejects documents that could corrupt it: non-terminal
// states (a replica must never need updating) and ID mismatches.
func TestReplicaPutRejectsBadDocuments(t *testing.T) {
	srv := New(thermflow.NewBatch(1))
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	id := fakeID(0x11)
	cases := []struct {
		name string
		body []byte
		want int
	}{
		{"running state", fakeStatus(id, "running"), http.StatusUnprocessableEntity},
		{"mismatched ID", fakeStatus(fakeID(0x22), "done"), http.StatusUnprocessableEntity},
		{"malformed JSON", []byte("{"), http.StatusBadRequest},
	}
	for _, tc := range cases {
		if resp := putReplica(t, ts, id, tc.body); resp.StatusCode != tc.want {
			t.Errorf("%s: %s, want %d", tc.name, resp.Status, tc.want)
		}
	}
	resp, err := http.Get(ts.URL + "/v2/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("rejected replica still got shelved: %s", resp.Status)
	}
}

// A joblog-backed shelf replays its replicas after a restart.
func TestReplicaStoreDurable(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "replicas")
	l1, rec1, err := joblog.Open(dir, joblog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewReplicaStore(0, l1, &rec1)
	ids := []string{fakeID(0x31), fakeID(0x32), fakeID(0x33)}
	for _, id := range ids {
		s1.Put(id, "done", fakeStatus(id, "done"))
	}
	l1.Close() // crash: no orderly snapshot

	l2, rec2, err := joblog.Open(dir, joblog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	s2 := NewReplicaStore(0, l2, &rec2)
	if s2.Len() != len(ids) {
		t.Fatalf("replayed shelf holds %d replicas, want %d", s2.Len(), len(ids))
	}
	for _, id := range ids {
		body, state, ok := s2.Get(id)
		if !ok || state != "done" || !bytes.Equal(body, fakeStatus(id, "done")) {
			t.Fatalf("replica %s after restart: ok=%v state=%q", id, ok, state)
		}
	}
}

// The shelf caps retention FIFO: oldest replicas fall off, newest stay.
func TestReplicaStoreCap(t *testing.T) {
	s := NewReplicaStore(2, nil, nil)
	a, b, c := fakeID(0x41), fakeID(0x42), fakeID(0x43)
	s.Put(a, "done", fakeStatus(a, "done"))
	s.Put(b, "done", fakeStatus(b, "done"))
	s.Put(c, "done", fakeStatus(c, "done"))
	if _, _, ok := s.Get(a); ok {
		t.Fatal("oldest replica survived past the cap")
	}
	for _, id := range []string{b, c} {
		if _, _, ok := s.Get(id); !ok {
			t.Fatalf("recent replica %s evicted", id)
		}
	}
}
