package server

import (
	"context"
	"net/http"
	"sync"
	"time"

	"thermflow/api"
	"thermflow/internal/trace"
)

// This file wires the tracing plane (internal/trace) into the HTTP
// stack: WithTracing opens one server span per request and propagates
// identity via the X-Thermflow-Trace header, request annotations let
// handlers attribute a request to a job and a tenant after the fact
// (for the access log and for keying the server span into the job's
// timeline), and GET /v2/jobs/{id}/trace serves the recorded timeline.

// TraceHeader is the wire header carrying "traceID-spanID" (see
// trace.ParseHeader for the accepted shape; anything else is discarded
// and replaced, never echoed).
const TraceHeader = "X-Thermflow-Trace"

const requestInfoKey ctxKey = 2

// requestInfo is the per-request annotation slot: inner handlers learn
// facts — which job a request resolved to, which tenant it ran as —
// after the outer middleware has already built its context, so the
// outer layers read them back through this shared mutable cell instead
// of a context value that cannot flow outward.
type requestInfo struct {
	mu     sync.Mutex
	jobID  string
	tenant string
}

func (ri *requestInfo) snapshot() (jobID, tenant string) {
	if ri == nil {
		return "", ""
	}
	ri.mu.Lock()
	defer ri.mu.Unlock()
	return ri.jobID, ri.tenant
}

// withRequestInfo installs an annotation slot if the request has none.
func withRequestInfo(r *http.Request) (*http.Request, *requestInfo) {
	if ri := requestInfoOf(r); ri != nil {
		return r, ri
	}
	ri := &requestInfo{}
	return r.WithContext(context.WithValue(r.Context(), requestInfoKey, ri)), ri
}

func requestInfoOf(r *http.Request) *requestInfo {
	ri, _ := r.Context().Value(requestInfoKey).(*requestInfo)
	return ri
}

// AnnotateJob records the job ID a request resolved to, for the access
// log and the tracing middleware (which keys the request's server span
// into that job's timeline). Safe to call with any request; outside
// the middleware stack it is a no-op.
func AnnotateJob(r *http.Request, jobID string) {
	ri := requestInfoOf(r)
	if ri == nil || jobID == "" {
		return
	}
	ri.mu.Lock()
	ri.jobID = jobID
	ri.mu.Unlock()
}

// annotateTenant records the resolved tenant name (WithQuotas).
func annotateTenant(r *http.Request, name string) {
	ri := requestInfoOf(r)
	if ri == nil || name == "" {
		return
	}
	ri.mu.Lock()
	ri.tenant = name
	ri.mu.Unlock()
}

// TraceContext returns the request's span context — the server span
// WithTracing opened — for parenting child spans and stamping outbound
// proxy headers. Invalid (zero) outside WithTracing.
func TraceContext(r *http.Request) trace.SpanContext {
	return trace.FromContext(r.Context())
}

// WithTracing opens one server span per request: the inbound
// X-Thermflow-Trace header (strictly sanitized — a malformed header is
// discarded, never echoed) contributes the trace ID and parent span,
// else a fresh trace starts here. The response carries the server
// span's identity back in the same header, the request context carries
// it inward (TraceContext), and — when an inner handler annotated the
// request with a job ID — the finished server span is recorded into
// that job's timeline in rec. rec may be nil: identity still
// propagates; nothing is recorded.
func WithTracing(rec *trace.Recorder) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			parent, _ := trace.ParseHeader(r.Header.Get(TraceHeader))
			sc := trace.SpanContext{TraceID: parent.TraceID, SpanID: trace.NewSpanID()}
			if parent.TraceID == "" {
				sc.TraceID = trace.NewTraceID()
			}
			w.Header().Set(TraceHeader, sc.Header())
			r = r.WithContext(trace.NewContext(r.Context(), sc))
			r, ri := withRequestInfo(r)

			sw := &statusWriter{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(sw, r)

			jobID, _ := ri.snapshot()
			if jobID == "" || rec == nil {
				return
			}
			if sw.status == 0 {
				sw.status = http.StatusOK
			}
			rec.Record(jobID, trace.Span{
				TraceID: sc.TraceID, SpanID: sc.SpanID, Parent: parent.SpanID,
				Name: "http.server", Start: start, Duration: time.Since(start),
				Attrs: map[string]string{
					"method": r.Method,
					"route":  routeOf(r),
					"status": http.StatusText(sw.status),
					"req_id": RequestID(r),
				},
			})
		})
	}
}

// WireSpan converts a recorded span to its wire form.
func WireSpan(sp trace.Span) api.TraceSpan {
	return api.TraceSpan{
		TraceID: sp.TraceID, SpanID: sp.SpanID, ParentID: sp.Parent,
		Name: sp.Name, Service: sp.Service,
		StartUS:    sp.Start.UnixMicro(),
		DurationUS: sp.Duration.Microseconds(),
		Attrs:      sp.Attrs,
	}
}

// SpanFromWire converts a wire span back to the recorder form — the
// gateway uses it to stitch backend-reported region steps into its own
// coordinator timeline.
func SpanFromWire(ws api.TraceSpan) trace.Span {
	return trace.Span{
		TraceID: ws.TraceID, SpanID: ws.SpanID, Parent: ws.ParentID,
		Name: ws.Name, Service: ws.Service,
		Start:    time.UnixMicro(ws.StartUS),
		Duration: time.Duration(ws.DurationUS) * time.Microsecond,
		Attrs:    ws.Attrs,
	}
}

// TraceResponseFor renders a timeline as its wire document.
func TraceResponseFor(tl trace.Timeline, service string) api.TraceResponse {
	out := api.TraceResponse{
		JobID: tl.Key, TraceID: tl.TraceID, Service: service,
		Spans:   make([]api.TraceSpan, 0, len(tl.Spans)),
		Dropped: tl.Dropped,
	}
	for _, sp := range tl.Spans {
		out.Spans = append(out.Spans, WireSpan(sp))
	}
	return out
}

// handleJobTrace is GET /v2/jobs/{id}/trace: the job's recorded
// timeline. 404 carries a distinct message for "job known, trace aged
// out" — timelines are bounded in-memory state, not durable job state.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tl, ok := s.trace.Timeline(id)
	if !ok {
		if _, err := s.jobs.Get(id); err == nil {
			WriteErr(w, http.StatusNotFound,
				"no trace recorded for job %s (timelines are bounded in-memory state)", id)
			return
		}
		WriteErr(w, http.StatusNotFound, "no trace for unknown job %s", id)
		return
	}
	AnnotateJob(r, id)
	WriteJSON(w, http.StatusOK, TraceResponseFor(tl, s.trace.Service()))
}
