package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"thermflow"
	"thermflow/api"
	"thermflow/client"
)

func newTestServer(t *testing.T, workers int) (*httptest.Server, *thermflow.Batch) {
	t.Helper()
	b := thermflow.NewBatch(workers)
	ts := httptest.NewServer(New(b))
	t.Cleanup(ts.Close)
	return ts, b
}

// post sends raw JSON and returns the status code and body.
func post(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: reading body: %v", url, err)
	}
	return resp.StatusCode, string(b)
}

func TestMalformedJSONIs400(t *testing.T) {
	ts, _ := newTestServer(t, 1)
	for _, body := range []string{"{not json", "", "[1,2,3", `{"kernel": }`} {
		status, _ := post(t, ts.URL+"/v1/compile", body)
		if status != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400", body, status)
		}
	}
}

func TestUnknownNamesAre422(t *testing.T) {
	ts, _ := newTestServer(t, 1)
	cases := []struct{ name, body string }{
		{"policy", `{"kernel":"matmul","options":{"policy":"hottest-first"}}`},
		{"solver", `{"kernel":"matmul","options":{"solver":"quantum"}}`},
		{"layout", `{"kernel":"matmul","options":{"layout":"spiral"}}`},
		{"join", `{"kernel":"matmul","options":{"join":"min"}}`},
		{"kernel", `{"kernel":"no-such-kernel"}`},
		{"no program", `{}`},
		{"both", `{"kernel":"matmul","program":"func f() {\nentry:\n  ret\n}"}`},
		{"bad IR", `{"program":"this is not IR"}`},
	}
	for _, tc := range cases {
		status, body := post(t, ts.URL+"/v1/compile", tc.body)
		if status != http.StatusUnprocessableEntity {
			t.Errorf("%s: status = %d, want 422 (body %s)", tc.name, status, body)
		}
		var e api.ErrorResponse
		if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q not an ErrorResponse", tc.name, body)
		}
	}

	// The same validation guards the batch endpoint, before the stream
	// starts.
	status, _ := post(t, ts.URL+"/v1/batch",
		`{"jobs":[{"kernel":"matmul"},{"kernel":"matmul","options":{"policy":"nope"}}]}`)
	if status != http.StatusUnprocessableEntity {
		t.Errorf("batch with bad job: status = %d, want 422", status)
	}
}

func TestSpillBudgetIs422(t *testing.T) {
	ts, _ := newTestServer(t, 1)
	start := time.Now()
	status, body := post(t, ts.URL+"/v1/compile", `{"kernel":"matmul","options":{"num_regs":1}}`)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("NumRegs 1: status = %d, want 422 (body %s)", status, body)
	}
	if !strings.Contains(body, "budget") {
		t.Errorf("NumRegs 1: error body %q does not mention the budget", body)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("NumRegs 1 took %v; the budget should bound it", elapsed)
	}
}

func TestSecondIdenticalRequestIsCached(t *testing.T) {
	ts, _ := newTestServer(t, 2)
	cl := client.New(ts.URL, nil)
	req := api.CompileRequest{Kernel: "dot", Options: thermflow.Options{Policy: thermflow.Chessboard}}

	first, err := cl.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first compile reported Cached")
	}
	second, err := cl.Compile(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("second identical compile not Cached")
	}
	if first.PeakTemp != second.PeakTemp || !second.Converged {
		t.Errorf("cached result diverges: %v vs %v", first.PeakTemp, second.PeakTemp)
	}
	// A different program with the same options must not share.
	other, err := cl.Compile(context.Background(),
		api.CompileRequest{Kernel: "fib", Options: req.Options})
	if err != nil {
		t.Fatal(err)
	}
	if other.Cached {
		t.Error("different kernel reported Cached")
	}
}

func TestCacheResetZeroesStats(t *testing.T) {
	ts, _ := newTestServer(t, 2)
	cl := client.New(ts.URL, nil)
	ctx := context.Background()
	req := api.CompileRequest{Kernel: "dot"}
	for i := 0; i < 3; i++ {
		if _, err := cl.Compile(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	st, err := cl.CacheStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Misses != 1 || st.Hits != 2 {
		t.Errorf("stats before reset = %+v, want 1 miss / 2 hits", st)
	}
	st, err = cl.ResetCache(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits != 0 || st.Misses != 0 || st.Panics != 0 {
		t.Errorf("stats after reset = %+v, want all zero", st)
	}
	// The next identical request recompiles: the cache is really gone.
	resp, err := cl.Compile(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Error("compile after reset reported Cached")
	}
}

func TestBatchStreamsOneItemPerJob(t *testing.T) {
	ts, _ := newTestServer(t, 2)
	cl := client.New(ts.URL, nil)
	jobs := []api.CompileRequest{
		{Kernel: "dot"},
		{Kernel: "fib"},
		{Kernel: "dot"}, // duplicate of job 0: shares its result
		{Kernel: "dot", Options: thermflow.Options{Policy: thermflow.Chessboard}},
	}
	var mu sync.Mutex
	got := make(map[int]api.BatchItem)
	err := cl.CompileBatch(context.Background(), jobs, func(item api.BatchItem) {
		mu.Lock()
		got[item.Index] = item
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(jobs) {
		t.Fatalf("received %d items, want %d", len(got), len(jobs))
	}
	for i := range jobs {
		item, ok := got[i]
		if !ok {
			t.Fatalf("no item for job %d", i)
		}
		if item.Error != "" || item.Result == nil {
			t.Fatalf("job %d failed: %s", i, item.Error)
		}
	}
	if !got[2].Result.Cached {
		t.Error("duplicate job not served from cache")
	}
	if got[2].Result.PeakTemp != got[0].Result.PeakTemp {
		t.Error("duplicate job's result diverges from its representative")
	}
	if got[3].Result.Cached {
		t.Error("distinct options wrongly shared a cache entry")
	}
}

// slowJobs builds n distinct jobs that each take tens of milliseconds:
// cold-start analysis at a tight δ, with a per-job δ perturbation so no
// two share a cache key.
func slowJobs(n int) []api.CompileRequest {
	jobs := make([]api.CompileRequest, n)
	for i := range jobs {
		jobs[i] = api.CompileRequest{
			Kernel: "matmul",
			Options: thermflow.Options{
				NoWarmStart: true,
				Delta:       0.0002 + float64(i)*1e-6,
				MaxIter:     32768,
				Kappa:       1,
			},
		}
	}
	return jobs
}

func TestClientDisconnectCancelsRemainingJobs(t *testing.T) {
	// One worker makes the batch strictly sequential: when the client
	// disconnects after the first result, the jobs not yet started must
	// be skipped, not compiled.
	ts, b := newTestServer(t, 1)
	cl := client.New(ts.URL, nil)
	const n = 8

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := cl.CompileBatch(ctx, slowJobs(n), func(item api.BatchItem) {
		cancel() // disconnect after the first streamed result
	})
	if err == nil {
		t.Fatal("cancelled batch stream returned nil error")
	}

	// Wait for the server side to drain, then check how much work ran.
	deadline := time.Now().Add(10 * time.Second)
	var prev thermflow.BatchStats
	stable := 0
	for time.Now().Before(deadline) {
		st := b.Stats()
		if st == prev {
			stable++
			if stable >= 3 {
				break
			}
		} else {
			stable = 0
			prev = st
		}
		time.Sleep(50 * time.Millisecond)
	}
	if prev.Misses >= n {
		t.Errorf("all %d jobs compiled despite client disconnect (misses = %d)", n, prev.Misses)
	}
	t.Logf("misses after disconnect: %d of %d", prev.Misses, n)
}

func TestKernelsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t, 1)
	cl := client.New(ts.URL, nil)
	kernels, err := cl.Kernels(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(kernels) == 0 {
		t.Fatal("no kernels listed")
	}
	seen := make(map[string]bool)
	for _, k := range kernels {
		if k.Name == "" || k.Instrs <= 0 || k.Blocks <= 0 {
			t.Errorf("malformed kernel entry %+v", k)
		}
		seen[k.Name] = true
	}
	if !seen["matmul"] {
		t.Error("matmul missing from kernel list")
	}
}

func TestConcurrentIdenticalRequestsSingleFlight(t *testing.T) {
	// Many clients asking for the same configuration at once must
	// produce exactly one compilation (single-flight), with everyone
	// else sharing it.
	ts, b := newTestServer(t, 4)
	cl := client.New(ts.URL, nil)
	req := api.CompileRequest{Kernel: "matmul", Options: thermflow.Options{
		NoWarmStart: true, Delta: 0.0005, MaxIter: 32768, Kappa: 1,
	}}
	const n = 6
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = cl.Compile(context.Background(), req)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if st := b.Stats(); st.Misses != 1 {
		t.Errorf("misses = %d, want 1 (single-flight)", st.Misses)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts, _ := newTestServer(t, 1)
	resp, err := http.Get(ts.URL + "/v1/compile")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/compile: status = %d, want 405", resp.StatusCode)
	}
}
