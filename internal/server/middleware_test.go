package server

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"thermflow"
)

// authedServer wraps a full server in the production middleware order.
func authedServer(t *testing.T, mw ...Middleware) *httptest.Server {
	t.Helper()
	srv := New(thermflow.NewBatch(1))
	ts := httptest.NewServer(Chain(srv, mw...))
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts
}

func doReq(t *testing.T, method, url, token string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// Requests without a valid bearer token are 401 on every route;
// valid tokens pass through to real handlers.
func TestAuthMiddleware(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tokens")
	if err := os.WriteFile(path,
		[]byte("# ops tokens\nsecret-a\n\nsecret-b\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	tokens, err := LoadTokenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ts := authedServer(t, WithAuth(tokens))

	for _, token := range []string{"", "wrong", "secret-a-longer"} {
		resp := doReq(t, http.MethodGet, ts.URL+"/v1/kernels", token)
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("token %q: status = %d, want 401", token, resp.StatusCode)
		}
		if resp.Header.Get("WWW-Authenticate") == "" {
			t.Errorf("token %q: missing WWW-Authenticate challenge", token)
		}
	}
	for _, token := range []string{"secret-a", "secret-b"} {
		resp := doReq(t, http.MethodGet, ts.URL+"/v1/kernels", token)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("token %q: status = %d, want 200", token, resp.StatusCode)
		}
	}
}

func TestLoadTokenFileRejectsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tokens")
	if err := os.WriteFile(path, []byte("\n# only comments\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTokenFile(path); err == nil {
		t.Error("empty token file accepted")
	}
	if _, err := LoadTokenFile(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Error("missing token file accepted")
	}
}

// The token bucket: a burst is admitted, the next request is 429 with
// Retry-After, and refill readmits — the satellite's refill property,
// deterministic under a fake clock.
func TestRateLimitBurstAndRefill(t *testing.T) {
	clk := struct {
		mu  sync.Mutex
		now time.Time
	}{now: time.Unix(1_700_000_000, 0)}
	clock := func() time.Time {
		clk.mu.Lock()
		defer clk.mu.Unlock()
		return clk.now
	}
	advance := func(d time.Duration) {
		clk.mu.Lock()
		clk.now = clk.now.Add(d)
		clk.mu.Unlock()
	}

	ts := authedServer(t, WithRateLimit(1, 2, false, clock))
	get := func() *http.Response { return doReq(t, http.MethodGet, ts.URL+"/v1/cache", "") }

	for i := 0; i < 2; i++ {
		if resp := get(); resp.StatusCode != http.StatusOK {
			t.Fatalf("burst request %d: status = %d", i, resp.StatusCode)
		}
	}
	resp := get()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-burst status = %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want a positive integer", ra)
	}
	body, _ := io.ReadAll(resp.Body)
	if !bytes.Contains(body, []byte("rate limit")) {
		t.Errorf("429 body %q does not explain itself", body)
	}

	// One second refills one token: exactly one more request passes.
	advance(time.Second)
	if resp := get(); resp.StatusCode != http.StatusOK {
		t.Errorf("post-refill status = %d, want 200", resp.StatusCode)
	}
	if resp := get(); resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("second post-refill status = %d, want 429 (only one token refilled)", resp.StatusCode)
	}
}

// With byToken (behind auth), clients are keyed independently: one
// tenant's burst does not charge another's bucket.
func TestRateLimitPerClient(t *testing.T) {
	ts := authedServer(t, WithRateLimit(0.001, 1, true, nil))
	if resp := doReq(t, http.MethodGet, ts.URL+"/v1/cache", "tenant-a"); resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant-a first request: %d", resp.StatusCode)
	}
	if resp := doReq(t, http.MethodGet, ts.URL+"/v1/cache", "tenant-a"); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("tenant-a second request: %d, want 429", resp.StatusCode)
	}
	if resp := doReq(t, http.MethodGet, ts.URL+"/v1/cache", "tenant-b"); resp.StatusCode != http.StatusOK {
		t.Errorf("tenant-b charged for tenant-a's burst: %d", resp.StatusCode)
	}
}

// Without auth (byToken false), an unvalidated Authorization header
// must NOT mint a fresh bucket — regression for the limiter bypass
// where each request carried a new random token.
func TestRateLimitIgnoresUnvalidatedTokens(t *testing.T) {
	ts := authedServer(t, WithRateLimit(0.001, 2, false, nil))
	statuses := make(map[int]int)
	for i := 0; i < 4; i++ {
		resp := doReq(t, http.MethodGet, ts.URL+"/v1/cache", fmt.Sprintf("fresh-token-%d", i))
		statuses[resp.StatusCode]++
	}
	if statuses[http.StatusTooManyRequests] == 0 {
		t.Errorf("rotating unvalidated tokens bypassed the rate limit: %v", statuses)
	}
	if statuses[http.StatusOK] != 2 {
		t.Errorf("burst admitted %d, want 2: %v", statuses[http.StatusOK], statuses)
	}
}

// Request IDs: generated when absent, echoed when supplied, sanitized
// when hostile; the access log carries them.
func TestRequestIDAndAccessLog(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(lockedWriter{&mu, &buf}, nil))
	ts := authedServer(t, WithRequestID(), WithAccessLog(logger))

	resp := doReq(t, http.MethodGet, ts.URL+"/v1/cache", "")
	generated := resp.Header.Get(RequestIDHeader)
	if generated == "" {
		t.Error("no request ID generated")
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/cache", nil)
	req.Header.Set(RequestIDHeader, "trace-42")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get(RequestIDHeader); got != "trace-42" {
		t.Errorf("supplied request ID not echoed: %q", got)
	}

	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/v1/cache", nil)
	req.Header.Set(RequestIDHeader, "evil\tid")
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if got := resp3.Header.Get(RequestIDHeader); strings.Contains(got, "evil") {
		t.Errorf("hostile request ID echoed: %q", got)
	}

	mu.Lock()
	logs := buf.String()
	mu.Unlock()
	if !strings.Contains(logs, `"req_id":"trace-42"`) || !strings.Contains(logs, `"status":200`) {
		t.Errorf("access log missing fields:\n%s", logs)
	}
	if !strings.Contains(logs, `"path":"/v1/cache"`) {
		t.Errorf("access log missing path:\n%s", logs)
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// The full production chain composes: an authed, rate-limited,
// logged request still compiles, and the NDJSON batch stream flushes
// through the logging wrapper.
func TestMiddlewareChainEndToEnd(t *testing.T) {
	tokens := NewTokenSet("tok")
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(lockedWriter{&mu, &buf}, nil))
	ts := authedServer(t,
		WithRequestID(),
		WithAccessLog(logger),
		WithBodyLimit(MaxBodyBytes),
		WithAuth(tokens),
		WithRateLimit(1000, 1000, true, nil),
	)

	body := strings.NewReader(`{"jobs":[{"kernel":"dot"},{"kernel":"fir"}]}`)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v2/batch", body)
	req.Header.Set("Authorization", "Bearer tok")
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch through the chain: status = %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if lines := bytes.Count(bytes.TrimSpace(data), []byte("\n")) + 1; lines != 2 {
		t.Errorf("streamed %d lines, want 2:\n%s", lines, data)
	}
	mu.Lock()
	logs := buf.String()
	mu.Unlock()
	if !strings.Contains(logs, `"path":"/v2/batch"`) {
		t.Errorf("batch request not logged:\n%s", logs)
	}
}

// An unauthenticated probe must not reach the handlers even when rate
// limiting sits behind auth in the chain.
func TestAuthBeforeHandlers(t *testing.T) {
	ts := authedServer(t, WithAuth(NewTokenSet("tok")), WithRateLimit(100, 100, true, nil))
	resp := doReq(t, http.MethodDelete, ts.URL+"/v1/cache", "")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unauthenticated DELETE /v1/cache: %d, want 401", resp.StatusCode)
	}
}

// Token rotation: Reload swaps the accepted set atomically — the old
// token stops authenticating, the new one starts — and a request in
// flight when the rotation happens completes under the credentials it
// entered with.
func TestTokenSourceRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tokens")
	if err := os.WriteFile(path, []byte("old-token\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	src, err := OpenTokenSource(path)
	if err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/slow" {
			once.Do(func() { close(entered) })
			<-release
		}
		w.WriteHeader(http.StatusOK)
	})
	ts := httptest.NewServer(Chain(slow, WithAuth(src)))
	defer ts.Close()

	if got := doReq(t, http.MethodGet, ts.URL+"/", "old-token").StatusCode; got != http.StatusOK {
		t.Fatalf("old token before rotation: %d, want 200", got)
	}

	// Park a request mid-handler, authorized under the old token.
	inflight := make(chan int, 1)
	go func() {
		inflight <- doReq(t, http.MethodGet, ts.URL+"/slow", "old-token").StatusCode
	}()
	<-entered

	// Rotate while it is in flight.
	if err := os.WriteFile(path, []byte("new-token\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := src.Reload(); err != nil {
		t.Fatal(err)
	}

	if got := doReq(t, http.MethodGet, ts.URL+"/", "old-token").StatusCode; got != http.StatusUnauthorized {
		t.Fatalf("old token after rotation: %d, want 401", got)
	}
	if got := doReq(t, http.MethodGet, ts.URL+"/", "new-token").StatusCode; got != http.StatusOK {
		t.Fatalf("new token after rotation: %d, want 200", got)
	}

	// The in-flight request was not dropped by the rotation.
	close(release)
	select {
	case got := <-inflight:
		if got != http.StatusOK {
			t.Fatalf("in-flight request finished %d, want 200", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never finished")
	}
}

// A reload that fails — here: a file that authorizes nobody — must
// keep the previous set in force.
func TestTokenSourceReloadFailureKeepsOldSet(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tokens")
	if err := os.WriteFile(path, []byte("keep-token\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	src, err := OpenTokenSource(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte("# only comments\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := src.Reload(); err == nil {
		t.Fatal("reload of an empty token file did not fail")
	}
	if !src.Allow("keep-token") {
		t.Fatal("failed reload dropped the previous token set")
	}
}
