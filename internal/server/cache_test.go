package server

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"thermflow"
	"thermflow/api"
	"thermflow/client"
)

func newDiskServer(t *testing.T, dir string, workers int) (*httptest.Server, *thermflow.Batch) {
	t.Helper()
	b, err := thermflow.NewBatchConfig(thermflow.BatchConfig{Workers: workers, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(b))
	t.Cleanup(ts.Close)
	return ts, b
}

// GET /v1/cache must expose both tiers; without -cache-dir the disk
// tier reports disabled and all-zero.
func TestCacheStatsReportTiers(t *testing.T) {
	ts, _ := newTestServer(t, 2)
	cl := client.New(ts.URL, nil)
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := cl.Compile(ctx, api.CompileRequest{Kernel: "dot"}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := cl.CacheStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.DiskEnabled {
		t.Error("memory-only server reports a disk tier")
	}
	if st.Disk != (api.TierStats{}) {
		t.Errorf("disk tier should be zero: %+v", st.Disk)
	}
	if st.Memory.Entries != 1 || st.Memory.Puts != 1 {
		t.Errorf("memory tier = %+v, want 1 entry / 1 put", st.Memory)
	}
	if st.Memory.Bytes <= 0 || st.Memory.CapBytes <= 0 {
		t.Errorf("memory tier sizes unset: %+v", st.Memory)
	}
	if st.Memory.Hits != 1 {
		t.Errorf("memory hits = %d, want 1 (the repeat)", st.Memory.Hits)
	}
}

// The warm-restart property end to end: a second server over the same
// cache directory serves the first server's results from disk.
func TestRestartedServerComesBackWarm(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	req := api.CompileRequest{Kernel: "matmul", Options: thermflow.Options{Policy: thermflow.Chessboard}}

	ts1, _ := newDiskServer(t, dir, 2)
	first, err := client.New(ts1.URL, nil).Compile(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("cold compile reported Cached")
	}
	ts1.Close()

	ts2, _ := newDiskServer(t, dir, 2)
	cl := client.New(ts2.URL, nil)
	second, err := cl.Compile(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("restarted server did not serve from disk")
	}
	if first.PeakTemp != second.PeakTemp || first.Converged != second.Converged ||
		first.Alloc.UsedRegs != second.Alloc.UsedRegs {
		t.Errorf("disk result diverged: %+v vs %+v", first, second)
	}
	st, err := cl.CacheStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !st.DiskEnabled || st.Disk.Hits != 1 {
		t.Errorf("disk tier after warm hit = %+v, want 1 hit", st.Disk)
	}
	// Third request: the promoted entry now hits in memory.
	third, err := cl.Compile(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !third.Cached {
		t.Error("promoted entry missed")
	}
	if st, _ := cl.CacheStats(ctx); st.Memory.Hits != 1 || st.Disk.Hits != 1 {
		t.Errorf("promotion stats = mem %d / disk %d hits, want 1 / 1", st.Memory.Hits, st.Disk.Hits)
	}
}

// DELETE /v1/cache must report zeroed stats for both tiers, and the
// disk entries must really be gone: a restart over the same directory
// stays cold.
func TestCacheResetZeroesBothTiers(t *testing.T) {
	dir := t.TempDir()
	ts, _ := newDiskServer(t, dir, 2)
	cl := client.New(ts.URL, nil)
	ctx := context.Background()
	for _, kernel := range []string{"dot", "fib"} {
		if _, err := cl.Compile(ctx, api.CompileRequest{Kernel: kernel}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := cl.ResetCache(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hits != 0 || st.Misses != 0 || st.Panics != 0 {
		t.Errorf("top-level stats after reset = %+v, want zeros", st)
	}
	wantMem := api.TierStats{CapBytes: st.Memory.CapBytes}
	if st.Memory != wantMem {
		t.Errorf("memory tier after reset = %+v, want zeroed", st.Memory)
	}
	wantDisk := api.TierStats{CapBytes: st.Disk.CapBytes}
	if st.Disk != wantDisk {
		t.Errorf("disk tier after reset = %+v, want zeroed", st.Disk)
	}
	// GET agrees with the DELETE response.
	st2, err := cl.CacheStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Memory != wantMem || st2.Disk != wantDisk {
		t.Errorf("GET after DELETE = %+v / %+v, want zeroed", st2.Memory, st2.Disk)
	}
	ts.Close()

	ts2, _ := newDiskServer(t, dir, 2)
	resp, err := client.New(ts2.URL, nil).Compile(ctx, api.CompileRequest{Kernel: "dot"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached {
		t.Error("reset disk entries survived a restart")
	}
}

// Reset racing a live batch: the DELETE returns zeroed tiers while the
// stream is still being served, every job still completes, and the
// server stays consistent. (The deterministic single-job variant lives
// in internal/batch; this exercises the full HTTP path, and -race
// guards the concurrency.)
func TestCacheResetWhileBatchInFlight(t *testing.T) {
	ts, _ := newTestServer(t, 2)
	cl := client.New(ts.URL, nil)
	ctx := context.Background()

	jobs := make([]api.CompileRequest, 40)
	for i := range jobs {
		// Distinct keys: vary the register count so every job compiles.
		jobs[i] = api.CompileRequest{Kernel: "matmul", Options: thermflow.Options{NumRegs: 16 + i}}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	streamed := 0
	var streamErr error
	go func() {
		defer wg.Done()
		streamErr = cl.CompileBatch(ctx, jobs, func(item api.BatchItem) {
			if item.Error != "" {
				streamErr = fmt.Errorf("job %d: %s", item.Index, item.Error)
			}
			streamed++
		})
	}()

	st, err := cl.ResetCache(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Hits stay zero through the whole run (every job key is distinct),
	// so a non-zero hit count here means the reset failed to zero the
	// counters. Misses/Puts are deliberately not asserted: jobs
	// starting after the reset may already have bumped them, which is
	// correct behaviour.
	if st.Hits != 0 || st.Memory.Hits != 0 || st.Disk.Hits != 0 {
		t.Errorf("mid-flight reset returned non-zero hit counters: %+v", st)
	}
	wg.Wait()
	if streamErr != nil {
		t.Fatalf("batch across a reset: %v", streamErr)
	}
	if streamed != len(jobs) {
		t.Fatalf("streamed %d of %d results across a reset", streamed, len(jobs))
	}
}
