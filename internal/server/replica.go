package server

import (
	"encoding/json"
	"log"
	"sync"

	"thermflow/api"
	"thermflow/internal/joblog"
)

// The replica shelf: terminal job statuses pushed here by a fronting
// gateway because this backend is a ring successor of the job's owner.
// If the owner dies for good, the gateway's status reads fall through
// to the successors and are answered from this shelf — the job ID
// keeps resolving even though this backend never ran the job. Entries
// are stored as the owner's verbatim JobStatus bytes (re-encoding a
// document another process produced could only lose information) and
// served with the ReplicaHeader so operators and smoke tests can tell
// a replica answer from an owner answer.
//
// The shelf is joblog-backed when a log is supplied: each accepted
// replica appends one record, and the shelf snapshots-and-truncates on
// the same cadence as the job registry, so replicas survive a restart
// of the successor too.

// ReplicaHeader marks a job status served from the replica shelf
// rather than the local registry.
const ReplicaHeader = api.ReplicaHeader

// DefaultReplicaMax bounds retained replicas when Config leaves it
// zero.
const DefaultReplicaMax = 4096

// replica is one shelved status.
type replica struct {
	ID    string          `json:"id"`
	State string          `json:"state"`
	Body  json.RawMessage `json:"body"` // the owner's JobStatus, verbatim
}

const recReplica uint32 = 1

// ReplicaStore shelves replicated terminal job statuses. Safe for
// concurrent use.
type ReplicaStore struct {
	mu    sync.Mutex
	m     map[string]replica
	order []string // insertion order, oldest first, for cap eviction
	max   int
	log   *joblog.Log
}

// NewReplicaStore builds a shelf retaining up to max entries (<= 0
// selects DefaultReplicaMax). A non-nil log makes the shelf durable;
// pass the Recovery from joblog.Open to replay a previous process's
// shelf.
func NewReplicaStore(max int, l *joblog.Log, rec *joblog.Recovery) *ReplicaStore {
	if max <= 0 {
		max = DefaultReplicaMax
	}
	s := &ReplicaStore{m: make(map[string]replica), max: max, log: l}
	if l != nil && rec != nil && !rec.Empty() {
		if rec.Snapshot != nil {
			var shelf []replica
			if err := json.Unmarshal(rec.Snapshot, &shelf); err == nil {
				for _, r := range shelf {
					s.putLocked(r)
				}
			}
		}
		for _, wr := range rec.Records {
			var r replica
			if err := json.Unmarshal(wr.Payload, &r); err == nil && r.ID != "" {
				s.putLocked(r)
			}
		}
		s.snapshotLocked()
		if n := len(s.m); n > 0 {
			log.Printf("server: replayed %d job replicas from log", n)
		}
	}
	return s
}

// Put shelves one replicated status (idempotent per ID; a re-push
// overwrites, since a terminal status never regresses).
func (s *ReplicaStore) Put(id, state string, body []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := replica{ID: id, State: state, Body: append([]byte(nil), body...)}
	s.putLocked(r)
	if s.log == nil {
		return
	}
	payload, err := json.Marshal(r)
	if err == nil {
		err = s.log.Append(recReplica, payload)
	}
	if err != nil {
		log.Printf("server: replica wal append: %v", err)
		return
	}
	if s.log.Records() >= DefaultSnapshotEvery {
		s.snapshotLocked()
	}
}

// DefaultSnapshotEvery is the shelf's snapshot-and-truncate cadence.
const DefaultSnapshotEvery = 256

func (s *ReplicaStore) putLocked(r replica) {
	if _, ok := s.m[r.ID]; !ok {
		s.order = append(s.order, r.ID)
		for len(s.order) > s.max {
			evict := s.order[0]
			s.order = s.order[1:]
			delete(s.m, evict)
		}
	}
	s.m[r.ID] = r
}

func (s *ReplicaStore) snapshotLocked() {
	shelf := make([]replica, 0, len(s.order))
	for _, id := range s.order {
		if r, ok := s.m[id]; ok {
			shelf = append(shelf, r)
		}
	}
	payload, err := json.Marshal(shelf)
	if err == nil {
		err = s.log.Snapshot(payload)
	}
	if err != nil {
		log.Printf("server: replica wal snapshot: %v", err)
	}
}

// Get returns the shelved status bytes and state for id.
func (s *ReplicaStore) Get(id string) (body []byte, state string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.m[id]
	if !ok {
		return nil, "", false
	}
	return r.Body, r.State, true
}

// Len reports the shelf's current size.
func (s *ReplicaStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}
