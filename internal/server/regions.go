package server

import (
	"net/http"
	"strconv"
	"sync"
	"time"

	"thermflow"
	"thermflow/api"
	"thermflow/internal/trace"
)

// This file is the backend half of the distributed region solve: the
// gateway coordinates (partitions, owns boundary states, drives
// rounds); each backend holds one thermflow.RegionSession per
// (job, region) and advances it on demand. Sessions rebuild
// deterministically from the job spec, so the store is a cache, not a
// source of truth — eviction or a restart costs a job restart
// (signalled by Restarted), never a wrong answer.

// DefaultRegionSessions bounds the per-backend region-session store.
const DefaultRegionSessions = 64

// regionKey names one session: a job may spread several regions onto
// one backend, and each needs its own interior state.
type regionKey struct {
	jobID  string
	region int
}

// regionEntry is one stored session plus its serializing mutex — the
// session itself is not safe for concurrent use, but distinct regions
// on one backend step in parallel.
type regionEntry struct {
	mu   sync.Mutex
	sess *thermflow.RegionSession
}

// regionStore is an LRU of live region sessions.
type regionStore struct {
	mu      sync.Mutex
	cap     int
	entries map[regionKey]*regionEntry
	order   []regionKey // LRU, oldest first
}

func newRegionStore(capacity int) *regionStore {
	if capacity <= 0 {
		capacity = DefaultRegionSessions
	}
	return &regionStore{cap: capacity, entries: make(map[regionKey]*regionEntry)}
}

// touchLocked moves k to the back of the eviction order.
func (st *regionStore) touchLocked(k regionKey) {
	for i, o := range st.order {
		if o == k {
			st.order = append(st.order[:i], st.order[i+1:]...)
			break
		}
	}
	st.order = append(st.order, k)
}

// get returns the entry for k, reporting whether it already existed.
// When absent (or reset is set) a fresh empty entry is installed; the
// caller builds the session under the entry's own mutex so one slow
// construction never blocks the store.
func (st *regionStore) get(k regionKey, reset bool) (*regionEntry, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.entries[k]
	if ok && !reset {
		st.touchLocked(k)
		return e, true
	}
	e = &regionEntry{}
	if _, existed := st.entries[k]; !existed {
		for len(st.entries) >= st.cap && len(st.order) > 0 {
			victim := st.order[0]
			st.order = st.order[1:]
			delete(st.entries, victim)
		}
	}
	st.entries[k] = e
	st.touchLocked(k)
	return e, false
}

// peek returns the entry for k only if present, without admitting
// anything.
func (st *regionStore) peek(k regionKey) (*regionEntry, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.entries[k]
	if ok {
		st.touchLocked(k)
	}
	return e, ok
}

// drop removes k (after a collect — the job is done with the session).
func (st *regionStore) drop(k regionKey) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.entries, k)
	for i, o := range st.order {
		if o == k {
			st.order = append(st.order[:i], st.order[i+1:]...)
			break
		}
	}
}

// buildRegionSession decodes the spec and constructs the session.
func buildRegionSession(spec []byte) (*thermflow.RegionSession, error) {
	s, err := thermflow.DecodeJobSpec(spec)
	if err != nil {
		return nil, err
	}
	return thermflow.NewRegionSession(s)
}

// handleRegionSolve is POST /v2/regions/solve: install the provided
// boundary states, advance the region one step (a single sweep in
// exact mode, a local fixpoint in slack mode) and return the exported
// boundary states. Round 1 always (re)builds the session; a later
// round that finds none rebuilds and reports Restarted so the
// coordinator restarts the job.
func (s *Server) handleRegionSolve(w http.ResponseWriter, r *http.Request) {
	var req api.RegionSolveRequest
	if !decode(w, r, &req) {
		return
	}
	if req.JobID == "" || req.Region < 0 || req.Round < 1 {
		WriteErr(w, http.StatusUnprocessableEntity,
			"region solve needs job_id, region >= 0 and round >= 1")
		return
	}
	k := regionKey{jobID: req.JobID, region: req.Region}
	// Two timed stretches feed the step's trace span: acquiring the
	// serialized session (plus any rebuild) is queue-ish time, the sweep
	// itself is solve time. queue_us carries the former so the
	// coordinator's stitched timeline can separate contention from work.
	start := time.Now()
	e, existed := s.regions.get(k, req.Round == 1)
	e.mu.Lock()
	defer e.mu.Unlock()
	restarted := false
	if e.sess == nil {
		sess, err := buildRegionSession(req.Spec)
		if err != nil {
			s.regions.drop(k)
			WriteErr(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		e.sess = sess
		restarted = !existed && req.Round > 1
	}
	acquired := time.Now()
	if req.Region >= e.sess.NumRegions() {
		WriteErr(w, http.StatusUnprocessableEntity,
			"region %d out of range (partition has %d)", req.Region, e.sess.NumRegions())
		return
	}
	for _, bs := range req.Boundary {
		if err := e.sess.SetState(bs.Block, bs.State); err != nil {
			WriteErr(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
	}
	var resp api.RegionSolveResponse
	resp.Restarted = restarted
	if e.sess.Slack() > 0 {
		d, sweeps, err := e.sess.SolveRegionLocal(req.Region)
		if err != nil {
			WriteErr(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		resp.Delta, resp.Sweeps = d, sweeps
	} else {
		d, err := e.sess.SweepRegion(req.Region)
		if err != nil {
			WriteErr(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		resp.Delta, resp.Sweeps = d, 1
	}
	for _, b := range e.sess.OutputBlocks(req.Region) {
		resp.Boundary = append(resp.Boundary, api.RegionBlockState{Block: b, State: e.sess.State(b)})
	}
	if sc := trace.FromContext(r.Context()); sc.Valid() {
		sp := trace.Span{
			TraceID: sc.TraceID, SpanID: trace.NewSpanID(), Parent: sc.SpanID,
			Name: "region.solve", Start: start, Duration: time.Since(start),
			Attrs: map[string]string{
				"region":   strconv.Itoa(req.Region),
				"round":    strconv.Itoa(req.Round),
				"sweeps":   strconv.Itoa(resp.Sweeps),
				"queue_us": strconv.FormatInt(acquired.Sub(start).Microseconds(), 10),
			},
		}
		if restarted {
			sp.Attrs["restarted"] = "true"
		}
		s.trace.Record(req.JobID, sp)
		AnnotateJob(r, req.JobID)
		ws := WireSpan(sp)
		if ws.Service == "" {
			ws.Service = s.trace.Service()
		}
		resp.Span = &ws
	}
	WriteJSON(w, http.StatusOK, resp)
}

// handleRegionCollect is POST /v2/regions/collect: export the region's
// result fragment and release the session. A missing session means the
// converged interior state is gone — the fragment cannot be fabricated
// from the spec, so the response is Restarted and the coordinator
// re-runs the job.
func (s *Server) handleRegionCollect(w http.ResponseWriter, r *http.Request) {
	var req api.RegionCollectRequest
	if !decode(w, r, &req) {
		return
	}
	if req.JobID == "" || req.Region < 0 {
		WriteErr(w, http.StatusUnprocessableEntity, "region collect needs job_id and region >= 0")
		return
	}
	k := regionKey{jobID: req.JobID, region: req.Region}
	e, ok := s.regions.peek(k)
	if !ok {
		WriteJSON(w, http.StatusOK, api.RegionCollectResponse{Restarted: true})
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sess == nil || req.Region >= e.sess.NumRegions() {
		WriteJSON(w, http.StatusOK, api.RegionCollectResponse{Restarted: true})
		return
	}
	blockIn, instr, err := e.sess.Fragment(req.Region)
	if err != nil {
		WriteErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	s.regions.drop(k)
	WriteJSON(w, http.StatusOK, api.RegionCollectResponse{BlockIn: blockIn, Instr: instr})
}
