package server

import (
	"bufio"
	"context"
	"crypto/rand"
	"crypto/subtle"
	"encoding/hex"
	"fmt"
	"log"
	"log/slog"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"thermflow/internal/trace"
)

// This file is thermflowd's middleware stack: small composable
// http.Handler wrappers for the concerns that sit in front of every
// endpoint — request identity, access logging, bearer-token auth,
// per-client rate limiting, and body/deadline caps. The handlers
// themselves stay oblivious; cmd/thermflowd composes the chain from
// its flags (ROADMAP "server hardening for real traffic").

// Middleware wraps an http.Handler.
type Middleware func(http.Handler) http.Handler

// Chain applies middlewares around h, first-listed outermost — the
// order requests traverse them.
func Chain(h http.Handler, mw ...Middleware) http.Handler {
	for i := len(mw) - 1; i >= 0; i-- {
		h = mw[i](h)
	}
	return h
}

// ctxKey scopes this package's context values.
type ctxKey int

const requestIDKey ctxKey = iota

// RequestIDHeader is the wire header carrying the request ID.
const RequestIDHeader = "X-Request-Id"

// RequestID returns the request's ID ("" outside WithRequestID).
func RequestID(r *http.Request) string {
	id, _ := r.Context().Value(requestIDKey).(string)
	return id
}

// WithRequestID tags every request with an ID — the client's
// X-Request-Id if it sent one (capped, printable), a fresh random one
// otherwise — echoed on the response and available to inner handlers
// via RequestID, so one ID follows a request through access logs,
// error bodies and client retries.
func WithRequestID() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			id := sanitizeRequestID(r.Header.Get(RequestIDHeader))
			if id == "" {
				var buf [8]byte
				if _, err := rand.Read(buf[:]); err == nil {
					id = hex.EncodeToString(buf[:])
				}
			}
			w.Header().Set(RequestIDHeader, id)
			ctx := context.WithValue(r.Context(), requestIDKey, id)
			next.ServeHTTP(w, r.WithContext(ctx))
		})
	}
}

// sanitizeRequestID keeps client-supplied IDs loggable: printable
// ASCII, bounded length.
func sanitizeRequestID(id string) string {
	if len(id) > 64 {
		id = id[:64]
	}
	for _, c := range id {
		if c <= ' ' || c > '~' {
			return ""
		}
	}
	return id
}

// statusWriter records the status and bytes of a response while
// passing Flush through — the batch endpoints stream NDJSON and must
// keep flushing per item.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Hijack passes through for completeness (unused by thermflowd).
func (w *statusWriter) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	if h, ok := w.ResponseWriter.(http.Hijacker); ok {
		return h.Hijack()
	}
	return nil, nil, fmt.Errorf("server: underlying writer does not hijack")
}

// WithAccessLog writes one structured JSON record per request (msg
// "access"): request ID, trace and span IDs, client, method, path,
// status, bytes, duration, and — when inner layers resolved them — the
// tenant and job ID. Carrying the same trace ID the timeline recorder
// keys on makes the log the durable half of the tracing plane:
// timelines are bounded in-memory state, the log is what survives.
// logger nil selects a JSON handler on stderr.
func WithAccessLog(logger *slog.Logger) Middleware {
	if logger == nil {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			r, ri := withRequestInfo(r)
			sw := &statusWriter{ResponseWriter: w}
			start := time.Now()
			next.ServeHTTP(sw, r)
			if sw.status == 0 {
				sw.status = http.StatusOK
			}
			attrs := []slog.Attr{
				slog.String("req_id", RequestID(r)),
				slog.String("client", clientHost(r)),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Int64("bytes", sw.bytes),
				slog.Duration("dur", time.Since(start).Round(time.Microsecond)),
			}
			if sc := trace.FromContext(r.Context()); sc.Valid() {
				attrs = append(attrs,
					slog.String("trace_id", sc.TraceID),
					slog.String("span_id", sc.SpanID))
			}
			jobID, tenantName := ri.snapshot()
			if tenantName != "" {
				attrs = append(attrs, slog.String("tenant", tenantName))
			}
			if jobID != "" {
				attrs = append(attrs, slog.String("job_id", jobID))
			}
			logger.LogAttrs(r.Context(), slog.LevelInfo, "access", attrs...)
		})
	}
}

// clientHost is the request's peer address without the port.
func clientHost(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// TokenSet is a fixed set of accepted bearer tokens.
type TokenSet struct {
	tokens [][]byte
}

// NewTokenSet builds a set from literal tokens (empty ones dropped).
func NewTokenSet(tokens ...string) *TokenSet {
	ts := &TokenSet{}
	for _, t := range tokens {
		if t != "" {
			ts.tokens = append(ts.tokens, []byte(t))
		}
	}
	return ts
}

// LoadTokenFile reads a token set from path: one token per line,
// blank lines and #-comments ignored. An empty set is an error — an
// auth file that authorizes nobody is a misconfiguration, not a
// policy.
func LoadTokenFile(path string) (*TokenSet, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("server: auth token file: %w", err)
	}
	var tokens []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		tokens = append(tokens, line)
	}
	if len(tokens) == 0 {
		return nil, fmt.Errorf("server: auth token file %s holds no tokens", path)
	}
	return NewTokenSet(tokens...), nil
}

// Allow reports whether token is in the set, comparing constant-time
// against every member so the check leaks neither a match's position
// nor its prefix length.
func (ts *TokenSet) Allow(token string) bool {
	if ts == nil || token == "" {
		return false
	}
	b := []byte(token)
	ok := false
	for _, t := range ts.tokens {
		if subtle.ConstantTimeCompare(t, b) == 1 {
			ok = true
		}
	}
	return ok
}

// Authorizer decides whether a bearer token is accepted. *TokenSet is
// the fixed implementation; *TokenSource the file-backed reloadable
// one (SIGHUP rotation in thermflowd and thermflowgate).
type Authorizer interface {
	Allow(token string) bool
}

// TokenSource is a TokenSet bound to its file, swappable at runtime:
// Reload re-reads the file and atomically replaces the accepted set,
// so tokens rotate without a restart. Requests in flight are untouched
// — authorization happens once at request entry — and the very next
// request observes the new set: the old token stops authenticating,
// the new one starts.
type TokenSource struct {
	path string
	cur  atomic.Pointer[TokenSet]

	mu    sync.Mutex
	hooks []func(*TokenSet)
}

// OpenTokenSource loads the token file at path (see LoadTokenFile) and
// keeps the path for later Reloads.
func OpenTokenSource(path string) (*TokenSource, error) {
	ts, err := LoadTokenFile(path)
	if err != nil {
		return nil, err
	}
	s := &TokenSource{path: path}
	s.cur.Store(ts)
	return s, nil
}

// Path returns the backing file's path.
func (s *TokenSource) Path() string { return s.path }

// Allow checks token against the current set.
func (s *TokenSource) Allow(token string) bool { return s.cur.Load().Allow(token) }

// Reload re-reads the backing file and swaps the set in, then runs the
// OnReload hooks with the new set. On failure — unreadable file, a
// file that authorizes nobody — the previous set stays in force and no
// hook runs: a botched rotation must not lock every client out.
func (s *TokenSource) Reload() error {
	ts, err := LoadTokenFile(s.path)
	if err != nil {
		return err
	}
	s.cur.Store(ts)
	s.mu.Lock()
	hooks := append([]func(*TokenSet){}, s.hooks...)
	s.mu.Unlock()
	for _, fn := range hooks {
		fn(ts)
	}
	return nil
}

// OnReload registers fn to run after every successful Reload with the
// set just installed. The quota middleware uses it to evict
// rate-limiter buckets keyed by tokens the rotation removed.
func (s *TokenSource) OnReload(fn func(*TokenSet)) {
	s.mu.Lock()
	s.hooks = append(s.hooks, fn)
	s.mu.Unlock()
}

// Reloader is a file-backed configuration source that can re-read
// itself: *TokenSource and *tenant.Source both implement it, so one
// SIGHUP rotates tokens and quotas together.
type Reloader interface {
	Reload() error
	Path() string
}

// ReloadOnSIGHUP re-reads every source on every SIGHUP, logging under
// name: the old configuration stops applying, the new one starts, and
// requests in flight finish under the state they entered with. A
// source whose reload fails keeps its previous state and logs — a
// botched rotation must never lock everyone out — and the remaining
// sources still reload. Shared by thermflowd and thermflowgate so the
// two binaries cannot drift.
func ReloadOnSIGHUP(name string, sources ...Reloader) {
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			for _, src := range sources {
				if err := src.Reload(); err != nil {
					log.Printf("%s: SIGHUP reload of %s failed (keeping previous state): %v",
						name, src.Path(), err)
					continue
				}
				log.Printf("%s: SIGHUP: reloaded %s", name, src.Path())
			}
		}
	}()
}

// bearerToken extracts the Bearer credential ("" when absent).
func bearerToken(r *http.Request) string {
	auth := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(auth) > len(prefix) && strings.EqualFold(auth[:len(prefix)], prefix) {
		return auth[len(prefix):]
	}
	return ""
}

// WithAuth requires a bearer token accepted by a on every request;
// failures are 401 with a WWW-Authenticate challenge and the standard
// error body. Pass a *TokenSet for a fixed set or a *TokenSource for
// one that rotates at runtime.
func WithAuth(a Authorizer) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if !a.Allow(bearerToken(r)) {
				w.Header().Set("WWW-Authenticate", `Bearer realm="thermflowd"`)
				WriteErr(w, http.StatusUnauthorized, "missing or invalid bearer token")
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

// maxRateClients bounds the rate limiter's per-client bucket map; at
// the bound, buckets refilled to full burst (idle clients) are swept.
const maxRateClients = 65536

// rateLimiter is a per-client token bucket: rate tokens/second refill,
// burst capacity. A request costs one token; an empty bucket is a 429
// with the refill wait in Retry-After. The rate and burst fields are
// the uniform defaults allow uses; allowRate charges a bucket under a
// caller-supplied shape, which is how per-tenant quotas (and their
// hot reloads) take effect without rebuilding the limiter.
type rateLimiter struct {
	rate  float64
	burst float64
	clock func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

// bucket remembers the shape it was charged under so a sweep can tell
// idle (fully refilled) buckets apart even when tenants have different
// shapes, and so allowRate can detect a reloaded quota.
type bucket struct {
	tokens float64
	rate   float64
	burst  float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int, clock func() time.Time) *rateLimiter {
	if clock == nil {
		clock = time.Now
	}
	if burst <= 0 {
		burst = int(math.Max(1, 2*rate))
	}
	return &rateLimiter{
		rate: rate, burst: float64(burst), clock: clock,
		buckets: make(map[string]*bucket),
	}
}

// allow charges one token to key under the limiter's uniform shape,
// reporting success or the wait until the next token.
func (rl *rateLimiter) allow(key string) (bool, time.Duration) {
	return rl.allowRate(key, rl.rate, rl.burst)
}

// allowRate charges one token to key under the given shape. A changed
// shape — the tenant's quota was hot-reloaded — re-primes the bucket
// to the new full burst: the operator's new envelope takes effect on
// the next request, not after the old debt drains at the new rate.
func (rl *rateLimiter) allowRate(key string, rate, burst float64) (bool, time.Duration) {
	now := rl.clock()
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b, ok := rl.buckets[key]
	if !ok {
		if len(rl.buckets) >= maxRateClients {
			rl.sweepLocked()
		}
		b = &bucket{tokens: burst, rate: rate, burst: burst, last: now}
		rl.buckets[key] = b
	}
	if b.rate != rate || b.burst != burst {
		b.tokens, b.rate, b.burst = burst, rate, burst
	}
	b.tokens = math.Min(burst, b.tokens+rate*now.Sub(b.last).Seconds())
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / rate * float64(time.Second))
	return false, wait
}

// sweepLocked drops idle (fully refilled) buckets; if every client is
// active, it drops everything — a full reset under genuine overload
// beats unbounded growth.
func (rl *rateLimiter) sweepLocked() {
	for k, b := range rl.buckets {
		if b.tokens >= b.burst {
			delete(rl.buckets, k)
		}
	}
	if len(rl.buckets) >= maxRateClients {
		rl.buckets = make(map[string]*bucket)
	}
}

// evict drops every bucket whose key matches pred — the reload hooks
// use it so a rotated-out token's bucket cannot linger until the map
// hits its bound (and so a token re-added later starts from a fresh
// full burst instead of inheriting stale debt).
func (rl *rateLimiter) evict(pred func(key string) bool) {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	for k := range rl.buckets {
		if pred(k) {
			delete(rl.buckets, k)
		}
	}
}

// WithRateLimit enforces a per-client token bucket of rate
// requests/second with the given burst (burst <= 0 selects 2×rate,
// minimum 1) — the uniform, tenant-blind shape of WithQuotas, kept
// for deployments without a quota file. byToken keys clients by their
// bearer token, falling back to peer host — set it ONLY when the
// limiter sits behind WithAuth in the chain, so every token it sees is
// validated and one tenant cannot starve another behind the same NAT.
// Without auth, leave it false: an unvalidated Authorization header
// would mint a fresh full bucket per request, bypassing the limit
// entirely. Rejections are 429 with Retry-After in (ceiled) seconds.
// clock nil selects time.Now; tests inject a fake.
func WithRateLimit(rate float64, burst int, byToken bool, clock func() time.Time) Middleware {
	return WithQuotas(QuotaConfig{Rate: rate, Burst: burst, ByToken: byToken, Clock: clock})
}

// WithBodyLimit caps request bodies at n bytes; oversized reads fail
// inside the handlers' decoders with the standard 400 mapping.
func WithBodyLimit(n int64) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Body != nil {
				r.Body = http.MaxBytesReader(w, r.Body, n)
			}
			next.ServeHTTP(w, r)
		})
	}
}

// WithTimeout bounds every request's context. Streaming responses
// (batches, long polls) are cut off at the deadline too — size the
// limit for the slowest legitimate stream.
func WithTimeout(d time.Duration) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			next.ServeHTTP(w, r.WithContext(ctx))
		})
	}
}
