package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"thermflow"
)

// newMetricsServer builds a full middleware-wrapped server with
// metrics wired exactly as cmd/thermflowd wires them.
func newMetricsServer(t *testing.T) (*httptest.Server, *Metrics) {
	t.Helper()
	m := NewMetrics()
	s := NewConfig(thermflow.NewBatch(1), Config{Metrics: m})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(Chain(s,
		WithRequestID(),
		WithMetrics(m),
		WithBodyLimit(MaxBodyBytes),
	))
	t.Cleanup(ts.Close)
	return ts, m
}

func scrape(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("GET /metrics content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading exposition: %v", err)
	}
	return string(body)
}

func TestMetricsEndpointServesRequestSeries(t *testing.T) {
	ts, _ := newMetricsServer(t)

	// Drive one compile (counts as /v1/compile), one unknown route, and
	// the scrape itself.
	status, _ := post(t, ts.URL+"/v1/compile", `{"kernel":"dot"}`)
	if status != http.StatusOK {
		t.Fatalf("compile status = %d", status)
	}
	if resp, err := http.Get(ts.URL + "/no/such/route"); err == nil {
		resp.Body.Close()
	}

	out := scrape(t, ts.URL)
	for _, want := range []string{
		`thermflow_http_requests_total{route="/v1/compile",method="POST",code="200"} 1`,
		`thermflow_http_requests_total{route="other",method="GET",code="404"} 1`,
		`thermflow_http_request_seconds_count{route="/v1/compile"} 1`,
		"# TYPE thermflow_http_request_seconds histogram",
		"thermflow_http_inflight_requests",
		"thermflow_goroutines",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestMetricsEngineAndSolverSeries(t *testing.T) {
	ts, _ := newMetricsServer(t)

	// Same kernel twice: one miss (compiled, one solver run), one hit.
	for i := 0; i < 2; i++ {
		if status, body := post(t, ts.URL+"/v1/compile", `{"kernel":"dot"}`); status != http.StatusOK {
			t.Fatalf("compile %d: status %d: %s", i, status, body)
		}
	}

	out := scrape(t, ts.URL)
	for _, want := range []string{
		`thermflow_cache_requests_total{outcome="hit"} 1`,
		`thermflow_cache_requests_total{outcome="miss"} 1`,
		`thermflow_solver_runs_total{solver="dense",converged="true"} 1`,
		`thermflow_solver_seconds_count{solver="dense"} 1`,
		`thermflow_cache_tier_events_total{tier="memory",event="put"} 1`,
		`thermflow_jobs{state="terminal"}`,
		"thermflow_jobs_capacity",
		"thermflow_batch_inflight 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestRouteOfBoundsCardinality(t *testing.T) {
	cases := map[string]string{
		"/v1/compile":           "/v1/compile",
		"/v2/jobs":              "/v2/jobs",
		"/v2/jobs/abc123":       "/v2/jobs/{id}",
		"/v2/jobs/abc123/wait":  "/v2/jobs/{id}/wait",
		"/v2/jobs/x/replica":    "/v2/jobs/{id}/replica",
		"/v2/jobs/abc123/trace": "/v2/jobs/{id}/trace",
		"/v2/regions/solve":     "/v2/regions/solve",
		"/v2/regions/collect":   "/v2/regions/collect",
		"/metrics":              "/metrics",
		"/gateway/backends":     "/gateway/backends",
		"/random/client/path":   "other",
		"/v2/jobsx":             "other",
		"/":                     "other",
		"/v1/compile/extra/bit": "other",
	}
	for path, want := range cases {
		r := httptest.NewRequest("GET", path, nil)
		if got := routeOf(r); got != want {
			t.Errorf("routeOf(%q) = %q, want %q", path, got, want)
		}
	}
}

func TestWithMetricsNilIsIdentity(t *testing.T) {
	called := false
	h := WithMetrics(nil)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		called = true
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if !called {
		t.Fatal("inner handler not reached through nil metrics middleware")
	}
}
