package server

import (
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"time"

	"thermflow"
	"thermflow/internal/jobs"
	"thermflow/internal/telemetry"
)

// Metrics is a process's observability plane: one telemetry registry
// plus the HTTP request instruments every route shares. thermflowd and
// thermflowgate each construct one, wire WithMetrics into their
// middleware chain, and mount Handler at GET /metrics; the engine- and
// gateway-specific series are attached by InstrumentEngine and the
// gateway's instrument hook. A nil *Metrics disables everything — all
// methods no-op — so tests and minimal deployments need no guards.
type Metrics struct {
	reg *telemetry.Registry

	requests  *telemetry.CounterVec   // route, method, code
	latency   *telemetry.HistogramVec // route
	inflight  *telemetry.Gauge
	admission *telemetry.CounterVec // tenant_class, decision

	tenantLatency *telemetry.HistogramVec // tenant
	tenantServed  *telemetry.CounterVec   // tenant
}

// NewMetrics builds a registry with the HTTP request instruments and
// process runtime gauges registered.
func NewMetrics() *Metrics {
	reg := telemetry.NewRegistry()
	m := &Metrics{
		reg: reg,
		requests: reg.CounterVec("thermflow_http_requests_total",
			"HTTP requests handled, by normalized route, method and status code.",
			"route", "method", "code"),
		latency: reg.HistogramVec("thermflow_http_request_seconds",
			"HTTP request latency in seconds, by normalized route.",
			nil, "route"),
		inflight: reg.Gauge("thermflow_http_inflight_requests",
			"HTTP requests currently being served."),
		admission: reg.CounterVec("thermflow_admission_total",
			"Admission decisions, by tenant class and decision (admitted, "+
				"converged, rate_limited, concurrency, tenant_queue, shed, busy).",
			"tenant_class", "decision"),
		tenantLatency: reg.HistogramVec("thermflow_tenant_request_seconds",
			"HTTP request latency in seconds, by resolved tenant. Cardinality "+
				"is bounded by the quota file's profile names plus \"default\".",
			nil, "tenant"),
		tenantServed: reg.CounterVec("thermflow_tenant_jobs_served_total",
			"Job-submitting requests answered successfully, by resolved tenant.",
			"tenant"),
	}
	reg.GaugeFunc("thermflow_goroutines",
		"Live goroutines in the process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("thermflow_heap_alloc_bytes",
		"Heap bytes currently allocated.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	return m
}

// Registry exposes the underlying telemetry registry for component-
// specific series (the gateway's backend gauges). Nil-safe: a nil
// Metrics returns a nil registry, whose constructors all no-op.
func (m *Metrics) Registry() *telemetry.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// IncAdmission counts one admission decision for a tenant class. The
// label space stays bounded because classes come from the fixed
// tenant.Class set and decisions from this package's literals.
// Nil-safe: metrics-less deployments pay one nil check.
func (m *Metrics) IncAdmission(class, decision string) {
	if m == nil {
		return
	}
	if class == "" {
		class = "none"
	}
	m.admission.With(class, decision).Inc()
}

// ObserveTenant records one request's latency under the resolved
// tenant and, when served is set (a job-submitting request answered
// 2xx), counts a served job for it. The tenant label space stays
// bounded because names come from the quota file's fixed profile set —
// WithQuotas resolves every request onto a profile or "default" before
// calling this. Nil-safe.
func (m *Metrics) ObserveTenant(name string, seconds float64, served bool) {
	if m == nil {
		return
	}
	if name == "" {
		name = "default"
	}
	m.tenantLatency.With(name).Observe(seconds)
	if served {
		m.tenantServed.With(name).Inc()
	}
}

// Handler serves the Prometheus text exposition (GET /metrics).
func (m *Metrics) Handler() http.Handler {
	if m == nil {
		return http.NotFoundHandler()
	}
	return m.reg
}

// DebugHandler is the operator debug surface both daemons mount on
// their optional -debug-addr listener: net/http/pprof under
// /debug/pprof/ plus the metrics exposition at /metrics. It carries no
// auth and exposes heap/goroutine internals — bind it to loopback (or
// an operator-only network) and NEVER to a public address.
func DebugHandler(m *Metrics) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", m.Handler())
	return mux
}

// InstrumentEngine attaches the compile-engine and job-registry series:
// jobs by state, registry capacity/concurrency, batch single-flight
// inflight, cache hit/miss/panic counters, per-tier cache gauges, and
// the solver wall-clock histograms (installed as b's solver observer).
// Call once per engine; nil-safe on every argument.
func (m *Metrics) InstrumentEngine(b *thermflow.Batch, jr *jobs.Registry) {
	if m == nil {
		return
	}
	if jr != nil {
		m.reg.Collect("thermflow_jobs",
			"Jobs in the v2 registry, by lifecycle state.",
			telemetry.TypeGauge, []string{"state"}, func() []telemetry.Sample {
				st := jr.Stats()
				return []telemetry.Sample{
					{Labels: []string{"queued"}, Value: float64(st.Queued)},
					{Labels: []string{"running"}, Value: float64(st.Running)},
					{Labels: []string{"terminal"}, Value: float64(st.Terminal)},
				}
			})
		m.reg.GaugeFunc("thermflow_jobs_capacity",
			"Maximum jobs the registry retains, live plus finished.",
			func() float64 { return float64(jr.Stats().Capacity) })
		m.reg.GaugeFunc("thermflow_jobs_concurrency",
			"Jobs the registry runs concurrently.",
			func() float64 { return float64(jr.Stats().Concurrency) })
		m.reg.Collect("thermflow_jobs_queue_bound",
			"Admission-control queue bounds (max, watermark); 0 = admission control off.",
			telemetry.TypeGauge, []string{"bound"}, func() []telemetry.Sample {
				st := jr.Stats()
				return []telemetry.Sample{
					{Labels: []string{"max"}, Value: float64(st.MaxQueue)},
					{Labels: []string{"watermark"}, Value: float64(st.Watermark)},
				}
			})
		m.reg.Collect("thermflow_jobs_shed_total",
			"Jobs refused or displaced by admission control, by tenant class.",
			telemetry.TypeCounter, []string{"tenant_class"}, func() []telemetry.Sample {
				st := jr.Stats()
				out := make([]telemetry.Sample, 0, len(st.ShedByClass))
				for class, n := range st.ShedByClass {
					out = append(out, telemetry.Sample{Labels: []string{class}, Value: float64(n)})
				}
				return out
			})
	}
	if b == nil {
		return
	}
	m.reg.GaugeFunc("thermflow_batch_inflight",
		"Keyed compilations currently holding a single-flight slot.",
		func() float64 { return float64(b.Inflight()) })
	m.reg.Collect("thermflow_cache_requests_total",
		"Engine cache lookups, by outcome (hit, miss, panic).",
		telemetry.TypeCounter, []string{"outcome"}, func() []telemetry.Sample {
			st := b.Stats()
			return []telemetry.Sample{
				{Labels: []string{"hit"}, Value: float64(st.Hits)},
				{Labels: []string{"miss"}, Value: float64(st.Misses)},
				{Labels: []string{"panic"}, Value: float64(st.Panics)},
			}
		})
	m.reg.Collect("thermflow_cache_tier_events_total",
		"Cache tier activity, by tier (memory, disk) and event.",
		telemetry.TypeCounter, []string{"tier", "event"}, func() []telemetry.Sample {
			st := b.Stats()
			out := make([]telemetry.Sample, 0, 10)
			for _, t := range []struct {
				name string
				s    thermflow.CacheTierStats
			}{{"memory", st.Memory}, {"disk", st.Disk}} {
				out = append(out,
					telemetry.Sample{Labels: []string{t.name, "hit"}, Value: float64(t.s.Hits)},
					telemetry.Sample{Labels: []string{t.name, "miss"}, Value: float64(t.s.Misses)},
					telemetry.Sample{Labels: []string{t.name, "put"}, Value: float64(t.s.Puts)},
					telemetry.Sample{Labels: []string{t.name, "eviction"}, Value: float64(t.s.Evictions)},
					telemetry.Sample{Labels: []string{t.name, "corrupt"}, Value: float64(t.s.Corrupt)},
				)
			}
			return out
		})
	m.reg.Collect("thermflow_cache_tier_bytes",
		"Bytes resident per cache tier.",
		telemetry.TypeGauge, []string{"tier"}, func() []telemetry.Sample {
			st := b.Stats()
			return []telemetry.Sample{
				{Labels: []string{"memory"}, Value: float64(st.Memory.Bytes)},
				{Labels: []string{"disk"}, Value: float64(st.Disk.Bytes)},
			}
		})
	m.reg.Collect("thermflow_cache_tier_entries",
		"Entries resident per cache tier.",
		telemetry.TypeGauge, []string{"tier"}, func() []telemetry.Sample {
			st := b.Stats()
			return []telemetry.Sample{
				{Labels: []string{"memory"}, Value: float64(st.Memory.Entries)},
				{Labels: []string{"disk"}, Value: float64(st.Disk.Entries)},
			}
		})

	solverSeconds := m.reg.HistogramVec("thermflow_solver_seconds",
		"Thermal-analysis fixpoint wall-clock seconds, by solver.",
		nil, "solver")
	solverRuns := m.reg.CounterVec("thermflow_solver_runs_total",
		"Thermal-analysis fixpoint runs, by solver and convergence.",
		"solver", "converged")
	b.SetSolverObserver(func(solver string, seconds float64, converged bool) {
		solverSeconds.With(solver).Observe(seconds)
		solverRuns.With(solver, strconv.FormatBool(converged)).Inc()
	})
}

// routeOf normalizes a request path onto the fixed route set the HTTP
// metrics are labeled with. Parameterized segments collapse onto their
// pattern and unknown paths onto "other", so label cardinality is
// bounded by this function, not by what clients send.
func routeOf(r *http.Request) string {
	p := r.URL.Path
	if rest, ok := strings.CutPrefix(p, "/v2/jobs/"); ok && rest != "" {
		switch {
		case strings.HasSuffix(rest, "/wait"):
			return "/v2/jobs/{id}/wait"
		case strings.HasSuffix(rest, "/replica"):
			return "/v2/jobs/{id}/replica"
		case strings.HasSuffix(rest, "/trace"):
			return "/v2/jobs/{id}/trace"
		default:
			return "/v2/jobs/{id}"
		}
	}
	switch p {
	case "/v1/compile", "/v1/batch", "/v1/kernels", "/v1/cache",
		"/v2/jobs", "/v2/batch", "/v2/stats", "/metrics",
		"/v2/regions/solve", "/v2/regions/collect",
		"/gateway/backends", "/gateway/drain", "/gateway/undrain":
		return p
	}
	return "other"
}

// WithMetrics records every request into m: one requests_total
// increment by (route, method, code), one latency observation by
// route, and an inflight gauge held for the request's duration. Wire
// it outermost (right after WithRequestID/WithAccessLog) so rejections
// from inner middleware — 401s, 429s — are counted too. A nil m is the
// identity middleware.
func WithMetrics(m *Metrics) Middleware {
	if m == nil {
		return func(next http.Handler) http.Handler { return next }
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw := &statusWriter{ResponseWriter: w}
			route := routeOf(r)
			m.inflight.Inc()
			start := time.Now()
			defer func() {
				m.inflight.Dec()
				if sw.status == 0 {
					sw.status = http.StatusOK
				}
				m.latency.With(route).Observe(time.Since(start).Seconds())
				m.requests.With(route, r.Method, strconv.Itoa(sw.status)).Inc()
			}()
			next.ServeHTTP(sw, r)
		})
	}
}
