// Package tenant is the multi-tenancy model shared by thermflowd and
// thermflowgate: per-token quota profiles — rate, burst, queue depth,
// run concurrency and a priority class — loaded from one JSON file and
// hot-reloaded on SIGHUP alongside token rotation (source.go).
//
// The package deliberately holds policy only. Enforcement is split by
// layer, each attributing its own rejection: the HTTP middleware
// (internal/server.WithQuotas) answers 429 when a tenant exceeds its
// own rate or concurrency quota, and the jobs registry
// (internal/jobs) answers through shed/queue errors that map to 503
// when the shared pool is saturated — a tenant over ITS limit is told
// to slow down, a tenant caught in EVERYONE's backlog is told the
// service is busy.
package tenant

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Class is a tenant's priority band. Classes order admission: when the
// pool's queue crosses its shed watermark, lower classes are refused
// and shed first, whatever per-request priorities clients ask for.
type Class string

// The four classes, lowest to highest precedence.
const (
	ClassBatch    Class = "batch"    // offline/bulk work, first to shed
	ClassStandard Class = "standard" // the default interactive band
	ClassHigh     Class = "high"     // latency-sensitive tenants
	ClassCritical Class = "critical" // last to shed
)

// Rank orders classes: higher outranks lower at admission time.
func (c Class) Rank() int {
	switch c {
	case ClassCritical:
		return 3
	case ClassHigh:
		return 2
	case ClassStandard:
		return 1
	case ClassBatch:
		return 0
	}
	return -1
}

// ParseClass validates a class name; empty selects ClassStandard.
func ParseClass(s string) (Class, error) {
	c := Class(strings.ToLower(strings.TrimSpace(s)))
	if c == "" {
		return ClassStandard, nil
	}
	if c.Rank() < 0 {
		return "", fmt.Errorf("tenant: unknown class %q (want batch, standard, high or critical)", s)
	}
	return c, nil
}

// Priority encoding: the class occupies the high bits so that any
// request of a higher class outranks every request of a lower one in
// the jobs registry's priority heap; the client-requested priority
// breaks ties within a class.
const (
	classPriorityShift = 20
	clientPriorityMax  = 1<<(classPriorityShift-1) - 1 // ±524287
)

// EffectivePriority folds a tenant's class and the client-requested
// priority into one scheduler priority. The class dominates: a batch
// tenant cannot outbid a critical one by inflating the request field.
func EffectivePriority(c Class, clientPriority int) int {
	if clientPriority > clientPriorityMax {
		clientPriority = clientPriorityMax
	}
	if clientPriority < -clientPriorityMax {
		clientPriority = -clientPriorityMax
	}
	rank := c.Rank()
	if rank < 0 {
		rank = ClassStandard.Rank()
	}
	return rank<<classPriorityShift + clientPriority
}

// Profile is one tenant's quota envelope. Zero values mean "no limit"
// for every field except Class (empty normalizes to standard).
type Profile struct {
	// Name identifies the tenant in logs, metrics labels and the
	// X-Thermflow-Tenant header a gateway forwards to backends.
	Name string
	// Class is the admission band.
	Class Class
	// Rate and Burst shape the tenant's HTTP token bucket
	// (requests/second and bucket capacity; Burst 0 selects 2×Rate,
	// minimum 1; Rate 0 disables rate limiting for the tenant).
	Rate  float64
	Burst int
	// MaxQueue caps how many of the tenant's jobs may wait in the v2
	// registry queue at once (0 = unlimited).
	MaxQueue int
	// MaxConcurrent caps the tenant's simultaneously running jobs and
	// its in-flight synchronous compile requests (0 = unlimited).
	MaxConcurrent int
}

// Quotas is an immutable quota table: a default profile plus named
// tenants addressable by bearer token or by name. Swapped wholesale on
// reload (see Source) — readers never observe a partial table.
type Quotas struct {
	def     Profile
	byToken map[string]*Profile
	byName  map[string]*Profile
	names   []string // listing order, for logs
}

// Uniform builds a single-profile table: every caller shares the given
// rate/burst under the default profile. It is the compatibility shape
// of the pre-tenancy -rate-limit flag.
func Uniform(rate float64, burst int) *Quotas {
	return &Quotas{
		def:     Profile{Name: "default", Class: ClassStandard, Rate: rate, Burst: burst},
		byToken: map[string]*Profile{},
		byName:  map[string]*Profile{},
	}
}

// Default returns the profile applied to tokens no tenant claims.
func (q *Quotas) Default() *Profile { return &q.def }

// Lookup resolves a bearer token to its profile. The boolean reports a
// named-tenant match; unmatched tokens (and the empty token) share the
// default profile.
func (q *Quotas) Lookup(token string) (*Profile, bool) {
	if token != "" {
		if p, ok := q.byToken[token]; ok {
			return p, true
		}
	}
	return &q.def, false
}

// ByName resolves a tenant name (nil when unknown). Gateways resolve
// tokens at the edge and forward the name; backends configured to
// trust that header re-resolve it here against their own table.
func (q *Quotas) ByName(name string) *Profile { return q.byName[name] }

// Names lists the named tenants in file order.
func (q *Quotas) Names() []string { return append([]string(nil), q.names...) }

// HasToken reports whether token belongs to a named tenant.
func (q *Quotas) HasToken(token string) bool {
	_, ok := q.byToken[token]
	return ok
}

// fileProfile is the wire form of one profile in the quota file.
type fileProfile struct {
	Name          string   `json:"name,omitempty"`
	Class         string   `json:"class,omitempty"`
	Rate          float64  `json:"rate,omitempty"`
	Burst         int      `json:"burst,omitempty"`
	MaxQueue      int      `json:"max_queue,omitempty"`
	MaxConcurrent int      `json:"max_concurrent,omitempty"`
	Tokens        []string `json:"tokens,omitempty"`
}

// fileDoc is the quota file:
//
//	{
//	  "default": {"class": "standard", "rate": 50},
//	  "tenants": [
//	    {"name": "acme", "class": "high", "tokens": ["tok-a"],
//	     "rate": 200, "burst": 400, "max_queue": 512, "max_concurrent": 32}
//	  ]
//	}
type fileDoc struct {
	Default *fileProfile  `json:"default,omitempty"`
	Tenants []fileProfile `json:"tenants,omitempty"`
}

// Parse reads and validates a quota document. Unknown fields are
// rejected so a typoed limit fails loudly instead of silently meaning
// "unlimited".
func Parse(data []byte) (*Quotas, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var doc fileDoc
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("tenant: quota file: %v", err)
	}
	q := &Quotas{
		byToken: make(map[string]*Profile),
		byName:  make(map[string]*Profile),
	}
	def := Profile{Name: "default", Class: ClassStandard}
	if doc.Default != nil {
		if doc.Default.Name != "" || len(doc.Default.Tokens) > 0 {
			return nil, fmt.Errorf("tenant: the default profile takes no name or tokens")
		}
		p, err := resolveProfile(*doc.Default, "default")
		if err != nil {
			return nil, err
		}
		def = p
		def.Name = "default"
	}
	q.def = def
	for i, fp := range doc.Tenants {
		if strings.TrimSpace(fp.Name) == "" {
			return nil, fmt.Errorf("tenant: tenants[%d] has no name", i)
		}
		if fp.Name == "default" {
			return nil, fmt.Errorf("tenant: tenant name %q is reserved", fp.Name)
		}
		if _, dup := q.byName[fp.Name]; dup {
			return nil, fmt.Errorf("tenant: duplicate tenant name %q", fp.Name)
		}
		p, err := resolveProfile(fp, fp.Name)
		if err != nil {
			return nil, err
		}
		pp := &p
		q.byName[p.Name] = pp
		q.names = append(q.names, p.Name)
		for _, tok := range fp.Tokens {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				return nil, fmt.Errorf("tenant: tenant %q lists an empty token", p.Name)
			}
			if _, dup := q.byToken[tok]; dup {
				return nil, fmt.Errorf("tenant: token claimed by two tenants (second: %q)", p.Name)
			}
			q.byToken[tok] = pp
		}
	}
	return q, nil
}

// resolveProfile validates one profile's fields.
func resolveProfile(fp fileProfile, name string) (Profile, error) {
	class, err := ParseClass(fp.Class)
	if err != nil {
		return Profile{}, fmt.Errorf("tenant: %s: %v", name, err)
	}
	if fp.Rate < 0 || fp.Burst < 0 || fp.MaxQueue < 0 || fp.MaxConcurrent < 0 {
		return Profile{}, fmt.Errorf("tenant: %s: limits must be non-negative", name)
	}
	return Profile{
		Name: fp.Name, Class: class,
		Rate: fp.Rate, Burst: fp.Burst,
		MaxQueue: fp.MaxQueue, MaxConcurrent: fp.MaxConcurrent,
	}, nil
}

// Load reads and parses the quota file at path.
func Load(path string) (*Quotas, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: quota file: %w", err)
	}
	return Parse(data)
}
