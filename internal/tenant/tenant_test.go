package tenant

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleDoc = `{
  "default": {"class": "standard", "rate": 50, "burst": 100},
  "tenants": [
    {"name": "acme", "class": "high", "tokens": ["tok-a", "tok-a2"],
     "rate": 200, "burst": 400, "max_queue": 512, "max_concurrent": 32},
    {"name": "bulk", "class": "batch", "tokens": ["tok-b"],
     "rate": 5, "max_queue": 8, "max_concurrent": 2}
  ]
}`

func TestParseAndLookup(t *testing.T) {
	q, err := Parse([]byte(sampleDoc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	p, named := q.Lookup("tok-a")
	if !named || p.Name != "acme" || p.Class != ClassHigh || p.Rate != 200 || p.MaxConcurrent != 32 {
		t.Fatalf("tok-a resolved to %+v (named=%v)", p, named)
	}
	if p2, _ := q.Lookup("tok-a2"); p2 != p {
		t.Fatalf("two tokens of one tenant resolved to distinct profiles")
	}
	if p, named = q.Lookup("unknown-token"); named || p.Name != "default" || p.Rate != 50 {
		t.Fatalf("unknown token resolved to %+v (named=%v), want default profile", p, named)
	}
	if p, named = q.Lookup(""); named || p.Name != "default" {
		t.Fatalf("empty token resolved to %+v (named=%v), want default profile", p, named)
	}
	if got := q.ByName("bulk"); got == nil || got.Class != ClassBatch || got.MaxQueue != 8 {
		t.Fatalf("ByName(bulk) = %+v", got)
	}
	if q.ByName("nobody") != nil {
		t.Fatalf("ByName(nobody) should be nil")
	}
	if names := q.Names(); len(names) != 2 || names[0] != "acme" || names[1] != "bulk" {
		t.Fatalf("Names() = %v", names)
	}
}

func TestParseRejections(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"malformed", `{`, "quota file"},
		{"unknown field", `{"default": {"rat": 5}}`, "quota file"},
		{"unknown class", `{"tenants": [{"name": "x", "class": "vip"}]}`, "unknown class"},
		{"nameless tenant", `{"tenants": [{"class": "high"}]}`, "no name"},
		{"reserved name", `{"tenants": [{"name": "default"}]}`, "reserved"},
		{"duplicate name", `{"tenants": [{"name": "x"}, {"name": "x"}]}`, "duplicate tenant name"},
		{"duplicate token", `{"tenants": [{"name": "x", "tokens": ["t"]}, {"name": "y", "tokens": ["t"]}]}`, "claimed by two"},
		{"negative rate", `{"tenants": [{"name": "x", "rate": -1}]}`, "non-negative"},
		{"default with tokens", `{"default": {"tokens": ["t"]}}`, "no name or tokens"},
		{"empty token", `{"tenants": [{"name": "x", "tokens": [" "]}]}`, "empty token"},
	}
	for _, tc := range cases {
		if _, err := Parse([]byte(tc.doc)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Parse err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestClassRankAndParse(t *testing.T) {
	order := []Class{ClassBatch, ClassStandard, ClassHigh, ClassCritical}
	for i := 1; i < len(order); i++ {
		if order[i].Rank() <= order[i-1].Rank() {
			t.Fatalf("%s should outrank %s", order[i], order[i-1])
		}
	}
	if c, err := ParseClass(""); err != nil || c != ClassStandard {
		t.Fatalf("ParseClass(\"\") = %v, %v", c, err)
	}
	if c, err := ParseClass(" HIGH "); err != nil || c != ClassHigh {
		t.Fatalf("ParseClass normalization: %v, %v", c, err)
	}
	if _, err := ParseClass("vip"); err == nil {
		t.Fatalf("ParseClass(vip) should fail")
	}
}

func TestEffectivePriorityClassDominates(t *testing.T) {
	// A batch tenant bidding the maximum client priority must still
	// rank below a critical tenant bidding the minimum.
	batchMax := EffectivePriority(ClassBatch, 1<<30)
	criticalMin := EffectivePriority(ClassCritical, -(1 << 30))
	if batchMax >= criticalMin {
		t.Fatalf("batch(max)=%d should rank below critical(min)=%d", batchMax, criticalMin)
	}
	// Within one class, the client priority breaks ties.
	if EffectivePriority(ClassHigh, 2) <= EffectivePriority(ClassHigh, 1) {
		t.Fatalf("client priority should order within a class")
	}
	// An unknown class falls back to standard.
	if EffectivePriority(Class("bogus"), 0) != EffectivePriority(ClassStandard, 0) {
		t.Fatalf("unknown class should rank as standard")
	}
}

func TestUniform(t *testing.T) {
	q := Uniform(7, 14)
	p, named := q.Lookup("whatever")
	if named || p.Rate != 7 || p.Burst != 14 || p.Class != ClassStandard {
		t.Fatalf("Uniform lookup = %+v (named=%v)", p, named)
	}
}

func TestSourceReloadAndHooks(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "quotas.json")
	if err := os.WriteFile(path, []byte(sampleDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if p, _ := src.Lookup("tok-a"); p.Rate != 200 {
		t.Fatalf("initial rate = %v", p.Rate)
	}

	var hookTables []*Quotas
	src.OnReload(func(q *Quotas) { hookTables = append(hookTables, q) })

	// A malformed rewrite keeps the old table and runs no hook.
	if err := os.WriteFile(path, []byte(`{"tenants": [{"name":`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := src.Reload(); err == nil {
		t.Fatalf("Reload of malformed file should fail")
	}
	if p, named := src.Lookup("tok-a"); !named || p.Rate != 200 {
		t.Fatalf("failed reload changed the table: %+v (named=%v)", p, named)
	}
	if len(hookTables) != 0 {
		t.Fatalf("failed reload ran %d hooks", len(hookTables))
	}

	// A good rewrite swaps the table and notifies.
	next := `{"tenants": [{"name": "acme", "class": "critical", "tokens": ["tok-a"], "rate": 9}]}`
	if err := os.WriteFile(path, []byte(next), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := src.Reload(); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	if p, named := src.Lookup("tok-a"); !named || p.Rate != 9 || p.Class != ClassCritical {
		t.Fatalf("post-reload profile = %+v (named=%v)", p, named)
	}
	if p, named := src.Lookup("tok-b"); named {
		t.Fatalf("removed tenant still resolves: %+v", p)
	}
	if len(hookTables) != 1 || hookTables[0] != src.Quotas() {
		t.Fatalf("hook saw %d tables", len(hookTables))
	}
}
