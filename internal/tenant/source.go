package tenant

import (
	"sync"
	"sync/atomic"
)

// Source is a Quotas table bound to its file, swappable at runtime —
// the quota analogue of server.TokenSource. Reload re-reads the file
// and atomically replaces the table, so limits change without a
// restart; requests in flight finish under the profile they resolved
// at entry, and the very next request observes the new table. A failed
// reload (unreadable or invalid file) keeps the previous table in
// force: a botched quota push must not un-limit — or lock out — every
// tenant.
type Source struct {
	path string
	cur  atomic.Pointer[Quotas]

	mu    sync.Mutex
	hooks []func(*Quotas)
}

// Open loads the quota file at path (see Load) and keeps the path for
// later Reloads.
func Open(path string) (*Source, error) {
	q, err := Load(path)
	if err != nil {
		return nil, err
	}
	s := &Source{path: path}
	s.cur.Store(q)
	return s, nil
}

// Path returns the backing file's path.
func (s *Source) Path() string { return s.path }

// Quotas returns the current table.
func (s *Source) Quotas() *Quotas { return s.cur.Load() }

// Lookup resolves token against the current table.
func (s *Source) Lookup(token string) (*Profile, bool) { return s.cur.Load().Lookup(token) }

// ByName resolves a tenant name against the current table.
func (s *Source) ByName(name string) *Profile { return s.cur.Load().ByName(name) }

// Default returns the current default profile.
func (s *Source) Default() *Profile { return s.cur.Load().Default() }

// Reload re-reads the backing file and swaps the table in, then runs
// the OnReload hooks with the new table. On failure the previous table
// stays in force and no hook runs.
func (s *Source) Reload() error {
	q, err := Load(s.path)
	if err != nil {
		return err
	}
	s.cur.Store(q)
	s.mu.Lock()
	hooks := append([]func(*Quotas){}, s.hooks...)
	s.mu.Unlock()
	for _, fn := range hooks {
		fn(q)
	}
	return nil
}

// OnReload registers fn to run after every successful Reload with the
// table just installed — the middleware uses it to evict rate-limiter
// state for tenants that no longer exist.
func (s *Source) OnReload(fn func(*Quotas)) {
	s.mu.Lock()
	s.hooks = append(s.hooks, fn)
	s.mu.Unlock()
}
