// Package e2etest is an in-process cluster harness: N thermflowd-
// equivalent backends behind one thermflowgate-equivalent gateway,
// each assembled from the same pieces cmd/thermflowd and
// cmd/thermflowgate wire — the full middleware chain, a /metrics
// registry, durable job/replica write-ahead logs and a two-tier cache
// under per-test temp directories — listening on real ephemeral TCP
// ports. It exists so the shell smoke tests' cluster assertions
// (scripts/gateway_smoke.sh, scripts/durability_smoke.sh) can run as
// ordinary race-clean `go test` cases: backends can be killed
// (connections slammed, like SIGKILL) and restarted on the same
// address and directories, and the gateway can be restarted on its
// durable state dir.
package e2etest

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"thermflow"
	"thermflow/api"
	"thermflow/client"
	"thermflow/internal/gateway"
	"thermflow/internal/joblog"
	"thermflow/internal/jobs"
	"thermflow/internal/server"
	"thermflow/internal/tenant"
	"thermflow/internal/trace"
)

// Options parameterizes NewCluster. The zero value is a two-backend
// cluster with a fast health checker and default replication.
type Options struct {
	// Backends is the pool size (0 = 2).
	Backends int
	// Workers is each backend's compile pool size (0 = 2).
	Workers int
	// Replicas is the gateway's terminal-status replication factor
	// (0 = the gateway default, negative disables).
	Replicas int
	// HealthInterval is the gateway probe cadence (0 = 100ms — fast,
	// so kill tests converge quickly).
	HealthInterval time.Duration
	// EjectAfter is consecutive probe failures before ejection
	// (0 = 2).
	EjectAfter int
	// Quotas is a tenant quota document (the -quota-file JSON). When
	// set, the gateway resolves bearer tokens to profiles at the edge
	// and stamps the tenant header, and every backend trusts that
	// header against the same table — the cmd wiring in miniature.
	Quotas string
	// MaxQueue and QueueWatermark bound each backend's v2 job queue
	// (0 = unbounded / no admission control).
	MaxQueue       int
	QueueWatermark int
}

// Backend is one pool member: a full thermflowd stack over temp
// cache and WAL directories on a fixed ephemeral address.
type Backend struct {
	URL string
	Dir string

	c    *Cluster
	addr string

	mu      sync.Mutex
	alive   bool
	batch   *thermflow.Batch
	srv     *server.Server
	metrics *server.Metrics
	httpSrv *http.Server
	logs    []*joblog.Log
}

// Cluster is the running pool plus its gateway.
type Cluster struct {
	tb       testing.TB
	opts     Options
	Backends []*Backend

	GatewayURL string
	stateDir   string
	gwAddr     string

	gwMu      sync.Mutex
	gw        *gateway.Gateway
	gwHTTP    *http.Server
	gwLog     *joblog.Log
	gwMetrics *server.Metrics
}

// quiet drops the harness's gateway logs; the tests assert on state,
// not log text.
func quiet() *log.Logger { return log.New(io.Discard, "", 0) }

// quietSlog drops the harness's structured access logs.
func quietSlog() *slog.Logger { return slog.New(slog.NewJSONHandler(io.Discard, nil)) }

// NewCluster starts the pool and gateway and registers cleanup.
func NewCluster(tb testing.TB, opts Options) *Cluster {
	tb.Helper()
	if opts.Backends == 0 {
		opts.Backends = 2
	}
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	if opts.HealthInterval == 0 {
		opts.HealthInterval = 100 * time.Millisecond
	}
	if opts.EjectAfter == 0 {
		opts.EjectAfter = 2
	}
	c := &Cluster{tb: tb, opts: opts, stateDir: tb.TempDir()}
	for i := 0; i < opts.Backends; i++ {
		b := &Backend{c: c, Dir: tb.TempDir()}
		if err := b.start(); err != nil {
			tb.Fatalf("e2etest: starting backend %d: %v", i, err)
		}
		c.Backends = append(c.Backends, b)
	}
	if err := c.startGateway(); err != nil {
		tb.Fatalf("e2etest: starting gateway: %v", err)
	}
	tb.Cleanup(c.close)
	return c
}

// start assembles and serves one backend on b.addr (an ephemeral port
// on first start, the same address on restart, so the gateway's pool
// view stays valid across a kill).
func (b *Backend) start() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.alive {
		return fmt.Errorf("backend already running")
	}

	batch, err := thermflow.NewBatchConfig(thermflow.BatchConfig{
		Workers:  b.c.opts.Workers,
		CacheDir: filepath.Join(b.Dir, "cache"),
	})
	if err != nil {
		return err
	}

	jobsCfg := jobs.Config{
		SnapshotEvery:  32,
		MaxQueue:       b.c.opts.MaxQueue,
		QueueWatermark: b.c.opts.QueueWatermark,
	}
	jl, jrec, err := joblog.Open(filepath.Join(b.Dir, "joblog", "jobs"), joblog.Options{})
	if err != nil {
		return err
	}
	jobsCfg.Log, jobsCfg.Recovery = jl, &jrec
	rl, rrec, err := joblog.Open(filepath.Join(b.Dir, "joblog", "replicas"), joblog.Options{})
	if err != nil {
		jl.Close()
		return err
	}

	metrics := server.NewMetrics()
	tr := trace.NewRecorder("thermflowd", 0, 0)
	srv := server.NewConfig(batch, server.Config{
		Jobs:     jobsCfg,
		Replicas: server.NewReplicaStore(0, rl, &rrec),
		Metrics:  metrics,
		Trace:    tr,
	})

	addr := b.addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		srv.Close()
		jl.Close()
		rl.Close()
		return err
	}
	b.addr = lis.Addr().String()
	b.URL = "http://" + b.addr

	mw := []server.Middleware{
		server.WithRequestID(),
		server.WithTracing(tr),
		server.WithAccessLog(quietSlog()),
		server.WithMetrics(metrics),
		server.WithBodyLimit(server.MaxBodyBytes),
	}
	if b.c.opts.Quotas != "" {
		q, err := tenant.Parse([]byte(b.c.opts.Quotas))
		if err != nil {
			_ = lis.Close()
			srv.Close()
			jl.Close()
			rl.Close()
			return err
		}
		mw = append(mw, server.WithQuotas(server.QuotaConfig{
			Quotas: q, TrustHeader: true, Metrics: metrics,
		}))
	}
	httpSrv := &http.Server{Handler: server.Chain(srv, mw...)}
	go func() { _ = httpSrv.Serve(lis) }()

	b.batch, b.srv, b.metrics, b.httpSrv = batch, srv, metrics, httpSrv
	b.logs = []*joblog.Log{jl, rl}
	b.alive = true
	return nil
}

// Kill slams the backend: the listener and every open connection are
// closed immediately (http.Server.Close, the in-process analog of
// SIGKILL mid-request), then the job registry and WALs shut so a
// Restart can reopen the same directories.
func (b *Backend) Kill() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.alive {
		return
	}
	b.alive = false
	_ = b.httpSrv.Close()
	b.srv.Close()
	for _, l := range b.logs {
		_ = l.Close()
	}
}

// Restart brings a killed backend back on the same address over the
// same cache and WAL directories, replaying whatever they hold.
func (b *Backend) Restart() error { return b.start() }

// Alive reports whether the backend is serving.
func (b *Backend) Alive() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.alive
}

// Client is a v2 API client pointed directly at this backend.
func (b *Backend) Client() *client.Client { return client.New(b.URL, nil) }

// startGateway assembles and serves the gateway on c.gwAddr,
// persisting drain decisions under c.stateDir so RestartGateway
// replays them.
func (c *Cluster) startGateway() error {
	c.gwMu.Lock()
	defer c.gwMu.Unlock()

	sl, srec, err := joblog.Open(c.stateDir, joblog.Options{})
	if err != nil {
		return err
	}
	metrics := server.NewMetrics()
	tr := trace.NewRecorder("thermflowgate", 0, 0)
	var pool []string
	for _, b := range c.Backends {
		pool = append(pool, b.URL)
	}
	gw, err := gateway.New(gateway.Config{
		Backends:       pool,
		HealthInterval: c.opts.HealthInterval,
		HealthTimeout:  2 * time.Second,
		EjectAfter:     c.opts.EjectAfter,
		Replicas:       c.opts.Replicas,
		Logger:         quiet(),
		Log:            sl,
		Recovery:       &srec,
		Metrics:        metrics,
		Trace:          tr,
	})
	if err != nil {
		sl.Close()
		return err
	}

	addr := c.gwAddr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		gw.Close()
		sl.Close()
		return err
	}
	c.gwAddr = lis.Addr().String()
	c.GatewayURL = "http://" + c.gwAddr

	mw := []server.Middleware{
		server.WithRequestID(),
		server.WithTracing(tr),
		server.WithAccessLog(quietSlog()),
		server.WithMetrics(metrics),
		server.WithBodyLimit(server.MaxBodyBytes),
	}
	if c.opts.Quotas != "" {
		q, err := tenant.Parse([]byte(c.opts.Quotas))
		if err != nil {
			_ = lis.Close()
			gw.Close()
			sl.Close()
			return err
		}
		mw = append(mw, server.WithQuotas(server.QuotaConfig{
			Quotas: q, Metrics: metrics,
		}))
	}
	httpSrv := &http.Server{Handler: server.Chain(gw, mw...)}
	go func() { _ = httpSrv.Serve(lis) }()

	c.gw, c.gwHTTP, c.gwLog, c.gwMetrics = gw, httpSrv, sl, metrics
	return nil
}

// stopGateway closes the gateway half only; backends keep running.
func (c *Cluster) stopGateway() {
	c.gwMu.Lock()
	defer c.gwMu.Unlock()
	if c.gwHTTP == nil {
		return
	}
	_ = c.gwHTTP.Close()
	c.gw.Close()
	_ = c.gwLog.Close()
	c.gwHTTP, c.gw, c.gwLog = nil, nil, nil
}

// RestartGateway bounces the gateway on the same address and durable
// state directory — the in-process port of gateway_smoke.sh's
// drain-survives-restart scenario.
func (c *Cluster) RestartGateway() error {
	c.stopGateway()
	return c.startGateway()
}

// Client is a v2 API client pointed at the gateway.
func (c *Cluster) Client() *client.Client { return client.New(c.GatewayURL, nil) }

// Pool is a fan-out client over every backend, for per-member
// assertions (which member owns a job, per-member cache stats).
func (c *Cluster) Pool() *client.Pool {
	var urls []string
	for _, b := range c.Backends {
		urls = append(urls, b.URL)
	}
	return client.NewPool(urls, nil)
}

// View fetches the gateway's shard view.
func (c *Cluster) View(tb testing.TB) api.GatewayBackendsResponse {
	tb.Helper()
	resp, err := http.Get(c.GatewayURL + "/gateway/backends")
	if err != nil {
		tb.Fatalf("e2etest: GET /gateway/backends: %v", err)
	}
	defer resp.Body.Close()
	var view api.GatewayBackendsResponse
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		tb.Fatalf("e2etest: decoding shard view: %v", err)
	}
	return view
}

// WaitRing blocks until the gateway's hash ring has n members —
// backends come up healthy, but ejections and restarts converge at
// the health checker's cadence.
func (c *Cluster) WaitRing(tb testing.TB, n int) {
	tb.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(c.GatewayURL + "/gateway/backends")
		if err == nil {
			var view api.GatewayBackendsResponse
			derr := json.NewDecoder(resp.Body).Decode(&view)
			resp.Body.Close()
			if derr == nil && view.RingBackends == n {
				return
			}
		}
		if time.Now().After(deadline) {
			tb.Fatalf("e2etest: ring never reached %d members", n)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Scrape fetches a Prometheus exposition and returns its body.
// baseURL is the gateway or a backend URL.
func Scrape(tb testing.TB, baseURL string) string {
	tb.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		tb.Fatalf("e2etest: GET %s/metrics: %v", baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		tb.Fatalf("e2etest: GET %s/metrics: %s", baseURL, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatalf("e2etest: reading exposition: %v", err)
	}
	return string(body)
}

func (c *Cluster) close() {
	c.stopGateway()
	for _, b := range c.Backends {
		b.Kill()
	}
}
