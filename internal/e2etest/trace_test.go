package e2etest

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"thermflow"
	"thermflow/api"
	"thermflow/internal/server"
	"thermflow/internal/trace"
)

// getTrace fetches a job's recorded timeline from base.
func getTrace(t *testing.T, base, id string) api.TraceResponse {
	t.Helper()
	resp, err := http.Get(base + "/v2/jobs/" + id + "/trace")
	if err != nil {
		t.Fatalf("GET trace: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET trace: %s", resp.Status)
	}
	var out api.TraceResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding trace: %v", err)
	}
	return out
}

// postTraced posts a job request under sc's trace identity.
func postTraced(t *testing.T, url string, sc trace.SpanContext, req api.JobRequest, out *api.JobStatus) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("building request: %v", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(server.TraceHeader, sc.Header())
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding response (%s): %v", resp.Status, err)
	}
	return resp
}

// waitTraced long-polls a job to a terminal state, keeping every poll
// under sc's trace so the job's timeline stays a single trace.
func waitTraced(t *testing.T, base, id string, sc trace.SpanContext, out *api.JobStatus) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v2/jobs/"+id+"/wait?timeout_ms=60000", nil)
	if err != nil {
		t.Fatalf("building wait request: %v", err)
	}
	req.Header.Set(server.TraceHeader, sc.Header())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding wait: %v", err)
	}
}

// TestRegionJobTraceStitchedAcrossBackends submits a region job through
// the gateway under a client-minted trace and asserts the gateway's
// stitched timeline is one trace spanning the whole pool: coordination
// and round spans from the gateway, and region-solve spans recorded by
// at least two distinct backends, all linked parent-to-child under the
// client's trace ID.
func TestRegionJobTraceStitchedAcrossBackends(t *testing.T) {
	c := NewCluster(t, Options{Backends: 2, Workers: 2})
	c.WaitRing(t, 2)

	// Region → backend placement hashes the (job, region) key onto the
	// ring, and backend identities are ephemeral ports, so one seed can
	// legitimately land every region on one member. A few seeds make
	// that astronomically unlikely without fixing the placement.
	var tr api.TraceResponse
	var sc trace.SpanContext
	backends := map[string]bool{}
	for seed := int64(1); seed <= 5; seed++ {
		prog := thermflow.GenerateMega(thermflow.MegaOptions{
			Seed: seed, Arms: 8, Depth: 1, OpsPerBlock: 4, Pressure: 8, TripCount: 8,
		})
		sc = trace.New()
		var st api.JobStatus
		resp := postTraced(t, c.GatewayURL+"/v2/jobs", sc,
			api.JobRequest{Kind: "region", Program: prog.Fn.String(),
				Options: thermflow.Options{Solver: thermflow.SolverRegion, Regions: 8}}, &st)
		if resp.StatusCode != http.StatusOK || st.State != "done" {
			t.Fatalf("region job: status %d state=%s err=%s", resp.StatusCode, st.State, st.Error)
		}

		// The response echoes the client's trace with a fresh server span.
		echo, ok := trace.ParseHeader(resp.Header.Get(server.TraceHeader))
		if !ok || echo.TraceID != sc.TraceID || echo.SpanID == sc.SpanID {
			t.Fatalf("response trace header %q does not continue client trace %s",
				resp.Header.Get(server.TraceHeader), sc.TraceID)
		}

		tr = getTrace(t, c.GatewayURL, st.ID)
		backends = map[string]bool{}
		for _, sp := range tr.Spans {
			if sp.Name == "region.solve" {
				backends[sp.Attrs["backend"]] = true
			}
		}
		if len(backends) >= 2 {
			break
		}
	}
	if len(backends) < 2 {
		t.Fatalf("region.solve spans from %d distinct backends across 5 seeds, want >= 2", len(backends))
	}

	if tr.TraceID != sc.TraceID {
		t.Fatalf("timeline trace %s, want client trace %s", tr.TraceID, sc.TraceID)
	}
	names := map[string]int{}
	spanName := map[string]string{} // span ID -> name, for parent-link checks
	for _, sp := range tr.Spans {
		if sp.TraceID != sc.TraceID {
			t.Fatalf("span %s (%s) has trace %s, want %s", sp.SpanID, sp.Name, sp.TraceID, sc.TraceID)
		}
		names[sp.Name]++
		spanName[sp.SpanID] = sp.Name
	}
	for _, want := range []string{"http.server", "region.coordinate", "region.round", "region.solve"} {
		if names[want] == 0 {
			t.Fatalf("timeline has no %s span (got %v)", want, names)
		}
	}

	// The stitch must preserve the phase hierarchy: rounds under the
	// coordination span, backend solves under their round.
	wantParent := map[string]string{
		"region.round": "region.coordinate",
		"region.solve": "region.round",
	}
	for _, sp := range tr.Spans {
		want, checked := wantParent[sp.Name]
		if !checked {
			continue
		}
		if got := spanName[sp.ParentID]; got != want {
			t.Fatalf("%s span parented under %q span %s, want %s", sp.Name, got, sp.ParentID, want)
		}
		if sp.Name == "region.solve" {
			if sp.Service != "thermflowd" {
				t.Fatalf("region.solve span service %q, want thermflowd", sp.Service)
			}
			if sp.Attrs["queue_us"] == "" {
				t.Fatalf("region.solve span missing queue_us attr: %v", sp.Attrs)
			}
		}
	}
}

// TestPlainJobTraceLifecyclePhases submits a plain async job directly
// to one backend under a client trace and asserts the backend's
// timeline carries the queue/run/solve phase chain hanging off the
// submit request's server span.
func TestPlainJobTraceLifecyclePhases(t *testing.T) {
	c := NewCluster(t, Options{Backends: 1, Workers: 2})
	c.WaitRing(t, 1)
	b := c.Backends[0]

	sc := trace.New()
	var st api.JobStatus
	resp := postTraced(t, b.URL+"/v2/jobs", sc,
		api.JobRequest{Kernel: "dot", Options: thermflow.Options{Policy: thermflow.Coldest}}, &st)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	waitTraced(t, b.URL, st.ID, sc, &st)
	if st.State != "done" {
		t.Fatalf("job not done: state=%s err=%s", st.State, st.Error)
	}

	tr := getTrace(t, b.URL, st.ID)
	if tr.TraceID != sc.TraceID {
		t.Fatalf("timeline trace %s, want client trace %s", tr.TraceID, sc.TraceID)
	}
	byName := map[string]api.TraceSpan{}
	for _, sp := range tr.Spans {
		if sp.TraceID != sc.TraceID {
			t.Fatalf("span %s (%s) has trace %s, want %s", sp.SpanID, sp.Name, sp.TraceID, sc.TraceID)
		}
		byName[sp.Name] = sp
	}
	for _, want := range []string{"http.server", "job.queued", "job.run", "job.solve"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("timeline missing %s span (got %d spans)", want, len(tr.Spans))
		}
	}
	// Phase chain: job.queued hangs off a server span, job.run off
	// job.queued, job.solve off job.run.
	if byName["job.run"].ParentID != byName["job.queued"].SpanID {
		t.Fatalf("job.run parent %s, want job.queued span %s",
			byName["job.run"].ParentID, byName["job.queued"].SpanID)
	}
	if byName["job.solve"].ParentID != byName["job.run"].SpanID {
		t.Fatalf("job.solve parent %s, want job.run span %s",
			byName["job.solve"].ParentID, byName["job.run"].SpanID)
	}
	serverSpans := map[string]bool{}
	for _, sp := range tr.Spans {
		if sp.Name == "http.server" {
			serverSpans[sp.SpanID] = true
		}
	}
	if !serverSpans[byName["job.queued"].ParentID] {
		t.Fatalf("job.queued parent %s is not a recorded server span", byName["job.queued"].ParentID)
	}
}

// TestPlainJobTraceMergedThroughGateway submits a plain job via the
// gateway and asserts GET /v2/jobs/{id}/trace on the gateway answers
// the merged cross-process view: the backend's lifecycle spans plus the
// gateway's own edge span, under the client's trace ID.
func TestPlainJobTraceMergedThroughGateway(t *testing.T) {
	c := NewCluster(t, Options{Backends: 2, Workers: 2})
	c.WaitRing(t, 2)

	sc := trace.New()
	var st api.JobStatus
	resp := postTraced(t, c.GatewayURL+"/v2/jobs", sc,
		api.JobRequest{Kernel: "saxpy", Options: thermflow.Options{Policy: thermflow.Coldest}}, &st)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	waitTraced(t, c.GatewayURL, st.ID, sc, &st)
	if st.State != "done" {
		t.Fatalf("job not done: state=%s err=%s", st.State, st.Error)
	}

	tr := getTrace(t, c.GatewayURL, st.ID)
	services := map[string]bool{}
	names := map[string]int{}
	for _, sp := range tr.Spans {
		if sp.TraceID != sc.TraceID {
			t.Fatalf("span %s (%s) has trace %s, want %s", sp.SpanID, sp.Name, sp.TraceID, sc.TraceID)
		}
		names[sp.Name]++
		services[sp.Service] = true
	}
	for _, want := range []string{"job.queued", "job.run"} {
		if names[want] == 0 {
			t.Fatalf("merged timeline missing %s span (got %v)", want, names)
		}
	}
	if !services["thermflowd"] || !services["thermflowgate"] {
		t.Fatalf("merged timeline should carry spans from both services, got %v", services)
	}
}
