package e2etest

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"thermflow"
	"thermflow/api"
	"thermflow/client"
)

// sweep99 is the 99-job experiment matrix the shell smoke tests
// submit: every kernel at register-file sizes 56..64, each a distinct
// content identity.
func sweep99() []api.JobRequest {
	kernels := []string{"dot", "saxpy", "fir", "matmul", "bubblesort", "histogram",
		"checksum", "scaledsum", "transpose", "prefixsum", "fib"}
	var reqs []api.JobRequest
	for _, k := range kernels {
		for regs := 56; regs <= 64; regs++ {
			reqs = append(reqs, api.JobRequest{Kernel: k,
				Options: thermflow.Options{NumRegs: regs}})
		}
	}
	return reqs
}

// slowJobs builds n jobs whose analysis converges slowly (raw
// iteration, tight δ, low time acceleration) so batches stay in
// flight long enough to kill a backend mid-stream.
func slowJobs(n int) []api.JobRequest {
	kernels := []string{"matmul", "fir", "bubblesort", "histogram"}
	reqs := make([]api.JobRequest, n)
	for i := range reqs {
		reqs[i] = api.JobRequest{Kernel: kernels[i%len(kernels)],
			Options: thermflow.Options{
				NumRegs:     40 + i,
				NoWarmStart: true,
				Kappa:       5,
				MaxIter:     3000,
				Delta:       0.0005,
			}}
	}
	return reqs
}

// metricValue reads an unlabeled series' value from an exposition
// body, or -1 when absent.
func metricValue(exposition, name string) float64 {
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			if v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64); err == nil {
				return v
			}
		}
	}
	return -1
}

// The gateway_smoke.sh sweep: 99 jobs through the gateway's batch
// fan-out answer exactly once each with 99 distinct IDs and no
// errors, both backends compile a share, and the observability plane
// has series for all of it.
func TestClusterSweep99(t *testing.T) {
	c := NewCluster(t, Options{})
	c.WaitRing(t, 2)
	cl := c.Client()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	reqs := sweep99()
	counts := make(map[int]int)
	ids := make(map[string]bool)
	errs := 0
	err := cl.CompileBatchJobs(ctx, reqs, func(item api.JobItem) {
		counts[item.Index]++
		ids[item.ID] = true
		if item.Error != "" {
			errs++
			t.Errorf("job %d (%s) failed: %s", item.Index, reqs[item.Index].Kernel, item.Error)
		}
	})
	if err != nil {
		t.Fatalf("99-job sweep: %v", err)
	}
	for i := range reqs {
		if counts[i] != 1 {
			t.Fatalf("index %d answered %d times, want exactly once", i, counts[i])
		}
	}
	if len(ids) != 99 || errs != 0 {
		t.Fatalf("sweep: %d distinct ids, %d errors; want 99 and 0", len(ids), errs)
	}

	// Both backends actually compiled a share of the sweep.
	stats, err := c.Pool().CacheStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range stats {
		if st.Misses == 0 {
			t.Errorf("backend %d compiled nothing — fan-out did not spread", i)
		}
	}

	// The gateway's exposition saw the traffic and the pool.
	gw := Scrape(t, c.GatewayURL)
	for _, want := range []string{
		"thermflow_gateway_ring_backends 2",
		`thermflow_http_requests_total{route="/v2/batch",method="POST",code="200"}`,
		`thermflow_gateway_backend_up{backend="` + c.Backends[0].URL + `"} 1`,
		`thermflow_gateway_backend_up{backend="` + c.Backends[1].URL + `"} 1`,
	} {
		if !strings.Contains(gw, want) {
			t.Errorf("gateway exposition missing %q", want)
		}
	}

	// Each backend's exposition shows its own compiles and solver runs.
	for i, b := range c.Backends {
		out := Scrape(t, b.URL)
		for _, want := range []string{
			`thermflow_cache_requests_total{outcome="miss"}`,
			`thermflow_solver_runs_total{solver="dense",converged="true"}`,
			`thermflow_http_requests_total{route="/v2/batch",method="POST",code="200"}`,
		} {
			if !strings.Contains(out, want) {
				t.Errorf("backend %d exposition missing %q", i, want)
			}
		}
	}
}

// gateway_smoke.sh's kill-mid-batch scenario: a backend dies while
// its shard is streaming; the gateway re-dispatches the unanswered
// jobs to the survivor and every index is still answered exactly
// once. The gateway's /metrics stays scrapeable throughout and
// records the ejection and failover.
func TestClusterKillOwnerMidBatchFailover(t *testing.T) {
	c := NewCluster(t, Options{})
	c.WaitRing(t, 2)
	cl := c.Client()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	reqs := slowJobs(24)
	var mu sync.Mutex
	counts := make(map[int]int)
	ids := make(map[string]bool)
	var failed []string
	done := make(chan error, 1)
	first := make(chan struct{})
	var once sync.Once
	go func() {
		done <- cl.CompileBatchJobs(ctx, reqs, func(item api.JobItem) {
			mu.Lock()
			counts[item.Index]++
			ids[item.ID] = true
			if item.Error != "" {
				failed = append(failed, item.Error)
			}
			mu.Unlock()
			once.Do(func() { close(first) })
		})
	}()

	// Kill one pool member once the stream is demonstrably live, while
	// slow jobs hold both shards open.
	select {
	case <-first:
	case <-time.After(30 * time.Second):
		t.Fatal("batch produced no items")
	}
	c.Backends[1].Kill()

	// The harness stays observable mid-failover: this scrape races the
	// re-dispatch on purpose.
	if mid := Scrape(t, c.GatewayURL); !strings.Contains(mid, "thermflow_gateway_ring_backends") {
		t.Error("mid-failover exposition missing ring gauge")
	}

	if err := <-done; err != nil {
		t.Fatalf("batch with killed backend: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := range reqs {
		if counts[i] != 1 {
			t.Fatalf("index %d answered %d times, want exactly once", i, counts[i])
		}
	}
	if len(ids) != len(reqs) {
		t.Fatalf("%d distinct ids, want %d", len(ids), len(reqs))
	}
	if len(failed) != 0 {
		t.Fatalf("%d jobs failed after failover: %q", len(failed), failed[0])
	}

	// The health checker ejects the corpse; the counters saw both the
	// transport failover and the ejection.
	c.WaitRing(t, 1)
	gw := Scrape(t, c.GatewayURL)
	if v := metricValue(gw, "thermflow_gateway_ejections_total"); v < 1 {
		t.Errorf("thermflow_gateway_ejections_total = %v, want >= 1", v)
	}
	if v := metricValue(gw, "thermflow_gateway_failovers_total"); v < 1 {
		t.Errorf("thermflow_gateway_failovers_total = %v, want >= 1", v)
	}
}

// gateway_smoke.sh's drain persistence scenario: an administrative
// drain recorded in the gateway's state WAL survives a gateway
// restart; undraining restores the member and also persists.
func TestClusterDrainSurvivesGatewayRestart(t *testing.T) {
	c := NewCluster(t, Options{})
	c.WaitRing(t, 2)
	drained := c.Backends[0].URL

	resp, err := http.Post(c.GatewayURL+"/gateway/drain?backend="+drained, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: %s", resp.Status)
	}
	c.WaitRing(t, 1)

	if err := c.RestartGateway(); err != nil {
		t.Fatalf("gateway restart: %v", err)
	}
	c.WaitRing(t, 1)
	view := c.View(t)
	found := false
	for _, b := range view.Backends {
		if b.URL == drained {
			found = true
			if !b.Draining {
				t.Fatalf("backend %s not draining after gateway restart: %+v", drained, b)
			}
		}
	}
	if !found {
		t.Fatalf("drained backend %s missing from restarted gateway's view: %+v", drained, view)
	}

	// Undrain, bounce again: the member stays restored.
	resp, err = http.Post(c.GatewayURL+"/gateway/undrain?backend="+drained, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	c.WaitRing(t, 2)
	if err := c.RestartGateway(); err != nil {
		t.Fatalf("second gateway restart: %v", err)
	}
	c.WaitRing(t, 2)
}

// durability_smoke.sh's core: a backend SIGKILLed after finishing
// work comes back on the same WAL and cache directories with every
// pre-crash job ID resolving to the identical terminal result.
func TestClusterBackendWALReplayAcrossKill(t *testing.T) {
	c := NewCluster(t, Options{Backends: 1})
	c.WaitRing(t, 1)
	b := c.Backends[0]
	cl := client.New(b.URL, nil, client.WithRetries(8), client.WithBackoff(100*time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	reqs := sweep99()[:12]
	records := make(map[string]*api.JobStatus)
	for _, req := range reqs {
		st, err := cl.RunJob(ctx, req)
		if err != nil {
			t.Fatalf("pre-crash job: %v", err)
		}
		if st.State != "done" || st.Result == nil {
			t.Fatalf("pre-crash job state %s (result %v)", st.State, st.Result != nil)
		}
		records[st.ID] = st
	}

	b.Kill()
	if err := b.Restart(); err != nil {
		t.Fatalf("backend restart: %v", err)
	}

	for id, want := range records {
		got, err := cl.Job(ctx, id)
		if err != nil {
			t.Fatalf("job %s vanished across restart: %v", id[:12], err)
		}
		if got.State != want.State {
			t.Fatalf("job %s state %s -> %s across restart", id[:12], want.State, got.State)
		}
		if got.Result == nil ||
			got.Result.PeakTemp != want.Result.PeakTemp ||
			got.Result.Iterations != want.Result.Iterations {
			t.Fatalf("job %s result drifted across restart:\n  before %+v\n  after  %+v",
				id[:12], want.Result, got.Result)
		}
	}
}

// Two tenants share a one-worker, bounded-queue pool through the
// gateway: the edge resolves bearer tokens to quota profiles, stamps
// the tenant header, and the backend's admission control answers 429
// when the batch tenant exceeds its own queue cap but 503 when the
// pool itself is saturated with higher-class work — with the displaced
// job failing attributably and the counters moving on /metrics. The
// in-process port of scripts/quota_smoke.sh's determinstic half.
func TestClusterQuotaShedding(t *testing.T) {
	const quotas = `{
	  "tenants": [
	    {"name": "gold", "class": "critical", "tokens": ["tok-gold"]},
	    {"name": "bulk", "class": "batch", "tokens": ["tok-bulk"], "max_queue": 1}
	  ]
	}`
	c := NewCluster(t, Options{
		Backends: 1, Workers: 1,
		Quotas:   quotas,
		MaxQueue: 2, QueueWatermark: 1,
	})
	c.WaitRing(t, 1)

	// heavy returns a distinct long-running job: cold-start analysis
	// with a slowed thermal step holds the single worker for the whole
	// test body (the occupyingJob shape from the server tests).
	heavy := func(i int) api.JobRequest {
		return api.JobRequest{Kernel: "matmul", Options: thermflow.Options{
			NoWarmStart: true,
			Delta:       1e-9,
			MaxIter:     1 << 18,
			Kappa:       0.25 + float64(i)*1e-9,
		}}
	}
	submit := func(i int, token string) (int, api.JobStatus, http.Header) {
		t.Helper()
		body, err := json.Marshal(heavy(i))
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPost, c.GatewayURL+"/v2/jobs", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		defer resp.Body.Close()
		var st api.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("submit %d: decoding %s body: %v", i, resp.Status, err)
		}
		return resp.StatusCode, st, resp.Header
	}

	// The gold tenant's first job takes the worker; its queue is empty.
	if code, _, _ := submit(0, "tok-gold"); code != http.StatusAccepted {
		t.Fatalf("gold job 0: %d, want 202", code)
	}
	// One bulk job queues (depth 1)...
	_, bulkQueued, _ := submit(1, "tok-bulk")
	// ...and the next is the bulk tenant's own problem: over its
	// max_queue of 1, a 429 with Retry-After, not a pool signal.
	code, _, hdr := submit(2, "tok-bulk")
	if code != http.StatusTooManyRequests || hdr.Get("Retry-After") == "" {
		t.Fatalf("bulk over own queue cap: %d (Retry-After %q), want 429 with Retry-After",
			code, hdr.Get("Retry-After"))
	}

	// At the watermark the gold tenant still gets in — critical
	// outranks the queued batch work — and at the cap it displaces it.
	if code, _, _ := submit(3, "tok-gold"); code != http.StatusAccepted {
		t.Fatalf("gold at watermark: %d, want 202", code)
	}
	if code, _, _ := submit(4, "tok-gold"); code != http.StatusAccepted {
		t.Fatalf("gold displacing at cap: %d, want 202", code)
	}
	resp, err := http.Get(c.GatewayURL + "/v2/jobs/" + bulkQueued.ID)
	if err != nil {
		t.Fatal(err)
	}
	var shed api.JobStatus
	derr := json.NewDecoder(resp.Body).Decode(&shed)
	resp.Body.Close()
	if derr != nil {
		t.Fatal(derr)
	}
	if shed.State != "failed" || !strings.Contains(shed.Error, "shed") {
		t.Fatalf("displaced bulk job: state %q error %q, want failed with a shed error",
			shed.State, shed.Error)
	}

	// With the queue full of critical work, a bulk submit is a pool
	// verdict: 503, try again later — not the tenant's own 429.
	code, _, hdr = submit(5, "tok-bulk")
	if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("bulk against a saturated pool: %d (Retry-After %q), want 503 with Retry-After",
			code, hdr.Get("Retry-After"))
	}

	// The backend's exposition attributed all of it.
	be := Scrape(t, c.Backends[0].URL)
	for _, want := range []string{
		`thermflow_admission_total{tenant_class="critical",decision="admitted"} 3`,
		`thermflow_admission_total{tenant_class="batch",decision="tenant_queue"} 1`,
		`thermflow_admission_total{tenant_class="batch",decision="shed"} 1`,
		`thermflow_jobs_shed_total{tenant_class="batch"} 2`,
		`thermflow_jobs_queue_bound{bound="max"} 2`,
		`thermflow_jobs_queue_bound{bound="watermark"} 1`,
	} {
		if !strings.Contains(be, want) {
			t.Errorf("backend exposition missing %q", want)
		}
	}
}
