package e2etest

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"thermflow"
	"thermflow/api"
)

// postJSON posts v and decodes the response body into out, returning
// the HTTP status.
func postJSON(t *testing.T, url string, v, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding response (%s): %v\n%s", resp.Status, err, raw)
		}
	}
	return resp.StatusCode
}

// TestRegionJobGatewayFanOut submits one mega-module as a region job
// through the gateway — the fixpoint fans out across both backends,
// exchanging only boundary states — and asserts the merged result is
// byte-identical to (a) the same spec solved whole on a single
// backend and (b) a local dense reference. δ = 0, so exact mode's
// guarantee is equality, not approximation.
func TestRegionJobGatewayFanOut(t *testing.T) {
	c := NewCluster(t, Options{Backends: 2, Workers: 2})
	c.WaitRing(t, 2)

	prog := thermflow.GenerateMega(thermflow.MegaOptions{
		Seed: 5, Arms: 4, Depth: 1, OpsPerBlock: 4, Pressure: 8, TripCount: 8,
	})
	src := prog.Fn.String()
	opts := thermflow.Options{Solver: thermflow.SolverRegion, Regions: 4}

	// Through the gateway: kind "region" fans the solve out.
	var fanned api.JobStatus
	code := postJSON(t, c.GatewayURL+"/v2/jobs",
		api.JobRequest{Kind: "region", Program: src, Options: opts}, &fanned)
	if code != http.StatusOK {
		t.Fatalf("region job: status %d (%+v)", code, fanned)
	}
	if fanned.State != "done" || fanned.Result == nil {
		t.Fatalf("region job not done: state=%s err=%s", fanned.State, fanned.Error)
	}

	// Monolithic on one backend: the same spec as a plain job.
	var whole api.JobStatus
	code = postJSON(t, c.Backends[0].URL+"/v2/jobs",
		api.JobRequest{Program: src, Options: opts}, &whole)
	if code != http.StatusOK && code != http.StatusAccepted {
		t.Fatalf("plain job: status %d", code)
	}
	resp, err := http.Get(c.Backends[0].URL + "/v2/jobs/" + whole.ID + "/wait?timeout_ms=120000")
	if err != nil {
		t.Fatalf("waiting for plain job: %v", err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&whole); err != nil {
		t.Fatalf("decoding plain job status: %v", err)
	}
	resp.Body.Close()
	if whole.State != "done" || whole.Result == nil {
		t.Fatalf("plain job not done: state=%s err=%s", whole.State, whole.Error)
	}
	if whole.ID != fanned.ID {
		t.Fatalf("job identity diverged: %s vs %s", whole.ID, fanned.ID)
	}

	// Byte-identity of the full result documents (the Cached flag is
	// serving metadata, not analysis output).
	fanned.Result.Cached = false
	whole.Result.Cached = false
	fb, _ := json.Marshal(fanned.Result)
	wb, _ := json.Marshal(whole.Result)
	if !bytes.Equal(fb, wb) {
		t.Fatalf("fan-out result differs from single-backend result:\n%s\nvs\n%s", fb, wb)
	}

	// And against the local dense reference, field by field — the
	// solver names differ, the numbers must not.
	dense, err := prog.Compile(thermflow.Options{Solver: thermflow.SolverDense})
	if err != nil {
		t.Fatalf("dense reference: %v", err)
	}
	dt, ft := dense.Thermal, fanned.Result
	if dt.Converged != ft.Converged || dt.Iterations != ft.Iterations ||
		dt.FinalDelta != ft.FinalDelta || dt.BlockSweeps != ft.BlockSweeps ||
		dt.PeakTemp != ft.PeakTemp {
		t.Fatalf("fan-out diverges from dense: conv %v/%v iter %d/%d Δ %v/%v sweeps %d/%d peak %v/%v",
			dt.Converged, ft.Converged, dt.Iterations, ft.Iterations,
			dt.FinalDelta, ft.FinalDelta, dt.BlockSweeps, ft.BlockSweeps,
			dt.PeakTemp, ft.PeakTemp)
	}
	if len(dt.RegPeak) != len(ft.RegPeak) {
		t.Fatalf("reg peak length %d vs %d", len(dt.RegPeak), len(ft.RegPeak))
	}
	for i := range dt.RegPeak {
		if dt.RegPeak[i] != ft.RegPeak[i] {
			t.Fatalf("reg %d peak %v vs %v", i, dt.RegPeak[i], ft.RegPeak[i])
		}
	}
}

// TestRegionJobSlackThroughGateway runs the same fan-out with a
// boundary slack budget: fewer exchange rounds are allowed to move the
// answer, but only within the documented (δ+σ) envelope.
func TestRegionJobSlackThroughGateway(t *testing.T) {
	c := NewCluster(t, Options{Backends: 2, Workers: 2})
	c.WaitRing(t, 2)

	prog := thermflow.GenerateMega(thermflow.MegaOptions{
		Seed: 9, Arms: 4, Depth: 1, OpsPerBlock: 4, Pressure: 8, TripCount: 8,
	})
	src := prog.Fn.String()
	const slack = 0.02

	var fanned api.JobStatus
	code := postJSON(t, c.GatewayURL+"/v2/jobs",
		api.JobRequest{Kind: "region", Program: src,
			Options: thermflow.Options{Solver: thermflow.SolverRegion, Regions: 4, RegionDelta: slack}},
		&fanned)
	if code != http.StatusOK {
		t.Fatalf("slack region job: status %d (%+v)", code, fanned)
	}
	if fanned.State != "done" || fanned.Result == nil || !fanned.Result.Converged {
		t.Fatalf("slack region job: state=%s converged=%v", fanned.State,
			fanned.Result != nil && fanned.Result.Converged)
	}
	dense, err := prog.Compile(thermflow.Options{Solver: thermflow.SolverDense})
	if err != nil {
		t.Fatalf("dense reference: %v", err)
	}
	budget := 5 * (0.05 + slack) // 5× the (δ+σ) contraction envelope
	diff := dense.Thermal.PeakTemp - fanned.Result.PeakTemp
	if diff < 0 {
		diff = -diff
	}
	if diff > budget {
		t.Fatalf("slack peak temp off by %g, budget %g", diff, budget)
	}
}
