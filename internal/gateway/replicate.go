package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"time"

	"thermflow/api"
	"thermflow/internal/jobs"
	"thermflow/internal/server"
)

// Status replication: every terminal JobStatus the gateway relays —
// from a status read, a long poll, or a submit that answered
// terminally on the spot — is also pushed to the ID's next R members
// on the read ring (PUT /v2/jobs/{id}/replica). Each successor shelves
// the document verbatim and serves it on a registry miss, so a job's
// answer outlives its owner: if the owner dies permanently, the
// gateway's candidate walk (handleJobGet) reaches a successor and the
// ID still resolves. The push is asynchronous and best-effort — the
// client's response is never held for it — and deduplicated per ID,
// since a terminal status never changes once written.

// replicatePushTimeout bounds one replica push (and one cache-reset
// re-issue; see health.go).
const replicatePushTimeout = 5 * time.Second

// replicatedCap bounds the push-dedup memory. Evicting an ID only
// means a later read of it replicates again — wasted bytes, not
// wrong ones.
const replicatedCap = 8192

// relayAndReplicate relays a job-status response to the client and,
// when it carries a terminal status this gateway has not replicated
// yet, pushes it to the ID's ring successors in the background.
func (g *Gateway) relayAndReplicate(w http.ResponseWriter, r *http.Request, resp *http.Response, served string) {
	defer resp.Body.Close()
	body, readErr := io.ReadAll(resp.Body)
	for _, h := range relayHeaders {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)

	switch {
	case readErr != nil || g.replicas <= 0:
		return
	case resp.Header.Get(server.ReplicaHeader) != "":
		return // a successor's shelf answered; the copies already exist
	case resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusGatewayTimeout:
		return // 504 carries an expired job's status; other non-200s carry no job
	}
	var st api.JobStatus
	if json.Unmarshal(body, &st) != nil || st.ID == "" || !jobs.State(st.State).Terminal() {
		return
	}
	g.replicate(st.ID, body, served, r.Header.Get("Authorization"))
}

// replicate pushes one terminal status to the ID's read-ring
// successors, skipping the backend that served it (it already has the
// job). No-op if the ID was already replicated.
func (g *Gateway) replicate(id string, body []byte, served, auth string) {
	g.mu.Lock()
	if g.replicated[id] {
		g.mu.Unlock()
		return
	}
	g.markReplicatedLocked(id)
	ring := g.readRing
	g.mu.Unlock()

	var targets []string
	for _, name := range ring.Successors(id, g.replicas+1) {
		if name == served {
			continue
		}
		targets = append(targets, name)
		if len(targets) == g.replicas {
			break
		}
	}
	if len(targets) == 0 {
		return
	}
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		pushed := 0
		for _, t := range targets {
			if g.pushReplica(t, id, body, auth) {
				pushed++
			}
		}
		if pushed == 0 {
			// Nothing landed; forget the ID so a later read retries.
			g.mu.Lock()
			delete(g.replicated, id)
			g.mu.Unlock()
		}
	}()
}

// markReplicatedLocked records an ID as pushed, evicting the oldest
// mark past the cap.
func (g *Gateway) markReplicatedLocked(id string) {
	if g.replicated[id] {
		return
	}
	g.replicated[id] = true
	g.replOrder = append(g.replOrder, id)
	for len(g.replOrder) > replicatedCap {
		evict := g.replOrder[0]
		g.replOrder = g.replOrder[1:]
		delete(g.replicated, evict)
	}
}

// pushReplica PUTs one status document onto one successor's shelf.
func (g *Gateway) pushReplica(target, id string, body []byte, auth string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), replicatePushTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		target+"/v2/jobs/"+id+"/replica", bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	if auth != "" {
		req.Header.Set("Authorization", auth)
	}
	resp, err := g.hc.Do(req)
	if err != nil {
		g.logger.Printf("gateway: replicating job %.12s to %s: %v", id, target, err)
		g.metrics.replicaPushes.With("error").Inc()
		return false
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		g.logger.Printf("gateway: replicating job %.12s to %s: %s", id, target, resp.Status)
		g.metrics.replicaPushes.With("error").Inc()
		return false
	}
	g.metrics.replicaPushes.With("ok").Inc()
	return true
}
