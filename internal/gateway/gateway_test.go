package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"thermflow"
	"thermflow/api"
	"thermflow/client"
	"thermflow/internal/server"
	"thermflow/internal/tenant"
)

// newBackend starts a real thermflowd handler over a small engine.
func newBackend(t *testing.T) (*httptest.Server, *server.Server) {
	t.Helper()
	srv := server.New(thermflow.NewBatch(2))
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts, srv
}

// newTestGateway builds a gateway whose health checker stays out of
// the way unless the test configures it otherwise.
func newTestGateway(t *testing.T, cfg Config, backends ...string) (*Gateway, *httptest.Server) {
	t.Helper()
	cfg.Backends = backends
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = time.Hour
	}
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g)
	t.Cleanup(func() { ts.Close(); g.Close() })
	return g, ts
}

// testJobs returns v2 job requests with distinct content identities.
func testJobs(n int) []api.JobRequest {
	kernels := []string{"dot", "fir", "matmul"}
	out := make([]api.JobRequest, n)
	for i := range out {
		out[i] = api.JobRequest{
			Kernel:  kernels[i%len(kernels)],
			Options: thermflow.Options{NumRegs: 8 + 4*(i/len(kernels)), SkipAnalysis: true},
		}
	}
	return out
}

// idOf computes a request's job ID the way the gateway and backends do.
func idOf(t *testing.T, req api.JobRequest) string {
	t.Helper()
	spec, err := server.ResolveSpec(req)
	if err != nil {
		t.Fatal(err)
	}
	id, err := spec.ID()
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// Submits through the gateway land on the ring owner, and ID-routed
// reads through the gateway find them there — wherever they live.
func TestGatewayRoutesByID(t *testing.T) {
	b1, _ := newBackend(t)
	b2, _ := newBackend(t)
	g, ts := newTestGateway(t, Config{}, b1.URL, b2.URL)
	cl := client.New(ts.URL, nil)
	pool := client.NewPool([]string{b1.URL, b2.URL}, nil)
	ctx := context.Background()

	owners := make(map[string]int)
	for _, req := range testJobs(8) {
		st, err := cl.RunJob(ctx, req)
		if err != nil {
			t.Fatalf("RunJob via gateway: %v", err)
		}
		if st.State != "done" {
			t.Fatalf("job state %s, want done", st.State)
		}
		if want := idOf(t, req); st.ID != want {
			t.Fatalf("gateway job ID %s, want %s", st.ID, want)
		}

		// The gateway resolves the ID on whichever backend owns it.
		got, err := cl.Job(ctx, st.ID)
		if err != nil {
			t.Fatalf("GET via gateway: %v", err)
		}
		if got.State != "done" {
			t.Fatalf("routed read state %s, want done", got.State)
		}

		// And that backend is the ring owner — on exactly one member.
		_, backendIdx, err := pool.FindJob(ctx, st.ID)
		if err != nil {
			t.Fatalf("FindJob: %v", err)
		}
		owner, _ := g.ring.Lookup(st.ID)
		want := 0
		if owner == b2.URL {
			want = 1
		}
		if backendIdx != want {
			t.Fatalf("job %s on backend %d, ring owner is %d", st.ID[:12], backendIdx, want)
		}
		owners[owner]++
	}
	if len(owners) < 2 {
		t.Fatalf("all 8 jobs landed on one backend: %v", owners)
	}
}

// The v2 batch fan-out answers every index exactly once with the right
// IDs, spreading work across the pool.
func TestGatewayBatchFanoutMerge(t *testing.T) {
	b1, _ := newBackend(t)
	b2, _ := newBackend(t)
	_, ts := newTestGateway(t, Config{}, b1.URL, b2.URL)
	cl := client.New(ts.URL, nil)

	reqs := testJobs(12)
	counts := make(map[int]int)
	ids := make(map[int]string)
	err := cl.CompileBatchJobs(context.Background(), reqs, func(item api.JobItem) {
		counts[item.Index]++
		ids[item.Index] = item.ID
		if item.Error != "" {
			t.Errorf("item %d failed: %s", item.Index, item.Error)
		}
	})
	if err != nil {
		t.Fatalf("batch via gateway: %v", err)
	}
	for i, req := range reqs {
		if counts[i] != 1 {
			t.Fatalf("index %d answered %d times, want exactly once", i, counts[i])
		}
		if want := idOf(t, req); ids[i] != want {
			t.Fatalf("index %d ID %s, want %s", i, ids[i], want)
		}
	}

	// Both backends actually compiled something.
	pool := client.NewPool([]string{b1.URL, b2.URL}, nil)
	stats, err := pool.CacheStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range stats {
		if st.Misses == 0 {
			t.Errorf("backend %d compiled nothing — fan-out did not spread", i)
		}
	}
}

// The v1 batch surface rides the same fan-out.
func TestGatewayBatchV1(t *testing.T) {
	b1, _ := newBackend(t)
	b2, _ := newBackend(t)
	_, ts := newTestGateway(t, Config{}, b1.URL, b2.URL)
	cl := client.New(ts.URL, nil)

	jobs := []api.CompileRequest{
		{Kernel: "dot", Options: thermflow.Options{SkipAnalysis: true}},
		{Kernel: "fir", Options: thermflow.Options{SkipAnalysis: true}},
		{Kernel: "dot", Options: thermflow.Options{SkipAnalysis: true}}, // duplicate
	}
	counts := make(map[int]int)
	err := cl.CompileBatch(context.Background(), jobs, func(item api.BatchItem) {
		counts[item.Index]++
		if item.Error != "" {
			t.Errorf("item %d failed: %s", item.Index, item.Error)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if counts[i] != 1 {
			t.Fatalf("index %d answered %d times", i, counts[i])
		}
	}
}

// dyingBackend answers health probes but kills every batch stream
// after echoing n items, without finishing the shard — the shape of a
// backend crashing mid-batch.
func dyingBackend(t *testing.T, itemsBeforeDeath int) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v2/stats", func(w http.ResponseWriter, r *http.Request) {
		server.WriteJSON(w, http.StatusOK, api.StatsResponse{})
	})
	mux.HandleFunc("POST /v2/batch", func(w http.ResponseWriter, r *http.Request) {
		var req api.JobsBatchRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		enc := json.NewEncoder(w)
		for i := 0; i < itemsBeforeDeath && i < len(req.Jobs); i++ {
			_ = enc.Encode(api.JobItem{Index: i, Error: "shard died mid-job"})
		}
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler) // slam the connection
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// A backend dying mid-batch: its unanswered jobs re-dispatch to the
// ring's next member and every index is still answered exactly once —
// items the dead backend did answer are not answered again.
func TestGatewayFailoverMidBatch(t *testing.T) {
	healthy, _ := newBackend(t)
	dying := dyingBackend(t, 1)
	_, ts := newTestGateway(t, Config{}, healthy.URL, dying.URL)
	cl := client.New(ts.URL, nil)

	reqs := testJobs(10)
	counts := make(map[int]int)
	fromDead := 0
	err := cl.CompileBatchJobs(context.Background(), reqs, func(item api.JobItem) {
		counts[item.Index]++
		if item.Error == "shard died mid-job" {
			fromDead++
		} else if item.Error != "" {
			t.Errorf("item %d failed: %s", item.Index, item.Error)
		}
	})
	if err != nil {
		t.Fatalf("batch with dying backend: %v", err)
	}
	total := 0
	for i := range reqs {
		if counts[i] != 1 {
			t.Fatalf("index %d answered %d times, want exactly once", i, counts[i])
		}
		total++
	}
	if total != len(reqs) {
		t.Fatalf("answered %d of %d", total, len(reqs))
	}
	// The dying backend owned some shard (with 10 distinct IDs over 2
	// members that is overwhelmingly likely) and answered exactly one
	// item before dying; that item must have survived un-duplicated.
	if fromDead > 1 {
		t.Fatalf("%d items claim to come from the dead backend's single pre-death emit", fromDead)
	}
}

// An owner that is unreachable fails a submit over to the ring's next
// member immediately; status reads converge once the health checker
// (fed by both probes and the observed proxy failure) ejects the dead
// owner and the ring re-routes the ID to where the job actually ran.
func TestGatewaySubmitFailover(t *testing.T) {
	live, _ := newBackend(t)
	// Reserve an address with nothing listening on it.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + lis.Addr().String()
	lis.Close()

	g, ts := newTestGateway(t, Config{
		HealthInterval: 25 * time.Millisecond,
		HealthTimeout:  250 * time.Millisecond,
	}, live.URL, deadURL)
	cl := client.New(ts.URL, nil, client.WithRetries(10), client.WithBackoff(50*time.Millisecond))

	// Find a job the ring assigns to the dead backend while it is
	// still a member (locked read: the 25ms health checker rebuilds
	// the ring concurrently).
	lookup := func(id string) string {
		g.mu.Lock()
		defer g.mu.Unlock()
		owner, _ := g.ring.Lookup(id)
		return owner
	}
	var req api.JobRequest
	found := false
	for _, cand := range testJobs(32) {
		if lookup(idOf(t, cand)) == deadURL {
			req, found = cand, true
			break
		}
	}
	if !found {
		t.Fatal("no sample job routed to the dead backend")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	st, err := cl.RunJob(ctx, req)
	if err != nil {
		t.Fatalf("submit owned by dead backend did not converge: %v", err)
	}
	if st.State != "done" {
		t.Fatalf("failed-over job state %s, want done", st.State)
	}
}

// Draining removes a backend from the ring — new jobs route elsewhere
// — while the admin view tracks its state; undraining restores it.
func TestGatewayDrain(t *testing.T) {
	b1, _ := newBackend(t)
	b2, _ := newBackend(t)
	_, ts := newTestGateway(t, Config{}, b1.URL, b2.URL)
	cl := client.New(ts.URL, nil)
	pool := client.NewPool([]string{b1.URL, b2.URL}, nil)
	ctx := context.Background()

	drainResp := func(path string) api.GatewayBackendsResponse {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("%s: %s: %s", path, resp.Status, body)
		}
		var out api.GatewayBackendsResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	// Land a job on b1 before the drain; its status must stay readable
	// through the gateway while b1 drains (the read ring keeps serving
	// the shard the draining member ran).
	var onB1 string
	for _, req := range testJobs(16) {
		st, err := cl.RunJob(ctx, req)
		if err != nil || st.State != "done" {
			t.Fatalf("pre-drain job: %v / %+v", err, st)
		}
		if _, idx, err := pool.FindJob(ctx, st.ID); err == nil && idx == 0 {
			onB1 = st.ID
			break
		}
	}
	if onB1 == "" {
		t.Fatal("no sample job landed on b1")
	}

	view := drainResp("/gateway/drain?backend=" + b1.URL)
	if view.RingBackends != 1 {
		t.Fatalf("ring has %d members after drain, want 1", view.RingBackends)
	}
	if !view.Backends[0].Draining || !view.Backends[0].Drained {
		t.Fatalf("drained backend state: %+v", view.Backends[0])
	}

	st, err := cl.Job(ctx, onB1)
	if err != nil {
		t.Fatalf("status read of drained member's job: %v", err)
	}
	if st.State != "done" {
		t.Fatalf("drained member's job state %s, want done", st.State)
	}

	// Every new job lands on the surviving member (fresh content
	// identities — the pre-drain jobs are already registered on b1).
	for i := 0; i < 6; i++ {
		req := api.JobRequest{Kernel: "dot",
			Options: thermflow.Options{NumRegs: 40 + i, SkipAnalysis: true}}
		st, err := cl.RunJob(ctx, req)
		if err != nil || st.State != "done" {
			t.Fatalf("job during drain: %v / %+v", err, st)
		}
		if _, idx, err := pool.FindJob(ctx, st.ID); err != nil || idx != 1 {
			t.Fatalf("job %s on backend %d (err %v), want 1 (b2)", st.ID[:12], idx, err)
		}
	}

	view = drainResp("/gateway/undrain?backend=" + b1.URL)
	if view.RingBackends != 2 {
		t.Fatalf("ring has %d members after undrain, want 2", view.RingBackends)
	}

	// Unknown backends are a 404.
	resp, err := http.Post(ts.URL+"/gateway/drain?backend=http://nope:1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("draining unknown backend: %d, want 404", resp.StatusCode)
	}
}

// The health checker ejects a dead backend and readmits it when it
// answers again.
func TestGatewayHealthEjectAndReadmit(t *testing.T) {
	live, _ := newBackend(t)

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	flakyAddr := lis.Addr().String()
	flakySrv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})}
	go func() { _ = flakySrv.Serve(lis) }()

	g, ts := newTestGateway(t, Config{
		HealthInterval: 25 * time.Millisecond,
		HealthTimeout:  250 * time.Millisecond,
		EjectAfter:     2,
	}, live.URL, "http://"+flakyAddr)
	cl := client.New(ts.URL, nil)

	ringLen := func() int {
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.ring.Len()
	}
	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	waitFor("both members healthy", func() bool { return ringLen() == 2 })

	// Kill the flaky backend; the checker ejects it.
	_ = flakySrv.Close()
	waitFor("ejection", func() bool { return ringLen() == 1 })

	// Traffic keeps flowing to the survivor.
	st, err := cl.RunJob(context.Background(), api.JobRequest{Kernel: "dot",
		Options: thermflow.Options{SkipAnalysis: true}})
	if err != nil || st.State != "done" {
		t.Fatalf("job during ejection: %v / %+v", err, st)
	}

	// Bring it back on the same address; the checker readmits it.
	lis2, err := net.Listen("tcp", flakyAddr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", flakyAddr, err)
	}
	flakySrv2 := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})}
	go func() { _ = flakySrv2.Serve(lis2) }()
	t.Cleanup(func() { _ = flakySrv2.Close() })
	waitFor("readmission", func() bool { return ringLen() == 2 })
}

// Pool-wide reads: /v1/kernels proxies, /v1/cache and /v2/stats
// aggregate over every healthy member.
func TestGatewayAggregates(t *testing.T) {
	b1, _ := newBackend(t)
	b2, _ := newBackend(t)
	_, ts := newTestGateway(t, Config{}, b1.URL, b2.URL)
	cl := client.New(ts.URL, nil)
	ctx := context.Background()

	kernels, err := cl.Kernels(ctx)
	if err != nil || len(kernels) == 0 {
		t.Fatalf("kernels via gateway: %v (%d)", err, len(kernels))
	}

	// Spread some work, then check the aggregate counts both members.
	err = cl.CompileBatchJobs(ctx, testJobs(10), nil)
	if err != nil {
		t.Fatal(err)
	}
	agg, err := cl.CacheStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	pool := client.NewPool([]string{b1.URL, b2.URL}, nil)
	per, err := pool.CacheStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := per[0].Misses + per[1].Misses; agg.Misses != want {
		t.Fatalf("aggregate misses %d, want %d", agg.Misses, want)
	}
	if want := per[0].Workers + per[1].Workers; agg.Workers != want {
		t.Fatalf("aggregate workers %d, want %d", agg.Workers, want)
	}

	var stats api.StatsResponse
	resp, err := http.Get(ts.URL + "/v2/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Jobs.Capacity == 0 || stats.Jobs.Concurrency == 0 {
		t.Fatalf("aggregate stats look empty: %+v", stats.Jobs)
	}

	// Pool-wide reset zeroes both members.
	if _, err := cl.ResetCache(ctx); err != nil {
		t.Fatal(err)
	}
	per, err = pool.CacheStats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range per {
		if st.Hits != 0 || st.Misses != 0 {
			t.Fatalf("backend %d not reset: %+v", i, st)
		}
	}
}

// The gateway forwards Authorization to the backends, so one token
// file can protect the whole deployment even with no edge auth.
func TestGatewayAuthPassthrough(t *testing.T) {
	b := server.New(thermflow.NewBatch(1))
	backend := httptest.NewServer(server.Chain(b, server.WithAuth(server.NewTokenSet("sekrit"))))
	t.Cleanup(func() { backend.Close(); b.Close() })
	_, ts := newTestGateway(t, Config{}, backend.URL)

	// Without the token the backend's 401 travels back through the
	// gateway untouched.
	noAuth := client.New(ts.URL, nil, client.WithRetries(1))
	_, err := noAuth.Kernels(context.Background())
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless request: %v, want 401", err)
	}

	withAuth := client.New(ts.URL, nil, client.WithToken("sekrit"))
	if _, err := withAuth.Kernels(context.Background()); err != nil {
		t.Fatalf("authed request through gateway: %v", err)
	}
}

// A batch whose jobs are malformed is rejected before the stream
// starts, with the backend's status mapping.
func TestGatewayBatchValidation(t *testing.T) {
	b1, _ := newBackend(t)
	_, ts := newTestGateway(t, Config{}, b1.URL)

	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"jobs":[]}`, http.StatusUnprocessableEntity},
		{`{"jobs":[{"kernel":"no-such-kernel"}]}`, http.StatusUnprocessableEntity},
		{`{"jobs":[{"kernel":"dot","options":{"policy":"bogus"}}]}`, http.StatusUnprocessableEntity},
		{`{not json`, http.StatusBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/v2/batch", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("batch %q: status %d, want %d", tc.body, resp.StatusCode, tc.want)
		}
	}
}

// The gateway stamps the tenant name its quota middleware resolved
// into X-Thermflow-Tenant on every proxied request — and a tenant
// header spoofed by the client never propagates, because outbound
// requests are built fresh.
func TestGatewayStampsTenantHeader(t *testing.T) {
	quotas, err := tenant.Parse([]byte(`{
		"tenants": [{"name": "acme", "class": "high", "tokens": ["acme-token"]}]
	}`))
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	seen := map[string]string{} // request path → tenant header at the backend
	b := server.New(thermflow.NewBatch(1))
	t.Cleanup(b.Close)
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen[r.URL.Path] = r.Header.Get(server.TenantHeader)
		mu.Unlock()
		b.ServeHTTP(w, r)
	}))
	t.Cleanup(backend.Close)

	g, _ := newTestGateway(t, Config{}, backend.URL)
	edge := httptest.NewServer(server.Chain(g, server.WithQuotas(server.QuotaConfig{Quotas: quotas})))
	t.Cleanup(edge.Close)

	do := func(token, spoof string) {
		t.Helper()
		body, _ := json.Marshal(testJobs(1)[0])
		req, err := http.NewRequest(http.MethodPost, edge.URL+"/v2/jobs", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		if spoof != "" {
			req.Header.Set(server.TenantHeader, spoof)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode >= 400 {
			t.Fatalf("submit through gateway: %d", resp.StatusCode)
		}
	}

	do("acme-token", "")
	mu.Lock()
	got := seen["/v2/jobs"]
	mu.Unlock()
	if got != "acme" {
		t.Errorf("backend saw tenant header %q, want %q", got, "acme")
	}

	// An unrecognized token claiming a tenant by header gets nothing.
	do("", "acme")
	mu.Lock()
	got = seen["/v2/jobs"]
	mu.Unlock()
	if got != "" {
		t.Errorf("spoofed tenant header propagated as %q", got)
	}
}
