package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"thermflow"
	"thermflow/api"
	"thermflow/internal/server"
	"thermflow/internal/trace"
)

// This file is the coordinator half of the distributed region solve: a
// v2 job submitted with kind "region" is not routed to one backend —
// the gateway partitions the program's CFG into regions, fans each
// region's fixpoint steps out across the pool (each region keyed onto
// the ring by jobID/region, so its interior state stays on one
// backend), and exchanges only the cut-point boundary thermal states
// between rounds. With region_delta 0 the schedule reproduces the
// dense solver's read pattern exactly — the merged result is
// byte-identical to a single-backend compile; with region_delta > 0
// regions run to local fixpoints per round within the documented error
// budget. Backends that lose their session (restart, eviction) answer
// Restarted and the job re-runs from round 1, a bounded number of
// times — sessions rebuild from the spec, so a restart costs time,
// never correctness.

// maxRegionAttempts bounds whole-job restarts after backend session
// loss before the gateway gives up with a 502.
const maxRegionAttempts = 3

// regionRouteKey shards one region of one job onto the ring.
func regionRouteKey(id string, region int) string {
	return fmt.Sprintf("%s/region/%d", id, region)
}

// errRegionRestart signals that a backend rebuilt its session mid-job:
// interior state from earlier rounds is gone and the attempt must
// start over.
var errRegionRestart = fmt.Errorf("gateway: backend session restarted")

// handleRegionJob coordinates one region job end to end and answers
// with a terminal JobStatus, mirroring what a backend returns for a
// completed v2 job. The gateway stays stateless across requests: every
// coordinator artifact lives in this request's frame.
func (g *Gateway) handleRegionJob(w http.ResponseWriter, r *http.Request, req api.JobRequest, body []byte) {
	spec, err := server.ResolveSpec(req)
	if err != nil {
		server.WriteErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	id, err := spec.ID()
	if err != nil {
		server.WriteErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		server.WriteErr(w, http.StatusUnprocessableEntity, "encoding spec: %v", err)
		return
	}
	submitted := time.Now()
	server.AnnotateJob(r, id)
	// psc is the gateway's server span for the submit request; each
	// attempt's coordination runs as one region.coordinate child of it,
	// with round and backend step spans stitched underneath.
	psc := trace.FromContext(r.Context())

	var compiled *thermflow.Compiled
	var lastErr error
	for attempt := 1; attempt <= maxRegionAttempts; attempt++ {
		coord, cerr := thermflow.NewRegionSession(spec)
		if cerr != nil {
			server.WriteErr(w, http.StatusUnprocessableEntity, "%v", cerr)
			return
		}
		if coord.NumRegions() < 2 {
			// Nothing to fan out — a single-region partition solves
			// exactly like a plain job, so route it as one (backends
			// ignore the kind field).
			g.forwardRelay(w, r, id, http.MethodPost, "/v2/jobs", body,
				func(w http.ResponseWriter, resp *http.Response, served string) {
					g.relayAndReplicate(w, r, resp, served)
				})
			return
		}
		var csc trace.SpanContext
		if psc.Valid() {
			csc = psc.Child()
		}
		attemptStart := time.Now()
		compiled, lastErr = g.runRegionJob(r, coord, id, specJSON, csc)
		if csc.Valid() {
			outcome := "done"
			if lastErr != nil {
				outcome = "restart"
				if lastErr != errRegionRestart {
					outcome = "error"
				}
			}
			g.trace.Record(id, trace.Span{
				TraceID: csc.TraceID, SpanID: csc.SpanID, Parent: psc.SpanID,
				Name: "region.coordinate", Start: attemptStart, Duration: time.Since(attemptStart),
				Attrs: map[string]string{
					"attempt": strconv.Itoa(attempt),
					"regions": strconv.Itoa(coord.NumRegions()),
					"outcome": outcome,
				},
			})
		}
		if lastErr == nil {
			break
		}
		if r.Context().Err() != nil {
			return // client gone
		}
		if lastErr != errRegionRestart {
			server.WriteErr(w, http.StatusBadGateway, "gateway: region solve: %v", lastErr)
			return
		}
		g.logger.Printf("gateway: region job %s attempt %d restarted by a backend", id, attempt)
	}
	if compiled == nil {
		server.WriteErr(w, http.StatusBadGateway,
			"gateway: region job %s failed after %d attempts: %v", id, maxRegionAttempts, lastErr)
		return
	}
	finished := time.Now()
	server.WriteJSON(w, http.StatusOK, api.JobStatus{
		ID:          id,
		State:       "done",
		Result:      api.ResponseFor(compiled, false),
		SubmittedMS: submitted.UnixMilli(),
		StartedMS:   submitted.UnixMilli(),
		FinishedMS:  finished.UnixMilli(),
	})
}

// regionStep is one region's outcome within a round.
type regionStep struct {
	region int
	served string // backend that answered (for span attribution)
	resp   api.RegionSolveResponse
	err    error
}

// runRegionJob drives one attempt: rounds of region steps to global
// convergence, then fragment collection and finalization. csc, when
// valid, is the attempt's region.coordinate span: every round records a
// region.round child, and each backend's returned step span is
// re-parented under its round and stamped with the serving backend —
// the stitch that makes one job's timeline span the whole pool.
func (g *Gateway) runRegionJob(r *http.Request, coord *thermflow.RegionSession, id string, specJSON []byte, csc trace.SpanContext) (*thermflow.Compiled, error) {
	var (
		history     []float64
		finalDelta  float64
		converged   bool
		iterations  int
		blockSweeps int
	)
	slack := coord.Slack()
	tol := coord.Delta()
	if slack > 0 {
		tol += slack
	}
	waves := coord.Waves()
	if slack > 0 {
		// Jacobi rounds: every region steps against the boundary
		// states frozen at round start, so waves collapse into one.
		all := make([]int, 0, coord.NumRegions())
		for _, wave := range waves {
			all = append(all, wave...)
		}
		waves = [][]int{all}
	}

	for round := 1; round <= coord.MaxIter(); round++ {
		roundDelta := 0.0
		rsc := trace.SpanContext{}
		rr := r
		if csc.Valid() {
			// The round span's identity rides the outbound trace headers,
			// so each backend's region.solve arrives parented under it.
			rsc = csc.Child()
			rr = r.WithContext(trace.NewContext(r.Context(), rsc))
		}
		roundStart := time.Now()
		for _, wave := range waves {
			steps := g.stepWave(rr, coord, id, specJSON, round, wave)
			g.stitchSteps(id, rsc, steps)
			for _, st := range steps {
				if st.err != nil {
					return nil, st.err
				}
				if st.resp.Restarted && round > 1 {
					return nil, errRegionRestart
				}
				blockSweeps += st.resp.Sweeps * coord.RegionSize(st.region)
				if slack > 0 {
					// Convergence is boundary movement, measured against
					// the coordinator's pre-round copies.
					for _, bs := range st.resp.Boundary {
						if d := maxAbsDiff(coord.State(bs.Block), bs.State); d > roundDelta {
							roundDelta = d
						}
					}
				} else if st.resp.Delta > roundDelta {
					roundDelta = st.resp.Delta
				}
			}
			// Install the wave's exports only after every response is
			// in: exact mode needs downstream waves to read them, slack
			// mode needs them frozen until the round ends.
			for _, st := range steps {
				for _, bs := range st.resp.Boundary {
					if err := coord.SetState(bs.Block, bs.State); err != nil {
						return nil, err
					}
				}
			}
		}
		iterations = round
		history = append(history, roundDelta)
		finalDelta = roundDelta
		if rsc.Valid() {
			g.trace.Record(id, trace.Span{
				TraceID: rsc.TraceID, SpanID: rsc.SpanID, Parent: csc.SpanID,
				Name: "region.round", Start: roundStart, Duration: time.Since(roundStart),
				Attrs: map[string]string{
					"round": strconv.Itoa(round),
					"delta": strconv.FormatFloat(roundDelta, 'g', -1, 64),
				},
			})
		}
		if roundDelta <= tol {
			converged = true
			break
		}
	}

	if err := g.collectRegions(r, coord, id, specJSON); err != nil {
		return nil, err
	}
	return coord.Finalize(iterations, history, finalDelta, converged, blockSweeps), nil
}

// stepWave advances every region of one wave concurrently.
func (g *Gateway) stepWave(r *http.Request, coord *thermflow.RegionSession, id string, specJSON []byte, round int, wave []int) []regionStep {
	steps := make([]regionStep, len(wave))
	var wg sync.WaitGroup
	for i, region := range wave {
		steps[i].region = region
		req := api.RegionSolveRequest{
			JobID: id, Region: region, Round: round, Spec: specJSON,
		}
		for _, b := range coord.InputBlocks(region) {
			req.Boundary = append(req.Boundary, api.RegionBlockState{Block: b, State: coord.State(b)})
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			steps[i].served, steps[i].err = g.regionPost(r, regionRouteKey(id, region), "/v2/regions/solve", req, &steps[i].resp)
		}()
	}
	wg.Wait()
	return steps
}

// stitchSteps folds backend-returned step spans into the job's gateway
// timeline: each span is re-parented under the round that requested it
// (its original parent is the backend's private server span) and
// stamped with the backend that served it, keeping its own service
// name and timings.
func (g *Gateway) stitchSteps(id string, rsc trace.SpanContext, steps []regionStep) {
	if !rsc.Valid() {
		return
	}
	for _, st := range steps {
		if st.resp.Span == nil {
			continue
		}
		sp := server.SpanFromWire(*st.resp.Span)
		sp.Parent = rsc.SpanID
		if st.served != "" {
			if sp.Attrs == nil {
				sp.Attrs = make(map[string]string)
			}
			sp.Attrs["backend"] = st.served
		}
		g.trace.Record(id, sp)
	}
}

// collectRegions fetches and merges every region's result fragment.
func (g *Gateway) collectRegions(r *http.Request, coord *thermflow.RegionSession, id string, specJSON []byte) error {
	nr := coord.NumRegions()
	frags := make([]api.RegionCollectResponse, nr)
	errs := make([]error, nr)
	var wg sync.WaitGroup
	for region := 0; region < nr; region++ {
		req := api.RegionCollectRequest{JobID: id, Region: region, Spec: specJSON}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[region] = g.regionPost(r, regionRouteKey(id, region), "/v2/regions/collect", req, &frags[region])
		}()
	}
	wg.Wait()
	for region := 0; region < nr; region++ {
		if errs[region] != nil {
			return errs[region]
		}
		if frags[region].Restarted {
			return errRegionRestart
		}
		if err := coord.AbsorbFragment(region, frags[region].BlockIn, frags[region].Instr); err != nil {
			return err
		}
	}
	return nil
}

// regionPost issues one region-protocol request against the key's
// owner, failing over to ring successors on transport errors only — an
// HTTP error status is the backend's answer and surfaces as an error
// here. A successor answering a mid-job step has no session and
// reports Restarted, which the caller turns into a job restart. The
// returned name is the backend that answered ("" when none did).
func (g *Gateway) regionPost(r *http.Request, key, path string, reqBody, out any) (string, error) {
	body, err := json.Marshal(reqBody)
	if err != nil {
		return "", err
	}
	cands := g.route(key)
	if len(cands) == 0 {
		return "", fmt.Errorf("gateway: no healthy backend")
	}
	var lastErr error
	for _, name := range cands {
		resp, err := g.send(r, name, http.MethodPost, path, body)
		if err != nil {
			if r.Context().Err() != nil {
				return "", r.Context().Err()
			}
			g.observeFailure(name, err)
			g.metrics.failovers.Inc()
			lastErr = fmt.Errorf("backend %s: %w", name, err)
			continue
		}
		func() {
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
				err = fmt.Errorf("backend %s: %s: %s", name, resp.Status, msg)
				return
			}
			err = json.NewDecoder(resp.Body).Decode(out)
		}()
		return name, err
	}
	return "", fmt.Errorf("gateway: no backend reachable: %w", lastErr)
}

// maxAbsDiff returns the largest absolute elementwise difference.
func maxAbsDiff(a, b []float64) float64 {
	max := 0.0
	for i := range a {
		if i >= len(b) {
			break
		}
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > max {
			max = d
		}
	}
	return max
}
