package gateway

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Active health checking: every HealthInterval the gateway probes each
// backend's GET /v2/stats. Any HTTP answer counts as alive — a backend
// that rejects the probe with 401 (the gateway holds no credentials of
// its own) or even answers 500 is still a process that routes — while
// transport failures count against it: EjectAfter consecutive failures
// remove it from the ring, after which probes back off exponentially
// (capped at MaxProbeBackoff) and the first success readmits it.
// Proxy-path transport failures feed the same counters, so real
// traffic ejects a dead backend even faster than the probe cadence.

// healthLoop drives the probe rounds until Close.
func (g *Gateway) healthLoop(ctx context.Context) {
	defer g.wg.Done()
	g.probeRound(ctx)
	t := time.NewTicker(g.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			g.probeRound(ctx)
		}
	}
}

// probeRound probes every backend that is due, concurrently, and waits
// for the round to finish — one slow backend cannot stall the others'
// verdicts beyond its own probe timeout. Healthy backends are due on
// every tick (nextProbe would lag one tick behind the ticker and halve
// the effective cadence); nextProbe gates only the backoff of ejected
// ones.
func (g *Gateway) probeRound(ctx context.Context) {
	now := time.Now()
	g.mu.Lock()
	var due []string
	for name, b := range g.backends {
		if b.healthy || !now.Before(b.nextProbe) {
			due = append(due, name)
		}
	}
	g.mu.Unlock()

	done := make(chan struct{}, len(due))
	for _, name := range due {
		go func() {
			g.probeOne(ctx, name)
			done <- struct{}{}
		}()
	}
	for range due {
		<-done
	}
}

// probeOne issues one health probe.
func (g *Gateway) probeOne(ctx context.Context, name string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, name+"/v2/stats", nil)
	if err != nil {
		g.observeFailure(name, err)
		return
	}
	resp, err := g.probe.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return // shutting down; not the backend's fault
		}
		g.observeFailure(name, err)
		return
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	g.observeSuccess(name)
}

// observeSuccess records a live backend, readmitting it to the ring if
// it was ejected.
func (g *Gateway) observeSuccess(name string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	b := g.backends[name]
	if b == nil {
		return
	}
	now := time.Now()
	b.fails = 0
	b.lastErr = ""
	b.lastProbe = now
	b.nextProbe = now // healthy members are probed every tick
	if !b.healthy {
		b.healthy = true
		g.rebuildRingLocked()
		g.metrics.readmissions.Inc()
		g.logger.Printf("gateway: backend %s readmitted (%d on ring)", name, g.ring.Len())
	}
	// A backend answering again while it owes a cache reset gets the
	// reset re-issued before it can serve pre-reset results as fresh.
	if b.pendingCacheReset && !b.resetInflight {
		b.resetInflight = true
		g.wg.Add(1)
		go g.reissueCacheReset(name, b.cacheResetAuth)
	}
}

// reissueCacheReset retries a pool-wide cache reset on a backend the
// original DELETE /v1/cache did not reach. On failure the pending flag
// stays set; the next successful contact tries again.
func (g *Gateway) reissueCacheReset(name, auth string) {
	defer g.wg.Done()
	ctx, cancel := context.WithTimeout(context.Background(), replicatePushTimeout)
	defer cancel()
	ok := false
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, name+"/v1/cache", nil)
	if err == nil {
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		var resp *http.Response
		resp, err = g.hc.Do(req)
		if err == nil {
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			ok = resp.StatusCode/100 == 2
			if !ok {
				err = fmt.Errorf("%s", resp.Status)
			}
		}
	}
	g.mu.Lock()
	if b := g.backends[name]; b != nil {
		b.resetInflight = false
		if ok {
			b.pendingCacheReset = false
			b.cacheResetAuth = ""
		}
	}
	g.mu.Unlock()
	if ok {
		g.logger.Printf("gateway: backend %s: pending cache reset re-issued", name)
	} else {
		g.logger.Printf("gateway: backend %s: pending cache reset re-issue failed: %v", name, err)
	}
}

// observeFailure records a probe or proxy transport failure,
// ejecting the backend once the failure streak reaches EjectAfter and
// backing its probes off while it stays dark.
func (g *Gateway) observeFailure(name string, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	b := g.backends[name]
	if b == nil {
		return
	}
	now := time.Now()
	b.fails++
	b.lastErr = err.Error()
	b.lastProbe = now
	if b.healthy && b.fails >= g.ejectAfter {
		b.healthy = false
		g.rebuildRingLocked()
		g.metrics.ejections.Inc()
		g.logger.Printf("gateway: backend %s ejected after %d failures: %v (%d on ring)",
			name, b.fails, err, g.ring.Len())
	}
	if b.healthy {
		b.nextProbe = now // still on the ring: keep the full cadence
		return
	}
	backoff := g.interval
	for i := g.ejectAfter; i < b.fails && backoff < g.maxBackoff; i++ {
		backoff *= 2
	}
	if backoff > g.maxBackoff {
		backoff = g.maxBackoff
	}
	b.nextProbe = now.Add(backoff)
}
