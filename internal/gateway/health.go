package gateway

import (
	"context"
	"io"
	"net/http"
	"time"
)

// Active health checking: every HealthInterval the gateway probes each
// backend's GET /v2/stats. Any HTTP answer counts as alive — a backend
// that rejects the probe with 401 (the gateway holds no credentials of
// its own) or even answers 500 is still a process that routes — while
// transport failures count against it: EjectAfter consecutive failures
// remove it from the ring, after which probes back off exponentially
// (capped at MaxProbeBackoff) and the first success readmits it.
// Proxy-path transport failures feed the same counters, so real
// traffic ejects a dead backend even faster than the probe cadence.

// healthLoop drives the probe rounds until Close.
func (g *Gateway) healthLoop(ctx context.Context) {
	defer g.wg.Done()
	g.probeRound(ctx)
	t := time.NewTicker(g.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			g.probeRound(ctx)
		}
	}
}

// probeRound probes every backend that is due, concurrently, and waits
// for the round to finish — one slow backend cannot stall the others'
// verdicts beyond its own probe timeout. Healthy backends are due on
// every tick (nextProbe would lag one tick behind the ticker and halve
// the effective cadence); nextProbe gates only the backoff of ejected
// ones.
func (g *Gateway) probeRound(ctx context.Context) {
	now := time.Now()
	g.mu.Lock()
	var due []string
	for name, b := range g.backends {
		if b.healthy || !now.Before(b.nextProbe) {
			due = append(due, name)
		}
	}
	g.mu.Unlock()

	done := make(chan struct{}, len(due))
	for _, name := range due {
		go func() {
			g.probeOne(ctx, name)
			done <- struct{}{}
		}()
	}
	for range due {
		<-done
	}
}

// probeOne issues one health probe.
func (g *Gateway) probeOne(ctx context.Context, name string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, name+"/v2/stats", nil)
	if err != nil {
		g.observeFailure(name, err)
		return
	}
	resp, err := g.probe.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return // shutting down; not the backend's fault
		}
		g.observeFailure(name, err)
		return
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	g.observeSuccess(name)
}

// observeSuccess records a live backend, readmitting it to the ring if
// it was ejected.
func (g *Gateway) observeSuccess(name string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	b := g.backends[name]
	if b == nil {
		return
	}
	now := time.Now()
	b.fails = 0
	b.lastErr = ""
	b.lastProbe = now
	b.nextProbe = now // healthy members are probed every tick
	if !b.healthy {
		b.healthy = true
		g.rebuildRingLocked()
		g.logger.Printf("gateway: backend %s readmitted (%d on ring)", name, g.ring.Len())
	}
}

// observeFailure records a probe or proxy transport failure,
// ejecting the backend once the failure streak reaches EjectAfter and
// backing its probes off while it stays dark.
func (g *Gateway) observeFailure(name string, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	b := g.backends[name]
	if b == nil {
		return
	}
	now := time.Now()
	b.fails++
	b.lastErr = err.Error()
	b.lastProbe = now
	if b.healthy && b.fails >= g.ejectAfter {
		b.healthy = false
		g.rebuildRingLocked()
		g.logger.Printf("gateway: backend %s ejected after %d failures: %v (%d on ring)",
			name, b.fails, err, g.ring.Len())
	}
	if b.healthy {
		b.nextProbe = now // still on the ring: keep the full cadence
		return
	}
	backoff := g.interval
	for i := g.ejectAfter; i < b.fails && backoff < g.maxBackoff; i++ {
		backoff *= 2
	}
	if backoff > g.maxBackoff {
		backoff = g.maxBackoff
	}
	b.nextProbe = now.Add(backoff)
}
