package gateway

import (
	"encoding/json"

	"thermflow/internal/joblog"
)

// Durable control-plane state: an operator's drain decision must
// survive a gateway restart — a backend drained for maintenance that
// silently rejoins the assignment ring when the gateway bounces would
// start taking new jobs mid-surgery. When Config.Log is set, every
// drain/undrain toggle appends one record (fsynced immediately; drains
// are rare and each one is an operator action worth a disk flush), and
// the set of draining backends is snapshotted on the joblog's usual
// snapshot-and-truncate cadence. New replays the log and re-applies
// the flags to the backends it knows; decisions about members no
// longer configured fall away.

// recDrain records one drain/undrain toggle.
const recDrain uint32 = 1

// drainSnapshotEvery is the state log's snapshot cadence.
const drainSnapshotEvery = 32

type drainRecord struct {
	Backend  string `json:"backend"`
	Draining bool   `json:"draining"`
}

// applyRecoveredStateLocked folds a recovered state log into the
// configured backends. Called by New before the ring is built or the
// handler is live.
func (g *Gateway) applyRecoveredStateLocked(rec joblog.Recovery) {
	drains := make(map[string]bool)
	if rec.Snapshot != nil {
		if err := json.Unmarshal(rec.Snapshot, &drains); err != nil {
			g.logger.Printf("gateway: state snapshot unreadable, replaying records only: %v", err)
			drains = make(map[string]bool)
		}
	}
	for _, wr := range rec.Records {
		if wr.Type != recDrain {
			continue
		}
		var d drainRecord
		if json.Unmarshal(wr.Payload, &d) == nil && d.Backend != "" {
			drains[d.Backend] = d.Draining
		}
	}
	restored := 0
	for name, draining := range drains {
		if b := g.backends[name]; b != nil && draining {
			b.draining = true
			restored++
		}
	}
	if restored > 0 {
		g.logger.Printf("gateway: restored %d draining backend(s) from state log", restored)
	}
	if rec.DroppedBytes > 0 || rec.DroppedSnapshot {
		g.logger.Printf("gateway: state log recovery dropped %d torn bytes (snapshot dropped: %v)",
			rec.DroppedBytes, rec.DroppedSnapshot)
	}
	// Compact to the re-applied state so restarts stay cheap.
	g.snapshotStateLocked()
}

// logDrainLocked persists one drain toggle.
func (g *Gateway) logDrainLocked(name string, draining bool) {
	if g.stateLog == nil {
		return
	}
	payload, err := json.Marshal(drainRecord{Backend: name, Draining: draining})
	if err == nil {
		err = g.stateLog.Append(recDrain, payload)
	}
	if err == nil {
		err = g.stateLog.Sync()
	}
	if err != nil {
		g.logger.Printf("gateway: state log append: %v", err)
		return
	}
	if g.stateLog.Records() >= drainSnapshotEvery {
		g.snapshotStateLocked()
	}
}

// snapshotStateLocked writes the current draining set as the state
// log's snapshot and truncates its WAL.
func (g *Gateway) snapshotStateLocked() {
	if g.stateLog == nil {
		return
	}
	drains := make(map[string]bool)
	for name, b := range g.backends {
		if b.draining {
			drains[name] = true
		}
	}
	payload, err := json.Marshal(drains)
	if err == nil {
		err = g.stateLog.Snapshot(payload)
	}
	if err != nil {
		g.logger.Printf("gateway: state log snapshot: %v", err)
	}
}
