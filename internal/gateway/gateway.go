// Package gateway implements thermflowgate: a sharding front server
// over a pool of thermflowd backends. It speaks the same HTTP surface
// as one backend — the full v2 job API plus the v1 endpoints — and
// routes every job to the pool member that owns its ID on a
// consistent-hash ring (ring.go), so the v2 content hash that already
// names the job, its cache slot and its disk entry now also names its
// shard.
//
// Scaling properties:
//
//   - Routing is deterministic and restart-stable: the ring is a pure
//     function of the member set, so every gateway instance (and every
//     restart) sends the same ID to the same backend, and each
//     backend's result store only ever holds its own shard.
//   - Membership changes are bounded-remap: ejecting or draining one
//     of n backends remaps only that backend's ~1/n of the keyspace.
//   - Batches fan out per shard and the ID-keyed NDJSON streams merge
//     back in completion order (batch.go); a backend dying mid-batch
//     has its unanswered jobs re-dispatched to the ring's next member
//     — safe because submission is idempotent by content identity —
//     with every index answered exactly once.
//   - Active health checks (health.go) eject unresponsive backends
//     with probe backoff and readmit them on recovery;
//     administrative draining (admin.go) removes a backend from the
//     ring while its in-flight work completes.
//
// The gateway holds no job state of its own: it canonicalizes requests
// just far enough to learn their identity (server.ResolveSpec — the
// same code path the backends use), then proxies bytes. Cross-cutting
// hardening (auth, rate limiting, request IDs, access logs, body and
// deadline caps) reuses the internal/server middleware stack, composed
// by cmd/thermflowgate exactly as cmd/thermflowd composes it.
package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"thermflow"
	"thermflow/api"
	"thermflow/internal/joblog"
	"thermflow/internal/server"
	"thermflow/internal/trace"
)

// Defaults for Config fields left zero.
const (
	DefaultHealthInterval  = 2 * time.Second
	DefaultHealthTimeout   = 2 * time.Second
	DefaultEjectAfter      = 2
	DefaultMaxProbeBackoff = 30 * time.Second
	// DefaultReplicas is how many ring successors receive a copy of
	// each terminal job status when Config.Replicas is zero.
	DefaultReplicas = 1
)

// Config parameterizes New.
type Config struct {
	// Backends are the pool members' base URLs (scheme optional;
	// "host:port" is read as http). At least one is required.
	Backends []string
	// VNodes is the ring's virtual nodes per backend (<= 0 selects
	// DefaultVNodes).
	VNodes int
	// HealthInterval is the probe cadence for healthy backends;
	// HealthTimeout bounds one probe. Zero selects the defaults.
	HealthInterval time.Duration
	HealthTimeout  time.Duration
	// EjectAfter is how many consecutive probe failures eject a
	// backend from the ring (<= 0 selects DefaultEjectAfter). Ejected
	// backends are probed with exponential backoff up to
	// MaxProbeBackoff and readmitted on the first success.
	EjectAfter      int
	MaxProbeBackoff time.Duration
	// Client issues backend requests (nil selects a default with no
	// overall timeout — batch streams and long polls are long-lived;
	// they are bounded by the inbound request's context instead).
	Client *http.Client
	// Logger receives gateway events (nil selects the process default).
	Logger *log.Logger
	// Replicas is how many ring successors receive a copy of each
	// terminal job status the gateway relays, so a permanently dead
	// owner still answers GET /v2/jobs/{id} from a successor's replica
	// shelf. Zero selects DefaultReplicas; negative disables
	// replication.
	Replicas int
	// Log, when non-nil, persists the gateway's control-plane
	// decisions (drain/undrain) so they survive a gateway restart;
	// pass the Recovery from the same joblog.Open to replay them.
	Log      *joblog.Log
	Recovery *joblog.Recovery
	// Metrics, when non-nil, mounts GET /metrics on the gateway and
	// attaches its per-backend health/inflight gauges and
	// ejection/failover/replication counters to the registry. The HTTP
	// request series additionally require server.WithMetrics in the
	// middleware chain, which cmd/thermflowgate wires.
	Metrics *server.Metrics
	// Trace is the recorder for gateway-coordinated job timelines
	// (region jobs' coordinate/round spans stitched with every
	// backend's step spans) and the store behind GET
	// /v2/jobs/{id}/trace. Nil builds a private recorder — pass the
	// daemon's so server.WithTracing shares it.
	Trace *trace.Recorder
}

// Gateway is the thermflowgate HTTP handler plus its health checker.
// Construct with New, then Close to stop probing.
type Gateway struct {
	hc         *http.Client
	probe      *http.Client
	logger     *log.Logger
	vnodes     int
	ejectAfter int
	interval   time.Duration
	maxBackoff time.Duration
	replicas   int
	mux        *http.ServeMux

	mu       sync.Mutex
	backends map[string]*backend
	order    []string // configured listing order
	ring     *Ring    // assignment ring: healthy, not draining; swapped, never mutated
	readRing *Ring    // read ring: every healthy member, draining included
	stateLog *joblog.Log
	// replicated remembers IDs whose terminal status was already
	// pushed to successors, FIFO-capped; replOrder is its eviction
	// order.
	replicated map[string]bool
	replOrder  []string

	metrics gwMetrics       // inert zero value unless Config.Metrics was set
	trace   *trace.Recorder // never nil; stitched job timelines

	stop      context.CancelFunc
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// backend is one pool member's gateway-side state (guarded by
// Gateway.mu).
type backend struct {
	url string

	healthy   bool
	draining  bool
	fails     int
	lastErr   string
	lastProbe time.Time
	nextProbe time.Time
	inflight  int

	// pendingCacheReset records that a pool-wide cache reset could not
	// reach this backend; the reset (with the credentials of the
	// request that asked for it) is re-issued when the backend answers
	// again. resetInflight guards against stacking re-issues across
	// probe ticks.
	pendingCacheReset bool
	cacheResetAuth    string
	resetInflight     bool
}

// New builds the gateway over the configured pool and starts its
// health checker. Backends start healthy — the first probe round
// corrects optimism within a HealthInterval.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("gateway: no backends configured")
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = DefaultVNodes
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = DefaultHealthInterval
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = DefaultHealthTimeout
	}
	if cfg.EjectAfter <= 0 {
		cfg.EjectAfter = DefaultEjectAfter
	}
	if cfg.MaxProbeBackoff <= 0 {
		cfg.MaxProbeBackoff = DefaultMaxProbeBackoff
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.Logger == nil {
		cfg.Logger = log.Default()
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = DefaultReplicas
	}
	if cfg.Trace == nil {
		cfg.Trace = trace.NewRecorder("thermflowgate", 0, 0)
	}
	g := &Gateway{
		hc:         cfg.Client,
		probe:      &http.Client{Timeout: cfg.HealthTimeout},
		logger:     cfg.Logger,
		vnodes:     cfg.VNodes,
		ejectAfter: cfg.EjectAfter,
		interval:   cfg.HealthInterval,
		maxBackoff: cfg.MaxProbeBackoff,
		replicas:   cfg.Replicas,
		mux:        http.NewServeMux(),
		backends:   make(map[string]*backend),
		stateLog:   cfg.Log,
		replicated: make(map[string]bool),
		trace:      cfg.Trace,
	}
	for _, raw := range cfg.Backends {
		u, err := normalizeBackendURL(raw)
		if err != nil {
			return nil, err
		}
		if _, dup := g.backends[u]; dup {
			return nil, fmt.Errorf("gateway: duplicate backend %s", u)
		}
		g.backends[u] = &backend{url: u, healthy: true}
		g.order = append(g.order, u)
	}
	if g.stateLog != nil && cfg.Recovery != nil {
		g.applyRecoveredStateLocked(*cfg.Recovery)
	}
	g.rebuildRingLocked() // no contention before the handler is live

	g.mux.HandleFunc("POST /v2/jobs", g.handleJobSubmit)
	g.mux.HandleFunc("GET /v2/jobs/{id}", g.handleJobGet)
	g.mux.HandleFunc("GET /v2/jobs/{id}/wait", g.handleJobGet)
	g.mux.HandleFunc("GET /v2/jobs/{id}/trace", g.handleJobTrace)
	g.mux.HandleFunc("POST /v2/batch", g.handleBatchV2)
	g.mux.HandleFunc("GET /v2/stats", g.handleStats)
	g.mux.HandleFunc("POST /v1/compile", g.handleCompileV1)
	g.mux.HandleFunc("POST /v1/batch", g.handleBatchV1)
	g.mux.HandleFunc("GET /v1/kernels", g.handleKernels)
	g.mux.HandleFunc("GET /v1/cache", g.handleCacheGet)
	g.mux.HandleFunc("DELETE /v1/cache", g.handleCacheReset)
	g.mux.HandleFunc("GET /gateway/backends", g.handleBackends)
	g.mux.HandleFunc("POST /gateway/drain", g.handleDrain(true))
	g.mux.HandleFunc("POST /gateway/undrain", g.handleDrain(false))
	if cfg.Metrics != nil {
		g.instrumentMetrics(cfg.Metrics)
		g.mux.Handle("GET /metrics", cfg.Metrics.Handler())
	}

	ctx, cancel := context.WithCancel(context.Background())
	g.stop = cancel
	g.wg.Add(1)
	go g.healthLoop(ctx)
	return g, nil
}

// normalizeBackendURL canonicalizes a pool member's base URL — the
// string is the member's ring identity, so equal pools must spell
// their members identically.
func normalizeBackendURL(raw string) (string, error) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return "", fmt.Errorf("gateway: empty backend URL")
	}
	if !strings.Contains(raw, "://") {
		raw = "http://" + raw
	}
	u, err := url.Parse(raw)
	if err != nil || u.Host == "" {
		return "", fmt.Errorf("gateway: invalid backend URL %q", raw)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("gateway: backend %q: scheme %q not supported", raw, u.Scheme)
	}
	return strings.TrimRight(u.String(), "/"), nil
}

// Close stops the health checker. In-flight proxied requests are
// governed by their own contexts.
func (g *Gateway) Close() {
	g.closeOnce.Do(func() {
		g.stop()
		g.wg.Wait()
	})
}

func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}

// rebuildRingLocked recomputes the assignment ring from the eligible
// (healthy, not draining) members, and the read ring from every
// healthy member — a draining backend takes no new jobs but still
// holds and serves the ones it ran.
func (g *Gateway) rebuildRingLocked() {
	var eligible, readable []string
	for name, b := range g.backends {
		if !b.healthy {
			continue
		}
		readable = append(readable, name)
		if !b.draining {
			eligible = append(eligible, name)
		}
	}
	g.ring = NewRing(eligible, g.vnodes)
	g.readRing = NewRing(readable, g.vnodes)
}

// route returns key's owner followed by the failover successors —
// every eligible backend, in the order the key would remap if earlier
// members were ejected.
func (g *Gateway) route(key string) []string {
	g.mu.Lock()
	ring := g.ring
	g.mu.Unlock()
	return ring.Successors(key, ring.Len())
}

// acquire registers one in-flight request against a backend; the
// returned func releases it. Draining completes when every acquired
// slot has been released.
func (g *Gateway) acquire(name string) func() {
	g.mu.Lock()
	if b := g.backends[name]; b != nil {
		b.inflight++
	}
	g.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			if b := g.backends[name]; b != nil {
				b.inflight--
			}
			g.mu.Unlock()
		})
	}
}

// decodeBody unmarshals a JSON request body, mirroring the backends'
// status mapping: malformed JSON is 400, well-formed JSON naming
// unknown enums is 422. The boolean reports success; on failure the
// response has been written.
func decodeBody(w http.ResponseWriter, body []byte, v any) bool {
	if err := json.Unmarshal(body, v); err != nil {
		var unknown *thermflow.UnknownNameError
		if errors.As(err, &unknown) {
			server.WriteErr(w, http.StatusUnprocessableEntity, "%v", unknown)
		} else {
			server.WriteErr(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		}
		return false
	}
	return true
}

// readBody drains a capped request body. The boolean reports success;
// on failure the response has been written.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, server.MaxBodyBytes))
	if err != nil {
		server.WriteErr(w, http.StatusBadRequest, "reading body: %v", err)
		return nil, false
	}
	return body, true
}

// outboundRequest builds the proxied request for one backend,
// forwarding the credentials and request ID of the inbound one. When
// the gateway's quota middleware resolved a named tenant, its name is
// stamped into the TenantHeader so a backend started with
// -trust-tenant-header applies the same profile. Outbound requests are
// built fresh, so a TenantHeader spoofed by the inbound client never
// propagates — only the gateway's own resolution does.
func (g *Gateway) outboundRequest(ctx context.Context, r *http.Request, backendURL, method, pathAndQuery string, body []byte) (*http.Request, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, backendURL+pathAndQuery, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if auth := r.Header.Get("Authorization"); auth != "" {
		req.Header.Set("Authorization", auth)
	}
	if id := server.RequestID(r); id != "" {
		req.Header.Set(server.RequestIDHeader, id)
	} else if id := r.Header.Get(server.RequestIDHeader); id != "" {
		req.Header.Set(server.RequestIDHeader, id)
	}
	// Trace identity comes from ctx, not the inbound header: the
	// middleware already sanitized it, and the region coordinator passes
	// child contexts so each hop parents under the right span.
	if sc := trace.FromContext(ctx); sc.Valid() {
		req.Header.Set(server.TraceHeader, sc.Header())
	}
	if p := server.TenantProfile(r); p != nil && p.Name != "" && p.Name != "default" {
		req.Header.Set(server.TenantHeader, p.Name)
	}
	return req, nil
}

// send issues a proxied request against one backend, holding an
// in-flight slot until the response body is closed.
func (g *Gateway) send(r *http.Request, backendURL, method, pathAndQuery string, body []byte) (*http.Response, error) {
	req, err := g.outboundRequest(r.Context(), r, backendURL, method, pathAndQuery, body)
	if err != nil {
		return nil, err
	}
	release := g.acquire(backendURL)
	resp, err := g.hc.Do(req)
	if err != nil {
		release()
		return nil, err
	}
	resp.Body = &releasingBody{ReadCloser: resp.Body, release: release}
	return resp, nil
}

// releasingBody ties a backend's in-flight slot to its response body.
type releasingBody struct {
	io.ReadCloser
	release func()
}

func (b *releasingBody) Close() error {
	err := b.ReadCloser.Close()
	b.release()
	return err
}

// relayHeaders are the backend response headers that travel to the
// client: WWW-Authenticate because a relayed 401 must keep its
// challenge, the replica marker because clients (and smoke tests) can
// tell a successor's answer from the owner's.
var relayHeaders = []string{"Content-Type", "Retry-After", "WWW-Authenticate", server.ReplicaHeader}

// relay copies a backend response to the client verbatim: status, the
// headers that matter to clients, body bytes.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for _, h := range relayHeaders {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// forward tries key's owner, then its failover successors, relaying
// the first backend that answers at all — an HTTP error is the
// backend's answer and travels as-is; only transport failures move to
// the next candidate. Use for idempotent work (submits, compiles,
// pool-wide reads): re-dispatching to the ring's next member is where
// the key remaps once the dead owner is ejected, so retried and
// future requests converge on the same backend.
func (g *Gateway) forward(w http.ResponseWriter, r *http.Request, key, method, pathAndQuery string, body []byte) {
	g.forwardRelay(w, r, key, method, pathAndQuery, body,
		func(w http.ResponseWriter, resp *http.Response, _ string) { relay(w, resp) })
}

// forwardRelay is forward with a custom relay step: relayFn receives
// the first answering backend's response (and its name) and owns
// closing the body.
func (g *Gateway) forwardRelay(w http.ResponseWriter, r *http.Request, key, method, pathAndQuery string, body []byte, relayFn func(http.ResponseWriter, *http.Response, string)) {
	cands := g.route(key)
	if len(cands) == 0 {
		server.WriteErr(w, http.StatusServiceUnavailable, "gateway: no healthy backend")
		return
	}
	var lastErr error
	for _, name := range cands {
		resp, err := g.send(r, name, method, pathAndQuery, body)
		if err != nil {
			if r.Context().Err() != nil {
				return // client gone
			}
			g.observeFailure(name, err)
			g.metrics.failovers.Inc()
			lastErr = err
			continue
		}
		relayFn(w, resp, name)
		return
	}
	server.WriteErr(w, http.StatusBadGateway, "gateway: no backend reachable: %v", lastErr)
}

// resolveID canonicalizes a job request into its content identity —
// the shard key. Failures are 422, exactly as on a backend.
func resolveID(w http.ResponseWriter, req api.JobRequest) (string, bool) {
	spec, err := server.ResolveSpec(req)
	if err != nil {
		server.WriteErr(w, http.StatusUnprocessableEntity, "%v", err)
		return "", false
	}
	id, err := spec.ID()
	if err != nil {
		server.WriteErr(w, http.StatusUnprocessableEntity, "%v", err)
		return "", false
	}
	return id, true
}

// handleJobSubmit is POST /v2/jobs: canonicalize to learn the ID,
// route to its owner, forward the original bytes. Submission is
// idempotent by content identity, so owner failure falls over to the
// ring's next member — the same backend the ID remaps to once the
// owner is ejected.
func (g *Gateway) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req api.JobRequest
	if !decodeBody(w, body, &req) {
		return
	}
	switch req.Kind {
	case "", "compile":
	case "region":
		// Region jobs are coordinated by the gateway itself: the
		// fixpoint fans out across the pool (regions.go).
		g.handleRegionJob(w, r, req, body)
		return
	default:
		server.WriteErr(w, http.StatusUnprocessableEntity, "unknown job kind %q", req.Kind)
		return
	}
	id, ok := resolveID(w, req)
	if !ok {
		return
	}
	server.AnnotateJob(r, id)
	// A submit can answer terminally on the spot (a duplicate of a done
	// job, or a cache hit), so its relay replicates like a status read.
	g.forwardRelay(w, r, id, http.MethodPost, "/v2/jobs", body,
		func(w http.ResponseWriter, resp *http.Response, served string) {
			g.relayAndReplicate(w, r, resp, served)
		})
}

// handleJobGet serves GET /v2/jobs/{id} and /wait: routed by ID alone
// — no body to canonicalize — to the owner that holds the registry
// entry, then through the read ring's successors. The job may live on
// the assignment-ring owner (new jobs), on the read-ring owner still
// serving a shard it ran while draining, or — when the owner is dead
// for good — on a successor's replica shelf, where the gateway parked
// a copy of the terminal status. The gateway follows 404s and
// transport failures down that candidate list; a pool that answers
// only 404s yields an honest 404, and a list exhausted by transport
// failures is a 502 — the client retries, by which time the health
// checker has ejected the dead owner and the ring routes the ID to
// the member where idempotent re-submission converges.
func (g *Gateway) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	server.AnnotateJob(r, id)
	g.mu.Lock()
	var cands []string
	seen := make(map[string]bool)
	add := func(name string) {
		if name != "" && !seen[name] {
			seen[name] = true
			cands = append(cands, name)
		}
	}
	if owner, ok := g.ring.Lookup(id); ok {
		add(owner)
	}
	// Owner first, then the successors that would hold replicas.
	succ := 1
	if g.replicas > 0 {
		succ += g.replicas
	}
	for _, name := range g.readRing.Successors(id, succ) {
		add(name)
	}
	g.mu.Unlock()
	if len(cands) == 0 {
		server.WriteErr(w, http.StatusServiceUnavailable, "gateway: no healthy backend")
		return
	}
	path := r.URL.Path
	if q := r.URL.RawQuery; q != "" {
		path += "?" + q
	}
	var lastErr error
	for i, owner := range cands {
		last := i == len(cands)-1
		resp, err := g.send(r, owner, http.MethodGet, path, nil)
		if err != nil {
			if r.Context().Err() != nil {
				return // client gone
			}
			g.observeFailure(owner, err)
			lastErr = fmt.Errorf("backend %s: %w", owner, err)
			if last {
				server.WriteErr(w, http.StatusBadGateway, "gateway: %v", lastErr)
				return
			}
			g.metrics.failovers.Inc()
			continue
		}
		if resp.StatusCode == http.StatusNotFound && !last {
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			continue
		}
		g.relayAndReplicate(w, r, resp, owner)
		return
	}
}

// handleJobTrace is GET /v2/jobs/{id}/trace. A gateway-coordinated job
// (kind "region") has its stitched timeline right here — coordinator
// and round spans plus every backend's step spans under one trace ID —
// and is served locally. Any other job ran on a backend, so the
// request follows the same owner→successor walk as a status read (the
// proxied path is already the trace path) and the gateway's own edge
// spans for the job are merged into the backend's timeline, giving the
// caller the submit-to-solve view across both processes.
func (g *Gateway) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	local, hasLocal := g.trace.Timeline(id)
	for _, sp := range local.Spans {
		if sp.Name != "http.server" {
			// Coordination spans mean this is the stitched view — the
			// richest record of the job anywhere in the deployment.
			server.AnnotateJob(r, id)
			server.WriteJSON(w, http.StatusOK, server.TraceResponseFor(local, g.trace.Service()))
			return
		}
	}

	buf := &bufferedResponse{header: make(http.Header), status: http.StatusOK}
	g.handleJobGet(buf, r)
	if buf.status == http.StatusOK {
		var remote api.TraceResponse
		if err := json.Unmarshal(buf.body.Bytes(), &remote); err == nil {
			if hasLocal {
				remote.Service = g.trace.Service()
				for _, sp := range local.Spans {
					remote.Spans = append(remote.Spans, server.WireSpan(sp))
				}
				remote.Dropped += local.Dropped
			}
			server.AnnotateJob(r, id)
			server.WriteJSON(w, http.StatusOK, remote)
			return
		}
	}
	if hasLocal {
		// No backend record (aged out, or the backend is gone): the
		// edge view still beats a 404.
		server.AnnotateJob(r, id)
		server.WriteJSON(w, http.StatusOK, server.TraceResponseFor(local, g.trace.Service()))
		return
	}
	for k, vs := range buf.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(buf.status)
	_, _ = w.Write(buf.body.Bytes())
}

// bufferedResponse captures a proxied response so handleJobTrace can
// merge its own spans into a backend's timeline before answering.
type bufferedResponse struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header  { return b.header }
func (b *bufferedResponse) WriteHeader(code int) { b.status = code }
func (b *bufferedResponse) Write(p []byte) (int, error) {
	return b.body.Write(p)
}

// handleCompileV1 is POST /v1/compile: the synchronous v1 face of a
// submit — same canonicalization, same idempotent routing.
func (g *Gateway) handleCompileV1(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req api.CompileRequest
	if !decodeBody(w, body, &req) {
		return
	}
	id, ok := resolveID(w, api.JobRequest{
		Kernel: req.Kernel, Program: req.Program, Root: req.Root, Options: req.Options,
	})
	if !ok {
		return
	}
	g.forward(w, r, id, http.MethodPost, "/v1/compile", body)
}

// handleKernels is GET /v1/kernels: identical on every backend, so any
// reachable one may answer. A fixed pseudo-key keeps the choice stable
// (and its failover order meaningful) without a round-robin counter.
func (g *Gateway) handleKernels(w http.ResponseWriter, r *http.Request) {
	g.forward(w, r, "gateway:kernels", http.MethodGet, "/v1/kernels", nil)
}

// healthyBackends snapshots the backends worth aggregating over:
// healthy members, draining included — they still hold shard state.
func (g *Gateway) healthyBackends() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []string
	for _, name := range g.order {
		if g.backends[name].healthy {
			out = append(out, name)
		}
	}
	return out
}

// fanAggregate issues one request per healthy backend concurrently and
// decodes each 2xx JSON body into the value fold returns. It reports
// the backends that answered and the first failure.
func (g *Gateway) fanAggregate(r *http.Request, method, path string, each func() any, fold func(any)) (int, error) {
	names := g.healthyBackends()
	type outcome struct {
		v   any
		err error
	}
	results := make([]outcome, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := g.send(r, name, method, path, nil)
			if err != nil {
				// A failure caused by the client hanging up is not the
				// backend's: charging it would let one impatient
				// scraper eject the whole healthy pool.
				if r.Context().Err() == nil {
					g.observeFailure(name, err)
				}
				results[i] = outcome{err: fmt.Errorf("backend %s: %w", name, err)}
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode/100 != 2 {
				body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
				results[i] = outcome{err: fmt.Errorf("backend %s: %s: %s", name, resp.Status, body)}
				return
			}
			v := each()
			if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
				results[i] = outcome{err: fmt.Errorf("backend %s: decoding: %w", name, err)}
				return
			}
			results[i] = outcome{v: v}
		}()
	}
	wg.Wait()
	answered := 0
	var firstErr error
	for _, res := range results {
		switch {
		case res.err != nil:
			if firstErr == nil {
				firstErr = res.err
			}
		case res.v != nil:
			fold(res.v)
			answered++
		}
	}
	return answered, firstErr
}

// handleCacheGet is GET /v1/cache: the pool-wide cache view — per-tier
// counters summed across every healthy backend.
func (g *Gateway) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	g.aggregateCache(w, r, http.MethodGet)
}

// handleCacheReset is DELETE /v1/cache fanned out to EVERY configured
// backend — ejected and draining members included. The caller asked
// for durable state to go away pool-wide, and an ejected backend is
// exactly the one that would otherwise rejoin later with its disk
// tier intact and a cache the operator believes is empty. Members the
// reset does not reach are reported in the response's Unreached list
// (status 502) and remembered: the reset is re-issued automatically
// when each one answers probes again (see observeSuccess).
func (g *Gateway) handleCacheReset(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	names := append([]string(nil), g.order...)
	g.mu.Unlock()
	auth := r.Header.Get("Authorization")

	type outcome struct {
		stats api.CacheStats
		err   error
	}
	results := make([]outcome, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := g.send(r, name, http.MethodDelete, "/v1/cache", nil)
			if err != nil {
				if r.Context().Err() == nil {
					g.observeFailure(name, err)
				}
				results[i].err = fmt.Errorf("backend %s: %w", name, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode/100 != 2 {
				body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
				results[i].err = fmt.Errorf("backend %s: %s: %s", name, resp.Status, body)
				return
			}
			if err := json.NewDecoder(resp.Body).Decode(&results[i].stats); err != nil {
				results[i].err = fmt.Errorf("backend %s: decoding: %w", name, err)
			}
		}()
	}
	wg.Wait()

	var out api.CacheResetResponse
	var firstErr error
	for i, res := range results {
		if res.err != nil {
			out.Unreached = append(out.Unreached, names[i])
			if firstErr == nil {
				firstErr = res.err
			}
			// Remember the miss; a decode failure re-issues a reset that
			// already happened, which is idempotent and safe.
			g.markPendingCacheReset(names[i], auth)
			continue
		}
		addCacheStats(&out.CacheStats, &res.stats)
	}
	if len(out.Unreached) > 0 {
		out.Error = firstErr.Error()
		g.logger.Printf("gateway: cache reset missed %d backend(s), will re-issue on readmission: %v",
			len(out.Unreached), firstErr)
		server.WriteJSON(w, http.StatusBadGateway, out)
		return
	}
	server.WriteJSON(w, http.StatusOK, out)
}

// markPendingCacheReset flags a backend whose cache reset failed, so
// the next successful contact re-issues it.
func (g *Gateway) markPendingCacheReset(name, auth string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if b := g.backends[name]; b != nil {
		b.pendingCacheReset = true
		b.cacheResetAuth = auth
	}
}

func (g *Gateway) aggregateCache(w http.ResponseWriter, r *http.Request, method string) {
	var agg api.CacheStats
	n, err := g.fanAggregate(r, method, "/v1/cache",
		func() any { return &api.CacheStats{} },
		func(v any) { addCacheStats(&agg, v.(*api.CacheStats)) })
	if n == 0 {
		server.WriteErr(w, http.StatusBadGateway, "gateway: no backend answered: %v", err)
		return
	}
	if err != nil {
		server.WriteErr(w, http.StatusBadGateway, "gateway: partial pool answer: %v", err)
		return
	}
	server.WriteJSON(w, http.StatusOK, agg)
}

// handleStats is GET /v2/stats: the pool-wide job and cache totals.
func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	var agg api.StatsResponse
	n, err := g.fanAggregate(r, http.MethodGet, "/v2/stats",
		func() any { return &api.StatsResponse{} },
		func(v any) {
			sr := v.(*api.StatsResponse)
			agg.Jobs.Queued += sr.Jobs.Queued
			agg.Jobs.Running += sr.Jobs.Running
			agg.Jobs.Terminal += sr.Jobs.Terminal
			agg.Jobs.Capacity += sr.Jobs.Capacity
			agg.Jobs.Concurrency += sr.Jobs.Concurrency
			addCacheStats(&agg.Cache, &sr.Cache)
		})
	if n == 0 {
		server.WriteErr(w, http.StatusBadGateway, "gateway: no backend answered: %v", err)
		return
	}
	if err != nil {
		// Partial totals would read as the pool shrinking; like the
		// cache aggregate, refuse rather than mislead.
		server.WriteErr(w, http.StatusBadGateway, "gateway: partial pool answer: %v", err)
		return
	}
	server.WriteJSON(w, http.StatusOK, agg)
}

func addCacheStats(dst, src *api.CacheStats) {
	dst.Hits += src.Hits
	dst.Misses += src.Misses
	dst.Panics += src.Panics
	dst.Workers += src.Workers
	addTier(&dst.Memory, &src.Memory)
	addTier(&dst.Disk, &src.Disk)
	dst.DiskEnabled = dst.DiskEnabled || src.DiskEnabled
}

func addTier(dst, src *api.TierStats) {
	dst.Hits += src.Hits
	dst.Misses += src.Misses
	dst.Puts += src.Puts
	dst.Evictions += src.Evictions
	dst.Corrupt += src.Corrupt
	dst.Entries += src.Entries
	dst.Bytes += src.Bytes
	dst.CapBytes += src.CapBytes
}
