package gateway

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"testing"
)

// sampleIDs generates K job-ID-shaped keys (hex SHA-256 strings) from
// a fixed seed.
func sampleIDs(k int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, k)
	for i := range out {
		var buf [16]byte
		rng.Read(buf[:])
		sum := sha256.Sum256(buf[:])
		out[i] = hex.EncodeToString(sum[:])
	}
	return out
}

func poolNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://backend-%d:8080", i)
	}
	return out
}

// The bounded-remap property: removing one of n backends moves at most
// ~K/n + ε of K sampled keys, and every key that moves was owned by
// the removed backend — the other n-1 shards are untouched.
func TestRingBoundedRemapOnRemoval(t *testing.T) {
	const (
		n = 5
		k = 4000
	)
	ids := sampleIDs(k, 1)
	nodes := poolNames(n)
	full := NewRing(nodes, 0)

	for removed := 0; removed < n; removed++ {
		var rest []string
		for i, node := range nodes {
			if i != removed {
				rest = append(rest, node)
			}
		}
		smaller := NewRing(rest, 0)
		moved := 0
		for _, id := range ids {
			before, _ := full.Lookup(id)
			after, _ := smaller.Lookup(id)
			if before != after {
				moved++
				if before != nodes[removed] {
					t.Fatalf("key %s moved from surviving backend %s to %s", id[:12], before, after)
				}
			}
		}
		// The removed backend owned ~K/n keys in expectation; with 128
		// virtual nodes the spread stays well within 1.5x of fair
		// share. ε here absorbs the statistical wobble, not a design
		// slack: a modulo-hash router would remap ~(n-1)/n of the keys
		// and fail this bound by a factor of ~3.
		bound := k/n + k/(2*n)
		if moved > bound {
			t.Errorf("removing backend %d remapped %d of %d keys, bound %d (~K/n + ε)", removed, moved, k, bound)
		}
		if moved == 0 {
			t.Errorf("removing backend %d remapped nothing — it owned no keys?", removed)
		}
	}
}

// Adding a backend back is the mirror image: only the keys the new
// member takes over move, and they all move to it.
func TestRingBoundedRemapOnAddition(t *testing.T) {
	const (
		n = 4
		k = 4000
	)
	ids := sampleIDs(k, 2)
	nodes := poolNames(n + 1)
	small := NewRing(nodes[:n], 0)
	grown := NewRing(nodes, 0)
	moved := 0
	for _, id := range ids {
		before, _ := small.Lookup(id)
		after, _ := grown.Lookup(id)
		if before != after {
			moved++
			if after != nodes[n] {
				t.Fatalf("key %s moved to %s, not the added backend", id[:12], after)
			}
		}
	}
	bound := k/(n+1) + k/(2*(n+1))
	if moved > bound {
		t.Errorf("adding a backend remapped %d of %d keys, bound %d", moved, k, bound)
	}
}

// Routing is a pure function of the member set: rings built from the
// same pool in any order — a gateway restart, a second gateway
// instance — route every key identically.
func TestRingStableAcrossRestarts(t *testing.T) {
	const k = 2000
	ids := sampleIDs(k, 3)
	nodes := poolNames(6)
	a := NewRing(nodes, 0)

	shuffled := append([]string(nil), nodes...)
	rand.New(rand.NewSource(99)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	b := NewRing(shuffled, 0)
	// Duplicates collapse, so a sloppily-assembled pool list still
	// yields the same ring.
	c := NewRing(append(append([]string(nil), nodes...), nodes...), 0)

	for _, id := range ids {
		va, _ := a.Lookup(id)
		vb, _ := b.Lookup(id)
		vc, _ := c.Lookup(id)
		if va != vb || va != vc {
			t.Fatalf("key %s routes differently across identical pools: %s / %s / %s", id[:12], va, vb, vc)
		}
	}
}

// The load spread across members stays near fair share — the point of
// virtual nodes.
func TestRingLoadSpread(t *testing.T) {
	const (
		n = 8
		k = 16000
	)
	ids := sampleIDs(k, 4)
	ring := NewRing(poolNames(n), 0)
	counts := make(map[string]int)
	for _, id := range ids {
		owner, ok := ring.Lookup(id)
		if !ok {
			t.Fatal("lookup failed on a populated ring")
		}
		counts[owner]++
	}
	fair := k / n
	for node, c := range counts {
		if c < fair/2 || c > 2*fair {
			t.Errorf("backend %s owns %d of %d keys (fair %d): spread too wide", node, c, k, fair)
		}
	}
	if len(counts) != n {
		t.Errorf("only %d of %d backends own keys", len(counts), n)
	}
}

// Successors starts with the owner and lists each member once — the
// failover order must agree with plain Lookup and cover the pool.
func TestRingSuccessors(t *testing.T) {
	nodes := poolNames(5)
	ring := NewRing(nodes, 0)
	for _, id := range sampleIDs(200, 5) {
		owner, _ := ring.Lookup(id)
		succ := ring.Successors(id, len(nodes))
		if len(succ) != len(nodes) {
			t.Fatalf("Successors returned %d of %d members", len(succ), len(nodes))
		}
		if succ[0] != owner {
			t.Fatalf("Successors[0] = %s, Lookup = %s", succ[0], owner)
		}
		seen := make(map[string]bool)
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("Successors repeats %s", s)
			}
			seen[s] = true
		}
	}
}

// An empty ring routes nothing, without panicking.
func TestRingEmpty(t *testing.T) {
	ring := NewRing(nil, 0)
	if _, ok := ring.Lookup("abc"); ok {
		t.Fatal("empty ring claimed to own a key")
	}
	if s := ring.Successors("abc", 3); len(s) != 0 {
		t.Fatalf("empty ring returned successors %v", s)
	}
}
