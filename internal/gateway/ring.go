package gateway

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// DefaultVNodes is the virtual nodes per backend. 128 points per
// member keeps the load spread within a few percent of uniform for
// pools of realistic size while a full ring rebuild stays microseconds.
const DefaultVNodes = 128

// Ring is a consistent-hash ring with virtual nodes over a set of
// backend names. Keys (v2 job IDs — hex SHA-256 content hashes) map to
// the first ring point at or clockwise after the key's hash, so:
//
//   - routing is a pure function of the member set: two rings built
//     from the same members (in any order) route every key
//     identically, across processes and restarts;
//   - membership changes are bounded-remap: removing one of n members
//     moves only the keys that member owned (~K/n of K keys), and
//     adding one back moves only the keys it takes over.
//
// A Ring is immutable; the gateway swaps in a fresh one on every
// membership change. The zero-member ring routes nothing.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // sorted member names
	vnodes int
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring over nodes with the given virtual-node count
// per member (<= 0 selects DefaultVNodes). Duplicate names collapse;
// order is irrelevant.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(nodes))
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	r := &Ring{nodes: uniq, vnodes: vnodes}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for _, n := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: pointHash(n, i), node: n})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// A 64-bit point collision is vanishingly rare; break the tie
		// by name so the winner is still deterministic everywhere.
		return r.points[a].node < r.points[b].node
	})
	return r
}

// pointHash places virtual node i of a member on the ring.
func pointHash(node string, i int) uint64 {
	sum := sha256.Sum256([]byte(node + "#" + strconv.Itoa(i)))
	return binary.BigEndian.Uint64(sum[:8])
}

// keyHash places a key on the ring.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Len is the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the sorted member names (shared; do not mutate).
func (r *Ring) Nodes() []string { return r.nodes }

// Lookup returns the member owning key; ok is false on an empty ring.
func (r *Ring) Lookup(key string) (node string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	return r.points[r.search(key)].node, true
}

// Successors returns up to n distinct members in ring order starting
// at key's owner — the failover order: if the owner dies mid-job, the
// next member is where the key remaps once the owner is ejected, so
// re-dispatching there converges with future routing.
func (r *Ring) Successors(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, start := 0, r.search(key); len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// search finds the index of the first point at or clockwise after key.
func (r *Ring) search(key string) int {
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around
	}
	return i
}
