package gateway

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"thermflow/api"
	"thermflow/internal/server"
)

// Batch fan-out: a client batch is split by shard — every job routed
// to its ID's owner — and the per-shard /v2/batch NDJSON streams merge
// back into one client stream in completion order. Items are remapped
// from shard-local indices to the client's, so the response is
// indistinguishable from one backend's (every index answered exactly
// once, IDs stable). When a backend dies mid-stream its unanswered
// jobs re-dispatch to the next member of the ring with the dead one
// excluded — submission is idempotent by content identity, so the
// worst case is a recompute (or a cache hit) on the member the keys
// would remap to anyway. Jobs that exhaust every backend are answered
// with per-item gateway errors, never silently dropped.

// batchItem is one client job annotated with its identity and
// position.
type batchItem struct {
	orig int    // index in the client's request
	id   string // content identity = shard key
	req  api.JobRequest
}

// resolveBatchItems canonicalizes a batch up front, before the first
// streamed byte, mirroring the backends' 422 behaviour. The boolean
// reports success; on failure the response has been written.
func resolveBatchItems(w http.ResponseWriter, reqs []api.JobRequest) ([]batchItem, bool) {
	if len(reqs) == 0 {
		server.WriteErr(w, http.StatusUnprocessableEntity, "batch has no jobs")
		return nil, false
	}
	if len(reqs) > server.MaxBatchJobs {
		server.WriteErr(w, http.StatusUnprocessableEntity,
			"batch has %d jobs, limit %d", len(reqs), server.MaxBatchJobs)
		return nil, false
	}
	items := make([]batchItem, len(reqs))
	for i, jr := range reqs {
		spec, err := server.ResolveSpec(jr)
		if err != nil {
			server.WriteErr(w, http.StatusUnprocessableEntity, "job %d: %v", i, err)
			return nil, false
		}
		id, err := spec.ID()
		if err != nil {
			server.WriteErr(w, http.StatusUnprocessableEntity, "job %d: %v", i, err)
			return nil, false
		}
		items[i] = batchItem{orig: i, id: id, req: jr}
	}
	return items, true
}

// ndjsonWriter serializes merged items onto the client stream; the
// mutex orders concurrent shard goroutines.
type ndjsonWriter struct {
	mu      sync.Mutex
	enc     *json.Encoder
	flusher http.Flusher
}

func newNDJSONWriter(w http.ResponseWriter) *ndjsonWriter {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	return &ndjsonWriter{enc: json.NewEncoder(w), flusher: flusher}
}

func (nw *ndjsonWriter) write(v any) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	_ = nw.enc.Encode(v) // the client is gone if this fails
	if nw.flusher != nil {
		nw.flusher.Flush()
	}
}

// handleBatchV2 is POST /v2/batch through the pool.
func (g *Gateway) handleBatchV2(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req api.JobsBatchRequest
	if !decodeBody(w, body, &req) {
		return
	}
	items, ok := resolveBatchItems(w, req.Jobs)
	if !ok {
		return
	}
	nw := newNDJSONWriter(w)
	g.fanBatch(r, items, func(item api.JobItem) { nw.write(item) })
}

// handleBatchV1 is POST /v1/batch: v1 jobs are a subset of v2 jobs, so
// the same fan-out runs against the backends' /v2/batch and the merged
// items are translated back to the index-keyed v1 shape.
func (g *Gateway) handleBatchV1(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req api.BatchRequest
	if !decodeBody(w, body, &req) {
		return
	}
	jreqs := make([]api.JobRequest, len(req.Jobs))
	for i, jr := range req.Jobs {
		jreqs[i] = api.JobRequest{Kernel: jr.Kernel, Program: jr.Program, Root: jr.Root, Options: jr.Options}
	}
	items, ok := resolveBatchItems(w, jreqs)
	if !ok {
		return
	}
	nw := newNDJSONWriter(w)
	g.fanBatch(r, items, func(item api.JobItem) {
		nw.write(api.BatchItem{Index: item.Index, Error: item.Error, Result: item.Result})
	})
}

// fanState tracks one fanned-out batch: which client indices have been
// answered (exactly-once across shard streams and re-dispatches) and
// the emit path back to the client.
type fanState struct {
	g    *Gateway
	r    *http.Request
	emit func(api.JobItem)

	mu       sync.Mutex
	answered []bool
}

// claim marks a client index answered, reporting whether the caller
// won the claim (false: someone already answered it; drop the item).
func (st *fanState) claim(orig int) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.answered[orig] {
		return false
	}
	st.answered[orig] = true
	return true
}

// fanBatch runs the full fan-out/merge/failover cycle and returns when
// every item has been answered (or the client has gone away).
func (g *Gateway) fanBatch(r *http.Request, items []batchItem, emit func(api.JobItem)) {
	st := &fanState{g: g, r: r, emit: emit, answered: make([]bool, len(items))}
	var wg sync.WaitGroup
	st.dispatch(&wg, items, nil)
	wg.Wait()
}

// dispatch groups the not-yet-answered items by owner — skipping the
// excluded backends this chain has already watched fail — and starts
// one shard stream per owner. Items with no candidate left are
// answered with a gateway error.
func (st *fanState) dispatch(wg *sync.WaitGroup, items []batchItem, exclude map[string]bool) {
	groups := make(map[string][]batchItem)
	for _, it := range items {
		owner := ""
		for _, cand := range st.g.route(it.id) {
			if !exclude[cand] {
				owner = cand
				break
			}
		}
		if owner == "" {
			if st.claim(it.orig) {
				st.emit(api.JobItem{Index: it.orig, ID: it.id,
					Error: "gateway: no healthy backend for job"})
			}
			continue
		}
		groups[owner] = append(groups[owner], it)
	}
	for name, shard := range groups {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st.runShard(wg, name, shard, exclude)
		}()
	}
}

// runShard streams one shard through one backend and, if the backend
// dies mid-stream, re-dispatches whatever it left unanswered.
func (st *fanState) runShard(wg *sync.WaitGroup, name string, shard []batchItem, exclude map[string]bool) {
	err := st.stream(name, shard)
	if err == nil || st.r.Context().Err() != nil {
		return // complete, or the client is gone
	}
	st.g.observeFailure(name, err)
	st.g.metrics.failovers.Inc()
	st.g.logger.Printf("gateway: shard of %d jobs on %s failed (%v); re-dispatching unanswered jobs",
		len(shard), name, err)
	ex := make(map[string]bool, len(exclude)+1)
	for k := range exclude {
		ex[k] = true
	}
	ex[name] = true
	var remaining []batchItem
	st.mu.Lock()
	for _, it := range shard {
		if !st.answered[it.orig] {
			remaining = append(remaining, it)
		}
	}
	st.mu.Unlock()
	if len(remaining) > 0 {
		// Re-dispatch is safe to nest: wg.Add happens before this
		// goroutine's Done, so the waiter cannot miss the new shards.
		st.dispatch(wg, remaining, ex)
	}
}

// stream POSTs one shard to a backend's /v2/batch and merges its
// NDJSON items onto the client stream, remapping shard-local indices
// to client indices. A non-2xx answer, a broken connection or a
// truncated stream (fewer items than jobs) is the shard failing.
func (st *fanState) stream(name string, shard []batchItem) error {
	reqs := make([]api.JobRequest, len(shard))
	for i, it := range shard {
		reqs[i] = it.req
	}
	body, err := json.Marshal(api.JobsBatchRequest{Jobs: reqs})
	if err != nil {
		return fmt.Errorf("encoding shard: %w", err)
	}
	resp, err := st.g.send(st.r, name, http.MethodPost, "/v2/batch", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		return fmt.Errorf("shard rejected: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	seenIdx := make([]bool, len(shard)) // distinct indices, not raw lines:
	seen := 0                           // a repeated index must not mask an omitted one
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var item api.JobItem
		if err := json.Unmarshal(line, &item); err != nil {
			return fmt.Errorf("malformed shard stream line: %w", err)
		}
		if item.Index < 0 || item.Index >= len(shard) {
			return fmt.Errorf("shard stream index %d out of range", item.Index)
		}
		it := shard[item.Index]
		if !seenIdx[item.Index] {
			seenIdx[item.Index] = true
			seen++
		}
		if st.claim(it.orig) {
			item.Index = it.orig
			if item.ID == "" {
				item.ID = it.id
			}
			st.emit(item)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("shard stream: %w", err)
	}
	if seen < len(shard) {
		return fmt.Errorf("shard stream truncated: %d of %d items", seen, len(shard))
	}
	return nil
}
