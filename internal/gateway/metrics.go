package gateway

import (
	"thermflow/internal/server"
	"thermflow/internal/telemetry"
)

// gwMetrics holds the gateway's event counters. The zero value is
// fully inert — every instrument pointer is nil and telemetry
// instruments no-op on nil receivers — so instrumentation sites need
// no wiring guards.
type gwMetrics struct {
	// ejections/readmissions count ring membership flips from the
	// health checker; failovers counts requests (or batch shards) that
	// moved past a dead candidate to the ring's next member.
	ejections    *telemetry.Counter
	readmissions *telemetry.Counter
	failovers    *telemetry.Counter
	// replicaPushes counts terminal-status pushes onto successor
	// shelves, by result ("ok", "error").
	replicaPushes *telemetry.CounterVec
}

// instrumentMetrics attaches the gateway's series to m's registry:
// per-backend health/draining/inflight/failure-streak gauges read from
// the live backend table at scrape time, ring occupancy, and the event
// counters above. The backend label is drawn from the configured pool
// — a fixed set, so cardinality is bounded by deployment size.
func (g *Gateway) instrumentMetrics(m *server.Metrics) {
	reg := m.Registry()
	g.metrics = gwMetrics{
		ejections: reg.Counter("thermflow_gateway_ejections_total",
			"Backends ejected from the ring by the health checker."),
		readmissions: reg.Counter("thermflow_gateway_readmissions_total",
			"Ejected backends readmitted to the ring."),
		failovers: reg.Counter("thermflow_gateway_failovers_total",
			"Requests or batch shards re-dispatched past an unreachable backend."),
		replicaPushes: reg.CounterVec("thermflow_gateway_replica_pushes_total",
			"Terminal-status replica pushes to ring successors, by result.",
			"result"),
	}

	backendGauge := func(name, help string, value func(*backend) float64) {
		reg.Collect(name, help, telemetry.TypeGauge, []string{"backend"},
			func() []telemetry.Sample {
				g.mu.Lock()
				defer g.mu.Unlock()
				out := make([]telemetry.Sample, 0, len(g.order))
				for _, u := range g.order {
					out = append(out, telemetry.Sample{
						Labels: []string{u}, Value: value(g.backends[u]),
					})
				}
				return out
			})
	}
	boolVal := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	backendGauge("thermflow_gateway_backend_up",
		"Whether the backend is on the ring's healthy set (1) or ejected (0).",
		func(b *backend) float64 { return boolVal(b.healthy) })
	backendGauge("thermflow_gateway_backend_draining",
		"Whether the backend is administratively draining.",
		func(b *backend) float64 { return boolVal(b.draining) })
	backendGauge("thermflow_gateway_backend_inflight",
		"Requests the gateway currently has in flight against the backend.",
		func(b *backend) float64 { return float64(b.inflight) })
	backendGauge("thermflow_gateway_backend_consecutive_fails",
		"The backend's current consecutive transport-failure streak.",
		func(b *backend) float64 { return float64(b.fails) })
	reg.GaugeFunc("thermflow_gateway_ring_backends",
		"Backends on the assignment ring (healthy and not draining).",
		func() float64 {
			g.mu.Lock()
			defer g.mu.Unlock()
			return float64(g.ring.Len())
		})
}
