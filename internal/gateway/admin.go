package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"thermflow/api"
	"thermflow/internal/server"
)

// Administrative surface: the shard view and draining. Draining is the
// planned-maintenance half of what health ejection does for crashes —
// POST /gateway/drain?backend=URL removes the backend from the ring so
// no new job is assigned to it, while requests already in flight on it
// run to completion. The listing's Inflight/Drained fields tell the
// operator when the process is safe to retire; /gateway/undrain puts
// it back on the ring (health permitting).

// handleBackends is GET /gateway/backends.
func (g *Gateway) handleBackends(w http.ResponseWriter, r *http.Request) {
	server.WriteJSON(w, http.StatusOK, g.snapshot(r.Context()))
}

// handleDrain serves POST /gateway/drain and /gateway/undrain.
func (g *Gateway) handleDrain(drain bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Query().Get("backend")
		if name == "" {
			server.WriteErr(w, http.StatusUnprocessableEntity, "gateway: missing ?backend=URL")
			return
		}
		norm, err := normalizeBackendURL(name)
		if err != nil {
			server.WriteErr(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		g.mu.Lock()
		b := g.backends[norm]
		if b == nil {
			g.mu.Unlock()
			server.WriteErr(w, http.StatusNotFound, "gateway: unknown backend %s", norm)
			return
		}
		if b.draining != drain {
			b.draining = drain
			g.logDrainLocked(norm, drain)
			g.rebuildRingLocked()
		}
		onRing := g.ring.Len()
		g.mu.Unlock()
		verb := "undrained"
		if drain {
			verb = "draining"
		}
		g.logger.Printf("gateway: backend %s %s (%d on ring)", norm, verb, onRing)
		server.WriteJSON(w, http.StatusOK, g.snapshot(r.Context()))
	}
}

// snapshot builds the wire form of the pool state. For draining
// members it also asks the backend itself how many jobs it still has
// queued or running — an async v2 job submitted before the drain is
// in-flight work the gateway's own counter cannot see, and Drained
// must not read true while the backend is still computing. If the
// backend cannot be asked, Drained stays false: retiring a process on
// a guess is the one mistake this field exists to prevent.
func (g *Gateway) snapshot(ctx context.Context) api.GatewayBackendsResponse {
	g.mu.Lock()
	out := api.GatewayBackendsResponse{
		RingBackends: g.ring.Len(),
		VirtualNodes: g.vnodes,
	}
	var draining []int
	for _, name := range g.order {
		b := g.backends[name]
		gb := api.GatewayBackend{
			URL:               b.url,
			Healthy:           b.healthy,
			Draining:          b.draining,
			Inflight:          b.inflight,
			ConsecutiveFails:  b.fails,
			LastError:         b.lastErr,
			PendingCacheReset: b.pendingCacheReset,
		}
		if !b.lastProbe.IsZero() {
			gb.LastProbeMS = b.lastProbe.UnixMilli()
		}
		if b.draining && b.inflight == 0 {
			draining = append(draining, len(out.Backends))
		}
		out.Backends = append(out.Backends, gb)
	}
	g.mu.Unlock()

	for _, i := range draining {
		gb := &out.Backends[i]
		active, err := g.backendActiveJobs(ctx, gb.URL)
		if err != nil {
			continue // unreachable: leave Drained false, operator decides
		}
		gb.ActiveJobs = active
		gb.Drained = active == 0
	}
	return out
}

// backendActiveJobs reads one backend's queued+running job count.
func (g *Gateway) backendActiveJobs(ctx context.Context, name string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, name+"/v2/stats", nil)
	if err != nil {
		return 0, err
	}
	resp, err := g.probe.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("gateway: %s /v2/stats: %s", name, resp.Status)
	}
	var st api.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, err
	}
	return st.Jobs.Queued + st.Jobs.Running, nil
}
