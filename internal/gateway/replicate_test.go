package gateway

import (
	"context"
	"encoding/json"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"thermflow/api"
	"thermflow/client"
	"thermflow/internal/joblog"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// With R=1 replication, a terminal status relayed through the gateway
// lands on the owner's ring successor, and killing the owner
// permanently still resolves the ID — served from the successor's
// shelf, marked as a replica.
func TestGatewayServesJobFromSuccessorAfterOwnerDies(t *testing.T) {
	ts1, srv1 := newBackend(t)
	ts2, srv2 := newBackend(t)
	g, gts := newTestGateway(t, Config{
		HealthInterval: 25 * time.Millisecond,
		HealthTimeout:  250 * time.Millisecond,
	}, ts1.URL, ts2.URL)
	cl := client.New(gts.URL, nil, client.WithRetries(10), client.WithBackoff(50*time.Millisecond))
	ctx := context.Background()

	st, err := cl.RunJob(ctx, testJobs(1)[0])
	if err != nil || st.State != "done" {
		t.Fatalf("job: %v / %+v", err, st)
	}

	// The relay of the terminal status pushes a replica to the other
	// backend in the background.
	backends := map[string]*httptest.Server{ts1.URL: ts1, ts2.URL: ts2}
	shelves := map[string]interface{ Len() int }{ts1.URL: srv1.Replicas(), ts2.URL: srv2.Replicas()}
	g.mu.Lock()
	owner, _ := g.ring.Lookup(st.ID)
	g.mu.Unlock()
	var successor string
	for url := range backends {
		if url != owner {
			successor = url
		}
	}
	waitFor(t, "replica push to the successor", func() bool { return shelves[successor].Len() == 1 })

	// Kill the owner for good; the health checker ejects it.
	backends[owner].Close()
	ringLen := func() int {
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.ring.Len()
	}
	waitFor(t, "owner ejection", func() bool { return ringLen() == 1 })

	got, err := cl.Job(ctx, st.ID)
	if err != nil {
		t.Fatalf("status read with the owner dead: %v", err)
	}
	if got.ID != st.ID || got.State != "done" {
		t.Fatalf("replica answer: %+v", got)
	}
	if !got.Replica {
		t.Fatal("successor's answer not marked as a replica")
	}
}

// stubBackend is a minimal pool member: answers health probes, counts
// cache resets, and can be killed and rebound on the same address.
type stubBackend struct {
	addr   string
	srv    *http.Server
	resets chan struct{}
}

func newStubBackend(t *testing.T) *stubBackend {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sb := &stubBackend{addr: lis.Addr().String(), resets: make(chan struct{}, 16)}
	srv := sb.newServer()
	sb.srv = srv
	go func() { _ = srv.Serve(lis) }()
	t.Cleanup(func() { _ = srv.Close() })
	return sb
}

func (sb *stubBackend) newServer() *http.Server {
	return &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodDelete && r.URL.Path == "/v1/cache" {
			sb.resets <- struct{}{}
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte("{}"))
	})}
}

func (sb *stubBackend) kill() { _ = sb.srv.Close() }

func (sb *stubBackend) restart(t *testing.T) {
	t.Helper()
	lis, err := net.Listen("tcp", sb.addr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", sb.addr, err)
	}
	srv := sb.newServer()
	sb.srv = srv
	go func() { _ = srv.Serve(lis) }()
	t.Cleanup(func() { _ = srv.Close() })
}

// DELETE /v1/cache reaches every configured member. A member that is
// down gets reported in Unreached (502) — not silently skipped — and
// the reset is re-issued automatically when the member is readmitted.
func TestGatewayCacheResetCoversEjectedBackend(t *testing.T) {
	live, _ := newBackend(t)
	stub := newStubBackend(t)
	stubURL := "http://" + stub.addr
	g, gts := newTestGateway(t, Config{
		HealthInterval: 25 * time.Millisecond,
		HealthTimeout:  250 * time.Millisecond,
		EjectAfter:     2,
	}, live.URL, stubURL)

	ringLen := func() int {
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.ring.Len()
	}
	waitFor(t, "both members healthy", func() bool { return ringLen() == 2 })

	// Kill the stub and wait for ejection — the regression scenario:
	// an ejected member must not be silently skipped by a pool-wide
	// reset.
	stub.kill()
	waitFor(t, "stub ejection", func() bool { return ringLen() == 1 })

	req, err := http.NewRequest(http.MethodDelete, gts.URL+"/v1/cache", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("partial reset answered %s (%s), want 502", resp.Status, body)
	}
	var out api.CacheResetResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Unreached) != 1 || out.Unreached[0] != stubURL {
		t.Fatalf("Unreached = %v, want exactly the dead member %s", out.Unreached, stubURL)
	}
	if out.Error == "" {
		t.Fatal("partial reset reported no error")
	}

	// The miss is visible in the admin view.
	pending := func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.backends[stubURL].pendingCacheReset
	}
	if !pending() {
		t.Fatal("missed backend not flagged for re-issue")
	}

	// Bring the member back: readmission re-issues the reset.
	stub.restart(t)
	waitFor(t, "readmission", func() bool { return ringLen() == 2 })
	select {
	case <-stub.resets:
	case <-time.After(10 * time.Second):
		t.Fatal("cache reset never re-issued after readmission")
	}
	waitFor(t, "pending flag cleared", func() bool { return !pending() })

	// A clean pool-wide reset answers 200 with nothing unreached.
	resp2, err := http.DefaultClient.Do(req.Clone(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp2.Body)
		t.Fatalf("full reset answered %s (%s), want 200", resp2.Status, body)
	}
}

// A drain decision outlives the gateway process when a state log is
// configured: the restarted gateway keeps the backend off the
// assignment ring.
func TestGatewayDrainSurvivesRestart(t *testing.T) {
	b1, _ := newBackend(t)
	b2, _ := newBackend(t)
	dir := filepath.Join(t.TempDir(), "state")

	openGateway := func() (*Gateway, *httptest.Server, *joblog.Log) {
		l, rec, err := joblog.Open(dir, joblog.Options{})
		if err != nil {
			t.Fatal(err)
		}
		g, err := New(Config{
			Backends:       []string{b1.URL, b2.URL},
			HealthInterval: time.Hour,
			Logger:         log.New(io.Discard, "", 0),
			Log:            l,
			Recovery:       &rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(g)
		return g, ts, l
	}

	g1, ts1, l1 := openGateway()
	resp, err := http.Post(ts1.URL+"/gateway/drain?backend="+b1.URL, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain: %s", resp.Status)
	}
	ringLen := func(g *Gateway) int {
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.ring.Len()
	}
	if ringLen(g1) != 1 {
		t.Fatalf("ring has %d members after drain, want 1", ringLen(g1))
	}
	// Restart: close the gateway (a clean stop; the WAL was synced at
	// the drain itself, so a SIGKILL would recover identically).
	ts1.Close()
	g1.Close()
	l1.Close()

	g2, ts2, l2 := openGateway()
	defer func() { ts2.Close(); g2.Close(); l2.Close() }()
	if ringLen(g2) != 1 {
		t.Fatalf("restarted ring has %d members, want the drain to persist", ringLen(g2))
	}
	g2.mu.Lock()
	draining := g2.backends[b1.URL].draining
	g2.mu.Unlock()
	if !draining {
		t.Fatal("drained backend not draining after gateway restart")
	}

	// Undrain, restart again: the decision flips back durably.
	resp, err = http.Post(ts2.URL+"/gateway/undrain?backend="+b1.URL, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ts2.Close()
	g2.Close()
	l2.Close()

	g3, ts3, l3 := openGateway()
	defer func() { ts3.Close(); g3.Close(); l3.Close() }()
	if ringLen(g3) != 2 {
		t.Fatalf("ring has %d members after undrain+restart, want 2", ringLen(g3))
	}
}
