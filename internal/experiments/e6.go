package experiments

import (
	"fmt"

	"thermflow"
	"thermflow/internal/report"
)

func newE6Table() *report.Table {
	return report.NewTable("transform", "scenario", "base peak K", "peak K",
		"Δpeak K", "base grad K", "grad K", "overhead %", "correct")
}

// E6Row holds one optimization scenario.
type E6Row struct {
	// Name is the transform.
	Name string
	// Scenario describes the baseline context.
	Scenario string
	// BasePeak/BaseGrad summarize the baseline's predicted state.
	BasePeak, BaseGrad float64
	// Peak/Grad summarize the transformed program's predicted state.
	Peak, Grad float64
	// BaseCycles and Cycles measure execution length (performance).
	BaseCycles, Cycles int64
	// Correct reports the transformed program still computes the same
	// result as its baseline.
	Correct bool
}

// E6Result bundles the optimization-efficacy experiment.
type E6Result struct {
	// Rows, one per §4 optimization.
	Rows []E6Row
}

// e6Scale is the execution scale for kernel scenarios.
const e6Scale = 24

// E6 measures each §4 optimization in the scenario it targets:
//
//   - thermal re-assignment: first-free baseline → Coldest with
//     predicted heat (the re-assignment of [3]);
//   - spilling critical variables: a high-pressure program whose
//     working set overflows half the file, breaking the chessboard
//     policy (§2); spilling restores the ≤½-occupancy regime;
//   - live-range splitting: a chessboard-compiled kernel whose hot
//     variables each pin one cell; splitting spreads their accesses
//     "across a multitude of registers";
//   - thermal scheduling: spreading accesses in time (expected ≈0 at
//     RC time constants — ns-scale reordering is invisible to ms-scale
//     thermal dynamics; recorded as a negative result);
//   - register promotion: eliminating a repeated in-loop load;
//   - NOP insertion: cooling at a direct performance cost.
func E6(cfg Config) (*E6Result, error) {
	cfg.section("E6 — thermal-aware optimization efficacy")
	res := &E6Result{}

	run := func(c *thermflow.Compiled, scale int) (int64, int64, error) {
		r, err := c.Run(scale)
		if err != nil {
			return 0, 0, err
		}
		return r.Ret, r.Cycles, nil
	}
	record := func(name, scenario string, base, after *thermflow.Compiled, scale int) error {
		bRet, bCycles, err := run(base, scale)
		if err != nil {
			return fmt.Errorf("e6 %s baseline: %w", name, err)
		}
		aRet, aCycles, err := run(after, scale)
		if err != nil {
			return fmt.Errorf("e6 %s transformed: %w", name, err)
		}
		bm, am := base.Metrics(), after.Metrics()
		res.Rows = append(res.Rows, E6Row{
			Name: name, Scenario: scenario,
			BasePeak: bm.Peak, BaseGrad: bm.MaxGradient,
			Peak: am.Peak, Grad: am.MaxGradient,
			BaseCycles: bCycles, Cycles: aCycles,
			Correct: bRet == aRet,
		})
		return nil
	}

	// Thermal re-assignment, scheduling, NOPs: first-free FIR baseline.
	fir, err := thermflow.Kernel("fir")
	if err != nil {
		return nil, err
	}
	firFF, err := fir.Compile(thermflow.Options{Policy: thermflow.FirstFree})
	if err != nil {
		return nil, err
	}
	if oc, err := firFF.ThermalReassign(); err != nil {
		return nil, err
	} else if err := record("reassign(coldest)", "fir, first-free", firFF, oc, e6Scale); err != nil {
		return nil, err
	}
	if oc, err := firFF.ThermalSchedule(); err != nil {
		return nil, err
	} else if err := record("thermal-schedule", "fir, first-free", firFF, oc, e6Scale); err != nil {
		return nil, err
	}
	amb := firFF.Tech().TAmbient
	thr := amb + 0.7*(firFF.Thermal.PeakTemp-amb)
	if oc, _, err := firFF.InsertCooldownNops(thr, 2); err != nil {
		return nil, err
	} else if err := record("nop-insertion", "fir, first-free", firFF, oc, e6Scale); err != nil {
		return nil, err
	}

	// Spilling and splitting critical variables: both spread a hot
	// variable's accesses over many short-lived values; under a
	// spreading assignment (chessboard) those land on many cells. The
	// two rows share the chessboard FIR baseline, matching the paper's
	// "spilling ... or splitting them" framing.
	firCB, err := fir.Compile(thermflow.Options{Policy: thermflow.Chessboard})
	if err != nil {
		return nil, err
	}
	if oc, err := firCB.SpillCritical(2); err != nil {
		return nil, err
	} else if err := record("spill-critical-2", "fir, chessboard", firCB, oc, e6Scale); err != nil {
		return nil, err
	}
	if oc, err := firCB.SplitCritical(4); err != nil {
		return nil, err
	} else if err := record("split-critical-4", "fir, chessboard", firCB, oc, e6Scale); err != nil {
		return nil, err
	}

	// Register promotion: scaledsum re-loads its scale factor every
	// iteration.
	ss, err := thermflow.Kernel("scaledsum")
	if err != nil {
		return nil, err
	}
	ssFF, err := ss.Compile(thermflow.Options{Policy: thermflow.FirstFree})
	if err != nil {
		return nil, err
	}
	oc, promoted, err := ssFF.PromoteLoads()
	if err != nil {
		return nil, err
	}
	if promoted == 0 {
		return nil, fmt.Errorf("e6: no load promoted in scaledsum")
	}
	if err := record("promote-loads", "scaledsum, first-free", ssFF, oc, e6Scale); err != nil {
		return nil, err
	}

	tbl := newE6Table()
	for _, r := range res.Rows {
		overhead := 0.0
		if r.BaseCycles > 0 {
			overhead = 100 * (float64(r.Cycles) - float64(r.BaseCycles)) / float64(r.BaseCycles)
		}
		tbl.AddF(r.Name, r.Scenario, r.BasePeak, r.Peak, r.Peak-r.BasePeak,
			r.BaseGrad, r.Grad, overhead, r.Correct)
	}
	cfg.printf("%s\n", tbl.String())
	return res, nil
}

// Row returns the named row, or nil.
func (r *E6Result) Row(name string) *E6Row {
	for i := range r.Rows {
		if r.Rows[i].Name == name {
			return &r.Rows[i]
		}
	}
	return nil
}
