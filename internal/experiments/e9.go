package experiments

import (
	"fmt"

	"thermflow"
	"thermflow/internal/chip"
	"thermflow/internal/power"
	"thermflow/internal/regalloc"
	"thermflow/internal/report"
	"thermflow/internal/tdfa"
)

// E9Row holds one kernel's whole-chip unit temperatures.
type E9Row struct {
	// Kernel is the workload.
	Kernel string
	// UnitPeak maps unit name to predicted peak (K). Peaks near unit
	// boundaries include diffusion spill-over from hot neighbours.
	UnitPeak map[string]float64
	// UnitMean maps unit name to the predicted mean (K) — the better
	// activity indicator, diluting boundary spill-over.
	UnitMean map[string]float64
	// Converged echoes the analysis convergence.
	Converged bool
}

// E9Result bundles the whole-processor extension experiment.
type E9Result struct {
	// Rows per kernel.
	Rows []E9Row
}

// E9 exercises the paper's §5 long-term goal: "comprehensive data flow
// thermal analyses and rules relating to all parts of the processor".
// The same Fig. 2 analysis runs over a whole-die floorplan (fetch,
// register file, LSU, ALU, multiplier); instruction classes heat their
// units. Expected shape: multiply-heavy kernels light up the MUL
// block, memory-heavy kernels the LSU, and the register file's
// internal hot spot persists within the die map.
func E9(cfg Config) (*E9Result, error) {
	cfg.section("E9 — whole-processor thermal analysis (the §5 extension)")
	kernels := []string{"fir", "checksum", "dot", "fib"}
	if cfg.Quick {
		kernels = []string{"fir", "fib"}
	}
	model, err := chip.NewModel(chip.DefaultLayout(), chip.DefaultUnitEnergy(), 64)
	if err != nil {
		return nil, err
	}
	tech := power.Default65nm()
	res := &E9Result{}
	units := model.Layout.Units()
	headers := []string{"kernel", "converged"}
	for _, u := range units {
		headers = append(headers, u.Name+" mean K")
	}
	tbl := report.NewTable(headers...)

	var firMap string
	for _, kname := range kernels {
		p, err := thermflow.Kernel(kname)
		if err != nil {
			return nil, err
		}
		alloc, err := regalloc.Allocate(p.Fn, regalloc.Config{NumRegs: 64, Policy: regalloc.FirstFree})
		if err != nil {
			return nil, fmt.Errorf("e9 %s: %w", kname, err)
		}
		r, err := chip.Analyze(alloc, model, tech, tdfa.Config{})
		if err != nil {
			return nil, fmt.Errorf("e9 %s analyze: %w", kname, err)
		}
		row := E9Row{
			Kernel:    kname,
			UnitPeak:  map[string]float64{},
			UnitMean:  map[string]float64{},
			Converged: r.Converged,
		}
		cells := []any{kname, r.Converged}
		for _, u := range units {
			row.UnitPeak[u.Name] = model.UnitPeak(r, u)
			row.UnitMean[u.Name] = model.UnitMean(r, u)
			cells = append(cells, row.UnitMean[u.Name])
		}
		res.Rows = append(res.Rows, row)
		tbl.AddF(cells...)
		if kname == "fir" {
			firMap = report.Heatmap(r.Peak, model.FP, 0, 0)
		}
	}
	if firMap != "" {
		cfg.printf("whole-die predicted map, fir (fetch top, LSU left, RF centre, ALU/MUL right):\n\n%s\n", firMap)
	}
	cfg.printf("%s\n", tbl.String())
	return res, nil
}

// Row returns the row for a kernel, or nil.
func (r *E9Result) Row(kernel string) *E9Row {
	for i := range r.Rows {
		if r.Rows[i].Kernel == kernel {
			return &r.Rows[i]
		}
	}
	return nil
}
