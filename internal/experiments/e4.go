package experiments

import (
	"fmt"
	"time"

	"thermflow"
	"thermflow/internal/metrics"
	"thermflow/internal/report"
	"thermflow/internal/tdfa"
)

// E4Row holds one grid resolution's fidelity/cost point.
type E4Row struct {
	// Grid is the analysis resolution ("8x8", ...).
	Grid string
	// Cells is the thermal cell count.
	Cells int
	// RegRMSE is the per-register temperature error vs the
	// full-resolution ground truth (K).
	RegRMSE float64
	// RegPearson is the per-register correlation.
	RegPearson float64
	// AnalysisTime is the wall-clock analysis cost.
	AnalysisTime time.Duration
}

// E4Result bundles the granularity experiment.
type E4Result struct {
	// Rows from coarsest to finest.
	Rows []E4Row
}

// E4 quantifies the paper's §3 trade-off: "increasing the number of
// points would increase accuracy, but at the cost of increased
// computation time". The same program and assignment are analyzed on
// coarsened thermal grids; accuracy is scored per register against the
// full-resolution trace-replay measurement.
func E4(cfg Config) (*E4Result, error) {
	cfg.section("E4 — thermal-state granularity vs fidelity and cost")
	const kernel = "fir"
	c, err := compileKernel(kernel, thermflow.FirstFree, 7)
	if err != nil {
		return nil, err
	}
	gt, err := c.GroundTruth(e3Scale)
	if err != nil {
		return nil, err
	}
	fullFP := c.Floorplan()
	measured := make([]float64, fullFP.NumRegs)
	for r := 0; r < fullFP.NumRegs; r++ {
		measured[r] = gt.Steady[fullFP.CellOf(r)]
	}

	grids := [][2]int{{1, 1}, {2, 2}, {4, 4}, {8, 8}}
	if cfg.Quick {
		grids = [][2]int{{2, 2}, {8, 8}}
	}
	res := &E4Result{}
	tbl := report.NewTable("grid", "cells", "reg RMSE K", "reg Pearson", "analysis time")
	for _, g := range grids {
		fp := fullFP
		if g[0] != fullFP.Width || g[1] != fullFP.Height {
			fp, err = fullFP.Coarsen(g[0], g[1])
			if err != nil {
				return nil, fmt.Errorf("e4 coarsen %dx%d: %w", g[0], g[1], err)
			}
		}
		// Re-point the existing allocation at the coarsened view so the
		// assignment is identical across resolutions.
		alloc := *c.Alloc
		alloc.FP = fp
		start := time.Now()
		r, err := tdfa.Analyze(alloc.Fn, tdfa.Config{
			Tech:  c.Tech(),
			FP:    fp,
			Alloc: &alloc,
		})
		elapsed := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("e4 analyze %dx%d: %w", g[0], g[1], err)
		}
		row := E4Row{
			Grid:         fmt.Sprintf("%dx%d", g[0], g[1]),
			Cells:        g[0] * g[1],
			RegRMSE:      metrics.RMSE(r.RegPeak, measured),
			RegPearson:   metrics.Pearson(r.RegPeak, measured),
			AnalysisTime: elapsed,
		}
		res.Rows = append(res.Rows, row)
		tbl.AddF(row.Grid, row.Cells, row.RegRMSE, row.RegPearson, row.AnalysisTime.String())
	}
	cfg.printf("%s\n", tbl.String())
	return res, nil
}
