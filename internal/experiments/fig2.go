package experiments

import (
	"fmt"
	"math"

	"thermflow"
	"thermflow/internal/ir"
	"thermflow/internal/metrics"
	"thermflow/internal/report"
)

// Fig2Delta records the analysis behaviour at one δ.
type Fig2Delta struct {
	// Delta is the convergence threshold in kelvin.
	Delta float64
	// Iterations is the mean sweep count over the kernels.
	Iterations float64
	// ConvergedAll reports whether every kernel converged.
	ConvergedAll bool
}

// Fig2Irregularity records prediction quality vs data-usage
// irregularity.
type Fig2Irregularity struct {
	// Diamonds is the number of skewed data-dependent branches in the
	// loop body (the irregularity knob).
	Diamonds int
	// Iterations is the sweep count.
	Iterations int
	// Converged reports δ-convergence within the cap.
	Converged bool
	// PeakErr is |predicted − measured| sustained peak (K).
	PeakErr float64
	// RegRMSE is the per-register prediction error (K): the skewed
	// branches corrupt the per-register profile even when the global
	// peak (set by the always-hot values) survives.
	RegRMSE float64
	// RegRMSEProfiled is the same error with measured (profile-guided)
	// frequencies — the recovery a single profiling run buys.
	RegRMSEProfiled float64
}

// Fig2Result bundles the Figure 2 reproduction: the behaviour of the
// fixpoint iteration itself.
type Fig2Result struct {
	// DeltaSweep: iterations grow as δ shrinks.
	DeltaSweep []Fig2Delta
	// IrregularitySweep: irregular, statically unpredictable data
	// usage degrades the compile-time prediction (paper: "the thermal
	// state of the program may be too difficult to predict at compile
	// time due to a very irregular data usage").
	IrregularitySweep []Fig2Irregularity
}

// Fig2 reproduces Figure 2's algorithm behaviour. The pseudocode
// itself is implemented in internal/tdfa; this experiment characterizes
// its termination and its limits: sweeps to convergence as a function
// of the user-supplied δ (cold start), and prediction degradation as
// data usage becomes irregular — data-dependent branches whose runtime
// bias (taken 1 cycle in 8) the static 50/50 assumption cannot see.
func Fig2(cfg Config) (*Fig2Result, error) {
	cfg.section("Figure 2 — thermal data-flow analysis convergence")
	res := &Fig2Result{}

	kernels := []string{"dot", "fir", "checksum"}
	if cfg.Quick {
		kernels = kernels[:1]
	}
	deltas := []float64{1.0, 0.5, 0.1, 0.05, 0.01}
	cfg.printf("δ sweep (cold start, κ=100, MaxIter=512, kernels: %v)\n\n", kernels)
	tbl := report.NewTable("delta K", "mean iterations", "all converged")
	for _, d := range deltas {
		total := 0
		all := true
		for _, k := range kernels {
			p, err := thermflow.Kernel(k)
			if err != nil {
				return nil, err
			}
			c, err := p.Compile(thermflow.Options{
				Policy: thermflow.FirstFree, Delta: d, MaxIter: 512, NoWarmStart: true,
			})
			if err != nil {
				return nil, fmt.Errorf("fig2 %s δ=%g: %w", k, d, err)
			}
			total += c.Thermal.Iterations
			all = all && c.Thermal.Converged
		}
		row := Fig2Delta{
			Delta:        d,
			Iterations:   float64(total) / float64(len(kernels)),
			ConvergedAll: all,
		}
		res.DeltaSweep = append(res.DeltaSweep, row)
		tbl.AddF(d, row.Iterations, row.ConvergedAll)
	}
	cfg.printf("%s\n", tbl.String())

	diamonds := []int{0, 2, 4, 8}
	if cfg.Quick {
		diamonds = []int{0, 8}
	}
	cfg.printf("irregular data usage (skewed data-dependent diamonds in a hot loop;\n")
	cfg.printf("runtime takes each 'then' arm 1/8 of iterations, static assumes 1/2)\n\n")
	tbl2 := report.NewTable("diamonds", "iterations", "converged", "|peak err| K",
		"reg RMSE K", "profiled RMSE K")
	for _, d := range diamonds {
		prog := &thermflow.Program{Fn: buildIrregular(d)}
		c, err := prog.Compile(thermflow.Options{Policy: thermflow.FirstFree})
		if err != nil {
			return nil, fmt.Errorf("fig2 irregular d=%d: %w", d, err)
		}
		gt, err := c.GroundTruth(0)
		if err != nil {
			return nil, fmt.Errorf("fig2 irregular d=%d truth: %w", d, err)
		}
		fp := c.Floorplan()
		measured := make([]float64, fp.NumRegs)
		for r := 0; r < fp.NumRegs; r++ {
			measured[r] = gt.Steady[fp.CellOf(r)]
		}
		pg, err := c.ProfileGuided(0)
		if err != nil {
			return nil, fmt.Errorf("fig2 irregular d=%d profile: %w", d, err)
		}
		row := Fig2Irregularity{
			Diamonds:        d,
			Iterations:      c.Thermal.Iterations,
			Converged:       c.Thermal.Converged,
			PeakErr:         math.Abs(c.Thermal.PeakTemp - gt.Steady.Max()),
			RegRMSE:         metrics.RMSE(c.Thermal.RegPeak, measured),
			RegRMSEProfiled: metrics.RMSE(pg.Thermal.RegPeak, measured),
		}
		res.IrregularitySweep = append(res.IrregularitySweep, row)
		tbl2.AddF(d, row.Iterations, row.Converged, row.PeakErr, row.RegRMSE, row.RegRMSEProfiled)
	}
	cfg.printf("%s\n", tbl2.String())
	return res, nil
}

// buildIrregular constructs the irregular-data-usage family: a hot
// counted loop whose body contains `diamonds` data-dependent branches.
// Diamond k fires when i mod 8 == k — once in eight iterations at
// runtime, while the static estimate assigns both arms probability ½.
// The taken arm hammers its own pair of accumulators, so every diamond
// shifts real heat away from where the static profile puts it.
func buildIrregular(diamonds int) *ir.Function {
	f := ir.NewFunc(fmt.Sprintf("irregular%d", diamonds))
	entry := f.NewBlock("entry")
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	f.TripCount["head"] = 256

	b := ir.NewBuilder(f, entry)
	i := b.ConstNamed("i", 0)
	one := b.ConstNamed("one", 1)
	seven := b.ConstNamed("seven", 7)
	limit := b.ConstNamed("limit", 256)
	// Two accumulators per diamond, plus a base pair for the always-hot
	// path.
	acc := make([]*ir.Value, 0, 2*diamonds+2)
	for k := 0; k < 2*diamonds+2; k++ {
		acc = append(acc, b.ConstNamed(fmt.Sprintf("acc%d", k), int64(k+1)))
	}
	b.Br(head)

	b.SetBlock(head)
	c := b.CmpLT(i, limit)
	b.CondBr(c, body, exit)

	b.SetBlock(body)
	phase := b.And(i, seven)
	b.OpTo(ir.Add, acc[0], acc[0], i)
	b.OpTo(ir.Xor, acc[1], acc[1], acc[0])
	cur := body
	for k := 0; k < diamonds; k++ {
		kc := b.ConstNamed(fmt.Sprintf("k%d", k), int64(k))
		cond := b.CmpEQ(phase, kc)
		then := f.NewBlock(fmt.Sprintf("then%d", k))
		els := f.NewBlock(fmt.Sprintf("else%d", k))
		join := f.NewBlock(fmt.Sprintf("join%d", k))
		b.CondBr(cond, then, els)
		b.SetBlock(then)
		// Hammer this diamond's accumulators hard.
		a0, a1 := acc[2*k+2], acc[2*k+3]
		for rep := 0; rep < 6; rep++ {
			b.OpTo(ir.Add, a0, a0, i)
			b.OpTo(ir.Xor, a1, a1, a0)
		}
		b.Br(join)
		b.SetBlock(els)
		b.Nop()
		b.Br(join)
		b.SetBlock(join)
		cur = join
	}
	b.SetBlock(cur)
	b.OpTo(ir.Add, i, i, one)
	b.Br(head)

	b.SetBlock(exit)
	out := acc[0]
	for _, a := range acc[1:] {
		out = b.Xor(out, a)
	}
	b.RetVal(out)
	f.Renumber()
	if err := ir.Verify(f); err != nil {
		panic(fmt.Sprintf("experiments: irregular program invalid: %v", err))
	}
	return f
}
