package experiments

import (
	"context"
	"fmt"
	"sort"

	"thermflow"
	"thermflow/internal/batch"
	"thermflow/internal/metrics"
	"thermflow/internal/report"
	"thermflow/internal/thermal"
)

// Fig1Row holds one policy's thermal outcome for Figure 1.
type Fig1Row struct {
	// Policy is the register-assignment policy.
	Policy thermflow.Policy
	// Predicted summarizes the analysis's peak thermal state.
	Predicted metrics.Thermal
	// Measured summarizes the trace-replay sustained state (median
	// seed for the random policy).
	Measured metrics.Thermal
	// Occupancy is the fraction of the register file in use.
	Occupancy float64
}

// Fig1Result bundles the Figure 1 reproduction.
type Fig1Result struct {
	// Rows, in order: first-free (a), random (b), chessboard (c), plus
	// the thermal-feedback extension (d).
	Rows []Fig1Row
}

// fig1Workload builds the Figure 1 workload: a three-deep loop nest
// over a working set of 16 long-lived values (peak live pressure 21,
// under half the 64-entry file). The nesting skews the
// access weights — inner-loop values are hammered, outer ones touched
// occasionally — which is what makes the policies visibly differ:
// first-free packs the hot values onto adjacent cells (one hot blob),
// random scatters them with chance adjacencies (several hot spots),
// and the chessboard cycles them uniformly over alternating cells
// (homogenized map). Occupancy stays below half the 64-entry file, the
// regime where the chessboard policy is defined (paper §2).
func fig1Workload() *thermflow.Program {
	return thermflow.Generate(thermflow.GenerateOptions{
		Seed:        42,
		Pressure:    16,
		Segments:    2,
		LoopDepth:   3,
		OpsPerBlock: 5,
		TripCount:   24,
	})
}

// fig1RandomSeeds are the assignment seeds averaged for the random
// policy (a single draw would show one arbitrary clustering).
var fig1RandomSeeds = []int64{1, 2, 3, 4, 5}

// Fig1 reproduces Figure 1: thermal maps of the register file under
// (a) deterministic first-free, (b) random and (c) chessboard register
// assignment — each predicted by the data-flow analysis and measured
// by trace-driven simulation — plus (d) the thermal-feedback Coldest
// policy as an extension. Expected shape: (a) shows a contiguous hot
// blob with the steepest gradients; (b) scatters hot cells, with
// chance adjacencies keeping gradients high; (c) is homogenized: no
// two used cells are adjacent, so diffusion levels the map.
func Fig1(cfg Config) (*Fig1Result, error) {
	cfg.section("Figure 1 — thermal maps per register-assignment policy")
	p := fig1Workload()
	res := &Fig1Result{}

	type outcome struct {
		c      *thermflow.Compiled
		steady thermal.State
	}

	// The policy sweep is embarrassingly parallel: batch-compile every
	// (policy, seed) point, then replay the trace-driven ground truths
	// over the same worker pool.
	policies := []thermflow.Policy{
		thermflow.FirstFree, thermflow.Random, thermflow.Chessboard, thermflow.Coldest,
	}
	type point struct {
		pol  thermflow.Policy
		seed int64
	}
	var points []point
	for _, pol := range policies {
		if pol == thermflow.Random {
			for _, seed := range fig1RandomSeeds {
				points = append(points, point{pol, seed})
			}
			continue
		}
		points = append(points, point{pol, 1})
	}
	jobs := make([]thermflow.CompileJob, len(points))
	for i, pt := range points {
		jobs[i] = thermflow.CompileJob{Program: p, Opts: thermflow.Options{Policy: pt.pol, Seed: pt.seed}}
	}
	compiled, err := cfg.compileAll(jobs)
	if err != nil {
		return nil, fmt.Errorf("fig1: %w", err)
	}
	truths := batch.NewRunner(cfg.batch().Workers())
	gjobs := make([]batch.Job, len(compiled))
	for i, c := range compiled {
		c := c
		gjobs[i] = batch.Job{Fn: func(context.Context) (any, error) { return c.GroundTruth(0) }}
	}
	outs := make(map[point]*outcome, len(points))
	for i, r := range truths.Run(context.Background(), gjobs) {
		if r.Err != nil {
			return nil, fmt.Errorf("fig1 %v truth: %w", points[i].pol, r.Err)
		}
		outs[points[i]] = &outcome{c: compiled[i], steady: r.Value.(*thermflow.GroundTruth).Steady}
	}

	picked := make([]*outcome, len(policies))
	for i, pol := range policies {
		if pol != thermflow.Random {
			o := outs[point{pol, 1}]
			picked[i] = o
			res.Rows = append(res.Rows, Fig1Row{
				Policy:    pol,
				Predicted: o.c.Metrics(),
				Measured:  o.c.StateMetrics(o.steady),
				Occupancy: o.c.Alloc.Occupancy(),
			})
			continue
		}
		// Random: average the metrics over several seeds and show the
		// median-peak map.
		var rnd []*outcome
		for _, seed := range fig1RandomSeeds {
			rnd = append(rnd, outs[point{pol, seed}])
		}
		sort.SliceStable(rnd, func(a, b int) bool {
			return rnd[a].steady.Max() < rnd[b].steady.Max()
		})
		median := rnd[len(rnd)/2]
		picked[i] = median
		row := Fig1Row{Policy: pol}
		for _, o := range rnd {
			pm := o.c.Metrics()
			mm := o.c.StateMetrics(o.steady)
			row.Predicted.Peak += pm.Peak / float64(len(rnd))
			row.Predicted.MaxGradient += pm.MaxGradient / float64(len(rnd))
			row.Predicted.StdDev += pm.StdDev / float64(len(rnd))
			row.Measured.Peak += mm.Peak / float64(len(rnd))
			row.Measured.MaxGradient += mm.MaxGradient / float64(len(rnd))
			row.Measured.StdDev += mm.StdDev / float64(len(rnd))
			row.Measured.HotspotCells += mm.HotspotCells
			row.Occupancy += o.c.Alloc.Occupancy() / float64(len(rnd))
		}
		row.Measured.HotspotCells /= len(rnd)
		res.Rows = append(res.Rows, row)
	}

	// Common colour scale across the maps.
	lo, hi := picked[0].steady.Min(), picked[0].steady.Max()
	for _, o := range picked {
		if o.steady.Min() < lo {
			lo = o.steady.Min()
		}
		if o.steady.Max() > hi {
			hi = o.steady.Max()
		}
	}
	var maps, titles []string
	for i, pol := range policies {
		maps = append(maps, picked[i].c.StateHeatmap(picked[i].steady, lo, hi))
		titles = append(titles, fmt.Sprintf("(%c) %s", 'a'+i, pol))
	}
	cfg.printf("workload: synthetic 3-deep loop nest, peak pressure 21, 64-register 8x8 file\n")
	cfg.printf("maps: measured sustained temperature (random: median of %d seeds)\n\n", len(fig1RandomSeeds))
	cfg.printf("%s\n", report.SideBySide(titles, maps, 4))

	tbl := report.NewTable("policy", "occupancy",
		"pred peak K", "pred grad K", "pred σ K",
		"meas peak K", "meas grad K", "meas σ K", "hotspots")
	for _, r := range res.Rows {
		tbl.AddF(r.Policy.String(), r.Occupancy,
			r.Predicted.Peak, r.Predicted.MaxGradient, r.Predicted.StdDev,
			r.Measured.Peak, r.Measured.MaxGradient, r.Measured.StdDev,
			r.Measured.HotspotCells)
	}
	cfg.printf("%s\n", tbl.String())
	return res, nil
}

// Row returns the Fig1 row for a policy.
func (r *Fig1Result) Row(p thermflow.Policy) *Fig1Row {
	for i := range r.Rows {
		if r.Rows[i].Policy == p {
			return &r.Rows[i]
		}
	}
	return nil
}
