package experiments

import (
	"fmt"

	"thermflow"
	"thermflow/internal/metrics"
	"thermflow/internal/report"
)

// E7Row holds one policy's reliability/leakage outcome.
type E7Row struct {
	// Policy is the assignment policy.
	Policy thermflow.Policy
	// Peak is the measured sustained peak (K).
	Peak float64
	// Leakage is the total register-file leakage power at the
	// sustained state (W).
	Leakage float64
	// RelMTTF is the worst-cell mean-time-to-failure relative to
	// uniform ambient-temperature operation (Arrhenius).
	RelMTTF float64
}

// E7Result bundles the reliability experiment.
type E7Result struct {
	// Rows per policy.
	Rows []E7Row
}

// E7 quantifies §4's reliability argument: homogenizing the map
// "improves its reliability by decreasing leakage", and hot spots
// degrade lifetime. Policies are compared on measured sustained states
// via the leakage model and an Arrhenius MTTF proxy.
func E7(cfg Config) (*E7Result, error) {
	cfg.section("E7 — leakage and reliability per policy")
	policies := []thermflow.Policy{
		thermflow.FirstFree, thermflow.Random, thermflow.Chessboard, thermflow.Coldest,
	}
	res := &E7Result{}
	p := fig1Workload()
	tbl := report.NewTable("policy", "meas peak K", "leakage mW", "rel MTTF")
	for _, pol := range policies {
		c, err := p.Compile(thermflow.Options{Policy: pol, Seed: 1})
		if err != nil {
			return nil, fmt.Errorf("e7 %v: %w", pol, err)
		}
		gt, err := c.GroundTruth(0)
		if err != nil {
			return nil, fmt.Errorf("e7 %v truth: %w", pol, err)
		}
		tech := c.Tech()
		row := E7Row{
			Policy:  pol,
			Peak:    gt.Steady.Max(),
			Leakage: metrics.LeakagePower(gt.Steady, tech),
			RelMTTF: metrics.RelativeMTTF(gt.Steady, tech.TAmbient),
		}
		res.Rows = append(res.Rows, row)
		tbl.AddF(pol.String(), row.Peak, row.Leakage*1e3, row.RelMTTF)
	}
	cfg.printf("%s\n", tbl.String())
	return res, nil
}

// Row returns the row for a policy, or nil.
func (r *E7Result) Row(p thermflow.Policy) *E7Row {
	for i := range r.Rows {
		if r.Rows[i].Policy == p {
			return &r.Rows[i]
		}
	}
	return nil
}
