package experiments

import (
	"strings"
	"testing"

	"thermflow"
	"thermflow/internal/sim"
	"thermflow/internal/tdfa"
	"thermflow/internal/vliw"
)

// The experiment tests assert the *shapes* the paper reports — who
// wins, in which direction — not absolute numbers.

func TestFig1Shapes(t *testing.T) {
	var buf strings.Builder
	res, err := Fig1(Config{Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	ff := res.Row(thermflow.FirstFree)
	rnd := res.Row(thermflow.Random)
	cb := res.Row(thermflow.Chessboard)
	if ff == nil || rnd == nil || cb == nil {
		t.Fatal("missing policy rows")
	}
	// (a) hottest and steepest; (c) homogenized; (b) in between.
	if !(ff.Measured.Peak > rnd.Measured.Peak && rnd.Measured.Peak > cb.Measured.Peak) {
		t.Errorf("measured peak ordering violated: ff=%g rnd=%g cb=%g",
			ff.Measured.Peak, rnd.Measured.Peak, cb.Measured.Peak)
	}
	if !(ff.Measured.MaxGradient > rnd.Measured.MaxGradient &&
		rnd.Measured.MaxGradient > cb.Measured.MaxGradient) {
		t.Errorf("measured gradient ordering violated: ff=%g rnd=%g cb=%g",
			ff.Measured.MaxGradient, rnd.Measured.MaxGradient, cb.Measured.MaxGradient)
	}
	// First-free's hot blob is pronounced: at least 2× the chessboard
	// gradient.
	if ff.Measured.MaxGradient < 2*cb.Measured.MaxGradient {
		t.Errorf("first-free gradient %g not ≫ chessboard %g",
			ff.Measured.MaxGradient, cb.Measured.MaxGradient)
	}
	// Chessboard stays within half the register file.
	if cb.Occupancy > 0.5+1e-9 {
		t.Errorf("chessboard occupancy %g exceeds half the file", cb.Occupancy)
	}
	// Prediction tracks measurement for every policy (within 3 K peak).
	for _, r := range res.Rows {
		d := r.Predicted.Peak - r.Measured.Peak
		if d < -3 || d > 3 {
			t.Errorf("%v: predicted peak %g vs measured %g", r.Policy, r.Predicted.Peak, r.Measured.Peak)
		}
	}
	// Report contains the maps and table.
	out := buf.String()
	for _, want := range []string{"(a) first-free", "(b) random", "(c) chessboard", "scale:", "occupancy"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestFig2Shapes(t *testing.T) {
	res, err := Fig2(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Iterations grow monotonically as δ shrinks.
	for i := 1; i < len(res.DeltaSweep); i++ {
		if res.DeltaSweep[i].Delta >= res.DeltaSweep[i-1].Delta {
			t.Fatal("delta sweep not descending")
		}
		if res.DeltaSweep[i].Iterations < res.DeltaSweep[i-1].Iterations {
			t.Errorf("iterations fell when δ tightened: %+v -> %+v",
				res.DeltaSweep[i-1], res.DeltaSweep[i])
		}
	}
	// Irregular data usage degrades the per-register prediction.
	first := res.IrregularitySweep[0]
	last := res.IrregularitySweep[len(res.IrregularitySweep)-1]
	if first.Diamonds != 0 || last.Diamonds == 0 {
		t.Fatal("irregularity sweep endpoints wrong")
	}
	if last.RegRMSE <= first.RegRMSE {
		t.Errorf("irregularity did not degrade prediction: RMSE %g -> %g",
			first.RegRMSE, last.RegRMSE)
	}
	// A profiling run recovers a substantial part of the loss.
	if last.RegRMSEProfiled >= last.RegRMSE {
		t.Errorf("profile guidance did not help: %g vs %g",
			last.RegRMSEProfiled, last.RegRMSE)
	}
}

func TestE3Shapes(t *testing.T) {
	res, err := E3(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanPearson < 0.9 {
		t.Errorf("mean Pearson = %g, want >= 0.9 (the 'reasonable accuracy' claim)", res.MeanPearson)
	}
	if res.MeanTop4 < 0.75 {
		t.Errorf("mean top-4 overlap = %g, want >= 0.75", res.MeanTop4)
	}
	for _, r := range res.Rows {
		if r.Post.RMSE > 2 {
			t.Errorf("%s: RMSE %g K too high", r.Kernel, r.Post.RMSE)
		}
		if r.EarlyPearson < 0.5 {
			t.Errorf("%s: early-mode Pearson %g too low", r.Kernel, r.EarlyPearson)
		}
	}
}

func TestE4Shapes(t *testing.T) {
	res, err := E4(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 2 {
		t.Fatal("need at least two grid points")
	}
	coarse := res.Rows[0]
	fine := res.Rows[len(res.Rows)-1]
	if fine.RegRMSE >= coarse.RegRMSE {
		t.Errorf("finer grid did not improve accuracy: %g -> %g K",
			coarse.RegRMSE, fine.RegRMSE)
	}
	if fine.RegPearson <= coarse.RegPearson {
		t.Errorf("finer grid did not improve correlation: %g -> %g",
			coarse.RegPearson, fine.RegPearson)
	}
}

func TestE5Shapes(t *testing.T) {
	res, err := E5(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	lowP, highP := 8, 48
	cbLow := res.Find(lowP, thermflow.Chessboard)
	cbHigh := res.Find(highP, thermflow.Chessboard)
	ffLow := res.Find(lowP, thermflow.FirstFree)
	if cbLow == nil || cbHigh == nil || ffLow == nil {
		t.Fatal("missing sweep points")
	}
	// Chessboard beats first-free at low pressure...
	if cbLow.Peak >= ffLow.Peak {
		t.Errorf("low pressure: chessboard peak %g not below first-free %g",
			cbLow.Peak, ffLow.Peak)
	}
	// ...but its gradient deteriorates as pressure grows (the §2
	// breakdown).
	if cbHigh.Gradient <= cbLow.Gradient {
		t.Errorf("chessboard gradient did not deteriorate with pressure: %g -> %g",
			cbLow.Gradient, cbHigh.Gradient)
	}
	// And occupancy saturates.
	if cbHigh.Occupancy < 0.9 {
		t.Errorf("high-pressure chessboard occupancy = %g, want near 1", cbHigh.Occupancy)
	}
}

func TestE6Shapes(t *testing.T) {
	res, err := E6(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Rows {
		if !r.Correct {
			t.Errorf("%s broke program semantics", r.Name)
		}
	}
	if r := res.Row("reassign(coldest)"); r == nil || r.Peak >= r.BasePeak-5 {
		t.Errorf("reassign should cut the peak sharply: %+v", r)
	}
	if r := res.Row("nop-insertion"); r == nil || r.Peak >= r.BasePeak || r.Cycles <= r.BaseCycles {
		t.Errorf("NOPs should cool at a cycle cost: %+v", r)
	}
	if r := res.Row("spill-critical-2"); r == nil || r.Grad >= r.BaseGrad {
		t.Errorf("spilling under chessboard should flatten gradients: %+v", r)
	}
	if r := res.Row("split-critical-4"); r == nil || r.Grad >= r.BaseGrad {
		t.Errorf("splitting under chessboard should flatten gradients: %+v", r)
	}
	if r := res.Row("promote-loads"); r == nil || r.Cycles >= r.BaseCycles || r.Peak > r.BasePeak+0.5 {
		t.Errorf("promotion should save cycles without heating: %+v", r)
	}
	// Thermal scheduling is the documented ≈0 negative result.
	if r := res.Row("thermal-schedule"); r == nil || r.Peak > r.BasePeak+1 {
		t.Errorf("scheduling should be near-neutral: %+v", r)
	}
}

func TestE7Shapes(t *testing.T) {
	res, err := E7(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ff := res.Row(thermflow.FirstFree)
	cb := res.Row(thermflow.Chessboard)
	if ff == nil || cb == nil {
		t.Fatal("missing rows")
	}
	// Homogenization improves lifetime and reduces leakage (§4).
	if cb.RelMTTF <= ff.RelMTTF {
		t.Errorf("chessboard MTTF %g not above first-free %g", cb.RelMTTF, ff.RelMTTF)
	}
	if cb.Leakage >= ff.Leakage {
		t.Errorf("chessboard leakage %g not below first-free %g", cb.Leakage, ff.Leakage)
	}
	if ff.RelMTTF >= 1 {
		t.Errorf("hot-spotted MTTF %g should be below uniform-reference 1", ff.RelMTTF)
	}
}

func TestE8Shapes(t *testing.T) {
	res, err := E8(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ff := res.Row(thermflow.FirstFree)
	cb := res.Row(thermflow.Chessboard)
	if ff == nil || cb == nil {
		t.Fatal("missing rows")
	}
	// The §4 compromise: concentration gates banks but runs hot;
	// spreading gates nothing but runs cool.
	if ff.GateableBanks <= cb.GateableBanks {
		t.Errorf("first-free gateable banks %d not above chessboard %d",
			ff.GateableBanks, cb.GateableBanks)
	}
	if ff.SavedLeakageW <= 0 {
		t.Error("first-free should save gated leakage")
	}
	if cb.GateableBanks != 0 {
		t.Errorf("chessboard gates %d banks; spreading should touch all", cb.GateableBanks)
	}
	if ff.Peak <= cb.Peak {
		t.Error("the trade-off requires first-free to run hotter")
	}
}

func TestE9Shapes(t *testing.T) {
	res, err := E9(Config{})
	if err != nil {
		t.Fatal(err)
	}
	fir := res.Row("fir")
	fib := res.Row("fib")
	dot := res.Row("dot")
	if fir == nil || fib == nil || dot == nil {
		t.Fatal("missing kernel rows")
	}
	for _, r := range res.Rows {
		if !r.Converged {
			t.Errorf("%s: chip analysis did not converge", r.Kernel)
		}
	}
	// Mul-heavy FIR heats the multiplier more than register-only fib
	// (unit means: peaks near boundaries carry RF spill-over).
	if fir.UnitMean["MUL"] <= fib.UnitMean["MUL"] {
		t.Errorf("MUL means: fir %g, fib %g; expected fir hotter",
			fir.UnitMean["MUL"], fib.UnitMean["MUL"])
	}
	// Memory-heavy dot heats the LSU more than fib.
	if dot.UnitMean["LSU"] <= fib.UnitMean["LSU"] {
		t.Errorf("LSU means: dot %g, fib %g; expected dot hotter",
			dot.UnitMean["LSU"], fib.UnitMean["LSU"])
	}
}

func TestE10Shapes(t *testing.T) {
	res, err := E10(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ff := res.Row(vliw.FirstSlot)
	cold := res.Row(vliw.ColdestSlot)
	rot := res.Row(vliw.RotateSlots)
	if ff == nil || cold == nil || rot == nil {
		t.Fatal("missing rows")
	}
	// The thermal-aware binding of [4] beats naive first-slot filling.
	if cold.Peak >= ff.Peak {
		t.Errorf("coldest-slot peak %g not below first-slot %g", cold.Peak, ff.Peak)
	}
	if cold.Spread >= ff.Spread {
		t.Errorf("coldest-slot spread %g not below first-slot %g", cold.Spread, ff.Spread)
	}
	// Binding is thermally free: bundle counts identical.
	if ff.Bundles != cold.Bundles || ff.Bundles != rot.Bundles {
		t.Errorf("bundle counts differ: %d %d %d", ff.Bundles, cold.Bundles, rot.Bundles)
	}
}

func TestA1Shapes(t *testing.T) {
	res, err := A1(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 2 {
		t.Fatal("need at least two κ points")
	}
	small := res.Rows[0]
	large := res.Rows[len(res.Rows)-1]
	if large.PeakError >= small.PeakError {
		t.Errorf("larger κ did not improve cold-start fidelity: %g -> %g K",
			small.PeakError, large.PeakError)
	}
}

func TestA2Shapes(t *testing.T) {
	res, err := A2(Config{})
	if err != nil {
		t.Fatal(err)
	}
	byJoin := map[tdfa.Join]A2Row{}
	for _, r := range res.Rows {
		byJoin[r.Join] = r
	}
	w := byJoin[tdfa.JoinWeighted]
	m := byJoin[tdfa.JoinMax]
	if w.RMSE >= m.RMSE {
		t.Errorf("weighted join RMSE %g not below max join %g", w.RMSE, m.RMSE)
	}
	if m.Peak < w.Peak {
		t.Errorf("max join peak %g below weighted %g (should be conservative)", m.Peak, w.Peak)
	}
}

func TestBuildIrregularExecutes(t *testing.T) {
	for _, d := range []int{0, 3, 8} {
		fn := buildIrregular(d)
		res, err := sim.Run(fn, sim.Options{})
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if !res.HasRet {
			t.Fatalf("d=%d returned nothing", d)
		}
		// 256 iterations, each taking exactly one 'then' arm per 8
		// phases: the diamonds execute.
		if d > 0 && res.Instrs < 256*4 {
			t.Errorf("d=%d suspiciously few instructions: %d", d, res.Instrs)
		}
	}
}

func TestAllRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite")
	}
	var buf strings.Builder
	if err := All(Config{Out: &buf, Quick: true}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 1", "Figure 2", "E3", "E4", "E5", "E6", "E7", "A1", "A2"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("combined report missing %q", want)
		}
	}
}
