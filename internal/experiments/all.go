package experiments

import (
	"fmt"

	"thermflow"
)

// All runs every experiment in paper order and returns the first
// error. Results are printed to cfg.Out. Every driver shares one batch
// compilation engine, so configurations repeated across experiments
// are compiled once.
func All(cfg Config) error {
	if cfg.Batch == nil {
		cfg.Batch = thermflow.NewBatch(cfg.Workers)
	}
	if _, err := Fig1(cfg); err != nil {
		return fmt.Errorf("Fig1: %w", err)
	}
	if _, err := Fig2(cfg); err != nil {
		return fmt.Errorf("Fig2: %w", err)
	}
	if _, err := E3(cfg); err != nil {
		return fmt.Errorf("E3: %w", err)
	}
	if _, err := E4(cfg); err != nil {
		return fmt.Errorf("E4: %w", err)
	}
	if _, err := E5(cfg); err != nil {
		return fmt.Errorf("E5: %w", err)
	}
	if _, err := E6(cfg); err != nil {
		return fmt.Errorf("E6: %w", err)
	}
	if _, err := E7(cfg); err != nil {
		return fmt.Errorf("E7: %w", err)
	}
	if _, err := E8(cfg); err != nil {
		return fmt.Errorf("E8: %w", err)
	}
	if _, err := E9(cfg); err != nil {
		return fmt.Errorf("E9: %w", err)
	}
	if _, err := E10(cfg); err != nil {
		return fmt.Errorf("E10: %w", err)
	}
	if _, err := A1(cfg); err != nil {
		return fmt.Errorf("A1: %w", err)
	}
	if _, err := A2(cfg); err != nil {
		return fmt.Errorf("A2: %w", err)
	}
	return nil
}
