package experiments

import (
	"fmt"

	"thermflow"
	"thermflow/internal/power"
	"thermflow/internal/report"
	"thermflow/internal/vliw"
)

// E10Row holds one binding policy's outcome.
type E10Row struct {
	// Policy is the slot-binding policy.
	Policy vliw.BindPolicy
	// Peak is the hottest slot temperature (K).
	Peak float64
	// Spread is hottest minus coldest slot (K).
	Spread float64
	// Bundles is the static bundle count (identical across policies —
	// binding is thermally free).
	Bundles int
}

// E10Result bundles the VLIW binding experiment.
type E10Result struct {
	// Width is the issue width.
	Width int
	// Rows per binding policy.
	Rows []E10Row
}

// e10Width is the modelled issue width.
const e10Width = 4

// E10 reproduces the sibling technique the paper's §1 cites:
// "thermal-aware instruction binding in VLIW processors [4]". Binding
// operations to issue slots is thermally free, exactly like register
// assignment: always filling slot 0 first concentrates activity (and
// heat) on one ALU, while rotating or thermal-aware binding levels the
// slot array.
func E10(cfg Config) (*E10Result, error) {
	cfg.section("E10 — VLIW slot binding (the §1 sibling technique [4])")
	k, err := thermflow.Kernel("fir")
	if err != nil {
		return nil, err
	}
	tech := power.Default65nm()
	res := &E10Result{Width: e10Width}
	tbl := report.NewTable("binding", "bundles", "peak K", "hot−cold spread K")
	for _, pol := range vliw.Policies {
		b, err := vliw.Bind(k.Fn, e10Width, pol)
		if err != nil {
			return nil, fmt.Errorf("e10 %v: %w", pol, err)
		}
		temps, err := b.SlotTemps(tech)
		if err != nil {
			return nil, fmt.Errorf("e10 %v temps: %w", pol, err)
		}
		row := E10Row{
			Policy:  pol,
			Peak:    temps.Max(),
			Spread:  temps.Max() - temps.Min(),
			Bundles: b.Bundles,
		}
		res.Rows = append(res.Rows, row)
		tbl.AddF(pol.String(), row.Bundles, row.Peak, row.Spread)
	}
	cfg.printf("%s\n", tbl.String())
	return res, nil
}

// Row returns the row for a policy, or nil.
func (r *E10Result) Row(p vliw.BindPolicy) *E10Row {
	for i := range r.Rows {
		if r.Rows[i].Policy == p {
			return &r.Rows[i]
		}
	}
	return nil
}
