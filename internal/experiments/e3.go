package experiments

import (
	"fmt"

	"thermflow"
	"thermflow/internal/metrics"
	"thermflow/internal/report"
)

// E3Row holds one kernel's prediction accuracy.
type E3Row struct {
	// Kernel is the workload.
	Kernel string
	// Post is the post-assignment accuracy vs ground truth.
	Post thermflow.Accuracy
	// EarlyPearson is the early (pre-allocation) mode's per-register
	// correlation with the measurement.
	EarlyPearson float64
	// EarlyTop4 is the early mode's hottest-register overlap.
	EarlyTop4 float64
}

// E3Result bundles the accuracy experiment.
type E3Result struct {
	// Rows per kernel.
	Rows []E3Row
	// MeanPearson across kernels (post-assignment mode).
	MeanPearson float64
	// MeanTop4 across kernels (post-assignment mode).
	MeanTop4 float64
}

// e3Scale is the execution scale for ground truth traces.
const e3Scale = 48

// E3 validates the paper's central claim: the compile-time analysis
// approximates the thermal state "with reasonable accuracy" (§1),
// without executing the program. Post-assignment predictions are scored
// per cell against the sustained trace-replay state; early-mode
// predictions (before allocation, policy prior only) are scored on
// register ranking.
func E3(cfg Config) (*E3Result, error) {
	cfg.section("E3 — prediction accuracy vs trace-driven ground truth")
	kernels := []string{"dot", "saxpy", "fir", "checksum", "histogram", "fib"}
	if cfg.Quick {
		kernels = []string{"dot", "fir"}
	}
	res := &E3Result{}
	tbl := report.NewTable("kernel", "RMSE K", "MAE K", "Pearson", "top4", "peak err K",
		"early r", "early top4")
	for _, k := range kernels {
		c, err := compileKernel(k, thermflow.FirstFree, 7)
		if err != nil {
			return nil, fmt.Errorf("e3 %s: %w", k, err)
		}
		acc, gt, err := c.Validate(e3Scale)
		if err != nil {
			return nil, fmt.Errorf("e3 %s validate: %w", k, err)
		}
		// Early mode: per-register peaks vs measured per-register
		// temperature.
		p, err := thermflow.Kernel(k)
		if err != nil {
			return nil, err
		}
		early, err := p.AnalyzeEarly(thermflow.EarlyPrior(thermflow.FirstFree), thermflow.Options{})
		if err != nil {
			return nil, fmt.Errorf("e3 %s early: %w", k, err)
		}
		fp := c.Floorplan()
		measured := make([]float64, fp.NumRegs)
		for r := 0; r < fp.NumRegs; r++ {
			measured[r] = gt.Steady[fp.CellOf(r)]
		}
		row := E3Row{
			Kernel:       k,
			Post:         *acc,
			EarlyPearson: metrics.Pearson(early.RegPeak, measured),
			EarlyTop4:    metrics.TopKOverlap(early.RegPeak, measured, 4),
		}
		res.Rows = append(res.Rows, row)
		res.MeanPearson += acc.Pearson
		res.MeanTop4 += acc.Top4Overlap
		tbl.AddF(k, acc.RMSE, acc.MAE, acc.Pearson, acc.Top4Overlap, acc.PeakError,
			row.EarlyPearson, row.EarlyTop4)
	}
	res.MeanPearson /= float64(len(res.Rows))
	res.MeanTop4 /= float64(len(res.Rows))
	tbl.AddF("mean", "", "", res.MeanPearson, res.MeanTop4, "", "", "")
	cfg.printf("%s\n", tbl.String())
	return res, nil
}
