package experiments

import (
	"fmt"

	"thermflow"
	"thermflow/internal/metrics"
	"thermflow/internal/report"
)

// E8Row holds one policy's gating/thermal trade-off point.
type E8Row struct {
	// Policy is the assignment policy.
	Policy thermflow.Policy
	// Peak is the predicted peak temperature (K).
	Peak float64
	// Gradient is the predicted max adjacent gradient (K).
	Gradient float64
	// GateableBanks counts banks (of NumBanks) with no used register.
	GateableBanks int
	// SavedLeakageW is the leakage power gating those banks saves.
	SavedLeakageW float64
}

// E8Result bundles the bank-gating trade-off experiment.
type E8Result struct {
	// NumBanks is the gating granularity.
	NumBanks int
	// Rows per policy.
	Rows []E8Row
}

// e8NumBanks is the gating granularity: 8 banks of one row each.
const e8NumBanks = 8

// E8 quantifies the compromise the paper's §4 calls out: "power
// reduction techniques based on switching off register banks could not
// theoretically be applied after the spread register assignment, and a
// compromise between these types of techniques for different
// optimization metrics can be explored at the compiler level."
// Concentrating policies (first-free) leave whole banks idle and
// gateable but run hot; spreading policies (chessboard, coldest) run
// cool but touch every bank, forfeiting the gating savings.
func E8(cfg Config) (*E8Result, error) {
	cfg.section("E8 — bank power gating vs thermal spreading (the §4 compromise)")
	p := fig1Workload()
	res := &E8Result{NumBanks: e8NumBanks}
	tbl := report.NewTable("policy", "pred peak K", "grad K", "gateable banks", "saved leakage µW")
	for _, pol := range []thermflow.Policy{
		thermflow.FirstFree, thermflow.Random, thermflow.Chessboard, thermflow.Coldest,
	} {
		c, err := p.Compile(thermflow.Options{Policy: pol, Seed: 1})
		if err != nil {
			return nil, fmt.Errorf("e8 %v: %w", pol, err)
		}
		gateable, saved := metrics.BankGating(c.Alloc.UsedRegs(), c.Floorplan(), e8NumBanks, c.Tech())
		m := c.Metrics()
		row := E8Row{
			Policy:        pol,
			Peak:          m.Peak,
			Gradient:      m.MaxGradient,
			GateableBanks: gateable,
			SavedLeakageW: saved,
		}
		res.Rows = append(res.Rows, row)
		tbl.AddF(pol.String(), row.Peak, row.Gradient, row.GateableBanks, row.SavedLeakageW*1e6)
	}
	cfg.printf("%s\n", tbl.String())
	cfg.printf("the compromise: gating favours concentration, temperature favours spreading.\n")
	return res, nil
}

// Row returns the row for a policy, or nil.
func (r *E8Result) Row(p thermflow.Policy) *E8Row {
	for i := range r.Rows {
		if r.Rows[i].Policy == p {
			return &r.Rows[i]
		}
	}
	return nil
}
