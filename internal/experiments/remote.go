package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"thermflow"
	"thermflow/api"
	"thermflow/client"
)

// RemoteResult summarizes one remote sweep.
type RemoteResult struct {
	// Jobs is the number of jobs submitted; Errors how many failed.
	Jobs, Errors int
	// Cached counts results the server answered from its cache — on a
	// second run against the same server this is the cross-process
	// dedup win the ROADMAP's "result serving" item is after.
	Cached int
	// Wall is the client-observed wall-clock of the whole stream.
	Wall time.Duration
	// ServerHits and ServerMisses are the server's cache counters
	// after the sweep (cumulative over the server's lifetime).
	ServerHits, ServerMisses uint64
	// DiskHits counts results the server pulled from its persistent
	// disk tier — after a thermflowd restart over the same -cache-dir
	// this is the warm-restart win (scripts/bench_persist.sh records
	// it). Zero when the server runs memory-only.
	DiskHits uint64
}

// RemoteResetCache drops a running server's result cache and zeroes
// its counters (used by scripts/bench_serve.sh to separate the cold
// run from the readiness probe).
func RemoteResetCache(addr string) error {
	_, err := client.New(addr, nil).ResetCache(context.Background())
	return err
}

// Remote runs the standard sweep matrix — every kernel × every policy,
// plus the sparse solver and two reduced register-file sizes per
// kernel — against a running thermflowd server instead of an
// in-process engine, streaming results as the server finishes them.
// Two processes pointed at the same server share one result cache, so
// a repeated sweep is answered almost entirely from cache; the summary
// line reports the observed hit count and wall-clock for exactly that
// comparison (recorded in BENCH_serve.json by scripts/bench_serve.sh).
//
// Quick trims the matrix to two kernels × two policies.
func Remote(cfg Config, addr string) (*RemoteResult, error) {
	cl := client.New(addr, nil)
	ctx := context.Background()

	kernels, err := cl.Kernels(ctx)
	if err != nil {
		return nil, fmt.Errorf("remote: listing kernels: %w", err)
	}
	policies := thermflow.Policies
	if cfg.Quick {
		if len(kernels) > 2 {
			kernels = kernels[:2]
		}
		policies = []thermflow.Policy{thermflow.FirstFree, thermflow.Chessboard}
	}

	var jobs []api.CompileRequest
	for _, k := range kernels {
		for _, pol := range policies {
			jobs = append(jobs, api.CompileRequest{
				Kernel:  k.Name,
				Options: thermflow.Options{Policy: pol},
			})
		}
		jobs = append(jobs, api.CompileRequest{
			Kernel:  k.Name,
			Options: thermflow.Options{Solver: thermflow.SolverSparse},
		})
		if !cfg.Quick {
			for _, regs := range []int{16, 32} {
				jobs = append(jobs, api.CompileRequest{
					Kernel:  k.Name,
					Options: thermflow.Options{NumRegs: regs, GridW: 8, GridH: 8},
				})
			}
		}
	}

	cfg.section(fmt.Sprintf("Remote sweep via %s (%d jobs)", addr, len(jobs)))
	cfg.printf("%-12s %-12s %-8s %5s %5s  %9s %6s\n",
		"kernel", "policy", "solver", "regs", "conv", "peak K", "cached")

	res := &RemoteResult{Jobs: len(jobs)}
	items := make([]api.BatchItem, 0, len(jobs))
	start := time.Now()
	err = cl.CompileBatch(ctx, jobs, func(item api.BatchItem) {
		items = append(items, item)
	})
	res.Wall = time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("remote: batch stream: %w", err)
	}

	// The stream arrives in completion order; report in job order.
	sort.Slice(items, func(i, j int) bool { return items[i].Index < items[j].Index })
	for _, item := range items {
		req := jobs[item.Index]
		if item.Error != "" {
			res.Errors++
			cfg.printf("%-12s job %d failed: %s\n", req.Kernel, item.Index, item.Error)
			continue
		}
		r := item.Result
		if r.Cached {
			res.Cached++
		}
		cfg.printf("%-12s %-12s %-8s %5d %5v  %9.2f %6v\n",
			req.Kernel, r.Policy, r.Solver, r.NumRegs, r.Converged, r.PeakTemp, r.Cached)
	}

	stats, err := cl.CacheStats(ctx)
	if err != nil {
		return nil, fmt.Errorf("remote: cache stats: %w", err)
	}
	res.ServerHits, res.ServerMisses = stats.Hits, stats.Misses
	res.DiskHits = stats.Disk.Hits
	cfg.printf("\nremote sweep: jobs=%d errors=%d cached=%d wall_ms=%d server hits=%d misses=%d disk_hits=%d\n",
		res.Jobs, res.Errors, res.Cached, res.Wall.Milliseconds(),
		res.ServerHits, res.ServerMisses, res.DiskHits)
	return res, nil
}
