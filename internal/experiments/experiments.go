// Package experiments contains one driver per reproduced artifact of
// the paper: Figure 1 (thermal maps per register-assignment policy),
// Figure 2 (the analysis's convergence behaviour), the derived
// experiments E3–E7 validating the prose claims, and the ablations
// A1–A2. Each driver prints its tables/maps to a writer and returns a
// typed result so tests and benchmarks can assert the expected shapes.
//
// See DESIGN.md §5 for the experiment index and EXPERIMENTS.md for the
// recorded outcomes.
package experiments

import (
	"context"
	"fmt"
	"io"

	"thermflow"
)

// Config controls experiment execution.
type Config struct {
	// Out receives the human-readable report (nil = discard).
	Out io.Writer
	// Quick reduces sweep sizes for use inside benchmarks.
	Quick bool
	// Workers sizes the worker pool of the batch compilation engine
	// (0 = GOMAXPROCS). Ignored when Batch is set.
	Workers int
	// Batch, when non-nil, is a shared compilation engine whose result
	// cache persists across experiments (All wires one through every
	// driver). When nil each driver builds its own.
	Batch *thermflow.Batch
}

func (c Config) out() io.Writer {
	if c.Out == nil {
		return io.Discard
	}
	return c.Out
}

func (c Config) printf(format string, args ...any) {
	fmt.Fprintf(c.out(), format, args...)
}

func (c Config) section(title string) {
	fmt.Fprintf(c.out(), "\n=== %s ===\n\n", title)
}

// batch returns the shared compilation engine, or a private one.
func (c Config) batch() *thermflow.Batch {
	if c.Batch != nil {
		return c.Batch
	}
	return thermflow.NewBatch(c.Workers)
}

// compileAll batch-compiles the jobs and unwraps the results,
// returning the first failure (experiment inputs are static, so any
// failure aborts the experiment).
func (c Config) compileAll(jobs []thermflow.CompileJob) ([]*thermflow.Compiled, error) {
	res := c.batch().Compile(context.Background(), jobs)
	out := make([]*thermflow.Compiled, len(res))
	for i, r := range res {
		if r.Err != nil {
			o := jobs[i].Opts
			return nil, fmt.Errorf("job %d (policy %v, seed %d, κ=%g, join=%v): %w",
				i, o.Policy, o.Seed, o.Kappa, o.JoinOp, r.Err)
		}
		out[i] = r.Compiled
	}
	return out, nil
}

// compileKernel compiles a named kernel under a policy with default
// options, failing hard on errors (experiment inputs are static).
func compileKernel(name string, pol thermflow.Policy, seed int64) (*thermflow.Compiled, error) {
	p, err := thermflow.Kernel(name)
	if err != nil {
		return nil, err
	}
	return p.Compile(thermflow.Options{Policy: pol, Seed: seed})
}
