package experiments

import (
	"fmt"

	"thermflow"
	"thermflow/internal/report"
)

// E5Row holds one (pressure, policy) point.
type E5Row struct {
	// Pressure is the generator's long-lived value count.
	Pressure int
	// Policy is the assignment policy.
	Policy thermflow.Policy
	// Occupancy is the fraction of the register file in use.
	Occupancy float64
	// Peak and Gradient summarize the predicted peak state.
	Peak, Gradient, StdDev float64
}

// E5Result bundles the register-pressure sweep.
type E5Result struct {
	// Rows ordered by (pressure, policy).
	Rows []E5Row
}

// E5 tests the paper's §2 caveat: "the chessboard policy ... only
// works if the program only uses half of the registers in the RF.
// Indeed, if register pressure is high, then all registers will be
// used ... and thermal gradients may still appear". Random programs
// with growing working sets are compiled under each policy; the
// chessboard advantage must collapse as occupancy approaches 1.
func E5(cfg Config) (*E5Result, error) {
	cfg.section("E5 — register pressure vs policy effectiveness")
	pressures := []int{8, 16, 32, 48, 60}
	if cfg.Quick {
		pressures = []int{8, 48}
	}
	policies := []thermflow.Policy{thermflow.FirstFree, thermflow.Chessboard, thermflow.Coldest}
	res := &E5Result{}
	tbl := report.NewTable("pressure", "policy", "occupancy", "peak K", "grad K", "σ K")
	for _, pr := range pressures {
		p := thermflow.Generate(thermflow.GenerateOptions{
			Seed: 21, Pressure: pr, Segments: 5, OpsPerBlock: 8,
		})
		for _, pol := range policies {
			c, err := p.Compile(thermflow.Options{Policy: pol, Seed: 3})
			if err != nil {
				return nil, fmt.Errorf("e5 pressure=%d policy=%v: %w", pr, pol, err)
			}
			m := c.Metrics()
			row := E5Row{
				Pressure:  pr,
				Policy:    pol,
				Occupancy: c.Alloc.Occupancy(),
				Peak:      m.Peak,
				Gradient:  m.MaxGradient,
				StdDev:    m.StdDev,
			}
			res.Rows = append(res.Rows, row)
			tbl.AddF(pr, pol.String(), row.Occupancy, row.Peak, row.Gradient, row.StdDev)
		}
	}
	cfg.printf("%s\n", tbl.String())
	return res, nil
}

// Find returns the row for a (pressure, policy) pair, or nil.
func (r *E5Result) Find(pressure int, pol thermflow.Policy) *E5Row {
	for i := range r.Rows {
		if r.Rows[i].Pressure == pressure && r.Rows[i].Policy == pol {
			return &r.Rows[i]
		}
	}
	return nil
}
