package experiments

import (
	"fmt"

	"thermflow"
	"thermflow/internal/metrics"
	"thermflow/internal/report"
	"thermflow/internal/tdfa"
)

// A1Row holds one κ point.
type A1Row struct {
	// Kappa is the time-acceleration factor.
	Kappa float64
	// Iterations to converge from a cold start.
	Iterations int
	// Converged within the cap.
	Converged bool
	// PeakError is |cold-start peak − warm-start reference peak| (K).
	PeakError float64
}

// A1Result bundles the κ ablation.
type A1Result struct {
	// RefPeak is the warm-started reference peak (K).
	RefPeak float64
	// Rows per κ.
	Rows []A1Row
}

// A1 ablates the time-acceleration factor κ (DESIGN.md §4): from a
// cold start with fixed δ, small κ under-integrates (false early
// convergence, large peak error) while large κ reaches the fixpoint in
// few sweeps.
func A1(cfg Config) (*A1Result, error) {
	cfg.section("A1 — ablation: time-acceleration factor κ")
	const kernel = "fir"
	p, err := thermflow.Kernel(kernel)
	if err != nil {
		return nil, err
	}
	ref, err := p.Compile(thermflow.Options{Policy: thermflow.FirstFree})
	if err != nil {
		return nil, err
	}
	res := &A1Result{RefPeak: ref.Thermal.PeakTemp}
	kappas := []float64{0.1, 1, 10, 100, 1000}
	if cfg.Quick {
		kappas = []float64{1, 100}
	}
	// The κ points are independent cold-start solves — the slowest part
	// of the ablation — so sweep them through the batch engine.
	jobs := make([]thermflow.CompileJob, len(kappas))
	for i, k := range kappas {
		jobs[i] = thermflow.CompileJob{Program: p, Opts: thermflow.Options{
			Policy: thermflow.FirstFree, Kappa: k, NoWarmStart: true,
			Delta: 0.05, MaxIter: 1024,
		}}
	}
	compiled, err := cfg.compileAll(jobs)
	if err != nil {
		return nil, fmt.Errorf("a1: %w", err)
	}
	tbl := report.NewTable("kappa", "iterations", "converged", "peak err K")
	for i, k := range kappas {
		c := compiled[i]
		errPeak := c.Thermal.PeakTemp - res.RefPeak
		if errPeak < 0 {
			errPeak = -errPeak
		}
		row := A1Row{
			Kappa:      k,
			Iterations: c.Thermal.Iterations,
			Converged:  c.Thermal.Converged,
			PeakError:  errPeak,
		}
		res.Rows = append(res.Rows, row)
		tbl.AddF(k, row.Iterations, row.Converged, row.PeakError)
	}
	cfg.printf("%s\n", tbl.String())
	return res, nil
}

// A2Row holds one join operator's accuracy.
type A2Row struct {
	// Join is the merge operator.
	Join tdfa.Join
	// Pearson and RMSE vs measured sustained state.
	Pearson, RMSE float64
	// Peak is the predicted peak (K).
	Peak float64
}

// A2Result bundles the join ablation.
type A2Result struct {
	// Rows per join operator.
	Rows []A2Row
}

// A2 ablates the join operator at control-flow merges: the
// frequency-weighted average (default) against the unweighted average
// and the conservative cell-wise max. Expected shape: weighted ≥
// unweighted in accuracy; max overestimates the peak.
func A2(cfg Config) (*A2Result, error) {
	cfg.section("A2 — ablation: join operator")
	const kernel = "fir"
	p, err := thermflow.Kernel(kernel)
	if err != nil {
		return nil, err
	}
	// One ground truth for all joins (same policy/assignment seed).
	base, err := p.Compile(thermflow.Options{Policy: thermflow.FirstFree})
	if err != nil {
		return nil, err
	}
	gt, err := base.GroundTruth(e3Scale)
	if err != nil {
		return nil, err
	}
	res := &A2Result{}
	tbl := report.NewTable("join", "Pearson", "RMSE K", "pred peak K")
	joins := []tdfa.Join{tdfa.JoinWeighted, tdfa.JoinUnweighted, tdfa.JoinMax}
	jobs := make([]thermflow.CompileJob, len(joins))
	for i, j := range joins {
		jobs[i] = thermflow.CompileJob{Program: p, Opts: thermflow.Options{
			Policy: thermflow.FirstFree, JoinOp: j,
		}}
	}
	compiled, err := cfg.compileAll(jobs)
	if err != nil {
		return nil, fmt.Errorf("a2: %w", err)
	}
	for i, j := range joins {
		c := compiled[i]
		row := A2Row{
			Join:    j,
			Pearson: metrics.Pearson([]float64(c.Thermal.Mean), []float64(gt.Steady)),
			RMSE:    metrics.RMSE([]float64(c.Thermal.Mean), []float64(gt.Steady)),
			Peak:    c.Thermal.PeakTemp,
		}
		res.Rows = append(res.Rows, row)
		tbl.AddF(j.String(), row.Pearson, row.RMSE, row.Peak)
	}
	cfg.printf("%s\n", tbl.String())
	return res, nil
}
