package bitwidth

import (
	"math"
	"testing"
	"testing/quick"

	"thermflow/internal/cfg"
	"thermflow/internal/ir"
)

func analyzeSrc(t *testing.T, src string) (*ir.Function, *Result) {
	t.Helper()
	f, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	g := cfg.Build(f)
	return f, Analyze(g)
}

func TestIntervalBasics(t *testing.T) {
	if Of(5, 3) != Of(3, 5) {
		t.Error("Of must normalize bounds")
	}
	p := Point(7)
	if p.Lo != 7 || p.Hi != 7 || !p.Known {
		t.Errorf("Point = %v", p)
	}
	if !p.Contains(7) || p.Contains(8) {
		t.Error("Contains wrong")
	}
	var bot Interval
	if bot.Known || bot.Contains(0) {
		t.Error("zero Interval must be bottom")
	}
	if bot.String() != "⊥" || Full.String() != "⊤" {
		t.Errorf("String: %s %s", bot.String(), Full.String())
	}
	if Of(1, 2).String() != "[1,2]" {
		t.Errorf("String = %s", Of(1, 2).String())
	}
}

func TestIntervalWidth(t *testing.T) {
	cases := []struct {
		iv   Interval
		want int
	}{
		{Point(0), 1},
		{Point(1), 1},
		{Of(0, 1), 1},
		{Of(0, 255), 8},
		{Of(0, 256), 9},
		{Point(-1), 1}, // two's complement: 1 bit holds {-1, 0}
		{Of(-128, 127), 8},
		{Of(-129, 0), 9},
		{Full, 64},
		{Interval{}, 0}, // bottom
	}
	for _, tc := range cases {
		if got := tc.iv.Width(); got != tc.want {
			t.Errorf("Width(%s) = %d, want %d", tc.iv, got, tc.want)
		}
	}
}

func TestWidthMonotone(t *testing.T) {
	// Property: widening an interval never decreases its width.
	f := func(lo, hi, lo2, hi2 int64) bool {
		a := Of(lo, hi)
		b := Of(lo2, hi2)
		h := hullWiden(a, b)
		return h.Width() >= a.Width() && h.Lo <= a.Lo && h.Hi >= a.Hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAnalyzeStraightLine(t *testing.T) {
	src := `
func f() {
entry:
  a = const 10
  b = const 20
  c = add a, b
  d = mul a, b
  e = sub a, b
  cm = cmplt a, b
  ret c
}`
	f, r := analyzeSrc(t, src)
	want := map[string]Interval{
		"a":  Point(10),
		"b":  Point(20),
		"c":  Point(30),
		"d":  Point(200),
		"e":  Point(-10),
		"cm": Of(0, 1),
	}
	for name, iv := range want {
		got := r.Interval(f.ValueNamed(name))
		if got != iv {
			t.Errorf("interval(%s) = %s, want %s", name, got, iv)
		}
	}
	if r.Width(f.ValueNamed("cm")) != 1 {
		t.Errorf("width(cm) = %d, want 1", r.Width(f.ValueNamed("cm")))
	}
}

func TestAnalyzeDiamondHull(t *testing.T) {
	src := `
func f(p) {
entry:
  c = cmplt p, p
  cbr c, a, b
a:
  x = const 3
  br join
b:
  x = const 300
  br join
join:
  ret x
}`
	f, r := analyzeSrc(t, src)
	iv := r.Interval(f.ValueNamed("x"))
	if !iv.Contains(3) || !iv.Contains(300) {
		t.Errorf("interval(x) = %s must contain both 3 and 300", iv)
	}
}

func TestAnalyzeLoopCounterConverges(t *testing.T) {
	src := `
func f(n) {
entry:
  i = const 0
  one = const 1
  br head
head:
  c = cmplt i, n
  cbr c, body, exit
body:
  i2 = add i, one
  i = mov i2
  br head
exit:
  ret i
}`
	f, r := analyzeSrc(t, src)
	iv := r.Interval(f.ValueNamed("i"))
	if !iv.Known {
		t.Fatal("i has no interval")
	}
	if iv.Lo != 0 {
		t.Errorf("interval(i).Lo = %d, want 0", iv.Lo)
	}
	if iv.Hi <= 0 {
		t.Errorf("interval(i).Hi = %d, want positive (widened)", iv.Hi)
	}
	// Parameters are unknown.
	if r.Interval(f.ValueNamed("n")) != Full {
		t.Errorf("interval(n) = %s, want ⊤", r.Interval(f.ValueNamed("n")))
	}
}

func TestAnalyzeLoadUnknown(t *testing.T) {
	src := `
func f(base) {
entry:
  v = load base, 0
  ret v
}`
	f, r := analyzeSrc(t, src)
	if r.Interval(f.ValueNamed("v")) != Full {
		t.Errorf("load result = %s, want ⊤", r.Interval(f.ValueNamed("v")))
	}
	if r.Width(f.ValueNamed("v")) != 64 {
		t.Errorf("width = %d, want 64", r.Width(f.ValueNamed("v")))
	}
}

func TestAnalyzeBitOps(t *testing.T) {
	src := `
func f() {
entry:
  a = const 200
  b = const 15
  x = and a, b
  o = or a, b
  s = shl b, b
  r = shr a, b
  ret x
}`
	f, r := analyzeSrc(t, src)
	x := r.Interval(f.ValueNamed("x"))
	if x.Lo < 0 || x.Hi > 15 {
		t.Errorf("and interval = %s, want within [0,15]", x)
	}
	o := r.Interval(f.ValueNamed("o"))
	if !o.Contains(200 | 15) {
		t.Errorf("or interval = %s must contain %d", o, 200|15)
	}
	s := r.Interval(f.ValueNamed("s"))
	if !s.Contains(15 << 15) {
		t.Errorf("shl interval = %s must contain %d", s, 15<<15)
	}
	rr := r.Interval(f.ValueNamed("r"))
	if !rr.Contains(200 >> 15) {
		t.Errorf("shr interval = %s must contain 0", rr)
	}
}

func TestAnalyzeDivRem(t *testing.T) {
	src := `
func f() {
entry:
  a = const 100
  b = const 7
  q = div a, b
  m = rem a, b
  z = const 0
  bad = div a, z
  ret q
}`
	f, r := analyzeSrc(t, src)
	q := r.Interval(f.ValueNamed("q"))
	if !q.Contains(14) {
		t.Errorf("div interval = %s must contain 14", q)
	}
	m := r.Interval(f.ValueNamed("m"))
	if !m.Contains(2) || m.Hi > 6 || m.Lo < 0 {
		t.Errorf("rem interval = %s, want within [0,6] containing 2", m)
	}
	if r.Interval(f.ValueNamed("bad")) != Full {
		t.Errorf("div by zero-containing interval must be ⊤, got %s",
			r.Interval(f.ValueNamed("bad")))
	}
}

func TestAnalyzeNegNot(t *testing.T) {
	src := `
func f() {
entry:
  a = const 5
  n = neg a
  m = not a
  ret n
}`
	f, r := analyzeSrc(t, src)
	if got := r.Interval(f.ValueNamed("n")); got != Point(-5) {
		t.Errorf("neg = %s, want [-5,-5]", got)
	}
	if got := r.Interval(f.ValueNamed("m")); got != Point(^int64(5)) {
		t.Errorf("not = %s, want [%d,%d]", got, ^int64(5), ^int64(5))
	}
}

func TestSaturatingArithmetic(t *testing.T) {
	if satAdd(math.MaxInt64, 1) != math.MaxInt64 {
		t.Error("satAdd overflow not saturated")
	}
	if satAdd(math.MinInt64, -1) != math.MinInt64 {
		t.Error("satAdd underflow not saturated")
	}
	if satMul(math.MaxInt64, 2) != math.MaxInt64 {
		t.Error("satMul overflow not saturated")
	}
	if satMul(math.MaxInt64, -2) != math.MinInt64 {
		t.Error("satMul negative overflow not saturated")
	}
	if satMul(0, math.MaxInt64) != 0 {
		t.Error("satMul zero")
	}
}

func TestWidenStages(t *testing.T) {
	if widenUp(5) != 16 {
		t.Errorf("widenUp(5) = %d, want 16", widenUp(5))
	}
	if widenUp(0) != 0 {
		t.Errorf("widenUp(0) = %d, want 0", widenUp(0))
	}
	if widenUp(1<<20) != 1<<31 {
		t.Errorf("widenUp(2^20) = %d, want 2^31", widenUp(1<<20))
	}
	if widenDown(-5) != -16 {
		t.Errorf("widenDown(-5) = %d, want -16", widenDown(-5))
	}
	if widenDown(3) != 0 {
		t.Errorf("widenDown(3) = %d, want 0", widenDown(3))
	}
}
