// Package bitwidth implements interval-based bitwidth analysis in the
// style of Stephenson et al. (PLDI 2000), which the paper's §3 cites as
// the mid-complexity data-flow fact ("an interval for each variable")
// between liveness (one bit) and the thermal state (a temperature
// field). It is a forward analysis over the same solver the thermal
// analysis uses.
package bitwidth

import (
	"fmt"
	"math"
	"math/bits"

	"thermflow/internal/cfg"
	"thermflow/internal/dfa"
	"thermflow/internal/ir"
)

// Interval is a two's-complement integer range [Lo, Hi]. The zero value
// is "bottom" (no information: the value never flows here).
type Interval struct {
	Lo, Hi int64
	// Known distinguishes bottom (false) from a real interval.
	Known bool
}

// Full is the interval of all int64 values.
var Full = Interval{Lo: math.MinInt64, Hi: math.MaxInt64, Known: true}

// Of returns the interval [lo, hi].
func Of(lo, hi int64) Interval {
	if lo > hi {
		lo, hi = hi, lo
	}
	return Interval{Lo: lo, Hi: hi, Known: true}
}

// Point returns the singleton interval [x, x].
func Point(x int64) Interval { return Of(x, x) }

// String renders the interval.
func (iv Interval) String() string {
	if !iv.Known {
		return "⊥"
	}
	if iv == Full {
		return "⊤"
	}
	return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi)
}

// Contains reports whether x lies in the interval.
func (iv Interval) Contains(x int64) bool {
	return iv.Known && iv.Lo <= x && x <= iv.Hi
}

// widthStages are the widening thresholds: when an interval bound grows
// past a stage during a merge, it jumps to the next stage so that loop
// counters converge in a bounded number of fixpoint visits.
var widthStages = []int64{0, 1, 1 << 4, 1 << 8, 1 << 16, 1 << 31, math.MaxInt64}

func widenUp(x int64) int64 {
	for _, s := range widthStages {
		if x <= s {
			return s
		}
	}
	return math.MaxInt64
}

func widenDown(x int64) int64 {
	for _, s := range widthStages {
		if x >= -s {
			return -s
		}
	}
	return math.MinInt64
}

// hullWiden merges b into a, widening any bound that grows so the
// analysis terminates.
func hullWiden(a, b Interval) Interval {
	if !a.Known {
		return b
	}
	if !b.Known {
		return a
	}
	out := a
	if b.Lo < out.Lo {
		out.Lo = widenDown(b.Lo)
	}
	if b.Hi > out.Hi {
		out.Hi = widenUp(b.Hi)
	}
	return out
}

// Width returns the number of bits needed to represent every value of
// the interval in two's complement (at least 1, at most 64). Bottom
// intervals report 0.
func (iv Interval) Width() int {
	if !iv.Known {
		return 0
	}
	need := func(x int64) int {
		if x >= 0 {
			return bits.Len64(uint64(x)) + 1 // +1 sign bit
		}
		return bits.Len64(uint64(^x)) + 1
	}
	w := need(iv.Lo)
	if w2 := need(iv.Hi); w2 > w {
		w = w2
	}
	if iv.Lo >= 0 {
		// Entirely non-negative: the sign bit can be dropped for
		// unsigned storage, but keep at least one bit.
		w = bits.Len64(uint64(iv.Hi))
		if w == 0 {
			w = 1
		}
	}
	if w > 64 {
		w = 64
	}
	return w
}

// Result holds per-value intervals at function exit granularity plus
// block-boundary environments.
type Result struct {
	fn *ir.Function
	// Intervals is the final interval per value ID: the hull of the
	// value's interval over every block exit.
	Intervals []Interval
}

// Width returns the bitwidth of value v (0 if v never receives a
// value).
func (r *Result) Width(v *ir.Value) int { return r.Intervals[v.ID].Width() }

// Interval returns the final interval of value v.
func (r *Result) Interval(v *ir.Value) Interval { return r.Intervals[v.ID] }

// env is the data-flow fact: one interval per value ID.
type env []Interval

func (e env) clone() env {
	c := make(env, len(e))
	copy(c, e)
	return c
}

// Analyze runs the bitwidth analysis over g.
func Analyze(g *cfg.Graph) *Result {
	fn := g.Fn
	nv := fn.NumValues()
	spec := dfa.Spec[env]{
		Dir: dfa.Forward,
		Top: func() env { return make(env, nv) },
		Boundary: func() env {
			e := make(env, nv)
			for _, p := range fn.Params {
				e[p.ID] = Full // parameter values are unknown
			}
			return e
		},
		Meet: func(dst, src env) env {
			for i := range dst {
				dst[i] = hullWiden(dst[i], src[i])
			}
			return dst
		},
		Transfer: func(b *ir.Block, in env) env {
			out := in.clone()
			for _, instr := range b.Instrs {
				transfer(out, instr)
			}
			return out
		},
		Equal: func(a, b env) bool {
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
			return true
		},
	}
	res := dfa.Run(g, spec)
	final := make([]Interval, nv)
	for _, b := range fn.Blocks {
		if !g.Reachable(b) {
			continue
		}
		out := res.Out[b.Index]
		for i := range final {
			final[i] = hullWiden(final[i], out[i])
		}
	}
	return &Result{fn: fn, Intervals: final}
}

func transfer(e env, in *ir.Instr) {
	if in.Def == nil {
		return
	}
	get := func(i int) Interval {
		iv := e[in.Uses[i].ID]
		if !iv.Known {
			// Conservatively treat an unseen operand as unknown rather
			// than unreachable; non-SSA code may use before def on a
			// path the solver visits first.
			return Full
		}
		return iv
	}
	var out Interval
	switch in.Op {
	case ir.Const:
		out = Point(in.Imm)
	case ir.Mov:
		out = get(0)
	case ir.Add:
		out = addIv(get(0), get(1))
	case ir.Sub:
		out = addIv(get(0), negIv(get(1)))
	case ir.Mul:
		out = mulIv(get(0), get(1))
	case ir.Div:
		out = divIv(get(0), get(1))
	case ir.Rem:
		out = remIv(get(0), get(1))
	case ir.Neg:
		out = negIv(get(0))
	case ir.Not:
		a := get(0)
		out = Of(^a.Hi, ^a.Lo)
	case ir.And:
		out = andIv(get(0), get(1))
	case ir.Or, ir.Xor:
		out = orXorIv(get(0), get(1))
	case ir.Shl:
		out = shlIv(get(0), get(1))
	case ir.Shr:
		out = shrIv(get(0), get(1))
	case ir.CmpEQ, ir.CmpNE, ir.CmpLT, ir.CmpLE, ir.CmpGT, ir.CmpGE:
		out = Of(0, 1)
	case ir.Load:
		out = Full // memory contents are unknown
	default:
		out = Full
	}
	e[in.Def.ID] = out
}

func satAdd(a, b int64) int64 {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		if a > 0 {
			return math.MaxInt64
		}
		return math.MinInt64
	}
	return s
}

func addIv(a, b Interval) Interval {
	return Of(satAdd(a.Lo, b.Lo), satAdd(a.Hi, b.Hi))
}

func negIv(a Interval) Interval {
	lo, hi := -a.Hi, -a.Lo
	if a.Hi == math.MinInt64 {
		lo = math.MaxInt64
	}
	if a.Lo == math.MinInt64 {
		hi = math.MaxInt64
	}
	return Of(lo, hi)
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/b != a {
		if (a > 0) == (b > 0) {
			return math.MaxInt64
		}
		return math.MinInt64
	}
	return p
}

func mulIv(a, b Interval) Interval {
	c1 := satMul(a.Lo, b.Lo)
	c2 := satMul(a.Lo, b.Hi)
	c3 := satMul(a.Hi, b.Lo)
	c4 := satMul(a.Hi, b.Hi)
	lo, hi := c1, c1
	for _, c := range []int64{c2, c3, c4} {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	return Of(lo, hi)
}

func divIv(a, b Interval) Interval {
	if b.Contains(0) {
		// The interpreter defines x/0 = 0, so 0 enters the range; stay
		// conservative about the rest.
		return Full
	}
	c1 := a.Lo / b.Lo
	c2 := a.Lo / b.Hi
	c3 := a.Hi / b.Lo
	c4 := a.Hi / b.Hi
	lo, hi := c1, c1
	for _, c := range []int64{c2, c3, c4} {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	return Of(lo, hi)
}

func remIv(a, b Interval) Interval {
	if b.Contains(0) {
		return Full
	}
	m := b.Hi
	if -b.Lo > m {
		m = -b.Lo
	}
	if m == math.MinInt64 {
		return Full
	}
	if a.Lo >= 0 {
		return Of(0, m-1)
	}
	return Of(-(m - 1), m-1)
}

func andIv(a, b Interval) Interval {
	if a.Lo >= 0 && b.Lo >= 0 {
		hi := a.Hi
		if b.Hi < hi {
			hi = b.Hi
		}
		return Of(0, hi)
	}
	return Full
}

func orXorIv(a, b Interval) Interval {
	if a.Lo >= 0 && b.Lo >= 0 {
		// Result fits in the smallest power-of-two envelope covering
		// both operands.
		max := a.Hi | b.Hi
		if max < 0 {
			return Full
		}
		n := bits.Len64(uint64(max))
		if n >= 63 {
			return Of(0, math.MaxInt64)
		}
		return Of(0, int64(1)<<n-1)
	}
	return Full
}

func shlIv(a, b Interval) Interval {
	if a.Lo >= 0 && b.Lo >= 0 && b.Hi < 63 {
		hi := satMul(a.Hi, int64(1)<<uint(b.Hi))
		return Of(a.Lo<<uint(b.Lo), hi)
	}
	return Full
}

func shrIv(a, b Interval) Interval {
	if a.Lo >= 0 && b.Lo >= 0 {
		sh := b.Hi
		if sh > 63 {
			sh = 63
		}
		shLo := b.Lo
		if shLo > 63 {
			shLo = 63
		}
		return Of(a.Lo>>uint(sh), a.Hi>>uint(shLo))
	}
	return Full
}
