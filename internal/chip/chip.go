// Package chip extends the thermal data-flow analysis from the
// register file to a whole-processor floorplan — the long-term goal the
// paper's §5 states: "to develop comprehensive data flow thermal
// analyses and rules relating to all parts of the processor".
//
// The processor is modelled as a grid of thermal cells partitioned
// into units: the register file (whose cells carry the usual per-access
// energy through register placement), a fetch/decode front end that
// burns energy on every instruction, an ALU, a multiplier/divider and a
// load/store unit, each heated by the instruction classes they execute.
// The same Fig. 2 analysis then predicts the temperature field of the
// entire die.
package chip

import (
	"fmt"

	"thermflow/internal/floorplan"
	"thermflow/internal/ir"
	"thermflow/internal/power"
	"thermflow/internal/regalloc"
	"thermflow/internal/tdfa"
	"thermflow/internal/thermal"
)

// Unit is a named rectangular region of the chip grid.
type Unit struct {
	// Name identifies the unit ("RF", "ALU", ...).
	Name string
	// X, Y, W, H define the rectangle in grid cells.
	X, Y, W, H int
}

// cells returns the cell indices of the unit on a grid of width gw.
func (u Unit) cells(gw int) []int {
	out := make([]int, 0, u.W*u.H)
	for dy := 0; dy < u.H; dy++ {
		for dx := 0; dx < u.W; dx++ {
			out = append(out, (u.Y+dy)*gw+(u.X+dx))
		}
	}
	return out
}

// Layout is the processor floorplan: grid dimensions plus the unit
// rectangles. The register file must be large enough for the register
// count used by the allocation.
type Layout struct {
	// GridW, GridH are the chip grid dimensions in cells.
	GridW, GridH int
	// CellEdge is the thermal cell edge in metres.
	CellEdge float64
	// RF is the register-file region (registers are placed row-major
	// inside it).
	RF Unit
	// Fetch, ALU, Mul, LSU are the functional regions.
	Fetch, ALU, Mul, LSU Unit
}

// DefaultLayout returns a 16×12-cell die: fetch/decode across the top,
// the 8×8 register file centre-left, the load/store unit on the left
// edge, ALU and multiplier on the right.
func DefaultLayout() Layout {
	return Layout{
		GridW: 16, GridH: 12, CellEdge: 50e-6,
		Fetch: Unit{Name: "FETCH", X: 0, Y: 0, W: 16, H: 2},
		RF:    Unit{Name: "RF", X: 4, Y: 2, W: 8, H: 8},
		LSU:   Unit{Name: "LSU", X: 0, Y: 2, W: 4, H: 8},
		ALU:   Unit{Name: "ALU", X: 12, Y: 2, W: 4, H: 4},
		Mul:   Unit{Name: "MUL", X: 12, Y: 6, W: 4, H: 4},
	}
}

// Units lists the layout's units, RF first.
func (l Layout) Units() []Unit { return []Unit{l.RF, l.Fetch, l.LSU, l.ALU, l.Mul} }

// Validate checks the layout's rectangles stay on the grid and do not
// overlap.
func (l Layout) Validate() error {
	if l.GridW <= 0 || l.GridH <= 0 || l.CellEdge <= 0 {
		return fmt.Errorf("chip: invalid grid %dx%d edge %g", l.GridW, l.GridH, l.CellEdge)
	}
	owner := make([]string, l.GridW*l.GridH)
	for _, u := range l.Units() {
		if u.X < 0 || u.Y < 0 || u.X+u.W > l.GridW || u.Y+u.H > l.GridH {
			return fmt.Errorf("chip: unit %s out of grid", u.Name)
		}
		for _, c := range u.cells(l.GridW) {
			if owner[c] != "" {
				return fmt.Errorf("chip: units %s and %s overlap at cell %d", owner[c], u.Name, c)
			}
			owner[c] = u.Name
		}
	}
	return nil
}

// UnitEnergy holds per-instruction energies (J) for the non-RF units.
type UnitEnergy struct {
	// Fetch is charged for every instruction.
	Fetch float64
	// ALU is charged for integer/logic/compare instructions.
	ALU float64
	// Mul is charged for multiply/divide/remainder.
	Mul float64
	// LSU is charged for loads and stores.
	LSU float64
}

// DefaultUnitEnergy returns energies in proportion to typical embedded
// cores: multiplies an order pricier than adds, memory ops in between.
func DefaultUnitEnergy() UnitEnergy {
	return UnitEnergy{
		Fetch: 2e-12,
		ALU:   3e-12,
		Mul:   15e-12,
		LSU:   6e-12,
	}
}

// Model couples a layout with the floorplan/deposit machinery the
// analysis needs.
type Model struct {
	// Layout is the chip geometry.
	Layout Layout
	// Energy is the per-unit instruction energy.
	Energy UnitEnergy
	// FP is the chip-wide floorplan with the registers embedded in the
	// RF region.
	FP *floorplan.Floorplan

	fetchCells, aluCells, mulCells, lsuCells []int
}

// NewModel builds the chip model for a given register count.
func NewModel(layout Layout, energy UnitEnergy, numRegs int) (*Model, error) {
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	if numRegs > layout.RF.W*layout.RF.H {
		return nil, fmt.Errorf("chip: %d registers exceed RF region %dx%d",
			numRegs, layout.RF.W, layout.RF.H)
	}
	regCells := make([]int, numRegs)
	rfCells := layout.RF.cells(layout.GridW)
	copy(regCells, rfCells[:numRegs])
	fp, err := floorplan.NewCustom(layout.GridW, layout.GridH, layout.CellEdge, regCells)
	if err != nil {
		return nil, err
	}
	return &Model{
		Layout:     layout,
		Energy:     energy,
		FP:         fp,
		fetchCells: layout.Fetch.cells(layout.GridW),
		aluCells:   layout.ALU.cells(layout.GridW),
		mulCells:   layout.Mul.cells(layout.GridW),
		lsuCells:   layout.LSU.cells(layout.GridW),
	}, nil
}

// deposit spreads e joules uniformly over the given cells.
func deposit(e float64, cells []int, energy []float64) {
	if len(cells) == 0 {
		return
	}
	per := e / float64(len(cells))
	for _, c := range cells {
		energy[c] += per
	}
}

// Deposit implements the tdfa.Config.ExtraDeposit hook: unit energy
// for one instruction.
func (m *Model) Deposit(in *ir.Instr, energy []float64) {
	deposit(m.Energy.Fetch, m.fetchCells, energy)
	switch {
	case in.Op == ir.Mul || in.Op == ir.Div || in.Op == ir.Rem:
		deposit(m.Energy.Mul, m.mulCells, energy)
	case in.Op.IsMemory():
		deposit(m.Energy.LSU, m.lsuCells, energy)
	case in.Op == ir.Br || in.Op == ir.CondBr || in.Op == ir.Ret || in.Op == ir.Nop:
		// control flow burns only fetch energy
	default:
		deposit(m.Energy.ALU, m.aluCells, energy)
	}
}

// Analyze runs the whole-chip thermal data-flow analysis over an
// allocated function. The allocation's registers are re-placed into
// the chip's RF region; everything else follows tdfa.Analyze.
func Analyze(alloc *regalloc.Allocation, m *Model, tech power.Tech, cfg tdfa.Config) (*tdfa.Result, error) {
	if alloc.FP.NumRegs > m.FP.NumRegs {
		return nil, fmt.Errorf("chip: allocation uses %d registers, model has %d",
			alloc.FP.NumRegs, m.FP.NumRegs)
	}
	chipAlloc := *alloc
	chipAlloc.FP = m.FP
	cfg.Tech = tech
	cfg.FP = m.FP
	cfg.Alloc = &chipAlloc
	cfg.ExtraDeposit = m.Deposit
	return tdfa.Analyze(alloc.Fn, cfg)
}

// UnitPeak returns the peak predicted temperature within a unit.
func (m *Model) UnitPeak(res *tdfa.Result, u Unit) float64 {
	peak := 0.0
	for _, c := range u.cells(m.Layout.GridW) {
		if res.Peak[c] > peak {
			peak = res.Peak[c]
		}
	}
	return peak
}

// UnitMean returns the mean predicted temperature within a unit.
func (m *Model) UnitMean(res *tdfa.Result, u Unit) float64 {
	cells := u.cells(m.Layout.GridW)
	sum := 0.0
	for _, c := range cells {
		sum += res.Mean[c]
	}
	return sum / float64(len(cells))
}

// State returns a thermal.State helper view (identity; documents the
// size contract: chip-grid cells).
func (m *Model) State(res *tdfa.Result) thermal.State { return res.Peak }
