package chip

import (
	"testing"

	"thermflow/internal/ir"
	"thermflow/internal/power"
	"thermflow/internal/regalloc"
	"thermflow/internal/tdfa"
	"thermflow/internal/workload"
)

func TestDefaultLayoutValid(t *testing.T) {
	l := DefaultLayout()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// RF holds 64 registers.
	if l.RF.W*l.RF.H < 64 {
		t.Errorf("RF region %dx%d too small", l.RF.W, l.RF.H)
	}
}

func TestLayoutValidation(t *testing.T) {
	l := DefaultLayout()
	l.ALU.X = 15 // pushes ALU off-grid
	if err := l.Validate(); err == nil {
		t.Error("off-grid unit accepted")
	}
	l2 := DefaultLayout()
	l2.Mul.Y = 2 // overlaps ALU
	if err := l2.Validate(); err == nil {
		t.Error("overlapping units accepted")
	}
	l3 := DefaultLayout()
	l3.GridW = 0
	if err := l3.Validate(); err == nil {
		t.Error("empty grid accepted")
	}
}

func TestNewModelErrors(t *testing.T) {
	if _, err := NewModel(DefaultLayout(), DefaultUnitEnergy(), 65); err == nil {
		t.Error("too many registers accepted")
	}
	bad := DefaultLayout()
	bad.GridH = 1
	if _, err := NewModel(bad, DefaultUnitEnergy(), 64); err == nil {
		t.Error("invalid layout accepted")
	}
}

func analyzeKernel(t *testing.T, name string) (*Model, *tdfa.Result) {
	t.Helper()
	k, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := regalloc.Allocate(k.Fn, regalloc.Config{NumRegs: 64, Policy: regalloc.FirstFree})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(DefaultLayout(), DefaultUnitEnergy(), 64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(alloc, m, power.Default65nm(), tdfa.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return m, res
}

func TestChipAnalysisHeatsUnits(t *testing.T) {
	m, res := analyzeKernel(t, "fir")
	if !res.Converged {
		t.Fatal("chip analysis did not converge")
	}
	amb := power.Default65nm().TAmbient
	l := m.Layout
	for _, u := range []Unit{l.RF, l.Fetch, l.ALU, l.Mul, l.LSU} {
		if m.UnitPeak(res, u) <= amb {
			t.Errorf("unit %s not heated: %g", u.Name, m.UnitPeak(res, u))
		}
	}
	// The state covers the whole chip grid.
	if len(res.Peak) != l.GridW*l.GridH {
		t.Errorf("state size %d, want %d", len(res.Peak), l.GridW*l.GridH)
	}
}

func TestMulHeavyKernelHeatsMulUnit(t *testing.T) {
	// FIR multiplies every sample; checksum's only multiply shares the
	// loop with shifts/xors. Compare the MUL unit's rise relative to
	// the ALU's between a mul-heavy and an alu-heavy kernel.
	mFir, rFir := analyzeKernel(t, "fir")
	mChk, rChk := analyzeKernel(t, "checksum")
	amb := power.Default65nm().TAmbient

	ratio := func(m *Model, r *tdfa.Result) float64 {
		mul := m.UnitMean(r, m.Layout.Mul) - amb
		alu := m.UnitMean(r, m.Layout.ALU) - amb
		if alu <= 0 {
			return 0
		}
		return mul / alu
	}
	if ratio(mFir, rFir) <= ratio(mChk, rChk) {
		t.Errorf("mul/alu heat ratio: fir %g, checksum %g; expected fir higher",
			ratio(mFir, rFir), ratio(mChk, rChk))
	}
}

func TestMemHeavyKernelHeatsLSU(t *testing.T) {
	mDot, rDot := analyzeKernel(t, "dot") // two loads per element
	mFib, rFib := analyzeKernel(t, "fib") // no memory traffic
	amb := power.Default65nm().TAmbient
	lsuDot := mDot.UnitMean(rDot, mDot.Layout.LSU) - amb
	lsuFib := mFib.UnitMean(rFib, mFib.Layout.LSU) - amb
	if lsuDot <= lsuFib {
		t.Errorf("LSU rise: dot %g K, fib %g K; expected dot higher", lsuDot, lsuFib)
	}
}

func TestRegisterPlacementInsideRF(t *testing.T) {
	m, err := NewModel(DefaultLayout(), DefaultUnitEnergy(), 64)
	if err != nil {
		t.Fatal(err)
	}
	l := m.Layout
	for r := 0; r < 64; r++ {
		c := m.FP.CellOf(r)
		x, y := m.FP.XY(c)
		if x < l.RF.X || x >= l.RF.X+l.RF.W || y < l.RF.Y || y >= l.RF.Y+l.RF.H {
			t.Fatalf("register %d placed outside the RF region at (%d,%d)", r, x, y)
		}
	}
}

func TestDepositClasses(t *testing.T) {
	m, err := NewModel(DefaultLayout(), DefaultUnitEnergy(), 64)
	if err != nil {
		t.Fatal(err)
	}
	f := ir.NewFunc("f")
	blk := f.NewBlock("entry")
	b := ir.NewBuilder(f, blk)
	x := b.Const(1)
	y := b.Mul(x, x)
	z := b.Load(x, 0)
	b.Store(z, x, 0)
	b.RetVal(y)

	sum := func(cells []int, energy []float64) float64 {
		total := 0.0
		for _, c := range cells {
			total += energy[c]
		}
		return total
	}
	n := m.Layout.GridW * m.Layout.GridH

	// Mul heats MUL (+fetch), not ALU.
	e := make([]float64, n)
	m.Deposit(blk.Instrs[1], e)
	if sum(m.mulCells, e) <= 0 || sum(m.aluCells, e) != 0 {
		t.Error("mul deposit wrong")
	}
	// Load heats LSU.
	e = make([]float64, n)
	m.Deposit(blk.Instrs[2], e)
	if sum(m.lsuCells, e) <= 0 || sum(m.mulCells, e) != 0 {
		t.Error("load deposit wrong")
	}
	// Ret burns fetch only.
	e = make([]float64, n)
	m.Deposit(blk.Instrs[4], e)
	if sum(m.fetchCells, e) <= 0 || sum(m.aluCells, e) != 0 || sum(m.lsuCells, e) != 0 {
		t.Error("ret deposit wrong")
	}
	// Const is an ALU-class op.
	e = make([]float64, n)
	m.Deposit(blk.Instrs[0], e)
	if sum(m.aluCells, e) <= 0 {
		t.Error("const deposit wrong")
	}
}
