// Package telemetry is a hand-rolled, dependency-free metrics layer
// exposing the Prometheus text exposition format (version 0.0.4): the
// observability backbone of thermflowd and thermflowgate's GET /metrics
// endpoints. It implements the three instrument shapes the serving
// plane needs — monotone counters, gauges, and cumulative-bucket
// histograms, each in plain and labeled ("vec") form — plus
// collect-time callbacks for state that already has an authoritative
// owner (the job registry's occupancy, the gateway's per-backend
// health), so scraping reads live state instead of shadow copies.
//
// Everything is safe for concurrent use: counter, gauge and histogram
// cells are lock-free atomics on the hot path; vec child interning and
// the registry itself take short mutexes off the hot path. Values are
// float64 throughout, like Prometheus itself. All instrument value
// methods are nil-receiver-safe, so partially wired components (a
// server constructed without metrics in tests) need no guards.
//
// Cardinality discipline is the caller's contract: label values must
// come from bounded sets (route patterns, status codes, tier names,
// configured backend URLs — never raw paths, job IDs or client
// addresses). See ARCHITECTURE.md "Observability" for the budget.
package telemetry

import (
	"bytes"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency histogram bounds in seconds,
// spanning sub-millisecond cache hits to multi-second cold batch
// streams.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Type is a metric's exposition type.
type Type string

// Exposition types.
const (
	TypeCounter   Type = "counter"
	TypeGauge     Type = "gauge"
	TypeHistogram Type = "histogram"
)

// Sample is one collect-time measurement: label values aligned with
// the metric's declared label names, and the value.
type Sample struct {
	Labels []string
	Value  float64
}

// metric is anything the registry can render.
type metric interface {
	metricName() string
	write(b *bytes.Buffer)
}

// Registry holds a process's metrics and renders them. The zero value
// is not usable; construct with NewRegistry. A nil *Registry is safe:
// every constructor returns a nil instrument whose methods no-op.
type Registry struct {
	mu      sync.Mutex
	names   map[string]bool
	metrics []metric // registration order = exposition order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// register files a metric under its name, panicking on duplicates and
// invalid names — both are programmer errors caught at wiring time,
// never under traffic.
func (r *Registry) register(m metric) {
	name := m.metricName()
	mustValidName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
	r.names[name] = true
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a monotone counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{name: name, help: help, v: new(atomicFloat)}
	r.register(c)
	return c
}

// CounterVec registers and returns a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	v := &CounterVec{desc: newDesc(name, help, TypeCounter, labels)}
	r.register(v)
	return v
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{name: name, help: help, v: new(atomicFloat)}
	r.register(g)
	return g
}

// GaugeVec registers and returns a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	v := &GaugeVec{desc: newDesc(name, help, TypeGauge, labels)}
	r.register(v)
	return v
}

// Histogram registers and returns a histogram with the given bucket
// upper bounds (nil selects DefBuckets; bounds are sorted and
// deduplicated; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	h := &Histogram{name: name, help: help, cell: newHistCell(normBuckets(buckets))}
	r.register(h)
	return h
}

// HistogramVec registers and returns a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	v := &HistogramVec{desc: newDesc(name, help, TypeHistogram, labels),
		buckets: normBuckets(buckets)}
	r.register(v)
	return v
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.Collect(name, help, TypeGauge, nil, func() []Sample {
		return []Sample{{Value: fn()}}
	})
}

// Collect registers a metric family whose samples are produced by fn
// at scrape time — for state that already has an authoritative owner
// (a registry's Stats, a gateway's backend table). fn must return
// samples whose Labels align with labels; it runs under the scrape and
// must be fast and safe for concurrent use.
func (r *Registry) Collect(name, help string, typ Type, labels []string, fn func() []Sample) {
	if r == nil {
		return
	}
	r.register(&collector{desc: newDesc(name, help, typ, labels), fn: fn})
}

// Render writes the full exposition to b.
func (r *Registry) Render(b *bytes.Buffer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	metrics := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range metrics {
		m.write(b)
	}
}

// ContentType is the exposition content type for HTTP responses.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// ServeHTTP renders the registry — mount it at GET /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	var b bytes.Buffer
	r.Render(&b)
	w.Header().Set("Content-Type", ContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b.Bytes())
}

// desc is a labeled metric family's static exposition header.
type desc struct {
	name, help string
	typ        Type
	labels     []string
}

func newDesc(name, help string, typ Type, labels []string) desc {
	for _, l := range labels {
		mustValidLabel(l)
	}
	return desc{name: name, help: help, typ: typ, labels: labels}
}

func writeHeader(b *bytes.Buffer, name, help string, typ Type) {
	if help != "" {
		b.WriteString("# HELP ")
		b.WriteString(name)
		b.WriteByte(' ')
		writeEscapedHelp(b, help)
		b.WriteByte('\n')
	}
	b.WriteString("# TYPE ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(string(typ))
	b.WriteByte('\n')
}

// writeSample emits one "name{labels} value" line. extraName/extraVal
// append one more label pair (histograms' le); both empty to skip.
func writeSample(b *bytes.Buffer, name string, labels, values []string, extraName, extraVal string, v float64) {
	b.WriteString(name)
	if len(labels) > 0 || extraName != "" {
		b.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(l)
			b.WriteString(`="`)
			writeEscapedLabel(b, values[i])
			b.WriteByte('"')
		}
		if extraName != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(extraName)
			b.WriteString(`="`)
			writeEscapedLabel(b, extraVal)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// atomicFloat is a float64 with atomic add/set via bit-casting.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(d float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) set(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// Counter is a monotone counter — either standalone or a view onto one
// CounterVec cell. All methods are nil-safe.
type Counter struct {
	name, help string
	v          *atomicFloat
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increments by d (negative deltas are dropped — counters only go
// up).
func (c *Counter) Add(d float64) {
	if c == nil || d < 0 {
		return
	}
	c.v.add(d)
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return c.v.load()
}

func (c *Counter) metricName() string { return c.name }

func (c *Counter) write(b *bytes.Buffer) {
	writeHeader(b, c.name, c.help, TypeCounter)
	writeSample(b, c.name, nil, nil, "", "", c.v.load())
}

// Gauge is a value that can go up and down — either standalone or a
// view onto one GaugeVec cell. All methods are nil-safe.
type Gauge struct {
	name, help string
	v          *atomicFloat
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.set(v)
}

// Add increments by d (may be negative).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	g.v.add(d)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v.load()
}

func (g *Gauge) metricName() string { return g.name }

func (g *Gauge) write(b *bytes.Buffer) {
	writeHeader(b, g.name, g.help, TypeGauge)
	writeSample(b, g.name, nil, nil, "", "", g.v.load())
}

// histCell is one histogram series' storage: per-bucket (non-
// cumulative) counts rendered cumulatively, plus total count and sum.
type histCell struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	count  atomic.Uint64
	sum    atomicFloat
}

func normBuckets(buckets []float64) []float64 {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	out := append([]float64(nil), buckets...)
	sort.Float64s(out)
	dedup := out[:0]
	for i, v := range out {
		if math.IsNaN(v) {
			panic("telemetry: NaN histogram bound")
		}
		if i > 0 && v == out[i-1] {
			continue
		}
		dedup = append(dedup, v)
	}
	// An explicit +Inf bound is already the implicit overflow cell.
	if n := len(dedup); n > 0 && math.IsInf(dedup[n-1], 1) {
		dedup = dedup[:n-1]
	}
	return dedup
}

func newHistCell(bounds []float64) *histCell {
	return &histCell{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

func (h *histCell) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

func (h *histCell) write(b *bytes.Buffer, name string, labels, values []string) {
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeSample(b, name+"_bucket", labels, values, "le", formatValue(bound), float64(cum))
	}
	cum += h.counts[len(h.bounds)].Load()
	writeSample(b, name+"_bucket", labels, values, "le", "+Inf", float64(cum))
	writeSample(b, name+"_sum", labels, values, "", "", h.sum.load())
	writeSample(b, name+"_count", labels, values, "", "", float64(h.count.Load()))
}

// Histogram observes a value distribution into cumulative buckets —
// either standalone or a view onto one HistogramVec cell. All methods
// are nil-safe.
type Histogram struct {
	name, help string
	cell       *histCell
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.cell.observe(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.cell.count.Load()
}

func (h *Histogram) metricName() string { return h.name }

func (h *Histogram) write(b *bytes.Buffer) {
	writeHeader(b, h.name, h.help, TypeHistogram)
	h.cell.write(b, h.name, nil, nil)
}

// vec is the shared child table of the labeled families.
type vec struct {
	mu       sync.Mutex
	keys     []string // insertion order, for stable exposition
	children map[string]*child
}

type child struct {
	values []string
	val    *atomicFloat
	hist   *histCell
}

// childFor interns the child for the given label values. newHist is
// non-nil for histogram vecs.
func (v *vec) childFor(d desc, values []string, newHist func() *histCell) *child {
	if len(values) != len(d.labels) {
		panic(fmt.Sprintf("telemetry: %s: %d label values for %d labels",
			d.name, len(values), len(d.labels)))
	}
	key := joinKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.children == nil {
		v.children = make(map[string]*child)
	}
	c, ok := v.children[key]
	if !ok {
		c = &child{values: append([]string(nil), values...)}
		if newHist != nil {
			c.hist = newHist()
		} else {
			c.val = new(atomicFloat)
		}
		v.children[key] = c
		v.keys = append(v.keys, key)
	}
	return c
}

func (v *vec) snapshot() []*child {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]*child, 0, len(v.keys))
	for _, k := range v.keys {
		out = append(out, v.children[k])
	}
	return out
}

// joinKey builds the child map key; the 0xFF separator cannot appear
// inside UTF-8 label values, so keys cannot collide.
func joinKey(values []string) string {
	var b bytes.Buffer
	for i, v := range values {
		if i > 0 {
			b.WriteByte(0xFF)
		}
		b.WriteString(v)
	}
	return b.String()
}

// CounterVec is a family of counters split by label values.
type CounterVec struct {
	desc desc
	vec  vec
}

// With returns the counter cell for the given label values, creating
// it on first use. Nil-safe: a nil vec returns a nil (no-op) counter.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	c := v.vec.childFor(v.desc, values, nil)
	return &Counter{name: v.desc.name, v: c.val}
}

func (v *CounterVec) metricName() string { return v.desc.name }

func (v *CounterVec) write(b *bytes.Buffer) {
	writeHeader(b, v.desc.name, v.desc.help, v.desc.typ)
	for _, c := range v.vec.snapshot() {
		writeSample(b, v.desc.name, v.desc.labels, c.values, "", "", c.val.load())
	}
}

// GaugeVec is a family of gauges split by label values.
type GaugeVec struct {
	desc desc
	vec  vec
}

// With returns the gauge cell for the given label values, creating it
// on first use. Nil-safe.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	c := v.vec.childFor(v.desc, values, nil)
	return &Gauge{name: v.desc.name, v: c.val}
}

func (v *GaugeVec) metricName() string { return v.desc.name }

func (v *GaugeVec) write(b *bytes.Buffer) {
	writeHeader(b, v.desc.name, v.desc.help, v.desc.typ)
	for _, c := range v.vec.snapshot() {
		writeSample(b, v.desc.name, v.desc.labels, c.values, "", "", c.val.load())
	}
}

// HistogramVec is a family of histograms split by label values.
type HistogramVec struct {
	desc    desc
	buckets []float64
	vec     vec
}

// With returns the histogram cell for the given label values, creating
// it on first use. Nil-safe.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	c := v.vec.childFor(v.desc, values, func() *histCell { return newHistCell(v.buckets) })
	return &Histogram{name: v.desc.name, cell: c.hist}
}

func (v *HistogramVec) metricName() string { return v.desc.name }

func (v *HistogramVec) write(b *bytes.Buffer) {
	writeHeader(b, v.desc.name, v.desc.help, v.desc.typ)
	for _, c := range v.vec.snapshot() {
		c.hist.write(b, v.desc.name, v.desc.labels, c.values)
	}
}

// collector renders callback-produced samples.
type collector struct {
	desc desc
	fn   func() []Sample
}

func (c *collector) metricName() string { return c.desc.name }

func (c *collector) write(b *bytes.Buffer) {
	writeHeader(b, c.desc.name, c.desc.help, c.desc.typ)
	for _, s := range c.fn() {
		if len(s.Labels) != len(c.desc.labels) {
			continue // misaligned sample: drop rather than emit garbage
		}
		writeSample(b, c.desc.name, c.desc.labels, s.Labels, "", "", s.Value)
	}
}

// writeEscapedLabel escapes a label value per the exposition format.
func writeEscapedLabel(b *bytes.Buffer, s string) {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
}

// writeEscapedHelp escapes a HELP string (backslash and newline only).
func writeEscapedHelp(b *bytes.Buffer, s string) {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
}

func mustValidName(name string) {
	if !validName(name, true) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
}

func mustValidLabel(name string) {
	if !validName(name, false) {
		panic(fmt.Sprintf("telemetry: invalid label name %q", name))
	}
}

// validName checks [a-zA-Z_:][a-zA-Z0-9_:]* (colons for metrics only).
func validName(s string, colons bool) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(colons && c == ':') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
