package telemetry

import (
	"bytes"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func render(r *Registry) string {
	var b bytes.Buffer
	r.Render(&b)
	return b.String()
}

func TestCounterAndGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests handled.")
	g := r.Gauge("test_temperature", "Current temperature.")

	c.Inc()
	c.Add(2)
	c.Add(-5) // dropped: counters are monotone
	g.Set(36.5)
	g.Add(1.5)
	g.Dec()

	out := render(r)
	for _, want := range []string{
		"# HELP test_requests_total Requests handled.\n",
		"# TYPE test_requests_total counter\n",
		"test_requests_total 3\n",
		"# TYPE test_temperature gauge\n",
		"test_temperature 37\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if c.Value() != 3 {
		t.Errorf("counter value = %v, want 3", c.Value())
	}
}

func TestVecChildrenShareStorage(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_hits_total", "", "tier")

	// Two With calls for the same labels must hit the same cell.
	v.With("memory").Inc()
	v.With("memory").Add(2)
	v.With("disk").Inc()

	if got := v.With("memory").Value(); got != 3 {
		t.Errorf("memory cell = %v, want 3", got)
	}
	out := render(r)
	if !strings.Contains(out, `test_hits_total{tier="memory"} 3`) {
		t.Errorf("missing memory sample:\n%s", out)
	}
	if !strings.Contains(out, `test_hits_total{tier="disk"} 1`) {
		t.Errorf("missing disk sample:\n%s", out)
	}
}

func TestGaugeVec(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("test_backend_up", "", "backend")
	v.With("http://a:8080").Set(1)
	v.With("http://b:8080").Set(0)
	out := render(r)
	if !strings.Contains(out, `test_backend_up{backend="http://a:8080"} 1`) {
		t.Errorf("missing sample:\n%s", out)
	}
	if !strings.Contains(out, `test_backend_up{backend="http://b:8080"} 0`) {
		t.Errorf("missing sample:\n%s", out)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "Latency.", []float64{0.01, 0.1, 1})

	for _, v := range []float64{0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}

	out := render(r)
	for _, want := range []string{
		"# TYPE test_seconds histogram\n",
		`test_seconds_bucket{le="0.01"} 2`,
		`test_seconds_bucket{le="0.1"} 3`,
		`test_seconds_bucket{le="1"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		"test_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Sum: 0.005+0.005+0.05+0.5+5 = 5.56
	if !strings.Contains(out, "test_seconds_sum 5.56") {
		t.Errorf("bad sum:\n%s", out)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
}

func TestHistogramObserveOnBoundary(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_boundary_seconds", "", []float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	out := render(r)
	if !strings.Contains(out, `test_boundary_seconds_bucket{le="1"} 1`) {
		t.Errorf("boundary observation not in le=1 bucket:\n%s", out)
	}
}

func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("test_solver_seconds", "", []float64{0.1, 1}, "solver")
	v.With("dense").Observe(0.05)
	v.With("dense").Observe(0.5)
	v.With("sparse").Observe(0.05)
	out := render(r)
	for _, want := range []string{
		`test_solver_seconds_bucket{solver="dense",le="0.1"} 1`,
		`test_solver_seconds_bucket{solver="dense",le="+Inf"} 2`,
		`test_solver_seconds_count{solver="dense"} 2`,
		`test_solver_seconds_count{solver="sparse"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestBucketNormalization(t *testing.T) {
	r := NewRegistry()
	// Unsorted, duplicated, explicit +Inf: all normalized away.
	h := r.Histogram("test_norm_seconds", "", []float64{1, 0.1, 1, math.Inf(1)})
	h.Observe(0.5)
	out := render(r)
	if strings.Count(out, `le="1"`) != 1 {
		t.Errorf("duplicate bounds survived:\n%s", out)
	}
	if strings.Count(out, `le="+Inf"`) != 1 {
		t.Errorf("want exactly one +Inf bucket:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_escapes_total", "", "path")
	v.With("a\"b\\c\nd").Inc()
	out := render(r)
	want := `test_escapes_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(out, want) {
		t.Errorf("escaping wrong, want %q in:\n%s", want, out)
	}
}

func TestCollectAndGaugeFunc(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("test_live", "Live value.", func() float64 { return 42 })
	r.Collect("test_states", "Per-state.", TypeGauge, []string{"state"}, func() []Sample {
		return []Sample{
			{Labels: []string{"queued"}, Value: 3},
			{Labels: []string{"running"}, Value: 1},
			{Labels: []string{"bad", "extra"}, Value: 9}, // misaligned: dropped
		}
	})
	out := render(r)
	for _, want := range []string{
		"test_live 42\n",
		`test_states{state="queued"} 3`,
		`test_states{state="running"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "extra") {
		t.Errorf("misaligned sample leaked:\n%s", out)
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_dup_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("test_dup_total", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9starts_with_digit", "has-dash", "has space"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_seconds", "", nil)
	cv := r.CounterVec("xv_total", "", "l")
	gv := r.GaugeVec("xv", "", "l")
	hv := r.HistogramVec("xv_seconds", "", nil, "l")
	r.GaugeFunc("xf", "", func() float64 { return 1 })

	// None of these may panic.
	c.Inc()
	c.Add(2)
	g.Set(1)
	g.Inc()
	h.Observe(1)
	cv.With("a").Inc()
	gv.With("a").Set(1)
	hv.With("a").Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil instruments must read zero")
	}
	if out := render(r); out != "" {
		t.Errorf("nil registry rendered %q", out)
	}
}

func TestServeHTTP(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_http_total", "Help.").Inc()
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "test_http_total 1") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_conc_total", "")
	v := r.CounterVec("test_conc_vec_total", "", "k")
	h := r.HistogramVec("test_conc_seconds", "", nil, "k")

	const goroutines, each = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i%2)
			for j := 0; j < each; j++ {
				c.Inc()
				v.With(key).Inc()
				h.With(key).Observe(float64(j) / each)
				if j%100 == 0 {
					_ = render(r) // scrape under load
				}
			}
		}(i)
	}
	wg.Wait()

	if got := c.Value(); got != goroutines*each {
		t.Errorf("counter = %v, want %d", got, goroutines*each)
	}
	total := v.With("k0").Value() + v.With("k1").Value()
	if total != goroutines*each {
		t.Errorf("vec total = %v, want %d", total, goroutines*each)
	}
}
