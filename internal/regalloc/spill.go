package regalloc

import (
	"fmt"
	"strings"

	"thermflow/internal/ir"
)

// SpillAreaBase is the flat-memory address where spill slots live, far
// above the data the workload kernels touch.
const SpillAreaBase = 1 << 40

// spillSlotSize is the byte size of one spill slot.
const spillSlotSize = 8

// isSpillTemp recognizes the short-lived temporaries spilling
// introduces: <v>.r (reload), <v>.w (writeback) and <v>.a (slot
// address, rematerialized at every access so no long-lived base
// register is needed). Re-spilling them cannot reduce pressure — their
// live ranges are already minimal — and doing so livelocks the
// allocator, so candidate selection avoids them.
func isSpillTemp(name string) bool {
	// Strip a trailing ".<digits>" uniquifier added by NewValue when
	// the same variable is accessed many times.
	if i := strings.LastIndexByte(name, '.'); i >= 0 && i < len(name)-1 {
		digits := true
		for _, ch := range name[i+1:] {
			if ch < '0' || ch > '9' {
				digits = false
				break
			}
		}
		if digits {
			name = name[:i]
		}
	}
	return strings.HasSuffix(name, ".r") || strings.HasSuffix(name, ".w") ||
		strings.HasSuffix(name, ".a")
}

// isSpillBase reports whether the value is a rematerialized slot
// address temp (kept for call-site symmetry; there are no long-lived
// bases in this scheme).
func isSpillBase(name string) bool {
	return isSpillTemp(name) && !strings.HasSuffix(name, ".r") && !strings.HasSuffix(name, ".w")
}

// spillSlotAddr returns a fresh slot address for one more spilled
// variable: one slot past the highest spill address already
// materialized (only spill addresses live at or above SpillAreaBase).
func spillSlotAddr(fn *ir.Function) int64 {
	max := int64(SpillAreaBase - spillSlotSize)
	fn.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		if in.Op == ir.Const && in.Imm >= SpillAreaBase && in.Imm > max {
			max = in.Imm
		}
	})
	return max + spillSlotSize
}

// SpillNamed rewrites fn in place so the named value lives in memory
// (the thermal-aware "spill critical variables to memory" transform of
// the paper's §4). It returns the numbers of loads and stores inserted.
// Callers wanting to preserve the original function must Clone first.
func SpillNamed(fn *ir.Function, name string) (loads, stores int, err error) {
	v := fn.ValueNamed(name)
	if v == nil {
		return 0, 0, fmt.Errorf("regalloc: no value named %q", name)
	}
	if isSpillTemp(name) {
		return 0, 0, fmt.Errorf("regalloc: refusing to re-spill spill temporary %s", name)
	}
	loads, stores = spillValue(fn, v)
	fn.Renumber()
	if err := ir.Verify(fn); err != nil {
		return loads, stores, fmt.Errorf("regalloc: spill of %s broke the IR: %w", name, err)
	}
	return loads, stores, nil
}

// spillValue rewrites fn so that value v lives in memory. Every access
// rematerializes the slot address into a fresh temporary (<v>.a) so no
// base register stays live: uses become `a = const slot; t = load a`
// and definitions are renamed and stored back through a fresh address
// temp. All introduced values have two-instruction live ranges, so
// spilling strictly reduces register pressure. Returns the numbers of
// loads and stores inserted.
func spillValue(fn *ir.Function, v *ir.Value) (loads, stores int) {
	slot := spillSlotAddr(fn)

	newAddr := func() *ir.Value {
		a := fn.NewValue(v.Name + ".a")
		return a
	}
	constInstr := func(a *ir.Value) *ir.Instr {
		in, err := ir.NewInstr(ir.Const, a, nil, slot)
		if err != nil {
			panic(err) // statically well-formed
		}
		return in
	}

	// A spilled parameter holds its value on entry: materialize it into
	// the slot at the top of the entry block.
	if v.Param {
		a := newAddr()
		st, err := ir.NewInstr(ir.Store, nil, []*ir.Value{v, a}, 0)
		if err != nil {
			panic(err)
		}
		fn.Entry.InsertAt(0, constInstr(a))
		fn.Entry.InsertAt(1, st)
		stores++
	}

	for _, b := range fn.Blocks {
		start := 0
		if v.Param && b == fn.Entry {
			start = 2 // skip the address const and the param store
		}
		for i := start; i < len(b.Instrs); i++ {
			in := b.Instrs[i]
			usesV := false
			for _, u := range in.Uses {
				if u == v {
					usesV = true
					break
				}
			}
			if usesV {
				a := newAddr()
				tmp := fn.NewValue(v.Name + ".r")
				ld, err := ir.NewInstr(ir.Load, tmp, []*ir.Value{a}, 0)
				if err != nil {
					panic(err)
				}
				b.InsertAt(i, constInstr(a))
				b.InsertAt(i+1, ld)
				i += 2 // the using instruction moved two slots down
				in.ReplaceUse(v, tmp)
				loads++
			}
			if in.Def == v {
				a := newAddr()
				tmp := fn.NewValue(v.Name + ".w")
				in.Def = tmp
				st, err := ir.NewInstr(ir.Store, nil, []*ir.Value{tmp, a}, 0)
				if err != nil {
					panic(err)
				}
				b.InsertAt(i+1, constInstr(a))
				b.InsertAt(i+2, st)
				i += 2 // skip the const and store we just inserted
				stores++
			}
		}
	}
	return loads, stores
}
