package regalloc

import (
	"errors"
	"fmt"
	"sort"

	"thermflow/internal/analysis"
	"thermflow/internal/cfg"
	"thermflow/internal/floorplan"
	"thermflow/internal/interference"
	"thermflow/internal/ir"
)

// Config parameterizes an allocation run.
type Config struct {
	// NumRegs is the number of physical registers (K).
	NumRegs int
	// Policy selects the assignment strategy.
	Policy Policy
	// FP is the register-file floorplan; required by the
	// floorplan-aware policies (Chessboard, Coldest, SpreadMax). When
	// nil, floorplan.Default() is used.
	FP *floorplan.Floorplan
	// Seed drives the Random policy.
	Seed int64
	// HeatSeed optionally provides per-register heat estimates (e.g.
	// from a previous thermal analysis) consumed by the Coldest policy.
	HeatSeed []float64
	// DefaultTrip overrides the assumed loop trip count for frequency
	// estimation (0 = cfg.DefaultTrip).
	DefaultTrip int
	// MaxSpillRounds bounds the spill-and-retry iterations (0 = 16).
	MaxSpillRounds int
	// SpillBudget caps how large the spill-rewritten program may grow,
	// in instructions (0 = 32× the input size + 256). Each spill round
	// can grow the program multiplicatively — every access of a spilled
	// value gains an address const plus a load or store — so on
	// infeasible register files (e.g. NumRegs 1, where a binary
	// operation needs two simultaneously live registers) the round
	// bound alone is ineffective. Exceeding the budget aborts the
	// allocation with a *BudgetError in bounded time.
	SpillBudget int
}

// ErrSpillBudget is the sentinel matched by errors.Is for allocations
// aborted because spill rewriting exceeded the work budget.
var ErrSpillBudget = errors.New("spill work budget exceeded")

// BudgetError reports an allocation aborted because the spill-rewritten
// program outgrew Config.SpillBudget: the register file is too small
// for the program (spilling is not reducing pressure), so retrying
// would only grow the program further. It unwraps to ErrSpillBudget.
type BudgetError struct {
	// Rounds is the number of spill rounds completed before the abort.
	Rounds int
	// Instrs is the rewritten program's instruction count; Budget the
	// cap it exceeded.
	Instrs, Budget int
	// Spilled is the number of values spilled so far.
	Spilled int
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf(
		"regalloc: %v: program grew to %d instructions (budget %d) after %d spill rounds (%d values spilled); the register file is too small for this program",
		ErrSpillBudget, e.Instrs, e.Budget, e.Rounds, e.Spilled)
}

// Unwrap makes errors.Is(err, ErrSpillBudget) match.
func (e *BudgetError) Unwrap() error { return ErrSpillBudget }

// Allocation is the result of register allocation: a (possibly
// spill-rewritten) function plus the value-to-register assignment.
type Allocation struct {
	// Fn is the allocated function. If spilling occurred this is a
	// rewritten clone of the input; otherwise it is the input function
	// itself.
	Fn *ir.Function
	// RegOf maps value ID to physical register, or -1 for values that
	// never needed one. Indexed by ID of Fn's values.
	RegOf []int
	// Spilled lists the names of original values that were spilled to
	// memory.
	Spilled []string
	// SpillLoads and SpillStores count the memory instructions the
	// spill rewriting inserted.
	SpillLoads, SpillStores int
	// Rounds is the number of allocation attempts (1 = no spilling).
	Rounds int
	// Policy echoes the policy used.
	Policy Policy
	// FP echoes the floorplan used.
	FP *floorplan.Floorplan
}

// Reg returns the physical register of value v, or -1.
func (a *Allocation) Reg(v *ir.Value) int { return a.RegOf[v.ID] }

// UsedRegs returns the distinct physical registers assigned to at least
// one value, ascending.
func (a *Allocation) UsedRegs() []int {
	seen := make(map[int]bool)
	for _, r := range a.RegOf {
		if r >= 0 {
			seen[r] = true
		}
	}
	out := make([]int, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// Occupancy returns the fraction of the register file in use.
func (a *Allocation) Occupancy() float64 {
	return float64(len(a.UsedRegs())) / float64(a.FP.NumRegs)
}

// Allocate colours fn's values with cfgAlloc.NumRegs registers,
// spilling and retrying as needed. The input function is never mutated:
// if spilling is required, a clone is rewritten.
func Allocate(fn *ir.Function, cfgAlloc Config) (*Allocation, error) {
	if cfgAlloc.NumRegs <= 0 {
		return nil, fmt.Errorf("regalloc: NumRegs must be positive, got %d", cfgAlloc.NumRegs)
	}
	fp := cfgAlloc.FP
	if fp == nil {
		fp = floorplan.Default()
	}
	if cfgAlloc.NumRegs > fp.NumRegs {
		return nil, fmt.Errorf("regalloc: %d registers exceed floorplan capacity %d",
			cfgAlloc.NumRegs, fp.NumRegs)
	}
	maxRounds := cfgAlloc.MaxSpillRounds
	if maxRounds <= 0 {
		maxRounds = 16
	}
	budget := cfgAlloc.SpillBudget
	if budget <= 0 {
		budget = 32*fn.NumInstrs() + 256
	}

	cur := fn
	var spilled []string
	loads, stores := 0, 0
	for round := 1; round <= maxRounds; round++ {
		res, toSpill := tryColor(cur, cfgAlloc, fp)
		if len(toSpill) == 0 {
			res.Spilled = spilled
			res.SpillLoads = loads
			res.SpillStores = stores
			res.Rounds = round
			return res, nil
		}
		if cur == fn {
			cur = fn.Clone()
		}
		toSpill = dedupe(toSpill)
		for _, vname := range toSpill {
			v := cur.ValueNamed(vname)
			if v == nil {
				return nil, fmt.Errorf("regalloc: spill candidate %s vanished", vname)
			}
			l, s := spillValue(cur, v)
			loads += l
			stores += s
			spilled = append(spilled, vname)
		}
		cur.Renumber()
		if err := ir.Verify(cur); err != nil {
			return nil, fmt.Errorf("regalloc: spill rewrite broke the IR: %w", err)
		}
		if n := cur.NumInstrs(); n > budget {
			return nil, &BudgetError{
				Rounds: round, Instrs: n, Budget: budget, Spilled: len(spilled),
			}
		}
	}
	return nil, fmt.Errorf("regalloc: did not converge after %d spill rounds (%d values spilled)",
		maxRounds, len(spilled))
}

// dedupe removes duplicate names preserving first occurrence; the
// eviction fallback can nominate the same neighbour more than once.
func dedupe(names []string) []string {
	seen := make(map[string]bool, len(names))
	out := names[:0]
	for _, n := range names {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// tryColor attempts one colouring pass. On success the returned spill
// list is empty; otherwise it names values to spill before retrying.
func tryColor(fn *ir.Function, cfgAlloc Config, fp *floorplan.Floorplan) (*Allocation, []string) {
	g := cfg.Build(fn)
	lv := analysis.ComputeLiveness(g)
	ig := interference.Build(g, lv)
	li := g.Loops(cfgAlloc.DefaultTrip)
	fr := cfg.EstimateFreq(g, li)
	du := analysis.ComputeDefUse(fn)

	k := cfgAlloc.NumRegs
	nodes := ig.Nodes()
	weight := make(map[int]float64, len(nodes))
	for _, v := range nodes {
		weight[v] = du.WeightedAccesses(fn.Values()[v], fr.Block)
	}

	// Simplify: peel nodes of degree < k; when stuck, optimistically
	// push the cheapest spill candidate (lowest weight/degree ratio).
	removed := make(map[int]bool, len(nodes))
	degree := make(map[int]int, len(nodes))
	for _, v := range nodes {
		d := 0
		ig.ForEachNeighbor(v, func(u int) {
			if ig.NeedsRegister(u) {
				d++
			}
		})
		degree[v] = d
	}
	var stack []int
	remaining := len(nodes)
	for remaining > 0 {
		picked := -1
		for _, v := range nodes {
			if !removed[v] && degree[v] < k {
				picked = v
				break
			}
		}
		if picked < 0 {
			// Blocked: choose the spill candidate with the lowest
			// cost-to-degree ratio, but push it optimistically — it may
			// still colour. The spill base is never a candidate
			// (spilling it would need another base register) and spill
			// temps are avoided unless nothing else remains.
			pickBest := func(allowTemps bool) int {
				best, bestScore := -1, 0.0
				for _, v := range nodes {
					name := fn.Values()[v].Name
					if removed[v] || isSpillBase(name) {
						continue
					}
					if !allowTemps && isSpillTemp(name) {
						continue
					}
					score := (weight[v] + 1) / float64(degree[v]+1)
					if best < 0 || score < bestScore {
						best, bestScore = v, score
					}
				}
				return best
			}
			best := pickBest(false)
			if best < 0 {
				best = pickBest(true)
			}
			if best < 0 {
				// Only the spill base remains: push it and let select
				// handle it (it colours unless K is saturated).
				for _, v := range nodes {
					if !removed[v] {
						best = v
						break
					}
				}
			}
			picked = best
		}
		removed[picked] = true
		remaining--
		stack = append(stack, picked)
		ig.ForEachNeighbor(picked, func(u int) {
			if ig.NeedsRegister(u) && !removed[u] {
				degree[u]--
			}
		})
	}

	// Select: pop in reverse, assign via policy.
	sel := newSelector(cfgAlloc.Policy, k, fp, cfgAlloc.Seed, cfgAlloc.HeatSeed)
	regOf := make([]int, fn.NumValues())
	for i := range regOf {
		regOf[i] = -1
	}
	var spill []string
	forbidden := make([]bool, k)
	for i := len(stack) - 1; i >= 0; i-- {
		v := stack[i]
		for r := range forbidden {
			forbidden[r] = false
		}
		ig.ForEachNeighbor(v, func(u int) {
			if r := regOf[u]; r >= 0 {
				forbidden[r] = true
			}
		})
		r := sel.pick(forbidden, weight[v])
		if r < 0 {
			name := fn.Values()[v].Name
			if isSpillBase(name) || isSpillTemp(name) {
				// The base must stay in a register, and re-spilling a
				// reload temp cannot help; evict the heaviest coloured
				// regular neighbour instead.
				evict, evictW := -1, -1.0
				ig.ForEachNeighbor(v, func(u int) {
					un := fn.Values()[u].Name
					if regOf[u] >= 0 && !isSpillBase(un) && !isSpillTemp(un) && weight[u] > evictW {
						evict, evictW = u, weight[u]
					}
				})
				if evict >= 0 {
					spill = append(spill, fn.Values()[evict].Name)
					continue
				}
			}
			spill = append(spill, name)
			continue
		}
		regOf[v] = r
	}
	if len(spill) > 0 {
		return nil, spill
	}
	return &Allocation{
		Fn:     fn,
		RegOf:  regOf,
		Policy: cfgAlloc.Policy,
		FP:     fp,
	}, nil
}
