// Package regalloc implements a Chaitin-style graph-colouring register
// allocator whose *assignment policy* — which physical register a
// colourable value receives — is pluggable. The policies reproduce the
// paper's Fig. 1: an ordered free list (1a), random choice (1b) and
// the chessboard pattern of Atienza et al. [2] (1c), plus the
// thermal-feedback and distance-spreading policies §4 motivates.
//
// Allocate is the entry point: it builds liveness and interference
// (internal/analysis, internal/interference), simplifies the graph,
// and lets the policy (selector) pick registers during select. Values
// that cannot be coloured are spilled to memory (SpillNamed /
// spillValue rewrite accesses through short-lived reload and
// writeback temporaries) and the allocation retries, up to
// Config.MaxSpillRounds rounds.
//
// Spilling normally converges because every introduced temporary has
// a two-instruction live range. On an infeasible register file — the
// canonical case is NumRegs 1, where any binary operation needs two
// simultaneously live registers — each round instead grows the
// program multiplicatively without reducing pressure, so Allocate
// also enforces Config.SpillBudget, an instruction-count cap on the
// rewritten program. Exceeding it fails fast with a *BudgetError
// (errors.Is(err, ErrSpillBudget)); thermflowd surfaces that as a
// 422, distinguishing "your request cannot be satisfied" from a
// server fault.
//
// The input function is never mutated: spill rewriting works on a
// clone, so one program can be allocated concurrently under many
// configurations (the batch engine's fan-out relies on this).
package regalloc
