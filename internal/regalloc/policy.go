package regalloc

import (
	"fmt"
	"math"
	"math/rand"

	"thermflow/internal/floorplan"
)

// Policy selects the register-assignment strategy.
type Policy int

// Assignment policies.
const (
	// FirstFree always picks the lowest-numbered free register — the
	// "ordered list ... traversed in order" of the paper's motivating
	// example, which concentrates accesses on a few physical registers
	// (Fig. 1a).
	FirstFree Policy = iota
	// Random picks a uniformly random free register (Fig. 1b).
	Random
	// Chessboard cycles through registers on alternating floorplan
	// cells ("black" cells first, then "white"), so accesses are
	// distributed uniformly across the surface and no two consecutively
	// assigned registers are physically adjacent while occupancy stays
	// below half the register file (Fig. 1c, the policy of [2]).
	Chessboard
	// RoundRobin cycles through the register file, resuming after the
	// previously assigned register.
	RoundRobin
	// Coldest picks the free register with the lowest accumulated
	// heat estimate (its own assigned activity plus half of its
	// neighbours'), optionally seeded with an external per-register
	// heat profile from a prior thermal analysis.
	Coldest
	// SpreadMax picks the free register farthest from the register
	// assigned immediately before, spreading consecutive assignments
	// across the floorplan.
	SpreadMax
)

// Policies lists every policy in presentation order.
var Policies = []Policy{FirstFree, Random, Chessboard, RoundRobin, Coldest, SpreadMax}

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FirstFree:
		return "first-free"
	case Random:
		return "random"
	case Chessboard:
		return "chessboard"
	case RoundRobin:
		return "round-robin"
	case Coldest:
		return "coldest"
	case SpreadMax:
		return "spread-max"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// PolicyByName returns the policy with the given name.
func PolicyByName(name string) (Policy, bool) {
	for _, p := range Policies {
		if p.String() == name {
			return p, true
		}
	}
	return FirstFree, false
}

// selector picks physical registers for values during the select phase.
type selector struct {
	policy Policy
	k      int
	fp     *floorplan.Floorplan
	rng    *rand.Rand

	// order is the static preference order (FirstFree, Chessboard).
	order []int
	// cursor is the position in order after the previous assignment
	// (Chessboard cycles; FirstFree always rescans from the start).
	cursor int
	// half is the size of the first chessboard colour group.
	half int
	// heat accumulates per-register activity weight (Coldest).
	heat []float64
	// last is the previously assigned register (RoundRobin, SpreadMax).
	last int
}

func newSelector(policy Policy, k int, fp *floorplan.Floorplan, seed int64, heatSeed []float64) *selector {
	s := &selector{policy: policy, k: k, fp: fp, last: -1}
	switch policy {
	case Random:
		s.rng = rand.New(rand.NewSource(seed))
	case FirstFree, RoundRobin:
		s.order = make([]int, k)
		for i := range s.order {
			s.order[i] = i
		}
	case Chessboard:
		s.order = chessboardOrder(k, fp)
		for _, r := range s.order {
			x, y := fp.XY(fp.CellOf(r))
			if (x+y)%2 != 0 {
				break
			}
			s.half++
		}
	case Coldest:
		s.heat = make([]float64, k)
		copy(s.heat, heatSeed) // heatSeed may be shorter or nil
	case SpreadMax:
		// no precomputation
	}
	return s
}

// chessboardOrder lists the "black" cells' registers first, then the
// "white" cells', each group in register order. While at most half the
// registers are in use, no two occupied cells are 4-adjacent.
func chessboardOrder(k int, fp *floorplan.Floorplan) []int {
	order := make([]int, 0, k)
	for pass := 0; pass < 2; pass++ {
		for r := 0; r < k; r++ {
			x, y := fp.XY(fp.CellOf(r))
			if (x+y)%2 == pass {
				order = append(order, r)
			}
		}
	}
	return order
}

// pick returns a register not in forbidden, or -1 when none is free.
// weight is the value's access weight (used to update the Coldest heat
// account).
func (s *selector) pick(forbidden []bool, weight float64) int {
	reg := -1
	switch s.policy {
	case FirstFree:
		for _, r := range s.order {
			if !forbidden[r] {
				reg = r
				break
			}
		}
	case Chessboard:
		// Cycle within the first colour so accesses spread uniformly
		// over the alternating cells AND usage stays confined to half
		// the file (short-lived values share black cells rather than
		// overflowing onto white ones). White cells are used only when
		// no black cell is available — the high-pressure breakdown the
		// paper's §2 warns about.
		if s.half <= 0 {
			s.half = len(s.order)
		}
		for i := 0; i < s.half; i++ {
			idx := (s.cursor + i) % s.half
			if r := s.order[idx]; !forbidden[r] {
				reg = r
				s.cursor = idx + 1
				break
			}
		}
		if reg < 0 {
			for _, r := range s.order[s.half:] {
				if !forbidden[r] {
					reg = r
					break
				}
			}
		}
	case Random:
		free := make([]int, 0, s.k)
		for r := 0; r < s.k; r++ {
			if !forbidden[r] {
				free = append(free, r)
			}
		}
		if len(free) > 0 {
			reg = free[s.rng.Intn(len(free))]
		}
	case RoundRobin:
		for i := 1; i <= s.k; i++ {
			r := (s.last + i) % s.k
			if !forbidden[r] {
				reg = r
				break
			}
		}
	case Coldest:
		best := math.Inf(1)
		for r := 0; r < s.k; r++ {
			if forbidden[r] {
				continue
			}
			score := s.heat[r] + 0.5*s.neighborHeat(r)
			if score < best {
				best = score
				reg = r
			}
		}
	case SpreadMax:
		best := -1.0
		for r := 0; r < s.k; r++ {
			if forbidden[r] {
				continue
			}
			d := 0.0
			if s.last >= 0 {
				d = s.fp.RegDist(s.last, r)
			} else {
				// First assignment: behave like FirstFree.
				d = float64(s.k - r)
			}
			if d > best {
				best = d
				reg = r
			}
		}
	}
	if reg >= 0 {
		s.last = reg
		if s.heat != nil {
			s.heat[reg] += weight
		}
	}
	return reg
}

func (s *selector) neighborHeat(r int) float64 {
	cell := s.fp.CellOf(r)
	total := 0.0
	for _, nc := range s.fp.Neighbors(cell, nil) {
		nr := s.fp.RegAt(nc)
		if nr >= 0 && nr < len(s.heat) {
			total += s.heat[nr]
		}
	}
	return total
}
