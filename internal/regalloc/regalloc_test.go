package regalloc

import (
	"testing"

	"thermflow/internal/analysis"
	"thermflow/internal/cfg"
	"thermflow/internal/floorplan"
	"thermflow/internal/interference"
	"thermflow/internal/ir"
)

const loopSrc = `
func loop(n) {
entry:
  i = const 0
  one = const 1
  sum = const 0
  br head
head: !trip 16
  c = cmplt i, n
  cbr c, body, exit
body:
  s2 = add sum, i
  sum = mov s2
  i2 = add i, one
  i = mov i2
  br head
exit:
  ret sum
}`

func mustParse(t *testing.T, src string) *ir.Function {
	t.Helper()
	f, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

// checkValid verifies the fundamental allocation invariant: interfering
// values never share a register, and every value that appears in the
// allocated function has one.
func checkValid(t *testing.T, a *Allocation) {
	t.Helper()
	g := cfg.Build(a.Fn)
	lv := analysis.ComputeLiveness(g)
	ig := interference.Build(g, lv)
	for _, v := range ig.Nodes() {
		if a.RegOf[v] < 0 {
			t.Errorf("value %s has no register", a.Fn.Values()[v].Name)
		}
	}
	for _, v := range ig.Nodes() {
		for _, u := range ig.Neighbors(v) {
			if !ig.NeedsRegister(u) {
				continue
			}
			if a.RegOf[v] >= 0 && a.RegOf[v] == a.RegOf[u] {
				t.Errorf("interfering values %s and %s share register %d",
					a.Fn.Values()[v].Name, a.Fn.Values()[u].Name, a.RegOf[v])
			}
		}
	}
	if err := ir.Verify(a.Fn); err != nil {
		t.Errorf("allocated function ill-formed: %v", err)
	}
}

func TestAllocateAllPolicies(t *testing.T) {
	for _, pol := range Policies {
		t.Run(pol.String(), func(t *testing.T) {
			f := mustParse(t, loopSrc)
			a, err := Allocate(f, Config{NumRegs: 16, Policy: pol, Seed: 42})
			if err != nil {
				t.Fatalf("Allocate: %v", err)
			}
			checkValid(t, a)
			if a.Rounds != 1 {
				t.Errorf("unexpected spill rounds: %d", a.Rounds)
			}
			if len(a.Spilled) != 0 {
				t.Errorf("unexpected spills: %v", a.Spilled)
			}
			if a.Policy != pol {
				t.Errorf("policy echo = %v", a.Policy)
			}
		})
	}
}

func TestFirstFreeUsesLowRegisters(t *testing.T) {
	f := mustParse(t, loopSrc)
	a, err := Allocate(f, Config{NumRegs: 64, Policy: FirstFree})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range a.UsedRegs() {
		if r > 8 {
			t.Errorf("first-free assigned high register %d", r)
		}
	}
}

func TestChessboardAvoidsAdjacency(t *testing.T) {
	f := mustParse(t, loopSrc)
	fp := floorplan.Default()
	a, err := Allocate(f, Config{NumRegs: 64, Policy: Chessboard, FP: fp})
	if err != nil {
		t.Fatal(err)
	}
	used := a.UsedRegs()
	if len(used) > 32 {
		t.Skipf("occupancy above half the RF: %d", len(used))
	}
	for i, r1 := range used {
		for _, r2 := range used[i+1:] {
			if fp.Adjacent(r1, r2) {
				t.Errorf("chessboard placed registers %d and %d on adjacent cells", r1, r2)
			}
		}
	}
}

func TestRandomPolicyDeterministicPerSeed(t *testing.T) {
	f1 := mustParse(t, loopSrc)
	f2 := mustParse(t, loopSrc)
	a1, err1 := Allocate(f1, Config{NumRegs: 64, Policy: Random, Seed: 7})
	a2, err2 := Allocate(f2, Config{NumRegs: 64, Policy: Random, Seed: 7})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := range a1.RegOf {
		if a1.RegOf[i] != a2.RegOf[i] {
			t.Fatal("same seed produced different assignments")
		}
	}
	f3 := mustParse(t, loopSrc)
	a3, err := Allocate(f3, Config{NumRegs: 64, Policy: Random, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a1.RegOf {
		if a1.RegOf[i] != a3.RegOf[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical assignments (suspicious)")
	}
}

func TestRoundRobinSpreads(t *testing.T) {
	f := mustParse(t, loopSrc)
	a, err := Allocate(f, Config{NumRegs: 64, Policy: RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin over 64 registers with ~8 values must use ~8 distinct
	// registers (no reuse while cycling).
	if len(a.UsedRegs()) < 6 {
		t.Errorf("round-robin used only %d registers", len(a.UsedRegs()))
	}
}

func TestSpillingUnderPressure(t *testing.T) {
	// 12 simultaneously live values, only 6 registers (one of which the
	// spill base will take) — must spill and still validate.
	src := `
func pressure() {
entry:
  v0 = const 0
  v1 = const 1
  v2 = const 2
  v3 = const 3
  v4 = const 4
  v5 = const 5
  v6 = const 6
  v7 = const 7
  v8 = const 8
  v9 = const 9
  v10 = const 10
  v11 = const 11
  s1 = add v0, v1
  s2 = add s1, v2
  s3 = add s2, v3
  s4 = add s3, v4
  s5 = add s4, v5
  s6 = add s5, v6
  s7 = add s6, v7
  s8 = add s7, v8
  s9 = add s8, v9
  s10 = add s9, v10
  s11 = add s10, v11
  ret s11
}`
	f := mustParse(t, src)
	a, err := Allocate(f, Config{NumRegs: 6, Policy: FirstFree})
	if err != nil {
		t.Fatalf("Allocate under pressure: %v", err)
	}
	if len(a.Spilled) == 0 {
		t.Fatal("expected spills with 12 live values and 6 registers")
	}
	if a.SpillLoads == 0 || a.SpillStores == 0 {
		t.Error("spill loads/stores not recorded")
	}
	if a.Rounds < 2 {
		t.Errorf("Rounds = %d, want >= 2", a.Rounds)
	}
	checkValid(t, a)
	// Original function must be untouched.
	if f.ValueNamed(".spillbase") != nil {
		t.Error("input function mutated by spilling")
	}
}

func TestSpilledParamMaterialized(t *testing.T) {
	// Force the param itself to spill by saturating pressure with
	// values that all coexist with it.
	src := `
func f(p) {
entry:
  a = const 1
  b = const 2
  c = const 3
  d = const 4
  x1 = add a, b
  x2 = add x1, c
  x3 = add x2, d
  x4 = add x3, p
  ret x4
}`
	f := mustParse(t, src)
	a, err := Allocate(f, Config{NumRegs: 3, Policy: FirstFree})
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	checkValid(t, a)
	// If p was spilled there must be a store of p near the entry.
	spilledP := false
	for _, name := range a.Spilled {
		if name == "p" {
			spilledP = true
		}
	}
	if spilledP {
		found := false
		for _, in := range a.Fn.Entry.Instrs {
			if in.Op == ir.Store && len(in.Uses) > 0 && in.Uses[0].Name == "p" {
				found = true
			}
		}
		if !found {
			t.Error("spilled parameter not stored to its slot on entry")
		}
	}
}

func TestAllocateErrors(t *testing.T) {
	f := mustParse(t, loopSrc)
	if _, err := Allocate(f, Config{NumRegs: 0}); err == nil {
		t.Error("NumRegs=0 accepted")
	}
	fp, _ := floorplan.New(8, 4, 2, 50e-6, floorplan.RowMajor)
	if _, err := Allocate(f, Config{NumRegs: 9, FP: fp}); err == nil {
		t.Error("NumRegs beyond floorplan accepted")
	}
}

func TestOccupancy(t *testing.T) {
	f := mustParse(t, loopSrc)
	a, err := Allocate(f, Config{NumRegs: 64, Policy: FirstFree})
	if err != nil {
		t.Fatal(err)
	}
	occ := a.Occupancy()
	if occ <= 0 || occ > 0.25 {
		t.Errorf("Occupancy = %g, want small positive", occ)
	}
}

func TestColdestWithHeatSeed(t *testing.T) {
	f := mustParse(t, loopSrc)
	// Pretend registers 0..7 are scorching: Coldest must avoid them.
	heat := make([]float64, 64)
	for i := 0; i < 8; i++ {
		heat[i] = 1e6
	}
	a, err := Allocate(f, Config{NumRegs: 64, Policy: Coldest, HeatSeed: heat})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range a.UsedRegs() {
		if r < 8 {
			t.Errorf("coldest policy picked pre-heated register %d", r)
		}
	}
}

func TestSpreadMaxDistances(t *testing.T) {
	f := mustParse(t, loopSrc)
	fp := floorplan.Default()
	a, err := Allocate(f, Config{NumRegs: 64, Policy: SpreadMax, FP: fp})
	if err != nil {
		t.Fatal(err)
	}
	used := a.UsedRegs()
	if len(used) < 2 {
		t.Skip("not enough registers used")
	}
	// Average pairwise distance should comfortably exceed the
	// first-free baseline's.
	avg := func(regs []int) float64 {
		total, n := 0.0, 0
		for i, r1 := range regs {
			for _, r2 := range regs[i+1:] {
				total += fp.RegDist(r1, r2)
				n++
			}
		}
		return total / float64(n)
	}
	fFF := mustParse(t, loopSrc)
	aFF, err := Allocate(fFF, Config{NumRegs: 64, Policy: FirstFree, FP: fp})
	if err != nil {
		t.Fatal(err)
	}
	if avg(used) <= avg(aFF.UsedRegs()) {
		t.Errorf("spread-max average distance %g not larger than first-free %g",
			avg(used), avg(aFF.UsedRegs()))
	}
}

func TestPolicyNames(t *testing.T) {
	for _, p := range Policies {
		back, ok := PolicyByName(p.String())
		if !ok || back != p {
			t.Errorf("PolicyByName(%q) = %v, %v", p.String(), back, ok)
		}
	}
	if _, ok := PolicyByName("bogus"); ok {
		t.Error("PolicyByName(bogus) succeeded")
	}
	if Policy(99).String() == "" {
		t.Error("unknown policy String empty")
	}
}

func TestChessboardOrderAlternates(t *testing.T) {
	fp := floorplan.Default()
	order := chessboardOrder(64, fp)
	if len(order) != 64 {
		t.Fatalf("order length = %d", len(order))
	}
	// First half must all be one colour.
	for i := 0; i < 32; i++ {
		x, y := fp.XY(fp.CellOf(order[i]))
		if (x+y)%2 != 0 {
			t.Errorf("order[%d] = reg %d on odd-colour cell", i, order[i])
		}
	}
	seen := map[int]bool{}
	for _, r := range order {
		if seen[r] {
			t.Fatalf("register %d appears twice", r)
		}
		seen[r] = true
	}
}

func TestHighPressureLoopSpill(t *testing.T) {
	// A loop with many live-through values forced into few registers.
	src := `
func hot(n) {
entry:
  a = const 1
  b = const 2
  c = const 3
  d = const 4
  e = const 5
  i = const 0
  br head
head: !trip 8
  cond = cmplt i, n
  cbr cond, body, exit
body:
  t1 = add a, b
  t2 = add t1, c
  t3 = add t2, d
  t4 = add t3, e
  i2 = add i, t4
  i = mov i2
  br head
exit:
  ret i
}`
	f := mustParse(t, src)
	a, err := Allocate(f, Config{NumRegs: 5, Policy: FirstFree})
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	checkValid(t, a)
	if len(a.Spilled) == 0 {
		t.Error("expected spilling with 8+ live values in 5 registers")
	}
}
