package cfg

import "thermflow/internal/ir"

// DomTree is the dominator tree of a CFG, computed with the
// Cooper-Harvey-Kennedy iterative algorithm ("A Simple, Fast Dominance
// Algorithm"). Only reachable blocks have dominator information.
type DomTree struct {
	g *Graph
	// idom maps block index to immediate dominator; the entry's idom is
	// the entry itself; unreachable blocks have nil.
	idom []*ir.Block
}

// Dominators computes the dominator tree of g.
func Dominators(g *Graph) *DomTree {
	d := &DomTree{g: g, idom: make([]*ir.Block, g.NumBlocks())}
	if len(g.RPO) == 0 {
		return d
	}
	entry := g.RPO[0]
	d.idom[entry.Index] = entry
	for changed := true; changed; {
		changed = false
		for _, b := range g.RPO[1:] {
			var newIdom *ir.Block
			for _, p := range g.Preds[b.Index] {
				if d.idom[p.Index] == nil {
					continue // predecessor not yet processed or unreachable
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = d.intersect(p, newIdom)
				}
			}
			if newIdom != nil && d.idom[b.Index] != newIdom {
				d.idom[b.Index] = newIdom
				changed = true
			}
		}
	}
	return d
}

func (d *DomTree) intersect(a, b *ir.Block) *ir.Block {
	for a != b {
		for d.g.RPOPos(a) > d.g.RPOPos(b) {
			a = d.idom[a.Index]
		}
		for d.g.RPOPos(b) > d.g.RPOPos(a) {
			b = d.idom[b.Index]
		}
	}
	return a
}

// Idom returns the immediate dominator of b (the entry returns itself),
// or nil for unreachable blocks.
func (d *DomTree) Idom(b *ir.Block) *ir.Block { return d.idom[b.Index] }

// Dominates reports whether a dominates b (reflexively).
func (d *DomTree) Dominates(a, b *ir.Block) bool {
	if d.idom[b.Index] == nil || d.idom[a.Index] == nil {
		return false
	}
	for {
		if a == b {
			return true
		}
		next := d.idom[b.Index]
		if next == b {
			return false // reached entry
		}
		b = next
	}
}
