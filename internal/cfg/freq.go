package cfg

import (
	"math"

	"thermflow/internal/ir"
)

// Freq holds static execution frequency estimates: expected executions
// per function invocation for every block and edge, plus the branch
// probabilities they were derived from.
type Freq struct {
	// Block maps block index to expected executions per invocation.
	Block []float64
	// Edge maps a CFG edge to its expected traversals per invocation.
	Edge map[EdgeKey]float64
	// Prob maps a CFG edge to its branch probability (out-edge
	// probabilities of a block sum to 1 unless it ends in ret).
	Prob map[EdgeKey]float64
}

// freqIterations bounds the Gauss-Seidel sweeps used to solve the flow
// equations. Convergence is geometric but the rate degrades with loop
// nesting (a two-level nest with trips 4 and 8 has spectral radius
// ~0.98), so the bound is generous; typical CFGs stop after a few dozen
// sweeps via freqEpsilon.
const freqIterations = 50000

// freqEpsilon is the convergence threshold on the largest block
// frequency change between sweeps.
const freqEpsilon = 1e-12

// EstimateFreq computes static execution frequencies.
//
// Branch probabilities follow loop structure: at a block with two
// successors where exactly one edge stays inside the block's innermost
// loop, the staying edge gets probability trip/(trip+1) so the loop
// body executes `trip` times per entry; every other conditional branch
// is split 50/50. Frequencies then solve the linear flow system
// freq(entry)=1, freq(b)=Σ freq(p)·prob(p→b) by Gauss-Seidel in
// reverse postorder.
func EstimateFreq(g *Graph, li *LoopInfo) *Freq {
	f := &Freq{
		Block: make([]float64, g.NumBlocks()),
		Edge:  make(map[EdgeKey]float64),
		Prob:  make(map[EdgeKey]float64),
	}
	// Branch probabilities.
	for _, b := range g.RPO {
		succs := b.Succs()
		switch len(succs) {
		case 0:
			// ret: no out edges.
		case 1:
			f.Prob[Edge(b, succs[0])] = 1
		case 2:
			p0, p1 := 0.5, 0.5
			l := li.Innermost(b)
			if l != nil {
				in0 := l.Blocks[succs[0]]
				in1 := l.Blocks[succs[1]]
				if in0 != in1 {
					trip := float64(l.Trip)
					stay := trip / (trip + 1)
					if in0 {
						p0, p1 = stay, 1-stay
					} else {
						p0, p1 = 1-stay, stay
					}
				}
			}
			f.Prob[Edge(b, succs[0])] = p0
			f.Prob[Edge(b, succs[1])] = p1
		default:
			// The IR has at most two successors, but stay safe.
			p := 1.0 / float64(len(succs))
			for _, s := range succs {
				f.Prob[Edge(b, s)] = p
			}
		}
	}
	// Solve flow equations.
	if len(g.RPO) == 0 {
		return f
	}
	entry := g.RPO[0]
	for iter := 0; iter < freqIterations; iter++ {
		maxDelta := 0.0
		for _, b := range g.RPO {
			want := 0.0
			if b == entry {
				want = 1
			}
			for _, p := range g.Preds[b.Index] {
				if !g.Reachable(p) {
					continue
				}
				want += f.Block[p.Index] * f.Prob[Edge(p, b)]
			}
			if d := math.Abs(want - f.Block[b.Index]); d > maxDelta {
				maxDelta = d
			}
			f.Block[b.Index] = want
		}
		if maxDelta < freqEpsilon {
			break
		}
	}
	// Edge frequencies.
	for _, b := range g.RPO {
		for _, s := range b.Succs() {
			e := Edge(b, s)
			f.Edge[e] = f.Block[b.Index] * f.Prob[e]
		}
	}
	return f
}

// BlockFreq returns the estimated executions of b per invocation.
func (f *Freq) BlockFreq(b *ir.Block) float64 { return f.Block[b.Index] }

// EdgeFreq returns the estimated traversals of edge p->s per
// invocation.
func (f *Freq) EdgeFreq(p, s *ir.Block) float64 { return f.Edge[Edge(p, s)] }

// TotalWeightedCycles returns the expected cycle count of one function
// invocation: Σ over instructions of freq(block)·latency. The thermal
// analysis uses it to convert per-invocation energy into average power.
func (f *Freq) TotalWeightedCycles(fn *ir.Function) float64 {
	total := 0.0
	for _, b := range fn.Blocks {
		if b.Index >= len(f.Block) {
			continue
		}
		cycles := 0
		for _, in := range b.Instrs {
			cycles += in.EffLatency()
		}
		total += f.Block[b.Index] * float64(cycles)
	}
	return total
}
