package cfg_test

import (
	"sync"
	"testing"

	"thermflow/internal/cfg"
	"thermflow/internal/ir"
	"thermflow/internal/workload"
)

func reuseFn(tb testing.TB) *ir.Function {
	tb.Helper()
	fn := workload.Generate(workload.GenConfig{Seed: 7, Segments: 6, LoopDepth: 3, Pressure: 12})
	if err := ir.Verify(fn); err != nil {
		tb.Fatalf("generated function invalid: %v", err)
	}
	return fn
}

// TestDomLoopsCached asserts the lazily cached views are the same
// objects on repeated calls, agree with a fresh derivation, and are
// safe to request concurrently (the batch pool shares one Graph).
func TestDomLoopsCached(t *testing.T) {
	g := cfg.Build(reuseFn(t))

	dom := g.Dom()
	if dom == nil {
		t.Fatal("Dom returned nil")
	}
	if again := g.Dom(); again != dom {
		t.Fatal("Dom recomputed instead of reusing the cache")
	}
	li := g.Loops(cfg.DefaultTrip)
	if again := g.Loops(cfg.DefaultTrip); again != li {
		t.Fatal("Loops recomputed for the same default trip")
	}
	if other := g.Loops(3); other == li {
		t.Fatal("Loops for a different default trip must be distinct")
	}

	// Cached views must agree with a fresh derivation.
	fresh := cfg.Dominators(g)
	for _, b := range g.RPO {
		if dom.Idom(b) != fresh.Idom(b) {
			t.Fatalf("cached idom(%s) = %v, fresh = %v", b.Name, dom.Idom(b), fresh.Idom(b))
		}
	}
	freshLoops := cfg.FindLoops(g, fresh, cfg.DefaultTrip)
	if len(li.Loops) != len(freshLoops.Loops) {
		t.Fatalf("cached %d loops, fresh %d", len(li.Loops), len(freshLoops.Loops))
	}
	for i, l := range li.Loops {
		fl := freshLoops.Loops[i]
		if l.Header != fl.Header || l.Trip != fl.Trip || len(l.Blocks) != len(fl.Blocks) {
			t.Fatalf("loop %d differs: header %s/%s trip %d/%d size %d/%d",
				i, l.Header.Name, fl.Header.Name, l.Trip, fl.Trip, len(l.Blocks), len(fl.Blocks))
		}
	}

	// Concurrent first-use on a fresh graph must race-cleanly converge
	// on one instance.
	g2 := cfg.Build(reuseFn(t))
	var wg sync.WaitGroup
	doms := make([]*cfg.DomTree, 8)
	for i := range doms {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			doms[i] = g2.Dom()
			g2.Loops(cfg.DefaultTrip)
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(doms); i++ {
		if doms[i] != doms[0] {
			t.Fatal("concurrent Dom calls produced distinct trees")
		}
	}
}

// BenchmarkDominatorsRecompute measures the per-call cost the old
// callers paid: re-deriving the dominator tree and loop forest on an
// already-built graph every time they needed frequencies.
func BenchmarkDominatorsRecompute(b *testing.B) {
	g := cfg.Build(reuseFn(b))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dom := cfg.Dominators(g)
		cfg.FindLoops(g, dom, cfg.DefaultTrip)
	}
}

// BenchmarkDomLoopsCached measures the reuse path: the same views via
// the lazily cached accessors.
func BenchmarkDomLoopsCached(b *testing.B) {
	g := cfg.Build(reuseFn(b))
	g.Loops(cfg.DefaultTrip) // populate
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Dom()
		g.Loops(cfg.DefaultTrip)
	}
}
