// Package cfg builds control-flow-graph views over ir.Function:
// reverse postorder, dominator tree, natural loops and static execution
// frequency estimates.
//
// Frequency estimates are the weights the thermal data-flow analysis
// uses to merge predecessor thermal states and to scale the power
// contribution of loop bodies, so their quality directly bounds the
// fidelity of the compile-time thermal prediction.
package cfg

import (
	"fmt"
	"sync"

	"thermflow/internal/ir"
)

// Graph is a CFG view over a function. It caches predecessor lists and
// reverse postorder. The view is invalidated by any mutation of the
// underlying function; rebuild with Build.
type Graph struct {
	// Fn is the underlying function (renumbered by Build).
	Fn *ir.Function
	// Preds holds predecessor lists indexed by ir.Block.Index.
	Preds [][]*ir.Block
	// RPO is the reverse postorder of reachable blocks, starting at the
	// entry.
	RPO []*ir.Block

	rpoPos []int // block index -> position in RPO, -1 if unreachable

	mu    sync.Mutex
	dom   *DomTree          // lazily built by Dom
	loops map[int]*LoopInfo // lazily built by Loops, keyed by default trip
}

// Dom returns the dominator tree of the graph, computing it on first
// use and caching it for subsequent callers. The cache is safe for
// concurrent use; like every Graph view it is invalidated by mutation
// of the underlying function (rebuild with Build).
func (g *Graph) Dom() *DomTree {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.dom == nil {
		g.dom = Dominators(g)
	}
	return g.dom
}

// Loops returns the natural-loop forest for the given default trip
// count, computing dominators and loops on first use and caching both.
// Distinct trip counts get distinct cached entries because the trip
// default is baked into Loop.Trip.
func (g *Graph) Loops(defaultTrip int) *LoopInfo {
	g.mu.Lock()
	defer g.mu.Unlock()
	if li, ok := g.loops[defaultTrip]; ok {
		return li
	}
	if g.dom == nil {
		g.dom = Dominators(g)
	}
	li := FindLoops(g, g.dom, defaultTrip)
	if g.loops == nil {
		g.loops = make(map[int]*LoopInfo, 1)
	}
	g.loops[defaultTrip] = li
	return li
}

// Build constructs the CFG view. The function is renumbered so block
// and instruction indices are dense; a function that is already
// numbered (every producer renumbers after mutating) is not written
// to, so concurrent analyses — the batch engine's worker pool — can
// share it.
func Build(f *ir.Function) *Graph {
	if !f.Numbered() {
		f.Renumber()
	}
	g := &Graph{Fn: f}
	g.Preds = f.Preds()
	g.computeRPO()
	return g
}

func (g *Graph) computeRPO() {
	n := len(g.Fn.Blocks)
	g.rpoPos = make([]int, n)
	for i := range g.rpoPos {
		g.rpoPos[i] = -1
	}
	visited := make([]bool, n)
	var post []*ir.Block
	// Iterative DFS computing postorder.
	type frame struct {
		b    *ir.Block
		next int
	}
	if g.Fn.Entry == nil {
		return
	}
	stack := []frame{{g.Fn.Entry, 0}}
	visited[g.Fn.Entry.Index] = true
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		succs := top.b.Succs()
		if top.next < len(succs) {
			s := succs[top.next]
			top.next++
			if !visited[s.Index] {
				visited[s.Index] = true
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		post = append(post, top.b)
		stack = stack[:len(stack)-1]
	}
	g.RPO = make([]*ir.Block, len(post))
	for i, b := range post {
		pos := len(post) - 1 - i
		g.RPO[pos] = b
		g.rpoPos[b.Index] = pos
	}
}

// RPOPos returns the position of block b in the reverse postorder, or
// -1 if b is unreachable.
func (g *Graph) RPOPos(b *ir.Block) int { return g.rpoPos[b.Index] }

// Reachable reports whether b is reachable from the entry.
func (g *Graph) Reachable(b *ir.Block) bool { return g.rpoPos[b.Index] >= 0 }

// NumBlocks returns the number of blocks in the underlying function
// (including unreachable ones).
func (g *Graph) NumBlocks() int { return len(g.Fn.Blocks) }

// EdgeKey identifies a CFG edge by (from, to) block indices; it is the
// map key for edge-indexed tables such as frequencies.
type EdgeKey struct{ From, To int }

// Edge returns the key of the edge from p to s.
func Edge(p, s *ir.Block) EdgeKey { return EdgeKey{p.Index, s.Index} }

// String renders the edge for diagnostics.
func (e EdgeKey) String() string { return fmt.Sprintf("%d->%d", e.From, e.To) }
