// Package cfg builds control-flow-graph views over ir.Function:
// reverse postorder, dominator tree, natural loops and static execution
// frequency estimates.
//
// Frequency estimates are the weights the thermal data-flow analysis
// uses to merge predecessor thermal states and to scale the power
// contribution of loop bodies, so their quality directly bounds the
// fidelity of the compile-time thermal prediction.
package cfg

import (
	"fmt"

	"thermflow/internal/ir"
)

// Graph is a CFG view over a function. It caches predecessor lists and
// reverse postorder. The view is invalidated by any mutation of the
// underlying function; rebuild with Build.
type Graph struct {
	// Fn is the underlying function (renumbered by Build).
	Fn *ir.Function
	// Preds holds predecessor lists indexed by ir.Block.Index.
	Preds [][]*ir.Block
	// RPO is the reverse postorder of reachable blocks, starting at the
	// entry.
	RPO []*ir.Block

	rpoPos []int // block index -> position in RPO, -1 if unreachable
}

// Build constructs the CFG view. The function is renumbered so block
// and instruction indices are dense; a function that is already
// numbered (every producer renumbers after mutating) is not written
// to, so concurrent analyses — the batch engine's worker pool — can
// share it.
func Build(f *ir.Function) *Graph {
	if !f.Numbered() {
		f.Renumber()
	}
	g := &Graph{Fn: f}
	g.Preds = f.Preds()
	g.computeRPO()
	return g
}

func (g *Graph) computeRPO() {
	n := len(g.Fn.Blocks)
	g.rpoPos = make([]int, n)
	for i := range g.rpoPos {
		g.rpoPos[i] = -1
	}
	visited := make([]bool, n)
	var post []*ir.Block
	// Iterative DFS computing postorder.
	type frame struct {
		b    *ir.Block
		next int
	}
	if g.Fn.Entry == nil {
		return
	}
	stack := []frame{{g.Fn.Entry, 0}}
	visited[g.Fn.Entry.Index] = true
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		succs := top.b.Succs()
		if top.next < len(succs) {
			s := succs[top.next]
			top.next++
			if !visited[s.Index] {
				visited[s.Index] = true
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		post = append(post, top.b)
		stack = stack[:len(stack)-1]
	}
	g.RPO = make([]*ir.Block, len(post))
	for i, b := range post {
		pos := len(post) - 1 - i
		g.RPO[pos] = b
		g.rpoPos[b.Index] = pos
	}
}

// RPOPos returns the position of block b in the reverse postorder, or
// -1 if b is unreachable.
func (g *Graph) RPOPos(b *ir.Block) int { return g.rpoPos[b.Index] }

// Reachable reports whether b is reachable from the entry.
func (g *Graph) Reachable(b *ir.Block) bool { return g.rpoPos[b.Index] >= 0 }

// NumBlocks returns the number of blocks in the underlying function
// (including unreachable ones).
func (g *Graph) NumBlocks() int { return len(g.Fn.Blocks) }

// EdgeKey identifies a CFG edge by (from, to) block indices; it is the
// map key for edge-indexed tables such as frequencies.
type EdgeKey struct{ From, To int }

// Edge returns the key of the edge from p to s.
func Edge(p, s *ir.Block) EdgeKey { return EdgeKey{p.Index, s.Index} }

// String renders the edge for diagnostics.
func (e EdgeKey) String() string { return fmt.Sprintf("%d->%d", e.From, e.To) }
