package cfg

import (
	"math"
	"testing"

	"thermflow/internal/ir"
)

func mustParse(t *testing.T, src string) *ir.Function {
	t.Helper()
	f, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

// diamond: entry -> (left|right) -> join -> exit
const diamondSrc = `
func diamond(p) {
entry:
  c = cmplt p, p
  cbr c, left, right
left:
  x = const 1
  br join
right:
  y = const 2
  br join
join:
  z = const 3
  ret z
}`

// loop: entry -> head <-> body, head -> exit
const loopSrc = `
func loop(n) {
entry:
  i = const 0
  one = const 1
  br head
head: !trip 10
  c = cmplt i, n
  cbr c, body, exit
body:
  i2 = add i, one
  i = mov i2
  br head
exit:
  ret i
}`

// nested: two-level loop nest with hints 4 (outer) and 8 (inner)
const nestedSrc = `
func nested(n) {
entry:
  i = const 0
  one = const 1
  br ohead
ohead: !trip 4
  c0 = cmplt i, n
  cbr c0, obody, exit
obody:
  j = const 0
  br ihead
ihead: !trip 8
  c1 = cmplt j, n
  cbr c1, ibody, olatch
ibody:
  j2 = add j, one
  j = mov j2
  br ihead
olatch:
  i2 = add i, one
  i = mov i2
  br ohead
exit:
  ret i
}`

func TestRPODiamond(t *testing.T) {
	f := mustParse(t, diamondSrc)
	g := Build(f)
	if len(g.RPO) != 4 {
		t.Fatalf("len(RPO) = %d, want 4", len(g.RPO))
	}
	if g.RPO[0].Name != "entry" {
		t.Errorf("RPO[0] = %s, want entry", g.RPO[0].Name)
	}
	pos := func(name string) int { return g.RPOPos(f.BlockNamed(name)) }
	if !(pos("entry") < pos("left") && pos("entry") < pos("right")) {
		t.Error("entry must precede branches in RPO")
	}
	if !(pos("left") < pos("join") && pos("right") < pos("join")) {
		t.Error("branches must precede join in RPO")
	}
	for _, b := range f.Blocks {
		if !g.Reachable(b) {
			t.Errorf("block %s unreachable", b.Name)
		}
	}
}

func TestRPOUnreachable(t *testing.T) {
	f := ir.NewFunc("f")
	entry := f.NewBlock("entry")
	ir.NewBuilder(f, entry).Ret()
	orphan := f.NewBlock("orphan")
	ir.NewBuilder(f, orphan).Ret()
	g := Build(f)
	if g.Reachable(orphan) {
		t.Error("orphan reported reachable")
	}
	if g.RPOPos(orphan) != -1 {
		t.Errorf("RPOPos(orphan) = %d, want -1", g.RPOPos(orphan))
	}
	if len(g.RPO) != 1 {
		t.Errorf("len(RPO) = %d, want 1", len(g.RPO))
	}
}

func TestDominatorsDiamond(t *testing.T) {
	f := mustParse(t, diamondSrc)
	g := Build(f)
	d := Dominators(g)
	blk := f.BlockNamed
	if d.Idom(blk("entry")) != blk("entry") {
		t.Error("entry idom must be itself")
	}
	for _, name := range []string{"left", "right", "join"} {
		if d.Idom(blk(name)) != blk("entry") {
			t.Errorf("idom(%s) = %v, want entry", name, d.Idom(blk(name)))
		}
	}
	if !d.Dominates(blk("entry"), blk("join")) {
		t.Error("entry must dominate join")
	}
	if d.Dominates(blk("left"), blk("join")) {
		t.Error("left must not dominate join")
	}
	if !d.Dominates(blk("join"), blk("join")) {
		t.Error("dominance must be reflexive")
	}
}

func TestDominatorsLoop(t *testing.T) {
	f := mustParse(t, loopSrc)
	g := Build(f)
	d := Dominators(g)
	blk := f.BlockNamed
	if d.Idom(blk("head")) != blk("entry") {
		t.Errorf("idom(head) = %v", d.Idom(blk("head")))
	}
	if d.Idom(blk("body")) != blk("head") {
		t.Errorf("idom(body) = %v", d.Idom(blk("body")))
	}
	if d.Idom(blk("exit")) != blk("head") {
		t.Errorf("idom(exit) = %v", d.Idom(blk("exit")))
	}
	if !d.Dominates(blk("head"), blk("body")) {
		t.Error("head must dominate body")
	}
	if d.Dominates(blk("body"), blk("head")) {
		t.Error("body must not dominate head")
	}
}

func TestFindLoopsSimple(t *testing.T) {
	f := mustParse(t, loopSrc)
	g := Build(f)
	li := FindLoops(g, Dominators(g), 0)
	if len(li.Loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(li.Loops))
	}
	l := li.Loops[0]
	if l.Header.Name != "head" {
		t.Errorf("header = %s", l.Header.Name)
	}
	if l.Trip != 10 {
		t.Errorf("trip = %d, want 10 (hint)", l.Trip)
	}
	if l.Depth != 1 {
		t.Errorf("depth = %d, want 1", l.Depth)
	}
	if !l.Contains(f.BlockNamed("body")) || !l.Contains(f.BlockNamed("head")) {
		t.Error("loop body must contain head and body")
	}
	if l.Contains(f.BlockNamed("exit")) || l.Contains(f.BlockNamed("entry")) {
		t.Error("loop must not contain entry/exit")
	}
	if li.Depth(f.BlockNamed("body")) != 1 || li.Depth(f.BlockNamed("exit")) != 0 {
		t.Error("Depth wrong")
	}
	if !li.IsBackEdge(f.BlockNamed("body"), f.BlockNamed("head")) {
		t.Error("body->head must be a back edge")
	}
	if li.IsBackEdge(f.BlockNamed("entry"), f.BlockNamed("head")) {
		t.Error("entry->head must not be a back edge")
	}
	if !li.ExitsLoop(f.BlockNamed("head"), f.BlockNamed("exit")) {
		t.Error("head->exit must exit the loop")
	}
}

func TestFindLoopsNested(t *testing.T) {
	f := mustParse(t, nestedSrc)
	g := Build(f)
	li := FindLoops(g, Dominators(g), 0)
	if len(li.Loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(li.Loops))
	}
	outer := li.ByHeader[f.BlockNamed("ohead")]
	inner := li.ByHeader[f.BlockNamed("ihead")]
	if outer == nil || inner == nil {
		t.Fatal("missing loop headers")
	}
	if inner.Parent != outer {
		t.Error("inner loop's parent must be outer loop")
	}
	if outer.Depth != 1 || inner.Depth != 2 {
		t.Errorf("depths = %d, %d; want 1, 2", outer.Depth, inner.Depth)
	}
	if outer.Trip != 4 || inner.Trip != 8 {
		t.Errorf("trips = %d, %d; want 4, 8", outer.Trip, inner.Trip)
	}
	if li.Innermost(f.BlockNamed("ibody")) != inner {
		t.Error("ibody innermost must be inner loop")
	}
	if li.Innermost(f.BlockNamed("obody")) != outer {
		t.Error("obody innermost must be outer loop")
	}
	if len(outer.Children) != 1 || outer.Children[0] != inner {
		t.Error("outer children wrong")
	}
}

func TestFindLoopsDefaultTrip(t *testing.T) {
	src := `
func f(n) {
entry:
  br head
head:
  c = cmplt n, n
  cbr c, head, exit
exit:
  ret
}`
	f := mustParse(t, src)
	g := Build(f)
	li := FindLoops(g, Dominators(g), 0)
	if len(li.Loops) != 1 {
		t.Fatalf("loops = %d", len(li.Loops))
	}
	if li.Loops[0].Trip != DefaultTrip {
		t.Errorf("trip = %d, want default %d", li.Loops[0].Trip, DefaultTrip)
	}
	li2 := FindLoops(g, Dominators(g), 25)
	if li2.Loops[0].Trip != 25 {
		t.Errorf("trip = %d, want 25", li2.Loops[0].Trip)
	}
}

func TestFreqDiamond(t *testing.T) {
	f := mustParse(t, diamondSrc)
	g := Build(f)
	li := FindLoops(g, Dominators(g), 0)
	fr := EstimateFreq(g, li)
	blk := f.BlockNamed
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-9 }
	if !approx(fr.BlockFreq(blk("entry")), 1) {
		t.Errorf("freq(entry) = %g", fr.BlockFreq(blk("entry")))
	}
	if !approx(fr.BlockFreq(blk("left")), 0.5) || !approx(fr.BlockFreq(blk("right")), 0.5) {
		t.Errorf("branch freqs = %g, %g; want 0.5 each",
			fr.BlockFreq(blk("left")), fr.BlockFreq(blk("right")))
	}
	if !approx(fr.BlockFreq(blk("join")), 1) {
		t.Errorf("freq(join) = %g, want 1", fr.BlockFreq(blk("join")))
	}
	if !approx(fr.EdgeFreq(blk("entry"), blk("left")), 0.5) {
		t.Errorf("edge freq entry->left = %g", fr.EdgeFreq(blk("entry"), blk("left")))
	}
}

func TestFreqLoop(t *testing.T) {
	f := mustParse(t, loopSrc)
	g := Build(f)
	li := FindLoops(g, Dominators(g), 0)
	fr := EstimateFreq(g, li)
	blk := f.BlockNamed
	// trip = 10: head executes 11 times, body 10, exit 1.
	if got := fr.BlockFreq(blk("head")); math.Abs(got-11) > 1e-6 {
		t.Errorf("freq(head) = %g, want 11", got)
	}
	if got := fr.BlockFreq(blk("body")); math.Abs(got-10) > 1e-6 {
		t.Errorf("freq(body) = %g, want 10", got)
	}
	if got := fr.BlockFreq(blk("exit")); math.Abs(got-1) > 1e-6 {
		t.Errorf("freq(exit) = %g, want 1", got)
	}
}

func TestFreqNested(t *testing.T) {
	f := mustParse(t, nestedSrc)
	g := Build(f)
	li := FindLoops(g, Dominators(g), 0)
	fr := EstimateFreq(g, li)
	blk := f.BlockNamed
	// outer trip 4, inner trip 8: ibody ≈ 4*8 = 32.
	if got := fr.BlockFreq(blk("ibody")); math.Abs(got-32) > 1e-3 {
		t.Errorf("freq(ibody) = %g, want 32", got)
	}
	if got := fr.BlockFreq(blk("obody")); math.Abs(got-4) > 1e-3 {
		t.Errorf("freq(obody) = %g, want 4", got)
	}
}

func TestFreqProbsSumToOne(t *testing.T) {
	for _, src := range []string{diamondSrc, loopSrc, nestedSrc} {
		f := mustParse(t, src)
		g := Build(f)
		li := FindLoops(g, Dominators(g), 0)
		fr := EstimateFreq(g, li)
		for _, b := range g.RPO {
			succs := b.Succs()
			if len(succs) == 0 {
				continue
			}
			sum := 0.0
			for _, s := range succs {
				sum += fr.Prob[Edge(b, s)]
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("%s: block %s out-probabilities sum to %g", f.Name, b.Name, sum)
			}
		}
	}
}

func TestTotalWeightedCycles(t *testing.T) {
	f := mustParse(t, loopSrc)
	g := Build(f)
	li := FindLoops(g, Dominators(g), 0)
	fr := EstimateFreq(g, li)
	got := fr.TotalWeightedCycles(f)
	// entry: const+const+br = 3 cycles ×1; head: cmp+cbr = 2 ×11;
	// body: add+mov+br = 3 ×10; exit: ret = 1 ×1.
	want := 3.0 + 22.0 + 30.0 + 1.0
	if math.Abs(got-want) > 1e-3 {
		t.Errorf("TotalWeightedCycles = %g, want %g", got, want)
	}
}

func TestEdgeKeyString(t *testing.T) {
	e := EdgeKey{From: 1, To: 2}
	if e.String() != "1->2" {
		t.Errorf("String = %q", e.String())
	}
}

func TestFreqIrreducible(t *testing.T) {
	// Two blocks branching into each other from the entry: no natural
	// loop headers dominate their tails, but the solver must still
	// terminate and produce finite frequencies.
	src := `
func irr(p) {
entry:
  c = cmplt p, p
  cbr c, a, b
a:
  ca = cmplt p, p
  cbr ca, b, exit
b:
  cb = cmplt p, p
  cbr cb, a, exit
exit:
  ret
}`
	f := mustParse(t, src)
	g := Build(f)
	li := FindLoops(g, Dominators(g), 0)
	fr := EstimateFreq(g, li)
	for _, b := range g.RPO {
		v := fr.BlockFreq(b)
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Errorf("freq(%s) = %g", b.Name, v)
		}
	}
	if fr.BlockFreq(f.BlockNamed("exit")) <= 0 {
		t.Error("exit frequency must be positive")
	}
}
