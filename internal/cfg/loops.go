package cfg

import (
	"sort"

	"thermflow/internal/ir"
)

// DefaultTrip is the loop iteration count assumed when a loop has no
// !trip hint. Ten iterations is the traditional static-profile guess.
const DefaultTrip = 10

// Loop is a natural loop: a header plus the set of blocks that can
// reach one of its back edges without leaving the loop.
type Loop struct {
	// Header is the loop entry block (target of the back edges).
	Header *ir.Block
	// Blocks is the loop body including the header.
	Blocks map[*ir.Block]bool
	// Parent is the innermost enclosing loop, or nil.
	Parent *Loop
	// Children are the loops directly nested inside this one.
	Children []*Loop
	// Depth is the nesting depth; outermost loops have depth 1.
	Depth int
	// Trip is the resolved iteration count estimate (hint or default).
	Trip int
}

// Contains reports whether block b belongs to the loop body.
func (l *Loop) Contains(b *ir.Block) bool { return l.Blocks[b] }

// LoopInfo holds all natural loops of a CFG and per-block containment.
type LoopInfo struct {
	// Loops lists every natural loop, outermost first.
	Loops []*Loop
	// ByHeader maps a header block to its loop.
	ByHeader map[*ir.Block]*Loop

	innermost []*Loop // per block index
}

// FindLoops detects natural loops using dominator information. Back
// edges t->h where h dominates t define loops; loops sharing a header
// are merged. Trip counts come from the function's TripCount hints,
// falling back to defaultTrip (or DefaultTrip when <= 0).
func FindLoops(g *Graph, dom *DomTree, defaultTrip int) *LoopInfo {
	if defaultTrip <= 0 {
		defaultTrip = DefaultTrip
	}
	li := &LoopInfo{
		ByHeader:  make(map[*ir.Block]*Loop),
		innermost: make([]*Loop, g.NumBlocks()),
	}
	for _, b := range g.RPO {
		for _, s := range b.Succs() {
			if !g.Reachable(s) || !dom.Dominates(s, b) {
				continue
			}
			// b->s is a back edge with header s.
			l := li.ByHeader[s]
			if l == nil {
				l = &Loop{Header: s, Blocks: map[*ir.Block]bool{s: true}}
				li.ByHeader[s] = l
				li.Loops = append(li.Loops, l)
			}
			l.collect(g, b)
		}
	}
	// Resolve trip counts.
	for _, l := range li.Loops {
		if n, ok := g.Fn.TripCount[l.Header.Name]; ok && n > 0 {
			l.Trip = n
		} else {
			l.Trip = defaultTrip
		}
	}
	li.nest(g)
	return li
}

// collect walks backwards from the back-edge source, adding blocks until
// the header is reached.
func (l *Loop) collect(g *Graph, tail *ir.Block) {
	if l.Blocks[tail] {
		return
	}
	l.Blocks[tail] = true
	work := []*ir.Block{tail}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, p := range g.Preds[b.Index] {
			if g.Reachable(p) && !l.Blocks[p] {
				l.Blocks[p] = true
				work = append(work, p)
			}
		}
	}
}

// nest derives the parent/child relations, depths and innermost-loop
// table. A loop is a child of the smallest other loop strictly
// containing its header.
func (li *LoopInfo) nest(g *Graph) {
	// Sort loops by body size ascending so the first container found is
	// the smallest.
	bySize := make([]*Loop, len(li.Loops))
	copy(bySize, li.Loops)
	sort.SliceStable(bySize, func(i, j int) bool {
		return len(bySize[i].Blocks) < len(bySize[j].Blocks)
	})
	for i, l := range bySize {
		for _, outer := range bySize[i+1:] {
			if outer != l && outer.Blocks[l.Header] {
				l.Parent = outer
				outer.Children = append(outer.Children, l)
				break
			}
		}
	}
	var setDepth func(l *Loop, depth int)
	setDepth = func(l *Loop, depth int) {
		l.Depth = depth
		for _, c := range l.Children {
			setDepth(c, depth+1)
		}
	}
	for _, l := range li.Loops {
		if l.Parent == nil {
			setDepth(l, 1)
		}
	}
	// innermost: smallest loop containing each block.
	for _, l := range bySize {
		for b := range l.Blocks {
			if li.innermost[b.Index] == nil {
				li.innermost[b.Index] = l
			}
		}
	}
	// Keep Loops ordered outermost-first for stable reports.
	sort.SliceStable(li.Loops, func(i, j int) bool {
		if li.Loops[i].Depth != li.Loops[j].Depth {
			return li.Loops[i].Depth < li.Loops[j].Depth
		}
		return li.Loops[i].Header.Index < li.Loops[j].Header.Index
	})
}

// Innermost returns the innermost loop containing b, or nil.
func (li *LoopInfo) Innermost(b *ir.Block) *Loop { return li.innermost[b.Index] }

// Depth returns the loop nesting depth of block b (0 = not in a loop).
func (li *LoopInfo) Depth(b *ir.Block) int {
	if l := li.innermost[b.Index]; l != nil {
		return l.Depth
	}
	return 0
}

// IsBackEdge reports whether p->s is a back edge of some natural loop
// (s is a loop header whose loop contains p).
func (li *LoopInfo) IsBackEdge(p, s *ir.Block) bool {
	l := li.ByHeader[s]
	return l != nil && l.Blocks[p]
}

// ExitsLoop reports whether the edge p->s leaves the innermost loop
// containing p.
func (li *LoopInfo) ExitsLoop(p, s *ir.Block) bool {
	l := li.innermost[p.Index]
	return l != nil && !l.Blocks[s]
}
