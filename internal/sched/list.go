package sched

import (
	"thermflow/internal/ir"
	"thermflow/internal/regalloc"
)

// Scorer ranks ready instructions during list scheduling. Score is
// queried for every ready instruction each issue step; Issued is called
// once when an instruction is actually picked, letting stateful
// policies (e.g. thermal recency) track the issue history.
type Scorer interface {
	// Score returns the priority of the instruction at original block
	// position pos when issuing at the given cycle; higher runs first.
	Score(in *ir.Instr, pos int, cycle int64) float64
	// Issued notifies the scorer that the instruction was picked.
	Issued(in *ir.Instr, pos int, cycle int64)
}

// ScorerBuilder constructs the per-block scorer from the block and its
// dependence DAG.
type ScorerBuilder func(b *ir.Block, d *DAG) Scorer

// Schedule reorders the instructions of every block of fn by list
// scheduling with the given scorer, preserving all dependences (value,
// memory and — when alloc is non-nil — physical register). fn is
// mutated in place; callers wanting to keep the original should Clone
// first. Returns the number of instructions that changed position.
func Schedule(fn *ir.Function, alloc *regalloc.Allocation, build ScorerBuilder) int {
	moved := 0
	for _, b := range fn.Blocks {
		moved += scheduleBlock(b, alloc, build)
	}
	fn.Renumber()
	return moved
}

func scheduleBlock(b *ir.Block, alloc *regalloc.Allocation, build ScorerBuilder) int {
	n := len(b.Instrs)
	if n <= 2 {
		return 0
	}
	d := BuildDAG(b, alloc)
	scorer := build(b, d)
	ready := make([]int, 0, n)
	npred := make([]int, n)
	copy(npred, d.NumPreds)
	for i := 0; i < n; i++ {
		if npred[i] == 0 {
			ready = append(ready, i)
		}
	}
	order := make([]int, 0, n)
	var cycle int64
	for len(order) < n {
		if len(ready) == 0 {
			// A DAG cannot starve; defensive halt keeps the block as is.
			return 0
		}
		best := 0
		bestScore := scorer.Score(b.Instrs[ready[0]], ready[0], cycle)
		for k := 1; k < len(ready); k++ {
			score := scorer.Score(b.Instrs[ready[k]], ready[k], cycle)
			// Ties break toward original order for stability.
			if score > bestScore || (score == bestScore && ready[k] < ready[best]) {
				best, bestScore = k, score
			}
		}
		pick := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		order = append(order, pick)
		scorer.Issued(b.Instrs[pick], pick, cycle)
		cycle += int64(b.Instrs[pick].EffLatency())
		for _, s := range d.Succs[pick] {
			npred[s]--
			if npred[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	changed := 0
	newInstrs := make([]*ir.Instr, n)
	for newPos, oldPos := range order {
		newInstrs[newPos] = b.Instrs[oldPos]
		if newPos != oldPos {
			changed++
		}
	}
	copy(b.Instrs, newInstrs)
	return changed
}

// cpScorer is the classic latency-weighted critical-path priority.
type cpScorer struct{ cp []int }

func (s *cpScorer) Score(_ *ir.Instr, pos int, _ int64) float64 { return float64(s.cp[pos]) }
func (s *cpScorer) Issued(*ir.Instr, int, int64)                {}

// CriticalPath builds the classic priority: instructions on the longest
// dependence path first.
func CriticalPath() ScorerBuilder {
	return func(_ *ir.Block, d *DAG) Scorer {
		return &cpScorer{cp: d.CriticalPath()}
	}
}
