package sched

import (
	"testing"

	"thermflow/internal/ir"
	"thermflow/internal/regalloc"
	"thermflow/internal/sim"
)

func mustParse(t *testing.T, src string) *ir.Function {
	t.Helper()
	f, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

const straightSrc = `
func s(p) {
entry:
  a = const 1
  b = const 2
  c = add a, b
  d = mul a, b
  e = add c, d
  store e, p, 0
  x = load p, 8
  y = add x, e
  ret y
}`

func TestBuildDAGRespectsValueDeps(t *testing.T) {
	f := mustParse(t, straightSrc)
	b := f.Entry
	d := BuildDAG(b, nil)
	// c = add a,b depends on both consts.
	hasEdge := func(from, to int) bool {
		for _, s := range d.Succs[from] {
			if s == to {
				return true
			}
		}
		return false
	}
	if !hasEdge(0, 2) || !hasEdge(1, 2) {
		t.Error("RAW edges to add missing")
	}
	// e depends on c and d.
	if !hasEdge(2, 4) || !hasEdge(3, 4) {
		t.Error("RAW edges to e missing")
	}
	// store then load: load waits for store.
	if !hasEdge(5, 6) {
		t.Error("store->load dependence missing")
	}
	// Terminator depends on everything.
	last := len(b.Instrs) - 1
	for i := 0; i < last; i++ {
		if !hasEdge(i, last) {
			t.Errorf("terminator does not depend on instr %d", i)
		}
	}
}

func TestBuildDAGWARWAW(t *testing.T) {
	src := `
func f() {
entry:
  a = const 1
  b = add a, a
  a = const 2
  c = add a, a
  ret c
}`
	f := mustParse(t, src)
	d := BuildDAG(f.Entry, nil)
	hasEdge := func(from, to int) bool {
		for _, s := range d.Succs[from] {
			if s == to {
				return true
			}
		}
		return false
	}
	if !hasEdge(0, 2) {
		t.Error("WAW edge between the two defs of a missing")
	}
	if !hasEdge(1, 2) {
		t.Error("WAR edge from use of a to its redefinition missing")
	}
}

func TestCriticalPathLengths(t *testing.T) {
	f := mustParse(t, straightSrc)
	d := BuildDAG(f.Entry, nil)
	cp := d.CriticalPath()
	// Every instruction's CP >= its own latency.
	for i, in := range f.Entry.Instrs {
		if cp[i] < in.EffLatency() {
			t.Errorf("cp[%d] = %d < latency %d", i, cp[i], in.EffLatency())
		}
	}
	// The first const feeds the longest chain; its CP must exceed the
	// terminator's.
	if cp[0] <= cp[len(cp)-1] {
		t.Errorf("cp[0] = %d not greater than terminator cp %d", cp[0], cp[len(cp)-1])
	}
}

func TestScheduleSemanticsPreserved(t *testing.T) {
	f := mustParse(t, straightSrc)
	before, err := sim.Run(f, sim.Options{Args: []int64{100}, Mem: sim.Memory{108: 7}})
	if err != nil {
		t.Fatal(err)
	}
	g := f.Clone()
	Schedule(g, nil, CriticalPath())
	if err := ir.Verify(g); err != nil {
		t.Fatalf("scheduled function ill-formed: %v", err)
	}
	after, err := sim.Run(g, sim.Options{Args: []int64{100}, Mem: sim.Memory{108: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if before.Ret != after.Ret {
		t.Errorf("scheduling changed result: %d -> %d", before.Ret, after.Ret)
	}
}

func TestScheduleWithAllocationRegisterSafe(t *testing.T) {
	// With only 3 registers, distinct values share registers; physical
	// dependences must prevent reordering that would corrupt them.
	src := `
func f(p) {
entry:
  a = const 1
  b = const 2
  c = add a, b
  d = add c, b
  e = add d, c
  g = add e, d
  ret g
}`
	f := mustParse(t, src)
	a, err := regalloc.Allocate(f, regalloc.Config{NumRegs: 3, Policy: regalloc.FirstFree})
	if err != nil {
		t.Fatal(err)
	}
	before, err := sim.Run(a.Fn, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Schedule the allocated function in place (clone to keep a.Fn).
	g := a.Fn.Clone()
	Schedule(g, a, Thermal(ThermalConfig{Alloc: a}))
	after, err := sim.Run(g, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if before.Ret != after.Ret {
		t.Errorf("thermal scheduling corrupted shared registers: %d -> %d",
			before.Ret, after.Ret)
	}
}

func TestThermalSchedulingSpreadsAccesses(t *testing.T) {
	// Independent pairs all touching the same registers vs spread: the
	// thermal scorer should interleave accesses to distinct registers.
	src := `
func f() {
entry:
  a = const 1
  a1 = add a, a
  a2 = add a1, a1
  b = const 2
  b1 = add b, b
  b2 = add b1, b1
  r = add a2, b2
  ret r
}`
	f := mustParse(t, src)
	// RoundRobin keeps the two chains on distinct registers; FirstFree
	// would share one register between them, and the physical-register
	// dependences would then (correctly) forbid interleaving.
	a, err := regalloc.Allocate(f, regalloc.Config{NumRegs: 64, Policy: regalloc.RoundRobin})
	if err != nil {
		t.Fatal(err)
	}
	g := a.Fn.Clone()
	moved := Schedule(g, a, Thermal(ThermalConfig{Alloc: a, RecencyWindow: 4, RecencyWeight: 100}))
	if moved == 0 {
		t.Error("thermal scheduler changed nothing on an interleavable block")
	}
	// Semantics preserved.
	before, _ := sim.Run(a.Fn, sim.Options{})
	after, err := sim.Run(g, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if before.Ret != after.Ret {
		t.Errorf("result changed: %d -> %d", before.Ret, after.Ret)
	}
}

func TestThermalHeatBias(t *testing.T) {
	// Two independent chains; the one on "hot" registers should issue
	// later under a strong heat bias.
	src := `
func f() {
entry:
  a = const 1
  b = const 2
  c = add a, a
  d = add b, b
  r = add c, d
  ret r
}`
	f := mustParse(t, src)
	a, err := regalloc.Allocate(f, regalloc.Config{NumRegs: 64, Policy: regalloc.FirstFree})
	if err != nil {
		t.Fatal(err)
	}
	heat := make([]float64, 64)
	regOfA := a.Reg(a.Fn.ValueNamed("a"))
	heat[regOfA] = 100 // register of value a is scorching
	g := a.Fn.Clone()
	Schedule(g, a, Thermal(ThermalConfig{Alloc: a, RegHeat: heat, HeatWeight: 1000}))
	// The const defining b (cool) should now precede the const defining
	// a (hot).
	posA, posB := -1, -1
	for i, in := range g.Entry.Instrs {
		if in.Def != nil && in.Def.Name == "a" {
			posA = i
		}
		if in.Def != nil && in.Def.Name == "b" {
			posB = i
		}
	}
	if posA < 0 || posB < 0 {
		t.Fatal("defs not found")
	}
	if posA < posB {
		t.Errorf("hot-register chain issued first (a at %d, b at %d)", posA, posB)
	}
}

func TestScheduleSmallBlocksUntouched(t *testing.T) {
	f := mustParse(t, "func f() {\nentry:\n  a = const 1\n  ret a\n}")
	if moved := Schedule(f, nil, CriticalPath()); moved != 0 {
		t.Errorf("2-instruction block reordered (%d moves)", moved)
	}
}

func TestLoadsMayCommute(t *testing.T) {
	src := `
func f(p) {
entry:
  x = load p, 0
  y = load p, 8
  s = add x, y
  ret s
}`
	f := mustParse(t, src)
	d := BuildDAG(f.Entry, nil)
	for _, s := range d.Succs[0] {
		if s == 1 {
			t.Error("load-load dependence recorded; loads should commute")
		}
	}
}

func TestNormalize(t *testing.T) {
	out := normalize([]float64{2, 4, 6})
	if out[0] != 0 || out[2] != 1 || out[1] != 0.5 {
		t.Errorf("normalize = %v", out)
	}
	flat := normalize([]float64{3, 3})
	if flat[0] != 0 || flat[1] != 0 {
		t.Errorf("flat normalize = %v", flat)
	}
}
