package sched

import (
	"thermflow/internal/ir"
	"thermflow/internal/regalloc"
)

// ThermalConfig tunes the thermal-aware scheduling priority.
type ThermalConfig struct {
	// Alloc supplies the value-to-register mapping (required).
	Alloc *regalloc.Allocation
	// RegHeat optionally provides per-register heat estimates from a
	// thermal analysis; instructions touching hotter registers are
	// deferred.
	RegHeat []float64
	// RecencyWindow is the cycle window within which re-touching the
	// same register is penalized (0 = 8).
	RecencyWindow int64
	// RecencyWeight scales the back-to-back penalty (0 = 10).
	RecencyWeight float64
	// HeatWeight scales the static heat penalty (0 = 2).
	HeatWeight float64
}

// Thermal builds the paper's §4 scheduling priority: keep the critical
// path as the base heuristic but penalize instructions that would
// access a register touched within the last RecencyWindow issue cycles
// (spreading accesses in time) or whose register is predicted hot.
func Thermal(cfgT ThermalConfig) ScorerBuilder {
	window := cfgT.RecencyWindow
	if window <= 0 {
		window = 8
	}
	recW := cfgT.RecencyWeight
	if recW == 0 {
		recW = 10
	}
	heatW := cfgT.HeatWeight
	if heatW == 0 {
		heatW = 2
	}
	var heat []float64
	if len(cfgT.RegHeat) > 0 {
		heat = normalize(cfgT.RegHeat)
	}
	return func(b *ir.Block, d *DAG) Scorer {
		return &thermalScorer{
			cfg:       cfgT,
			cp:        d.CriticalPath(),
			window:    window,
			recW:      recW,
			heatW:     heatW,
			heat:      heat,
			lastTouch: map[int]int64{},
		}
	}
}

func normalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	min, max := xs[0], xs[0]
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	if span := max - min; span > 0 {
		for i, x := range xs {
			out[i] = (x - min) / span
		}
	}
	return out
}

type thermalScorer struct {
	cfg       ThermalConfig
	cp        []int
	window    int64
	recW      float64
	heatW     float64
	heat      []float64
	lastTouch map[int]int64 // register -> last issue cycle end
}

func (s *thermalScorer) Score(in *ir.Instr, pos int, cycle int64) float64 {
	score := float64(s.cp[pos])
	for _, v := range in.AccessedValues() {
		r := s.cfg.Alloc.RegOf[v.ID]
		if r < 0 {
			continue
		}
		if last, ok := s.lastTouch[r]; ok && cycle-last < s.window {
			score -= s.recW * float64(s.window-(cycle-last)) / float64(s.window)
		}
		if s.heat != nil && r < len(s.heat) {
			score -= s.heatW * s.heat[r]
		}
	}
	return score
}

func (s *thermalScorer) Issued(in *ir.Instr, _ int, cycle int64) {
	end := cycle + int64(in.EffLatency())
	for _, v := range in.AccessedValues() {
		if r := s.cfg.Alloc.RegOf[v.ID]; r >= 0 {
			s.lastTouch[r] = end
		}
	}
}
