// Package sched implements intra-block instruction scheduling: a
// dependence DAG builder and a list scheduler with pluggable priority,
// including the thermal-aware priority of the paper's §4 ("spreading
// accesses to registers in time, ... using instruction scheduling, to
// avoid consecutive accesses to already hot registers").
package sched

import (
	"thermflow/internal/ir"
	"thermflow/internal/regalloc"
)

// DAG is the dependence graph of one basic block: edges point from an
// instruction to the instructions that must wait for it.
type DAG struct {
	// Block is the subject block.
	Block *ir.Block
	// Succs and Preds are adjacency lists over instruction positions
	// within the block (not IDs).
	Succs, Preds [][]int
	// NumPreds is the unsatisfied-predecessor count used by schedulers.
	NumPreds []int
}

// BuildDAG constructs the dependence DAG of block b. Value dependences
// (RAW, WAR, WAW) and memory dependences (store-load, load-store,
// store-store; loads commute) are respected. When alloc is non-nil,
// physical-register dependences are added too, so reordering cannot
// corrupt an existing register assignment in which distinct values
// share a register. The terminator depends on every other instruction.
func BuildDAG(b *ir.Block, alloc *regalloc.Allocation) *DAG {
	n := len(b.Instrs)
	d := &DAG{
		Block:    b,
		Succs:    make([][]int, n),
		Preds:    make([][]int, n),
		NumPreds: make([]int, n),
	}
	edge := func(from, to int) {
		if from == to {
			return
		}
		for _, s := range d.Succs[from] {
			if s == to {
				return
			}
		}
		d.Succs[from] = append(d.Succs[from], to)
		d.Preds[to] = append(d.Preds[to], from)
		d.NumPreds[to]++
	}

	reg := func(v *ir.Value) int {
		if alloc == nil {
			return -1
		}
		return alloc.RegOf[v.ID]
	}

	lastDefOfValue := map[*ir.Value]int{}
	lastUsesOfValue := map[*ir.Value][]int{}
	lastDefOfReg := map[int]int{}
	lastUsesOfReg := map[int][]int{}
	lastStore := -1
	var loadsSinceStore []int

	for i, in := range b.Instrs {
		// Value dependences.
		for _, u := range in.Uses {
			if di, ok := lastDefOfValue[u]; ok {
				edge(di, i) // RAW
			}
			if r := reg(u); r >= 0 {
				if di, ok := lastDefOfReg[r]; ok {
					edge(di, i) // RAW through the physical register
				}
			}
		}
		if in.Def != nil {
			if di, ok := lastDefOfValue[in.Def]; ok {
				edge(di, i) // WAW
			}
			for _, ui := range lastUsesOfValue[in.Def] {
				edge(ui, i) // WAR
			}
			if r := reg(in.Def); r >= 0 {
				if di, ok := lastDefOfReg[r]; ok {
					edge(di, i)
				}
				for _, ui := range lastUsesOfReg[r] {
					edge(ui, i)
				}
			}
		}
		// Memory dependences. Calls are full barriers: the callee may
		// read or write anything.
		switch in.Op {
		case ir.Load:
			if lastStore >= 0 {
				edge(lastStore, i)
			}
			loadsSinceStore = append(loadsSinceStore, i)
		case ir.Store, ir.Call:
			if lastStore >= 0 {
				edge(lastStore, i)
			}
			for _, li := range loadsSinceStore {
				edge(li, i)
			}
			lastStore = i
			loadsSinceStore = nil
		}
		// Terminator waits for everything.
		if in.IsTerminator() {
			for j := 0; j < i; j++ {
				edge(j, i)
			}
		}
		// Update trackers.
		for _, u := range in.Uses {
			lastUsesOfValue[u] = append(lastUsesOfValue[u], i)
			if r := reg(u); r >= 0 {
				lastUsesOfReg[r] = append(lastUsesOfReg[r], i)
			}
		}
		if in.Def != nil {
			lastDefOfValue[in.Def] = i
			lastUsesOfValue[in.Def] = nil
			if r := reg(in.Def); r >= 0 {
				lastDefOfReg[r] = i
				lastUsesOfReg[r] = nil
			}
		}
	}
	return d
}

// CriticalPath returns, for each instruction position, the length in
// cycles of the longest dependence path from it to the end of the
// block (inclusive of its own latency).
func (d *DAG) CriticalPath() []int {
	n := len(d.Block.Instrs)
	cp := make([]int, n)
	for i := n - 1; i >= 0; i-- {
		best := 0
		for _, s := range d.Succs[i] {
			if cp[s] > best {
				best = cp[s]
			}
		}
		cp[i] = best + d.Block.Instrs[i].EffLatency()
	}
	return cp
}
