package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefault65nmValid(t *testing.T) {
	tech := Default65nm()
	if err := tech.Validate(); err != nil {
		t.Fatalf("default tech invalid: %v", err)
	}
	if tech.Name == "" {
		t.Error("default tech unnamed")
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	mutations := []func(*Tech){
		func(c *Tech) { c.EnergyRead = 0 },
		func(c *Tech) { c.EnergyWrite = -1 },
		func(c *Tech) { c.CycleTime = 0 },
		func(c *Tech) { c.CellEdge = math.NaN() },
		func(c *Tech) { c.Thickness = math.Inf(1) },
		func(c *Tech) { c.VolHeatCap = 0 },
		func(c *Tech) { c.Conductivity = -5 },
		func(c *Tech) { c.PackageR = 0 },
		func(c *Tech) { c.DieArea = 0 },
		func(c *Tech) { c.LeakBase = -1 },
		func(c *Tech) { c.LeakBeta = -0.1 },
		func(c *Tech) { c.T0 = 0 },
		func(c *Tech) { c.TAmbient = -3 },
	}
	for i, mut := range mutations {
		tech := Default65nm()
		mut(&tech)
		if err := tech.Validate(); err == nil {
			t.Errorf("mutation %d not caught by Validate", i)
		}
	}
}

func TestAccessEnergy(t *testing.T) {
	tech := Default65nm()
	if tech.AccessEnergy(false) != tech.EnergyRead {
		t.Error("read energy wrong")
	}
	if tech.AccessEnergy(true) != tech.EnergyWrite {
		t.Error("write energy wrong")
	}
	if tech.EnergyWrite <= tech.EnergyRead {
		t.Error("writes should cost more than reads")
	}
}

func TestLeakageMonotone(t *testing.T) {
	tech := Default65nm()
	if got := tech.Leakage(tech.T0); math.Abs(got-tech.LeakBase) > 1e-12 {
		t.Errorf("Leakage(T0) = %g, want LeakBase %g", got, tech.LeakBase)
	}
	// Property: leakage increases with temperature.
	f := func(dt1, dt2 float64) bool {
		d1 := math.Mod(math.Abs(dt1), 100)
		d2 := math.Mod(math.Abs(dt2), 100)
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		return tech.Leakage(tech.T0+d1) <= tech.Leakage(tech.T0+d2)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Doubling check: +28 K ≈ 2×.
	ratio := tech.Leakage(tech.T0+28) / tech.Leakage(tech.T0)
	if ratio < 1.8 || ratio > 2.3 {
		t.Errorf("leakage +28K ratio = %g, want ~2", ratio)
	}
}

func TestDerivedRCValues(t *testing.T) {
	tech := Default65nm()
	// Heat capacity: 1.75e6 · 2.5e-9 · 1e-4 = 4.375e-7 J/K.
	if c := tech.CellHeatCap(); math.Abs(c-4.375e-7) > 1e-12 {
		t.Errorf("CellHeatCap = %g, want 4.375e-7", c)
	}
	// Lateral conductance: 0.6 · 1e-4 = 6e-5 W/K.
	if g := tech.LateralG(); math.Abs(g-6e-5) > 1e-12 {
		t.Errorf("LateralG = %g, want 6e-5", g)
	}
	// Vertical conductance: cell R = 0.5 · 1e-4/2.5e-9 = 2e4 K/W.
	if g := tech.VerticalG(); math.Abs(g-5e-5) > 1e-12 {
		t.Errorf("VerticalG = %g, want 5e-5", g)
	}
	// Access power: 3 pJ / 1 ns = 3 mW.
	if p := tech.AccessPower(false); math.Abs(p-3e-3) > 1e-12 {
		t.Errorf("AccessPower = %g, want 3e-3", p)
	}
	if tech.CellArea() != tech.CellEdge*tech.CellEdge {
		t.Error("CellArea inconsistent")
	}
	if d := tech.PowerDensity(1e-3); math.Abs(d-4e5) > 1 {
		t.Errorf("PowerDensity(1mW) = %g W/m², want 4e5", d)
	}
}

// The lateral/vertical conductance ratio sets the thermal spreading
// length λ = sqrt(GLat/GVert) in cells; the intra-RF gradients of the
// motivating work imply λ ≈ 1.
func TestSpreadingLengthNearOneCell(t *testing.T) {
	tech := Default65nm()
	lambda := math.Sqrt(tech.LateralG() / tech.VerticalG())
	if lambda < 0.5 || lambda > 3 {
		t.Errorf("spreading length = %g cells, want ~1", lambda)
	}
}

// The sustained-access temperature rise implied by the defaults should
// land in the tens of kelvin — the hot-spot magnitude reported for
// register files in the literature the paper builds on [1,2].
func TestHotspotMagnitudePlausible(t *testing.T) {
	tech := Default65nm()
	// One register accessed every cycle, vertical path only (upper
	// bound, no lateral spreading).
	dT := tech.AccessPower(false) / tech.VerticalG()
	if dT < 10 || dT > 100 {
		t.Errorf("isolated sustained-access ΔT = %g K, want 10–100 K", dT)
	}
}
