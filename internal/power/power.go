// Package power centralizes the technology coefficients linking
// instruction-level activity to register-file power: per-access dynamic
// energy, cycle time, and temperature-dependent leakage. The paper's §4
// describes the analysis as relating "the technology coefficients of
// logic activity and peak power found in the thermal models [1, 5] ...
// in an analytical way to the high-level information of instruction
// execution and variables assignment"; Tech is that set of
// coefficients.
package power

import (
	"fmt"
	"math"
)

// Tech bundles the technology and package parameters of the modelled
// register file. All quantities are SI.
type Tech struct {
	// Name labels the parameter set in reports.
	Name string

	// EnergyRead and EnergyWrite are the dynamic energies of one read
	// or write access to one register, in joules.
	EnergyRead, EnergyWrite float64
	// CycleTime is the processor cycle time in seconds.
	CycleTime float64

	// LeakBase is the leakage power of one cell at temperature T0, in
	// watts. LeakBeta is the exponential temperature coefficient in
	// 1/K: P_leak(T) = LeakBase · exp(LeakBeta · (T − T0)).
	LeakBase, LeakBeta float64
	// T0 is the leakage reference temperature in kelvin.
	T0 float64

	// TAmbient is the heat-sink/ambient temperature in kelvin.
	TAmbient float64

	// CellEdge is the register cell edge in metres; Thickness the
	// effective silicon thickness contributing heat capacity.
	CellEdge, Thickness float64
	// VolHeatCap is the volumetric heat capacity of silicon in
	// J/(m³·K); Conductivity its thermal conductivity in W/(m·K).
	VolHeatCap, Conductivity float64
	// PackageR is the junction-to-ambient thermal resistance of the
	// whole die in K/W; DieArea the die area in m² used to scale it to
	// one cell.
	PackageR, DieArea float64
}

// Default65nm returns the parameter set used throughout the
// experiments, representative of a 65 nm-class embedded register file
// at 1 GHz.
//
// Calibration note (see DESIGN.md §4): two values are *effective*
// rather than bulk-physical. Conductivity is the effective lateral
// conductivity at register-cell granularity (bulk silicon's 110 W/mK
// would give a thermal spreading length of ~20 cells, flattening the
// whole file; the RF gradients reported by the papers this work builds
// on [2,3] imply a spreading length near one cell, i.e. an effective
// lateral coupling dominated by the thin active layer and interconnect
// stack). EnergyRead/Write include the per-access wordline/decoder
// overhead of a multi-ported file, not just the bit cells. With these
// defaults a register accessed every cycle sustains ≈60 K above
// ambient in isolation, and the lateral/vertical conductance ratio
// gives a spreading length of ≈1.1 cells — matching the hot-spot
// magnitudes and steep intra-RF gradients of the motivating work.
func Default65nm() Tech {
	return Tech{
		Name:         "65nm-1GHz",
		EnergyRead:   3.0e-12, // 3 pJ incl. port/decoder overhead
		EnergyWrite:  4.0e-12, // 4 pJ
		CycleTime:    1e-9,    // 1 GHz
		LeakBase:     20e-6,   // 20 µW per cell at T0
		LeakBeta:     0.025,   // ~2× leakage per +28 K
		T0:           318.15,  // 45 °C
		TAmbient:     318.15,  // 45 °C heat-sink reference
		CellEdge:     50e-6,   // 50 µm
		Thickness:    100e-6,  // 100 µm effective
		VolHeatCap:   1.75e6,  // J/(m³K)
		Conductivity: 0.6,     // effective lateral W/(mK); see note
		PackageR:     0.5,     // K/W die-level junction-to-ambient
		DieArea:      1e-4,    // 1 cm²
	}
}

// Validate reports the first physically meaningless parameter, or nil.
func (t Tech) Validate() error {
	pos := map[string]float64{
		"EnergyRead":   t.EnergyRead,
		"EnergyWrite":  t.EnergyWrite,
		"CycleTime":    t.CycleTime,
		"T0":           t.T0,
		"TAmbient":     t.TAmbient,
		"CellEdge":     t.CellEdge,
		"Thickness":    t.Thickness,
		"VolHeatCap":   t.VolHeatCap,
		"Conductivity": t.Conductivity,
		"PackageR":     t.PackageR,
		"DieArea":      t.DieArea,
	}
	for name, v := range pos {
		if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("power: %s must be positive, got %g", name, v)
		}
	}
	if t.LeakBase < 0 || t.LeakBeta < 0 {
		return fmt.Errorf("power: leakage parameters must be non-negative")
	}
	return nil
}

// WithCellEdge returns a copy of the parameter set rescaled to a
// different thermal-cell edge: heat capacity and vertical conductance
// follow automatically from the area, and per-cell leakage is scaled by
// the area ratio so total leakage is preserved. Used when the analysis
// runs on a coarsened floorplan.
func (t Tech) WithCellEdge(edge float64) Tech {
	out := t
	ratio := (edge * edge) / (t.CellEdge * t.CellEdge)
	out.CellEdge = edge
	out.LeakBase = t.LeakBase * ratio
	return out
}

// AccessEnergy returns the dynamic energy of one register access.
func (t Tech) AccessEnergy(write bool) float64 {
	if write {
		return t.EnergyWrite
	}
	return t.EnergyRead
}

// Leakage returns the leakage power of one cell at temperature T:
// LeakBase · exp(LeakBeta · (T − T0)).
func (t Tech) Leakage(T float64) float64 {
	return t.LeakBase * math.Exp(t.LeakBeta*(T-t.T0))
}

// CellArea returns the area of one register cell in m².
func (t Tech) CellArea() float64 { return t.CellEdge * t.CellEdge }

// CellHeatCap returns the heat capacity of one cell in J/K.
func (t Tech) CellHeatCap() float64 {
	return t.VolHeatCap * t.CellArea() * t.Thickness
}

// LateralG returns the thermal conductance between two adjacent cells
// in W/K: k·A/L with A = edge·thickness and L = edge.
func (t Tech) LateralG() float64 {
	return t.Conductivity * t.Thickness
}

// VerticalG returns the thermal conductance from one cell to the
// ambient in W/K: the package resistance scaled by cell/die area ratio.
func (t Tech) VerticalG() float64 {
	rCell := t.PackageR * t.DieArea / t.CellArea()
	return 1 / rCell
}

// AccessPower returns the average power of one access sustained over
// one cycle, in watts.
func (t Tech) AccessPower(write bool) float64 {
	return t.AccessEnergy(write) / t.CycleTime
}

// PowerDensity converts a per-cell power (W) into areal power density
// (W/m²) for reporting.
func (t Tech) PowerDensity(p float64) float64 { return p / t.CellArea() }
