// Package tdfa implements the paper's contribution: a forward
// data-flow analysis whose facts are thermal states of the register
// file.
//
// Following Fig. 2 of the paper, the analysis repeatedly sweeps the
// procedure, estimating the thermal state after every instruction, and
// stops when no instruction's state changes by more than a
// user-supplied δ between sweeps — or reports non-convergence when an
// iteration cap is hit ("this suggests that the thermal state of the
// program may be too difficult to predict at compile time").
//
// Two modes are provided, mirroring §4:
//
//   - post-assignment: run after register assignment, when "the
//     precise registers that are accessed by each instruction are
//     known";
//   - early (predictive): run before allocation, using a probabilistic
//     placement prior per assignment policy (Prior) — "the more
//     ambitious possibility ... which has never been considered
//     before".
//
// Analyze is the entry point; Config parameterizes everything (δ,
// iteration cap, time-acceleration factor κ, join operator, leakage,
// profile-guided frequencies, warm start). Two fixpoint solvers share
// the same transfer function: SolverDense is the paper-faithful
// whole-procedure sweep and the reference; SolverSparse is an
// allocation-free worklist variant that re-sweeps only blocks whose
// in-state still moves, differentially tested to stay within δ of the
// reference per instruction (properties_test.go at the repo root).
//
// The Result carries the per-instruction states, per-register peaks,
// convergence diagnostics and the critical-variable ranking the
// thermal-aware optimizations (internal/opt, root optimize.go)
// consume; thermflowd serializes a summary of it over HTTP
// (thermflow/api.CompileResponse).
package tdfa
