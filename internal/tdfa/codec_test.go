package tdfa

import (
	"reflect"
	"testing"

	"thermflow/internal/regalloc"
	"thermflow/internal/workload"
)

// encodeDecode round-trips res against fn and fails the test on any
// codec error.
func encodeDecode(t *testing.T, res *Result) *Result {
	t.Helper()
	blob, err := EncodeResult(nil, res)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeResult(blob, res.fn)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

// requireEqualResults compares every exported field, normalizing the
// unexported analysis context (cfg) which the codec intentionally does
// not carry.
func requireEqualResults(t *testing.T, want, got *Result) {
	t.Helper()
	w := *want
	w.cfg = Config{}
	g := *got
	g.cfg = Config{}
	if !reflect.DeepEqual(&w, &g) {
		t.Fatalf("round trip diverged:\nwant %+v\ngot  %+v", &w, &g)
	}
}

// The codec must round-trip the full Result — every thermal.State
// slice included — across random programs, policies and option
// variations.
func TestResultCodecRoundTripRandomPrograms(t *testing.T) {
	policies := []regalloc.Policy{regalloc.FirstFree, regalloc.Chessboard, regalloc.Coldest}
	for seed := int64(1); seed <= 25; seed++ {
		fn := workload.Generate(workload.GenConfig{
			Seed:         seed,
			Segments:     2 + int(seed%3),
			Irregularity: float64(seed%4) / 4,
		})
		a, err := regalloc.Allocate(fn, regalloc.Config{
			NumRegs: 16, Policy: policies[seed%int64(len(policies))],
		})
		if err != nil {
			t.Fatalf("seed %d: allocate: %v", seed, err)
		}
		cfg := Config{Alloc: a}
		if seed%3 == 0 {
			cfg.Solver = SolverSparse
		}
		if seed%4 == 0 {
			cfg.WithLeakage = true
		}
		if seed%5 == 0 {
			cfg.JoinOp = JoinMax
		}
		res, err := Analyze(a.Fn, cfg)
		if err != nil {
			t.Fatalf("seed %d: analyze: %v", seed, err)
		}
		requireEqualResults(t, res, encodeDecode(t, res))
	}
}

// Early-mode results (no allocation; Critical entries carry Reg -1)
// must round-trip too.
func TestResultCodecRoundTripEarlyMode(t *testing.T) {
	fn := workload.Generate(workload.GenConfig{Seed: 7, Segments: 3})
	res, err := Analyze(fn, Config{PlacementPrior: PriorChessboard})
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, res, encodeDecode(t, res))
}

// Every truncation of a valid encoding must decode to an error —
// never a panic, never a silent partial Result.
func TestResultCodecRejectsEveryTruncation(t *testing.T) {
	fn := workload.Generate(workload.GenConfig{Seed: 3, Segments: 3})
	a, err := regalloc.Allocate(fn, regalloc.Config{NumRegs: 16})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(a.Fn, Config{Alloc: a})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := EncodeResult(nil, res)
	if err != nil {
		t.Fatal(err)
	}
	step := 1
	if len(blob) > 2048 {
		step = len(blob) / 2048 // keep the sweep fast on big blobs
	}
	for n := 0; n < len(blob); n += step {
		if _, err := DecodeResult(blob[:n], fn); err == nil {
			t.Fatalf("truncation at %d/%d bytes decoded without error", n, len(blob))
		}
	}
	// Flipping the version must invalidate cleanly.
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xff
	if _, err := DecodeResult(bad, fn); err == nil {
		t.Fatal("wrong codec version decoded without error")
	}
	// Trailing garbage is rejected (a concatenation bug, not a value).
	if _, err := DecodeResult(append(append([]byte(nil), blob...), 0xAA), fn); err == nil {
		t.Fatal("trailing bytes decoded without error")
	}
}

// Decoding against the wrong function must fail structurally, not
// fabricate states for instructions that do not exist.
func TestResultCodecRejectsWrongFunction(t *testing.T) {
	fnA := workload.Generate(workload.GenConfig{Seed: 11, Segments: 4})
	fnB := workload.Generate(workload.GenConfig{Seed: 12, Segments: 1})
	a, err := regalloc.Allocate(fnA, regalloc.Config{NumRegs: 16})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(a.Fn, Config{Alloc: a})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := EncodeResult(nil, res)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeResult(blob, fnB); err == nil {
		t.Fatal("result decoded against a structurally different function")
	}
}
