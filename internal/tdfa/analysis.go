package tdfa

import (
	"fmt"

	"thermflow/internal/cfg"
	"thermflow/internal/ir"
	"thermflow/internal/power"
	"thermflow/internal/thermal"
)

// Result holds the analysis output: per-instruction thermal states, the
// convergence report and derived rankings.
type Result struct {
	// Converged reports whether the analysis reached the δ fixpoint
	// within MaxIter sweeps (Fig. 2's termination condition). A false
	// value is the paper's "too difficult to predict at compile time"
	// diagnostic.
	Converged bool
	// Iterations is the number of whole-procedure sweeps performed.
	Iterations int
	// FinalDelta is the largest per-instruction state change observed
	// in the last sweep, in kelvin.
	FinalDelta float64
	// DeltaHistory records the max state change of every sweep.
	DeltaHistory []float64
	// BlockSweeps counts block evaluations across the whole solve. The
	// dense solver evaluates every reachable block every sweep; the
	// sparse solver only the blocks whose in-state still moves, so the
	// ratio of the two is the work the worklist saved.
	BlockSweeps int

	// InstrState is the thermal state after each instruction, indexed
	// by ir.Instr.ID — "the thermal state following each instruction is
	// output".
	InstrState []thermal.State
	// BlockIn is the thermal state at each block entry, by block index.
	BlockIn []thermal.State

	// Peak is the per-cell maximum temperature over all program
	// points; Mean the per-cell time-weighted mean.
	Peak, Mean thermal.State
	// PeakTemp is the hottest predicted temperature anywhere.
	PeakTemp float64

	// RegPeak is the predicted peak temperature of each physical
	// register's cell (indexed by register number).
	RegPeak []float64

	// Critical ranks the variables by their estimated contribution to
	// hot-spot power density, hottest first (§4: "determine ... which
	// variables are most likely to be involved").
	Critical []VariableHeat

	cfg Config
	fn  *ir.Function
}

// VariableHeat scores one variable's hot-spot involvement.
type VariableHeat struct {
	// Value is the variable.
	Value *ir.Value
	// Score is the frequency-weighted access energy deposited by the
	// variable, weighted by the hotness of the cells it lands on
	// (joules·kelvin-normalized; comparable within one analysis only).
	Score float64
	// Accesses is the estimated dynamic access count per invocation.
	Accesses float64
	// Reg is the variable's physical register in post-assignment mode,
	// -1 in early mode.
	Reg int
}

// Analyze runs the thermal data-flow analysis of Fig. 2 over fn.
func Analyze(fn *ir.Function, c Config) (*Result, error) {
	a, err := newAnalyzer(fn, c)
	if err != nil {
		return nil, err
	}
	return a.run()
}

// newAnalyzer validates the configuration and builds the solver state
// shared by Analyze and NewRegionSession.
func newAnalyzer(fn *ir.Function, c Config) (*analyzer, error) {
	c = c.withDefaults()
	if err := c.Tech.Validate(); err != nil {
		return nil, err
	}
	if c.Alloc != nil && c.Alloc.Fn != fn {
		return nil, fmt.Errorf("tdfa: allocation belongs to a different function")
	}
	if err := ir.Verify(fn); err != nil {
		return nil, fmt.Errorf("tdfa: ill-formed function: %w", err)
	}

	g := cfg.Build(fn)
	var freq *cfg.Freq
	if c.ProfileBlocks != nil {
		freq = profiledFreq(g, c.ProfileBlocks, c.ProfileEdges)
	} else {
		freq = cfg.EstimateFreq(g, g.Loops(c.DefaultTrip))
	}

	// The grid cell size follows the floorplan (which may be a
	// coarsened view); rescale the technology parameters accordingly.
	grid, err := thermal.NewGrid(c.FP.Width, c.FP.Height, c.Tech.WithCellEdge(c.FP.CellEdge))
	if err != nil {
		return nil, err
	}

	var place placement
	if c.Alloc != nil {
		place = &exactPlacement{alloc: c.Alloc, fp: c.FP}
	} else {
		place = newPriorPlacement(c.PlacementPrior, c.FP)
	}

	a := &analyzer{
		cfg:      c,
		gridTech: c.Tech.WithCellEdge(c.FP.CellEdge),
		fn:       fn,
		g:        g,
		freq:     freq,
		grid:     grid,
		place:    place,
		stepBuf:  make(thermal.State, grid.NumCells()),
	}
	if c.Ctx != nil {
		a.done = c.Ctx.Done()
	}
	return a, nil
}

type analyzer struct {
	cfg      Config
	gridTech power.Tech // tech rescaled to the floorplan's cell size
	fn       *ir.Function
	g        *cfg.Graph
	freq     *cfg.Freq
	grid     *thermal.Grid
	place    placement
	stepBuf  thermal.State   // scratch for grid.StepWith in transfer
	done     <-chan struct{} // Ctx.Done(); nil when no context was given
}

// cancelled reports the configured context's error once the analysis
// should stop. The nil-channel receive never fires, so without a
// context the poll is a single non-blocking select.
func (a *analyzer) cancelled() error {
	select {
	case <-a.done:
		return a.cfg.Ctx.Err()
	default:
		return nil
	}
}

// newResult allocates the result and per-block out-states at their
// initial values: ambient, or the steady state of the
// frequency-averaged power map when warm-starting.
func (a *analyzer) newResult() (*Result, []thermal.State) {
	fn := a.fn
	res := &Result{
		InstrState: make([]thermal.State, fn.NumInstrs()),
		BlockIn:    make([]thermal.State, len(fn.Blocks)),
		cfg:        a.cfg,
		fn:         fn,
	}
	init := a.grid.NewState()
	if a.cfg.WarmStart {
		init = a.grid.SteadyState(a.avgPowerMap())
	}
	blockOut := make([]thermal.State, len(fn.Blocks))
	for _, b := range fn.Blocks {
		res.BlockIn[b.Index] = init.Copy()
		blockOut[b.Index] = init.Copy()
	}
	for i := range res.InstrState {
		res.InstrState[i] = init.Copy()
	}
	return res, blockOut
}

func (a *analyzer) run() (*Result, error) {
	res, blockOut := a.newResult()

	var err error
	switch a.cfg.Solver {
	case SolverSparse:
		err = a.runSparse(res, blockOut)
	case SolverRegion:
		err = a.runRegion(res, blockOut)
	default:
		err = a.runDense(res, blockOut)
	}
	if err != nil {
		return nil, fmt.Errorf("tdfa: analysis cancelled: %w", err)
	}

	a.aggregate(res)
	a.rankCritical(res)
	return res, nil
}

// runDense is the Fig. 2 main loop: whole-procedure sweeps in
// reverse-postorder until no instruction's state moves by more than δ.
// It shares the allocation-free join and transfer machinery with the
// sparse solver; only the iteration strategy differs. The context poll
// per block evaluation keeps long fixpoints promptly cancellable.
func (a *analyzer) runDense(res *Result, blockOut []thermal.State) error {
	join := a.grid.NewState()
	s := a.grid.NewState()
	energy := make([]float64, a.grid.NumCells())
	pow := make([]float64, a.grid.NumCells())
	sc := &joinScratch{ambient: a.grid.NewState()}
	for iter := 1; iter <= a.cfg.MaxIter; iter++ {
		maxDelta := 0.0
		for _, b := range a.g.RPO {
			if err := a.cancelled(); err != nil {
				return err
			}
			a.joinPredsInto(b, blockOut, join, sc)
			res.BlockIn[b.Index].CopyFrom(join)
			s.CopyFrom(join)
			bf := a.freq.BlockFreq(b)
			for _, instr := range b.Instrs {
				a.transfer(instr, s, energy, pow, bf)
				if d := s.MaxDelta(res.InstrState[instr.ID]); d > maxDelta {
					maxDelta = d
				}
				res.InstrState[instr.ID].CopyFrom(s)
			}
			blockOut[b.Index].CopyFrom(s)
			res.BlockSweeps++
		}
		res.Iterations = iter
		res.DeltaHistory = append(res.DeltaHistory, maxDelta)
		res.FinalDelta = maxDelta
		if maxDelta <= a.cfg.Delta {
			res.Converged = true
			break
		}
	}
	return nil
}

// profiledFreq builds a frequency table from measured block/edge counts
// (per invocation) instead of the static loop-based estimate.
func profiledFreq(g *cfg.Graph, blocks map[string]float64, edges map[[2]string]float64) *cfg.Freq {
	f := &cfg.Freq{
		Block: make([]float64, g.NumBlocks()),
		Edge:  make(map[cfg.EdgeKey]float64),
		Prob:  make(map[cfg.EdgeKey]float64),
	}
	for _, b := range g.Fn.Blocks {
		f.Block[b.Index] = blocks[b.Name]
	}
	for _, b := range g.Fn.Blocks {
		for _, s := range b.Succs() {
			key := cfg.Edge(b, s)
			ef := edges[[2]string{b.Name, s.Name}]
			f.Edge[key] = ef
			if bf := f.Block[b.Index]; bf > 0 {
				f.Prob[key] = ef / bf
			}
		}
	}
	return f
}

// avgPowerMap returns the per-cell average power of sustained execution:
// frequency-weighted access energy divided by the frequency-weighted
// execution time.
func (a *analyzer) avgPowerMap() []float64 {
	energy := make([]float64, a.grid.NumCells())
	for _, b := range a.fn.Blocks {
		if !a.g.Reachable(b) {
			continue
		}
		f := a.freq.BlockFreq(b)
		var extra []float64
		if a.cfg.ExtraDeposit != nil {
			extra = make([]float64, len(energy))
		}
		for _, instr := range b.Instrs {
			for _, u := range instr.Uses {
				a.place.deposit(f*a.cfg.Tech.AccessEnergy(false), u, energy)
			}
			if instr.Def != nil {
				a.place.deposit(f*a.cfg.Tech.AccessEnergy(true), instr.Def, energy)
			}
			if a.cfg.ExtraDeposit != nil {
				for i := range extra {
					extra[i] = 0
				}
				a.cfg.ExtraDeposit(instr, extra)
				for i, e := range extra {
					energy[i] += f * e
				}
			}
		}
	}
	total := a.freq.TotalWeightedCycles(a.fn) * a.cfg.Tech.CycleTime
	if total <= 0 {
		total = a.cfg.Tech.CycleTime
	}
	for i := range energy {
		energy[i] /= total
	}
	return energy
}

// transfer estimates the thermal state after one instruction.
//
// One analysis sweep models κ invocations of the procedure: an
// instruction in a block executing freq times per invocation runs
// κ·freq times, so its access power (E/latency, a duty-1 burst) is
// applied for a window of κ·freq·latency seconds. Sweep time then
// totals κ·T_invocation, and the fixpoint's time-averaged power map
// equals the true frequency-weighted average — visiting each
// instruction once per sweep (as Fig. 2 does) without distorting hot
// loops versus cold straight-line code.
func (a *analyzer) transfer(instr *ir.Instr, s thermal.State, energy, pow []float64, freq float64) {
	a.transferWith(instr, s, energy, pow, freq, a.stepBuf)
}

// transferWith is transfer with a caller-provided integration scratch
// buffer, so concurrent region solvers can share one analyzer while
// each keeps private scratch.
func (a *analyzer) transferWith(instr *ir.Instr, s thermal.State, energy, pow []float64, freq float64, stepBuf thermal.State) {
	for i := range energy {
		energy[i] = 0
	}
	for _, u := range instr.Uses {
		a.place.deposit(a.cfg.Tech.AccessEnergy(false), u, energy)
	}
	if instr.Def != nil {
		a.place.deposit(a.cfg.Tech.AccessEnergy(true), instr.Def, energy)
	}
	if a.cfg.ExtraDeposit != nil {
		a.cfg.ExtraDeposit(instr, energy)
	}
	lat := float64(instr.EffLatency()) * a.cfg.Tech.CycleTime
	dt := lat * a.cfg.Kappa * freq
	if dt <= 0 {
		return
	}
	for i := range pow {
		pow[i] = energy[i] / lat
		if a.cfg.WithLeakage {
			pow[i] += a.gridTech.Leakage(s[i])
		}
	}
	a.grid.StepWith(s, pow, dt, stepBuf)
}

// aggregate fills the Peak/Mean/RegPeak summaries from the
// per-instruction states, weighting means by instruction latency.
func (a *analyzer) aggregate(res *Result) {
	nc := a.grid.NumCells()
	res.Peak = make(thermal.State, nc)
	res.Mean = make(thermal.State, nc)
	for c := 0; c < nc; c++ {
		res.Peak[c] = res.BlockIn[a.fn.Entry.Index][c]
	}
	totalW := 0.0
	for _, b := range a.fn.Blocks {
		if !a.g.Reachable(b) {
			continue
		}
		w := a.freq.BlockFreq(b)
		for _, instr := range b.Instrs {
			st := res.InstrState[instr.ID]
			iw := w * float64(instr.EffLatency())
			totalW += iw
			for c, v := range st {
				if v > res.Peak[c] {
					res.Peak[c] = v
				}
				res.Mean[c] += v * iw
			}
		}
	}
	if totalW > 0 {
		for c := range res.Mean {
			res.Mean[c] /= totalW
		}
	}
	res.PeakTemp = res.Peak.Max()
	res.RegPeak = make([]float64, a.cfg.FP.NumRegs)
	for r := 0; r < a.cfg.FP.NumRegs; r++ {
		res.RegPeak[r] = res.Peak[a.cfg.FP.CellOf(r)]
	}
}
