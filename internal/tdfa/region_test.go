package tdfa

import (
	"fmt"
	"math"
	"testing"

	"thermflow/internal/regalloc"
	"thermflow/internal/workload"
)

// statesEqual asserts bit-identity of two state slices.
func statesEqual(t *testing.T, name string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: cell %d differs: %v vs %v", name, i, a[i], b[i])
		}
	}
}

// TestRegionExactMatchesDense asserts the exact-mode region solve is
// byte-identical to the dense reference in every result field, across
// generated modules with real DAG width and the hot-loop kernel.
func TestRegionExactMatchesDense(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			fn := workload.Generate(workload.GenConfig{
				Seed: seed, Segments: 3 + int(seed%3), LoopDepth: 1 + int(seed%2),
			})
			al, err := regalloc.Allocate(fn, regalloc.Config{NumRegs: 32})
			if err != nil {
				t.Fatal(err)
			}
			dense, err := Analyze(al.Fn, Config{Alloc: al, Solver: SolverDense})
			if err != nil {
				t.Fatal(err)
			}
			region, err := Analyze(al.Fn, Config{Alloc: al, Solver: SolverRegion, Regions: 4, RegionWorkers: 3})
			if err != nil {
				t.Fatal(err)
			}
			if dense.Converged != region.Converged || dense.Iterations != region.Iterations {
				t.Fatalf("convergence differs: dense %v/%d, region %v/%d",
					dense.Converged, dense.Iterations, region.Converged, region.Iterations)
			}
			if dense.FinalDelta != region.FinalDelta || dense.BlockSweeps != region.BlockSweeps {
				t.Fatalf("finalΔ %v vs %v, sweeps %d vs %d",
					dense.FinalDelta, region.FinalDelta, dense.BlockSweeps, region.BlockSweeps)
			}
			for i := range dense.DeltaHistory {
				if dense.DeltaHistory[i] != region.DeltaHistory[i] {
					t.Fatalf("delta history [%d] differs", i)
				}
			}
			for i := range dense.InstrState {
				statesEqual(t, fmt.Sprintf("instr %d", i), dense.InstrState[i], region.InstrState[i])
			}
			for i := range dense.BlockIn {
				statesEqual(t, fmt.Sprintf("blockIn %d", i), dense.BlockIn[i], region.BlockIn[i])
			}
			statesEqual(t, "peak", dense.Peak, region.Peak)
			statesEqual(t, "mean", dense.Mean, region.Mean)
			if dense.PeakTemp != region.PeakTemp {
				t.Fatalf("peakTemp %v vs %v", dense.PeakTemp, region.PeakTemp)
			}
		})
	}
}

// TestRegionSlackWithinBudget asserts slack mode converges and lands
// within the documented error budget of the dense fixpoint.
func TestRegionSlackWithinBudget(t *testing.T) {
	fn := workload.Generate(workload.GenConfig{Seed: 11, Segments: 5, LoopDepth: 2})
	al, err := regalloc.Allocate(fn, regalloc.Config{NumRegs: 32})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := Analyze(al.Fn, Config{Alloc: al, Solver: SolverDense})
	if err != nil {
		t.Fatal(err)
	}
	const slack = 0.02
	region, err := Analyze(al.Fn, Config{Alloc: al, Solver: SolverRegion, Regions: 6, RegionSlack: slack})
	if err != nil {
		t.Fatal(err)
	}
	if !region.Converged {
		t.Fatalf("slack solve did not converge: rounds=%d Δ=%g", region.Iterations, region.FinalDelta)
	}
	// Budget: (δ+σ)/(1−ρ) with ρ well below 1 for the warm-started
	// exchange; 5× is a generous cover for the observed contraction.
	budget := 5 * (dense.cfg.Delta + slack)
	if d := math.Abs(dense.PeakTemp - region.PeakTemp); d > budget {
		t.Fatalf("peakTemp off by %g, budget %g", d, budget)
	}
	for i := range dense.InstrState {
		if d := region.InstrState[i].MaxDelta(dense.InstrState[i]); d > budget {
			t.Fatalf("instr %d off by %g, budget %g", i, d, budget)
		}
	}
}

// TestRegionSessionMatchesInProcess drives the stepwise session
// protocol the way the gateway does — one authoritative session per
// region plus a coordinator session absorbing fragments — and asserts
// the finalized result equals the in-process region solve (and hence
// the dense reference).
func TestRegionSessionMatchesInProcess(t *testing.T) {
	fn := workload.Generate(workload.GenConfig{Seed: 3, Segments: 4, LoopDepth: 2})
	al, err := regalloc.Allocate(fn, regalloc.Config{NumRegs: 32})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Alloc: al, Solver: SolverRegion, Regions: 4}
	dense, err := Analyze(al.Fn, Config{Alloc: al, Solver: SolverDense})
	if err != nil {
		t.Fatal(err)
	}

	coord, err := NewRegionSession(al.Fn, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nr := coord.Plan().NumRegions()
	if nr < 2 {
		t.Fatalf("expected a real partition, got %d regions", nr)
	}
	// One remote session per region, each rebuilt independently from
	// the same inputs (as a backend would from the job spec).
	remote := make([]*RegionSession, nr)
	for r := 0; r < nr; r++ {
		remote[r], err = NewRegionSession(al.Fn, cfg)
		if err != nil {
			t.Fatal(err)
		}
	}

	maxIter := coord.MaxIter()
	delta := coord.Delta()
	converged := false
	var history []float64
	finalDelta := 0.0
	iters := 0
	for iter := 1; iter <= maxIter; iter++ {
		maxDelta := 0.0
		// DAG order == region index order (cut edges always point up).
		for r := 0; r < nr; r++ {
			for _, b := range remote[r].InputBlocks(r) {
				if err := remote[r].SetState(b, coord.State(b)); err != nil {
					t.Fatal(err)
				}
			}
			d, err := remote[r].SweepRegion(r)
			if err != nil {
				t.Fatal(err)
			}
			if d > maxDelta {
				maxDelta = d
			}
			for _, b := range remote[r].OutputBlocks(r) {
				if err := coord.SetState(b, remote[r].State(b)); err != nil {
					t.Fatal(err)
				}
			}
		}
		iters = iter
		history = append(history, maxDelta)
		finalDelta = maxDelta
		if maxDelta <= delta {
			converged = true
			break
		}
	}
	for r := 0; r < nr; r++ {
		blockIn, instr, err := remote[r].Fragment(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := coord.AbsorbFragment(r, blockIn, instr); err != nil {
			t.Fatal(err)
		}
	}
	// BlockSweeps: every region swept once per iteration.
	sweeps := 0
	for r := 0; r < nr; r++ {
		sweeps += remote[r].LocalSweeps()[r] * len(coord.Plan().Regions[r].Blocks)
	}
	res := coord.Finalize(iters, history, finalDelta, converged, sweeps)

	if res.Converged != dense.Converged || res.Iterations != dense.Iterations {
		t.Fatalf("convergence differs: session %v/%d, dense %v/%d",
			res.Converged, res.Iterations, dense.Converged, dense.Iterations)
	}
	if res.FinalDelta != dense.FinalDelta || res.BlockSweeps != dense.BlockSweeps {
		t.Fatalf("finalΔ %v vs %v, sweeps %d vs %d",
			res.FinalDelta, dense.FinalDelta, res.BlockSweeps, dense.BlockSweeps)
	}
	for i := range dense.InstrState {
		statesEqual(t, fmt.Sprintf("instr %d", i), dense.InstrState[i], res.InstrState[i])
	}
	statesEqual(t, "peak", dense.Peak, res.Peak)
	if res.PeakTemp != dense.PeakTemp {
		t.Fatalf("peakTemp %v vs %v", res.PeakTemp, dense.PeakTemp)
	}
}
