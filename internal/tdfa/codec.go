package tdfa

import (
	"encoding/binary"
	"fmt"

	"thermflow/internal/binenc"
	"thermflow/internal/ir"
	"thermflow/internal/thermal"
)

// This file is the binary codec for Result, the piece ROADMAP's
// "cross-kernel cache persistence" item named as missing: the wire
// summary (api.CompileResponse) drops the per-instruction thermal
// states, so a persisted summary cannot warm a new process. The codec
// round-trips the full Result — every thermal.State slice included —
// against the function it was computed for.
//
// Layout (little-endian via internal/binenc, versioned):
//
//	u16  codec version
//	u8   converged
//	uv   iterations            (uv = unsigned varint)
//	f64  final delta
//	uv n, n×f64                delta history
//	uv   block sweeps
//	uv   cells per state
//	uv n, n×state              instruction states (by ir.Instr.ID)
//	uv n, n×state              block-entry states (by block index)
//	state                      peak
//	state                      mean
//	f64  peak temperature
//	uv n, n×f64                per-register peak (by register)
//	uv n, n×entry              critical ranking; entry =
//	                           {uv len, name bytes, f64 score,
//	                            f64 accesses, sv reg (signed varint)}
//
// Values are referenced by name, not ID: value IDs depend on creation
// order, which a print→parse round trip of the function does not
// preserve, while names are unique within a function and survive it.
// Instruction IDs and block indices do survive (Renumber assigns them
// densely in textual order), so states are indexed directly.
const resultCodecVersion = 1

// EncodeResult appends the binary form of res to b. The Result must be
// uniform (every state sized like Peak), which everything Analyze
// returns is.
func EncodeResult(b []byte, res *Result) ([]byte, error) {
	cells := len(res.Peak)
	b = binary.LittleEndian.AppendUint16(b, resultCodecVersion)
	b = binenc.AppendBool(b, res.Converged)
	b = binary.AppendUvarint(b, uint64(res.Iterations))
	b = binenc.AppendF64(b, res.FinalDelta)
	b = binary.AppendUvarint(b, uint64(len(res.DeltaHistory)))
	for _, d := range res.DeltaHistory {
		b = binenc.AppendF64(b, d)
	}
	b = binary.AppendUvarint(b, uint64(res.BlockSweeps))
	b = binary.AppendUvarint(b, uint64(cells))
	var err error
	if b, err = appendStates(b, res.InstrState, cells); err != nil {
		return nil, err
	}
	if b, err = appendStates(b, res.BlockIn, cells); err != nil {
		return nil, err
	}
	if len(res.Mean) != cells {
		return nil, fmt.Errorf("tdfa: encode: mean has %d cells, peak %d", len(res.Mean), cells)
	}
	b = res.Peak.AppendBinary(b)
	b = res.Mean.AppendBinary(b)
	b = binenc.AppendF64(b, res.PeakTemp)
	b = binary.AppendUvarint(b, uint64(len(res.RegPeak)))
	for _, t := range res.RegPeak {
		b = binenc.AppendF64(b, t)
	}
	b = binary.AppendUvarint(b, uint64(len(res.Critical)))
	for _, vh := range res.Critical {
		if vh.Value == nil {
			return nil, fmt.Errorf("tdfa: encode: critical entry without a value")
		}
		b = binenc.AppendString(b, vh.Value.Name)
		b = binenc.AppendF64(b, vh.Score)
		b = binenc.AppendF64(b, vh.Accesses)
		b = binary.AppendVarint(b, int64(vh.Reg))
	}
	return b, nil
}

// DecodeResult reads a Result encoded by EncodeResult back against fn,
// the function the analysis ran on (critical-ranking values resolve by
// name against it). Every structural mismatch — wrong version, counts
// that disagree with fn, unknown value names, truncation — is an
// error, never a panic: a corrupted cache entry must degrade into a
// cache miss.
func DecodeResult(data []byte, fn *ir.Function) (*Result, error) {
	r := binenc.NewReader(data)
	if v := r.U16(); v != resultCodecVersion {
		return nil, fmt.Errorf("tdfa: decode: codec version %d, want %d", v, resultCodecVersion)
	}
	res := &Result{fn: fn}
	res.Converged = r.Bool()
	res.Iterations = int(r.Uvarint())
	res.FinalDelta = r.F64()
	res.DeltaHistory = r.F64s()
	res.BlockSweeps = int(r.Uvarint())
	cells := r.Count()
	res.InstrState = readStates(r, cells)
	res.BlockIn = readStates(r, cells)
	res.Peak = readState(r, cells)
	res.Mean = readState(r, cells)
	res.PeakTemp = r.F64()
	res.RegPeak = r.F64s()
	ncrit := r.Count()
	for i := 0; i < ncrit && r.Err() == nil; i++ {
		name := r.Str()
		vh := VariableHeat{Score: r.F64(), Accesses: r.F64(), Reg: int(r.Varint())}
		if r.Err() != nil {
			break
		}
		if vh.Value = fn.ValueNamed(name); vh.Value == nil {
			return nil, fmt.Errorf("tdfa: decode: critical ranking names unknown value %q", name)
		}
		res.Critical = append(res.Critical, vh)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("tdfa: decode: %w", err)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("tdfa: decode: %d trailing bytes", r.Len())
	}
	if got, want := len(res.InstrState), fn.NumInstrs(); got != want {
		return nil, fmt.Errorf("tdfa: decode: %d instruction states for a %d-instruction function", got, want)
	}
	if got, want := len(res.BlockIn), len(fn.Blocks); got != want {
		return nil, fmt.Errorf("tdfa: decode: %d block states for a %d-block function", got, want)
	}
	return res, nil
}

func appendStates(b []byte, states []thermal.State, cells int) ([]byte, error) {
	b = binary.AppendUvarint(b, uint64(len(states)))
	for i, s := range states {
		if len(s) != cells {
			return nil, fmt.Errorf("tdfa: encode: state %d has %d cells, want %d", i, len(s), cells)
		}
		b = s.AppendBinary(b)
	}
	return b, nil
}

// readState reads one cells-sized thermal state off r.
func readState(r *binenc.Reader, cells int) thermal.State {
	raw := r.Raw(thermal.BinarySize(cells))
	if r.Err() != nil {
		return nil
	}
	s, _, err := thermal.DecodeState(raw, cells)
	if err != nil {
		r.Fail("%v", err)
		return nil
	}
	return s
}

func readStates(r *binenc.Reader, cells int) []thermal.State {
	n := r.Count()
	if r.Err() != nil {
		return nil
	}
	out := make([]thermal.State, 0, n)
	for i := 0; i < n; i++ {
		s := readState(r, cells)
		if r.Err() != nil {
			return nil
		}
		out = append(out, s)
	}
	return out
}
