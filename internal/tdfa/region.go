package tdfa

import (
	"fmt"
	"runtime"
	"sync"

	"thermflow/internal/ir"
	"thermflow/internal/regions"
	"thermflow/internal/thermal"
)

// DefaultRegionCount is the region count requested when Config.Regions
// is unset. It is a fixed constant (not CPU-derived) because the region
// count shapes the partition and is therefore part of the result
// identity in slack mode.
const DefaultRegionCount = 16

// lane is the per-worker scratch of one concurrent region solver: the
// buffers runDense keeps as locals, made rentable.
type lane struct {
	join, s thermal.State
	stepBuf thermal.State
	energy  []float64
	pow     []float64
	sc      *joinScratch
}

func (a *analyzer) newLane() *lane {
	return &lane{
		join:    a.grid.NewState(),
		s:       a.grid.NewState(),
		stepBuf: make(thermal.State, a.grid.NumCells()),
		energy:  make([]float64, a.grid.NumCells()),
		pow:     make([]float64, a.grid.NumCells()),
		sc:      &joinScratch{ambient: a.grid.NewState()},
	}
}

// sweepBlocksWith performs one dense sweep over the given blocks (in
// their RPO order) using lane-private scratch, reading and writing
// block out-states through the view array. It is the body of
// runDense's inner loop, shared by every region-mode strategy; the
// arithmetic per block is identical to the dense reference.
func (a *analyzer) sweepBlocksWith(res *Result, blocks []*ir.Block, view []thermal.State, ln *lane) (float64, error) {
	maxDelta := 0.0
	for _, b := range blocks {
		if err := a.cancelled(); err != nil {
			return 0, err
		}
		a.joinPredsInto(b, view, ln.join, ln.sc)
		res.BlockIn[b.Index].CopyFrom(ln.join)
		ln.s.CopyFrom(ln.join)
		bf := a.freq.BlockFreq(b)
		for _, instr := range b.Instrs {
			a.transferWith(instr, ln.s, ln.energy, ln.pow, bf, ln.stepBuf)
			if d := ln.s.MaxDelta(res.InstrState[instr.ID]); d > maxDelta {
				maxDelta = d
			}
			res.InstrState[instr.ID].CopyFrom(ln.s)
		}
		view[b.Index].CopyFrom(ln.s)
	}
	return maxDelta, nil
}

// regionPlan partitions the analyzer's CFG for the configured region
// count, weighting blocks by frequency-scaled instruction count (the
// solve cost a sweep actually pays).
func (a *analyzer) regionPlan() *regions.Plan {
	k := a.cfg.Regions
	if k <= 0 {
		k = DefaultRegionCount
	}
	weights := make([]float64, a.g.NumBlocks())
	for _, b := range a.fn.Blocks {
		if !a.g.Reachable(b) {
			continue
		}
		weights[b.Index] = a.freq.BlockFreq(b) * float64(len(b.Instrs)+1)
	}
	return regions.Partition(a.g, regions.Options{MaxRegions: k, Weights: weights})
}

// regionWorkers resolves the concurrency bound.
func (a *analyzer) regionWorkers() int {
	if a.cfg.RegionWorkers > 0 {
		return a.cfg.RegionWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// regionDAG derives the deduplicated region-level successor lists and
// in-degrees from the plan's cut edges. All cut edges point from lower
// to higher region index, so the graph is a DAG rooted at the entry
// region.
func regionDAG(plan *regions.Plan) (succs [][]int, indeg []int) {
	nr := plan.NumRegions()
	succs = make([][]int, nr)
	indeg = make([]int, nr)
	seen := make(map[[2]int]bool, len(plan.Cuts))
	for _, c := range plan.Cuts {
		key := [2]int{c.FromRegion, c.ToRegion}
		if seen[key] {
			continue
		}
		seen[key] = true
		succs[c.FromRegion] = append(succs[c.FromRegion], c.ToRegion)
		indeg[c.ToRegion]++
	}
	return succs, indeg
}

// runRegion is the SolverRegion entry point for the in-process solve.
func (a *analyzer) runRegion(res *Result, blockOut []thermal.State) error {
	plan := a.regionPlan()
	if plan.NumRegions() <= 1 {
		// No legal cut (one giant loop, or a tiny CFG): the partitioned
		// solve degenerates to the dense reference.
		return a.runDense(res, blockOut)
	}
	if a.cfg.RegionSlack > 0 {
		return a.runRegionSlack(res, blockOut, plan)
	}
	return a.runRegionExact(res, blockOut, plan)
}

// runRegionExact reproduces the dense solve bit for bit while running
// independent regions in parallel. Each global sweep schedules the
// regions as a DAG: a region sweeps once all regions with edges into it
// have swept this iteration, so every cross-region join reads exactly
// the states the dense RPO sweep would have read (upstream regions:
// this sweep; back edges and the entry wrap-around: the previous
// sweep — the entry region is the unique DAG root, so it sweeps before
// any returning block moves). Wall-clock parallelism equals the DAG's
// width; the result is identical to runDense in every field.
func (a *analyzer) runRegionExact(res *Result, blockOut []thermal.State, plan *regions.Plan) error {
	nr := plan.NumRegions()
	succs, indeg0 := regionDAG(plan)

	workers := a.regionWorkers()
	if workers > nr {
		workers = nr
	}
	lanes := make(chan *lane, workers)
	for i := 0; i < workers; i++ {
		lanes <- a.newLane()
	}

	regionDelta := make([]float64, nr)
	regionErr := make([]error, nr)
	indeg := make([]int, nr)
	for iter := 1; iter <= a.cfg.MaxIter; iter++ {
		copy(indeg, indeg0)
		var ready []int
		for r := 0; r < nr; r++ {
			if indeg[r] == 0 {
				ready = append(ready, r)
			}
		}
		done := 0
		for len(ready) > 0 {
			wave := ready
			ready = nil
			var wg sync.WaitGroup
			for _, r := range wave {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					ln := <-lanes
					defer func() { lanes <- ln }()
					regionDelta[r], regionErr[r] = a.sweepBlocksWith(res, plan.Regions[r].Blocks, blockOut, ln)
				}(r)
			}
			wg.Wait()
			for _, r := range wave {
				if regionErr[r] != nil {
					return regionErr[r]
				}
				res.BlockSweeps += len(plan.Regions[r].Blocks)
				done++
				for _, s := range succs[r] {
					indeg[s]--
					if indeg[s] == 0 {
						ready = append(ready, s)
					}
				}
			}
		}
		if done != nr {
			return fmt.Errorf("tdfa: region DAG stalled at %d/%d regions", done, nr)
		}
		maxDelta := 0.0
		for _, d := range regionDelta {
			if d > maxDelta {
				maxDelta = d
			}
		}
		res.Iterations = iter
		res.DeltaHistory = append(res.DeltaHistory, maxDelta)
		res.FinalDelta = maxDelta
		if maxDelta <= a.cfg.Delta {
			res.Converged = true
			break
		}
	}
	return nil
}

// boundaryBlocks returns the block indices whose out-states cross
// region boundaries: sources of cut edges, plus every reachable
// returning block (read by the entry block's sustained-execution
// wrap-around join).
func (a *analyzer) boundaryBlocks(plan *regions.Plan) []int {
	mark := make([]bool, len(a.fn.Blocks))
	for _, c := range plan.Cuts {
		mark[c.From] = true
	}
	for _, b := range a.fn.Blocks {
		if !a.g.Reachable(b) {
			continue
		}
		if t := b.Terminator(); t != nil && t.Op == ir.Ret {
			mark[b.Index] = true
		}
	}
	var out []int
	for i, m := range mark {
		if m {
			out = append(out, i)
		}
	}
	return out
}

// runRegionSlack solves the regions as Jacobi rounds: every round
// freezes the boundary out-states, runs each region to a local
// fixpoint (tolerance Delta) against the frozen foreign states with
// all regions in parallel, and stops once no boundary state moved by
// more than Delta+σ between rounds. The deviation from the true global
// fixpoint is bounded by (Delta+σ)/(1−ρ), where ρ is the per-round
// contraction ratio of the boundary exchange. The result is
// deterministic for any worker count: each region reads only its own
// live states and the frozen snapshot.
func (a *analyzer) runRegionSlack(res *Result, blockOut []thermal.State, plan *regions.Plan) error {
	nb := len(a.fn.Blocks)
	nr := plan.NumRegions()
	boundary := a.boundaryBlocks(plan)

	frozen := make([]thermal.State, nb)
	for _, i := range boundary {
		frozen[i] = blockOut[i].Copy()
	}
	// Per-region views: own blocks live, foreign boundary blocks
	// frozen. Foreign non-boundary blocks are never read by a region's
	// joins (every cross-region predecessor is a cut source; the entry
	// wrap reads only returning blocks).
	views := make([][]thermal.State, nr)
	for r := 0; r < nr; r++ {
		view := make([]thermal.State, nb)
		for i := 0; i < nb; i++ {
			switch {
			case plan.BlockRegion[i] == r:
				view[i] = blockOut[i]
			case frozen[i] != nil:
				view[i] = frozen[i]
			}
		}
		views[r] = view
	}

	workers := a.regionWorkers()
	if workers > nr {
		workers = nr
	}
	lanes := make(chan *lane, workers)
	for i := 0; i < workers; i++ {
		lanes <- a.newLane()
	}

	regionSweeps := make([]int, nr)
	regionErr := make([]error, nr)
	tol := a.cfg.Delta + a.cfg.RegionSlack
	for round := 1; round <= a.cfg.MaxIter; round++ {
		for _, i := range boundary {
			frozen[i].CopyFrom(blockOut[i])
		}
		var wg sync.WaitGroup
		for r := 0; r < nr; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				ln := <-lanes
				defer func() { lanes <- ln }()
				regionSweeps[r] = 0
				for sweep := 1; sweep <= a.cfg.MaxIter; sweep++ {
					d, err := a.sweepBlocksWith(res, plan.Regions[r].Blocks, views[r], ln)
					if err != nil {
						regionErr[r] = err
						return
					}
					regionSweeps[r]++
					if d <= a.cfg.Delta {
						return
					}
				}
			}(r)
		}
		wg.Wait()
		for r := 0; r < nr; r++ {
			if regionErr[r] != nil {
				return regionErr[r]
			}
			res.BlockSweeps += regionSweeps[r] * len(plan.Regions[r].Blocks)
		}
		boundaryDelta := 0.0
		for _, i := range boundary {
			if d := blockOut[i].MaxDelta(frozen[i]); d > boundaryDelta {
				boundaryDelta = d
			}
		}
		res.Iterations = round
		res.DeltaHistory = append(res.DeltaHistory, boundaryDelta)
		res.FinalDelta = boundaryDelta
		if boundaryDelta <= tol {
			res.Converged = true
			break
		}
	}
	return nil
}
