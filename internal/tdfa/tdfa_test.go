package tdfa

import (
	"math"
	"testing"

	"thermflow/internal/floorplan"
	"thermflow/internal/ir"
	"thermflow/internal/power"
	"thermflow/internal/regalloc"
)

const hotLoopSrc = `
func hotloop(n) {
entry:
  i = const 0
  one = const 1
  acc = const 0
  br head
head: !trip 1000
  c = cmplt i, n
  cbr c, body, exit
body:
  a2 = add acc, i
  acc = mov a2
  i2 = add i, one
  i = mov i2
  br head
exit:
  ret acc
}`

func mustParse(t *testing.T, src string) *ir.Function {
	t.Helper()
	f, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

func allocate(t *testing.T, f *ir.Function, pol regalloc.Policy) *regalloc.Allocation {
	t.Helper()
	a, err := regalloc.Allocate(f, regalloc.Config{NumRegs: 64, Policy: pol})
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	return a
}

func TestAnalyzePostAssignConverges(t *testing.T) {
	f := mustParse(t, hotLoopSrc)
	a := allocate(t, f, regalloc.FirstFree)
	res, err := Analyze(a.Fn, Config{Alloc: a})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if !res.Converged {
		t.Fatalf("analysis did not converge: iters=%d finalΔ=%g", res.Iterations, res.FinalDelta)
	}
	if res.Iterations < 1 {
		t.Error("no iterations recorded")
	}
	tech := power.Default65nm()
	if res.PeakTemp <= tech.TAmbient {
		t.Errorf("peak %g K not above ambient %g K", res.PeakTemp, tech.TAmbient)
	}
	if res.PeakTemp > tech.TAmbient+200 {
		t.Errorf("peak %g K implausibly high", res.PeakTemp)
	}
	// The loop runs on the first few registers under first-free: the
	// hottest register must be a low-numbered one.
	hot := res.HottestRegs(3)
	for _, r := range hot {
		if r > 10 {
			t.Errorf("hottest registers %v include high register %d under first-free", hot, r)
		}
	}
	// Every instruction has a state of grid size.
	if len(res.InstrState) != a.Fn.NumInstrs() {
		t.Errorf("InstrState count = %d, want %d", len(res.InstrState), a.Fn.NumInstrs())
	}
	for id, st := range res.InstrState {
		if len(st) != 64 {
			t.Fatalf("instr %d state size %d", id, len(st))
		}
	}
	// Delta history decreases overall.
	hist := res.DeltaHistory
	if len(hist) == 0 || hist[len(hist)-1] > hist[0] {
		t.Errorf("delta history not improving: %v", hist)
	}
}

func TestAnalyzeLoopHotterThanExit(t *testing.T) {
	f := mustParse(t, hotLoopSrc)
	a := allocate(t, f, regalloc.FirstFree)
	res, err := Analyze(a.Fn, Config{Alloc: a})
	if err != nil {
		t.Fatal(err)
	}
	// The state after a loop-body instruction must be hotter (at its
	// own busiest cell) than the entry in-state.
	body := a.Fn.BlockNamed("body")
	entryIn := res.BlockIn[a.Fn.Entry.Index]
	bodySt := res.InstrState[body.Instrs[0].ID]
	if bodySt.Max() <= entryIn.Min() {
		t.Error("loop body not hotter than entry baseline")
	}
}

func TestAnalyzeEarlyModePriors(t *testing.T) {
	f := mustParse(t, hotLoopSrc)
	for _, prior := range []Prior{PriorFirstFree, PriorUniform, PriorChessboard} {
		t.Run(prior.String(), func(t *testing.T) {
			res, err := Analyze(f, Config{PlacementPrior: prior})
			if err != nil {
				t.Fatalf("Analyze early: %v", err)
			}
			if res.PeakTemp <= power.Default65nm().TAmbient {
				t.Errorf("early mode predicts no heating (peak %g)", res.PeakTemp)
			}
			if len(res.Critical) == 0 {
				t.Error("no critical variables ranked")
			}
		})
	}
}

func TestEarlyFirstFreePredictsLowRegisterHotspot(t *testing.T) {
	f := mustParse(t, hotLoopSrc)
	res, err := Analyze(f, Config{PlacementPrior: PriorFirstFree})
	if err != nil {
		t.Fatal(err)
	}
	hot := res.HottestRegs(1)[0]
	if hot > 8 {
		t.Errorf("first-free prior predicts hotspot at register %d, want low-numbered", hot)
	}
	// Uniform prior must spread heat more evenly: its peak is lower.
	resU, err := Analyze(f, Config{PlacementPrior: PriorUniform})
	if err != nil {
		t.Fatal(err)
	}
	if resU.PeakTemp >= res.PeakTemp {
		t.Errorf("uniform prior peak %g not below first-free prior peak %g",
			resU.PeakTemp, res.PeakTemp)
	}
}

func TestCriticalRankingIdentifiesLoopVariables(t *testing.T) {
	f := mustParse(t, hotLoopSrc)
	a := allocate(t, f, regalloc.FirstFree)
	res, err := Analyze(a.Fn, Config{Alloc: a})
	if err != nil {
		t.Fatal(err)
	}
	top := res.TopCritical(4)
	if len(top) == 0 {
		t.Fatal("no critical variables")
	}
	// The top variables must be loop-carried ones (i, acc, one, n, or
	// loop temps), not entry-only constants.
	loopVars := map[string]bool{"i": true, "acc": true, "one": true, "n": true,
		"c": true, "a2": true, "i2": true}
	if !loopVars[top[0].Value.Name] {
		t.Errorf("top critical variable = %s, want a loop variable", top[0].Value.Name)
	}
	// Scores are nonincreasing.
	for i := 1; i < len(res.Critical); i++ {
		if res.Critical[i].Score > res.Critical[i-1].Score+1e-18 {
			t.Fatal("critical ranking not sorted")
		}
	}
	// Post-assign mode records registers.
	if top[0].Reg < 0 {
		t.Error("post-assignment mode must record the register")
	}
	if top[0].Accesses <= 0 {
		t.Error("access estimate missing")
	}
}

func TestDeltaControlsIterations(t *testing.T) {
	f := mustParse(t, hotLoopSrc)
	a := allocate(t, f, regalloc.FirstFree)
	loose, err := Analyze(a.Fn, Config{Alloc: a, Delta: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Analyze(a.Fn, Config{Alloc: a, Delta: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Iterations < loose.Iterations {
		t.Errorf("tighter δ took fewer iterations (%d) than loose (%d)",
			tight.Iterations, loose.Iterations)
	}
}

func TestNonConvergenceFlagged(t *testing.T) {
	f := mustParse(t, hotLoopSrc)
	a := allocate(t, f, regalloc.FirstFree)
	// δ unreachably small + hard iteration cap + cold start: must stop
	// at the cap and be flagged.
	res, err := Analyze(a.Fn, Config{Alloc: a, Delta: 1e-12, MaxIter: 3, NoWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("expected non-convergence with δ=1e-12 and 3 iterations")
	}
	if res.Iterations != 3 {
		t.Errorf("iterations = %d, want 3 (the cap)", res.Iterations)
	}
	if res.FinalDelta <= 1e-12 {
		t.Errorf("final delta = %g, expected above δ", res.FinalDelta)
	}
}

func TestWarmStartReducesIterations(t *testing.T) {
	f := mustParse(t, hotLoopSrc)
	a := allocate(t, f, regalloc.FirstFree)
	warm, err := Analyze(a.Fn, Config{Alloc: a, MaxIter: 256})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Analyze(a.Fn, Config{Alloc: a, MaxIter: 256, NoWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations > cold.Iterations {
		t.Errorf("warm start took more iterations (%d) than cold (%d)",
			warm.Iterations, cold.Iterations)
	}
}

func TestJoinOperators(t *testing.T) {
	f := mustParse(t, `
func branchy(p) {
entry:
  c = cmplt p, p
  cbr c, a, b
a:
  x = const 1
  y1 = add x, x
  br join
b:
  z = const 2
  br join
join:
  w = const 3
  ret w
}`)
	a := allocate(t, f, regalloc.FirstFree)
	var peaks []float64
	for _, j := range []Join{JoinWeighted, JoinUnweighted, JoinMax} {
		res, err := Analyze(a.Fn, Config{Alloc: a, JoinOp: j})
		if err != nil {
			t.Fatalf("join %v: %v", j, err)
		}
		peaks = append(peaks, res.PeakTemp)
	}
	// Max join must dominate the averaged joins at the merge point.
	if peaks[2] < peaks[0]-1e-9 || peaks[2] < peaks[1]-1e-9 {
		t.Errorf("max join peak %g below averaged joins %v", peaks[2], peaks[:2])
	}
}

func TestWithLeakageRaisesTemps(t *testing.T) {
	f := mustParse(t, hotLoopSrc)
	a := allocate(t, f, regalloc.FirstFree)
	base, err := Analyze(a.Fn, Config{Alloc: a})
	if err != nil {
		t.Fatal(err)
	}
	leak, err := Analyze(a.Fn, Config{Alloc: a, WithLeakage: true})
	if err != nil {
		t.Fatal(err)
	}
	if leak.PeakTemp <= base.PeakTemp {
		t.Errorf("leakage did not raise peak: %g vs %g", leak.PeakTemp, base.PeakTemp)
	}
}

func TestPolicyOrderingFirstFreeVsChessboard(t *testing.T) {
	// The headline claim of Fig. 1: under comparable occupancy,
	// first-free concentrates heat while chessboard homogenizes it.
	fFF := mustParse(t, hotLoopSrc)
	aFF := allocate(t, fFF, regalloc.FirstFree)
	resFF, err := Analyze(aFF.Fn, Config{Alloc: aFF})
	if err != nil {
		t.Fatal(err)
	}
	fCB := mustParse(t, hotLoopSrc)
	aCB := allocate(t, fCB, regalloc.Chessboard)
	resCB, err := Analyze(aCB.Fn, Config{Alloc: aCB})
	if err != nil {
		t.Fatal(err)
	}
	if resCB.PeakTemp >= resFF.PeakTemp {
		t.Errorf("chessboard peak %g not below first-free peak %g",
			resCB.PeakTemp, resFF.PeakTemp)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	f := mustParse(t, hotLoopSrc)
	a := allocate(t, f, regalloc.FirstFree)
	other := mustParse(t, hotLoopSrc)
	if _, err := Analyze(other, Config{Alloc: a}); err == nil {
		t.Error("mismatched allocation accepted")
	}
	bad := ir.NewFunc("bad")
	bad.NewBlock("entry")
	if _, err := Analyze(bad, Config{}); err == nil {
		t.Error("ill-formed function accepted")
	}
	badTech := power.Default65nm()
	badTech.CycleTime = -1
	if _, err := Analyze(f, Config{Tech: badTech}); err == nil {
		t.Error("invalid tech accepted")
	}
}

func TestRegPeakMatchesFloorplan(t *testing.T) {
	f := mustParse(t, hotLoopSrc)
	fp, err := floorplan.New(16, 4, 4, 50e-6, floorplan.RowMajor)
	if err != nil {
		t.Fatal(err)
	}
	a, err := regalloc.Allocate(f, regalloc.Config{NumRegs: 16, Policy: regalloc.FirstFree, FP: fp})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Analyze(a.Fn, Config{Alloc: a, FP: fp})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RegPeak) != 16 {
		t.Fatalf("RegPeak size = %d", len(res.RegPeak))
	}
	for r := 0; r < 16; r++ {
		if res.RegPeak[r] != res.Peak[fp.CellOf(r)] {
			t.Errorf("RegPeak[%d] inconsistent with Peak state", r)
		}
	}
}

func TestMeanBelowPeak(t *testing.T) {
	f := mustParse(t, hotLoopSrc)
	a := allocate(t, f, regalloc.FirstFree)
	res, err := Analyze(a.Fn, Config{Alloc: a})
	if err != nil {
		t.Fatal(err)
	}
	for c := range res.Mean {
		if res.Mean[c] > res.Peak[c]+1e-9 {
			t.Fatalf("cell %d: mean %g exceeds peak %g", c, res.Mean[c], res.Peak[c])
		}
		if math.IsNaN(res.Mean[c]) {
			t.Fatalf("cell %d mean is NaN", c)
		}
	}
}

func TestKappaControlsColdStartFidelity(t *testing.T) {
	// From a cold start with a fixed δ, a small κ "converges" before
	// the register file has meaningfully heated (each sweep advances
	// simulated time too little), under-predicting the fixpoint; a
	// large κ covers the thermal time constant and lands close to the
	// warm-started reference. This is exactly the convergence hazard
	// the paper flags for its Fig. 2 iteration.
	f := mustParse(t, hotLoopSrc)
	a := allocate(t, f, regalloc.FirstFree)
	ref, err := Analyze(a.Fn, Config{Alloc: a}) // warm start = quasi-exact
	if err != nil {
		t.Fatal(err)
	}
	small, err := Analyze(a.Fn, Config{Alloc: a, Kappa: 0.1, MaxIter: 1024, NoWarmStart: true, Delta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Analyze(a.Fn, Config{Alloc: a, Kappa: 100, MaxIter: 1024, NoWarmStart: true, Delta: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	errSmall := math.Abs(small.PeakTemp - ref.PeakTemp)
	errLarge := math.Abs(large.PeakTemp - ref.PeakTemp)
	if errLarge >= errSmall {
		t.Errorf("κ=1e6 peak error %g K not below κ=1e4 error %g K (ref peak %g)",
			errLarge, errSmall, ref.PeakTemp)
	}
}

func TestStringers(t *testing.T) {
	if JoinWeighted.String() != "weighted" || JoinMax.String() != "max" ||
		JoinUnweighted.String() != "unweighted" {
		t.Error("Join.String wrong")
	}
	if PriorFirstFree.String() != "first-free" || PriorUniform.String() != "uniform" ||
		PriorChessboard.String() != "chessboard" {
		t.Error("Prior.String wrong")
	}
	if Join(9).String() == "" || Prior(9).String() == "" {
		t.Error("unknown enum String empty")
	}
}
