package tdfa

import (
	"thermflow/internal/ir"
	"thermflow/internal/thermal"
)

// The sparse solver re-sweeps a block only when its in-state moved by
// more than the gate, and re-activates dependents only when a block's
// out-state moved by more than the gate. The gates compare against the
// state at the *last sweep / last notification*, not the previous wave,
// so repeated sub-gate drifts accumulate until they cross the gate and
// propagate — the solver cannot silently absorb an unbounded drift.
//
// The gate is adaptive. A drift of g absorbed at one block perturbs the
// final fixpoint by at most ~g/(1−ρ), where ρ is the contraction ratio
// of the sweep operator (the observed per-wave decay of the max state
// change). Choosing g = δ·(1−ρ̂)/2 keeps the sparse solution within
// δ/2 of the dense reference — the differential guarantee the property
// tests assert — while letting fast-converging regions drop out of the
// worklist early. ρ̂ is the largest recent wave-to-wave delta ratio,
// capped at 1: a ratio at or above 1 (not yet contracting) drives the
// gate to zero, where only bit-identical states are skipped — never
// skipping is always sound, so the estimate degrades conservatively.
// Until enough waves have been observed the gate stays at zero.
const (
	sparseGateFrac = 0.5
	sparseRhoWin   = 4
)

// runSparse solves the same fixpoint as runDense with a sparse
// worklist. Each wave processes only the active blocks, in
// reverse-postorder; an activation targeting a block later in the
// current wave's order is handled within the wave (matching the dense
// sweep's in-order propagation), while back-edge and wrap-around
// activations land in the next wave. All per-block thermal states and
// scratch buffers are allocated once up front, so waves at steady state
// allocate nothing. The context poll per active block keeps long
// fixpoints promptly cancellable (matching runDense).
func (a *analyzer) runSparse(res *Result, blockOut []thermal.State) error {
	fn, g := a.fn, a.g
	nb := len(fn.Blocks)
	gate := 0.0
	var ratios [sparseRhoWin]float64
	for i := range ratios {
		ratios[i] = 1
	}
	prevDelta := 0.0

	// notify[i] lists the blocks whose in-state depends on block i's
	// out-state: its CFG successors, plus the entry for returning
	// blocks (joinPreds' sustained-execution wrap-around).
	notify := make([][]int, nb)
	for _, b := range fn.Blocks {
		if !g.Reachable(b) {
			continue
		}
		var ns []int
		for _, s := range b.Succs() {
			ns = append(ns, s.Index)
		}
		if t := b.Terminator(); t != nil && t.Op == ir.Ret {
			ns = append(ns, fn.Entry.Index)
		}
		notify[b.Index] = ns
	}

	active := make([]bool, nb) // to process in the current wave
	next := make([]bool, nb)   // activated for the following wave
	swept := make([]bool, nb)  // block has been swept at least once
	lastNotified := make([]thermal.State, nb)
	for _, b := range fn.Blocks {
		if g.Reachable(b) {
			active[b.Index] = true
			lastNotified[b.Index] = blockOut[b.Index].Copy()
		}
	}

	join := a.grid.NewState()
	s := a.grid.NewState()
	energy := make([]float64, a.grid.NumCells())
	pow := make([]float64, a.grid.NumCells())
	sc := &joinScratch{ambient: a.grid.NewState()}

	for iter := 1; iter <= a.cfg.MaxIter; iter++ {
		maxDelta := 0.0
		for pos, b := range g.RPO {
			i := b.Index
			if !active[i] {
				continue
			}
			if err := a.cancelled(); err != nil {
				return err
			}
			active[i] = false
			a.joinPredsInto(b, blockOut, join, sc)
			if swept[i] && join.MaxDelta(res.BlockIn[i]) <= gate {
				continue
			}
			swept[i] = true
			res.BlockIn[i].CopyFrom(join)
			s.CopyFrom(join)
			bf := a.freq.BlockFreq(b)
			for _, instr := range b.Instrs {
				a.transfer(instr, s, energy, pow, bf)
				if d := s.MaxDelta(res.InstrState[instr.ID]); d > maxDelta {
					maxDelta = d
				}
				res.InstrState[instr.ID].CopyFrom(s)
			}
			blockOut[i].CopyFrom(s)
			res.BlockSweeps++
			if s.MaxDelta(lastNotified[i]) > gate {
				lastNotified[i].CopyFrom(s)
				for _, t := range notify[i] {
					if g.RPOPos(fn.Blocks[t]) > pos {
						active[t] = true
					} else {
						next[t] = true
					}
				}
			}
		}
		res.Iterations = iter
		res.DeltaHistory = append(res.DeltaHistory, maxDelta)
		res.FinalDelta = maxDelta
		if prevDelta > 0 {
			r := maxDelta / prevDelta
			if r > 1 {
				r = 1
			}
			ratios[iter%sparseRhoWin] = r
			rho := 0.0
			for _, v := range ratios {
				if v > rho {
					rho = v
				}
			}
			gate = a.cfg.Delta * sparseGateFrac * (1 - rho)
		}
		prevDelta = maxDelta
		pending := false
		for i, n := range next {
			if n {
				active[i] = true
				next[i] = false
				pending = true
			}
		}
		if !pending || maxDelta <= a.cfg.Delta {
			res.Converged = true
			break
		}
	}
	return nil
}

// joinScratch holds the reusable buffers of joinPredsInto.
type joinScratch struct {
	states  []thermal.State
	weights []float64
	ambient thermal.State
}

// joinPredsInto merges predecessor out-states into the block's
// in-state, written into dst with all intermediate slices reused so
// the per-block join allocates nothing. Both solvers use it.
//
// The entry block joins the out-states of the procedure's exit blocks:
// the analysis models *sustained* execution — the procedure invoked
// back-to-back, the regime of the multimedia workloads the paper's
// references [1,4] target and the regime the trace-replay ground truth
// measures. Without the wrap-around, a short procedure's fixpoint would
// be the barely-heated state of one cold invocation. If the procedure
// never returns, the entry falls back to the ambient boundary.
func (a *analyzer) joinPredsInto(b *ir.Block, blockOut []thermal.State, dst thermal.State, sc *joinScratch) {
	sc.states = sc.states[:0]
	sc.weights = sc.weights[:0]
	if b == a.fn.Entry {
		for _, rb := range a.fn.Blocks {
			if !a.g.Reachable(rb) {
				continue
			}
			if t := rb.Terminator(); t != nil && t.Op == ir.Ret {
				sc.states = append(sc.states, blockOut[rb.Index])
				sc.weights = append(sc.weights, a.freq.BlockFreq(rb))
			}
		}
		if len(sc.states) == 0 {
			sc.states = append(sc.states, sc.ambient)
			sc.weights = append(sc.weights, 1)
		}
	}
	for _, p := range a.g.Preds[b.Index] {
		if !a.g.Reachable(p) {
			continue
		}
		sc.states = append(sc.states, blockOut[p.Index])
		sc.weights = append(sc.weights, a.freq.EdgeFreq(p, b))
	}
	if len(sc.states) == 0 {
		dst.CopyFrom(sc.ambient)
		return
	}
	switch a.cfg.JoinOp {
	case JoinMax:
		thermal.MaxMergeInto(dst, sc.states)
	case JoinUnweighted:
		for i := range sc.weights {
			sc.weights[i] = 1
		}
		thermal.WeightedMergeInto(dst, sc.states, sc.weights)
	default:
		thermal.WeightedMergeInto(dst, sc.states, sc.weights)
	}
}
