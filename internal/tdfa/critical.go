package tdfa

import (
	"sort"

	"thermflow/internal/analysis"
)

// rankCritical scores every variable's contribution to hot-spot power
// density: its frequency-weighted access energy, weighted by how hot
// the cells it deposits on are predicted to become. Variables at the
// top of the ranking are the spill/split candidates of §4.
func (a *analyzer) rankCritical(res *Result) {
	du := analysis.ComputeDefUse(a.fn)
	amb := a.grid.TAmb
	span := res.PeakTemp - amb
	if span <= 0 {
		span = 1
	}
	hotness := func(cell int) float64 {
		return (res.Peak[cell] - amb) / span // 0..1
	}
	var out []VariableHeat
	for _, v := range a.fn.Values() {
		acc := du.WeightedAccesses(v, a.freq.Block)
		if acc == 0 {
			continue
		}
		// Energy proportionality: reads and writes mixed; use the mean
		// of read/write energies as the per-access estimate.
		ePer := (a.cfg.Tech.EnergyRead + a.cfg.Tech.EnergyWrite) / 2
		score := 0.0
		reg := -1
		for _, cw := range a.place.cellWeights(v) {
			score += acc * ePer * cw.w * hotness(cw.cell)
		}
		if a.cfg.Alloc != nil {
			reg = a.cfg.Alloc.RegOf[v.ID]
		}
		out = append(out, VariableHeat{Value: v, Score: score, Accesses: acc, Reg: reg})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Value.ID < out[j].Value.ID
	})
	res.Critical = out
}

// TopCritical returns the n hottest variables (fewer if the function
// has fewer scored variables).
func (r *Result) TopCritical(n int) []VariableHeat {
	if n > len(r.Critical) {
		n = len(r.Critical)
	}
	return r.Critical[:n]
}

// HottestRegs returns the n registers with the highest predicted peak
// temperature, hottest first.
func (r *Result) HottestRegs(n int) []int {
	type rt struct {
		reg int
		t   float64
	}
	all := make([]rt, len(r.RegPeak))
	for i, t := range r.RegPeak {
		all[i] = rt{i, t}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].t != all[j].t {
			return all[i].t > all[j].t
		}
		return all[i].reg < all[j].reg
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].reg
	}
	return out
}
