package tdfa

import (
	"testing"

	"thermflow/internal/regalloc"
)

// The sparse solver must land in the same δ neighbourhood as the dense
// reference on the same input, and agree on convergence.
func TestSparseMatchesDense(t *testing.T) {
	f := mustParse(t, hotLoopSrc)
	a := allocate(t, f, regalloc.FirstFree)
	for _, join := range []Join{JoinWeighted, JoinUnweighted, JoinMax} {
		base := Config{Alloc: a, JoinOp: join}
		dense, err := Analyze(a.Fn, base)
		if err != nil {
			t.Fatalf("dense %v: %v", join, err)
		}
		sp := base
		sp.Solver = SolverSparse
		sparse, err := Analyze(a.Fn, sp)
		if err != nil {
			t.Fatalf("sparse %v: %v", join, err)
		}
		if dense.Converged != sparse.Converged {
			t.Fatalf("%v: converged dense=%v sparse=%v", join, dense.Converged, sparse.Converged)
		}
		delta := base.withDefaults().Delta
		for i := range dense.InstrState {
			if d := dense.InstrState[i].MaxDelta(sparse.InstrState[i]); d > delta {
				t.Fatalf("%v: instruction %d states differ by %g K (δ=%g)", join, i, d, delta)
			}
		}
		if d := dense.PeakTemp - sparse.PeakTemp; d > delta || d < -delta {
			t.Fatalf("%v: peaks differ: dense=%g sparse=%g", join, dense.PeakTemp, sparse.PeakTemp)
		}
	}
}

// On a cold start the worklist must never do more block sweeps than
// the dense solver, and must still converge to the same states. (The
// adaptive gate only skips blocks when doing so provably cannot move
// the result outside the δ neighbourhood, so on strongly-coupled
// transients the sweep counts may be equal — the sparse win there is
// the allocation-free wave machinery.)
func TestSparseNoExtraSweepsColdStart(t *testing.T) {
	f := mustParse(t, hotLoopSrc)
	a := allocate(t, f, regalloc.FirstFree)
	base := Config{Alloc: a, NoWarmStart: true, MaxIter: 2048}
	dense, err := Analyze(a.Fn, base)
	if err != nil {
		t.Fatal(err)
	}
	sp := base
	sp.Solver = SolverSparse
	sparse, err := Analyze(a.Fn, sp)
	if err != nil {
		t.Fatal(err)
	}
	if !dense.Converged || !sparse.Converged {
		t.Fatalf("converged dense=%v sparse=%v", dense.Converged, sparse.Converged)
	}
	if sparse.BlockSweeps > dense.BlockSweeps {
		t.Errorf("sparse solver did extra work: %d sweeps vs dense %d",
			sparse.BlockSweeps, dense.BlockSweeps)
	}
	delta := base.withDefaults().Delta
	for i := range dense.InstrState {
		if d := dense.InstrState[i].MaxDelta(sparse.InstrState[i]); d > delta {
			t.Fatalf("instruction %d states differ by %g K (δ=%g)", i, d, delta)
		}
	}
}

// The sparse solver's waves must not allocate: everything is set up
// front, so a long cold-start solve allocates a small constant amount
// regardless of sweep count.
func TestSparseWavesDoNotAllocate(t *testing.T) {
	f := mustParse(t, hotLoopSrc)
	a := allocate(t, f, regalloc.FirstFree)
	short := Config{Alloc: a, Solver: SolverSparse, NoWarmStart: true, MaxIter: 4}
	long := Config{Alloc: a, Solver: SolverSparse, NoWarmStart: true, MaxIter: 2048}
	run := func(c Config) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, err := Analyze(a.Fn, c); err != nil {
				t.Fatal(err)
			}
		})
	}
	allocShort, allocLong := run(short), run(long)
	// The long solve runs hundreds of waves; allow only the per-wave
	// DeltaHistory appends over the short solve's footprint.
	if allocLong > allocShort+64 {
		t.Errorf("sparse waves allocate: %0.f allocs for MaxIter=4 vs %0.f for MaxIter=2048",
			allocShort, allocLong)
	}
}
