package tdfa

import (
	"context"
	"fmt"

	"thermflow/internal/floorplan"
	"thermflow/internal/ir"
	"thermflow/internal/power"
	"thermflow/internal/regalloc"
)

// Join selects the merge operator applied to predecessor thermal states
// at control-flow joins.
type Join int

// Join operators (ablation A2 compares them).
const (
	// JoinWeighted averages predecessor states weighted by estimated
	// edge frequency — the default.
	JoinWeighted Join = iota
	// JoinUnweighted averages predecessors equally.
	JoinUnweighted
	// JoinMax takes the cell-wise maximum — a conservative
	// (worst-case) merge.
	JoinMax
)

// String names the join operator.
func (j Join) String() string {
	switch j {
	case JoinWeighted:
		return "weighted"
	case JoinUnweighted:
		return "unweighted"
	case JoinMax:
		return "max"
	}
	return fmt.Sprintf("join(%d)", int(j))
}

// Joins lists every merge operator.
var Joins = []Join{JoinWeighted, JoinUnweighted, JoinMax}

// JoinByName resolves a join-operator name ("weighted", "unweighted",
// "max").
func JoinByName(name string) (Join, bool) {
	for _, j := range Joins {
		if j.String() == name {
			return j, true
		}
	}
	return JoinWeighted, false
}

// Solver selects the fixpoint iteration strategy.
type Solver int

// Solvers.
const (
	// SolverDense is the paper-faithful Fig. 2 iteration: every sweep
	// re-evaluates every instruction of the procedure. It is the
	// reference implementation the sparse solver is differentially
	// tested against.
	SolverDense Solver = iota
	// SolverSparse is a sparse worklist variant: after the warm start,
	// only blocks whose in-state still moves are re-swept. Blocks are
	// processed in reverse-postorder; a block whose out-state moved
	// beyond a fraction of δ re-activates its successors (and, for
	// returning blocks, the entry — the sustained-execution
	// wrap-around). Scratch buffers are reused, so steady-state waves
	// allocate nothing.
	SolverSparse
	// SolverRegion partitions the CFG into regions along loop-nest
	// boundaries (internal/regions) and solves them in parallel. With
	// zero RegionSlack it schedules regions as a DAG inside each sweep
	// and reproduces the dense reference bit for bit; with positive
	// slack it runs Jacobi rounds — every region to a local fixpoint
	// against frozen boundary states — trading a bounded error budget
	// for fewer synchronization points.
	SolverRegion
)

// String names the solver.
func (s Solver) String() string {
	switch s {
	case SolverDense:
		return "dense"
	case SolverSparse:
		return "sparse"
	case SolverRegion:
		return "region"
	}
	return fmt.Sprintf("solver(%d)", int(s))
}

// SolverByName resolves a solver name ("dense", "sparse", "region").
func SolverByName(name string) (Solver, bool) {
	switch name {
	case "dense":
		return SolverDense, true
	case "sparse":
		return SolverSparse, true
	case "region":
		return SolverRegion, true
	}
	return SolverDense, false
}

// Prior selects the pre-assignment placement model of the early mode:
// the probability distribution over physical registers assumed for each
// variable before register allocation has run.
type Prior int

// Placement priors.
const (
	// PriorFirstFree concentrates probability geometrically on
	// low-numbered registers, modelling an ordered free list that
	// chooses "the same small set of registers ... again and again".
	PriorFirstFree Prior = iota
	// PriorUniform spreads probability evenly over the register file
	// (random assignment).
	PriorUniform
	// PriorChessboard spreads probability evenly over the first
	// chessboard colour (the cells the chessboard policy fills first).
	PriorChessboard
)

// String names the prior.
func (p Prior) String() string {
	switch p {
	case PriorFirstFree:
		return "first-free"
	case PriorUniform:
		return "uniform"
	case PriorChessboard:
		return "chessboard"
	}
	return fmt.Sprintf("prior(%d)", int(p))
}

// Config parameterizes the analysis.
type Config struct {
	// Tech supplies power and thermal coefficients; the zero value is
	// replaced by power.Default65nm().
	Tech power.Tech
	// FP is the register-file floorplan (nil = floorplan.Default()).
	FP *floorplan.Floorplan
	// Alloc selects post-assignment mode: the function's values carry
	// the physical registers recorded here. When nil the analysis runs
	// in early mode using PlacementPrior.
	Alloc *regalloc.Allocation
	// PlacementPrior is the early-mode placement model.
	PlacementPrior Prior

	// Solver selects the fixpoint iteration strategy (default
	// SolverDense, the Fig. 2 reference).
	Solver Solver

	// Regions requests the region count for SolverRegion (0 = a
	// deterministic default; the partitioner may produce fewer when the
	// CFG lacks legal cut positions). Part of the result identity.
	Regions int
	// RegionSlack is the extra boundary tolerance σ (kelvin) for
	// SolverRegion. Zero reproduces the dense reference exactly;
	// positive values stop the Jacobi rounds once boundary states move
	// by no more than Delta+σ, bounding the deviation from the true
	// fixpoint by (Delta+σ)/(1−ρ) for contraction ratio ρ. Part of the
	// result identity.
	RegionSlack float64
	// RegionWorkers bounds the goroutines solving regions concurrently
	// (0 = GOMAXPROCS). An execution control, never part of any result
	// identity: the solve is deterministic for any worker count.
	RegionWorkers int

	// Delta is δ: the convergence threshold in kelvin on the largest
	// per-instruction state change between sweeps (0 = 0.05 K).
	Delta float64
	// MaxIter caps the whole-procedure sweeps; hitting it flags
	// non-convergence (0 = 64).
	MaxIter int
	// Kappa is the time-acceleration factor: one whole-procedure sweep
	// models κ invocations of the procedure, each instruction's power
	// window scaled by its block's execution frequency. Larger κ
	// reaches the thermal fixpoint in fewer sweeps at more integration
	// work per sweep (0 = 100). See DESIGN.md §4.
	Kappa float64
	// DefaultTrip is the loop trip estimate when the IR carries no
	// hint (0 = cfg.DefaultTrip).
	DefaultTrip int
	// JoinOp selects the merge operator (default JoinWeighted).
	JoinOp Join
	// WithLeakage adds temperature-dependent leakage power during
	// transfer.
	WithLeakage bool
	// ExtraDeposit, when non-nil, adds non-register-file energy (J)
	// for an instruction into the per-cell accumulator: functional
	// units, fetch/decode, caches. This is the hook behind the
	// whole-processor extension (paper §5: "analyses and rules
	// relating to all parts of the processor").
	ExtraDeposit func(in *ir.Instr, energy []float64)

	// ProfileBlocks and ProfileEdges, when non-nil, replace the static
	// frequency estimates with measured ones (executions per
	// invocation keyed by block name, traversals keyed by [from, to]
	// names) — the profile-guided variant bridging toward the
	// feedback-driven flow the paper wants to avoid. Blocks or edges
	// absent from the maps are treated as never executed.
	ProfileBlocks map[string]float64
	ProfileEdges  map[[2]string]float64

	// Ctx, when non-nil, is polled once per block evaluation inside
	// both solvers: cancelling it makes Analyze return the context's
	// error mid-fixpoint instead of only at engine boundaries, so job
	// deadlines and client disconnects cut long compiles exactly. It
	// is an execution control, never part of any result identity.
	Ctx context.Context

	// WarmStart initializes every state at the steady-state solution
	// of the frequency-averaged power map instead of ambient,
	// drastically reducing sweeps to convergence. Disable to observe
	// the raw Fig. 2 iteration (ablation).
	WarmStart bool
	// NoWarmStart disables WarmStart (kept separate so the zero Config
	// defaults to warm-starting).
	NoWarmStart bool
}

func (c Config) withDefaults() Config {
	if c.Tech == (power.Tech{}) {
		c.Tech = power.Default65nm()
	}
	if c.FP == nil {
		if c.Alloc != nil {
			c.FP = c.Alloc.FP
		} else {
			c.FP = floorplan.Default()
		}
	}
	if c.Delta <= 0 {
		c.Delta = 0.05
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 64
	}
	if c.Kappa <= 0 {
		c.Kappa = 100
	}
	c.WarmStart = !c.NoWarmStart
	return c
}
