package tdfa

import (
	"fmt"
	"sort"

	"thermflow/internal/ir"
	"thermflow/internal/regions"
	"thermflow/internal/thermal"
)

// RegionSession exposes the region-partitioned solve as a stepwise
// protocol for distributed execution: a coordinator (thermflowgate)
// drives one session per (backend, region), exchanging only boundary
// block out-states between steps, and a coordinator-side session
// absorbs the per-region result fragments and finalizes the full
// Result.
//
// Construction is deterministic for a given (function, config), so
// every participant rebuilds the identical initial state from the job
// spec alone — nothing needs to be shipped to start round 1.
//
// Sessions are not safe for concurrent use; callers serialize access
// (the server layer holds one mutex per session).
type RegionSession struct {
	a        *analyzer
	res      *Result
	blockOut []thermal.State
	plan     *regions.Plan
	ln       *lane
	sweeps   []int // local sweeps per region (this session)
}

// NewRegionSession builds a session over fn. The config is interpreted
// as for Analyze with Solver forced to SolverRegion; the partition and
// initial states are derived immediately.
func NewRegionSession(fn *ir.Function, c Config) (*RegionSession, error) {
	c.Solver = SolverRegion
	a, err := newAnalyzer(fn, c)
	if err != nil {
		return nil, err
	}
	res, blockOut := a.newResult()
	s := &RegionSession{
		a:        a,
		res:      res,
		blockOut: blockOut,
		plan:     a.regionPlan(),
		ln:       a.newLane(),
		sweeps:   make([]int, a.regionPlan().NumRegions()),
	}
	return s, nil
}

// Plan returns the session's region partition.
func (s *RegionSession) Plan() *regions.Plan { return s.plan }

// NumCells returns the length of every thermal state vector.
func (s *RegionSession) NumCells() int { return s.a.grid.NumCells() }

// Slack returns the configured boundary slack σ.
func (s *RegionSession) Slack() float64 { return s.a.cfg.RegionSlack }

// Delta returns the configured convergence threshold δ.
func (s *RegionSession) Delta() float64 { return s.a.cfg.Delta }

// MaxIter returns the configured sweep/round cap.
func (s *RegionSession) MaxIter() int { return s.a.cfg.MaxIter }

// EntryRegion returns the region holding the entry block.
func (s *RegionSession) EntryRegion() int { return s.plan.RegionOf(s.a.fn.Entry) }

// State returns a copy of block b's current out-state.
func (s *RegionSession) State(b int) []float64 {
	if b < 0 || b >= len(s.blockOut) {
		return nil
	}
	out := make([]float64, len(s.blockOut[b]))
	copy(out, s.blockOut[b])
	return out
}

// SetState overwrites block b's out-state, length-checked. The
// coordinator uses it to install boundary states received from other
// regions before stepping this one.
func (s *RegionSession) SetState(b int, vals []float64) error {
	if b < 0 || b >= len(s.blockOut) {
		return fmt.Errorf("tdfa: block %d out of range", b)
	}
	if len(vals) != len(s.blockOut[b]) {
		return fmt.Errorf("tdfa: state for block %d has %d cells, want %d", b, len(vals), len(s.blockOut[b]))
	}
	copy(s.blockOut[b], vals)
	return nil
}

// InputBlocks returns the sorted foreign block indices whose out-states
// region r reads: sources of cut edges into r, plus — for the entry
// region — every reachable returning block outside r (the
// sustained-execution wrap-around).
func (s *RegionSession) InputBlocks(r int) []int {
	mark := make(map[int]bool)
	for _, c := range s.plan.Cuts {
		if c.ToRegion == r {
			mark[c.From] = true
		}
	}
	if r == s.EntryRegion() {
		for _, b := range s.a.fn.Blocks {
			if !s.a.g.Reachable(b) || s.plan.RegionOf(b) == r {
				continue
			}
			if t := b.Terminator(); t != nil && t.Op == ir.Ret {
				mark[b.Index] = true
			}
		}
	}
	return sortedKeys(mark)
}

// OutputBlocks returns the sorted block indices of region r whose
// out-states other regions read: cut-edge sources in r, plus returning
// blocks in r when the entry region is elsewhere.
func (s *RegionSession) OutputBlocks(r int) []int {
	mark := make(map[int]bool)
	for _, c := range s.plan.Cuts {
		if c.FromRegion == r {
			mark[c.From] = true
		}
	}
	if s.EntryRegion() != r {
		for _, b := range s.plan.Regions[r].Blocks {
			if t := b.Terminator(); t != nil && t.Op == ir.Ret {
				mark[b.Index] = true
			}
		}
	}
	return sortedKeys(mark)
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// SweepRegion performs exactly one dense sweep over region r (the
// exact-mode step) and returns the largest per-instruction state
// change.
func (s *RegionSession) SweepRegion(r int) (float64, error) {
	if r < 0 || r >= s.plan.NumRegions() {
		return 0, fmt.Errorf("tdfa: region %d out of range", r)
	}
	d, err := s.a.sweepBlocksWith(s.res, s.plan.Regions[r].Blocks, s.blockOut, s.ln)
	if err != nil {
		return 0, err
	}
	s.sweeps[r]++
	return d, nil
}

// SolveRegionLocal runs region r to its local fixpoint (tolerance δ)
// against the current foreign states — the slack-mode step. It returns
// the last sweep's delta and the number of sweeps performed.
func (s *RegionSession) SolveRegionLocal(r int) (float64, int, error) {
	if r < 0 || r >= s.plan.NumRegions() {
		return 0, 0, fmt.Errorf("tdfa: region %d out of range", r)
	}
	var d float64
	var err error
	for sweep := 1; sweep <= s.a.cfg.MaxIter; sweep++ {
		d, err = s.a.sweepBlocksWith(s.res, s.plan.Regions[r].Blocks, s.blockOut, s.ln)
		if err != nil {
			return 0, 0, err
		}
		s.sweeps[r]++
		if d <= s.a.cfg.Delta {
			return d, sweep, nil
		}
	}
	return d, s.a.cfg.MaxIter, nil
}

// Fragment returns region r's share of the final result in canonical
// order: the in-state of every region block (region RPO order) and the
// post-state of every instruction of those blocks (block-major,
// instruction order).
func (s *RegionSession) Fragment(r int) (blockIn [][]float64, instr [][]float64, err error) {
	if r < 0 || r >= s.plan.NumRegions() {
		return nil, nil, fmt.Errorf("tdfa: region %d out of range", r)
	}
	for _, b := range s.plan.Regions[r].Blocks {
		st := make([]float64, len(s.res.BlockIn[b.Index]))
		copy(st, s.res.BlockIn[b.Index])
		blockIn = append(blockIn, st)
		for _, in := range b.Instrs {
			is := make([]float64, len(s.res.InstrState[in.ID]))
			copy(is, s.res.InstrState[in.ID])
			instr = append(instr, is)
		}
	}
	return blockIn, instr, nil
}

// AbsorbFragment installs a fragment produced by another session's
// Fragment(r) into this session's result — the coordinator-side merge.
func (s *RegionSession) AbsorbFragment(r int, blockIn, instr [][]float64) error {
	if r < 0 || r >= s.plan.NumRegions() {
		return fmt.Errorf("tdfa: region %d out of range", r)
	}
	blocks := s.plan.Regions[r].Blocks
	if len(blockIn) != len(blocks) {
		return fmt.Errorf("tdfa: fragment for region %d has %d block states, want %d", r, len(blockIn), len(blocks))
	}
	ni := 0
	for _, b := range blocks {
		ni += len(b.Instrs)
	}
	if len(instr) != ni {
		return fmt.Errorf("tdfa: fragment for region %d has %d instr states, want %d", r, len(instr), ni)
	}
	k := 0
	for i, b := range blocks {
		if len(blockIn[i]) != len(s.res.BlockIn[b.Index]) {
			return fmt.Errorf("tdfa: fragment block state %d has %d cells, want %d", i, len(blockIn[i]), len(s.res.BlockIn[b.Index]))
		}
		copy(s.res.BlockIn[b.Index], blockIn[i])
		for _, in := range b.Instrs {
			if len(instr[k]) != len(s.res.InstrState[in.ID]) {
				return fmt.Errorf("tdfa: fragment instr state %d has %d cells, want %d", k, len(instr[k]), len(s.res.InstrState[in.ID]))
			}
			copy(s.res.InstrState[in.ID], instr[k])
			k++
		}
	}
	return nil
}

// Finalize stamps the convergence report, derives the aggregate
// summaries (peak, mean, per-register peaks, criticality ranking) from
// the absorbed per-instruction states, and returns the completed
// Result. BlockSweeps should be the total across every participating
// session.
func (s *RegionSession) Finalize(iterations int, deltaHistory []float64, finalDelta float64, converged bool, blockSweeps int) *Result {
	s.res.Iterations = iterations
	s.res.DeltaHistory = deltaHistory
	s.res.FinalDelta = finalDelta
	s.res.Converged = converged
	s.res.BlockSweeps = blockSweeps
	s.a.aggregate(s.res)
	s.a.rankCritical(s.res)
	return s.res
}

// LocalSweeps returns the total sweeps this session performed per
// region (diagnostics for BlockSweeps accounting).
func (s *RegionSession) LocalSweeps() []int {
	out := make([]int, len(s.sweeps))
	copy(out, s.sweeps)
	return out
}
