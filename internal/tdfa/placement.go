package tdfa

import (
	"thermflow/internal/floorplan"
	"thermflow/internal/ir"
	"thermflow/internal/regalloc"
)

// placement maps a value's register access onto floorplan cells.
// Post-assignment mode deposits on exactly one cell; early mode spreads
// the deposit over a probability distribution.
type placement interface {
	// deposit adds e joules of access energy for value v into the
	// per-cell energy accumulator.
	deposit(e float64, v *ir.Value, energy []float64)
	// cellWeights returns the (cell, probability) pairs for value v,
	// used by criticality scoring.
	cellWeights(v *ir.Value) []cellWeight
}

type cellWeight struct {
	cell int
	w    float64
}

// exactPlacement is the post-assignment placement: value → its
// register's cell.
type exactPlacement struct {
	alloc *regalloc.Allocation
	fp    *floorplan.Floorplan
}

func (p *exactPlacement) deposit(e float64, v *ir.Value, energy []float64) {
	r := p.alloc.RegOf[v.ID]
	if r < 0 {
		return
	}
	energy[p.fp.CellOf(r)] += e
}

func (p *exactPlacement) cellWeights(v *ir.Value) []cellWeight {
	r := p.alloc.RegOf[v.ID]
	if r < 0 {
		return nil
	}
	return []cellWeight{{p.fp.CellOf(r), 1}}
}

// priorPlacement is the early-mode placement: every value shares one
// policy-dependent distribution over registers. The paper's early
// analysis must work before "information about the layout of the RF and
// the placement of registers" exists; the prior encodes only which
// policy the back end will later use.
type priorPlacement struct {
	fp *floorplan.Floorplan
	// cells and weights describe the distribution (parallel slices,
	// weights sum to 1).
	cells   []int
	weights []float64
}

// priorFirstFreeRho is the geometric decay of the first-free prior:
// P(register i) ∝ ρ^i.
const priorFirstFreeRho = 0.7

func newPriorPlacement(prior Prior, fp *floorplan.Floorplan) *priorPlacement {
	p := &priorPlacement{fp: fp}
	k := fp.NumRegs
	switch prior {
	case PriorFirstFree:
		w := 1.0
		total := 0.0
		raw := make([]float64, k)
		for r := 0; r < k; r++ {
			raw[r] = w
			total += w
			w *= priorFirstFreeRho
		}
		for r := 0; r < k; r++ {
			if raw[r]/total < 1e-9 {
				break
			}
			p.cells = append(p.cells, fp.CellOf(r))
			p.weights = append(p.weights, raw[r]/total)
		}
	case PriorUniform:
		w := 1.0 / float64(k)
		for r := 0; r < k; r++ {
			p.cells = append(p.cells, fp.CellOf(r))
			p.weights = append(p.weights, w)
		}
	case PriorChessboard:
		// Mass on the first colour only (the cells the chessboard
		// policy fills while occupancy ≤ ½).
		var black []int
		for r := 0; r < k; r++ {
			c := fp.CellOf(r)
			x, y := fp.XY(c)
			if (x+y)%2 == 0 {
				black = append(black, c)
			}
		}
		w := 1.0 / float64(len(black))
		for _, c := range black {
			p.cells = append(p.cells, c)
			p.weights = append(p.weights, w)
		}
	}
	return p
}

func (p *priorPlacement) deposit(e float64, _ *ir.Value, energy []float64) {
	for i, c := range p.cells {
		energy[c] += e * p.weights[i]
	}
}

func (p *priorPlacement) cellWeights(_ *ir.Value) []cellWeight {
	out := make([]cellWeight, len(p.cells))
	for i, c := range p.cells {
		out[i] = cellWeight{c, p.weights[i]}
	}
	return out
}
