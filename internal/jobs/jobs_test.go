package jobs

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"thermflow"
)

type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_700_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func kernelSpec(t *testing.T, name string, opts thermflow.Options) thermflow.JobSpec {
	t.Helper()
	spec, err := thermflow.JobSpecFromKernel(name, opts)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// slowSpec compiles for tens of milliseconds: cold-start analysis at a
// tight δ, perturbed per call so no two share a cache key.
func slowSpec(t *testing.T, i int) thermflow.JobSpec {
	return kernelSpec(t, "matmul", thermflow.Options{
		NoWarmStart: true,
		Delta:       0.0002 + float64(i)*1e-6,
		MaxIter:     32768,
		Kappa:       1,
	})
}

// The core lifecycle: submit → queued/running → done with a result.
func TestSubmitPollDone(t *testing.T) {
	r := New(thermflow.NewBatch(2), Config{})
	defer r.Close()
	spec := kernelSpec(t, "dot", thermflow.Options{})

	snap, created, err := r.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Error("first submit did not create the job")
	}
	if snap.ID == "" || snap.State.Terminal() {
		t.Fatalf("fresh job snapshot: %+v", snap)
	}
	wantID, _ := spec.ID()
	if snap.ID != wantID {
		t.Errorf("job ID %s, want spec ID %s", snap.ID, wantID)
	}

	final, err := r.Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Compiled == nil || final.Err != nil {
		t.Fatalf("final snapshot: %+v", final)
	}
	if final.Compiled.Thermal == nil || !final.Compiled.Thermal.Converged {
		t.Error("result has no converged analysis")
	}

	// Polling after completion returns the same terminal state.
	got, err := r.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateDone || got.Compiled != final.Compiled {
		t.Errorf("Get after done: %+v", got)
	}
}

// Duplicate submits of the same spec converge on one job and one
// compilation; scheduling hints do not fork identity.
func TestDuplicateSubmitSameJob(t *testing.T) {
	b := thermflow.NewBatch(2)
	r := New(b, Config{})
	defer r.Close()
	spec := kernelSpec(t, "fir", thermflow.Options{Policy: thermflow.Chessboard})

	first, created, err := r.Submit(spec)
	if err != nil || !created {
		t.Fatalf("first submit: %v created=%v", err, created)
	}
	urgent := spec
	urgent.Priority = 99
	urgent.Deadline = time.Hour
	second, created, err := r.Submit(urgent)
	if err != nil {
		t.Fatal(err)
	}
	if created || second.ID != first.ID {
		t.Errorf("duplicate submit created a new job: %v / %s vs %s", created, second.ID, first.ID)
	}
	if _, err := r.Wait(context.Background(), first.ID); err != nil {
		t.Fatal(err)
	}
	if st := b.Stats(); st.Misses != 1 {
		t.Errorf("misses = %d, want 1 (one compilation for both submits)", st.Misses)
	}
	// Submitting again after completion is a lookup, not a re-run.
	done, created, err := r.Submit(spec)
	if err != nil || created {
		t.Fatalf("post-completion submit: %v created=%v", err, created)
	}
	if done.State != StateDone || done.Compiled == nil {
		t.Errorf("post-completion submit snapshot: %+v", done)
	}
}

// A compile failure is a failed job, isolated and reported.
func TestFailedJob(t *testing.T) {
	r := New(thermflow.NewBatch(1), Config{})
	defer r.Close()
	// 64 registers cannot fit a 2x2 grid: allocation fails fast.
	spec := kernelSpec(t, "dot", thermflow.Options{GridW: 2, GridH: 2})
	snap, _, err := r.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final, err := r.Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateFailed || final.Err == nil || final.Compiled != nil {
		t.Fatalf("final snapshot: %+v", final)
	}
}

// A job still queued when its deadline passes expires without running,
// and every polling path observes it.
func TestQueuedJobExpires(t *testing.T) {
	clk := newFakeClock()
	b := thermflow.NewBatch(1)
	r := New(b, Config{Concurrency: 1, Clock: clk.Now})
	defer r.Close()

	// Saturate the single slot.
	if _, _, err := r.Submit(slowSpec(t, 0)); err != nil {
		t.Fatal(err)
	}
	spec := kernelSpec(t, "dot", thermflow.Options{})
	spec.Deadline = 10 * time.Millisecond
	snap, _, err := r.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateQueued {
		t.Fatalf("second job state %s, want queued", snap.State)
	}
	if snap.Deadline.IsZero() {
		t.Fatal("deadline not recorded")
	}

	clk.Advance(20 * time.Millisecond)
	got, err := r.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateExpired {
		t.Fatalf("state after deadline = %s, want expired", got.State)
	}
	if !errors.Is(got.Err, context.DeadlineExceeded) {
		t.Errorf("expired error = %v, want DeadlineExceeded", got.Err)
	}
	// Wait on an already-expired job returns immediately.
	final, err := r.Wait(context.Background(), snap.ID)
	if err != nil || final.State != StateExpired {
		t.Fatalf("Wait on expired job: %+v, %v", final, err)
	}
	// The slow job is unaffected and still completes.
	slowID, _ := slowSpec(t, 0).ID()
	if s, err := r.Wait(context.Background(), slowID); err != nil || s.State != StateDone {
		t.Fatalf("occupying job: %+v, %v", s, err)
	}
}

// Satellite regression: DELETE /v1/cache while v2 jobs are queued and
// running must not orphan their status entries — the registry keeps
// every job addressable and they all complete.
func TestCacheResetDoesNotOrphanJobs(t *testing.T) {
	b := thermflow.NewBatch(1)
	r := New(b, Config{Concurrency: 1})
	defer r.Close()

	ids := make([]string, 3)
	for i := range ids {
		snap, _, err := r.Submit(slowSpec(t, i))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = snap.ID
	}
	// One running, two queued. Reset the result store mid-flight.
	if err := b.ResetCache(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if _, err := r.Get(id); err != nil {
			t.Fatalf("job %s orphaned by cache reset: %v", id, err)
		}
	}
	for _, id := range ids {
		snap, err := r.Wait(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State != StateDone || snap.Compiled == nil {
			t.Fatalf("job %s after reset: %+v", id, snap)
		}
	}
}

// Higher priority runs first when a slot frees.
func TestPriorityOrdersQueue(t *testing.T) {
	r := New(thermflow.NewBatch(1), Config{Concurrency: 1})
	defer r.Close()

	if _, _, err := r.Submit(slowSpec(t, 0)); err != nil {
		t.Fatal(err)
	}
	low := kernelSpec(t, "dot", thermflow.Options{})
	lowSnap, _, err := r.Submit(low)
	if err != nil {
		t.Fatal(err)
	}
	high := kernelSpec(t, "fir", thermflow.Options{})
	high.Priority = 10
	highSnap, _, err := r.Submit(high)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	hs, err := r.Wait(ctx, highSnap.ID)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := r.Wait(ctx, lowSnap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if hs.State != StateDone || ls.State != StateDone {
		t.Fatalf("states: high %s low %s", hs.State, ls.State)
	}
	if hs.Started.After(ls.Started) {
		t.Errorf("high-priority job started at %v, after low-priority %v", hs.Started, ls.Started)
	}
}

// Terminal jobs age out after the TTL; live jobs never do; at the
// capacity bound with only live jobs, Submit refuses.
func TestRetentionAndCapacity(t *testing.T) {
	clk := newFakeClock()
	r := New(thermflow.NewBatch(1), Config{Concurrency: 1, TTL: time.Minute, MaxJobs: 2, Clock: clk.Now})
	defer r.Close()

	quick := kernelSpec(t, "dot", thermflow.Options{})
	snap, _, err := r.Submit(quick)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Wait(context.Background(), snap.ID); err != nil {
		t.Fatal(err)
	}

	// Past the TTL the terminal job is pruned on the next touch — a
	// plain Get on an otherwise idle registry is enough (regression:
	// retention used to be enforced only inside Submit).
	clk.Advance(2 * time.Minute)
	if _, err := r.Get(snap.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("terminal job survived the TTL: %v", err)
	}
	s2, _, err := r.Submit(slowSpec(t, 1))
	if err != nil {
		t.Fatal(err)
	}

	// Fill the registry with live jobs: the next submit is refused.
	if _, _, err := r.Submit(slowSpec(t, 2)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Submit(slowSpec(t, 3)); !errors.Is(err, ErrBusy) {
		t.Errorf("submit over live capacity: %v, want ErrBusy", err)
	}
	// Refused work was not silently registered.
	if st := r.Stats(); st.Queued+st.Running != 2 {
		t.Errorf("stats after refusal: %+v", st)
	}
	if _, err := r.Wait(context.Background(), s2.ID); err != nil {
		t.Fatal(err)
	}
}

// Do runs request-scoped without registering, shares registered jobs
// by ID, and honours the caller's context.
func TestDoSynchronous(t *testing.T) {
	b := thermflow.NewBatch(2)
	r := New(b, Config{})
	defer r.Close()

	spec := kernelSpec(t, "dot", thermflow.Options{})
	snap, err := r.Do(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateDone || snap.Compiled == nil {
		t.Fatalf("Do result: %+v", snap)
	}
	// Unregistered: the ID is not pollable...
	if _, err := r.Get(snap.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("Do registered the job: %v", err)
	}
	// ...but the result is cached, so a registered submit of the same
	// spec is served from the store.
	reg, _, err := r.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	final, err := r.Wait(context.Background(), reg.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || !final.Cached {
		t.Errorf("registered duplicate of Do: %+v", final)
	}

	// A cancelled context surfaces as the job error, not a hang.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	snap, err = r.Do(ctx, slowSpec(t, 7))
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateFailed || !errors.Is(snap.Err, context.Canceled) {
		t.Errorf("Do under cancelled ctx: %+v", snap)
	}
}

// Wait honours its context while the job keeps running.
func TestWaitContextCancellation(t *testing.T) {
	r := New(thermflow.NewBatch(1), Config{Concurrency: 1})
	defer r.Close()
	snap, _, err := r.Submit(slowSpec(t, 20))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	got, err := r.Wait(ctx, snap.ID)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait under expired ctx: %+v, %v", got, err)
	}
	if got.State.Terminal() && got.State != StateDone {
		t.Errorf("snapshot corrupted by wait cancellation: %+v", got)
	}
	// The job is unaffected.
	final, err := r.Wait(context.Background(), snap.ID)
	if err != nil || final.State != StateDone {
		t.Fatalf("job after abandoned wait: %+v, %v", final, err)
	}
}

func TestUnknownJob(t *testing.T) {
	r := New(thermflow.NewBatch(1), Config{})
	defer r.Close()
	if _, err := r.Get("deadbeef"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get unknown: %v", err)
	}
	if _, err := r.Wait(context.Background(), "deadbeef"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Wait unknown: %v", err)
	}
}

// Stream emits one terminal snapshot per spec with stable IDs, sharing
// cache entries with registered work.
func TestStream(t *testing.T) {
	b := thermflow.NewBatch(2)
	r := New(b, Config{})
	defer r.Close()

	specs := []thermflow.JobSpec{
		kernelSpec(t, "dot", thermflow.Options{}),
		kernelSpec(t, "fir", thermflow.Options{}),
		kernelSpec(t, "dot", thermflow.Options{}),                   // duplicate of 0
		kernelSpec(t, "dot", thermflow.Options{GridW: 2, GridH: 2}), // fails
	}
	var mu sync.Mutex
	got := make(map[int]Snapshot)
	ids, err := r.Stream(context.Background(), specs, func(i int, s Snapshot) {
		mu.Lock()
		got[i] = s
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(specs) || len(ids) != len(specs) {
		t.Fatalf("got %d snapshots, %d ids for %d specs", len(got), len(ids), len(specs))
	}
	if ids[0] != ids[2] || ids[0] == ids[1] {
		t.Errorf("ids: %v", ids)
	}
	for i, s := range got {
		if s.ID != ids[i] {
			t.Errorf("snapshot %d carries ID %s, want %s", i, s.ID, ids[i])
		}
	}
	if got[0].State != StateDone || got[1].State != StateDone || got[2].State != StateDone {
		t.Errorf("states: %v %v %v", got[0].State, got[1].State, got[2].State)
	}
	if !got[2].Cached {
		t.Error("duplicate spec not served from cache")
	}
	if got[3].State != StateFailed || got[3].Err == nil {
		t.Errorf("failing spec: %+v", got[3])
	}
}

// heavySpec occupies a worker for long enough that admission tests can
// build queue state behind it without racing its completion.
func heavySpec(t *testing.T, i int) thermflow.JobSpec {
	return kernelSpec(t, "matmul", thermflow.Options{
		NoWarmStart: true,
		Delta:       0.00005 + float64(i)*1e-7,
		MaxIter:     1 << 17,
		Kappa:       1,
	})
}

// prioritySpec is a slow spec carrying a scheduling priority.
func prioritySpec(t *testing.T, i, priority int) thermflow.JobSpec {
	spec := slowSpec(t, 100+i)
	spec.Priority = priority
	return spec
}

// Admission control: below the watermark everything enters; from the
// watermark a submit must outrank queued work; at the hard cap it
// displaces a strictly lower-priority victim or is refused. Sheds are
// counted and attributed by tenant class.
func TestAdmissionWatermarkAndDisplacement(t *testing.T) {
	r := New(thermflow.NewBatch(1), Config{Concurrency: 1, MaxQueue: 4, QueueWatermark: 2})
	defer r.Close()

	// One heavy job holds the single slot; everything after it queues.
	if _, _, err := r.Submit(heavySpec(t, 0)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // depth 0 and 1: below the watermark, free entry
		if _, _, err := r.Submit(prioritySpec(t, i, 5)); err != nil {
			t.Fatal(err)
		}
	}

	// Depth 2 = watermark: a submit that does not outrank queued work
	// sheds, attributed to its class.
	_, _, err := r.SubmitLimited(prioritySpec(t, 2, 0), Limits{Owner: "batchco", Class: "batch"})
	if !errors.Is(err, ErrShed) {
		t.Fatalf("low-priority submit at watermark: %v, want ErrShed", err)
	}

	// Outranking submits pass the watermark band up to the cap.
	if _, _, err := r.Submit(prioritySpec(t, 3, 10)); err != nil {
		t.Fatal(err) // depth 3
	}
	victim, _, err := r.Submit(prioritySpec(t, 4, 5))
	if !errors.Is(err, ErrShed) {
		t.Fatalf("same-rank submit in watermark band: %v, want ErrShed", err)
	}
	q2, _, err := r.Submit(prioritySpec(t, 5, 10))
	if err != nil {
		t.Fatal(err) // depth 4 = cap
	}
	_ = q2

	// At the cap, a higher-priority submit displaces the lowest queued
	// job (youngest within its priority), which fails with ErrShed.
	victimSnap, _, err := r.Submit(prioritySpec(t, 1, 5)) // dedup lookup of queued i=1
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Submit(prioritySpec(t, 6, 20)); err != nil {
		t.Fatal(err)
	}
	got, err := r.Get(victimSnap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateFailed || !errors.Is(got.Err, ErrShed) {
		t.Fatalf("displaced job: state %s err %v, want failed/ErrShed", got.State, got.Err)
	}

	// A submit that merely ties the lowest queued priority at the cap
	// is refused — displacement demands strict outranking.
	if _, _, err := r.Submit(prioritySpec(t, 7, 5)); !errors.Is(err, ErrShed) {
		t.Fatalf("tied-priority submit at cap: %v, want ErrShed", err)
	}

	st := r.Stats()
	if st.MaxQueue != 4 || st.Watermark != 2 {
		t.Errorf("stats bounds: %+v", st)
	}
	if st.Shed != 4 {
		t.Errorf("shed count %d, want 4 (two refusals, one band refusal, one displacement)", st.Shed)
	}
	if st.ShedByClass["batch"] != 1 || st.ShedByClass["none"] != 3 {
		t.Errorf("shed attribution: %v", st.ShedByClass)
	}
	_ = victim
}

// A tenant over its own queued cap is refused with ErrQuota — its
// fault, not the pool's — while other tenants keep entering, and no
// pool shed is counted.
func TestTenantQueueQuota(t *testing.T) {
	r := New(thermflow.NewBatch(1), Config{Concurrency: 1})
	defer r.Close()

	if _, _, err := r.Submit(heavySpec(t, 1)); err != nil {
		t.Fatal(err)
	}
	acme := Limits{Owner: "acme", Class: "standard", MaxQueued: 1}
	if _, _, err := r.SubmitLimited(prioritySpec(t, 10, 0), acme); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.SubmitLimited(prioritySpec(t, 11, 0), acme); !errors.Is(err, ErrQuota) {
		t.Fatalf("second queued submit: %v, want ErrQuota", err)
	}
	// A different tenant is untouched by acme's cap.
	if _, _, err := r.SubmitLimited(prioritySpec(t, 12, 0), Limits{Owner: "rival", MaxQueued: 1}); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Shed != 0 {
		t.Errorf("quota refusal counted as pool shed: %+v", st)
	}
}

// An owner at its running cap is parked, not head-of-line blocking:
// later, lower-priority work from other tenants dispatches past it,
// and the parked job starts once the owner's slot frees.
func TestMaxRunningParksOwner(t *testing.T) {
	r := New(thermflow.NewBatch(2), Config{Concurrency: 2})
	defer r.Close()

	acme := Limits{Owner: "acme", MaxRunning: 1}
	first, _, err := r.SubmitLimited(heavySpec(t, 2), acme)
	if err != nil {
		t.Fatal(err)
	}
	second, _, err := r.SubmitLimited(prioritySpec(t, 20, 50), acme)
	if err != nil {
		t.Fatal(err)
	}
	other, _, err := r.SubmitLimited(prioritySpec(t, 21, 0), Limits{Owner: "rival"})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	os_, err := r.Wait(ctx, other.ID)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := r.Wait(ctx, first.ID)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := r.Wait(ctx, second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if os_.State != StateDone || fs.State != StateDone || ss.State != StateDone {
		t.Fatalf("states: other %s first %s second %s", os_.State, fs.State, ss.State)
	}
	// The rival's job started while acme's first still ran — the parked
	// acme job did not block the free slot despite outranking it.
	if !os_.Started.Before(fs.Finished) {
		t.Errorf("rival started %v, after acme's first finished %v (parked job blocked the slot)",
			os_.Started, fs.Finished)
	}
	// Acme's second waited for acme's own slot, not merely a pool slot.
	if ss.Started.Before(fs.Finished) {
		t.Errorf("acme's second started %v, before its first finished %v (run cap not enforced)",
			ss.Started, fs.Finished)
	}
}

// Priority aging: a low-class job at the back of a saturated queue
// stops being the displacement victim once it has waited. Without
// aging, the fresh high-priority submit at the cap displaces the
// low job (TestAdmissionWatermarkAndDisplacement's behavior) and the
// starving tenant never runs; with aging its effective rank has risen
// past the newcomer, the newcomer sheds instead, and the low job
// dispatches when the slot frees.
func TestPriorityAgingUnstarvesTenant(t *testing.T) {
	clk := newFakeClock()
	r := New(thermflow.NewBatch(1), Config{
		Concurrency: 1, MaxQueue: 2, QueueWatermark: 1,
		AgeStep: 5, AgePeriod: time.Minute, Clock: clk.Now,
	})
	defer r.Close()

	if _, _, err := r.Submit(heavySpec(t, 40)); err != nil { // holds the only slot
		t.Fatal(err)
	}
	low, _, err := r.SubmitLimited(prioritySpec(t, 41, 0), Limits{Owner: "nightly", Class: "batch"})
	if err != nil {
		t.Fatal(err) // depth 0, below the watermark: free entry
	}
	if _, _, err := r.SubmitLimited(prioritySpec(t, 42, 10), Limits{Owner: "trader", Class: "rt"}); err != nil {
		t.Fatal(err) // outranks the fresh low job at the watermark; queue now at cap
	}

	// Three periods later the low job's effective rank is 15. A fresh
	// P10 submit at the cap no longer strictly outranks it, so it is
	// refused — where the unaged registry would have displaced low.
	clk.Advance(3 * time.Minute)
	if _, _, err := r.SubmitLimited(prioritySpec(t, 43, 10), Limits{Owner: "trader", Class: "rt"}); !errors.Is(err, ErrShed) {
		t.Fatalf("fresh high-priority submit against aged queue: %v, want ErrShed", err)
	}
	got, err := r.Get(low.ID)
	if err != nil || got.State != StateQueued {
		t.Fatalf("aged low job after shed attempt: state %s err %v, want queued", got.State, err)
	}
	// The refusal is attributed to the newcomer's class, and the
	// snapshot still reports the submitted priority — aging never
	// rewrites the job, only its scheduling rank.
	if st := r.Stats(); st.ShedByClass["rt"] != 1 {
		t.Errorf("shed attribution: %v, want rt:1", st.ShedByClass)
	}
	if got.Priority != 0 {
		t.Errorf("snapshot priority %d, want the submitted 0", got.Priority)
	}

	// The slot frees, the queue drains, and the starving tenant's job
	// runs to completion instead of dying shed.
	final, err := r.Wait(context.Background(), low.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Err != nil {
		t.Fatalf("aged low job finished %s (err %v), want done", final.State, final.Err)
	}
}
