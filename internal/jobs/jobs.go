// Package jobs layers an addressable, schedulable job lifecycle over
// the batch compile engine: the substrate of thermflowd's v2 API and
// of every later scaling layer (a sharding front server hashes the
// same job IDs this registry files work under).
//
// A job is a thermflow.JobSpec — canonical source plus options — whose
// content-derived ID is its address. Submit registers the job and
// returns immediately; the registry runs it on a bounded number of
// engine slots (higher Priority first), walks it through
// queued → running → done/failed/expired, and retains terminal jobs
// for a bounded time so clients can come back for the result. Because
// the job ID, the batch cache key and the disk-tier entry name are the
// same hash, a duplicate submit converges on the existing job and a
// re-submit of an evicted one is answered from the result store.
//
// Deadlines bound a job's total lifetime from submission, queue wait
// included: a job still queued past its deadline expires without
// running, and a running job's context carries the deadline so
// cancellation points in the engine observe it. Enforcement is exact
// down into the analysis: the tdfa solvers poll the job context per
// block evaluation, so a mid-flight compile stops within one block of
// the deadline instead of running to the next engine boundary (and
// the cancelled failure is never cached).
//
// The registry deliberately does not touch the engine's result store:
// resetting the cache (DELETE /v1/cache) invalidates results, not job
// identity, so queued and running jobs keep their status entries and
// simply recompute.
//
// With Config.Log set, the registry is durable (wal.go): lifecycle
// transitions are written ahead to a joblog WAL and replayed at New,
// so a kill -9'd backend comes back knowing every job ID it ever
// answered — terminal results re-materialize through the
// content-addressed result store, queued jobs re-enter the priority
// heap, and jobs that were running at crash time restart (or fail
// with ErrInterrupted when they no longer can).
package jobs

import (
	"container/heap"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"thermflow"
	"thermflow/internal/joblog"
	"thermflow/internal/trace"
)

// State is a job's lifecycle position.
type State string

// The job lifecycle: Queued and Running are live; Done, Failed and
// Expired are terminal.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
	StateExpired State = "expired"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateExpired
}

// ErrNotFound reports an unknown (or already-evicted) job ID.
var ErrNotFound = errors.New("jobs: no such job")

// ErrBusy reports a registry at capacity with live jobs: every retained
// entry is queued or running, so nothing can be evicted to make room.
var ErrBusy = errors.New("jobs: registry at capacity")

// ErrQuota marks a submit refused because the submitting tenant is
// over its OWN queue bound — the 429 family: this tenant should slow
// down; the pool may be fine.
var ErrQuota = errors.New("tenant over quota")

// ErrShed marks work refused — or already-queued work dropped — by
// admission control because the shared queue crossed its shed
// watermark: the 503 family, pool saturation that is nobody's
// individual fault. Errors wrapping it carry a queue-depth detail.
var ErrShed = errors.New("shed under queue pressure")

// Defaults for Config fields left zero.
const (
	DefaultTTL       = 15 * time.Minute
	DefaultMaxJobs   = 4096
	DefaultAgePeriod = 30 * time.Second
)

// Timer is a cancelable deadline timer, the shape of *time.Timer
// armed by time.AfterFunc. Tests inject fakes through Config.AfterFunc
// so deadline waits are driven by the fake clock, not wall time.
type Timer interface{ Stop() bool }

// Config parameterizes New.
type Config struct {
	// Concurrency bounds how many registered jobs run at once
	// (<= 0 selects the engine's worker-pool size). Jobs beyond it
	// wait in StateQueued, highest Priority first.
	Concurrency int
	// TTL is how long terminal jobs stay pollable (<= 0 selects
	// DefaultTTL). Live jobs never expire from retention.
	TTL time.Duration
	// MaxJobs bounds retained entries, live and terminal together
	// (<= 0 selects DefaultMaxJobs). At the bound, the oldest
	// terminal job is evicted; if every entry is live, Submit
	// returns ErrBusy.
	MaxJobs int
	// MaxQueue bounds how many jobs may wait in the queue at once
	// (0 = unbounded, the pre-admission-control behavior). At the
	// bound, a new submit either displaces strictly lower-priority
	// queued work (which finishes failed with ErrShed) or is itself
	// refused with ErrShed.
	MaxQueue int
	// QueueWatermark is the depth at which admission turns selective:
	// from the watermark up, a submit must outrank something already
	// queued or it is refused with ErrShed — low-priority traffic
	// sheds BEFORE the queue saturates. 0 selects 3/4 of MaxQueue;
	// ignored when MaxQueue is 0.
	QueueWatermark int
	// AgeStep turns on priority aging: a queued job gains AgeStep
	// effective-priority points for every AgePeriod it has waited
	// (0 = aging off). Aging orders dispatch, picks shed victims and
	// gates watermark admission, so a low-class job that keeps losing
	// to fresh high-class traffic eventually outranks it — bounded
	// starvation instead of indefinite displacement. The job's own
	// Priority is never mutated; snapshots report the submitted value.
	AgeStep int
	// AgePeriod is the queue wait that earns one AgeStep (<= 0 with
	// AgeStep > 0 selects DefaultAgePeriod).
	AgePeriod time.Duration
	// Clock overrides the time source (nil selects time.Now).
	Clock func() time.Time
	// AfterFunc overrides deadline-timer creation (nil selects
	// time.AfterFunc). Inject it together with Clock: a fake clock
	// with real timers makes deadline tests timing-dependent.
	AfterFunc func(d time.Duration, f func()) Timer

	// Log, when non-nil, makes the registry durable: every lifecycle
	// transition is appended to the write-ahead log and the registry
	// periodically snapshots-and-truncates it (every SnapshotEvery
	// records; <= 0 selects DefaultSnapshotEvery). Pass the Recovery
	// from joblog.Open to replay a previous process's state.
	Log           *joblog.Log
	Recovery      *joblog.Recovery
	SnapshotEvery int

	// Trace, when non-nil, records each job's lifecycle phases —
	// queue wait, run, solver time — as spans in the job's timeline
	// (GET /v2/jobs/{id}/trace). Jobs submitted without a span context
	// (WAL replays, untraced clients) record nothing.
	Trace *trace.Recorder
}

// Snapshot is an immutable view of one job at one instant.
type Snapshot struct {
	// ID is the job's content identity (thermflow.JobSpec.ID).
	ID string
	// State is the lifecycle position at snapshot time.
	State State
	// Priority and Deadline echo the spec's scheduling hints;
	// Deadline is absolute (zero when the spec had none).
	Priority int
	Deadline time.Time
	// Submitted, Started and Finished are the lifecycle timestamps
	// (zero when not yet reached).
	Submitted, Started, Finished time.Time
	// Cached reports whether the result came from the result store.
	Cached bool
	// Compiled is the result (done only).
	Compiled *thermflow.Compiled
	// Err is the failure (failed and expired only).
	Err error
}

// Limits carries one submit's tenant-admission bounds, resolved by the
// HTTP layer from the tenant's quota profile. The zero value is the
// pre-tenancy behavior: untracked, unbounded.
type Limits struct {
	// Owner names the tenant for per-owner accounting ("" = untracked).
	Owner string
	// Class labels the tenant's priority class for shed attribution.
	Class string
	// MaxQueued caps the owner's simultaneously queued jobs; a submit
	// over it fails with ErrQuota (0 = unlimited).
	MaxQueued int
	// MaxRunning caps the owner's simultaneously running jobs; excess
	// work waits queued while other tenants' jobs dispatch past it
	// (0 = unlimited).
	MaxRunning int
}

// job is the registry's mutable record. All fields are guarded by the
// registry mutex except done, which is closed exactly once under it.
type job struct {
	id       string
	cjob     thermflow.CompileJob
	specJSON []byte // the spec's wire form, kept for the WAL (nil when volatile)
	priority int
	deadline time.Time
	seq      uint64 // submission order, the FIFO tiebreak
	owner    string // submitting tenant ("" = untracked)
	class    string // tenant class, for shed attribution
	maxRun   int    // owner's running cap at submit time (0 = unlimited)

	boost int // aging bonus, recomputed under the registry mutex

	// tr is the submit request's span context (zero for WAL replays and
	// untraced submits — then no spans are recorded). queueSpan/runSpan
	// are minted at dispatch so the solve span can parent under the run
	// span before the run span itself is recorded at finish.
	tr        trace.SpanContext
	queueSpan string
	runSpan   string

	state                        State
	submitted, started, finished time.Time
	cached                       bool
	compiled                     *thermflow.Compiled
	err                          error
	done                         chan struct{}
	qidx                         int // heap index; -1 once popped
}

// effective is the job's scheduling rank: submitted priority plus
// whatever aging has earned it so far.
func (j *job) effective() int { return j.priority + j.boost }

// Registry is the job store and scheduler. Safe for concurrent use.
type Registry struct {
	b     *thermflow.Batch
	conc  int
	ttl   time.Duration
	max   int
	clock func() time.Time
	after func(d time.Duration, f func()) Timer

	log       *joblog.Log // nil when volatile
	snapEvery int

	trace *trace.Recorder // nil disables lifecycle spans

	ctx    context.Context
	cancel context.CancelFunc

	maxQueue  int
	watermark int
	ageStep   int
	agePeriod time.Duration

	mu          sync.Mutex
	jobs        map[string]*job
	queue       jobQueue
	terminal    []*job // completion order, oldest first, for retention
	running     int
	seq         uint64
	owners      map[string]*ownerCounts
	shed        int64
	shedByClass map[string]int64
}

// ownerCounts tracks one tenant's live jobs for quota enforcement.
type ownerCounts struct {
	queued, running int
}

// New builds a registry over the given engine.
func New(b *thermflow.Batch, cfg Config) *Registry {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = b.Workers()
	}
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = DefaultMaxJobs
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.AfterFunc == nil {
		cfg.AfterFunc = func(d time.Duration, f func()) Timer { return time.AfterFunc(d, f) }
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = DefaultSnapshotEvery
	}
	if cfg.MaxQueue > 0 {
		if cfg.QueueWatermark <= 0 || cfg.QueueWatermark > cfg.MaxQueue {
			cfg.QueueWatermark = cfg.MaxQueue * 3 / 4
		}
		if cfg.QueueWatermark < 1 {
			cfg.QueueWatermark = 1
		}
	}
	if cfg.AgeStep > 0 && cfg.AgePeriod <= 0 {
		cfg.AgePeriod = DefaultAgePeriod
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Registry{
		b: b, conc: cfg.Concurrency, ttl: cfg.TTL, max: cfg.MaxJobs,
		clock: cfg.Clock, after: cfg.AfterFunc,
		log: cfg.Log, snapEvery: cfg.SnapshotEvery,
		trace:    cfg.Trace,
		maxQueue: cfg.MaxQueue, watermark: cfg.QueueWatermark,
		ageStep: cfg.AgeStep, agePeriod: cfg.AgePeriod,
		ctx: ctx, cancel: cancel,
		jobs:        make(map[string]*job),
		owners:      make(map[string]*ownerCounts),
		shedByClass: make(map[string]int64),
	}
	if r.log != nil && cfg.Recovery != nil && !cfg.Recovery.Empty() {
		r.mu.Lock()
		r.replayLocked(*cfg.Recovery)
		r.mu.Unlock()
	}
	return r
}

// Close cancels the contexts of running jobs (they finish as failed)
// and stops accepting the results of queued ones being dispatched.
// Registered state stays readable.
func (r *Registry) Close() { r.cancel() }

// Submit registers the job for spec and schedules it, returning its
// snapshot and whether a new job was created. A spec whose ID is
// already registered — live or terminal — converges on that job: the
// same work has the same address, so a duplicate submit is a lookup.
func (r *Registry) Submit(spec thermflow.JobSpec) (Snapshot, bool, error) {
	return r.SubmitLimited(spec, Limits{})
}

// SubmitLimited is Submit under a tenant's admission bounds: the
// owner's queue cap is enforced (ErrQuota), pool-level admission
// control may refuse or displace work (ErrShed), and the owner's run
// cap shapes dispatch. Duplicate submits still converge without
// charging admission — a dedup is a lookup, not new work.
func (r *Registry) SubmitLimited(spec thermflow.JobSpec, lim Limits) (Snapshot, bool, error) {
	return r.SubmitTraced(spec, lim, trace.SpanContext{})
}

// SubmitTraced is SubmitLimited carrying the submit request's span
// context: a genuinely new job records its lifecycle phases as spans
// under sc's trace (an invalid sc records nothing). A duplicate submit
// keeps the first submit's trace — the job is the same work.
func (r *Registry) SubmitTraced(spec thermflow.JobSpec, lim Limits, sc trace.SpanContext) (Snapshot, bool, error) {
	id, err := spec.ID()
	if err != nil {
		return Snapshot{}, false, err
	}
	// Duplicate-submit fast path: a registered ID answers from the
	// registry without re-parsing the source.
	now := r.clock()
	r.mu.Lock()
	r.pruneLocked(now)
	if j, ok := r.jobs[id]; ok {
		r.refreshLocked(j, now)
		snap := snapshotOf(j)
		r.mu.Unlock()
		return snap, false, nil
	}
	r.mu.Unlock()

	// Parse outside the lock; concurrent first submits of one ID may
	// both parse, but only one registers (re-checked below).
	cjob, err := spec.CompileJob()
	if err != nil {
		return Snapshot{}, false, err
	}
	var specJSON []byte
	if r.log != nil {
		if specJSON, err = json.Marshal(spec); err != nil {
			specJSON = nil // still runnable, just not replayable to a re-run
		}
	}
	now = r.clock()
	r.mu.Lock()
	defer r.mu.Unlock()
	if j, ok := r.jobs[id]; ok {
		r.refreshLocked(j, now)
		return snapshotOf(j), false, nil
	}
	for len(r.jobs) >= r.max {
		if !r.evictOldestTerminalLocked() {
			return Snapshot{}, false, ErrBusy
		}
	}
	if err := r.admitLocked(now, spec.Priority, lim); err != nil {
		return Snapshot{}, false, err
	}
	r.seq++
	j := &job{
		id: id, cjob: cjob, specJSON: specJSON, priority: spec.Priority, seq: r.seq,
		owner: lim.Owner, class: lim.Class, maxRun: lim.MaxRunning,
		state: StateQueued, submitted: now,
		done: make(chan struct{}), qidx: -1,
	}
	if sc.Valid() {
		j.tr = sc
	}
	if spec.Deadline > 0 {
		j.deadline = now.Add(spec.Deadline)
	}
	r.jobs[id] = j
	heap.Push(&r.queue, j)
	r.ownerDeltaLocked(j.owner, +1, 0)
	r.logSubmitLocked(j)
	r.dispatchLocked()
	return snapshotOf(j), true, nil
}

// admitLocked is pool admission control, run once per genuinely new
// job. Below the watermark everything is admitted. From the watermark
// up, a submit must strictly outrank the lowest-priority job already
// queued. At the hard cap a submit that outranks queued work displaces
// it — the victim finishes failed with ErrShed — so high-class work is
// never locked out by a backlog of low-class work. All comparisons use
// effective (aged) priority: a job that has waited long enough stops
// being the shed victim and starts refusing fresh traffic instead.
func (r *Registry) admitLocked(now time.Time, priority int, lim Limits) error {
	if lim.Owner != "" && lim.MaxQueued > 0 {
		if oc := r.owners[lim.Owner]; oc != nil && oc.queued >= lim.MaxQueued {
			return fmt.Errorf("jobs: tenant %q has %d jobs queued (cap %d): %w",
				lim.Owner, oc.queued, lim.MaxQueued, ErrQuota)
		}
	}
	if r.maxQueue <= 0 {
		return nil
	}
	r.ageLocked(now)
	depth := r.queue.Len()
	if depth < r.watermark {
		return nil
	}
	low := r.lowestQueuedLocked()
	if depth >= r.maxQueue {
		if low != nil && low.effective() < priority {
			r.shedLocked(low, depth)
			return nil
		}
		r.countShedLocked(lim.Class)
		return fmt.Errorf("jobs: queue full at depth %d: %w", depth, ErrShed)
	}
	if low != nil && priority <= low.effective() {
		r.countShedLocked(lim.Class)
		return fmt.Errorf("jobs: queue depth %d crossed shed watermark %d: %w",
			depth, r.watermark, ErrShed)
	}
	return nil
}

// ageLocked recomputes every queued job's aging boost against one
// captured now and restores heap order. The clock is read exactly once
// per pass and never inside Less — a heap ordered by a moving clock
// silently breaks its invariant.
func (r *Registry) ageLocked(now time.Time) {
	if r.ageStep <= 0 || r.queue.Len() == 0 {
		return
	}
	changed := false
	for _, j := range r.queue {
		b := int(now.Sub(j.submitted)/r.agePeriod) * r.ageStep
		if b < 0 {
			b = 0
		}
		if b != j.boost {
			j.boost = b
			changed = true
		}
	}
	if changed {
		heap.Init(&r.queue)
	}
}

// lowestQueuedLocked finds the shed victim: the lowest effective
// priority queued, youngest first within a rank — the work that would
// have run last anyway.
func (r *Registry) lowestQueuedLocked() *job {
	var low *job
	for _, j := range r.queue {
		if j.state != StateQueued {
			continue
		}
		if low == nil || j.effective() < low.effective() ||
			(j.effective() == low.effective() && j.seq > low.seq) {
			low = j
		}
	}
	return low
}

// shedLocked drops one queued job in favor of higher-priority work.
func (r *Registry) shedLocked(j *job, depth int) {
	r.countShedLocked(j.class)
	r.finishLocked(j, StateFailed, nil, false,
		fmt.Errorf("jobs: displaced by higher-priority work at queue depth %d: %w", depth, ErrShed))
}

func (r *Registry) countShedLocked(class string) {
	if class == "" {
		class = "none"
	}
	r.shed++
	r.shedByClass[class]++
}

// ownerDeltaLocked adjusts one tenant's live-job accounting, dropping
// the entry when it empties so the map tracks only active tenants.
func (r *Registry) ownerDeltaLocked(owner string, dq, dr int) {
	if owner == "" {
		return
	}
	oc := r.owners[owner]
	if oc == nil {
		if dq <= 0 && dr <= 0 {
			return
		}
		oc = &ownerCounts{}
		r.owners[owner] = oc
	}
	oc.queued += dq
	oc.running += dr
	if oc.queued <= 0 && oc.running <= 0 {
		delete(r.owners, owner)
	}
}

// ownerRunningLocked reports a tenant's currently running jobs.
func (r *Registry) ownerRunningLocked(owner string) int {
	if oc := r.owners[owner]; oc != nil {
		return oc.running
	}
	return 0
}

// Get returns the job's current snapshot. Retention is enforced here
// too: a terminal job past the TTL reads as ErrNotFound even on an
// otherwise idle registry.
func (r *Registry) Get(id string) (Snapshot, error) {
	now := r.clock()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneLocked(now)
	j, ok := r.jobs[id]
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	r.refreshLocked(j, now)
	return snapshotOf(j), nil
}

// Wait blocks until the job reaches a terminal state or ctx is done,
// returning the snapshot current at that moment. The returned error is
// ctx's (the job itself is not an error — inspect Snapshot.State); an
// unknown ID is ErrNotFound.
func (r *Registry) Wait(ctx context.Context, id string) (Snapshot, error) {
	r.mu.Lock()
	r.pruneLocked(r.clock())
	j, ok := r.jobs[id]
	r.mu.Unlock()
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	return r.wait(ctx, j)
}

func (r *Registry) wait(ctx context.Context, j *job) (Snapshot, error) {
	// A queued job past its deadline has no dispatcher to expire it
	// until a slot frees; arm a timer so waiters see the expiry when
	// it happens, not when the queue next moves.
	if t := r.expiryTimer(j); t != nil {
		defer t.Stop()
	}
	select {
	case <-j.done:
	case <-ctx.Done():
	}
	now := r.clock()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.refreshLocked(j, now)
	return snapshotOf(j), ctx.Err()
}

// expiryTimer arms a timer that expires the job at its deadline (nil
// when the job has none or is already terminal). Timer creation goes
// through Config.AfterFunc, so a fake clock brings fake timers with it
// and deadline-wait tests need no wall-clock slack. A deadline already
// in the past expires the job here and now — a timer is never armed
// with a non-positive duration.
func (r *Registry) expiryTimer(j *job) Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	if j.deadline.IsZero() || j.state.Terminal() {
		return nil
	}
	now := r.clock()
	d := j.deadline.Sub(now)
	if d <= 0 {
		r.refreshLocked(j, now)
		return nil
	}
	return r.after(d, func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		r.refreshLocked(j, r.clock())
	})
}

// Do runs spec synchronously under the caller's context — the v1
// adapter path. When the spec's ID names a registered job, Do waits on
// it (one identity, one computation); otherwise it compiles through
// the engine directly, request-scoped and unregistered, so a burst of
// synchronous calls cannot evict the registry's addressable jobs.
func (r *Registry) Do(ctx context.Context, spec thermflow.JobSpec) (Snapshot, error) {
	id, err := spec.ID()
	if err != nil {
		return Snapshot{}, err
	}
	r.mu.Lock()
	j, ok := r.jobs[id]
	r.mu.Unlock()
	if ok {
		snap, err := r.wait(ctx, j)
		if err != nil || snap.State.Terminal() {
			// The registered job computed (or will have computed) the
			// result; this caller shared it — the same "served, not
			// compiled for you" that Cached means for v1 duplicates.
			if snap.State == StateDone {
				snap.Cached = true
			}
			return snap, err
		}
		// Fall through on a non-terminal snapshot without a ctx error
		// (cannot happen today; be safe).
	}
	cjob, err := spec.CompileJob()
	if err != nil {
		return Snapshot{}, err
	}
	now := r.clock()
	snap := Snapshot{ID: id, State: StateRunning, Priority: spec.Priority,
		Submitted: now, Started: now}
	if spec.Deadline > 0 {
		snap.Deadline = now.Add(spec.Deadline)
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, snap.Deadline)
		defer cancel()
	}
	res := r.b.Compile(ctx, []thermflow.CompileJob{cjob})[0]
	snap.Finished = r.clock()
	finishSnapshot(&snap, res)
	return snap, nil
}

// Stream runs specs through the engine under the caller's context,
// emitting one snapshot per spec in completion order — the batch
// endpoints' backbone, v1 and v2 alike. The jobs are request-scoped
// and unregistered; emit runs on engine workers and must be safe for
// concurrent use. Specs sharing an ID with a registered job still
// share its computation through the engine's single-flight layer.
// Per-spec deadlines and priorities are not applied here: a batch is
// one request with one context. Returns the IDs, one per spec.
func (r *Registry) Stream(ctx context.Context, specs []thermflow.JobSpec, emit func(int, Snapshot)) ([]string, error) {
	ids := make([]string, len(specs))
	cjobs := make([]thermflow.CompileJob, len(specs))
	for i, spec := range specs {
		id, err := spec.ID()
		if err != nil {
			return nil, fmt.Errorf("job %d: %w", i, err)
		}
		cjob, err := spec.CompileJob()
		if err != nil {
			return nil, fmt.Errorf("job %d: %w", i, err)
		}
		ids[i], cjobs[i] = id, cjob
	}
	start := r.clock()
	r.b.CompileStream(ctx, cjobs, func(i int, res thermflow.CompileResult) {
		snap := Snapshot{ID: ids[i], State: StateRunning,
			Submitted: start, Started: start, Finished: r.clock()}
		finishSnapshot(&snap, res)
		emit(i, snap)
	})
	return ids, nil
}

// finishSnapshot folds a compile result into a terminal snapshot.
func finishSnapshot(snap *Snapshot, res thermflow.CompileResult) {
	snap.Cached = res.Cached
	switch {
	case res.Err == nil:
		snap.State = StateDone
		snap.Compiled = res.Compiled
	case errors.Is(res.Err, context.DeadlineExceeded) && !snap.Deadline.IsZero():
		snap.State = StateExpired
		snap.Err = res.Err
	default:
		snap.State = StateFailed
		snap.Err = res.Err
	}
}

// dispatchLocked starts queued jobs while slots are free, highest
// priority first. Jobs already expired in the queue are finalized, not
// started. A job whose owner is at its running cap is parked — set
// aside and re-queued after the pass — so other tenants' lower-
// priority work dispatches past it instead of head-of-line blocking.
func (r *Registry) dispatchLocked() {
	now := r.clock()
	r.ageLocked(now)
	var parked []*job
	for r.running < r.conc && r.queue.Len() > 0 {
		j := heap.Pop(&r.queue).(*job)
		if j.state != StateQueued {
			continue // finalized while queued (expired)
		}
		if !j.deadline.IsZero() && now.After(j.deadline) {
			r.finishLocked(j, StateExpired, nil, false,
				fmt.Errorf("deadline passed while queued: %w", context.DeadlineExceeded))
			continue
		}
		if j.owner != "" && j.maxRun > 0 && r.ownerRunningLocked(j.owner) >= j.maxRun {
			parked = append(parked, j)
			continue
		}
		j.state = StateRunning
		j.started = now
		r.running++
		r.ownerDeltaLocked(j.owner, -1, +1)
		r.logStartLocked(j)
		r.recordQueuedLocked(j, now, "dispatched")
		go r.run(j)
	}
	for _, j := range parked {
		heap.Push(&r.queue, j)
	}
}

// run executes one dispatched job and finalizes it.
func (r *Registry) run(j *job) {
	ctx := r.ctx
	if !j.deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, j.deadline)
		defer cancel()
	}
	if j.tr.Valid() && r.trace != nil {
		// Each solver pass inside the compile reports through the
		// context observer; recorded as job.solve children of the run
		// span so solver time is separable from engine overhead.
		ctx = thermflow.WithSolverObserver(ctx, func(solver string, seconds float64, converged bool) {
			end := r.clock()
			dur := time.Duration(seconds * float64(time.Second))
			r.trace.Record(j.id, trace.Span{
				TraceID: j.tr.TraceID, SpanID: trace.NewSpanID(), Parent: j.runSpan,
				Name: "job.solve", Start: end.Add(-dur), Duration: dur,
				Attrs: map[string]string{
					"solver":    solver,
					"converged": fmt.Sprintf("%t", converged),
				},
			})
		})
	}
	res := r.b.Compile(ctx, []thermflow.CompileJob{j.cjob})[0]

	r.mu.Lock()
	defer r.mu.Unlock()
	r.running--
	switch {
	case res.Err == nil:
		r.finishLocked(j, StateDone, res.Compiled, res.Cached, nil)
	case errors.Is(res.Err, context.DeadlineExceeded) && !j.deadline.IsZero():
		r.finishLocked(j, StateExpired, nil, false, res.Err)
	default:
		r.finishLocked(j, StateFailed, nil, res.Cached, res.Err)
	}
	r.dispatchLocked()
}

// finishLocked moves a job to a terminal state exactly once. A job
// still sitting in the queue (expired before dispatch) is removed from
// the heap so it neither occupies a slot's pop nor lingers in memory.
func (r *Registry) finishLocked(j *job, state State, c *thermflow.Compiled, cached bool, err error) {
	if j.state.Terminal() {
		return
	}
	was := j.state
	switch j.state {
	case StateQueued:
		r.ownerDeltaLocked(j.owner, -1, 0)
	case StateRunning:
		r.ownerDeltaLocked(j.owner, 0, -1)
	}
	if j.qidx >= 0 {
		heap.Remove(&r.queue, j.qidx)
	}
	j.state = state
	j.compiled = c
	j.cached = cached
	j.err = err
	j.finished = r.clock()
	switch was {
	case StateQueued:
		// Never dispatched: the whole life was queue wait.
		r.recordQueuedLocked(j, j.finished, string(state))
	case StateRunning:
		r.recordRunLocked(j, state)
	}
	r.terminal = append(r.terminal, j)
	r.logFinishLocked(j)
	close(j.done)
}

// recordQueuedLocked records the job.queued span — the time between
// submit and dispatch (or a terminal outcome reached while still
// queued: shed, expired). It also mints the queue/run span IDs so
// later phases parent correctly. No-op for untraced jobs.
func (r *Registry) recordQueuedLocked(j *job, end time.Time, outcome string) {
	if !j.tr.Valid() || r.trace == nil || j.queueSpan != "" {
		return
	}
	j.queueSpan = trace.NewSpanID()
	j.runSpan = trace.NewSpanID()
	r.trace.Record(j.id, trace.Span{
		TraceID: j.tr.TraceID, SpanID: j.queueSpan, Parent: j.tr.SpanID,
		Name: "job.queued", Start: j.submitted, Duration: end.Sub(j.submitted),
		Attrs: map[string]string{"outcome": outcome, "priority": fmt.Sprintf("%d", j.priority)},
	})
}

// recordRunLocked records the job.run span covering dispatch to
// terminal, tagged with the terminal state and whether the result came
// from cache.
func (r *Registry) recordRunLocked(j *job, state State) {
	if !j.tr.Valid() || r.trace == nil || j.runSpan == "" {
		return
	}
	cache := "compute"
	if j.cached {
		cache = "hit"
	}
	r.trace.Record(j.id, trace.Span{
		TraceID: j.tr.TraceID, SpanID: j.runSpan, Parent: j.queueSpan,
		Name: "job.run", Start: j.started, Duration: j.finished.Sub(j.started),
		Attrs: map[string]string{"state": string(state), "cache": cache},
	})
}

// refreshLocked lazily expires a queued or running job whose deadline
// has passed — polling paths (Get, Submit dedup, Wait wake-up) must
// observe the expiry even while the job sits in a saturated queue. A
// running job keeps running (its context is already cancelled); its
// completion finds the job terminal and leaves it be.
func (r *Registry) refreshLocked(j *job, now time.Time) {
	if j.state.Terminal() || j.deadline.IsZero() || !now.After(j.deadline) {
		return
	}
	r.finishLocked(j, StateExpired, nil, false,
		fmt.Errorf("deadline passed in state %s: %w", j.state, context.DeadlineExceeded))
}

// pruneLocked drops terminal jobs past the retention TTL.
func (r *Registry) pruneLocked(now time.Time) {
	cutoff := now.Add(-r.ttl)
	for len(r.terminal) > 0 {
		j := r.terminal[0]
		if j.finished.After(cutoff) {
			break
		}
		r.terminal = r.terminal[1:]
		if r.jobs[j.id] == j {
			delete(r.jobs, j.id)
		}
	}
}

// evictOldestTerminalLocked force-drops the oldest terminal job to
// make room; false when none exists.
func (r *Registry) evictOldestTerminalLocked() bool {
	if len(r.terminal) == 0 {
		return false
	}
	j := r.terminal[0]
	r.terminal = r.terminal[1:]
	if r.jobs[j.id] == j {
		delete(r.jobs, j.id)
	}
	return true
}

// Stats summarizes the registry's current contents.
type Stats struct {
	// Queued, Running and Terminal count retained jobs by lifecycle
	// group; Capacity echoes MaxJobs and Concurrency the run bound.
	Queued, Running, Terminal int
	Capacity, Concurrency     int
	// MaxQueue and Watermark echo the admission-control bounds
	// (0 = admission control off).
	MaxQueue, Watermark int
	// Shed counts every admission-control rejection and displacement
	// since start; ShedByClass attributes them by tenant class
	// ("none" for classless submits).
	Shed        int64
	ShedByClass map[string]int64
}

// Stats snapshots the registry. Counts derive from job states alone,
// not the dispatcher's slot counter: a running job that refreshLocked
// lazily expired is Terminal by state while its run() has yet to
// return and release the slot, and counting the slot would make
// Queued+Running+Terminal exceed the retained jobs.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pruneLocked(r.clock())
	st := Stats{
		Capacity: r.max, Concurrency: r.conc,
		MaxQueue: r.maxQueue, Watermark: r.watermark,
		Shed: r.shed, ShedByClass: make(map[string]int64, len(r.shedByClass)),
	}
	for class, n := range r.shedByClass {
		st.ShedByClass[class] = n
	}
	for _, j := range r.jobs {
		switch {
		case j.state == StateQueued:
			st.Queued++
		case j.state == StateRunning:
			st.Running++
		case j.state.Terminal():
			st.Terminal++
		}
	}
	return st
}

func snapshotOf(j *job) Snapshot {
	return Snapshot{
		ID: j.id, State: j.state, Priority: j.priority, Deadline: j.deadline,
		Submitted: j.submitted, Started: j.started, Finished: j.finished,
		Cached: j.cached, Compiled: j.compiled, Err: j.err,
	}
}

// jobQueue is a max-heap by effective priority, FIFO within a rank.
// Boosts are only ever rewritten by ageLocked, which re-establishes
// the heap invariant itself.
type jobQueue []*job

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(a, b int) bool {
	if pa, pb := q[a].effective(), q[b].effective(); pa != pb {
		return pa > pb
	}
	return q[a].seq < q[b].seq
}
func (q jobQueue) Swap(a, b int) {
	q[a], q[b] = q[b], q[a]
	q[a].qidx, q[b].qidx = a, b
}
func (q *jobQueue) Push(x any) {
	j := x.(*job)
	j.qidx = len(*q)
	*q = append(*q, j)
}
func (q *jobQueue) Pop() any {
	old := *q
	j := old[len(old)-1]
	old[len(old)-1] = nil
	j.qidx = -1
	*q = old[:len(old)-1]
	return j
}
