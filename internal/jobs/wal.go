package jobs

import (
	"container/heap"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"sort"
	"time"

	"thermflow"
	"thermflow/internal/joblog"
)

// This file is the registry's durability layer: every lifecycle
// transition appends one record to a joblog WAL, and New replays the
// log so a kill -9'd backend comes back knowing every job it ever
// answered. Terminal results are NOT stored in the log — the compile
// result already lives in the content-addressed result store under the
// same ID, so replay re-materializes a done job by looking its own ID
// up in the disk tier (Batch.Lookup). The log holds only what the
// store cannot: the lifecycle (states, timestamps, error text) and the
// job's spec, which is what lets a queued or crash-interrupted job
// re-enter the priority heap and recompute.

// WAL record types.
const (
	recSubmit uint32 = 1 // a job entered the registry (payload: full persistedJob, state queued)
	recStart  uint32 = 2 // a queued job was dispatched (payload: ID + StartedNS)
	recFinish uint32 = 3 // a job turned terminal (payload: ID, State, Cached, Err, FinishedNS)
)

// DefaultSnapshotEvery is the snapshot-and-truncate cadence (appended
// records between snapshots) when Config leaves it zero.
const DefaultSnapshotEvery = 512

// ErrInterrupted marks a job that could not be carried across a
// backend restart: it was queued or running when the process died and
// its spec can no longer be re-run (or its result can no longer be
// found). Jobs that CAN re-run simply re-enter the queue instead.
var ErrInterrupted = errors.New("jobs: interrupted by backend restart")

// persistedJob is the wire form of one job in the WAL and the
// snapshot. It doubles as the payload of every record type; records
// fill only the fields their transition changes.
type persistedJob struct {
	ID          string          `json:"id"`
	Spec        json.RawMessage `json:"spec,omitempty"` // thermflow.JobSpec wire form
	Priority    int             `json:"priority,omitempty"`
	Owner       string          `json:"owner,omitempty"`
	Class       string          `json:"class,omitempty"`
	MaxRun      int             `json:"max_run,omitempty"`
	State       State           `json:"state"`
	Cached      bool            `json:"cached,omitempty"`
	Err         string          `json:"error,omitempty"`
	DeadlineNS  int64           `json:"deadline_ns,omitempty"`
	SubmittedNS int64           `json:"submitted_ns,omitempty"`
	StartedNS   int64           `json:"started_ns,omitempty"`
	FinishedNS  int64           `json:"finished_ns,omitempty"`
}

func unixNS(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

func fromUnixNS(ns int64) time.Time {
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// persistLocked renders a job's current state.
func persistLocked(j *job) persistedJob {
	p := persistedJob{
		ID: j.id, Spec: j.specJSON, Priority: j.priority,
		Owner: j.owner, Class: j.class, MaxRun: j.maxRun,
		State: j.state, Cached: j.cached,
		DeadlineNS:  unixNS(j.deadline),
		SubmittedNS: unixNS(j.submitted),
		StartedNS:   unixNS(j.started),
		FinishedNS:  unixNS(j.finished),
	}
	if j.err != nil {
		p.Err = j.err.Error()
	}
	return p
}

// appendLocked writes one WAL record; failures are logged, never
// fatal — a broken disk degrades durability, not availability.
func (r *Registry) appendLocked(typ uint32, p persistedJob) {
	if r.log == nil {
		return
	}
	payload, err := json.Marshal(p)
	if err == nil {
		err = r.log.Append(typ, payload)
	}
	if err != nil {
		log.Printf("jobs: wal append: %v", err)
		return
	}
	if r.log.Records() >= r.snapEvery {
		r.snapshotLocked()
	}
}

// logSubmitLocked, logStartLocked and logFinishLocked record the three
// lifecycle transitions. A finish is the moment a client could have
// observed the result, so it flushes the fsync batch: after the HTTP
// response says "done", a crash must not forget it.
func (r *Registry) logSubmitLocked(j *job) { r.appendLocked(recSubmit, persistLocked(j)) }

func (r *Registry) logStartLocked(j *job) {
	r.appendLocked(recStart, persistedJob{ID: j.id, State: j.state, StartedNS: unixNS(j.started)})
}

func (r *Registry) logFinishLocked(j *job) {
	p := persistedJob{ID: j.id, State: j.state, Cached: j.cached, FinishedNS: unixNS(j.finished)}
	if j.err != nil {
		p.Err = j.err.Error()
	}
	r.appendLocked(recFinish, p)
	if r.log != nil {
		if err := r.log.Sync(); err != nil {
			log.Printf("jobs: wal sync: %v", err)
		}
	}
}

// snapshotLocked writes the full registry state as the log's snapshot
// and truncates the WAL. Terminal order is preserved so retention
// replays in completion order.
func (r *Registry) snapshotLocked() {
	if r.log == nil {
		return
	}
	jobs := make([]persistedJob, 0, len(r.jobs))
	seen := make(map[string]bool, len(r.jobs))
	// Terminal jobs first, oldest-completion first — the replay seeds
	// r.terminal in append order.
	for _, j := range r.terminal {
		if r.jobs[j.id] == j && !seen[j.id] {
			seen[j.id] = true
			jobs = append(jobs, persistLocked(j))
		}
	}
	live := make([]*job, 0, len(r.jobs))
	for _, j := range r.jobs {
		if !seen[j.id] {
			live = append(live, j)
		}
	}
	sort.Slice(live, func(a, b int) bool { return live[a].seq < live[b].seq })
	for _, j := range live {
		jobs = append(jobs, persistLocked(j))
	}
	payload, err := json.Marshal(jobs)
	if err == nil {
		err = r.log.Snapshot(payload)
	}
	if err != nil {
		log.Printf("jobs: wal snapshot: %v", err)
	}
}

// replayLocked rebuilds the registry from a recovery: snapshot state
// plus the record suffix, folded per job, then materialized. Called by
// New before the registry is shared; r.mu is held for the dispatch it
// ends with.
func (r *Registry) replayLocked(rec joblog.Recovery) {
	byID := make(map[string]*persistedJob)
	var order []string
	upsert := func(p persistedJob) *persistedJob {
		if have, ok := byID[p.ID]; ok {
			return have
		}
		cp := p
		byID[p.ID] = &cp
		order = append(order, p.ID)
		return &cp
	}
	if rec.Snapshot != nil {
		var jobs []persistedJob
		if err := json.Unmarshal(rec.Snapshot, &jobs); err != nil {
			log.Printf("jobs: wal snapshot unreadable, replaying records only: %v", err)
		} else {
			for _, p := range jobs {
				upsert(p)
			}
		}
	}
	for _, wr := range rec.Records {
		var p persistedJob
		if err := json.Unmarshal(wr.Payload, &p); err != nil || p.ID == "" {
			continue // one bad record loses one transition, not the log
		}
		switch wr.Type {
		case recSubmit:
			upsert(p)
		case recStart:
			if j, ok := byID[p.ID]; ok && !j.State.Terminal() {
				j.State = StateRunning
				j.StartedNS = p.StartedNS
			}
		case recFinish:
			if j, ok := byID[p.ID]; ok && !j.State.Terminal() {
				j.State = p.State
				j.Cached = p.Cached
				j.Err = p.Err
				j.FinishedNS = p.FinishedNS
			}
		}
	}

	now := r.clock()
	restored, requeued, interrupted := 0, 0, 0
	for _, id := range order {
		switch r.materializeLocked(*byID[id], now) {
		case replayRestored:
			restored++
		case replayRequeued:
			requeued++
		case replayInterrupted:
			interrupted++
		}
	}
	if len(order) > 0 {
		log.Printf("jobs: replayed %d jobs from log (%d terminal restored, %d requeued, %d interrupted)",
			len(order), restored, requeued, interrupted)
	}
	if rec.DroppedBytes > 0 || rec.DroppedSnapshot {
		log.Printf("jobs: wal recovery dropped %d torn bytes (snapshot dropped: %v)",
			rec.DroppedBytes, rec.DroppedSnapshot)
	}
	// Compact: the rebuilt state becomes the new snapshot and the old
	// WAL is truncated, so restarts do not re-pay ever-longer replays.
	r.snapshotLocked()
	r.dispatchLocked()
}

type replayOutcome int

const (
	replayRestored replayOutcome = iota
	replayRequeued
	replayInterrupted
)

// materializeLocked installs one replayed job. Terminal done jobs
// re-materialize their result from the content-addressed store; a
// vanished result (evicted, or the cache directory was lost) re-queues
// the job — same ID, same content, a recompute converges on the same
// result. Queued and crash-interrupted running jobs re-enter the heap;
// only a job that cannot re-run fails, attributably, as interrupted.
func (r *Registry) materializeLocked(p persistedJob, now time.Time) replayOutcome {
	j := &job{
		id: p.ID, priority: p.Priority, specJSON: p.Spec,
		owner: p.Owner, class: p.Class, maxRun: p.MaxRun,
		deadline:  fromUnixNS(p.DeadlineNS),
		submitted: fromUnixNS(p.SubmittedNS),
		started:   fromUnixNS(p.StartedNS),
		done:      make(chan struct{}), qidx: -1,
	}
	r.seq++
	j.seq = r.seq

	installTerminal := func(state State, cached bool, err error) {
		j.state = state
		j.cached = cached
		j.err = err
		j.finished = fromUnixNS(p.FinishedNS)
		if j.finished.IsZero() {
			j.finished = now
		}
		r.jobs[j.id] = j
		r.terminal = append(r.terminal, j)
		close(j.done)
	}

	switch {
	case p.State == StateDone:
		if c, ok := r.b.Lookup(p.ID); ok {
			// Served from the disk tier: the same bytes the pre-crash
			// process answered with, marked cached like any store hit.
			installTerminal(StateDone, true, nil)
			j.compiled = c
			return replayRestored
		}
	case p.State.Terminal():
		var err error
		if p.Err != "" {
			err = errors.New(p.Err)
		}
		installTerminal(p.State, p.Cached, err)
		return replayRestored
	}

	// Queued, running at crash time, or done with a vanished result:
	// the job must run (again). Past-deadline jobs expire rather than
	// restart, and a spec that cannot be re-parsed fails attributably.
	if !j.deadline.IsZero() && now.After(j.deadline) {
		installTerminal(StateExpired, false,
			fmt.Errorf("deadline passed across restart: %w", ErrInterrupted))
		return replayInterrupted
	}
	cjob, err := r.reparseSpec(p)
	if err != nil {
		installTerminal(StateFailed, false, fmt.Errorf("%w: %v", ErrInterrupted, err))
		return replayInterrupted
	}
	j.cjob = cjob
	j.state = StateQueued
	j.started = time.Time{} // restarting: the old start time is void
	r.jobs[j.id] = j
	heap.Push(&r.queue, j)
	r.ownerDeltaLocked(j.owner, +1, 0)
	return replayRequeued
}

// reparseSpec rebuilds a runnable CompileJob from a persisted spec.
func (r *Registry) reparseSpec(p persistedJob) (thermflow.CompileJob, error) {
	if len(p.Spec) == 0 {
		return thermflow.CompileJob{}, fmt.Errorf("no spec recorded")
	}
	var spec thermflow.JobSpec
	if err := json.Unmarshal(p.Spec, &spec); err != nil {
		return thermflow.CompileJob{}, fmt.Errorf("spec unreadable: %v", err)
	}
	return spec.CompileJob()
}
