package jobs

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"thermflow"
	"thermflow/internal/joblog"
)

// durableDirs are the two directories a durable registry survives on:
// the content-addressed result store and the job log. A "restart"
// opens fresh objects over the same directories; a "crash" closes the
// log mid-flight (freezing the WAL exactly as a dead process would
// leave it) without any orderly shutdown.
type durableDirs struct {
	cache, log string
}

func newDurableDirs(t *testing.T) durableDirs {
	t.Helper()
	base := t.TempDir()
	return durableDirs{cache: filepath.Join(base, "cache"), log: filepath.Join(base, "joblog")}
}

// open builds a registry over the dirs, replaying whatever a previous
// incarnation left behind.
func (d durableDirs) open(t *testing.T, cfg Config) (*Registry, *joblog.Log) {
	t.Helper()
	b, err := thermflow.NewBatchConfig(thermflow.BatchConfig{Workers: 2, CacheDir: d.cache})
	if err != nil {
		t.Fatal(err)
	}
	l, rec, err := joblog.Open(d.log, joblog.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Log = l
	cfg.Recovery = &rec
	return New(b, cfg), l
}

// crash freezes the WAL (appends from the abandoned registry start
// failing, as they would with the process dead) and cancels its
// running jobs so the test machine quiets down.
func crash(r *Registry, l *joblog.Log) {
	l.Close()
	r.Close()
}

func fastSpec(t *testing.T, i int) thermflow.JobSpec {
	// NumRegs stays within the default floorplan; Delta keeps large
	// indices content-distinct anyway.
	return kernelSpec(t, "dot", thermflow.Options{
		NumRegs: 8 + i%32, Delta: 0.001 + float64(i)*1e-6, SkipAnalysis: true,
	})
}

func waitDone(t *testing.T, r *Registry, id string) Snapshot {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	snap, err := r.Wait(ctx, id)
	if err != nil {
		t.Fatalf("waiting on %s: %v", id, err)
	}
	return snap
}

// A restarted registry re-answers every job the dead one answered:
// terminal done jobs re-materialize their results from the disk tier.
func TestReplayRestoresTerminalResults(t *testing.T) {
	dirs := newDurableDirs(t)
	r1, l1 := dirs.open(t, Config{})

	var ids []string
	for i := 0; i < 3; i++ {
		snap, _, err := r1.Submit(fastSpec(t, i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, snap.ID)
	}
	for _, id := range ids {
		if snap := waitDone(t, r1, id); snap.State != StateDone {
			t.Fatalf("pre-crash job %s: %+v", id, snap)
		}
	}
	crash(r1, l1)

	r2, l2 := dirs.open(t, Config{})
	defer crash(r2, l2)
	for _, id := range ids {
		snap, err := r2.Get(id)
		if err != nil {
			t.Fatalf("job %s vanished across restart: %v", id, err)
		}
		if snap.State != StateDone || snap.Compiled == nil {
			t.Fatalf("replayed job %s: state %s, compiled %v", id, snap.State, snap.Compiled != nil)
		}
		if !snap.Cached {
			t.Errorf("replayed job %s not marked cached (it was served from the store)", id)
		}
	}
	if st := r2.Stats(); st.Terminal != len(ids) {
		t.Fatalf("replayed stats %+v, want %d terminal", st, len(ids))
	}
}

// Jobs that were queued or running when the process died re-enter the
// queue on replay and run to completion.
func TestReplayRequeuesLiveJobs(t *testing.T) {
	dirs := newDurableDirs(t)
	r1, l1 := dirs.open(t, Config{Concurrency: 1})

	var ids []string
	for i := 0; i < 3; i++ {
		snap, _, err := r1.Submit(slowSpec(t, i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, snap.ID)
	}
	// One running (concurrency 1), two queued. Crash now.
	crash(r1, l1)

	r2, l2 := dirs.open(t, Config{Concurrency: 2})
	defer crash(r2, l2)
	for _, id := range ids {
		if _, err := r2.Get(id); err != nil {
			t.Fatalf("live job %s vanished across restart: %v", id, err)
		}
	}
	for _, id := range ids {
		if snap := waitDone(t, r2, id); snap.State != StateDone {
			t.Fatalf("requeued job %s finished as %s (%v)", id, snap.State, snap.Err)
		}
	}
}

// Property: crash at a random point in a random workload, replay, and
// (a) every submitted ID still resolves, (b) every job observed
// terminal before the crash replays with the same state and a result,
// (c) everything else converges to done.
func TestReplayPropertyRandomCrashPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 3; round++ {
		dirs := newDurableDirs(t)
		// A small snapshot cadence exercises snapshot-and-truncate
		// mid-workload, so replay folds snapshot state plus a record
		// suffix, not records alone.
		r1, l1 := dirs.open(t, Config{Concurrency: 2, SnapshotEvery: 4})

		n := 4 + rng.Intn(4)
		ids := make([]string, n)
		for i := 0; i < n; i++ {
			var spec thermflow.JobSpec
			if rng.Intn(2) == 0 {
				spec = fastSpec(t, 100*round+i)
			} else {
				spec = slowSpec(t, 100*round+i)
			}
			snap, _, err := r1.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			ids[i] = snap.ID
		}
		// Force a random subset terminal before the crash.
		for _, i := range rng.Perm(n)[:rng.Intn(n+1)] {
			waitDone(t, r1, ids[i])
		}
		preCrash := make(map[string]Snapshot, n)
		for _, id := range ids {
			snap, err := r1.Get(id)
			if err != nil {
				t.Fatalf("round %d: pre-crash Get(%s): %v", round, id, err)
			}
			preCrash[id] = snap
		}
		crash(r1, l1)

		r2, l2 := dirs.open(t, Config{Concurrency: 2})
		for _, id := range ids {
			snap, err := r2.Get(id)
			if err != nil {
				t.Fatalf("round %d: job %s vanished across restart: %v", round, id, err)
			}
			if pre := preCrash[id]; pre.State.Terminal() {
				if snap.State != pre.State {
					t.Fatalf("round %d: job %s replayed as %s, was %s pre-crash",
						round, id, snap.State, pre.State)
				}
				if pre.State == StateDone && snap.Compiled == nil {
					t.Fatalf("round %d: done job %s replayed without a result", round, id)
				}
			}
		}
		for _, id := range ids {
			if snap := waitDone(t, r2, id); snap.State != StateDone {
				t.Fatalf("round %d: job %s converged to %s (%v)", round, id, snap.State, snap.Err)
			}
		}
		crash(r2, l2)
	}
}

// A torn final record — the bytes a crash mid-write leaves behind — is
// discarded on replay, never fatal, and costs at most that one
// transition: the job re-runs instead of resolving terminally.
func TestReplayTornTailDiscarded(t *testing.T) {
	dirs := newDurableDirs(t)
	r1, l1 := dirs.open(t, Config{})
	var ids []string
	for i := 0; i < 2; i++ {
		snap, _, err := r1.Submit(fastSpec(t, 10+i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, snap.ID)
		waitDone(t, r1, snap.ID)
	}
	crash(r1, l1)

	// Tear the WAL tail mid-record.
	walPath := filepath.Join(dirs.log, "wal.tfj")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-5], 0o666); err != nil {
		t.Fatal(err)
	}
	lCheck, rec, err := joblog.Open(dirs.log, joblog.Options{})
	if err != nil {
		t.Fatalf("torn registry WAL must open: %v", err)
	}
	if rec.DroppedBytes == 0 {
		t.Fatalf("torn tail not reported: %+v", rec)
	}
	lCheck.Close()

	r2, l2 := dirs.open(t, Config{})
	defer crash(r2, l2)
	for _, id := range ids {
		if _, err := r2.Get(id); err != nil {
			t.Fatalf("job %s lost to a torn tail: %v", id, err)
		}
		// The job whose finish record was torn replays as queued and
		// recomputes; content addressing converges it on the same done
		// result either way.
		if snap := waitDone(t, r2, id); snap.State != StateDone {
			t.Fatalf("job %s after torn-tail replay: %s (%v)", id, snap.State, snap.Err)
		}
	}
}

// Stats derives Running from job states, so a running job that the
// poll path lazily expired (terminal by state, engine slot not yet
// released) is counted once: Queued+Running+Terminal equals the
// retained jobs, and Running excludes the zombie slot.
func TestStatsExcludesLazilyExpiredRunningSlot(t *testing.T) {
	clk := newFakeClock()
	r := New(thermflow.NewBatch(1), Config{Concurrency: 1, Clock: clk.Now})
	defer r.Close()
	snap, _, err := r.Submit(slowSpec(t, 50))
	if err != nil {
		t.Fatal(err)
	}

	r.mu.Lock()
	j := r.jobs[snap.ID]
	// Force the lazily-expired-while-running shape deterministically:
	// finalize exactly as refreshLocked would for a passed deadline,
	// while run() still holds the slot. (Mutating j.deadline itself
	// would race with run()'s unlocked read of the immutable field.)
	if j.state != StateRunning {
		r.mu.Unlock()
		t.Fatalf("job not dispatched: %s", j.state)
	}
	r.finishLocked(j, StateExpired, nil, false,
		fmt.Errorf("deadline passed in state %s: %w", j.state, context.DeadlineExceeded))
	if !j.state.Terminal() {
		r.mu.Unlock()
		t.Fatalf("finish did not expire the job: %s", j.state)
	}
	r.mu.Unlock()

	st := r.Stats()
	if st.Running != 0 {
		t.Fatalf("Stats counts %d running; the only job is terminal", st.Running)
	}
	if total := st.Queued + st.Running + st.Terminal; total != 1 {
		t.Fatalf("Queued+Running+Terminal = %d with 1 retained job", total)
	}
}

type fakeTimer struct{ stopped bool }

func (ft *fakeTimer) Stop() bool { ft.stopped = true; return true }

// Deadline timers go through Config.AfterFunc: with a fake clock and a
// fake timer factory, a deadline wait fires on Advance plus an
// explicit tick — no wall-clock timer, no real-time slack — and a
// deadline already in the past never arms a timer at all.
func TestDeadlineTimersThroughInjectedFactory(t *testing.T) {
	clk := newFakeClock()
	var mu sync.Mutex
	var armed []time.Duration
	var fire func()
	after := func(d time.Duration, f func()) Timer {
		mu.Lock()
		defer mu.Unlock()
		if d <= 0 {
			t.Errorf("timer armed with non-positive duration %v", d)
		}
		armed = append(armed, d)
		fire = f
		return &fakeTimer{}
	}
	r := New(thermflow.NewBatch(1), Config{Concurrency: 1, Clock: clk.Now, AfterFunc: after})
	defer r.Close()

	// Occupy the only slot so the deadlined job stays queued — there
	// the expiry timer is the only thing that can wake a waiter.
	if _, _, err := r.Submit(slowSpec(t, 60)); err != nil {
		t.Fatal(err)
	}
	spec := slowSpec(t, 61)
	spec.Deadline = 5 * time.Second
	snap, _, err := r.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	got := make(chan Snapshot, 1)
	go func() {
		s, _ := r.Wait(context.Background(), snap.ID)
		got <- s
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := len(armed)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Wait never armed a deadline timer through AfterFunc")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	if armed[0] != 5*time.Second {
		t.Fatalf("timer armed for %v, want the full 5s to the deadline", armed[0])
	}
	f := fire
	mu.Unlock()

	clk.Advance(10 * time.Second)
	f()
	if s := <-got; s.State != StateExpired {
		t.Fatalf("deadlined job woke as %s, want expired", s.State)
	}

	// A deadline already passed at Wait time expires inline; no timer.
	spec2 := slowSpec(t, 62)
	spec2.Deadline = time.Second
	snap2, _, err := r.Submit(spec2)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Second)
	s2, err := r.Wait(context.Background(), snap2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if s2.State != StateExpired {
		t.Fatalf("past-deadline job state %s, want expired", s2.State)
	}
	mu.Lock()
	if len(armed) != 1 {
		t.Fatalf("past-deadline wait armed a timer: %v", armed)
	}
	mu.Unlock()
}

// Replay restores tenant accounting: jobs requeued across a restart
// still count toward their owner's queue quota, so a tenant cannot
// launder its backlog through a backend crash.
func TestReplayRestoresOwnerAccounting(t *testing.T) {
	dirs := newDurableDirs(t)
	r1, l1 := dirs.open(t, Config{Concurrency: 1})

	acme := Limits{Owner: "acme", Class: "standard", MaxQueued: 5}
	for i := 0; i < 3; i++ {
		if _, _, err := r1.SubmitLimited(heavySpec(t, 10+i), acme); err != nil {
			t.Fatal(err)
		}
	}
	// One running, two queued under acme. Crash now.
	crash(r1, l1)

	r2, l2 := dirs.open(t, Config{Concurrency: 1})
	defer crash(r2, l2)
	// The replayed registry re-dispatched one job and requeued two, so
	// acme sits at 2 queued: a cap of 2 refuses the next submit.
	_, _, err := r2.SubmitLimited(heavySpec(t, 20), Limits{Owner: "acme", MaxQueued: 2})
	if !errors.Is(err, ErrQuota) {
		t.Fatalf("post-replay submit under restored accounting: %v, want ErrQuota", err)
	}
	// The cap is acme's alone: another tenant enters freely.
	if _, _, err := r2.SubmitLimited(heavySpec(t, 21), Limits{Owner: "rival", MaxQueued: 2}); err != nil {
		t.Fatal(err)
	}
}
