package batch

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"thermflow/internal/cachestore"
)

// DefaultErrTTL bounds how long a deterministic failure is served from
// the store before the job is retried. Errors are worth caching — a
// known-bad job hammering the pool wastes it — but not worth pinning:
// a transient failure (resource pressure, a since-fixed bug behind a
// hook) must un-pin itself without a cache reset.
const DefaultErrTTL = 30 * time.Second

// Job is one unit of work. Fn must be safe to call from any goroutine.
type Job struct {
	// Key is the content key of the job's result. Jobs with equal keys
	// are assumed to compute identical values: the first one runs, the
	// rest share its result (including across Run calls on the same
	// Runner, and — when the Runner's store has a disk tier — across
	// processes). An empty key disables caching for the job.
	Key string
	// Fn computes the result. It should honour ctx for long work.
	Fn func(ctx context.Context) (any, error)
}

// Result is one job's outcome.
type Result struct {
	// Value is the job's return value (nil on error).
	Value any
	// Err is the job's error: the Fn error, a recovered panic, or the
	// context error for jobs cancelled before running.
	Err error
	// Cached reports whether the value was served by the result store
	// (either tier, from a previous Run, or from a duplicate key in
	// flight).
	Cached bool
}

// Stats summarizes a Runner's cache behaviour. Tier-level detail
// (entries, bytes, evictions, disk hits) lives in Runner.Store().
type Stats struct {
	// Hits counts jobs served from the store or an in-flight
	// duplicate, Misses jobs that ran.
	Hits, Misses uint64
	// Panics counts jobs that panicked (isolated into their Result).
	Panics uint64
}

// Runner executes job batches over a worker pool of fixed size,
// retaining its result store across Run calls. A Runner is safe for
// concurrent use.
type Runner struct {
	workers int
	store   *cachestore.Store
	errTTL  time.Duration

	mu       sync.Mutex
	inflight map[string]*entry

	hits, misses, panics atomic.Uint64
}

// entry is a single-flight slot for one in-flight key: done closes
// when the computing job finishes, after which val/err/dropped are
// immutable.
type entry struct {
	done chan struct{}
	val  any
	err  error
	// dropped marks a computation that failed under a cancelled
	// context; waiters with live contexts retry instead of inheriting
	// the foreign cancellation.
	dropped bool
}

// errValue wraps a deterministic failure for storage: the store holds
// values, not Results, and a wrapped error is how "this key always
// fails" is cached. It is unexported, so codecs (which live outside
// this package) cannot encode it — cached failures never reach disk.
type errValue struct{ err error }

// NewRunner returns a Runner with the given worker-pool size and a
// default memory-only result store; workers <= 0 selects GOMAXPROCS.
func NewRunner(workers int) *Runner {
	store, err := cachestore.Open(cachestore.Config{})
	if err != nil {
		// Unreachable: a memory-only Open cannot fail.
		panic(fmt.Sprintf("batch: default store: %v", err))
	}
	return NewRunnerStore(workers, store)
}

// NewRunnerStore returns a Runner over the given result store, which
// supplies the memory tier's byte cap and (optionally) a disk tier
// that survives the process.
func NewRunnerStore(workers int, store *cachestore.Store) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers, store: store, errTTL: DefaultErrTTL,
		inflight: make(map[string]*entry)}
}

// Workers returns the worker-pool size.
func (r *Runner) Workers() int { return r.workers }

// SetErrTTL overrides how long cached failures are served before the
// job is retried; d <= 0 restores DefaultErrTTL. Call before the first
// Run.
func (r *Runner) SetErrTTL(d time.Duration) {
	if d <= 0 {
		d = DefaultErrTTL
	}
	r.errTTL = d
}

// Store returns the Runner's result store (for tier stats).
func (r *Runner) Store() *cachestore.Store { return r.store }

// Inflight returns the number of keyed computations currently holding
// a single-flight slot — work the engine is executing or probing the
// store for right now. It is a point-in-time observability reading
// (the /metrics inflight gauge), not a synchronization primitive.
func (r *Runner) Inflight() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.inflight)
}

// Stats returns the cache counters accumulated so far.
func (r *Runner) Stats() Stats {
	return Stats{Hits: r.hits.Load(), Misses: r.misses.Load(), Panics: r.panics.Load()}
}

// ResetCache drops every stored result — both tiers — and zeroes the
// stats counters. In-flight computations complete but are not
// re-registered. The first error removing disk entries is returned;
// the store is cleared regardless.
func (r *Runner) ResetCache() error {
	r.mu.Lock()
	// Abandon (don't wait for) in-flight entries: their completions
	// see themselves deregistered and skip the store write. The map
	// must be cleared BEFORE the store: finish() relies on that order
	// to decide whether a racing Put needs taking back.
	r.inflight = make(map[string]*entry)
	r.mu.Unlock()
	err := r.store.Reset()
	r.hits.Store(0)
	r.misses.Store(0)
	r.panics.Store(0)
	return err
}

// Run executes the jobs and returns one Result per job, in order. It
// blocks until every job has finished, failed, or been skipped due to
// context cancellation; it never returns an error itself — each job's
// outcome is isolated in its Result.
func (r *Runner) Run(ctx context.Context, jobs []Job) []Result {
	return r.RunStream(ctx, jobs, nil)
}

// RunStream is Run with a completion hook: emit (when non-nil) is
// called once per job, with the job's index and its Result, as soon as
// that job finishes — duplicates of an in-flight key fire immediately
// after their representative. Emission order is completion order, not
// job order. emit is called from the worker goroutines, so it must be
// safe for concurrent use; a slow emit backpressures the worker that
// calls it.
func (r *Runner) RunStream(ctx context.Context, jobs []Job, emit func(int, Result)) []Result {
	out := make([]Result, len(jobs))
	deliver := func(i int, res Result) {
		out[i] = res
		if emit != nil {
			emit(i, res)
		}
	}

	// Dedupe keyed jobs up front: one representative per key runs, the
	// duplicates share its result afterwards. Without this a duplicate
	// would park a worker on the in-flight entry, shrinking the pool
	// while unique jobs queue behind it.
	reps := make([]int, 0, len(jobs))
	followers := make(map[int][]int)
	seen := make(map[string]int, len(jobs))
	for i, j := range jobs {
		if j.Key != "" {
			if ri, ok := seen[j.Key]; ok {
				followers[ri] = append(followers[ri], i)
				continue
			}
			seen[j.Key] = i
		}
		reps = append(reps, i)
	}

	idx := make(chan int, len(reps))
	for _, i := range reps {
		idx <- i
	}
	close(idx)

	n := r.workers
	if n > len(reps) {
		n = len(reps)
	}
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				var res Result
				if err := ctx.Err(); err != nil {
					res = Result{Err: err}
				} else {
					res = r.runJob(ctx, jobs[i])
				}
				deliver(i, res)
				fres := res
				if fres.Err == nil {
					fres.Cached = true
				}
				for _, fi := range followers[i] {
					if fres.Err == nil {
						r.hits.Add(1)
					}
					deliver(fi, fres)
				}
			}
		}()
	}
	wg.Wait()
	return out
}

// runJob executes one job through the single-flight layer and the
// result store.
func (r *Runner) runJob(ctx context.Context, job Job) Result {
	if job.Key == "" {
		r.misses.Add(1)
		v, err := r.safeCall(ctx, job.Fn)
		return Result{Value: v, Err: err}
	}
	for {
		r.mu.Lock()
		if e, ok := r.inflight[job.Key]; ok {
			r.mu.Unlock()
			select {
			case <-e.done:
				if e.dropped {
					// The computing caller was cancelled; that is not
					// a property of the key — retry under our context.
					continue
				}
				r.hits.Add(1)
				return Result{Value: e.val, Err: e.err, Cached: true}
			case <-ctx.Done():
				return Result{Err: ctx.Err()}
			}
		}
		e := &entry{done: make(chan struct{})}
		r.inflight[job.Key] = e
		r.mu.Unlock()

		// Probe the store while holding the in-flight slot, so a slow
		// disk read also happens once per key, with duplicates parked
		// on the entry rather than hammering the disk.
		if v, ok := r.store.Get(job.Key); ok {
			if ev, isErr := v.(errValue); isErr {
				e.err = ev.err
			} else {
				e.val = v
			}
			r.hits.Add(1)
			r.finish(job.Key, e, false)
			return Result{Value: e.val, Err: e.err, Cached: true}
		}

		r.misses.Add(1)
		e.val, e.err = r.safeCall(ctx, job.Fn)
		if e.err != nil && ctx.Err() != nil {
			// A cancellation-tainted failure is not a property of the
			// key; drop the entry so waiters and later Runs retry.
			e.dropped = true
			r.finish(job.Key, e, false)
			return Result{Value: e.val, Err: e.err}
		}
		r.finish(job.Key, e, true)
		return Result{Value: e.val, Err: e.err}
	}
}

// finish completes an in-flight entry: optionally persists its result
// to the store, deregisters it, and releases waiters. The store write
// is skipped when the entry is no longer registered — ResetCache
// abandoned it, and a completed computation must not resurrect a
// cleared cache ("complete but not re-registered").
func (r *Runner) finish(key string, e *entry, persist bool) {
	if persist && r.stillInFlight(key, e) {
		if e.err == nil {
			r.store.Put(key, e.val)
		} else {
			// Deterministic failures are cached too, but with a short
			// expiry and memory-only (errValue is unexported, so no
			// codec can encode it): recomputing a known-bad job wastes
			// the pool, yet a transient failure must not pin a bad
			// result forever.
			r.store.PutTTL(key, errValue{err: e.err}, r.errTTL)
		}
		// Recheck after the write: ResetCache clears the in-flight map
		// strictly before it clears the store, so if the entry is still
		// registered now, any racing reset's store clear also covers
		// the Put above; if it is gone, the Put may have landed after
		// the clear — take it back rather than resurrect a cleared
		// cache. (The worst case of the take-back is dropping a result
		// a post-reset recompute just stored, which is only a cache
		// miss, never a wrong value.)
		if !r.stillInFlight(key, e) {
			r.store.Delete(key)
		}
	}
	r.mu.Lock()
	if r.inflight[key] == e {
		delete(r.inflight, key)
	}
	r.mu.Unlock()
	close(e.done)
}

// stillInFlight reports whether e is still the registered in-flight
// entry for key.
func (r *Runner) stillInFlight(key string, e *entry) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inflight[key] == e
}

// PanicError is the error a panicking job is converted into. Callers
// that surface job failures to users (e.g. the HTTP server) can
// distinguish it with errors.As: a panic is an internal fault, not a
// property of the request.
type PanicError struct {
	// Val is the recovered panic value; Stack the goroutine stack at
	// the point of recovery.
	Val   any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("batch: job panicked: %v\n%s", e.Val, e.Stack)
}

// safeCall invokes fn, converting a panic into a *PanicError (with the
// stack, which the recovery would otherwise discard) so one bad job
// cannot take down the batch.
func (r *Runner) safeCall(ctx context.Context, fn func(context.Context) (any, error)) (v any, err error) {
	defer func() {
		if p := recover(); p != nil {
			r.panics.Add(1)
			err = &PanicError{Val: p, Stack: debug.Stack()}
		}
	}()
	return fn(ctx)
}
