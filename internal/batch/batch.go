package batch

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Job is one unit of work. Fn must be safe to call from any goroutine.
type Job struct {
	// Key is the content key of the job's result. Jobs with equal keys
	// are assumed to compute identical values: the first one runs, the
	// rest share its result (including across Run calls on the same
	// Runner). An empty key disables caching for the job.
	Key string
	// Fn computes the result. It should honour ctx for long work.
	Fn func(ctx context.Context) (any, error)
}

// Result is one job's outcome.
type Result struct {
	// Value is the job's return value (nil on error).
	Value any
	// Err is the job's error: the Fn error, a recovered panic, or the
	// context error for jobs cancelled before running.
	Err error
	// Cached reports whether the value was served by the result cache
	// (either from a previous Run or from a duplicate key in flight).
	Cached bool
}

// Stats summarizes a Runner's cache behaviour.
type Stats struct {
	// Hits counts jobs served from the cache, Misses jobs that ran.
	Hits, Misses uint64
	// Panics counts jobs that panicked (isolated into their Result).
	Panics uint64
}

// Runner executes job batches over a worker pool of fixed size,
// retaining its result cache across Run calls. A Runner is safe for
// concurrent use.
type Runner struct {
	workers int

	mu    sync.Mutex
	cache map[string]*entry

	hits, misses, panics atomic.Uint64
}

// entry is a single-flight cache slot: done closes when the computing
// job finishes, after which val/err/dropped are immutable.
type entry struct {
	done chan struct{}
	val  any
	err  error
	// dropped marks an entry removed from the cache because its
	// computation failed under a cancelled context; waiters with live
	// contexts retry instead of inheriting the foreign cancellation.
	dropped bool
}

// NewRunner returns a Runner with the given worker-pool size;
// workers <= 0 selects GOMAXPROCS.
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers, cache: make(map[string]*entry)}
}

// Workers returns the worker-pool size.
func (r *Runner) Workers() int { return r.workers }

// Stats returns the cache counters accumulated so far.
func (r *Runner) Stats() Stats {
	return Stats{Hits: r.hits.Load(), Misses: r.misses.Load(), Panics: r.panics.Load()}
}

// ResetCache drops every cached result and zeroes the stats counters.
// In-flight computations complete but are not re-registered.
func (r *Runner) ResetCache() {
	r.mu.Lock()
	r.cache = make(map[string]*entry)
	r.mu.Unlock()
	r.hits.Store(0)
	r.misses.Store(0)
	r.panics.Store(0)
}

// Run executes the jobs and returns one Result per job, in order. It
// blocks until every job has finished, failed, or been skipped due to
// context cancellation; it never returns an error itself — each job's
// outcome is isolated in its Result.
func (r *Runner) Run(ctx context.Context, jobs []Job) []Result {
	return r.RunStream(ctx, jobs, nil)
}

// RunStream is Run with a completion hook: emit (when non-nil) is
// called once per job, with the job's index and its Result, as soon as
// that job finishes — duplicates of an in-flight key fire immediately
// after their representative. Emission order is completion order, not
// job order. emit is called from the worker goroutines, so it must be
// safe for concurrent use; a slow emit backpressures the worker that
// calls it.
func (r *Runner) RunStream(ctx context.Context, jobs []Job, emit func(int, Result)) []Result {
	out := make([]Result, len(jobs))
	deliver := func(i int, res Result) {
		out[i] = res
		if emit != nil {
			emit(i, res)
		}
	}

	// Dedupe keyed jobs up front: one representative per key runs, the
	// duplicates share its result afterwards. Without this a duplicate
	// would park a worker on the in-flight entry, shrinking the pool
	// while unique jobs queue behind it.
	reps := make([]int, 0, len(jobs))
	followers := make(map[int][]int)
	seen := make(map[string]int, len(jobs))
	for i, j := range jobs {
		if j.Key != "" {
			if ri, ok := seen[j.Key]; ok {
				followers[ri] = append(followers[ri], i)
				continue
			}
			seen[j.Key] = i
		}
		reps = append(reps, i)
	}

	idx := make(chan int, len(reps))
	for _, i := range reps {
		idx <- i
	}
	close(idx)

	n := r.workers
	if n > len(reps) {
		n = len(reps)
	}
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				var res Result
				if err := ctx.Err(); err != nil {
					res = Result{Err: err}
				} else {
					res = r.runJob(ctx, jobs[i])
				}
				deliver(i, res)
				fres := res
				if fres.Err == nil {
					fres.Cached = true
				}
				for _, fi := range followers[i] {
					if fres.Err == nil {
						r.hits.Add(1)
					}
					deliver(fi, fres)
				}
			}
		}()
	}
	wg.Wait()
	return out
}

// runJob executes one job through the cache.
func (r *Runner) runJob(ctx context.Context, job Job) Result {
	if job.Key == "" {
		r.misses.Add(1)
		v, err := r.safeCall(ctx, job.Fn)
		return Result{Value: v, Err: err}
	}
	for {
		r.mu.Lock()
		if e, ok := r.cache[job.Key]; ok {
			r.mu.Unlock()
			select {
			case <-e.done:
				if e.dropped {
					// The computing caller was cancelled; that is not
					// a property of the key — retry under our context.
					continue
				}
				r.hits.Add(1)
				return Result{Value: e.val, Err: e.err, Cached: true}
			case <-ctx.Done():
				return Result{Err: ctx.Err()}
			}
		}
		e := &entry{done: make(chan struct{})}
		r.cache[job.Key] = e
		r.mu.Unlock()

		r.misses.Add(1)
		e.val, e.err = r.safeCall(ctx, job.Fn)
		if e.err != nil && ctx.Err() != nil {
			// A cancellation-tainted failure is not a property of the
			// key; drop the entry so waiters and later Runs retry.
			e.dropped = true
			r.mu.Lock()
			if r.cache[job.Key] == e {
				delete(r.cache, job.Key)
			}
			r.mu.Unlock()
		}
		close(e.done)
		return Result{Value: e.val, Err: e.err}
	}
}

// PanicError is the error a panicking job is converted into. Callers
// that surface job failures to users (e.g. the HTTP server) can
// distinguish it with errors.As: a panic is an internal fault, not a
// property of the request.
type PanicError struct {
	// Val is the recovered panic value; Stack the goroutine stack at
	// the point of recovery.
	Val   any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("batch: job panicked: %v\n%s", e.Val, e.Stack)
}

// safeCall invokes fn, converting a panic into a *PanicError (with the
// stack, which the recovery would otherwise discard) so one bad job
// cannot take down the batch.
func (r *Runner) safeCall(ctx context.Context, fn func(context.Context) (any, error)) (v any, err error) {
	defer func() {
		if p := recover(); p != nil {
			r.panics.Add(1)
			err = &PanicError{Val: p, Stack: debug.Stack()}
		}
	}()
	return fn(ctx)
}
