package batch

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"thermflow/internal/cachestore"
)

type settableClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *settableClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *settableClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// A cached failure expires: after the error TTL the job is retried
// instead of serving the stale error forever.
func TestCachedErrorExpiresAndRetries(t *testing.T) {
	clk := &settableClock{now: time.Unix(1_000_000, 0)}
	store, err := cachestore.Open(cachestore.Config{Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunnerStore(1, store)
	r.SetErrTTL(10 * time.Second)

	runs := 0
	boom := errors.New("transient boom")
	job := Job{Key: "flaky", Fn: func(context.Context) (any, error) {
		runs++
		if runs == 1 {
			return nil, boom
		}
		return "recovered", nil
	}}

	res := r.Run(context.Background(), []Job{job})
	if !errors.Is(res[0].Err, boom) || runs != 1 {
		t.Fatalf("first run: err %v, runs %d", res[0].Err, runs)
	}
	// Within the TTL the failure is served from the store, not rerun.
	res = r.Run(context.Background(), []Job{job})
	if !errors.Is(res[0].Err, boom) || !res[0].Cached || runs != 1 {
		t.Fatalf("within TTL: err %v, cached %v, runs %d", res[0].Err, res[0].Cached, runs)
	}
	// Past the TTL the job is retried and can succeed.
	clk.Advance(11 * time.Second)
	res = r.Run(context.Background(), []Job{job})
	if res[0].Err != nil || res[0].Value != "recovered" || runs != 2 {
		t.Fatalf("past TTL: %+v, runs %d", res[0], runs)
	}
	// The success is a normal entry: it does not expire.
	clk.Advance(1000 * time.Hour)
	res = r.Run(context.Background(), []Job{job})
	if !res[0].Cached || res[0].Value != "recovered" || runs != 2 {
		t.Fatalf("success inherited an expiry: %+v, runs %d", res[0], runs)
	}
}
