package batch

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunOrderAndIsolation(t *testing.T) {
	r := NewRunner(4)
	boom := errors.New("boom")
	jobs := []Job{
		{Fn: func(context.Context) (any, error) { return 1, nil }},
		{Fn: func(context.Context) (any, error) { return nil, boom }},
		{Fn: func(context.Context) (any, error) { panic("kaboom") }},
		{Fn: func(context.Context) (any, error) { return 4, nil }},
	}
	res := r.Run(context.Background(), jobs)
	if len(res) != 4 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].Value != 1 || res[0].Err != nil {
		t.Errorf("job 0: %+v", res[0])
	}
	if !errors.Is(res[1].Err, boom) {
		t.Errorf("job 1 error: %v", res[1].Err)
	}
	if res[2].Err == nil || res[2].Value != nil {
		t.Errorf("job 2 should have failed with the recovered panic: %+v", res[2])
	}
	if res[3].Value != 4 || res[3].Err != nil {
		t.Errorf("job 3: %+v", res[3])
	}
	if s := r.Stats(); s.Panics != 1 {
		t.Errorf("panics = %d, want 1", s.Panics)
	}
}

func TestCacheSharesEqualKeys(t *testing.T) {
	r := NewRunner(8)
	var calls atomic.Int64
	mk := func(key string) Job {
		return Job{Key: key, Fn: func(context.Context) (any, error) {
			calls.Add(1)
			return key, nil
		}}
	}
	jobs := make([]Job, 0, 16)
	for i := 0; i < 16; i++ {
		jobs = append(jobs, mk(fmt.Sprintf("k%d", i%4)))
	}
	res := r.Run(context.Background(), jobs)
	for i, rr := range res {
		if rr.Err != nil || rr.Value != fmt.Sprintf("k%d", i%4) {
			t.Fatalf("job %d: %+v", i, rr)
		}
	}
	if got := calls.Load(); got != 4 {
		t.Errorf("distinct keys computed %d times, want 4", got)
	}
	// A second Run is served entirely from cache.
	calls.Store(0)
	r.Run(context.Background(), jobs[:4])
	if got := calls.Load(); got != 0 {
		t.Errorf("second run recomputed %d jobs", got)
	}
	s := r.Stats()
	if s.Misses != 4 || s.Hits != 16 {
		t.Errorf("stats = %+v, want 4 misses / 16 hits", s)
	}
}

func TestErrorsAreCachedButCancellationIsNot(t *testing.T) {
	r := NewRunner(2)
	var calls atomic.Int64
	fail := Job{Key: "fail", Fn: func(context.Context) (any, error) {
		calls.Add(1)
		return nil, errors.New("deterministic failure")
	}}
	r.Run(context.Background(), []Job{fail})
	r.Run(context.Background(), []Job{fail})
	if got := calls.Load(); got != 1 {
		t.Errorf("deterministic failure recomputed: %d calls", got)
	}

	// A job that fails because its context was cancelled must be
	// retried by a later Run.
	calls.Store(0)
	ctx, cancel := context.WithCancel(context.Background())
	slow := Job{Key: "slow", Fn: func(c context.Context) (any, error) {
		calls.Add(1)
		cancel()
		<-c.Done()
		return nil, c.Err()
	}}
	res := r.Run(ctx, []Job{slow})
	if res[0].Err == nil {
		t.Fatal("cancelled job reported success")
	}
	res = r.Run(context.Background(), []Job{{Key: "slow", Fn: func(context.Context) (any, error) {
		calls.Add(1)
		return "ok", nil
	}}})
	if res[0].Err != nil || res[0].Value != "ok" {
		t.Errorf("retry after cancellation: %+v", res[0])
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("calls = %d, want 2 (original + retry)", got)
	}
}

// A waiter on an in-flight key whose computer gets cancelled must
// retry under its own live context, not inherit the foreign
// cancellation.
func TestWaiterRetriesAfterComputerCancelled(t *testing.T) {
	r := NewRunner(2)
	ctxA, cancelA := context.WithCancel(context.Background())
	defer cancelA()
	started := make(chan struct{})
	resB := make(chan Result, 1)

	go func() {
		r.Run(ctxA, []Job{{Key: "k", Fn: func(c context.Context) (any, error) {
			close(started)
			<-c.Done()
			return nil, c.Err()
		}}})
	}()
	<-started
	go func() {
		res := r.Run(context.Background(), []Job{{Key: "k", Fn: func(context.Context) (any, error) {
			return "ok", nil
		}}})
		resB <- res[0]
	}()
	time.Sleep(10 * time.Millisecond) // let B reach the in-flight entry
	cancelA()
	select {
	case got := <-resB:
		if got.Err != nil || got.Value != "ok" {
			t.Fatalf("waiter inherited the computer's cancellation: %+v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never completed")
	}
}

func TestCancellationSkipsPendingJobs(t *testing.T) {
	r := NewRunner(1)
	ctx, cancel := context.WithCancel(context.Background())
	jobs := []Job{
		{Fn: func(context.Context) (any, error) { cancel(); return "ran", nil }},
		{Fn: func(context.Context) (any, error) { return "should not run", nil }},
		{Fn: func(context.Context) (any, error) { return "nor this", nil }},
	}
	res := r.Run(ctx, jobs)
	if res[0].Err != nil || res[0].Value != "ran" {
		t.Errorf("job 0: %+v", res[0])
	}
	for i := 1; i < 3; i++ {
		if !errors.Is(res[i].Err, context.Canceled) {
			t.Errorf("job %d should have been skipped with context.Canceled, got %+v", i, res[i])
		}
	}
}

func TestWorkersActuallyRunConcurrently(t *testing.T) {
	r := NewRunner(4)
	var peak, cur atomic.Int64
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Fn: func(context.Context) (any, error) {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(20 * time.Millisecond)
			cur.Add(-1)
			return nil, nil
		}}
	}
	r.Run(context.Background(), jobs)
	if p := peak.Load(); p < 2 {
		t.Errorf("observed concurrency %d, want >= 2", p)
	}
}
