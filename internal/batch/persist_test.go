package batch

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"thermflow/internal/cachestore"
)

// stringCodec persists string values; everything else stays
// memory-only (as the thermflow codec does with cached errors).
type stringCodec struct{}

func (stringCodec) Encode(v any) ([]byte, error) {
	s, ok := v.(string)
	if !ok {
		return nil, cachestore.ErrUnencodable
	}
	return []byte(s), nil
}

func (stringCodec) Decode(data []byte) (any, error) { return string(data), nil }

func diskRunner(t *testing.T, dir string, workers int) *Runner {
	t.Helper()
	store, err := cachestore.Open(cachestore.Config{
		Dir:   dir,
		Codec: stringCodec{},
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewRunnerStore(workers, store)
}

// Results written by one Runner must be served — as cache hits — by a
// fresh Runner over the same directory: the warm-restart property the
// disk tier exists for.
func TestDiskTierWarmsAFreshRunner(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	jobs := []Job{
		{Key: "a", Fn: func(context.Context) (any, error) { calls.Add(1); return "va", nil }},
		{Key: "b", Fn: func(context.Context) (any, error) { calls.Add(1); return "vb", nil }},
	}
	r1 := diskRunner(t, dir, 2)
	for _, res := range r1.Run(context.Background(), jobs) {
		if res.Err != nil || res.Cached {
			t.Fatalf("cold run: %+v", res)
		}
	}

	r2 := diskRunner(t, dir, 2)
	res := r2.Run(context.Background(), jobs)
	for i, rr := range res {
		if rr.Err != nil || !rr.Cached {
			t.Fatalf("warm run job %d not served from disk: %+v", i, rr)
		}
	}
	if res[0].Value != "va" || res[1].Value != "vb" {
		t.Fatalf("warm values diverged: %+v", res)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("functions ran %d times, want 2 (cold only)", got)
	}
	st := r2.Store().Stats()
	if st.Disk.Hits != 2 {
		t.Errorf("disk hits = %d, want 2", st.Disk.Hits)
	}
	if s := r2.Stats(); s.Hits != 2 || s.Misses != 0 {
		t.Errorf("runner stats = %+v, want 2 hits / 0 misses", s)
	}
}

// Regression for the reset-while-batch-in-flight contract: ResetCache
// during a running batch zeroes the stats immediately, and the
// in-flight computation completes without resurrecting the cleared
// cache ("complete but not re-registered").
func TestResetCacheWhileBatchInFlight(t *testing.T) {
	r := NewRunner(2)
	release := make(chan struct{})
	started := make(chan struct{})
	var calls atomic.Int64
	job := Job{Key: "k", Fn: func(context.Context) (any, error) {
		calls.Add(1)
		if calls.Load() == 1 {
			close(started)
			<-release
		}
		return "computed", nil
	}}

	done := make(chan []Result, 1)
	go func() { done <- r.Run(context.Background(), []Job{job}) }()
	<-started

	if err := r.ResetCache(); err != nil {
		t.Fatalf("reset with batch in flight: %v", err)
	}
	// Immediately after the reset — with the batch still blocked — the
	// counters and the store are zero. (The in-flight miss was counted
	// before the reset and must not survive it.)
	if s := r.Stats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("stats after mid-flight reset = %+v, want zeros", s)
	}
	if st := r.Store().Stats(); st.Mem.Entries != 0 {
		t.Fatalf("store after mid-flight reset has %d entries", st.Mem.Entries)
	}

	close(release)
	res := <-done
	if res[0].Err != nil || res[0].Value != "computed" {
		t.Fatalf("in-flight job result: %+v", res[0])
	}
	// The completed computation was abandoned by the reset: a repeat
	// recomputes instead of hitting a resurrected entry.
	res = r.Run(context.Background(), []Job{job})
	if res[0].Err != nil || res[0].Cached {
		t.Fatalf("post-reset repeat served from a resurrected cache: %+v", res[0])
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("calls = %d, want 2 (in-flight + post-reset)", got)
	}
	if st := r.Store().Stats(); st.Mem.Entries != 1 {
		t.Errorf("store entries after recompute = %d, want 1", st.Mem.Entries)
	}
}

// A waiter parked on an in-flight entry at reset time still gets the
// computed value (the entry object outlives its registration).
func TestResetCacheReleasesInFlightWaiters(t *testing.T) {
	r := NewRunner(2)
	release := make(chan struct{})
	started := make(chan struct{})
	go r.Run(context.Background(), []Job{{Key: "w", Fn: func(context.Context) (any, error) {
		close(started)
		<-release
		return "late", nil
	}}})
	<-started

	waiter := make(chan Result, 1)
	go func() {
		res := r.Run(context.Background(), []Job{{Key: "w", Fn: func(context.Context) (any, error) {
			return "recomputed", nil
		}}})
		waiter <- res[0]
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter park on the entry
	if err := r.ResetCache(); err != nil {
		t.Fatal(err)
	}
	close(release)
	select {
	case res := <-waiter:
		if res.Err != nil {
			t.Fatalf("waiter failed: %v", res.Err)
		}
		// Either outcome is sound: the original value (parked before
		// the reset) or a recompute (lost the race to park).
		if res.Value != "late" && res.Value != "recomputed" {
			t.Fatalf("waiter got %v", res.Value)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter hung across a reset")
	}
}

// Cached failures must not reach the disk tier: a deterministic error
// is remembered within the process but recomputed by the next one
// (the failure may have been environmental).
func TestCachedErrorsStayOffDisk(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("deterministic failure")
	var calls atomic.Int64
	job := Job{Key: "bad", Fn: func(context.Context) (any, error) {
		calls.Add(1)
		return nil, boom
	}}
	r1 := diskRunner(t, dir, 1)
	r1.Run(context.Background(), []Job{job})
	r1.Run(context.Background(), []Job{job})
	if got := calls.Load(); got != 1 {
		t.Fatalf("same-process error not cached: %d calls", got)
	}
	if st := r1.Store().Stats(); st.Disk.Entries != 0 {
		t.Fatalf("error reached the disk tier: %+v", st.Disk)
	}
	r2 := diskRunner(t, dir, 1)
	res := r2.Run(context.Background(), []Job{job})
	if !errors.Is(res[0].Err, boom) || res[0].Cached {
		t.Fatalf("fresh process served a persisted error: %+v", res[0])
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("calls = %d, want 2 (once per process)", got)
	}
}
