// Package batch executes many independent jobs across a fixed worker
// pool. It provides the concurrency layer of the many-configuration
// sweeps the experiments run (policies × floorplans × tech nodes) and
// of the thermflowd analysis server: context cancellation, per-job
// error and panic isolation (PanicError), and a content-keyed result
// cache with single-flight semantics so repeated configurations are
// computed once and shared — within a Run call, across Run calls on
// the same Runner, and (through thermflow.Batch and internal/server)
// across HTTP clients.
//
// Runner.Run returns results in job order once everything finished;
// Runner.RunStream additionally emits each result the moment its job
// completes, which is what the server's NDJSON batch endpoint streams
// to clients. Duplicate keys within one call are deduplicated up
// front (one representative runs, followers share), so a duplicate
// never parks a worker; duplicates across concurrent calls coalesce
// on the in-flight cache entry instead.
//
// Cache correctness notes: an entry whose computation failed under a
// cancelled context is dropped rather than poisoning the key for
// other callers, and ResetCache zeroes both the cache and the Stats
// counters (thermflowd exposes that as DELETE /v1/cache).
package batch
