package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestRunStreamEmitsEveryJobOnce(t *testing.T) {
	r := NewRunner(4)
	jobs := make([]Job, 20)
	for i := range jobs {
		i := i
		key := fmt.Sprintf("k%d", i%10) // indices 10..19 duplicate 0..9
		jobs[i] = Job{Key: key, Fn: func(context.Context) (any, error) {
			return i, nil
		}}
	}
	var mu sync.Mutex
	emitted := make(map[int]Result)
	out := r.RunStream(context.Background(), jobs, func(i int, res Result) {
		mu.Lock()
		defer mu.Unlock()
		if _, dup := emitted[i]; dup {
			t.Errorf("job %d emitted twice", i)
		}
		emitted[i] = res
	})
	if len(emitted) != len(jobs) {
		t.Fatalf("emitted %d results, want %d", len(emitted), len(jobs))
	}
	for i, res := range out {
		if got := emitted[i]; got != res {
			t.Errorf("job %d: emitted %+v, returned %+v", i, got, res)
		}
		if res.Err != nil {
			t.Errorf("job %d: %v", i, res.Err)
		}
	}
	// Each duplicate must share its representative's value and be
	// marked cached.
	for i := 10; i < 20; i++ {
		if out[i].Value != out[i-10].Value {
			t.Errorf("duplicate %d: value %v, want %v", i, out[i].Value, out[i-10].Value)
		}
		if !out[i].Cached {
			t.Errorf("duplicate %d not marked cached", i)
		}
	}
	if s := r.Stats(); s.Misses != 10 || s.Hits != 10 {
		t.Errorf("stats = %+v, want 10 misses / 10 hits", s)
	}
}

func TestRunStreamNilEmit(t *testing.T) {
	r := NewRunner(2)
	out := r.RunStream(context.Background(), []Job{
		{Key: "a", Fn: func(context.Context) (any, error) { return 1, nil }},
	}, nil)
	if len(out) != 1 || out[0].Err != nil || out[0].Value != 1 {
		t.Fatalf("out = %+v", out)
	}
}

func TestResetCacheZeroesStats(t *testing.T) {
	r := NewRunner(1)
	job := Job{Key: "a", Fn: func(context.Context) (any, error) { return 1, nil }}
	r.Run(context.Background(), []Job{job})
	r.Run(context.Background(), []Job{job})
	if s := r.Stats(); s.Misses != 1 || s.Hits != 1 {
		t.Fatalf("stats before reset = %+v", s)
	}
	r.ResetCache()
	if s := r.Stats(); s != (Stats{}) {
		t.Errorf("stats after reset = %+v, want zero", s)
	}
	out := r.Run(context.Background(), []Job{job})
	if out[0].Cached {
		t.Error("result cached across ResetCache")
	}
}

func TestPanicErrorIsTyped(t *testing.T) {
	r := NewRunner(1)
	out := r.Run(context.Background(), []Job{
		{Fn: func(context.Context) (any, error) { panic("boom") }},
	})
	var pe *PanicError
	if !errors.As(out[0].Err, &pe) {
		t.Fatalf("err = %v, want *PanicError", out[0].Err)
	}
	if pe.Val != "boom" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = %+v", pe)
	}
}
