// Package sim executes IR functions for real: an interpreter produces
// cycle-accurate register access traces, and a trace-driven replay runs
// them through the thermal model. Replay is the "time-consuming thermal
// simulation phase" (paper §4) that feedback-driven optimization needs
// and that the thermal data-flow analysis is designed to avoid; here it
// doubles as the ground truth the analysis is validated against.
package sim

import (
	"fmt"

	"thermflow/internal/ir"
	"thermflow/internal/regalloc"
)

// Memory is the flat 8-byte-word-addressed memory of the simulated
// machine. Addresses are byte addresses; each key holds one 64-bit
// word (addresses need not be aligned, each distinct address is an
// independent word).
type Memory map[int64]int64

// Options configures an interpreter run.
type Options struct {
	// Args are bound to the function parameters in order. Missing
	// arguments default to zero.
	Args []int64
	// Mem is the initial memory; nil starts empty. The map is mutated
	// in place by stores.
	Mem Memory
	// MaxSteps caps the number of executed instructions (0 = 50M) to
	// bound runaway loops.
	MaxSteps int64
	// Alloc, when non-nil, enables register access tracing: each
	// executed instruction records reads of its operands' physical
	// registers and a write of its definition's.
	Alloc *regalloc.Allocation
	// MaxAccesses caps the recorded trace length (0 = 20M).
	MaxAccesses int
	// CollectProfile records per-block execution and edge-traversal
	// counts — the measured frequencies a profile-guided analysis can
	// substitute for the static estimates.
	CollectProfile bool
	// Module resolves call instructions. Functions containing calls
	// cannot be register-traced (trace the inlined form instead).
	Module *ir.Module
	// MaxCallDepth bounds call nesting (0 = 128).
	MaxCallDepth int
}

// Profile holds measured control-flow frequencies of one run.
type Profile struct {
	// Blocks maps block name to execution count.
	Blocks map[string]int64
	// Edges maps [from, to] block names to traversal count.
	Edges map[[2]string]int64
}

// Result summarizes an interpreter run.
type Result struct {
	// Ret is the returned value (0 for a bare ret).
	Ret int64
	// HasRet indicates the function returned a value.
	HasRet bool
	// Cycles is the total latency-weighted cycle count.
	Cycles int64
	// Instrs is the number of executed instructions.
	Instrs int64
	// Trace is the register access trace, or nil when tracing was off.
	Trace *Trace
	// Profile holds measured block/edge frequencies, or nil when
	// profiling was off.
	Profile *Profile
	// Mem is the final memory state.
	Mem Memory
}

// Run interprets fn to completion.
func Run(fn *ir.Function, opts Options) (*Result, error) {
	if err := ir.Verify(fn); err != nil {
		return nil, fmt.Errorf("sim: refusing to run ill-formed function: %w", err)
	}
	m := &machine{opts: opts}
	m.maxSteps = opts.MaxSteps
	if m.maxSteps <= 0 {
		m.maxSteps = 50_000_000
	}
	m.maxDepth = opts.MaxCallDepth
	if m.maxDepth <= 0 {
		m.maxDepth = 128
	}
	m.mem = opts.Mem
	if m.mem == nil {
		m.mem = make(Memory)
	}
	if opts.Alloc != nil {
		maxAcc := opts.MaxAccesses
		if maxAcc <= 0 {
			maxAcc = 20_000_000
		}
		m.tr = &Trace{NumRegs: opts.Alloc.FP.NumRegs, maxLen: maxAcc}
		m.regOf = opts.Alloc.RegOf
	}
	if opts.CollectProfile {
		m.prof = &Profile{Blocks: map[string]int64{}, Edges: map[[2]string]int64{}}
	}

	ret, hasRet, err := m.exec(fn, opts.Args, 0)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Ret: ret, HasRet: hasRet,
		Cycles: m.cycles, Instrs: m.instrs,
		Trace: m.tr, Profile: m.prof, Mem: m.mem,
	}
	if m.tr != nil {
		m.tr.Cycles = m.cycles
	}
	return res, nil
}

// machine holds the execution state shared across (possibly nested)
// function activations.
type machine struct {
	opts     Options
	mem      Memory
	tr       *Trace
	regOf    []int
	prof     *Profile
	maxSteps int64
	maxDepth int
	instrs   int64
	cycles   int64
}

// callOverheadCycles is the extra latency of a call beyond the callee's
// body (the Call opcode's own latency models link/jump overhead).
const callOverheadCycles = 0 // already captured by Call's EffLatency

func (m *machine) exec(fn *ir.Function, args []int64, depth int) (ret int64, hasRet bool, err error) {
	if depth >= m.maxDepth {
		return 0, false, fmt.Errorf("sim: call depth exceeds %d", m.maxDepth)
	}
	regs := make([]int64, fn.NumValues())
	for i, p := range fn.Params {
		if i < len(args) {
			regs[p.ID] = args[i]
		}
	}
	b := fn.Entry
	idx := 0
	if m.prof != nil && depth == 0 {
		m.prof.Blocks[b.Name]++
	}
	enter := func(from, to *ir.Block) {
		if m.prof != nil && depth == 0 {
			m.prof.Blocks[to.Name]++
			m.prof.Edges[[2]string{from.Name, to.Name}]++
		}
	}
	for {
		if idx >= len(b.Instrs) {
			return 0, false, fmt.Errorf("sim: fell off the end of block %s", b.Name)
		}
		in := b.Instrs[idx]
		if m.instrs >= m.maxSteps {
			return 0, false, fmt.Errorf("sim: exceeded %d instructions (infinite loop?)", m.maxSteps)
		}
		m.instrs++
		lat := int64(in.EffLatency())

		if m.tr != nil {
			if in.Op == ir.Call {
				return 0, false, fmt.Errorf("sim: register tracing requires a call-free function (inline %q first)", in.Callee)
			}
			if depth == 0 {
				for _, u := range in.Uses {
					if r := m.regOf[u.ID]; r >= 0 {
						if err := m.tr.add(m.cycles, r, false); err != nil {
							return 0, false, err
						}
					}
				}
				if in.Def != nil {
					if r := m.regOf[in.Def.ID]; r >= 0 {
						if err := m.tr.add(m.cycles+lat-1, r, true); err != nil {
							return 0, false, err
						}
					}
				}
			}
		}
		m.cycles += lat

		u := func(i int) int64 { return regs[in.Uses[i].ID] }
		switch in.Op {
		case ir.Nop:
		case ir.Const:
			regs[in.Def.ID] = in.Imm
		case ir.Mov:
			regs[in.Def.ID] = u(0)
		case ir.Add:
			regs[in.Def.ID] = u(0) + u(1)
		case ir.Sub:
			regs[in.Def.ID] = u(0) - u(1)
		case ir.Mul:
			regs[in.Def.ID] = u(0) * u(1)
		case ir.Div:
			if d := u(1); d != 0 {
				regs[in.Def.ID] = u(0) / d
			} else {
				regs[in.Def.ID] = 0
			}
		case ir.Rem:
			if d := u(1); d != 0 {
				regs[in.Def.ID] = u(0) % d
			} else {
				regs[in.Def.ID] = 0
			}
		case ir.And:
			regs[in.Def.ID] = u(0) & u(1)
		case ir.Or:
			regs[in.Def.ID] = u(0) | u(1)
		case ir.Xor:
			regs[in.Def.ID] = u(0) ^ u(1)
		case ir.Shl:
			regs[in.Def.ID] = u(0) << (uint64(u(1)) & 63)
		case ir.Shr:
			regs[in.Def.ID] = u(0) >> (uint64(u(1)) & 63)
		case ir.Neg:
			regs[in.Def.ID] = -u(0)
		case ir.Not:
			regs[in.Def.ID] = ^u(0)
		case ir.CmpEQ:
			regs[in.Def.ID] = b2i(u(0) == u(1))
		case ir.CmpNE:
			regs[in.Def.ID] = b2i(u(0) != u(1))
		case ir.CmpLT:
			regs[in.Def.ID] = b2i(u(0) < u(1))
		case ir.CmpLE:
			regs[in.Def.ID] = b2i(u(0) <= u(1))
		case ir.CmpGT:
			regs[in.Def.ID] = b2i(u(0) > u(1))
		case ir.CmpGE:
			regs[in.Def.ID] = b2i(u(0) >= u(1))
		case ir.Load:
			regs[in.Def.ID] = mem64(m.mem, u(0)+in.Imm)
		case ir.Store:
			m.mem[u(1)+in.Imm] = u(0)
		case ir.Call:
			if m.opts.Module == nil {
				return 0, false, fmt.Errorf("sim: call to %q without a module", in.Callee)
			}
			callee := m.opts.Module.Func(in.Callee)
			if callee == nil {
				return 0, false, fmt.Errorf("sim: call to unknown function %q", in.Callee)
			}
			callArgs := make([]int64, len(in.Uses))
			for i := range in.Uses {
				callArgs[i] = u(i)
			}
			rv, _, err := m.exec(callee, callArgs, depth+1)
			if err != nil {
				return 0, false, err
			}
			regs[in.Def.ID] = rv
			m.cycles += callOverheadCycles
		case ir.Br:
			enter(b, in.Targets[0])
			b = in.Targets[0]
			idx = 0
			continue
		case ir.CondBr:
			next := in.Targets[1]
			if u(0) != 0 {
				next = in.Targets[0]
			}
			enter(b, next)
			b = next
			idx = 0
			continue
		case ir.Ret:
			if len(in.Uses) == 1 {
				return u(0), true, nil
			}
			return 0, false, nil
		default:
			return 0, false, fmt.Errorf("sim: unimplemented opcode %v", in.Op)
		}
		idx++
	}
}

func mem64(m Memory, addr int64) int64 { return m[addr] }

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
