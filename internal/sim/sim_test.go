package sim

import (
	"math"
	"testing"

	"thermflow/internal/floorplan"
	"thermflow/internal/ir"
	"thermflow/internal/power"
	"thermflow/internal/regalloc"
)

func mustParse(t *testing.T, src string) *ir.Function {
	t.Helper()
	f, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

const sumSrc = `
func sum(n) {
entry:
  i = const 0
  one = const 1
  acc = const 0
  br head
head:
  c = cmplt i, n
  cbr c, body, exit
body:
  a2 = add acc, i
  acc = mov a2
  i2 = add i, one
  i = mov i2
  br head
exit:
  ret acc
}`

func TestRunSumLoop(t *testing.T) {
	f := mustParse(t, sumSrc)
	res, err := Run(f, Options{Args: []int64{10}})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.HasRet || res.Ret != 45 {
		t.Errorf("sum(10) = %d (hasRet=%v), want 45", res.Ret, res.HasRet)
	}
	if res.Instrs == 0 || res.Cycles < res.Instrs {
		t.Errorf("bookkeeping: instrs=%d cycles=%d", res.Instrs, res.Cycles)
	}
}

func TestRunArithmeticOps(t *testing.T) {
	cases := []struct {
		op   string
		a, b int64
		want int64
	}{
		{"add", 7, 5, 12},
		{"sub", 7, 5, 2},
		{"mul", 7, 5, 35},
		{"div", 7, 5, 1},
		{"div", 7, 0, 0}, // defined: x/0 = 0
		{"rem", 7, 5, 2},
		{"rem", 7, 0, 0},
		{"and", 6, 3, 2},
		{"or", 6, 3, 7},
		{"xor", 6, 3, 5},
		{"shl", 3, 2, 12},
		{"shr", 12, 2, 3},
		{"cmpeq", 4, 4, 1},
		{"cmpne", 4, 4, 0},
		{"cmplt", 3, 4, 1},
		{"cmple", 4, 4, 1},
		{"cmpgt", 3, 4, 0},
		{"cmpge", 4, 5, 0},
	}
	for _, tc := range cases {
		src := `
func f(a, b) {
entry:
  r = ` + tc.op + ` a, b
  ret r
}`
		f := mustParse(t, src)
		res, err := Run(f, Options{Args: []int64{tc.a, tc.b}})
		if err != nil {
			t.Fatalf("%s: %v", tc.op, err)
		}
		if res.Ret != tc.want {
			t.Errorf("%s(%d,%d) = %d, want %d", tc.op, tc.a, tc.b, res.Ret, tc.want)
		}
	}
}

func TestRunUnaryAndConst(t *testing.T) {
	src := `
func f(a) {
entry:
  n = neg a
  m = not a
  s = add n, m
  ret s
}`
	f := mustParse(t, src)
	res, err := Run(f, Options{Args: []int64{5}})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(-5) + ^int64(5); res.Ret != want {
		t.Errorf("got %d, want %d", res.Ret, want)
	}
}

func TestRunMemory(t *testing.T) {
	src := `
func f(base) {
entry:
  v = load base, 8
  two = const 2
  d = mul v, two
  store d, base, 16
  ret d
}`
	f := mustParse(t, src)
	mem := Memory{108: 21}
	res, err := Run(f, Options{Args: []int64{100}, Mem: mem})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 42 {
		t.Errorf("ret = %d, want 42", res.Ret)
	}
	if mem[116] != 42 {
		t.Errorf("mem[116] = %d, want 42", mem[116])
	}
}

func TestRunShiftMasking(t *testing.T) {
	src := `
func f(a, s) {
entry:
  r = shl a, s
  ret r
}`
	f := mustParse(t, src)
	// Shift of 64 wraps to 0 under the &63 mask.
	res, err := Run(f, Options{Args: []int64{3, 64}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret != 3 {
		t.Errorf("shl 3, 64 = %d, want 3 (masked shift)", res.Ret)
	}
}

func TestRunInfiniteLoopCapped(t *testing.T) {
	src := `
func f() {
entry:
  br entry
}`
	// Parse fails? entry with single br to itself has terminator; no
	// ret — verifier allows it (no rule demands a ret). Run must hit
	// the step cap.
	f := mustParse(t, src)
	if _, err := Run(f, Options{MaxSteps: 1000}); err == nil {
		t.Fatal("infinite loop not capped")
	}
}

func TestRunBareRet(t *testing.T) {
	f := mustParse(t, "func f() {\nentry:\n  ret\n}")
	res, err := Run(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.HasRet {
		t.Error("bare ret reported a value")
	}
}

func TestRunNopLatency(t *testing.T) {
	f := mustParse(t, "func f() {\nentry:\n  nop\n  nop\n  ret\n}")
	res, err := Run(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 3 {
		t.Errorf("cycles = %d, want 3", res.Cycles)
	}
}

func allocFor(t *testing.T, f *ir.Function, pol regalloc.Policy) *regalloc.Allocation {
	t.Helper()
	a, err := regalloc.Allocate(f, regalloc.Config{NumRegs: 64, Policy: pol})
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	return a
}

func TestTraceRecording(t *testing.T) {
	f := mustParse(t, sumSrc)
	a := allocFor(t, f, regalloc.FirstFree)
	res, err := Run(a.Fn, Options{Args: []int64{5}, Alloc: a})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr == nil {
		t.Fatal("no trace recorded")
	}
	if tr.TotalAccesses() == 0 {
		t.Fatal("empty trace")
	}
	if tr.Cycles != res.Cycles {
		t.Errorf("trace cycles = %d, run cycles = %d", tr.Cycles, res.Cycles)
	}
	// Accesses are in nondecreasing cycle order.
	for i := 1; i < len(tr.Accesses); i++ {
		if tr.Accesses[i].Cycle < tr.Accesses[i-1].Cycle {
			t.Fatal("trace not cycle-ordered")
		}
	}
	reads, writes := tr.Counts()
	var totalR, totalW int64
	for r := range reads {
		totalR += reads[r]
		totalW += writes[r]
	}
	if totalR == 0 || totalW == 0 {
		t.Error("expected both reads and writes")
	}
	// The loop executes 5 times: acc's register must see >= 5 writes
	// (mov) plus the const.
	accReg := a.Reg(a.Fn.ValueNamed("acc"))
	if accReg < 0 {
		t.Fatal("acc not allocated")
	}
	if writes[accReg] < 6 {
		t.Errorf("writes to acc's register = %d, want >= 6", writes[accReg])
	}
}

func TestTraceCapExceeded(t *testing.T) {
	f := mustParse(t, sumSrc)
	a := allocFor(t, f, regalloc.FirstFree)
	if _, err := Run(a.Fn, Options{Args: []int64{100}, Alloc: a, MaxAccesses: 10}); err == nil {
		t.Fatal("trace cap not enforced")
	}
}

func TestHottestRegs(t *testing.T) {
	tr := &Trace{NumRegs: 4}
	for i := 0; i < 10; i++ {
		tr.Accesses = append(tr.Accesses, Access{Cycle: int64(i), Reg: 2})
	}
	tr.Accesses = append(tr.Accesses, Access{Cycle: 11, Reg: 0, Write: true})
	top := tr.HottestRegs(2)
	if len(top) != 2 || top[0] != 2 || top[1] != 0 {
		t.Errorf("HottestRegs = %v, want [2 0]", top)
	}
	all := tr.HottestRegs(100)
	if len(all) != 4 {
		t.Errorf("HottestRegs(100) = %v", all)
	}
}

func TestReplayHeatsBusyRegister(t *testing.T) {
	f := mustParse(t, sumSrc)
	a := allocFor(t, f, regalloc.FirstFree)
	res, err := Run(a.Fn, Options{Args: []int64{2000}, Alloc: a})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Replay(res.Trace, ReplayConfig{
		Tech:      power.Default65nm(),
		FP:        a.FP,
		Sustained: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tech := power.Default65nm()
	// The busiest cells must be above ambient in the sustained state.
	if rr.Steady.Max() <= tech.TAmbient {
		t.Errorf("sustained peak %g not above ambient %g", rr.Steady.Max(), tech.TAmbient)
	}
	// The hottest steady cell should host one of the busiest registers.
	hotCell := rr.Steady.ArgMax()
	hotReg := a.FP.RegAt(hotCell)
	top := res.Trace.HottestRegs(3)
	found := false
	for _, r := range top {
		if r == hotReg {
			found = true
		}
	}
	if !found {
		t.Errorf("hottest cell hosts register %d, not among busiest %v", hotReg, top)
	}
	if rr.DynEnergy <= 0 {
		t.Error("no dynamic energy recorded")
	}
	if rr.Windows == 0 {
		t.Error("no thermal windows stepped")
	}
	// MaxOverTime dominates Final.
	for c := range rr.Final {
		if rr.Final[c] > rr.MaxOverTime[c]+1e-9 {
			t.Fatal("Final exceeds MaxOverTime")
		}
	}
}

func TestReplayWithLeakage(t *testing.T) {
	f := mustParse(t, sumSrc)
	a := allocFor(t, f, regalloc.FirstFree)
	res, err := Run(a.Fn, Options{Args: []int64{500}, Alloc: a})
	if err != nil {
		t.Fatal(err)
	}
	noLeak, err := Replay(res.Trace, ReplayConfig{Tech: power.Default65nm(), FP: a.FP, Sustained: true})
	if err != nil {
		t.Fatal(err)
	}
	withLeak, err := Replay(res.Trace, ReplayConfig{
		Tech: power.Default65nm(), FP: a.FP, Sustained: true, WithLeakage: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if withLeak.LeakEnergy <= 0 {
		t.Error("leakage energy not accounted")
	}
	if withLeak.Steady.Max() <= noLeak.Steady.Max() {
		t.Error("leakage should raise the sustained peak")
	}
}

func TestReplayErrors(t *testing.T) {
	if _, err := Replay(nil, ReplayConfig{}); err == nil {
		t.Error("nil trace accepted")
	}
	tr := &Trace{NumRegs: 64}
	if _, err := Replay(tr, ReplayConfig{Tech: power.Default65nm()}); err == nil {
		t.Error("nil floorplan accepted")
	}
	small, _ := floorplan.New(4, 2, 2, 50e-6, floorplan.RowMajor)
	if _, err := Replay(tr, ReplayConfig{Tech: power.Default65nm(), FP: small}); err == nil {
		t.Error("undersized floorplan accepted")
	}
}

func TestReplayAvgPowerConsistent(t *testing.T) {
	f := mustParse(t, sumSrc)
	a := allocFor(t, f, regalloc.FirstFree)
	res, err := Run(a.Fn, Options{Args: []int64{300}, Alloc: a})
	if err != nil {
		t.Fatal(err)
	}
	tech := power.Default65nm()
	rr, err := Replay(res.Trace, ReplayConfig{Tech: tech, FP: a.FP})
	if err != nil {
		t.Fatal(err)
	}
	// Σ avgPower · totalTime == total dynamic energy == Σ access energies.
	total := 0.0
	for _, p := range rr.AvgPower {
		total += p
	}
	totalTime := float64(res.Cycles) * tech.CycleTime
	wantEnergy := 0.0
	for _, acc := range res.Trace.Accesses {
		wantEnergy += tech.AccessEnergy(acc.Write)
	}
	if math.Abs(total*totalTime-wantEnergy)/wantEnergy > 1e-9 {
		t.Errorf("energy accounting: avgPower·T = %g, accesses = %g", total*totalTime, wantEnergy)
	}
	if math.Abs(rr.DynEnergy-wantEnergy)/wantEnergy > 1e-9 {
		t.Errorf("DynEnergy = %g, want %g", rr.DynEnergy, wantEnergy)
	}
}

func TestProfileCollection(t *testing.T) {
	f := mustParse(t, sumSrc)
	res, err := Run(f, Options{Args: []int64{10}, CollectProfile: true})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	if p == nil {
		t.Fatal("no profile collected")
	}
	// entry once; head 11 (10 iterations + exit test); body 10; exit 1.
	want := map[string]int64{"entry": 1, "head": 11, "body": 10, "exit": 1}
	for name, n := range want {
		if p.Blocks[name] != n {
			t.Errorf("block %s executed %d times, want %d", name, p.Blocks[name], n)
		}
	}
	if p.Edges[[2]string{"body", "head"}] != 10 {
		t.Errorf("back edge traversed %d times, want 10", p.Edges[[2]string{"body", "head"}])
	}
	if p.Edges[[2]string{"head", "exit"}] != 1 {
		t.Errorf("exit edge traversed %d times, want 1", p.Edges[[2]string{"head", "exit"}])
	}
	// Edge counts into a block sum to its execution count (minus the
	// entry's initial activation).
	for _, b := range f.Blocks {
		var in int64
		for key, n := range p.Edges {
			if key[1] == b.Name {
				in += n
			}
		}
		wantIn := p.Blocks[b.Name]
		if b == f.Entry {
			wantIn--
		}
		if in != wantIn {
			t.Errorf("block %s: in-edges %d, executions %d", b.Name, in, p.Blocks[b.Name])
		}
	}
}

func TestProfileOffByDefault(t *testing.T) {
	f := mustParse(t, sumSrc)
	res, err := Run(f, Options{Args: []int64{3}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile != nil {
		t.Error("profile collected without CollectProfile")
	}
}

func TestRunRejectsIllFormed(t *testing.T) {
	f := ir.NewFunc("bad")
	f.NewBlock("entry") // empty block
	if _, err := Run(f, Options{}); err == nil {
		t.Error("ill-formed function executed")
	}
}

func TestDifferentPoliciesDifferentHeatMaps(t *testing.T) {
	// Same program, FirstFree vs Chessboard: the spatial power maps
	// must differ even though totals match.
	f1 := mustParse(t, sumSrc)
	a1 := allocFor(t, f1, regalloc.FirstFree)
	r1, err := Run(a1.Fn, Options{Args: []int64{400}, Alloc: a1})
	if err != nil {
		t.Fatal(err)
	}
	f2 := mustParse(t, sumSrc)
	a2 := allocFor(t, f2, regalloc.Chessboard)
	r2, err := Run(a2.Fn, Options{Args: []int64{400}, Alloc: a2})
	if err != nil {
		t.Fatal(err)
	}
	tech := power.Default65nm()
	rr1, err := Replay(r1.Trace, ReplayConfig{Tech: tech, FP: a1.FP, Sustained: true})
	if err != nil {
		t.Fatal(err)
	}
	rr2, err := Replay(r2.Trace, ReplayConfig{Tech: tech, FP: a2.FP, Sustained: true})
	if err != nil {
		t.Fatal(err)
	}
	if rr1.Steady.MaxDelta(rr2.Steady) == 0 {
		t.Error("policies produced identical thermal maps")
	}
	// Total energies must be identical (same instruction stream).
	if math.Abs(rr1.DynEnergy-rr2.DynEnergy) > 1e-18 {
		t.Errorf("energies differ: %g vs %g", rr1.DynEnergy, rr2.DynEnergy)
	}
}
