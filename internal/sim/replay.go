package sim

import (
	"fmt"

	"thermflow/internal/floorplan"
	"thermflow/internal/power"
	"thermflow/internal/thermal"
)

// ReplayConfig parameterizes a trace-driven thermal simulation.
type ReplayConfig struct {
	// Tech supplies the power/thermal coefficients.
	Tech power.Tech
	// FP maps registers to floorplan cells.
	FP *floorplan.Floorplan
	// WindowCycles batches accesses into power-averaging windows of
	// this many cycles before each thermal step (0 = derived from the
	// grid's stable step).
	WindowCycles int64
	// Sustained, when true, additionally computes the quasi-steady
	// thermal state of the program executing in a continuous loop (the
	// regime the data-flow analysis predicts): the trace's average
	// per-cell power held indefinitely.
	Sustained bool
	// WithLeakage adds temperature-dependent leakage power to each
	// window (one linearization per window).
	WithLeakage bool
}

// ReplayResult is the outcome of a trace replay.
type ReplayResult struct {
	// Final is the thermal state at the end of one trace pass.
	Final thermal.State
	// MaxOverTime records each cell's maximum temperature during the
	// pass.
	MaxOverTime thermal.State
	// Steady is the quasi-steady state under sustained execution
	// (Sustained config), else nil.
	Steady thermal.State
	// AvgPower is the per-cell average power over the trace in watts
	// (dynamic only).
	AvgPower []float64
	// LeakEnergy is the total leakage energy dissipated during the
	// pass in joules (0 unless WithLeakage).
	LeakEnergy float64
	// DynEnergy is the total dynamic access energy in joules.
	DynEnergy float64
	// Windows is the number of thermal steps taken.
	Windows int
}

// Replay drives the thermal grid with the access trace and returns the
// resulting thermal statistics.
func Replay(tr *Trace, cfg ReplayConfig) (*ReplayResult, error) {
	if tr == nil {
		return nil, fmt.Errorf("sim: nil trace")
	}
	if cfg.FP == nil {
		return nil, fmt.Errorf("sim: nil floorplan")
	}
	if cfg.FP.NumRegs < tr.NumRegs {
		return nil, fmt.Errorf("sim: trace uses %d registers, floorplan has %d",
			tr.NumRegs, cfg.FP.NumRegs)
	}
	gridTech := cfg.Tech.WithCellEdge(cfg.FP.CellEdge)
	grid, err := thermal.NewGrid(cfg.FP.Width, cfg.FP.Height, gridTech)
	if err != nil {
		return nil, err
	}
	window := cfg.WindowCycles
	if window <= 0 {
		// One window per stable step keeps integration exact without
		// per-cycle stepping.
		window = int64(grid.MaxStableStep() / cfg.Tech.CycleTime)
		if window < 1 {
			window = 1
		}
	}

	n := grid.NumCells()
	state := grid.NewState()
	maxOver := state.Copy()
	res := &ReplayResult{
		AvgPower: make([]float64, n),
	}
	energy := make([]float64, n) // per-window accumulated joules
	pow := make([]float64, n)
	scratch := make(thermal.State, n) // reused by StepWith in the window loop
	windowStart := int64(0)
	ai := 0
	totalCycles := tr.Cycles
	if totalCycles <= 0 && len(tr.Accesses) > 0 {
		totalCycles = tr.Accesses[len(tr.Accesses)-1].Cycle + 1
	}
	if totalCycles <= 0 {
		totalCycles = 1
	}

	flush := func(endCycle int64) {
		dt := float64(endCycle-windowStart) * cfg.Tech.CycleTime
		if dt <= 0 {
			return
		}
		for c := range pow {
			pow[c] = energy[c] / dt
			res.AvgPower[c] += energy[c] // converted to power at the end
			res.DynEnergy += energy[c]
			energy[c] = 0
		}
		if cfg.WithLeakage {
			for c := range pow {
				l := gridTech.Leakage(state[c])
				pow[c] += l
				res.LeakEnergy += l * dt
			}
		}
		grid.StepWith(state, pow, dt, scratch)
		for c, v := range state {
			if v > maxOver[c] {
				maxOver[c] = v
			}
		}
		res.Windows++
		windowStart = endCycle
	}

	for windowStart < totalCycles {
		end := windowStart + window
		if end > totalCycles {
			end = totalCycles
		}
		for ai < len(tr.Accesses) && tr.Accesses[ai].Cycle < end {
			a := tr.Accesses[ai]
			cell := cfg.FP.CellOf(int(a.Reg))
			energy[cell] += cfg.Tech.AccessEnergy(a.Write)
			ai++
		}
		flush(end)
	}

	res.Final = state
	res.MaxOverTime = maxOver
	// Convert accumulated energy into average power over the whole
	// trace.
	total := float64(totalCycles) * cfg.Tech.CycleTime
	for c := range res.AvgPower {
		res.AvgPower[c] /= total
	}
	if cfg.Sustained {
		pow := res.AvgPower
		if cfg.WithLeakage {
			// One fixed-point pass: leakage at the steady temperature.
			st := grid.SteadyState(pow)
			withLeak := make([]float64, n)
			for i := 0; i < 5; i++ {
				for c := range withLeak {
					withLeak[c] = pow[c] + gridTech.Leakage(st[c])
				}
				st = grid.SteadyState(withLeak)
			}
			res.Steady = st
		} else {
			res.Steady = grid.SteadyState(pow)
		}
	}
	return res, nil
}
