package sim

import "fmt"

// Access is one register-file access: a read or write of a physical
// register at a given cycle.
type Access struct {
	// Cycle is the cycle at which the access occurs.
	Cycle int64
	// Reg is the physical register number.
	Reg int32
	// Write distinguishes writes from reads.
	Write bool
}

// Trace is a cycle-accurate register access trace.
type Trace struct {
	// Accesses lists the accesses in nondecreasing cycle order.
	Accesses []Access
	// NumRegs is the register-file size the trace refers to.
	NumRegs int
	// Cycles is the total execution length in cycles.
	Cycles int64

	maxLen int
}

func (t *Trace) add(cycle int64, reg int, write bool) error {
	if t.maxLen > 0 && len(t.Accesses) >= t.maxLen {
		return fmt.Errorf("sim: trace exceeded %d accesses", t.maxLen)
	}
	t.Accesses = append(t.Accesses, Access{Cycle: cycle, Reg: int32(reg), Write: write})
	return nil
}

// Counts returns per-register read and write counts.
func (t *Trace) Counts() (reads, writes []int64) {
	reads = make([]int64, t.NumRegs)
	writes = make([]int64, t.NumRegs)
	for _, a := range t.Accesses {
		if a.Write {
			writes[a.Reg]++
		} else {
			reads[a.Reg]++
		}
	}
	return reads, writes
}

// TotalAccesses returns the trace length.
func (t *Trace) TotalAccesses() int { return len(t.Accesses) }

// HottestRegs returns the n most-accessed registers, by total access
// count descending (ties by register number ascending).
func (t *Trace) HottestRegs(n int) []int {
	reads, writes := t.Counts()
	type rc struct {
		reg   int
		count int64
	}
	all := make([]rc, t.NumRegs)
	for r := 0; r < t.NumRegs; r++ {
		all[r] = rc{r, reads[r] + writes[r]}
	}
	// Simple selection keeps the dependency surface minimal.
	for i := 0; i < n && i < len(all); i++ {
		best := i
		for j := i + 1; j < len(all); j++ {
			if all[j].count > all[best].count ||
				(all[j].count == all[best].count && all[j].reg < all[best].reg) {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
	}
	if n > len(all) {
		n = len(all)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].reg
	}
	return out
}
