// Package vliw models the sibling technique the paper's §1 cites:
// "thermal-aware instruction binding in VLIW processors" (Schafer et
// al. [4]). A W-wide VLIW machine issues bundles of independent
// operations to W identical ALU slots laid out side by side; which
// slot an operation binds to is thermally free — exactly like register
// assignment, binding concentrates or spreads the heat.
//
// The model packs each basic block's instructions into bundles by list
// scheduling over the dependence DAG, binds each operation to a slot
// under a pluggable policy, accumulates frequency-weighted per-slot
// activity, and evaluates the resulting steady-state temperatures of
// the slot array.
package vliw

import (
	"fmt"

	"thermflow/internal/cfg"
	"thermflow/internal/ir"
	"thermflow/internal/power"
	"thermflow/internal/sched"
	"thermflow/internal/thermal"
)

// BindPolicy selects how operations within a bundle map to slots.
type BindPolicy int

// Binding policies.
const (
	// FirstSlot always fills slots from slot 0 upward — the analogue
	// of the first-free register list: slot 0 takes an operation in
	// every bundle and runs hot.
	FirstSlot BindPolicy = iota
	// RotateSlots round-robins the starting slot across bundles,
	// spreading operations evenly.
	RotateSlots
	// ColdestSlot binds each operation to the slot with the least
	// accumulated (frequency-weighted) activity — the thermal-aware
	// binding of [4].
	ColdestSlot
)

// String names the policy.
func (p BindPolicy) String() string {
	switch p {
	case FirstSlot:
		return "first-slot"
	case RotateSlots:
		return "rotate"
	case ColdestSlot:
		return "coldest-slot"
	}
	return fmt.Sprintf("bind(%d)", int(p))
}

// Policies lists the binding policies in presentation order.
var Policies = []BindPolicy{FirstSlot, RotateSlots, ColdestSlot}

// Binding is the result of bundling and slot assignment.
type Binding struct {
	// Width is the issue width W.
	Width int
	// Bundles is the total bundle count across all blocks (static).
	Bundles int
	// SlotOf maps instruction ID to its slot.
	SlotOf []int
	// SlotActivity is the frequency-weighted operation count per slot.
	SlotActivity []float64
}

// Bind packs fn's blocks into W-wide bundles and assigns slots under
// the policy. Control-flow instructions issue on slot 0 of their own
// bundle (branch unit) and do not contribute ALU activity.
func Bind(fn *ir.Function, width int, policy BindPolicy) (*Binding, error) {
	if width <= 0 {
		return nil, fmt.Errorf("vliw: width must be positive, got %d", width)
	}
	if err := ir.Verify(fn); err != nil {
		return nil, fmt.Errorf("vliw: ill-formed function: %w", err)
	}
	g := cfg.Build(fn)
	loops := g.Loops(0)
	freq := cfg.EstimateFreq(g, loops)

	b := &Binding{
		Width:        width,
		SlotOf:       make([]int, fn.NumInstrs()),
		SlotActivity: make([]float64, width),
	}
	for i := range b.SlotOf {
		b.SlotOf[i] = -1
	}
	rotate := 0
	for _, blk := range fn.Blocks {
		if !g.Reachable(blk) {
			continue
		}
		bf := freq.BlockFreq(blk)
		bundles := bundleBlock(blk, width)
		for _, bundle := range bundles {
			b.Bundles++
			used := make([]bool, width)
			for k, in := range bundle {
				if in.IsTerminator() {
					b.SlotOf[in.ID] = 0
					continue
				}
				slot := 0
				switch policy {
				case FirstSlot:
					slot = k
				case RotateSlots:
					slot = (rotate + k) % width
				case ColdestSlot:
					best, bestAct := -1, 0.0
					for s := 0; s < width; s++ {
						if used[s] {
							continue
						}
						if best < 0 || b.SlotActivity[s] < bestAct {
							best, bestAct = s, b.SlotActivity[s]
						}
					}
					slot = best
				}
				// Collision fallback: next free slot.
				for used[slot%width] {
					slot++
				}
				slot %= width
				used[slot] = true
				b.SlotOf[in.ID] = slot
				b.SlotActivity[slot] += bf
			}
			rotate++
		}
	}
	return b, nil
}

// bundleBlock packs one block's instructions into dependence-respecting
// bundles of at most width operations, by a greedy level schedule over
// the DAG (the terminator always issues alone, last).
func bundleBlock(blk *ir.Block, width int) [][]*ir.Instr {
	n := len(blk.Instrs)
	if n == 0 {
		return nil
	}
	d := sched.BuildDAG(blk, nil)
	npred := make([]int, n)
	copy(npred, d.NumPreds)
	scheduled := make([]bool, n)
	var bundles [][]*ir.Instr
	remaining := n
	for remaining > 0 {
		var bundle []*ir.Instr
		var picked []int
		for i := 0; i < n && len(bundle) < width; i++ {
			if scheduled[i] || npred[i] != 0 {
				continue
			}
			in := blk.Instrs[i]
			if in.IsTerminator() && remaining > 1 {
				continue // the terminator issues alone at the end
			}
			bundle = append(bundle, in)
			picked = append(picked, i)
		}
		if len(bundle) == 0 {
			// Only the terminator remains but it still has preds —
			// cannot happen in a DAG; guard anyway.
			break
		}
		for _, i := range picked {
			scheduled[i] = true
			remaining--
			for _, s := range d.Succs[i] {
				npred[s]--
			}
		}
		bundles = append(bundles, bundle)
	}
	return bundles
}

// SlotTemps returns the steady-state temperature of each slot when the
// binding's activity is sustained: slot s dissipates
// activity-share × opPower watts on a 1×W thermal strip.
func (b *Binding) SlotTemps(tech power.Tech) (thermal.State, error) {
	grid, err := thermal.NewGrid(b.Width, 1, tech)
	if err != nil {
		return nil, err
	}
	total := 0.0
	for _, a := range b.SlotActivity {
		total += a
	}
	pow := make([]float64, b.Width)
	if total > 0 {
		// One operation per cycle across the machine sustains the
		// ALU-class access power; shares split it per slot.
		opPower := tech.AccessPower(false)
		for s, a := range b.SlotActivity {
			pow[s] = opPower * (a / total) * float64(b.Width)
		}
	}
	return grid.SteadyState(pow), nil
}
