package vliw

import (
	"math"
	"testing"

	"thermflow/internal/ir"
	"thermflow/internal/power"
	"thermflow/internal/workload"
)

func firFn(t *testing.T) *ir.Function {
	t.Helper()
	k, err := workload.ByName("fir")
	if err != nil {
		t.Fatal(err)
	}
	return k.Fn
}

func TestBindAllPolicies(t *testing.T) {
	fn := firFn(t)
	for _, pol := range Policies {
		t.Run(pol.String(), func(t *testing.T) {
			b, err := Bind(fn, 4, pol)
			if err != nil {
				t.Fatal(err)
			}
			if b.Bundles == 0 {
				t.Fatal("no bundles")
			}
			// Every instruction got a slot within range.
			fn.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
				s := b.SlotOf[in.ID]
				if s < 0 || s >= 4 {
					t.Fatalf("instr %d bound to slot %d", in.ID, s)
				}
			})
			// Activity is conserved (same total across policies).
			total := 0.0
			for _, a := range b.SlotActivity {
				total += a
			}
			if total <= 0 {
				t.Fatal("no activity recorded")
			}
		})
	}
}

func TestBindErrors(t *testing.T) {
	fn := firFn(t)
	if _, err := Bind(fn, 0, FirstSlot); err == nil {
		t.Error("zero width accepted")
	}
	bad := ir.NewFunc("bad")
	bad.NewBlock("entry")
	if _, err := Bind(bad, 4, FirstSlot); err == nil {
		t.Error("ill-formed function accepted")
	}
}

func TestFirstSlotConcentrates(t *testing.T) {
	fn := firFn(t)
	ff, err := Bind(fn, 4, FirstSlot)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Bind(fn, 4, ColdestSlot)
	if err != nil {
		t.Fatal(err)
	}
	imbalance := func(b *Binding) float64 {
		max, min := b.SlotActivity[0], b.SlotActivity[0]
		for _, a := range b.SlotActivity {
			if a > max {
				max = a
			}
			if a < min {
				min = a
			}
		}
		return max - min
	}
	if imbalance(ff) <= imbalance(cold) {
		t.Errorf("first-slot imbalance %g not above coldest-slot %g",
			imbalance(ff), imbalance(cold))
	}
	// Slot 0 must be first-slot's busiest.
	for s, a := range ff.SlotActivity[1:] {
		if a > ff.SlotActivity[0] {
			t.Errorf("slot %d busier than slot 0 under first-slot", s+1)
		}
	}
}

func TestColdestBindingBalances(t *testing.T) {
	fn := firFn(t)
	b, err := Bind(fn, 4, ColdestSlot)
	if err != nil {
		t.Fatal(err)
	}
	max, min := b.SlotActivity[0], b.SlotActivity[0]
	for _, a := range b.SlotActivity {
		if a > max {
			max = a
		}
		if a < min {
			min = a
		}
	}
	if min <= 0 {
		t.Fatal("coldest binding left a slot idle")
	}
	if max/min > 1.5 {
		t.Errorf("coldest binding imbalance %g, want near-balanced", max/min)
	}
}

func TestSlotTempsOrdering(t *testing.T) {
	fn := firFn(t)
	tech := power.Default65nm()
	peak := map[BindPolicy]float64{}
	for _, pol := range Policies {
		b, err := Bind(fn, 4, pol)
		if err != nil {
			t.Fatal(err)
		}
		temps, err := b.SlotTemps(tech)
		if err != nil {
			t.Fatal(err)
		}
		peak[pol] = temps.Max()
		if temps.Max() <= tech.TAmbient {
			t.Errorf("%v: slots not heated", pol)
		}
	}
	// The thermal-aware binding must beat the naive one (the claim of
	// [4] the paper builds on).
	if peak[ColdestSlot] >= peak[FirstSlot] {
		t.Errorf("coldest-slot peak %g not below first-slot %g",
			peak[ColdestSlot], peak[FirstSlot])
	}
	if peak[RotateSlots] >= peak[FirstSlot] {
		t.Errorf("rotate peak %g not below first-slot %g",
			peak[RotateSlots], peak[FirstSlot])
	}
}

func TestBundlesRespectDependences(t *testing.T) {
	// A pure dependence chain cannot be bundled wider than 1.
	src := `
func chain() {
entry:
  a = const 1
  b = add a, a
  c = add b, b
  d = add c, c
  ret d
}`
	fn, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Bind(fn, 4, RotateSlots)
	if err != nil {
		t.Fatal(err)
	}
	// 4 chain ops + terminator, all serialized: 5 bundles.
	if b.Bundles != 5 {
		t.Errorf("bundles = %d, want 5 (fully serialized chain)", b.Bundles)
	}
}

func TestBindDeterministic(t *testing.T) {
	fn := firFn(t)
	b1, err := Bind(fn, 4, ColdestSlot)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Bind(fn, 4, ColdestSlot)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b1.SlotOf {
		if b1.SlotOf[i] != b2.SlotOf[i] {
			t.Fatal("binding not deterministic")
		}
	}
	if math.Abs(b1.SlotActivity[0]-b2.SlotActivity[0]) > 0 {
		t.Fatal("activity not deterministic")
	}
}

func TestPolicyString(t *testing.T) {
	if FirstSlot.String() != "first-slot" || RotateSlots.String() != "rotate" ||
		ColdestSlot.String() != "coldest-slot" {
		t.Error("String wrong")
	}
	if BindPolicy(9).String() == "" {
		t.Error("unknown policy String empty")
	}
}
