package analysis

import (
	"testing"

	"thermflow/internal/cfg"
	"thermflow/internal/ir"
)

func mustBuild(t *testing.T, src string) (*ir.Function, *cfg.Graph) {
	t.Helper()
	f, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f, cfg.Build(f)
}

const loopSrc = `
func loop(n) {
entry:
  i = const 0
  one = const 1
  sum = const 0
  br head
head:
  c = cmplt i, n
  cbr c, body, exit
body:
  s2 = add sum, i
  sum = mov s2
  i2 = add i, one
  i = mov i2
  br head
exit:
  ret sum
}`

func TestLivenessLoop(t *testing.T) {
	f, g := mustBuild(t, loopSrc)
	lv := ComputeLiveness(g)
	val := f.ValueNamed
	blk := f.BlockNamed

	for _, name := range []string{"i", "sum", "one", "n"} {
		if !lv.LiveIn[blk("head").Index].Get(val(name).ID) {
			t.Errorf("%s not live into head", name)
		}
	}
	if !lv.LiveOut[blk("body").Index].Get(val("i").ID) {
		t.Error("i not live out of body")
	}
	if lv.LiveOut[blk("exit").Index].Count() != 0 {
		t.Errorf("live-out of exit = %s, want empty", lv.LiveOut[blk("exit").Index])
	}
	// c is consumed by the cbr inside head: dead at block boundaries.
	if lv.LiveOut[blk("head").Index].Get(val("c").ID) {
		t.Error("c must not be live out of head")
	}
	// sum is live into exit (used by ret).
	if !lv.LiveIn[blk("exit").Index].Get(val("sum").ID) {
		t.Error("sum not live into exit")
	}
}

func TestLiveOutInstrs(t *testing.T) {
	f, g := mustBuild(t, loopSrc)
	lv := ComputeLiveness(g)
	body := f.BlockNamed("body")
	per := lv.LiveOutInstrs(body)
	if len(per) != len(body.Instrs) {
		t.Fatalf("per-instruction sets = %d, want %d", len(per), len(body.Instrs))
	}
	// Last instruction's live-out equals the block's live-out.
	if !per[len(per)-1].Equal(lv.LiveOut[body.Index]) {
		t.Error("final live-out mismatch")
	}
	// After "s2 = add sum, i", s2 must be live (used by next mov).
	s2 := f.ValueNamed("s2")
	if !per[0].Get(s2.ID) {
		t.Error("s2 not live after its definition")
	}
	// After "sum = mov s2", s2 is dead.
	if per[1].Get(s2.ID) {
		t.Error("s2 still live after the mov that consumes it")
	}
}

func TestMaxPressure(t *testing.T) {
	_, g := mustBuild(t, loopSrc)
	lv := ComputeLiveness(g)
	p := lv.MaxPressure()
	// At head: n, i, one, sum (+c transiently) — expect 5.
	if p < 4 || p > 6 {
		t.Errorf("MaxPressure = %d, want ~5", p)
	}

	straight := `
func s() {
entry:
  a = const 1
  b = const 2
  c = add a, b
  ret c
}`
	_, g2 := mustBuild(t, straight)
	lv2 := ComputeLiveness(g2)
	if p2 := lv2.MaxPressure(); p2 != 2 {
		t.Errorf("straight-line MaxPressure = %d, want 2", p2)
	}
}

func TestLiveValues(t *testing.T) {
	_, g := mustBuild(t, loopSrc)
	lv := ComputeLiveness(g)
	vals := lv.LiveValues()
	names := map[string]bool{}
	for _, v := range vals {
		names[v.Name] = true
	}
	for _, want := range []string{"i", "sum", "one", "n", "c", "s2", "i2"} {
		if !names[want] {
			t.Errorf("LiveValues missing %s", want)
		}
	}
	// IDs must be ascending.
	for i := 1; i < len(vals); i++ {
		if vals[i-1].ID >= vals[i].ID {
			t.Error("LiveValues not in ID order")
		}
	}
}

func TestReachingDefs(t *testing.T) {
	f, g := mustBuild(t, loopSrc)
	rd := ComputeReachingDefs(g)
	blk := f.BlockNamed
	val := f.ValueNamed

	// At head, defs of i reaching: the const in entry and the mov in
	// body.
	reaching := rd.ReachingAt(blk("head"), 0, val("i"))
	if len(reaching) != 2 {
		t.Fatalf("defs of i reaching head = %v, want 2", reaching)
	}
	// In body at instruction 0, defs of sum: entry const + body mov.
	reachSum := rd.ReachingAt(blk("body"), 0, val("sum"))
	if len(reachSum) != 2 {
		t.Errorf("defs of sum reaching body[0] = %v, want 2", reachSum)
	}
	// After "sum = mov s2" (index 1), only that def reaches index 2.
	reachSum2 := rd.ReachingAt(blk("body"), 2, val("sum"))
	if len(reachSum2) != 1 {
		t.Errorf("defs of sum reaching body[2] = %v, want 1", reachSum2)
	}
	// Parameter n reaches everywhere as a param fact.
	reachN := rd.ReachingAt(blk("head"), 0, val("n"))
	if len(reachN) != 1 {
		t.Fatalf("defs of n = %v, want 1 param fact", reachN)
	}
	if k, ok := rd.IsParamFact(reachN[0]); !ok || k != 0 {
		t.Errorf("n's def not recognized as param 0: %v", reachN[0])
	}
}

func TestReachingDefsParamShadow(t *testing.T) {
	src := `
func f(p) {
entry:
  c = cmplt p, p
  cbr c, redef, join
redef:
  p = const 7
  br join
join:
  ret p
}`
	f, g := mustBuild(t, src)
	rd := ComputeReachingDefs(g)
	join := f.BlockNamed("join")
	reaching := rd.ReachingAt(join, 0, f.ValueNamed("p"))
	// Both the param fact and the const reach join.
	if len(reaching) != 2 {
		t.Errorf("defs of p at join = %v, want 2", reaching)
	}
	var haveParam, haveInstr bool
	for _, fact := range reaching {
		if _, ok := rd.IsParamFact(fact); ok {
			haveParam = true
		} else {
			haveInstr = true
		}
	}
	if !haveParam || !haveInstr {
		t.Errorf("expected one param fact and one instr fact, got %v", reaching)
	}
}

func TestDefUse(t *testing.T) {
	f, _ := mustBuild(t, loopSrc)
	du := ComputeDefUse(f)
	i := f.ValueNamed("i")
	// i: defs = const(entry) + mov(body) = 2; uses = cmplt, add(sum,i), add(i,one) = 3.
	if got := len(du.Defs[i.ID]); got != 2 {
		t.Errorf("defs of i = %d, want 2", got)
	}
	if got := len(du.Uses[i.ID]); got != 3 {
		t.Errorf("uses of i = %d, want 3", got)
	}
	if du.NumAccesses(i) != 5 {
		t.Errorf("NumAccesses(i) = %d, want 5", du.NumAccesses(i))
	}
}

func TestDefUseWeighted(t *testing.T) {
	f, g := mustBuild(t, loopSrc)
	li := cfg.FindLoops(g, cfg.Dominators(g), 0)
	fr := cfg.EstimateFreq(g, li)
	du := ComputeDefUse(f)
	i := f.ValueNamed("i")
	one := f.ValueNamed("one")
	wi := du.WeightedAccesses(i, fr.Block)
	wone := du.WeightedAccesses(one, fr.Block)
	// i is accessed in the loop every iteration; one is defined once
	// and used in the loop. i must be hotter.
	if wi <= wone {
		t.Errorf("weighted accesses: i=%g one=%g; want i > one", wi, wone)
	}
	if wi < 10 {
		t.Errorf("weighted accesses of i = %g, want >= 10 (trip default)", wi)
	}
}

func TestDefUseDoubleUse(t *testing.T) {
	src := `
func d() {
entry:
  a = const 2
  b = mul a, a
  ret b
}`
	f, _ := mustBuild(t, src)
	du := ComputeDefUse(f)
	a := f.ValueNamed("a")
	if got := len(du.Uses[a.ID]); got != 2 {
		t.Errorf("uses of a = %d, want 2 (used twice by mul)", got)
	}
}
