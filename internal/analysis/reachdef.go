package analysis

import (
	"thermflow/internal/cfg"
	"thermflow/internal/dfa"
	"thermflow/internal/ir"
)

// ReachingDefs holds the reaching-definitions solution. Facts are
// instruction IDs of defining instructions; parameters are modelled as
// pseudo-definitions with IDs beyond the instruction range.
type ReachingDefs struct {
	fn *ir.Function
	// In and Out are per-block reaching definition sets (instruction
	// IDs; parameter k is fact numInstrs+k).
	In, Out []*dfa.BitSet

	numInstrs int
}

// ComputeReachingDefs runs forward reaching-definitions analysis.
func ComputeReachingDefs(g *cfg.Graph) *ReachingDefs {
	fn := g.Fn
	ni := fn.NumInstrs()
	nFacts := ni + len(fn.Params)
	nb := g.NumBlocks()

	// defsOf maps value ID -> fact IDs defining it.
	defsOf := make(map[int][]int)
	for k, p := range fn.Params {
		defsOf[p.ID] = append(defsOf[p.ID], ni+k)
	}
	fn.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		if in.Def != nil {
			defsOf[in.Def.ID] = append(defsOf[in.Def.ID], in.ID)
		}
	})

	p := &dfa.GenKill{Dir: dfa.Forward, NumFacts: nFacts,
		Gen:  make([]*dfa.BitSet, nb),
		Kill: make([]*dfa.BitSet, nb),
	}
	for _, b := range fn.Blocks {
		gen := dfa.NewBitSet(nFacts)
		kill := dfa.NewBitSet(nFacts)
		for _, in := range b.Instrs {
			if in.Def == nil {
				continue
			}
			for _, d := range defsOf[in.Def.ID] {
				kill.Set(d)
				gen.Clear(d)
			}
			gen.Set(in.ID)
		}
		p.Gen[b.Index] = gen
		p.Kill[b.Index] = kill
	}
	res := dfa.SolveGenKill(g, p)
	// Parameters reach from the entry: seed them into the entry's In
	// and re-propagate cheaply by unioning into every block reachable
	// without an intervening kill. Simplest correct approach: rerun
	// with the boundary fact included via a second pass.
	rd := &ReachingDefs{fn: fn, In: res.In, Out: res.Out, numInstrs: ni}
	if len(fn.Params) > 0 {
		rd.propagateParams(g, defsOf)
	}
	return rd
}

// propagateParams adds parameter pseudo-definitions, which reach every
// block where no instruction redefines the parameter value on some
// path. A small fixpoint over the existing sets suffices.
func (rd *ReachingDefs) propagateParams(g *cfg.Graph, defsOf map[int][]int) {
	fn := rd.fn
	killsParam := func(b *ir.Block, paramID int) bool {
		for _, in := range b.Instrs {
			if in.Def != nil && in.Def.ID == paramID {
				return true
			}
		}
		return false
	}
	for k, p := range fn.Params {
		fact := rd.numInstrs + k
		_ = defsOf
		// Forward reachability from entry stopping at killing blocks.
		if !g.Reachable(fn.Entry) {
			continue
		}
		rd.In[fn.Entry.Index].Set(fact)
		work := []*ir.Block{fn.Entry}
		seen := map[*ir.Block]bool{fn.Entry: true}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			rd.In[b.Index].Set(fact)
			if killsParam(b, p.ID) {
				continue
			}
			rd.Out[b.Index].Set(fact)
			for _, s := range b.Succs() {
				if !seen[s] {
					seen[s] = true
					work = append(work, s)
				}
			}
		}
	}
}

// IsParamFact reports whether fact id denotes a parameter
// pseudo-definition, and if so which parameter.
func (rd *ReachingDefs) IsParamFact(id int) (int, bool) {
	if id >= rd.numInstrs {
		return id - rd.numInstrs, true
	}
	return 0, false
}

// ReachingAt returns the definitions of value v that reach instruction
// in (which must belong to block b): instruction IDs, plus parameter
// facts encoded as numInstrs+k.
func (rd *ReachingDefs) ReachingAt(b *ir.Block, idx int, v *ir.Value) []int {
	cur := rd.In[b.Index].Copy()
	for i := 0; i < idx; i++ {
		prior := b.Instrs[i]
		if prior.Def == nil {
			continue
		}
		if prior.Def.ID == v.ID {
			// This def kills all earlier defs of v.
			var kill []int
			cur.ForEach(func(f int) {
				if rd.factDefines(f, v) {
					kill = append(kill, f)
				}
			})
			for _, f := range kill {
				cur.Clear(f)
			}
		}
		cur.Set(prior.ID)
	}
	var out []int
	cur.ForEach(func(f int) {
		if rd.factDefines(f, v) {
			out = append(out, f)
		}
	})
	return out
}

func (rd *ReachingDefs) factDefines(fact int, v *ir.Value) bool {
	if k, ok := rd.IsParamFact(fact); ok {
		return rd.fn.Params[k] == v
	}
	in := instrByID(rd.fn, fact)
	return in != nil && in.Def == v
}

func instrByID(fn *ir.Function, id int) *ir.Instr {
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.ID == id {
				return in
			}
		}
	}
	return nil
}
