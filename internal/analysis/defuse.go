package analysis

import (
	"thermflow/internal/ir"
)

// DefUse summarizes where each value is defined and used, together with
// static access counts. The thermal analyses consume the access counts
// (weighted by block frequency) to estimate per-variable power.
type DefUse struct {
	// Defs maps value ID to the instructions defining it.
	Defs [][]*ir.Instr
	// Uses maps value ID to the instructions using it (an instruction
	// using a value twice appears twice).
	Uses [][]*ir.Instr
}

// ComputeDefUse scans fn and builds the def/use index.
func ComputeDefUse(fn *ir.Function) *DefUse {
	nv := fn.NumValues()
	du := &DefUse{
		Defs: make([][]*ir.Instr, nv),
		Uses: make([][]*ir.Instr, nv),
	}
	fn.ForEachInstr(func(_ *ir.Block, in *ir.Instr) {
		if in.Def != nil {
			du.Defs[in.Def.ID] = append(du.Defs[in.Def.ID], in)
		}
		for _, u := range in.Uses {
			du.Uses[u.ID] = append(du.Uses[u.ID], in)
		}
	})
	return du
}

// NumAccesses returns the static def+use count of value v.
func (du *DefUse) NumAccesses(v *ir.Value) int {
	return len(du.Defs[v.ID]) + len(du.Uses[v.ID])
}

// WeightedAccesses returns the frequency-weighted dynamic access count
// estimate of value v given per-block frequencies indexed by block
// index.
func (du *DefUse) WeightedAccesses(v *ir.Value, blockFreq []float64) float64 {
	total := 0.0
	for _, in := range du.Defs[v.ID] {
		total += blockFreq[in.Block().Index]
	}
	for _, in := range du.Uses[v.ID] {
		total += blockFreq[in.Block().Index]
	}
	return total
}
