// Package analysis implements the classic data-flow analyses the
// thermal analysis builds on: liveness (one bit per variable, as the
// paper's §3 baseline), reaching definitions and def-use chains.
package analysis

import (
	"thermflow/internal/cfg"
	"thermflow/internal/dfa"
	"thermflow/internal/ir"
)

// Liveness holds the result of live-variable analysis. Bit i of any set
// refers to the value with ID i.
type Liveness struct {
	fn *ir.Function
	// LiveIn and LiveOut are block-boundary live sets indexed by block
	// index.
	LiveIn  []*dfa.BitSet
	LiveOut []*dfa.BitSet
}

// ComputeLiveness runs backward live-variable analysis over g.
func ComputeLiveness(g *cfg.Graph) *Liveness {
	fn := g.Fn
	nv := fn.NumValues()
	nb := g.NumBlocks()
	p := &dfa.GenKill{Dir: dfa.Backward, NumFacts: nv,
		Gen:  make([]*dfa.BitSet, nb),
		Kill: make([]*dfa.BitSet, nb),
	}
	for _, b := range fn.Blocks {
		gen := dfa.NewBitSet(nv)  // upward-exposed uses
		kill := dfa.NewBitSet(nv) // defs
		for _, in := range b.Instrs {
			for _, u := range in.Uses {
				if !kill.Get(u.ID) {
					gen.Set(u.ID)
				}
			}
			if in.Def != nil {
				kill.Set(in.Def.ID)
			}
		}
		p.Gen[b.Index] = gen
		p.Kill[b.Index] = kill
	}
	res := dfa.SolveGenKill(g, p)
	lv := &Liveness{fn: fn, LiveIn: make([]*dfa.BitSet, nb), LiveOut: make([]*dfa.BitSet, nb)}
	for _, b := range fn.Blocks {
		// Backward problem: flow-in is at block exit.
		lv.LiveOut[b.Index] = res.In[b.Index]
		lv.LiveIn[b.Index] = res.Out[b.Index]
	}
	return lv
}

// LiveOutInstrs computes, for each instruction of block b in order, the
// set of values live immediately after it. The final instruction's set
// equals the block's LiveOut.
func (lv *Liveness) LiveOutInstrs(b *ir.Block) []*dfa.BitSet {
	out := make([]*dfa.BitSet, len(b.Instrs))
	live := lv.LiveOut[b.Index].Copy()
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		out[i] = live.Copy()
		in := b.Instrs[i]
		if in.Def != nil {
			live.Clear(in.Def.ID)
		}
		for _, u := range in.Uses {
			live.Set(u.ID)
		}
	}
	return out
}

// MaxPressure returns the maximum number of simultaneously live values
// at any instruction boundary of the function — the register pressure
// the allocator must accommodate.
func (lv *Liveness) MaxPressure() int {
	max := 0
	for _, b := range lv.fn.Blocks {
		live := lv.LiveOut[b.Index].Copy()
		if c := live.Count(); c > max {
			max = c
		}
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			if in.Def != nil {
				live.Clear(in.Def.ID)
			}
			for _, u := range in.Uses {
				live.Set(u.ID)
			}
			if c := live.Count(); c > max {
				max = c
			}
		}
	}
	return max
}

// LiveValues returns every value that is live across at least one
// instruction boundary (and therefore needs a register), in ID order.
func (lv *Liveness) LiveValues() []*ir.Value {
	needed := dfa.NewBitSet(lv.fn.NumValues())
	for _, b := range lv.fn.Blocks {
		needed.UnionWith(lv.LiveIn[b.Index])
		needed.UnionWith(lv.LiveOut[b.Index])
		for _, in := range b.Instrs {
			if in.Def != nil {
				needed.Set(in.Def.ID)
			}
			for _, u := range in.Uses {
				needed.Set(u.ID)
			}
		}
	}
	vals := lv.fn.Values()
	var out []*ir.Value
	needed.ForEach(func(i int) { out = append(out, vals[i]) })
	return out
}
