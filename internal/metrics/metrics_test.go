package metrics

import (
	"math"
	"testing"

	"thermflow/internal/floorplan"
	"thermflow/internal/power"
	"thermflow/internal/thermal"
)

func flatState(n int, v float64) thermal.State {
	s := make(thermal.State, n)
	for i := range s {
		s[i] = v
	}
	return s
}

func TestSummarizeFlat(t *testing.T) {
	fp, _ := floorplan.New(16, 4, 4, 50e-6, floorplan.RowMajor)
	s := flatState(16, 320)
	m := Summarize(s, fp)
	if m.Peak != 320 || m.Mean != 320 || m.Range != 0 {
		t.Errorf("flat summary wrong: %+v", m)
	}
	if m.StdDev != 0 || m.MaxGradient != 0 || m.HotspotCells != 0 {
		t.Errorf("flat state has structure: %+v", m)
	}
}

func TestSummarizeHotspot(t *testing.T) {
	fp, _ := floorplan.New(16, 4, 4, 50e-6, floorplan.RowMajor)
	s := flatState(16, 320)
	s[5] = 340 // interior hot cell
	m := Summarize(s, fp)
	if m.Peak != 340 {
		t.Errorf("Peak = %g", m.Peak)
	}
	if m.Range != 20 {
		t.Errorf("Range = %g", m.Range)
	}
	if m.MaxGradient != 20 {
		t.Errorf("MaxGradient = %g", m.MaxGradient)
	}
	if m.HotspotCells != 1 {
		t.Errorf("HotspotCells = %d", m.HotspotCells)
	}
	if m.StdDev <= 0 {
		t.Error("StdDev must be positive")
	}
}

func TestRelativeMTTF(t *testing.T) {
	ref := 320.0
	uniform := flatState(4, ref)
	if r := RelativeMTTF(uniform, ref); math.Abs(r-1) > 1e-12 {
		t.Errorf("uniform MTTF = %g, want 1", r)
	}
	hot := flatState(4, ref)
	hot[0] = ref + 30
	r := RelativeMTTF(hot, ref)
	if r >= 1 {
		t.Errorf("hot MTTF = %g, want < 1", r)
	}
	// 30 K hotter should roughly halve electromigration lifetime.
	if r < 0.05 || r > 0.8 {
		t.Errorf("MTTF ratio = %g, expected a substantial degradation", r)
	}
	cold := flatState(4, ref-30)
	if RelativeMTTF(cold, ref) <= 1 {
		t.Error("cooler state must improve MTTF")
	}
}

func TestLeakageConvexity(t *testing.T) {
	tech := power.Default65nm()
	// Same mean temperature, one peaked and one flat: the peaked state
	// must leak more (convexity of exp).
	flat := flatState(4, tech.T0+10)
	peaked := thermal.State{tech.T0, tech.T0, tech.T0, tech.T0 + 40}
	if flat.Mean() != peaked.Mean() {
		t.Fatal("test states must share the mean")
	}
	if LeakagePower(peaked, tech) <= LeakagePower(flat, tech) {
		t.Error("peaked state should leak more than flat state of equal mean")
	}
}

func TestRMSEAndMAE(t *testing.T) {
	pred := []float64{1, 2, 3}
	ref := []float64{1, 2, 3}
	if RMSE(pred, ref) != 0 || MAE(pred, ref) != 0 {
		t.Error("identical series must have zero error")
	}
	pred2 := []float64{2, 3, 4}
	if got := RMSE(pred2, ref); math.Abs(got-1) > 1e-12 {
		t.Errorf("RMSE = %g, want 1", got)
	}
	if got := MAE(pred2, ref); math.Abs(got-1) > 1e-12 {
		t.Errorf("MAE = %g, want 1", got)
	}
	if !math.IsNaN(RMSE([]float64{1}, []float64{1, 2})) {
		t.Error("length mismatch must yield NaN")
	}
	if !math.IsNaN(MAE(nil, nil)) {
		t.Error("empty input must yield NaN")
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := Pearson(x, x); math.Abs(got-1) > 1e-12 {
		t.Errorf("self correlation = %g", got)
	}
	neg := []float64{4, 3, 2, 1}
	if got := Pearson(x, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("anti correlation = %g", got)
	}
	flat := []float64{2, 2, 2, 2}
	if !math.IsNaN(Pearson(x, flat)) {
		t.Error("constant series must yield NaN")
	}
	if !math.IsNaN(Pearson(x, []float64{1})) {
		t.Error("length mismatch must yield NaN")
	}
}

func TestTopKOverlap(t *testing.T) {
	ref := []float64{10, 9, 1, 2, 8}
	same := []float64{100, 90, 0, 0, 80}
	if got := TopKOverlap(same, ref, 3); got != 1 {
		t.Errorf("full overlap = %g, want 1", got)
	}
	inverted := []float64{0, 0, 10, 9, 0}
	if got := TopKOverlap(inverted, ref, 2); got != 0 {
		t.Errorf("disjoint overlap = %g, want 0", got)
	}
	if got := TopKOverlap(ref, ref, 100); got != 1 {
		t.Errorf("k beyond length = %g, want 1", got)
	}
	if !math.IsNaN(TopKOverlap(ref, ref, 0)) {
		t.Error("k=0 must yield NaN")
	}
	if !math.IsNaN(TopKOverlap(ref, []float64{1}, 1)) {
		t.Error("length mismatch must yield NaN")
	}
}

func TestSummaryOrderingUnderPeaking(t *testing.T) {
	// Property: moving heat from a cold cell to a hot cell (mean
	// preserved) cannot decrease StdDev, Range, or Peak.
	fp, _ := floorplan.New(16, 4, 4, 50e-6, floorplan.RowMajor)
	s := flatState(16, 320)
	s[3] = 330
	s[12] = 310
	before := Summarize(s, fp)
	s[3] += 5
	s[12] -= 5
	after := Summarize(s, fp)
	if after.StdDev < before.StdDev || after.Range < before.Range || after.Peak < before.Peak {
		t.Errorf("peaking decreased dispersion: %+v -> %+v", before, after)
	}
}
